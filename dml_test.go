package nra

import (
	"testing"
)

func dmlDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	db.MustCreateTable("emp", []string{"id", "name", "dept", "salary"}, "id",
		[]any{1, "ada", 10, 120},
		[]any{2, "bob", 10, 95},
		[]any{3, "cho", 20, 80},
	)
	db.MustCreateTable("dept", []string{"dno", "dname"}, "dno",
		[]any{10, "eng"}, []any{20, "ops"},
	)
	if err := db.CreateIndex("emp", "dept"); err != nil {
		t.Fatal(err)
	}
	return db
}

func count(t *testing.T, db *DB, src string) int64 {
	t.Helper()
	res, err := db.Query(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return res.Rows()[0][0].(int64)
}

func TestInsert(t *testing.T) {
	db := dmlDB(t)
	n, err := db.Exec("insert into emp values (4, 'dee', 20, 70), (5, 'eve', 30, 1 + 2 * 50)")
	if err != nil || n != 2 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	if got := count(t, db, "select count(*) from emp"); got != 5 {
		t.Fatalf("count = %d", got)
	}
	// Computed constant landed.
	res, _ := db.Query("select salary from emp where id = 5")
	if res.Rows()[0][0].(int64) != 101 {
		t.Fatalf("computed insert value: %v", res.Rows()[0][0])
	}
	// Column-list form with defaulted (NULL) column.
	if _, err := db.Exec("insert into emp (id, name) values (6, 'fay')"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Query("select dept from emp where id = 6")
	if res.Rows()[0][0] != nil {
		t.Fatal("unlisted column should default to NULL")
	}
	// The index sees new rows.
	res, _ = db.QueryWith("select name from emp where dept in (select dno from dept where dname = 'ops')", Native)
	if res.NumRows() != 2 { // cho + dee
		t.Fatalf("index not maintained: %d rows\n%s", res.NumRows(), res)
	}
}

func TestInsertValidation(t *testing.T) {
	db := dmlDB(t)
	cases := []string{
		"insert into emp values (1, 'dup', 10, 1)",                  // duplicate PK
		"insert into emp values (null, 'x', 10, 1)",                 // NULL PK
		"insert into emp values (7, 'x', 10)",                       // arity
		"insert into emp values (7, 8, 10, 1)",                      // type mismatch (name int)
		"insert into emp (id, nope) values (7, 1)",                  // unknown column
		"insert into nope values (1)",                               // unknown table
		"insert into emp values (7, 'x', 10, 50), (7, 'y', 10, 51)", // dup within batch
	}
	for _, src := range cases {
		if _, err := db.Exec(src); err == nil {
			t.Errorf("Exec(%q) should fail", src)
		}
	}
	// Failed batch must not partially apply.
	if got := count(t, db, "select count(*) from emp"); got != 3 {
		t.Fatalf("failed inserts mutated the table: %d rows", got)
	}
}

func TestDelete(t *testing.T) {
	db := dmlDB(t)
	n, err := db.Exec("delete from emp where salary < 100")
	if err != nil || n != 2 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	if got := count(t, db, "select count(*) from emp"); got != 1 {
		t.Fatalf("count = %d", got)
	}
	// Subquery-powered DELETE.
	db2 := dmlDB(t)
	n, err = db2.Exec("delete from emp where dept in (select dno from dept where dname = 'eng')")
	if err != nil || n != 2 {
		t.Fatalf("subquery delete: n=%d err=%v", n, err)
	}
	// Unconditional DELETE.
	n, err = db2.Exec("delete from emp")
	if err != nil || n != 1 {
		t.Fatalf("delete all: n=%d err=%v", n, err)
	}
}

func TestUpdate(t *testing.T) {
	db := dmlDB(t)
	n, err := db.Exec("update emp set salary = salary + 10 where dept = 10")
	if err != nil || n != 2 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	res, _ := db.Query("select salary from emp where id = 1")
	if res.Rows()[0][0].(int64) != 130 {
		t.Fatalf("salary after update: %v", res.Rows()[0][0])
	}
	// Correlated-subquery UPDATE: set everyone to their department max.
	n, err = db.Exec(`update emp set salary = (select max(e2.salary) from emp e2 where e2.dept = emp.dept)`)
	if err != nil || n != 3 {
		t.Fatalf("subquery update: n=%d err=%v", n, err)
	}
	res, _ = db.Query("select salary from emp where id = 2")
	if res.Rows()[0][0].(int64) != 130 {
		t.Fatalf("bob should be raised to ada's 130: %v", res.Rows()[0][0])
	}
	// PK update with collision must fail atomically.
	if _, err := db.Exec("update emp set id = 1 where id = 2"); err == nil {
		t.Fatal("PK collision must error")
	}
	if got := count(t, db, "select count(*) from emp"); got != 3 {
		t.Fatal("failed update mutated the table")
	}
	// NOT NULL violation.
	if err := db.SetNotNull("emp", "name"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("update emp set name = null where id = 1"); err == nil {
		t.Fatal("NOT NULL violation must error")
	}
}

func TestExecRejectsSelect(t *testing.T) {
	db := dmlDB(t)
	if _, err := db.Exec("select * from emp"); err == nil {
		t.Fatal("Exec must reject SELECT")
	}
	if _, err := db.Exec("insert into emp values (9, (select max(id) from emp), 1, 1)"); err == nil {
		t.Fatal("non-constant INSERT values must be rejected")
	}
}

func TestCreateDropTable(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`create table widgets (
		id integer primary key,
		name varchar(32) not null,
		weight float,
		active boolean)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("insert into widgets values (1, 'bolt', 0.5, true), (2, 'nut', 0.2, false)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("select name from widgets where weight < 0.3")
	if err != nil || res.NumRows() != 1 {
		t.Fatalf("query on created table: %v rows=%d", err, res.NumRows())
	}
	// NOT NULL from DDL is enforced.
	if _, err := db.Exec("insert into widgets values (3, null, 1.0, true)"); err == nil {
		t.Fatal("NOT NULL from CREATE TABLE must be enforced")
	}
	// Declared types are enforced.
	if _, err := db.Exec("insert into widgets values (3, 'x', 'heavy', true)"); err == nil {
		t.Fatal("type mismatch must be rejected")
	}
	if _, err := db.Exec("drop table widgets"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("select * from widgets"); err == nil {
		t.Fatal("dropped table must be gone")
	}
	if _, err := db.Exec("drop table widgets"); err == nil {
		t.Fatal("double drop must error")
	}
	// DDL validation.
	for _, src := range []string{
		"create table t (a integer, b integer)",                     // no PK
		"create table t (a integer primary key, b int primary key)", // two PKs
		"create table t (a blob primary key)",                       // unknown type
	} {
		if _, err := db.Exec(src); err == nil {
			t.Errorf("Exec(%q) should fail", src)
		}
	}
}

func TestCreateInsertQueryEndToEnd(t *testing.T) {
	// A database built purely from SQL, exercised by a nested query.
	db := Open()
	db.MustExec("create table d (dno integer primary key, dname varchar)")
	db.MustExec("create table e (id integer primary key, dept integer, salary integer)")
	db.MustExec("insert into d values (1, 'eng'), (2, 'ops')")
	db.MustExec("insert into e values (1, 1, 100), (2, 1, 90), (3, 2, 80)")
	res, err := db.Query(`select dname from d where not exists
		(select * from e where e.dept = d.dno and e.salary > 95)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Rows()[0][0] != "ops" {
		t.Fatalf("end-to-end: %v", res.Rows())
	}
}
