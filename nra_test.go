package nra

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func deptDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	db.MustCreateTable("emp", []string{"id", "name", "dept", "salary"}, "id",
		[]any{1, "ada", 10, 120},
		[]any{2, "bob", 10, 95},
		[]any{3, "cho", 20, 80},
		[]any{4, "dee", 20, nil},
		[]any{5, "eve", 30, 150},
	)
	db.MustCreateTable("dept", []string{"dno", "dname"}, "dno",
		[]any{10, "eng"}, []any{20, "ops"}, []any{30, "exec"}, []any{40, "empty"},
	)
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := deptDB(t)
	res, err := db.Query(`select name from emp e where e.salary >= all
		(select e2.salary from emp e2 where e2.dept = e.dept)`)
	if err != nil {
		t.Fatal(err)
	}
	// dept 10: ada (120 >= all {120,95}); dept 20: cho vs {80,null} → unknown
	// for both members? cho: 80>=80 true, 80>=null unknown → unknown → out.
	// dee: salary null → unknown → out. eve: 150>=150 → in.
	got := map[string]bool{}
	for _, row := range res.Rows() {
		got[row[0].(string)] = true
	}
	if len(got) != 2 || !got["ada"] || !got["eve"] {
		t.Fatalf("top earners wrong: %v\n%s", got, res)
	}
}

func TestStrategiesAgree(t *testing.T) {
	db := deptDB(t)
	queries := []string{
		"select name from emp where dept in (select dno from dept where dname <> 'ops')",
		"select dname from dept d where not exists (select * from emp where emp.dept = d.dno)",
		"select name from emp e where e.salary > all (select e2.salary from emp e2 where e2.dept = e.dept and e2.id <> e.id)",
		"select name from emp where salary not in (select salary from emp e2 where e2.dept = 20)",
	}
	for _, src := range queries {
		var results []*Result
		for _, s := range []Strategy{Auto, NestedOptimized, NestedOriginal, Native, Reference} {
			res, err := db.QueryWith(src, s)
			if err != nil {
				t.Fatalf("%s on %q: %v", s, src, err)
			}
			results = append(results, res)
		}
		for i := 1; i < len(results); i++ {
			if !results[0].Equal(results[i]) {
				t.Fatalf("strategy disagreement on %q:\n%s\nvs\n%s", src, results[0], results[i])
			}
		}
	}
}

func TestAutoFallsBackToReference(t *testing.T) {
	db := deptDB(t)
	// Subquery under OR: unsupported by the planner, handled by Reference.
	src := "select name from emp e where e.dept = 30 or exists (select * from dept where dno = e.dept and dname = 'eng')"
	res, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 { // ada, bob (eng) + eve (dept 30)
		t.Fatalf("fallback result wrong:\n%s", res)
	}
	if _, err := db.QueryWith(src, NestedOptimized); err == nil {
		t.Fatal("explicit nested strategy should reject the OR shape")
	}
}

func TestResultAccessors(t *testing.T) {
	db := deptDB(t)
	res, err := db.Query("select name, salary from emp where dept = 20 order by name")
	if err != nil {
		t.Fatal(err)
	}
	if cols := res.Columns(); len(cols) != 2 || cols[0] != "name" {
		t.Fatalf("columns: %v", cols)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0] != "cho" || rows[0][1].(int64) != 80 {
		t.Fatalf("rows: %v", rows)
	}
	if rows[1][1] != nil {
		t.Fatalf("NULL salary should map to nil: %v", rows[1][1])
	}
	if !strings.Contains(res.String(), "cho") {
		t.Fatal("String rendering broken")
	}
}

func TestExplainAllStrategies(t *testing.T) {
	db := deptDB(t)
	src := "select name from emp e where e.salary > all (select e2.salary from emp e2 where e2.dept = e.dept)"
	for _, s := range []Strategy{NestedOptimized, NestedOriginal, Native, Reference} {
		out, err := db.Explain(src, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if out == "" {
			t.Fatalf("%s: empty explain", s)
		}
	}
	opt, _ := db.Explain(src, NestedOptimized)
	if !strings.Contains(opt, "§4.2") && !strings.Contains(opt, "fused") && !strings.Contains(opt, "bottom-up") {
		t.Fatalf("optimized explain should mention a §4.2 strategy:\n%s", opt)
	}
}

func TestErrorsSurface(t *testing.T) {
	db := deptDB(t)
	if _, err := db.Query("select nope from emp"); err == nil {
		t.Fatal("unknown column must error")
	}
	if _, err := db.Query("selec name from emp"); err == nil {
		t.Fatal("syntax error must surface")
	}
	if err := db.CreateTable("emp", []string{"x"}, "x", []any{1}); err == nil {
		t.Fatal("duplicate table must error")
	}
	if err := db.CreateTable("bad", []string{"x"}, "x", []any{nil}); err == nil {
		t.Fatal("NULL primary key must error")
	}
	if err := db.SetNotNull("emp", "salary"); err == nil {
		t.Fatal("NOT NULL over NULL data must error")
	}
	if err := db.SetNotNull("emp", "name"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("emp", "nope"); err == nil {
		t.Fatal("index on unknown column must error")
	}
}

func TestOpenTPCH(t *testing.T) {
	db, err := OpenTPCH(TPCHConfig{Parts: 30, Suppliers: 5, Customers: 10, Orders: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Tables()) != 8 {
		t.Fatalf("tables: %v", db.Tables())
	}
	res, err := db.Query(`select o_orderkey from orders
		where o_totalprice > all (select l_extendedprice from lineitem
			where l_orderkey = o_orderkey)`)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := db.QueryWith(`select o_orderkey from orders
		where o_totalprice > all (select l_extendedprice from lineitem
			where l_orderkey = o_orderkey)`, Reference)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(ref) {
		t.Fatal("TPC-H query disagreement")
	}
	if n, _ := db.NumRows("orders"); n != 50 {
		t.Fatalf("orders rows: %d", n)
	}
}

func TestStrategyString(t *testing.T) {
	names := map[string]Strategy{
		"auto": Auto, "native": Native, "reference": Reference,
		"nested-original": NestedOriginal, "nested-optimized": NestedOptimized,
	}
	for want, s := range names {
		if s.String() != want {
			t.Errorf("Strategy.String() = %q, want %q", s.String(), want)
		}
	}
}

func TestTracedStrategy(t *testing.T) {
	db := deptDB(t)
	var buf strings.Builder
	s := Traced(NestedOriginal, &buf)
	if _, err := db.QueryWith(
		"select name from emp e where e.salary > all (select e2.salary from emp e2 where e2.dept = e.dept)", s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"σ_θ", "⟕", "υ"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	// Native strategies are returned unchanged (no trace output).
	if Traced(Native, &buf) != Native || Traced(Reference, &buf) != Reference {
		t.Fatal("Traced must not alter native/reference strategies")
	}
}

func TestLimitOffset(t *testing.T) {
	db := deptDB(t)
	for _, s := range []Strategy{NestedOptimized, NestedOriginal, Native, Reference} {
		res, err := db.QueryWith("select name from emp order by name limit 2", s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		rows := res.Rows()
		if len(rows) != 2 || rows[0][0] != "ada" || rows[1][0] != "bob" {
			t.Fatalf("%s: limit rows = %v", s, rows)
		}
		res2, err := db.QueryWith("select name from emp order by name limit 2 offset 3", s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		rows2 := res2.Rows()
		if len(rows2) != 2 || rows2[0][0] != "dee" || rows2[1][0] != "eve" {
			t.Fatalf("%s: offset rows = %v", s, rows2)
		}
	}
	// Offset past the end.
	res, err := db.Query("select name from emp order by name limit 10 offset 99")
	if err != nil || res.NumRows() != 0 {
		t.Fatalf("offset past end: %v rows=%d", err, res.NumRows())
	}
	// LIMIT 0.
	res, err = db.Query("select name from emp limit 0")
	if err != nil || res.NumRows() != 0 {
		t.Fatalf("limit 0: %v", err)
	}
	// LIMIT in a subquery is rejected.
	if _, err := db.Query("select name from emp where dept in (select dno from dept limit 1)"); err == nil {
		t.Fatal("subquery LIMIT must be rejected")
	}
	// Negative / junk operands are parse errors.
	if _, err := db.Query("select name from emp limit -1"); err == nil {
		t.Fatal("negative LIMIT must fail")
	}
	if _, err := db.Query("select name from emp limit x"); err == nil {
		t.Fatal("non-numeric LIMIT must fail")
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := deptDB(t)
	queries := []string{
		"select name from emp e where e.salary >= all (select e2.salary from emp e2 where e2.dept = e.dept)",
		"select dname from dept d where not exists (select * from emp where emp.dept = d.dno)",
		"select count(*) from emp where dept in (select dno from dept)",
		"select name from emp where salary not in (select salary from emp e2 where e2.dept = 20)",
	}
	strategies := []Strategy{NestedOptimized, NestedOriginal, Native, Reference}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				src := queries[(w+i)%len(queries)]
				s := strategies[(w*3+i)%len(strategies)]
				if _, err := db.QueryWith(src, s); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPreparedStatements(t *testing.T) {
	db := deptDB(t)
	stmt, err := db.Prepare("select name from emp e where e.salary >= all (select e2.salary from emp e2 where e2.dept = e.dept)")
	if err != nil {
		t.Fatal(err)
	}
	a, err := stmt.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := stmt.RunWith(Reference)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) || a.NumRows() != 2 {
		t.Fatalf("prepared runs disagree: %d vs %d", a.NumRows(), b.NumRows())
	}
	if stmt.SQL() == "" {
		t.Fatal("SQL() empty")
	}
	if _, err := db.Prepare("select nope from emp"); err == nil {
		t.Fatal("prepare must surface analysis errors")
	}
	// Concurrent reuse.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if res, err := stmt.Run(); err != nil || res.NumRows() != 2 {
					t.Errorf("concurrent prepared run: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSaveOpenDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := deptDB(t)
	if err := db.CreateIndex("emp", "dept"); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := "select name from emp e where e.salary >= all (select e2.salary from emp e2 where e2.dept = e.dept)"
	a, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("saved database answers differently")
	}
	if _, err := OpenDir(t.TempDir()); err == nil {
		t.Fatal("empty dir must error")
	}
}

func TestGovernedStrategies(t *testing.T) {
	db := deptDB(t)
	src := "select name from emp where salary not in (select salary from emp e2 where e2.dept = 20)"
	want, err := db.QueryWith(src, NestedOptimized)
	if err != nil {
		t.Fatal(err)
	}
	governed := []Strategy{
		NestedOptimized.WithMemoryBudget(64 << 10),
		NestedOptimized.WithMemoryBudget(1 << 20).WithParallelism(4),
		NestedOptimized.WithTimeout(time.Minute),
		Auto.WithMemoryBudget(64 << 10), // Auto promotes to NestedOptimized
	}
	for _, s := range governed {
		got, err := db.QueryWith(src, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s: result differs under governance:\n%s\nvs\n%s", s, got, want)
		}
	}

	// Expired timeouts abort instead of answering.
	if _, err := db.QueryWith(src, NestedOptimized.WithTimeout(time.Nanosecond)); err == nil {
		t.Fatal("nanosecond timeout did not abort")
	}

	// Native/Reference have no governed operators and are unchanged.
	if Native.WithMemoryBudget(1) != Native || Reference.WithTimeout(time.Second) != Reference {
		t.Fatal("WithMemoryBudget/WithTimeout must not alter native/reference strategies")
	}

	// The knobs are physical: strategy names keep their base identity.
	s := NestedOptimized.WithMemoryBudget(4096).WithTimeout(time.Second)
	name := s.String()
	for _, frag := range []string{"nested-optimized", "mem 4096", "timeout 1s"} {
		if !strings.Contains(name, frag) {
			t.Fatalf("String() = %q, missing %q", name, frag)
		}
	}

	// EXPLAIN surfaces the budget and timeout behaviour.
	plan, err := db.Explain(src, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"memory budget: 4096 bytes", "timeout: 1s"} {
		if !strings.Contains(plan, frag) {
			t.Fatalf("explain missing %q:\n%s", frag, plan)
		}
	}
}
