package nra_test

import (
	"fmt"
	"log"

	"nra"
)

// Example demonstrates the core flow: create tables, run a correlated
// ALL-subquery, read the result.
func Example() {
	db := nra.Open()
	db.MustCreateTable("emp", []string{"id", "name", "dept", "salary"}, "id",
		[]any{1, "ada", 10, 120},
		[]any{2, "bob", 10, 95},
		[]any{3, "eve", 20, 150},
	)
	res, err := db.Query(`
		select name from emp e
		where e.salary >= all (select e2.salary from emp e2 where e2.dept = e.dept)
		order by name`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows() {
		fmt.Println(row[0])
	}
	// Output:
	// ada
	// eve
}

// ExampleDB_QueryWith runs the same query under two strategies and shows
// they agree.
func ExampleDB_QueryWith() {
	db := nra.Open()
	db.MustCreateTable("r", []string{"k", "v"}, "k", []any{1, 5}, []any{2, 9})
	db.MustCreateTable("s", []string{"k", "v"}, "k", []any{1, 7}, []any{2, nil})

	src := "select v from r where v not in (select v from s)"
	a, _ := db.QueryWith(src, nra.NestedOptimized)
	b, _ := db.QueryWith(src, nra.Reference)
	fmt.Println(a.Equal(b), a.NumRows())
	// NOT IN over a set containing NULL is never True — zero rows, under
	// every strategy.
	// Output:
	// true 0
}

// ExampleDB_Explain shows the §4.1 tree expression for a nested query.
func ExampleDB_Explain() {
	db := nra.Open()
	db.MustCreateTable("r", []string{"k", "v"}, "k", []any{1, 5})
	db.MustCreateTable("s", []string{"k", "g", "v"}, "k", []any{1, 1, 7})

	out, err := db.Explain(
		"select v from r where r.v > all (select s.v from s where s.g = r.k)",
		nra.NestedOriginal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out[:25])
	// Output:
	// tree expression (§4.1):
}

// ExampleDB_Query_setOperations combines SELECTs with UNION.
func ExampleDB_Query_setOperations() {
	db := nra.Open()
	db.MustCreateTable("a", []string{"k", "v"}, "k", []any{1, 1}, []any{2, 2})
	db.MustCreateTable("b", []string{"k", "v"}, "k", []any{1, 2}, []any{2, 3})

	res, err := db.Query("select v from a union select v from b")
	if err != nil {
		log.Fatal(err)
	}
	res.Sort()
	for _, row := range res.Rows() {
		fmt.Println(row[0])
	}
	// Output:
	// 1
	// 2
	// 3
}

// ExampleDB_Query_aggregates uses a correlated scalar aggregate subquery.
func ExampleDB_Query_aggregates() {
	db := nra.Open()
	db.MustCreateTable("emp", []string{"id", "name", "dept", "salary"}, "id",
		[]any{1, "ada", 10, 120},
		[]any{2, "bob", 10, 95},
		[]any{3, "eve", 10, 100},
	)
	res, err := db.Query(`
		select name from emp e
		where e.salary > (select avg(e2.salary) from emp e2 where e2.dept = e.dept)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Rows()[0][0])
	// Output:
	// ada
}
