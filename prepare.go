package nra

import (
	"nra/internal/sql"
)

// Stmt is a prepared statement: parsed and analyzed once, executable many
// times (the analysis — block decomposition, name resolution — is the
// expensive part for short queries). A Stmt is immutable and safe for
// concurrent use.
type Stmt struct {
	db  *DB
	st  *sql.Statement
	src string
}

// Prepare parses and analyzes a statement for repeated execution.
func (db *DB) Prepare(src string) (*Stmt, error) {
	st, err := db.analyzeStatement(src)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, st: st, src: src}, nil
}

// Run executes the prepared statement with the default strategy.
func (s *Stmt) Run() (*Result, error) { return s.RunWith(Auto) }

// RunWith executes the prepared statement with an explicit strategy.
func (s *Stmt) RunWith(strategy Strategy) (*Result, error) {
	rel, err := s.db.executeStatement(s.st, strategy, s.src)
	if err != nil {
		return nil, err
	}
	return &Result{rel: rel}, nil
}

// SQL returns the original statement text.
func (s *Stmt) SQL() string { return s.src }
