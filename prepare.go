package nra

import (
	"context"
	"sync/atomic"

	"nra/internal/sql"
)

// Stmt is a prepared statement: parsed and analyzed once, executable many
// times (the analysis — block decomposition, name resolution — is the
// expensive part for short queries). A Stmt is safe for concurrent use.
//
// The binding is keyed on the catalog epoch: a Run after DML or DDL
// re-analyzes against the then-current snapshot, so a prepared statement
// never executes against a stale table version — and never pays for
// re-analysis while the catalog is unchanged.
type Stmt struct {
	db    *DB
	src   string
	bound atomic.Pointer[boundStmt]
}

// boundStmt pairs an analyzed statement with the epoch of the snapshot
// it was bound against.
type boundStmt struct {
	epoch uint64
	st    *sql.Statement
}

// Prepare parses and analyzes a statement for repeated execution.
func (db *DB) Prepare(src string) (*Stmt, error) {
	s := &Stmt{db: db, src: src}
	if _, err := s.statement(); err != nil {
		return nil, err
	}
	return s, nil
}

// statement returns the analyzed statement bound to the current
// snapshot, re-binding if the catalog moved since the last call. The
// re-bind goes through the database's shared plan cache when one is
// installed, so prepared statements across many sessions share one
// analysis per (normalized AST, epoch).
func (s *Stmt) statement() (*sql.Statement, error) {
	snap := s.db.cat.Snapshot()
	if b := s.bound.Load(); b != nil && b.epoch == snap.Epoch() {
		return b.st, nil
	}
	st, err := analyzeCached(s.db.planCache, snap, s.src)
	if err != nil {
		return nil, err
	}
	s.bound.Store(&boundStmt{epoch: snap.Epoch(), st: st})
	return st, nil
}

// Run executes the prepared statement with the default strategy.
func (s *Stmt) Run() (*Result, error) { return s.RunWith(Auto) }

// RunWith executes the prepared statement with an explicit strategy.
func (s *Stmt) RunWith(strategy Strategy) (*Result, error) {
	return s.RunWithContext(context.Background(), strategy)
}

// RunWithContext is RunWith with a cancellation context: the run aborts
// with the context's error at the next operator boundary after ctx is
// cancelled.
func (s *Stmt) RunWithContext(ctx context.Context, strategy Strategy) (*Result, error) {
	st, err := s.statement()
	if err != nil {
		return nil, err
	}
	rel, err := s.db.executeStatement(ctx, st, strategy, s.src)
	if err != nil {
		return nil, err
	}
	return &Result{rel: rel}, nil
}

// SQL returns the original statement text.
func (s *Stmt) SQL() string { return s.src }
