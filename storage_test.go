package nra

import (
	"fmt"
	"strings"
	"testing"
)

// bigDB builds an in-memory database whose main table spans several
// default-size row groups (8192 rows each) with a clustered primary
// key, so a columnar save produces a segment worth pruning.
func bigDB(t testing.TB, rows int) *DB {
	t.Helper()
	db := Open()
	data := make([][]any, rows)
	for i := range data {
		var note any
		if i%5 == 0 {
			note = nil
		} else {
			note = fmt.Sprintf("note-%d", i%97)
		}
		data[i] = []any{i, float64(i % 1000), note}
	}
	db.MustCreateTable("events", []string{"id", "score", "note"}, "id", data...)
	return db
}

// TestColumnarRoundTripAndPruning drives the full durable pipeline:
// Save (columnar by default) → OpenDir → the reloaded table is
// segment-backed, EXPLAIN shows zone-map pruning, and query results
// are identical to both the pre-save database and a CSV round trip.
func TestColumnarRoundTripAndPruning(t *testing.T) {
	const rows = 3*8192 + 100
	db := bigDB(t, rows)
	queries := []string{
		"select id, note from events where id < 100",
		"select id from events where score > 990.0 and id >= 24576",
		"select id from events where note is null and id < 8192",
	}
	baseline := make([]*Result, len(queries))
	for i, src := range queries {
		res, err := db.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = res
	}

	colDir, csvDir := t.TempDir(), t.TempDir()
	if err := db.Save(colDir); err != nil {
		t.Fatal(err)
	}
	if err := db.SetStorageFormat("csv"); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(csvDir); err != nil {
		t.Fatal(err)
	}

	for _, dir := range []string{colDir, csvDir} {
		back, err := OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for i, src := range queries {
			res, err := back.Query(src)
			if err != nil {
				t.Fatalf("%s after reload from %s: %v", src, dir, err)
			}
			if !res.Equal(baseline[i]) {
				t.Fatalf("%s changed across save/load via %s:\n%s\nvs\n%s", src, dir, res, baseline[i])
			}
		}
	}

	back, err := OpenDir(colDir)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := back.Explain("select id from events where id < 100", NestedOptimized.WithVectorized(true))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "[segments: 1/4]") {
		t.Fatalf("columnar reload should prune 3 of 4 row groups:\n%s", plan)
	}
}

// TestMutationDropsSegments pins the copy-on-write rule: DML produces a
// successor version whose rows no longer match the loaded segment, so
// the version must detach it (and scans must keep working).
func TestMutationDropsSegments(t *testing.T) {
	db := bigDB(t, 8192+10)
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.Exec("delete from events where id >= 8192"); err != nil {
		t.Fatal(err)
	}
	res, err := back.QueryWith("select id from events where id >= 8000", NestedOptimized.WithVectorized(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 192 {
		t.Fatalf("post-delete scan returned %d rows, want 192", res.NumRows())
	}
	// A save after the mutation writes a fresh segment that reloads.
	if err := back.Save(dir); err != nil {
		t.Fatal(err)
	}
	again, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := again.NumRows("events")
	if err != nil {
		t.Fatal(err)
	}
	if n != 8192 {
		t.Fatalf("reloaded table has %d rows, want 8192", n)
	}
}
