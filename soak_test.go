package nra

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// soakQueries is the read workload of the concurrency soak: a plain
// scan, a correlated EXISTS, an aggregate, and a negative operator —
// enough shape diversity to cross every linking-operator path while
// staying cheap per execution.
var soakQueries = []string{
	"select id, bal from acct where bal >= 0",
	"select a.id from acct a where exists (select * from acct b where b.dept = a.dept and b.bal > a.bal)",
	"select count(*) from acct",
	"select a.id from acct a where a.id not in (select b.id from acct b where b.bal < 0)",
}

// TestReaderWriterSoak runs 4 readers against 2 concurrent writers for
// at least 10 000 snapshot queries. Every reader pins a snapshot, runs a
// query on it, then re-runs the same query on the snapshot's Frozen()
// deep copy — a fully independent database no writer can reach. The two
// results must be byte-identical: that is snapshot isolation, end to
// end through the public API. Run with -race; the writers' inserts,
// updates and deletes overlap every read.
func TestReaderWriterSoak(t *testing.T) {
	const (
		readerCount = 4
		writerCount = 2
	)
	itersPerReader := 2500 // 4 × 2500 = 10k snapshot queries
	if testing.Short() {
		itersPerReader = 150
	}

	db := Open()
	db.MustCreateTable("acct", []string{"id", "dept", "bal"}, "id")
	for i := 0; i < 40; i++ {
		db.MustExec(fmt.Sprintf("insert into acct values (%d, %d, %d)", i, i%5, i*7%83))
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < writerCount; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			next := 1000 + w*1_000_000 // disjoint PK ranges per writer
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					if _, err := db.Exec(fmt.Sprintf("insert into acct values (%d, %d, %d)", next+i, i%5, i%97)); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := db.Exec(fmt.Sprintf("update acct set bal = bal + 1 where id = %d", next+i-1)); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := db.Exec(fmt.Sprintf("delete from acct where id = %d", next+i-2)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	var readers sync.WaitGroup
	for r := 0; r < readerCount; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; i < itersPerReader; i++ {
				src := soakQueries[(r+i)%len(soakQueries)]
				snap := db.Snapshot()
				got, err := snap.Query(src)
				if err != nil {
					t.Errorf("reader %d: %s: %v", r, src, err)
					return
				}
				oracle, err := snap.Frozen()
				if err != nil {
					t.Errorf("reader %d: freeze: %v", r, err)
					return
				}
				want, err := oracle.Query(src)
				if err != nil {
					t.Errorf("reader %d: oracle %s: %v", r, src, err)
					return
				}
				got.Sort()
				want.Sort()
				if got.String() != want.String() {
					t.Errorf("reader %d iter %d: snapshot %d diverges from its frozen oracle for %q:\nsnapshot:\n%s\noracle:\n%s",
						r, i, snap.Epoch(), src, got, want)
					return
				}
			}
		}(r)
	}

	readers.Wait()
	close(stop)
	writers.Wait()
}

// TestDurableSessionRecovery exercises the WAL end to end through the
// public API: journaled DML survives an abandoned session (a crash
// without Save), Save checkpoints the journal, and recovery after the
// checkpoint replays only what came after it.
func TestDurableSessionRecovery(t *testing.T) {
	dir := t.TempDir()
	db := Open()
	db.MustCreateTable("kv", []string{"k", "v"}, "k", []any{1, "one"})
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}

	// Session 1: journaled DML, then "crash" (no Save, no Close).
	d1, err := OpenDirDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1.MustExec("insert into kv values (2, 'two')")
	d1.MustExec("update kv set v = 'uno' where k = 1")

	rows := func(db *DB) string {
		t.Helper()
		res, err := db.Query("select k, v from kv")
		if err != nil {
			t.Fatal(err)
		}
		res.Sort()
		return res.String()
	}
	want := rows(d1)
	if err := d1.Close(); err != nil { // release the file handle; the point is: no Save ran
		t.Fatal(err)
	}

	// Recovery: the acknowledged mutations come back from the journal.
	d2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(d2); got != want {
		t.Fatalf("recovered state diverges:\n%s\nwant:\n%s", got, want)
	}

	// Session 2: checkpoint, then more journaled DML, then crash again.
	d3, err := OpenDirDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	d3.MustExec("delete from kv where k = 2")
	if err := d3.Save(dir); err != nil {
		t.Fatal(err)
	}
	d3.MustExec("insert into kv values (3, 'three')")
	want = rows(d3)
	if err := d3.Close(); err != nil {
		t.Fatal(err)
	}

	d4, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows(d4); got != want {
		t.Fatalf("post-checkpoint recovery diverges:\n%s\nwant:\n%s", got, want)
	}
}

// TestDurableDDLCheckpoint: CREATE/DROP TABLE in a durable session are
// made durable eagerly (full save + WAL checkpoint), so they survive a
// crash even though the journal records only DML.
func TestDurableDDLCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := Open()
	db.MustCreateTable("kv", []string{"k", "v"}, "k", []any{1, "one"})
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	d1, err := OpenDirDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	d1.MustExec("create table extra (id integer primary key, note varchar)")
	d1.MustExec("insert into extra values (1, 'kept')")
	d1.MustExec("drop table kv")
	// Crash: no explicit Save after the last DDL.
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	tables := d2.Tables()
	if len(tables) != 1 || tables[0] != "extra" {
		t.Fatalf("recovered tables = %v, want [extra]", tables)
	}
	res, err := d2.Query("select note from extra where id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("journaled insert into the new table lost: %d rows", res.NumRows())
	}
}

// TestQueryContextCancel: a canceled context aborts the query with the
// context's error instead of returning rows.
func TestQueryContextCancel(t *testing.T) {
	db := dmlDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "select * from emp"); err != context.Canceled {
		t.Fatalf("canceled query returned %v, want context.Canceled", err)
	}
	// A live context still works.
	res, err := db.QueryContext(context.Background(), "select count(*) from emp")
	if err != nil || res.NumRows() != 1 {
		t.Fatalf("live-context query: %v", err)
	}
}
