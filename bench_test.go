package nra

// This file holds one testing.B benchmark per table/figure of the paper's
// evaluation (§5), each with one sub-benchmark per strategy series. The
// full parameter sweeps with measured block sizes — the actual figure
// regeneration — live in cmd/figures; these benchmarks time the largest
// sweep point of every figure so `go test -bench=.` exercises each
// experiment end to end.
//
//	Figure 4   → BenchmarkFig4Query1
//	(in-text)  → BenchmarkFig4Query1NotNull, BenchmarkProcQ1, BenchmarkProcQ2
//	Figure 5   → BenchmarkFig5Query2a
//	Figure 6   → BenchmarkFig6Query2b
//	Figure 7   → BenchmarkFig7Query3a_{a,b,c}
//	Figure 8   → BenchmarkFig8Query3b_{a,b,c}
//	Figure 9   → BenchmarkFig9Query3c_{a,b,c}
//	(DESIGN)   → BenchmarkAblation*
//	(parallel) → BenchmarkParallelism (serial vs P=2/4/8, docs/PARALLELISM.md)

import (
	"sync"
	"testing"

	"nra/internal/bench"
	"nra/internal/core"
	"nra/internal/native"
	"nra/internal/obsv"
	"nra/internal/relation"
	"nra/internal/sql"
)

// benchSF keeps `go test -bench=.` under a couple of minutes on one core;
// cmd/figures defaults to the larger sf used for EXPERIMENTS.md.
const benchSF = 0.003

var (
	benchEnvOnce sync.Once
	benchEnv     *bench.Env
	benchEnvErr  error
)

func sharedEnv(b *testing.B) *bench.Env {
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = bench.NewEnv(bench.Config{SF: benchSF, Runs: 1, Seed: 42, Verify: false})
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// analyzeLargest parses and analyzes the largest sweep point of a figure.
func analyzeLargest(b *testing.B, figID string) *sql.Query {
	e := sharedEnv(b)
	sqls, err := e.QuerySQL(figID)
	if err != nil {
		b.Fatal(err)
	}
	sel, err := sql.Parse(sqls[len(sqls)-1])
	if err != nil {
		b.Fatal(err)
	}
	q, err := sql.Analyze(sel, e.Cat)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

func benchFigure(b *testing.B, figID string) {
	q := analyzeLargest(b, figID)
	strategies := []struct {
		name string
		run  func(*sql.Query) (*relation.Relation, error)
	}{
		{"native", native.Execute},
		{"nra-original", func(q *sql.Query) (*relation.Relation, error) {
			return core.Execute(q, core.Original())
		}},
		{"nra-optimized", func(q *sql.Query) (*relation.Relation, error) {
			return core.Execute(q, core.Optimized())
		}},
	}
	for _, st := range strategies {
		b.Run(st.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.run(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4Query1 regenerates Figure 4's largest point: Query 1, the
// one-level correlated >ALL query, without NOT NULL constraints (native
// must nested-iterate).
func BenchmarkFig4Query1(b *testing.B) { benchFigure(b, "fig4") }

// BenchmarkFig5Query2a regenerates Figure 5: mixed <ANY / NOT EXISTS on a
// linearly correlated two-level query (native's best case — a
// semijoin/antijoin pipeline).
func BenchmarkFig5Query2a(b *testing.B) { benchFigure(b, "fig5") }

// BenchmarkFig6Query2b regenerates Figure 6: the same query with negative
// <ALL / NOT EXISTS (native degrades to nested iteration; the nested
// relational cost stays at Figure 5's level).
func BenchmarkFig6Query2b(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7Query3a_* regenerate Figure 7(a,b,c): Query 3a (mixed
// ALL/EXISTS, third block correlated to both outer blocks) under the
// three correlated-predicate variants.
func BenchmarkFig7Query3a_a(b *testing.B) { benchFigure(b, "fig7a") }
func BenchmarkFig7Query3a_b(b *testing.B) { benchFigure(b, "fig7b") }
func BenchmarkFig7Query3a_c(b *testing.B) { benchFigure(b, "fig7c") }

// BenchmarkFig8Query3b_* regenerate Figure 8(a,b,c): Query 3b (negative
// ALL/NOT EXISTS) — the native approach's worst case.
func BenchmarkFig8Query3b_a(b *testing.B) { benchFigure(b, "fig8a") }
func BenchmarkFig8Query3b_b(b *testing.B) { benchFigure(b, "fig8b") }
func BenchmarkFig8Query3b_c(b *testing.B) { benchFigure(b, "fig8c") }

// BenchmarkFig9Query3c_* regenerate Figure 9(a,b,c): Query 3c (positive
// ANY/EXISTS), where §4.2.5's rewrite matches the native (semi)join plan.
func BenchmarkFig9Query3c_a(b *testing.B) { benchFigure(b, "fig9a") }
func BenchmarkFig9Query3c_b(b *testing.B) { benchFigure(b, "fig9b") }
func BenchmarkFig9Query3c_c(b *testing.B) { benchFigure(b, "fig9c") }

// BenchmarkFig4Query1NotNull regenerates the in-text Query 1 variant:
// with NOT NULL declared, native's antijoin is legal and competitive.
func BenchmarkFig4Query1NotNull(b *testing.B) {
	// Constraints mutate the environment; use a private one.
	env, err := bench.NewEnv(bench.Config{SF: benchSF, Runs: 1, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := env.Fig4NotNull(); err != nil {
		b.Fatal(err)
	}
	sqls, err := env.QuerySQL("fig4-notnull")
	if err != nil {
		b.Fatal(err)
	}
	sel, err := sql.Parse(sqls[len(sqls)-1])
	if err != nil {
		b.Fatal(err)
	}
	q, err := sql.Analyze(sel, env.Cat)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("native-antijoin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := native.Execute(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nra-optimized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Execute(q, core.Optimized()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProcQ1 regenerates the in-text Query 1 processing table:
// nest + linking selection over the intermediate result, original
// two-pass vs optimized one-pass.
func BenchmarkProcQ1(b *testing.B) {
	e := sharedEnv(b)
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.ProcQ1(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProcQ2 regenerates the in-text Query 2 processing table.
func BenchmarkProcQ2(b *testing.B) {
	e := sharedEnv(b)
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.ProcQ2(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation times each §4.2 optimization in isolation on the
// workload families (the design-choice benchmarks from DESIGN.md).
func BenchmarkAblation(b *testing.B) {
	configs := []struct {
		name string
		opt  core.Options
	}{
		{"original", core.Original()},
		{"fused", core.Options{Fused: true}},
		{"bottomup", core.Options{BottomUp: true, Fused: true}},
		{"pushdown", core.Options{NestPushdown: true}},
		{"positive", core.Options{PositiveRewrite: true}},
		{"optimized", core.Optimized()},
	}
	for _, fig := range []string{"fig4", "fig6", "fig8a", "fig9a"} {
		q := analyzeLargest(b, fig)
		for _, c := range configs {
			b.Run(fig+"/"+c.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Execute(q, c.opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkParallelism times the partitioned-parallel operators against
// the serial ones (P = 1 vs 2/4/8) on the workload families; results are
// tuple-for-tuple identical at every degree, so this measures pure
// physical speedup. cmd/figures -parallel runs the same ablation at a
// larger scale factor for EXPERIMENTS.md.
func BenchmarkParallelism(b *testing.B) {
	par := func(p int) core.Options {
		opt := core.Optimized()
		opt.Parallelism = p
		return opt
	}
	configs := []struct {
		name string
		opt  core.Options
	}{
		{"serial-p1", core.Optimized()},
		{"parallel-p2", par(2)},
		{"parallel-p4", par(4)},
		{"parallel-p8", par(8)},
	}
	for _, fig := range []string{"fig4", "fig6", "fig8a"} {
		q := analyzeLargest(b, fig)
		for _, c := range configs {
			b.Run(fig+"/"+c.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Execute(q, c.opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTracing times the observability overhead: the fully optimized
// configuration untraced versus with a per-query span tracer. Spans are
// recorded at operator entry/exit and per-morsel claims only, so the
// traced series must stay within a few percent of the untraced one
// (cmd/figures -tracing runs the same ablation with verification).
func BenchmarkTracing(b *testing.B) {
	configs := []struct {
		name string
		mk   func() core.Options
	}{
		{"untraced", core.Optimized},
		{"traced", func() core.Options {
			opt := core.Optimized()
			opt.Tracer = obsv.NewTracer()
			return opt
		}},
	}
	for _, fig := range []string{"fig4", "fig6", "fig8a"} {
		q := analyzeLargest(b, fig)
		for _, c := range configs {
			b.Run(fig+"/"+c.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Execute(q, c.mk()); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
