package nra

import (
	"fmt"
	"strings"

	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/sql"
	"nra/internal/value"
	"nra/internal/wal"
)

// Exec runs a data-modification or data-definition statement — INSERT
// INTO ... VALUES, DELETE FROM ... WHERE, UPDATE ... SET ... WHERE,
// CREATE TABLE, DROP TABLE — and returns the number of affected rows
// (0 for DDL). DELETE and UPDATE WHERE clauses have the full power of
// the query language (nested subqueries included): the engine first
// SELECTs the target rows' primary keys against the transaction's
// snapshot, then stages the mutation and commits it atomically.
//
// Exec is safe to run concurrently with queries and with other Execs:
// writers serialise on the catalog's single writer lock, and every
// statement commits by publishing a new immutable snapshot, so
// in-flight queries keep reading the version they started on and never
// observe a partial mutation. In a durable session (OpenDirDurable) the
// mutation is journaled to the write-ahead log — and fsynced — before
// it commits, so an acknowledged Exec survives a crash. SELECT
// statements are rejected; use Query.
func (db *DB) Exec(src string) (int, error) {
	parsed, err := sql.ParseStatement(src)
	if err != nil {
		return 0, err
	}
	switch st := parsed.(type) {
	case *sql.InsertStmt:
		return db.execInsert(st)
	case *sql.DeleteStmt:
		return db.execDelete(st)
	case *sql.UpdateStmt:
		return db.execUpdate(st)
	case *sql.CreateTableStmt:
		return 0, db.execCreateTable(st)
	case *sql.DropTableStmt:
		return 0, db.execDropTable(st.Name)
	default:
		return 0, fmt.Errorf("nra: Exec expects INSERT/DELETE/UPDATE/CREATE/DROP; use Query for SELECT")
	}
}

// execCreateTable registers an empty table from a CREATE TABLE statement.
func (db *DB) execCreateTable(st *sql.CreateTableStmt) error {
	schema := &relation.Schema{Name: st.Name}
	pk := ""
	for _, c := range st.Cols {
		schema.Cols = append(schema.Cols, relation.Column{Name: c.Name, Type: c.Type})
		if c.PK {
			pk = c.Name
		}
	}
	tx := db.cat.Begin()
	defer tx.Rollback()
	tbl, err := tx.Create(st.Name, relation.New(schema), pk)
	if err != nil {
		return err
	}
	// The staged table is not yet published, so the construction-time
	// mutators are safe here.
	for _, c := range st.Cols {
		if c.NotNull && !c.PK {
			if err := tbl.SetNotNull(c.Name); err != nil {
				return err
			}
		}
	}
	tx.Commit()
	return db.checkpointDDL()
}

func (db *DB) execDropTable(name string) error {
	if err := db.cat.Drop(name); err != nil {
		return err
	}
	return db.checkpointDDL()
}

// checkpointDDL makes a schema change durable immediately. The WAL
// journals only DML, so in a durable session CREATE/DROP TABLE force a
// full save (and WAL checkpoint) right away — DDL is rare enough that
// an eager checkpoint is simpler and safer than journaled schema ops.
func (db *DB) checkpointDDL() error {
	if db.journal == nil {
		return nil
	}
	return db.Save(db.dir)
}

// MustExec is Exec that panics on error; for tests and examples.
func (db *DB) MustExec(src string) int {
	n, err := db.Exec(src)
	if err != nil {
		panic(err)
	}
	return n
}

func (db *DB) execInsert(st *sql.InsertStmt) (int, error) {
	tx := db.cat.Begin()
	defer tx.Rollback()
	tbl, err := tx.Table(st.Table)
	if err != nil {
		return 0, err
	}
	schema := tbl.Rel.Schema
	// Map the statement's column list (or the full schema) to positions.
	target := make([]int, 0, len(schema.Cols))
	if len(st.Cols) == 0 {
		for i := range schema.Cols {
			target = append(target, i)
		}
	} else {
		for _, c := range st.Cols {
			j := schema.ColIndex(c)
			if j < 0 {
				return 0, fmt.Errorf("nra: table %s has no column %q", st.Table, c)
			}
			target = append(target, j)
		}
	}

	empty := relation.NewSchema("values")
	rows := make([][]value.Value, 0, len(st.Rows))
	for ri, exprRow := range st.Rows {
		if len(exprRow) != len(target) {
			return 0, fmt.Errorf("nra: INSERT row %d has %d values, want %d", ri, len(exprRow), len(target))
		}
		full := make([]value.Value, len(schema.Cols)) // unnamed columns default to NULL
		for i, e := range exprRow {
			lowered, err := lowerConst(e)
			if err != nil {
				return 0, fmt.Errorf("nra: INSERT row %d: %w", ri, err)
			}
			compiled, err := expr.Compile(lowered, empty)
			if err != nil {
				return 0, fmt.Errorf("nra: INSERT row %d: values must be constants: %w", ri, err)
			}
			v, err := compiled.Eval(relation.Tuple{})
			if err != nil {
				return 0, fmt.Errorf("nra: INSERT row %d: %w", ri, err)
			}
			full[target[i]] = v
		}
		rows = append(rows, full)
	}
	n, err := tx.Insert(st.Table, rows)
	if err != nil {
		return 0, err
	}
	if db.journal != nil && n > 0 {
		cells := make([][]wal.Cell, len(rows))
		for i, r := range rows {
			cells[i] = wal.EncodeRow(r)
		}
		if err := db.journal.Append(wal.Record{Op: wal.OpInsert, Table: st.Table, Rows: cells}); err != nil {
			return 0, err
		}
	}
	tx.Commit()
	return n, nil
}

func (db *DB) execDelete(st *sql.DeleteStmt) (int, error) {
	tx := db.cat.Begin()
	defer tx.Rollback()
	tbl, err := tx.Table(st.Table)
	if err != nil {
		return 0, err
	}
	keys, _, err := db.selectTargets(tx.Snapshot(), st.Table, tbl.PK, nil, st.Where)
	if err != nil {
		return 0, err
	}
	n, err := tx.Delete(st.Table, keys)
	if err != nil {
		return 0, err
	}
	if db.journal != nil && n > 0 {
		if err := db.journal.Append(wal.Record{Op: wal.OpDelete, Table: st.Table, Keys: wal.EncodeRow(keys)}); err != nil {
			return 0, err
		}
	}
	tx.Commit()
	return n, nil
}

func (db *DB) execUpdate(st *sql.UpdateStmt) (int, error) {
	tx := db.cat.Begin()
	defer tx.Rollback()
	tbl, err := tx.Table(st.Table)
	if err != nil {
		return 0, err
	}
	cols := make([]string, len(st.Sets))
	exprs := make([]sql.Expr, len(st.Sets))
	for i, sc := range st.Sets {
		if tbl.Rel.Schema.ColIndex(sc.Col) < 0 {
			return 0, fmt.Errorf("nra: table %s has no column %q", st.Table, sc.Col)
		}
		cols[i] = sc.Col
		exprs[i] = sc.Expr
	}
	keys, vals, err := db.selectTargets(tx.Snapshot(), st.Table, tbl.PK, exprs, st.Where)
	if err != nil {
		return 0, err
	}
	n, err := tx.Update(st.Table, keys, cols, vals)
	if err != nil {
		return 0, err
	}
	if db.journal != nil && n > 0 {
		cells := make([][]wal.Cell, len(vals))
		for i, r := range vals {
			cells[i] = wal.EncodeRow(r)
		}
		rec := wal.Record{Op: wal.OpUpdate, Table: st.Table, Keys: wal.EncodeRow(keys), Cols: cols, Vals: cells}
		if err := db.journal.Append(rec); err != nil {
			return 0, err
		}
	}
	tx.Commit()
	return n, nil
}

// selectTargets runs "SELECT pk[, setExprs...] FROM table [WHERE ...]"
// through the regular query engine against the transaction's snapshot
// and returns the matched primary keys (and, for UPDATE, the evaluated
// new values per row).
func (db *DB) selectTargets(snap sql.Resolver, table, pk string, setExprs []sql.Expr, where sql.Expr) ([]value.Value, [][]value.Value, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "select %s", unqualifyName(pk))
	for _, e := range setExprs {
		fmt.Fprintf(&b, ", %s", e)
	}
	fmt.Fprintf(&b, " from %s", table)
	if where != nil {
		fmt.Fprintf(&b, " where %s", where)
	}
	st, err := analyzeOn(snap, b.String())
	if err != nil {
		return nil, nil, fmt.Errorf("nra: %w (in rewritten DML query %q)", err, b.String())
	}
	rel, err := db.executeStatement(nil, st, Auto, b.String())
	if err != nil {
		return nil, nil, err
	}
	keys := make([]value.Value, rel.Len())
	var vals [][]value.Value
	if len(setExprs) > 0 {
		vals = make([][]value.Value, rel.Len())
	}
	for i, t := range rel.Tuples {
		keys[i] = t.Atoms[0]
		if vals != nil {
			vals[i] = append([]value.Value(nil), t.Atoms[1:]...)
		}
	}
	return keys, vals, nil
}

// lowerConst lowers a constant AST expression (literals and arithmetic;
// no column references or subqueries) for INSERT values.
func lowerConst(e sql.Expr) (expr.Expr, error) {
	switch x := e.(type) {
	case *sql.Lit:
		return expr.Lit{V: x.V}, nil
	case *sql.BinOp:
		l, err := lowerConst(x.L)
		if err != nil {
			return nil, err
		}
		r, err := lowerConst(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+":
			return expr.Arith{Op: expr.Add, L: l, R: r}, nil
		case "-":
			return expr.Arith{Op: expr.Sub, L: l, R: r}, nil
		case "*":
			return expr.Arith{Op: expr.Mul, L: l, R: r}, nil
		case "/":
			return expr.Arith{Op: expr.Div, L: l, R: r}, nil
		}
	}
	return nil, fmt.Errorf("%q is not a constant expression", e)
}

func unqualifyName(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
