package nra

import (
	"container/list"
	"sync"

	"nra/internal/catalog"
	"nra/internal/exec"
	"nra/internal/sql"
)

// PlanCache is a shared LRU cache of analyzed statements, keyed on the
// statement's *normalized* AST rendering plus the snapshot epoch it was
// bound against. Analysis — parsing, block decomposition, name
// resolution — is the dominant fixed cost of short queries, and the
// epoch key makes invalidation exact: any committed mutation (DML, DDL,
// ANALYZE) bumps the epoch, so a cached binding is reused if and only if
// the catalog version it resolved against is still current. Textual
// variants that parse to the same AST ("select  X from t" vs
// "SELECT x FROM t") share one entry.
//
// One PlanCache is safe for concurrent use and is meant to be shared by
// every session of a serving process (see DB.SetPlanCache and
// internal/service). Entries hold analyzed statements, which are
// immutable during execution, so concurrent sessions may execute the
// same cached binding simultaneously.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *planEntry
	entries map[string]*list.Element

	hits, misses, invalidations, evictions uint64
}

// planEntry is one cached binding: the normalized key, the epoch it was
// analyzed against, and the analyzed statement.
type planEntry struct {
	key   string
	epoch uint64
	st    *sql.Statement
}

// NewPlanCache returns a cache holding at most capacity analyzed
// statements (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{cap: capacity, lru: list.New(), entries: make(map[string]*list.Element)}
}

// PlanCacheStats is a point-in-time snapshot of a cache's counters.
type PlanCacheStats struct {
	// Hits counts lookups answered from the cache at the current epoch.
	Hits uint64
	// Misses counts lookups with no entry for the normalized AST.
	Misses uint64
	// Invalidations counts lookups that found an entry bound against an
	// older epoch — stale after DML/DDL/ANALYZE — which was discarded
	// and re-analyzed.
	Invalidations uint64
	// Evictions counts entries dropped by LRU capacity pressure.
	Evictions uint64
	// Entries is the current number of cached statements.
	Entries int
}

// Stats snapshots the cache's counters.
func (c *PlanCache) Stats() PlanCacheStats {
	if c == nil {
		return PlanCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		Entries:       c.lru.Len(),
	}
}

// lookup returns the cached statement for (key, epoch), recording a hit,
// miss, or invalidation. A stale entry is removed so the follow-up
// insert replaces it.
func (c *PlanCache) lookup(key string, epoch uint64) (*sql.Statement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*planEntry)
	if e.epoch != epoch {
		c.invalidations++
		c.lru.Remove(el)
		delete(c.entries, key)
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return e.st, true
}

// insert caches a freshly analyzed statement, evicting from the LRU tail
// when over capacity.
func (c *PlanCache) insert(key string, epoch uint64, st *sql.Statement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = &planEntry{key: key, epoch: epoch, st: st}
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&planEntry{key: key, epoch: epoch, st: st})
	for c.lru.Len() > c.cap {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(*planEntry).key)
		c.evictions++
	}
}

// SetPlanCache installs a shared plan cache on the database: Query,
// Snap.Query, prepared statements and DML target selection all consult
// it before re-analyzing. pc may be shared across any number of DBs and
// sessions; nil removes the cache. Not synchronised with in-flight
// queries — install at session setup.
func (db *DB) SetPlanCache(pc *PlanCache) { db.planCache = pc }

// analyzeCached binds src against snap, consulting the plan cache when
// one is installed. The cache key is the parse tree's normalized
// rendering, so it never caches an unparseable statement, and two
// textual variants of one query share an entry.
func analyzeCached(pc *PlanCache, snap *catalog.Snapshot, src string) (*sql.Statement, error) {
	if pc == nil {
		return analyzeOn(snap, src)
	}
	parsed, err := sql.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	key := parsed.String()
	if st, ok := pc.lookup(key, snap.Epoch()); ok {
		return st, nil
	}
	st, err := sql.AnalyzeStatement(parsed, snap)
	if err != nil {
		return nil, err
	}
	pc.insert(key, snap.Epoch(), st)
	return st, nil
}

// MemPool is a shared, byte-accounted memory budget pooled across
// concurrent queries: every strategy wired to it (WithMemoryPool)
// charges its operators' working-state reservations against the pool,
// so N in-flight queries together stay within one configured bound
// instead of each assuming the whole machine. Reservations the pool
// refuses degrade the operator to its spill path with byte-identical
// results — the same graceful degradation a per-query budget triggers.
// A nil *MemPool imposes no bound.
type MemPool struct {
	p *exec.MemPool
}

// NewMemPool returns a pool with the given capacity in bytes (≤ 0 =
// unbounded, returning a pool that never refuses).
func NewMemPool(bytes int64) *MemPool { return &MemPool{p: exec.NewMemPool(bytes)} }

// Cap returns the pool capacity in bytes (0 = unbounded).
func (p *MemPool) Cap() int64 {
	if p == nil {
		return 0
	}
	return p.p.Cap()
}

// Used returns the bytes currently reserved by in-flight queries.
func (p *MemPool) Used() int64 {
	if p == nil {
		return 0
	}
	return p.p.Used()
}

// Peak returns the high-water mark of concurrently reserved bytes.
func (p *MemPool) Peak() int64 {
	if p == nil {
		return 0
	}
	return p.p.Peak()
}

// Denials returns how many reservations the pool refused — each one a
// spill decision induced by aggregate memory pressure.
func (p *MemPool) Denials() int64 {
	if p == nil {
		return 0
	}
	return p.p.Denials()
}

// WithMemoryPool returns a copy of a nested strategy whose queries
// charge working state against the shared pool (see MemPool) in
// addition to any per-query WithMemoryBudget bound. Auto becomes
// NestedOptimized; Native/Reference are not budget-governed and are
// returned unchanged. A nil pool removes the wiring.
func (s Strategy) WithMemoryPool(p *MemPool) Strategy {
	if s.kind == kindNative || s.kind == kindReference {
		return s
	}
	s = s.promote()
	if p == nil {
		s.opts.MemPool = nil
	} else {
		s.opts.MemPool = p.p
	}
	return s
}

// WithQueryTag returns a copy of a nested strategy whose queries are
// attributed to the given serving-layer session ID and per-session
// query counter: the tag lands on the trace's root span and on
// slow-query-log entries, so concurrent interleavings stay attributable
// (see docs/SERVICE.md). Native/Reference are not instrumented and are
// returned unchanged.
func (s Strategy) WithQueryTag(session string, queryID uint64) Strategy {
	if s.kind == kindNative || s.kind == kindReference {
		return s
	}
	s = s.promote()
	s.opts.SessionID = session
	s.opts.QueryID = queryID
	return s
}
