package nra

import (
	"strings"
	"testing"
)

func setOpDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	db.MustCreateTable("a", []string{"id", "v"}, "id",
		[]any{1, 1}, []any{2, 2}, []any{3, 2}, []any{4, 3})
	db.MustCreateTable("b", []string{"id", "v"}, "id",
		[]any{1, 2}, []any{2, 3}, []any{3, 3}, []any{4, 5})
	return db
}

func values(t *testing.T, db *DB, src string) map[int64]int {
	t.Helper()
	res, err := db.Query(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	out := map[int64]int{}
	for _, row := range res.Rows() {
		out[row[0].(int64)]++
	}
	return out
}

func TestUnion(t *testing.T) {
	db := setOpDB(t)
	got := values(t, db, "select v from a union select v from b")
	want := map[int64]int{1: 1, 2: 1, 3: 1, 5: 1}
	if len(got) != len(want) {
		t.Fatalf("UNION: %v", got)
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("UNION: %v", got)
		}
	}
	all := values(t, db, "select v from a union all select v from b")
	if all[2] != 3 || all[3] != 3 || all[1] != 1 || all[5] != 1 {
		t.Fatalf("UNION ALL: %v", all)
	}
}

func TestIntersectExcept(t *testing.T) {
	db := setOpDB(t)
	inter := values(t, db, "select v from a intersect select v from b")
	if len(inter) != 2 || inter[2] != 1 || inter[3] != 1 {
		t.Fatalf("INTERSECT: %v", inter)
	}
	interAll := values(t, db, "select v from a intersect all select v from b")
	// a has v: {1,2,2,3}; b has {2,3,3,5} → bag ∩ = {2,3}.
	if interAll[2] != 1 || interAll[3] != 1 || len(interAll) != 2 {
		t.Fatalf("INTERSECT ALL: %v", interAll)
	}
	except := values(t, db, "select v from a except select v from b")
	if len(except) != 1 || except[1] != 1 {
		t.Fatalf("EXCEPT: %v", except)
	}
	exceptAll := values(t, db, "select v from a except all select v from b")
	// {1,2,2,3} − {2,3,3,5} = {1,2}.
	if exceptAll[1] != 1 || exceptAll[2] != 1 || len(exceptAll) != 2 {
		t.Fatalf("EXCEPT ALL: %v", exceptAll)
	}
}

func TestSetOpPrecedence(t *testing.T) {
	db := setOpDB(t)
	// INTERSECT binds tighter: a ∪ (a ∩ b).
	got := values(t, db, "select v from a union select v from a intersect select v from b")
	// a∩b = {2,3}; a∪{2,3} = {1,2,3}.
	if len(got) != 3 || got[1] != 1 || got[2] != 1 || got[3] != 1 {
		t.Fatalf("precedence: %v", got)
	}
}

func TestSetOpWithSubqueries(t *testing.T) {
	db := setOpDB(t)
	// Each leg is a full nested query; both run under every strategy.
	src := `select v from a where v > all (select v from b where b.id = a.id)
	        union
	        select v from b where not exists (select * from a where a.v = b.v)`
	var first *Result
	for _, s := range []Strategy{Auto, NestedOptimized, NestedOriginal, Native, Reference} {
		res, err := db.QueryWith(src, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if first == nil {
			first = res
		} else if !res.Equal(first) {
			t.Fatalf("strategy %s disagrees on set-op statement", s)
		}
	}
}

func TestSetOpErrors(t *testing.T) {
	db := setOpDB(t)
	if _, err := db.Query("select id, v from a union select v from b"); err == nil {
		t.Fatal("width mismatch must error")
	}
	if _, err := db.Query("select v from a union"); err == nil {
		t.Fatal("dangling UNION must error")
	}
}

func TestSetOpExplain(t *testing.T) {
	db := setOpDB(t)
	out, err := db.Explain("select v from a union select v from b", NestedOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "leaf 1") || !strings.Contains(out, "leaf 2") {
		t.Fatalf("set-op explain should show both leaves:\n%s", out)
	}
}

func TestSetOpBagLaws(t *testing.T) {
	db := setOpDB(t)
	// |A UNION ALL B| = |A| + |B|
	ua, err := db.Query("select v from a union all select v from b")
	if err != nil {
		t.Fatal(err)
	}
	if ua.NumRows() != 8 {
		t.Fatalf("UNION ALL size = %d", ua.NumRows())
	}
	// (A EXCEPT ALL B) + (A INTERSECT ALL B) has |A| rows.
	ea, _ := db.Query("select v from a except all select v from b")
	ia, _ := db.Query("select v from a intersect all select v from b")
	if ea.NumRows()+ia.NumRows() != 4 {
		t.Fatalf("bag partition law broken: %d + %d != 4", ea.NumRows(), ia.NumRows())
	}
}
