// Aggregates: scalar aggregate subqueries (MIN/MAX/SUM/AVG/COUNT) — the
// extension the paper's §2 analysis motivates. The classical rewrites of
// quantified predicates into aggregates are NOT equivalent under NULLs:
//
//	R.A > ALL (select S.B ...)   ≠   R.A > (select max(S.B) ...)
//
// because MAX skips NULLs while ALL must treat them as Unknown. This
// program shows both forms side by side, plus correlated aggregate
// subqueries (the classic "above department average" query) and
// aggregate-only select lists.
//
//	go run ./examples/aggregates
package main

import (
	"fmt"
	"log"

	"nra"
)

func main() {
	db := nra.Open()
	db.MustCreateTable("emp", []string{"id", "name", "dept", "salary"}, "id",
		[]any{1, "ada", 10, 120},
		[]any{2, "bob", 10, 95},
		[]any{3, "cho", 10, 70},
		[]any{4, "dee", 20, 80},
		[]any{5, "eve", 20, nil}, // unknown salary
		[]any{6, "fay", 30, 150},
	)

	show := func(title, sql string) {
		res, err := db.Query(sql)
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		res.Sort()
		fmt.Printf("— %s\n%s\n", title, res)
	}

	show("earning above their department's average (correlated AVG)", `
		select name from emp e
		where e.salary > (select avg(e2.salary) from emp e2 where e2.dept = e.dept)`)

	show("department 20's headcount and salary stats (aggregate select list)", `
		select count(*), count(salary), min(salary), max(salary), avg(salary)
		from emp where dept = 20`)

	fmt.Println("— §2's warning, live: dept 20 has salaries {80, NULL}")
	show("  via > ALL   (NULL ⇒ Unknown ⇒ empty result)", `
		select name from emp
		where salary > all (select e2.salary from emp e2 where e2.dept = 20)`)
	show("  via > MAX   (MAX skips NULLs ⇒ 80 ⇒ three rows)", `
		select name from emp
		where salary > (select max(e2.salary) from emp e2 where e2.dept = 20)`)
	fmt.Println("the two forms disagree — exactly why ALL cannot be rewritten")
	fmt.Println("as MAX when the linked attribute is nullable.")
	fmt.Println()

	// COUNT-based emptiness is, by contrast, a sound rewrite.
	a, err := db.Query("select name from emp e where 0 = (select count(*) from emp e2 where e2.dept = e.dept and e2.salary > e.salary)")
	if err != nil {
		log.Fatal(err)
	}
	b, err := db.Query("select name from emp e where not exists (select * from emp e2 where e2.dept = e.dept and e2.salary > e.salary)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT(*)=0 vs NOT EXISTS agree: %v (top-by-dept via both forms)\n", a.Equal(b))

	// The plan: the aggregate is computed over the nested group the
	// approach builds anyway — one more fold over the same set.
	plan, err := db.Explain(`
		select name from emp e
		where e.salary > (select avg(e2.salary) from emp e2 where e2.dept = e.dept)`,
		nra.NestedOptimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan for the correlated AVG query:\n%s", plan)
}
