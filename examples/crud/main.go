// CRUD: build a database purely from SQL — CREATE TABLE, INSERT, UPDATE,
// DELETE — then query it with nested subqueries. DELETE/UPDATE WHERE
// clauses use the full query engine, so correlated subqueries work inside
// mutations too.
//
//	go run ./examples/crud
package main

import (
	"fmt"
	"log"

	"nra"
)

func main() {
	db := nra.Open()

	script := []string{
		`create table dept (dno integer primary key, dname varchar not null, budget integer)`,
		`create table emp (
			id integer primary key,
			name varchar not null,
			dept integer,
			salary integer)`,
		`insert into dept values (10, 'eng', 1000), (20, 'ops', 400), (30, 'lab', 50)`,
		`insert into emp values
			(1, 'ada', 10, 120), (2, 'bob', 10, 95),
			(3, 'cho', 20, 80), (4, 'dee', 20, 75), (5, 'eve', 30, 60)`,
	}
	for _, stmt := range script {
		if _, err := db.Exec(stmt); err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
	}

	show := func(title, sql string) {
		res, err := db.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		res.Sort()
		fmt.Printf("— %s\n%s\n", title, res)
	}

	show("initial staff", "select name, dept, salary from emp order by name")

	// A raise for everyone under their department's average — note the
	// correlated aggregate subquery inside UPDATE.
	n, err := db.Exec(`update emp set salary = salary + 10
		where salary < (select avg(e2.salary) from emp e2 where e2.dept = emp.dept)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raised %d below-average salaries\n\n", n)

	// Dissolve departments that cannot pay anyone — NOT EXISTS inside
	// DELETE.
	n, err = db.Exec(`delete from dept where not exists
		(select * from emp where emp.dept = dept.dno and emp.salary <= dept.budget)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dissolved %d unaffordable department(s)\n\n", n)

	show("departments left", "select dname, budget from dept order by dname")
	show("who now tops their department (>= ALL, correlated)", `
		select name from emp e
		where e.salary >= all (select e2.salary from emp e2 where e2.dept = e.dept)
		  and e.dept in (select dno from dept)
		order by name`)

	// Persist and reload.
	dir := "crud-data"
	if err := db.Save(dir); err != nil {
		log.Fatal(err)
	}
	back, err := nra.OpenDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	res, _ := back.Query("select count(*) from emp")
	fmt.Printf("saved to %s/ and reloaded: emp has %v rows\n", dir, res.Rows()[0][0])
}
