// TPC-H workload: load the deterministic TPC-H database and run the
// paper's three experiment queries (Query 1, Query 2a/2b, Query 3a/3b/3c)
// under all strategies, timing each — a miniature of cmd/figures built
// purely on the public API.
//
//	go run ./examples/tpchworkload [-sf 0.002]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"nra"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	flag.Parse()

	cfg := nra.TPCHScale(*sf)
	db, err := nra.OpenTPCH(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range db.Tables() {
		n, _ := db.NumRows(t)
		fmt.Printf("%-10s %7d rows\n", t, n)
	}
	// The indexes the paper's experiments assume (the nested relational
	// approach itself never uses them; the native strategy depends on
	// them heavily).
	for _, idx := range [][]string{
		{"lineitem", "l_orderkey"},
		{"lineitem", "l_partkey"},
		{"lineitem", "l_suppkey"},
		{"lineitem", "l_partkey", "l_suppkey"},
		{"partsupp", "ps_partkey"},
	} {
		if err := db.CreateIndex(idx[0], idx[1:]...); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()

	queries := []struct {
		name string
		sql  string
	}{
		{"Query 1 (>ALL, correlated)", `
			select o_orderkey, o_orderpriority from orders
			where o_orderdate >= '1993-01-01' and o_orderdate < '1997-01-01'
			  and o_totalprice > all (select l_extendedprice from lineitem
			      where l_orderkey = o_orderkey
			        and l_commitdate < l_receiptdate and l_shipdate < l_commitdate)`},
		{"Query 2a (<ANY / NOT EXISTS)", `
			select p_partkey, p_name from part
			where p_size >= 1 and p_size <= 40
			  and p_retailprice < any (select ps_supplycost from partsupp
			      where ps_partkey = p_partkey and ps_availqty < 5000
			        and not exists (select * from lineitem
			            where ps_partkey = l_partkey and ps_suppkey = l_suppkey
			              and l_quantity = 25))`},
		{"Query 2b (<ALL / NOT EXISTS)", `
			select p_partkey, p_name from part
			where p_size >= 1 and p_size <= 40
			  and p_retailprice < all (select ps_supplycost from partsupp
			      where ps_partkey = p_partkey and ps_availqty < 5000
			        and not exists (select * from lineitem
			            where ps_partkey = l_partkey and ps_suppkey = l_suppkey
			              and l_quantity = 25))`},
		{"Query 3b(a) (<ALL / NOT EXISTS, double correlation)", `
			select p_partkey, p_name from part
			where p_size >= 1 and p_size <= 40
			  and p_retailprice < all (select ps_supplycost from partsupp
			      where ps_partkey = p_partkey and ps_availqty < 5000
			        and not exists (select * from lineitem
			            where p_partkey = l_partkey and ps_suppkey = l_suppkey
			              and l_quantity = 25))`},
		{"Query 3c(a) (<ANY / EXISTS, double correlation)", `
			select p_partkey, p_name from part
			where p_size >= 1 and p_size <= 40
			  and p_retailprice < any (select ps_supplycost from partsupp
			      where ps_partkey = p_partkey and ps_availqty < 5000
			        and exists (select * from lineitem
			            where p_partkey = l_partkey and ps_suppkey = l_suppkey
			              and l_quantity = 25))`},
	}

	strategies := []nra.Strategy{nra.Native, nra.NestedOriginal, nra.NestedOptimized}
	for _, q := range queries {
		fmt.Printf("— %s\n", q.name)
		var first *nra.Result
		for _, s := range strategies {
			start := time.Now()
			res, err := db.QueryWith(q.sql, s)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(start)
			fmt.Printf("  %-18s %6d rows in %8s\n", s, res.NumRows(), elapsed.Round(10*time.Microsecond))
			if first == nil {
				first = res
			} else if !res.Equal(first) {
				log.Fatalf("strategy %s disagrees on %s", s, q.name)
			}
		}
		fmt.Println()
	}
	fmt.Println("all strategies returned identical results on every query")
}
