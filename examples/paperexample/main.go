// Paper example: the worked example of Cao & Badia (SIGMOD 2005) —
// relations R(A,B,C,D), S(E,F,G,H,I), T(J,K,L) and the two-level "Query Q"
// of §2, with a NOT IN and an ALL linking operator plus correlation to two
// enclosing blocks:
//
//	select R.B, R.C, R.D
//	from R
//	where R.A > 1 and R.B not in
//	    (select S.E from S
//	     where S.F = 5 and R.D = S.G and S.H > all
//	         (select T.J from T where T.K = R.C and T.L <> S.I))
//
// The program prints the tree expression the planner builds (the paper's
// Figure 3(a)), executes Query Q under every strategy, and shows they all
// agree — including on the NULL-heavy rows that defeat classical
// antijoin-based unnesting.
//
//	go run ./examples/paperexample
package main

import (
	"fmt"
	"log"

	"nra"
)

const queryQ = `
select R.B, R.C, R.D
from R
where R.A > 1 and R.B not in
  (select S.E from S
   where S.F = 5 and R.D = S.G and S.H > all
     (select T.J from T where T.K = R.C and T.L <> S.I))`

func main() {
	db := nra.Open()

	// Figure 1's base relations (values reconstructed — the published scan
	// is partly illegible — to exercise the same phenomena: NULLs in the
	// linked attribute S.E and the inner comparison attributes S.H / T.J,
	// and outer tuples whose subquery result set is empty).
	db.MustCreateTable("R", []string{"A", "B", "C", "D"}, "D",
		[]any{1, 2, 3, 1},
		[]any{5, 6, 7, 2},
		[]any{10, 2, 3, 3},
		[]any{nil, nil, 5, 4},
		[]any{8, 4, 5, 5},
	)
	db.MustCreateTable("S", []string{"E", "F", "G", "H", "I"}, "I",
		[]any{2, 5, 1, 8, 1},
		[]any{4, 5, 1, 2, 2},
		[]any{6, 5, 2, nil, 3},
		[]any{9, 7, 3, 5, 4},
		[]any{3, 5, 9, 4, 5},
		[]any{nil, 5, 3, 7, 6},
	)
	db.MustCreateTable("T", []string{"J", "K", "L"}, "L",
		[]any{7, 3, 1},
		[]any{9, 3, 2},
		[]any{nil, 5, 3},
		[]any{1, 7, 4},
		[]any{3, 5, 5},
	)

	fmt.Println("Query Q (§2):")
	fmt.Println(queryQ)
	fmt.Println()

	// The tree expression of §4.1 — the paper's Figure 3(a): nodes T1..T3,
	// linking predicates L1/L2, correlated predicates C21/C31/C32, and the
	// σ/σ̄ choice per level (σ̄ because NOT IN is a negative operator).
	plan, err := db.Explain(queryQ, nra.NestedOriginal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree expression and plan (original approach, Algorithm 1):")
	fmt.Print(plan)
	fmt.Println()

	opt, err := db.Explain(queryQ, nra.NestedOptimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimized plan (§4.2): Query Q is a fully correlated linear")
	fmt.Println("chain, so one sort + one scan evaluates both linking predicates:")
	fmt.Print(opt)
	fmt.Println()

	for _, s := range []nra.Strategy{nra.NestedOriginal, nra.NestedOptimized, nra.Native, nra.Reference} {
		res, err := db.QueryWith(queryQ, s)
		if err != nil {
			log.Fatal(err)
		}
		res.Sort()
		fmt.Printf("strategy %s (%d rows):\n%s\n", s, res.NumRows(), res)
	}

	fmt.Println("Note the row with R.D = 4: its A and B are NULL, so the NOT IN")
	fmt.Println("predicate is UNKNOWN unless the subquery result is empty — the")
	fmt.Println("pseudo-selection σ̄ keeps exactly the bookkeeping needed to get")
	fmt.Println("this right, where an antijoin rewrite would not.")
}
