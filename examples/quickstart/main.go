// Quickstart: create tables, run nested queries with every linking
// operator, and inspect the plans the nested relational approach builds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nra"
)

func main() {
	db := nra.Open()

	// A small employees/departments schema. Note the NULL salary — the
	// engine implements full SQL three-valued logic, which is exactly what
	// makes NOT IN / ALL subqueries tricky (and what this library exists
	// to handle efficiently).
	db.MustCreateTable("emp", []string{"id", "name", "dept", "salary"}, "id",
		[]any{1, "ada", 10, 120},
		[]any{2, "bob", 10, 95},
		[]any{3, "cho", 20, 80},
		[]any{4, "dee", 20, nil},
		[]any{5, "eve", 30, 150},
	)
	db.MustCreateTable("dept", []string{"dno", "dname", "budget"}, "dno",
		[]any{10, "eng", 1000},
		[]any{20, "ops", 500},
		[]any{30, "exec", 2000},
		[]any{40, "lab", 100},
	)

	queries := []struct {
		title string
		sql   string
	}{
		{"departments with no employees (NOT EXISTS)", `
			select dname from dept d
			where not exists (select * from emp where emp.dept = d.dno)`},
		{"top earner per department (>= ALL, correlated)", `
			select name from emp e
			where e.salary >= all (select e2.salary from emp e2 where e2.dept = e.dept)`},
		{"employees in departments with budget over 600 (IN)", `
			select name from emp
			where dept in (select dno from dept where budget > 600)`},
		{"employees out-earning everyone in ops (> ALL, uncorrelated)", `
			select name from emp
			where salary > all (select salary from emp e2 where e2.dept = 20)`},
		{"salaries not matched in ops (NOT IN — NULL-aware!)", `
			select name from emp
			where salary not in (select salary from emp e2 where e2.dept = 20)`},
	}

	for _, q := range queries {
		fmt.Printf("— %s\n", q.title)
		res, err := db.Query(q.sql)
		if err != nil {
			log.Fatal(err)
		}
		res.Sort()
		fmt.Print(res)
		fmt.Println()
	}

	// NOT IN over a set containing NULL: dee's NULL salary makes
	// "salary NOT IN {80, NULL}" UNKNOWN for every employee, so the last
	// query returns nothing — the famous SQL pitfall, honoured exactly.
	fmt.Println("(the NOT IN query is empty because ops contains a NULL salary)")
	fmt.Println()

	// The plan for the correlated ALL query: tree expression + strategy.
	plan, err := db.Explain(`
		select name from emp e
		where e.salary >= all (select e2.salary from emp e2 where e2.dept = e.dept)`,
		nra.NestedOptimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan (nested relational approach, optimized):")
	fmt.Print(plan)

	// Compare against the native (System A) strategy and the reference
	// evaluator: all strategies agree, always.
	for _, s := range []nra.Strategy{nra.NestedOptimized, nra.NestedOriginal, nra.Native, nra.Reference} {
		res, err := db.QueryWith(
			"select name from emp e where e.salary >= all (select e2.salary from emp e2 where e2.dept = e.dept)", s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s → %d rows\n", s, res.NumRows())
	}
}
