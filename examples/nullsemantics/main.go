// NULL semantics: §2's counterexample, live. With R.A = 5 and
// S.B = {2, 3, 4, NULL}:
//
//   - "R.A > ALL (select S.B from S)" is UNKNOWN (5 > NULL is unknown and
//     no comparison is false), so the row is NOT returned;
//   - the classical antijoin rewrite — "NOT EXISTS (select * from S where
//     R.A <= S.B)" — returns the row, because no S.B is *known* ≥ 5;
//   - the MAX rewrite "R.A > (select max(S.B) ...)" would also return it
//     (aggregates skip NULLs).
//
// The three are NOT equivalent: this is precisely why commercial systems
// cannot unnest ALL / NOT IN with antijoins unless a NOT NULL constraint
// holds, and why the paper's linking selection evaluates the predicate
// directly on the nested representation.
//
//	go run ./examples/nullsemantics
package main

import (
	"fmt"
	"log"

	"nra"
)

func main() {
	db := nra.Open()
	db.MustCreateTable("R", []string{"A", "rid"}, "rid", []any{5, 1})
	db.MustCreateTable("S", []string{"B", "sid"}, "sid",
		[]any{2, 1}, []any{3, 2}, []any{4, 3}, []any{nil, 4})

	show := func(title, sql string) int {
		res, err := db.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-55s → %d row(s)\n", title, res.NumRows())
		return res.NumRows()
	}

	fmt.Println("R.A = 5, S.B = {2, 3, 4, NULL} (the paper's §2 example)")
	fmt.Println()

	all := show("R.A > ALL (select S.B from S)",
		"select A from R where A > all (select B from S)")
	anti := show("antijoin rewrite: NOT EXISTS (… where R.A <= S.B)",
		"select A from R where not exists (select * from S where R.A <= S.B)")

	fmt.Println()
	if all == 0 && anti == 1 {
		fmt.Println("⇒ the antijoin rewrite is WRONG under NULLs: it keeps the row")
		fmt.Println("  the correct >ALL evaluation rejects. Same story for NOT IN:")
	}

	notIn := show("R.A NOT IN (select S.B from S)",
		"select A from R where A not in (select B from S)")
	antiIn := show("antijoin rewrite: NOT EXISTS (… where R.A = S.B)",
		"select A from R where not exists (select * from S where R.A = S.B)")
	if notIn == 0 && antiIn == 1 {
		fmt.Println("⇒ NOT IN ≠ anti-equijoin when the set contains NULL.")
	}
	fmt.Println()

	// Remove the NULL and the equivalences are restored — which is exactly
	// the condition (NOT NULL) under which the native strategy unnests.
	clean := nra.Open()
	clean.MustCreateTable("R", []string{"A", "rid"}, "rid", []any{5, 1})
	clean.MustCreateTable("S", []string{"B", "sid"}, "sid",
		[]any{2, 1}, []any{3, 2}, []any{4, 3})
	if err := clean.SetNotNull("S", "B"); err != nil {
		log.Fatal(err)
	}
	if err := clean.SetNotNull("R", "A"); err != nil {
		log.Fatal(err)
	}
	res, err := clean.QueryWith("select A from R where A > all (select B from S)", nra.Native)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := clean.Explain("select A from R where A > all (select B from S)", nra.Native)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("without NULLs and with NOT NULL declared, the native strategy")
	fmt.Printf("unnests >ALL into an antijoin and returns %d row(s):\n%s", res.NumRows(), plan)

	// The nested relational approach needs no such case analysis: the same
	// uniform nest + linking-selection plan is correct in both worlds.
	fmt.Println()
	for _, tag := range []struct {
		db   *nra.DB
		name string
	}{{db, "with NULL"}, {clean, "without NULL"}} {
		res, err := tag.db.QueryWith("select A from R where A > all (select B from S)", nra.NestedOptimized)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("nested relational approach, %-13s → %d row(s)\n", tag.name, res.NumRows())
	}
}
