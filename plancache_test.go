package nra

import "testing"

// newCacheDB builds a small database with a plan cache installed.
func newCacheDB(t *testing.T, capacity int) (*DB, *PlanCache) {
	t.Helper()
	db := Open()
	db.MustCreateTable("emp", []string{"id", "dept", "salary"}, "id",
		[]any{1, 10, 120}, []any{2, 10, 95}, []any{3, 20, 80})
	pc := NewPlanCache(capacity)
	db.SetPlanCache(pc)
	return db, pc
}

func TestPlanCacheHitsAndNormalization(t *testing.T) {
	db, pc := newCacheDB(t, 8)
	const q = "select id from emp where salary > 90"
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	// The same statement — and a textual variant parsing to the same
	// AST — must hit the cached analysis.
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT  id  FROM emp  WHERE salary > 90"); err != nil {
		t.Fatal(err)
	}
	st := pc.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss / 1 entry", st)
	}
}

func TestPlanCacheInvalidationOnDMLAndAnalyze(t *testing.T) {
	db, pc := newCacheDB(t, 8)
	const q = "select id from emp where salary > 90"
	run := func() {
		t.Helper()
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	run() // miss
	db.MustExec("insert into emp values (4, 20, 200)")
	run() // stale epoch → invalidation + re-analysis
	if st := pc.Stats(); st.Invalidations != 1 {
		t.Fatalf("after DML: stats = %+v, want 1 invalidation", st)
	}
	if err := db.Analyze("emp"); err != nil {
		t.Fatal(err)
	}
	run() // ANALYZE bumps the epoch too
	if st := pc.Stats(); st.Invalidations != 2 {
		t.Fatalf("after ANALYZE: stats = %+v, want 2 invalidations", st)
	}
	run() // stable epoch → hit
	if st := pc.Stats(); st.Hits != 1 {
		t.Fatalf("after re-run: stats = %+v, want 1 hit", st)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	db, pc := newCacheDB(t, 2)
	for _, q := range []string{
		"select id from emp",
		"select dept from emp",
		"select salary from emp",
	} {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	st := pc.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
	// The evicted (oldest) statement misses again.
	if _, err := db.Query("select id from emp"); err != nil {
		t.Fatal(err)
	}
	if st := pc.Stats(); st.Misses != 4 {
		t.Fatalf("stats = %+v, want 4 misses", st)
	}
}

func TestPlanCacheSharedWithPreparedAndSnapshots(t *testing.T) {
	db, pc := newCacheDB(t, 8)
	const q = "select id from emp where dept = 10"
	stmt, err := db.Prepare(q) // analysis populates the cache
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(q); err != nil { // same binding, same epoch → hit
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if _, err := snap.Query(q); err != nil { // pinned snapshot, same epoch → hit
		t.Fatal(err)
	}
	if st := pc.Stats(); st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
}
