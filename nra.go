// Package nra is a SQL query processor built around the nested relational
// approach to subquery evaluation of Cao & Badia, "A Nested Relational
// Approach to Processing SQL Subqueries" (SIGMOD 2005).
//
// It evaluates SELECT-FROM-WHERE queries with arbitrarily nested
// non-aggregate subqueries — EXISTS, NOT EXISTS, IN, NOT IN, θ SOME/ANY
// and θ ALL, correlated to any enclosing block — plus scalar aggregate
// subqueries (θ (SELECT MAX/MIN/SUM/AVG/COUNT ...)) and aggregate-only
// select lists, all with full SQL NULL (three-valued-logic) semantics,
// under four interchangeable execution strategies:
//
//   - NestedOptimized (the default): the paper's approach with all §4.2
//     optimizations — hash outer joins, fused single-pass nest + linking
//     selection, fully fused chains for linear queries, bottom-up
//     evaluation of linear correlation, nest push-down, and positive-
//     operator rewriting. Needs no indexes.
//   - NestedOriginal: the unoptimized Algorithm 1 of §4.1.
//   - Native: the commercial-DBMS baseline the paper compares against
//     ("System A"): semijoin/antijoin pipelines where legal, index-driven
//     nested iteration otherwise.
//   - Reference: a direct tuple-iteration evaluator; slow but obviously
//     correct, and the only strategy accepting non-conjunctive subquery
//     placements (e.g. subqueries under OR).
//
// Quick start:
//
//	db := nra.Open()
//	db.MustCreateTable("emp", []string{"id", "name", "dept", "salary"}, "id",
//		[]any{1, "ada", 10, 120}, []any{2, "bob", 10, 95})
//	res, err := db.Query(`select name from emp e where e.salary >= all
//		(select e2.salary from emp e2 where e2.dept = e.dept)`)
//	fmt.Print(res)
package nra

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sync/atomic"
	"time"

	"nra/internal/algebra"
	"nra/internal/catalog"
	"nra/internal/core"
	"nra/internal/csvio"
	"nra/internal/naive"
	"nra/internal/native"
	"nra/internal/obsv"
	"nra/internal/relation"
	"nra/internal/sql"
	"nra/internal/tpch"
	"nra/internal/vfs"
	"nra/internal/wal"
)

// DB is a database: a catalog of tables plus the query engine, and —
// for sessions opened with OpenDirDurable — a durable directory with a
// write-ahead log.
//
// Concurrency: queries and DML may run concurrently from any number of
// goroutines. Every query executes against an immutable snapshot of the
// catalog taken when it starts; DML statements serialise on a single
// writer lock and commit by atomically publishing a new snapshot, so
// readers never block and never observe partial mutations. Use
// DB.Snapshot to pin several queries to one consistent version.
type DB struct {
	cat *catalog.Catalog

	// Durable-session state (nil/empty for in-memory databases): the
	// filesystem seam, the directory, and the open DML journal.
	fs      vfs.FS
	dir     string
	journal *wal.Log

	// lastTrace holds the span tree of the most recent traced query (see
	// Strategy.WithTracing and DB.LastTrace).
	lastTrace atomic.Pointer[QueryTrace]

	// slowLog / slowThreshold configure the structured slow-query log
	// (see SetSlowQueryLog); nil disables it.
	slowLog       *obsv.SlowLog
	slowThreshold time.Duration

	// planCache, when non-nil, caches analyzed statements keyed on
	// normalized AST + snapshot epoch (see SetPlanCache).
	planCache *PlanCache

	// format selects the on-disk table representation Save writes
	// (zero value = columnar segments; see SetStorageFormat).
	format csvio.Format
}

// Open returns an empty in-memory database.
func Open() *DB { return &DB{cat: catalog.New(), fs: vfs.OS} }

// OpenTPCH returns a database pre-loaded with a deterministic TPC-H
// instance (see TPCHConfig / TPCHScale).
func OpenTPCH(cfg TPCHConfig) (*DB, error) {
	cat, err := tpch.Generate(tpch.Config(cfg))
	if err != nil {
		return nil, err
	}
	return &DB{cat: cat, fs: vfs.OS}, nil
}

// TPCHConfig re-exports the generator configuration.
type TPCHConfig tpch.Config

// TPCHScale returns the TPC-H cardinalities at the given scale factor
// (sf = 1 is the paper's 1 GB database).
func TPCHScale(sf float64) TPCHConfig { return TPCHConfig(tpch.Scale(sf)) }

// CreateTable registers a new table. Column names must be unqualified;
// pk names the unique, non-NULL primary key column (every table needs
// one — the nested relational approach uses it to recognise padding).
// Row cells may be int, int64, float64, string, bool or nil (NULL).
func (db *DB) CreateTable(name string, cols []string, pk string, rows ...[]any) error {
	rel, err := relation.FromRows(name, cols, rows...)
	if err != nil {
		return err
	}
	_, err = db.cat.Create(name, rel, pk)
	return err
}

// MustCreateTable is CreateTable that panics on error.
func (db *DB) MustCreateTable(name string, cols []string, pk string, rows ...[]any) {
	if err := db.CreateTable(name, cols, pk, rows...); err != nil {
		panic(err)
	}
}

// SetNotNull declares a NOT NULL constraint (validated against the data).
// The native strategy needs it to unnest ALL / NOT IN into antijoins.
func (db *DB) SetNotNull(table, col string) error {
	return db.cat.SetNotNull(table, col)
}

// CreateIndex builds an index over the given columns (used only by the
// native strategy; the nested relational approach needs no indexes).
func (db *DB) CreateIndex(table string, cols ...string) error {
	return db.cat.CreateIndexOn(table, cols...)
}

// DropIndex removes an index.
func (db *DB) DropIndex(table string, cols ...string) error {
	return db.cat.DropIndexOn(table, cols...)
}

// Analyze collects optimizer statistics (row counts, NULL fractions,
// distinct-value estimates, min/max, equi-depth histograms) for the named
// tables — or for every table when none are named. Fresh statistics enable
// cost-based physical planning (see docs/OPTIMIZER.md); DML on a table
// marks its statistics stale, and the planner then falls back to the
// heuristic defaults until the table is analyzed again.
func (db *DB) Analyze(tables ...string) error {
	if len(tables) == 0 {
		db.cat.AnalyzeAll()
		return nil
	}
	for _, name := range tables {
		if err := db.cat.AnalyzeTable(name); err != nil {
			return err
		}
	}
	return nil
}

// StatsSummary renders a table's collected statistics (one line per
// column), or reports that none are available / they are stale.
func (db *DB) StatsSummary(table string) (string, error) {
	t, err := db.cat.Table(table)
	if err != nil {
		return "", err
	}
	if t.StatsStale() {
		return fmt.Sprintf("%s — statistics stale (run ANALYZE)\n", table), nil
	}
	ts := t.Stats()
	if ts == nil {
		return fmt.Sprintf("%s — no statistics (run ANALYZE)\n", table), nil
	}
	return ts.Summary(table), nil
}

// Save persists the whole database (data, schema, constraints, indexes)
// into a directory of per-table data files plus a JSON manifest. Tables
// are written as binary columnar segments by default (zone-mapped,
// checksummed; see docs/STORAGE.md) — SetStorageFormat("csv") selects
// portable CSV instead. The save is crash-consistent either way: data
// lands via temp file + fsync + atomic rename, and the manifest rename
// is the commit point — a crash mid-save leaves the previous save fully
// intact. Saving the durable session's own directory also checkpoints
// (truncates) the write-ahead log; the save holds the writer lock, so
// it captures an exact commit boundary.
func (db *DB) Save(dir string) error {
	tx := db.cat.Begin()
	defer tx.Rollback() // lock only; a save publishes no new snapshot
	snap := tx.Snapshot()
	if db.journal != nil && dir == db.dir {
		ckpt, err := csvio.SaveFSAs(db.fs, snap, dir, db.format)
		if err != nil {
			return err
		}
		return db.journal.Checkpoint(ckpt)
	}
	_, err := csvio.SaveFSAs(db.fsOrOS(), snap, dir, db.format)
	return err
}

// SetStorageFormat selects the representation Save writes table data
// in: "columnar" (the default — binary segment files with zone maps)
// or "csv" (portable text, for export and interop). Load auto-detects
// per table from the manifest, so a directory may mix formats and the
// setting never affects reads.
func (db *DB) SetStorageFormat(format string) error {
	f, err := csvio.ParseFormat(format)
	if err != nil {
		return err
	}
	db.format = f
	return nil
}

func (db *DB) fsOrOS() vfs.FS {
	if db.fs != nil {
		return db.fs
	}
	return vfs.OS
}

// OpenDir loads a database previously written by Save and replays any
// write-ahead log left by a durable session, so every acknowledged
// mutation is visible. The returned session is in-memory: its own
// mutations are not journaled (use OpenDirDurable for that).
func OpenDir(dir string) (*DB, error) {
	db, _, err := openDirFS(vfs.OS, dir)
	return db, err
}

// OpenDirDurable opens a saved database as a durable session: the
// directory's write-ahead log is replayed and kept open, every
// subsequent DML statement is journaled and fsynced before it commits,
// and Save(dir) checkpoints the journal. Close releases the journal.
// At most one durable session may use a directory at a time.
func OpenDirDurable(dir string) (*DB, error) {
	return openDirDurableFS(vfs.OS, dir)
}

func openDirDurableFS(fsys vfs.FS, dir string) (*DB, error) {
	db, ckpt, err := openDirFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	journal, err := wal.Open(fsys, filepath.Join(dir, csvio.WALName), ckpt, wal.SyncOnCommit)
	if err != nil {
		return nil, err
	}
	db.dir = dir
	db.journal = journal
	return db, nil
}

// openDirFS performs crash recovery: load the last committed save, then
// replay the journal's records for that checkpoint.
func openDirFS(fsys vfs.FS, dir string) (*DB, uint64, error) {
	cat, ckpt, err := csvio.LoadFS(fsys, dir)
	if err != nil {
		return nil, 0, err
	}
	recs, err := wal.Replay(fsys, filepath.Join(dir, csvio.WALName), ckpt)
	if err != nil {
		return nil, 0, err
	}
	if err := wal.Apply(cat, recs); err != nil {
		return nil, 0, err
	}
	return &DB{cat: cat, fs: fsys}, ckpt, nil
}

// Close releases a durable session's journal. In-memory databases need
// no Close. The database must be idle: in-flight Execs whose journal
// write races a Close may fail (and roll back) cleanly.
func (db *DB) Close() error {
	if db.journal == nil {
		return nil
	}
	err := db.journal.Close()
	db.journal = nil
	return err
}

// Tables lists the table names.
func (db *DB) Tables() []string { return db.cat.Names() }

// NumRows returns a table's cardinality.
func (db *DB) NumRows(table string) (int, error) {
	t, err := db.cat.Table(table)
	if err != nil {
		return 0, err
	}
	return t.Rel.Len(), nil
}

// Query parses, analyzes and executes a SQL statement with the default
// strategy (NestedOptimized, falling back to Reference for query shapes
// the planner does not decompose).
func (db *DB) Query(src string) (*Result, error) {
	return db.QueryWith(src, Auto)
}

// QueryWith executes with an explicit strategy. Statements may combine
// several SELECTs with UNION / INTERSECT / EXCEPT (each optionally ALL);
// every leaf SELECT runs under the chosen strategy.
func (db *DB) QueryWith(src string, s Strategy) (*Result, error) {
	return db.QueryWithContext(context.Background(), src, s)
}

// QueryContext is Query with a cancellation context: the query aborts
// with the context's error at the next operator boundary after ctx is
// cancelled, with workers drained and spill files removed.
func (db *DB) QueryContext(ctx context.Context, src string) (*Result, error) {
	return db.QueryWithContext(ctx, src, Auto)
}

// QueryWithContext is QueryWith with a cancellation context.
func (db *DB) QueryWithContext(ctx context.Context, src string, s Strategy) (*Result, error) {
	st, err := db.analyzeStatement(src)
	if err != nil {
		return nil, err
	}
	rel, err := db.executeStatement(ctx, st, s, src)
	if err != nil {
		return nil, err
	}
	return &Result{rel: rel}, nil
}

// analyzeStatement binds src against the current snapshot, consulting
// the plan cache when one is installed. All the statement's table
// references resolve in one atomic snapshot read, so even multi-table
// statements see one consistent schema version.
func (db *DB) analyzeStatement(src string) (*sql.Statement, error) {
	return analyzeCached(db.planCache, db.cat.Snapshot(), src)
}

// analyzeOn parses and binds src against an explicit catalog view — the
// current catalog, a pinned snapshot, or a transaction's base snapshot.
func analyzeOn(res sql.Resolver, src string) (*sql.Statement, error) {
	parsed, err := sql.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	return sql.AnalyzeStatement(parsed, res)
}

func (db *DB) executeStatement(ctx context.Context, st *sql.Statement, s Strategy, label string) (*relation.Relation, error) {
	if st.Query != nil {
		return db.execute(ctx, st.Query, s, label)
	}
	l, err := db.executeStatement(ctx, st.L, s, label)
	if err != nil {
		return nil, err
	}
	r, err := db.executeStatement(ctx, st.R, s, label)
	if err != nil {
		return nil, err
	}
	switch st.Kind {
	case sql.Union:
		return algebra.Union(l, r)
	case sql.UnionAll:
		return algebra.UnionAll(l, r)
	case sql.Intersect:
		return algebra.Intersect(l, r)
	case sql.IntersectAll:
		return algebra.IntersectAll(l, r)
	case sql.Except:
		return algebra.Difference(l, r)
	case sql.ExceptAll:
		return algebra.ExceptAll(l, r)
	}
	return nil, fmt.Errorf("nra: unknown set operation")
}

// Explain describes the plan the given strategy would use. For set
// operations, each leaf SELECT is explained in order.
func (db *DB) Explain(src string, s Strategy) (string, error) {
	st, err := db.analyzeStatement(src)
	if err != nil {
		return "", err
	}
	leaves := st.Leaves()
	if len(leaves) > 1 {
		out := ""
		for i, q := range leaves {
			part, err := db.explainQuery(q, s)
			if err != nil {
				return "", err
			}
			out += fmt.Sprintf("-- leaf %d --\n%s", i+1, part)
		}
		return out, nil
	}
	return db.explainQuery(leaves[0], s)
}

func (db *DB) explainQuery(q *sql.Query, s Strategy) (string, error) {
	switch s.kind {
	case kindNative:
		ex, err := native.New(q)
		if err != nil {
			return "", err
		}
		return ex.Explain(), nil
	case kindReference:
		if s.opts.TwoValuedLogic {
			return "reference: direct nested-iteration over the AST (two-valued logic)\n", nil
		}
		return "reference: direct nested-iteration over the AST\n", nil
	default:
		return core.Explain(q, s.coreOptions())
	}
}

// ExplainAnalyze executes the query under a nested strategy and renders
// the EXPLAIN tree followed by a per-operator table joining the planner's
// cardinality estimates against the actual row counts, plus the run's
// memory/spill accounting. Only single-SELECT statements are supported;
// Native/Reference strategies are not instrumented.
func (db *DB) ExplainAnalyze(src string, s Strategy) (string, error) {
	if s.kind == kindNative || s.kind == kindReference {
		return "", fmt.Errorf("nra: EXPLAIN ANALYZE requires a nested strategy")
	}
	s = s.promote()
	st, err := db.analyzeStatement(src)
	if err != nil {
		return "", err
	}
	if st.Query == nil {
		return "", fmt.Errorf("nra: EXPLAIN ANALYZE does not support set operations")
	}
	return core.ExplainAnalyze(st.Query, s.coreOptions())
}

func (db *DB) execute(ctx context.Context, q *sql.Query, s Strategy, label string) (*relation.Relation, error) {
	if ctx != nil && ctx != context.Background() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if s.kind == kindAuto {
		if err := core.Supported(q); err != nil {
			return db.referenceEval(q, s)
		}
		s = s.promote()
	}
	switch s.kind {
	case kindNative:
		return native.Execute(q)
	case kindReference:
		return db.referenceEval(q, s)
	default:
		opts := s.coreOptions()
		opts.Label = label
		if ctx != nil && ctx != context.Background() {
			opts.Ctx = ctx
		}
		if db.slowLog != nil {
			opts.SlowLog = db.slowLog
			opts.SlowQuery = db.slowThreshold
		}
		var tr *obsv.Tracer
		if s.trace {
			tr = obsv.NewTracer()
			opts.Tracer = tr
		}
		out, err := core.Execute(q, opts)
		if tr != nil {
			db.lastTrace.Store(&QueryTrace{rec: tr.Finish()})
		}
		return out, err
	}
}

// referenceEval runs the ground-truth tuple-iteration evaluator,
// honouring the strategy's two-valued-logic flag.
func (db *DB) referenceEval(q *sql.Query, s Strategy) (*relation.Relation, error) {
	if s.opts.TwoValuedLogic {
		return naive.EvaluateTwoValued(q)
	}
	return naive.Evaluate(q)
}

// QueryTrace is the finished span tree of one traced query (see
// Strategy.WithTracing and DB.LastTrace).
type QueryTrace struct {
	rec *obsv.SpanRecord
}

// Root returns the trace's root span record (kind "query"); its children
// are the executed operators in start order.
func (t *QueryTrace) Root() *obsv.SpanRecord {
	if t == nil {
		return nil
	}
	return t.rec
}

// Duration returns the traced query's wall time.
func (t *QueryTrace) Duration() time.Duration {
	if t == nil || t.rec == nil {
		return 0
	}
	return t.rec.Elapsed
}

// Waterfall renders the trace as an indented per-operator table with
// offset-scaled time bars (see internal/obsv.Waterfall).
func (t *QueryTrace) Waterfall() string {
	if t == nil {
		return obsv.Waterfall(nil)
	}
	return obsv.Waterfall(t.rec)
}

// JSON returns the trace serialised as the same JSON object the
// slow-query log embeds under "trace".
func (t *QueryTrace) JSON() (string, error) {
	if t == nil || t.rec == nil {
		return "", fmt.Errorf("nra: no trace recorded")
	}
	b, err := json.Marshal(t.rec)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// LastTrace returns the span tree of the most recent query executed with
// a tracing strategy (Strategy.WithTracing), or nil if no traced query
// has run. Concurrent queries each store their own trace; the last one
// to finish wins.
func (db *DB) LastTrace() *QueryTrace { return db.lastTrace.Load() }

// SetSlowQueryLog directs a structured slow-query log to w: every query
// whose wall time reaches threshold is recorded as one JSON line —
// query text, duration, executed plan, resource accounting, and the full
// span tree (decode with internal/obsv.DecodeSlowLog's schema, documented
// in docs/OBSERVABILITY.md). threshold 0 logs every query; w == nil
// disables the log. Only nested strategies are instrumented.
func (db *DB) SetSlowQueryLog(w io.Writer, threshold time.Duration) {
	if w == nil {
		db.slowLog = nil
		db.slowThreshold = 0
		return
	}
	db.slowLog = obsv.NewSlowLog(w)
	db.slowThreshold = threshold
}

// Strategy selects an execution engine.
type Strategy struct {
	kind  int
	opts  core.Options
	trace bool
}

// withTrace returns a copy with the tracing flag set.
func (s Strategy) withTrace(on bool) Strategy {
	s.trace = on
	return s
}

// promote resolves Auto into NestedOptimized, carrying over the semantic
// and observability flags (two-valued logic, tracing) already set on the
// Auto strategy. Non-Auto strategies are returned unchanged.
func (s Strategy) promote() Strategy {
	if s.kind != kindAuto {
		return s
	}
	twoVL := s.opts.TwoValuedLogic
	s.kind = kindNested
	s.opts = core.Optimized()
	s.opts.TwoValuedLogic = twoVL
	return s
}

const (
	kindAuto = iota
	kindNested
	kindNative
	kindReference
)

// The built-in strategies.
var (
	// Auto uses NestedOptimized, falling back to Reference when the
	// planner cannot decompose the query.
	Auto = Strategy{kind: kindAuto}
	// NestedOptimized is the paper's approach with every §4.2 optimization.
	NestedOptimized = Strategy{kind: kindNested, opts: core.Optimized()}
	// NestedOriginal is the unoptimized Algorithm 1.
	NestedOriginal = Strategy{kind: kindNested, opts: core.Original()}
	// NestedParallel is NestedOptimized with the hash-join + nest/linking
	// pipeline partitioned across all CPUs (see docs/PARALLELISM.md).
	// Results are byte-identical to NestedOptimized at any degree.
	NestedParallel = Strategy{kind: kindNested, opts: core.OptimizedParallel()}
	// Native is the "System A" baseline.
	Native = Strategy{kind: kindNative}
	// Reference is the ground-truth tuple-iteration evaluator.
	Reference = Strategy{kind: kindReference}
)

func (s Strategy) coreOptions() core.Options { return s.opts }

// WithParallelism returns a copy of a nested strategy running the hash-
// join + nest/linking pipeline with n-way partitioned parallelism (n ≤ 1
// selects the serial operators; n = 0 is treated as 1). Auto becomes
// NestedOptimized with the given degree; Native/Reference have no
// parallel operators and are returned unchanged.
func (s Strategy) WithParallelism(n int) Strategy {
	if s.kind == kindNative || s.kind == kindReference {
		return s
	}
	s = s.promote()
	s.opts.Parallelism = n
	return s
}

// WithMemoryBudget returns a copy of a nested strategy whose queries may
// hold at most bytes of operator working state (hash-join build sides,
// pre-nest sort copies) in memory; operators exceeding the budget degrade
// gracefully to spill files with byte-identical results (bytes ≤ 0 =
// unbounded). Auto becomes NestedOptimized; Native/Reference are not
// budget-governed and are returned unchanged. See docs/ROBUSTNESS.md.
func (s Strategy) WithMemoryBudget(bytes int64) Strategy {
	if s.kind == kindNative || s.kind == kindReference {
		return s
	}
	s = s.promote()
	if bytes < 0 {
		bytes = 0
	}
	s.opts.MemoryBudget = bytes
	return s
}

// WithTimeout returns a copy of a nested strategy whose queries abort
// with context.DeadlineExceeded after d (d ≤ 0 = no deadline), observed
// at operator boundaries with workers drained and spill files removed.
// Auto becomes NestedOptimized; Native/Reference are returned unchanged.
func (s Strategy) WithTimeout(d time.Duration) Strategy {
	if s.kind == kindNative || s.kind == kindReference {
		return s
	}
	s = s.promote()
	if d < 0 {
		d = 0
	}
	s.opts.Timeout = d
	return s
}

// WithCostBased returns a copy of a nested strategy with cost-based
// physical planning switched on or off. When on (the NestedOptimized
// default) and every referenced table carries fresh statistics (see
// DB.Analyze), the planner uses estimated cardinalities to order linking
// edges, gate the §4.2.5 and §4.2.4 rewrites, pick the parallel degree,
// and pre-plan operator spills; without fresh statistics it behaves
// exactly like the heuristic planner. Auto becomes NestedOptimized;
// Native/Reference are returned unchanged.
func (s Strategy) WithCostBased(on bool) Strategy {
	if s.kind == kindNative || s.kind == kindReference {
		return s
	}
	s = s.promote()
	s.opts.UseStats = on
	s.opts.CostBased = on
	return s
}

// WithVectorized returns a copy of a nested strategy executing the hot
// path batch-at-a-time (internal/vec): vectorized scan→filter→project
// block reduction, the batched-probe hash join, and the fused nest +
// linking selection driven by a typed sort and group-offset arrays.
// Results are byte-identical to the row operators — the row engine is
// the parity oracle, enforced by the differential fuzzer. The batch
// operators apply on the serial in-memory path only (parallelism ≤ 1,
// no memory budget); operators whose shape has no batch kernel fall
// back to their row implementations per operator, visible in EXPLAIN
// as [batch] / [row: reason] annotations. Auto becomes NestedOptimized;
// Native/Reference are returned unchanged.
func (s Strategy) WithVectorized(on bool) Strategy {
	if s.kind == kindNative || s.kind == kindReference {
		return s
	}
	s = s.promote()
	s.opts.Vectorized = on
	return s
}

// WithZoneMapPruning returns a copy of a nested strategy with row-group
// pruning against columnar segment zone maps switched on (the default)
// or off. Pruning applies only on the vectorized path over tables whose
// current version is segment-backed (databases opened from a columnar
// directory — see docs/STORAGE.md); it never changes results, so the
// off position exists for ablation and debugging. Native/Reference are
// returned unchanged.
func (s Strategy) WithZoneMapPruning(on bool) Strategy {
	if s.kind == kindNative || s.kind == kindReference {
		return s
	}
	s = s.promote()
	s.opts.NoZoneMapPruning = !on
	return s
}

// WithTwoValuedLogic returns a copy of the strategy evaluating the query
// under two-valued logic: every comparison involving a NULL is FALSE
// rather than UNKNOWN, and NOT applies classically on top. Under 2VL the
// negative linking operators lose their NULL traps — x NOT IN S is
// exactly "no member of S equals x" — and the planner unnests NOT IN /
// NOT EXISTS / θ ALL leaves into plain antijoins. The one NULL the base
// data never held — SUM/AVG/MIN/MAX over an empty subquery — keeps its
// 3VL Unknown, so on NULL-free data 2VL and standard SQL 3VL agree
// exactly (fuzzer-checked). The flag applies to the nested
// strategies and Reference (which switches to the 2VL reference
// evaluator); Native models the commercial 3VL baseline and is returned
// unchanged. Auto keeps its Reference fallback, carrying the flag.
func (s Strategy) WithTwoValuedLogic(on bool) Strategy {
	if s.kind == kindNative {
		return s
	}
	s.opts.TwoValuedLogic = on
	return s
}

// WithTracing returns a copy of a nested strategy that records a
// per-operator span tree for every query it executes; read the most
// recent one with DB.LastTrace. Tracing never changes plan or physical-
// path decisions, and costs nothing when off. Auto becomes
// NestedOptimized (the Reference fallback for undecomposable queries is
// not instrumented); Native/Reference are returned unchanged.
func (s Strategy) WithTracing(on bool) Strategy {
	if s.kind == kindNative || s.kind == kindReference {
		return s
	}
	if on {
		s = s.promote()
	}
	s.trace = on
	return s
}

// Traced returns a copy of a nested strategy that writes a per-operator
// execution walkthrough (the paper's Temp1→Temp4 narration, with
// cardinalities) to w. Native/Reference strategies are returned
// unchanged.
func Traced(s Strategy, w io.Writer) Strategy {
	if s.kind == kindNative || s.kind == kindReference {
		return s
	}
	s = s.promote()
	s.opts.Trace = w
	return s
}

// String names the strategy.
func (s Strategy) String() string {
	twoVL := ""
	if s.opts.TwoValuedLogic {
		twoVL = " (2VL)"
	}
	switch s.kind {
	case kindAuto:
		return "auto" + twoVL
	case kindNative:
		return "native"
	case kindReference:
		return "reference" + twoVL
	default:
		name := "nested-optimized"
		base := s.opts
		// Physical, semantic-mode and observability knobs don't change
		// which paper strategy this is.
		base.Parallelism = 0
		base.MemoryBudget = 0
		base.MemPool = nil
		base.Timeout = 0
		base.Vectorized = false
		base.Tracer = nil
		base.SlowQuery = 0
		base.SlowLog = nil
		base.Label = ""
		base.SessionID = ""
		base.QueryID = 0
		base.TwoValuedLogic = false
		if base == core.Original() {
			name = "nested-original"
		} else if !base.CostBased {
			heuristic := core.Optimized()
			heuristic.UseStats = base.UseStats
			heuristic.CostBased = false
			if base == heuristic {
				name = "nested-optimized (heuristic)"
			}
		}
		if s.opts.Vectorized {
			name += " (vectorized)"
		}
		if s.opts.Parallelism > 1 {
			name = fmt.Sprintf("%s (parallelism %d)", name, s.opts.Parallelism)
		}
		if s.opts.MemoryBudget > 0 {
			name = fmt.Sprintf("%s (mem %d)", name, s.opts.MemoryBudget)
		}
		if s.opts.Timeout > 0 {
			name = fmt.Sprintf("%s (timeout %s)", name, s.opts.Timeout)
		}
		return name + twoVL
	}
}
