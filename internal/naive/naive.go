// Package naive is the ground-truth reference evaluator: it executes an
// analyzed query by direct tuple iteration, exactly following SQL's
// three-valued, nested-iteration semantics ("for each outer tuple,
// re-evaluate the subquery"). It is deliberately simple and unoptimised —
// its only job is to be obviously correct, so the differential tests can
// hold the nested relational approach and the native baseline to it.
//
// Unlike the planners, it supports arbitrary WHERE shapes: subqueries
// under OR and NOT, multiple subqueries per conjunct, any nesting depth.
package naive

import (
	"fmt"
	"sort"

	"nra/internal/algebra"
	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/sql"
	"nra/internal/value"
)

// Evaluate runs the analyzed query and returns the result relation. The
// result columns are the root block's select items (qualified names, or
// aliases where given).
func Evaluate(q *sql.Query) (*relation.Relation, error) {
	e := &evaluator{q: q}
	return e.evalRoot()
}

// EvaluateTwoValued runs the analyzed query under Libkin-style two-valued
// logic: every comparison involving a NULL is FALSE (never Unknown) and
// NOT is classical negation. It is the ground truth the planners'
// Options.TwoValuedLogic mode is differentially checked against. The
// collapse happens at the comparison atoms — NOT (x = NULL) is True, and
// x NOT IN {NULL} is True — not merely at the final WHERE verdict.
func EvaluateTwoValued(q *sql.Query) (*relation.Relation, error) {
	e := &evaluator{q: q, twoVL: true}
	return e.evalRoot()
}

type frame struct {
	block *sql.Block
	tuple relation.Tuple
}

type evaluator struct {
	q      *sql.Query
	frames []frame
	twoVL  bool // collapse Unknown to False at every comparison atom
}

// collapse maps Unknown to False under 2VL; the identity under 3VL.
func (e *evaluator) collapse(t value.Tri) value.Tri {
	if e.twoVL && t == value.Unknown {
		return value.False
	}
	return t
}

func (e *evaluator) evalRoot() (*relation.Relation, error) {
	root := e.q.Root
	if len(root.AggItems) > 0 {
		return e.evalRootAggregate(root)
	}
	outSchema, items, err := e.rootSchema(root)
	if err != nil {
		return nil, err
	}
	out := relation.New(outSchema)

	err = e.eachBlockTuple(root, func(t relation.Tuple) error {
		keep, err := e.where(root, t)
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
		if items == nil { // SELECT *
			out.Append(relation.Tuple{Atoms: append([]value.Value(nil), t.Atoms...)})
			return nil
		}
		e.push(root, t)
		defer e.pop()
		row := relation.Tuple{Atoms: make([]value.Value, len(items))}
		for i, it := range items {
			v, err := e.evalExpr(it)
			if err != nil {
				return err
			}
			row.Atoms[i] = v
		}
		out.Append(row)
		return nil
	})
	if err != nil {
		return nil, err
	}

	if root.Sel.Distinct {
		dedup := relation.New(outSchema)
		seen := make(map[string]struct{}, out.Len())
		for _, t := range out.Tuples {
			k := t.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			dedup.Append(t)
		}
		out = dedup
	}

	if len(root.Sel.OrderBy) > 0 {
		if err := e.orderBy(out, root, items); err != nil {
			return nil, err
		}
	}
	return applyLimit(out, root.Sel.Limit, root.Sel.Offset), nil
}

// applyLimit slices per LIMIT/OFFSET; limit < 0 means none.
func applyLimit(r *relation.Relation, limit, offset int) *relation.Relation {
	if limit < 0 && offset <= 0 {
		return r
	}
	start := offset
	if start > r.Len() {
		start = r.Len()
	}
	end := r.Len()
	if limit >= 0 && start+limit < end {
		end = start + limit
	}
	out := relation.New(r.Schema)
	out.Append(r.Tuples[start:end]...)
	return out
}

// evalRootAggregate evaluates an aggregate-only root select list: one
// output row folding all qualifying tuples (no GROUP BY).
func (e *evaluator) evalRootAggregate(root *sql.Block) (*relation.Relation, error) {
	outSchema := &relation.Schema{Name: "result"}
	states := make([]*algebra.AggState, len(root.AggItems))
	colIdx := make([]int, len(root.AggItems))
	for i, info := range root.AggItems {
		name := root.Sel.Items[i].Alias
		if name == "" {
			name = root.Sel.Items[i].Expr.String()
		}
		outSchema.Cols = append(outSchema.Cols, relation.Column{Name: name, Type: relation.TAny})
		states[i] = algebra.NewAggState(info.Func)
		colIdx[i] = -1
		if info.Col != "" {
			colIdx[i] = root.Schema.ColIndex(info.Col)
		}
	}
	err := e.eachBlockTuple(root, func(t relation.Tuple) error {
		keep, err := e.where(root, t)
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
		for i, st := range states {
			if colIdx[i] < 0 {
				st.AddRow()
				continue
			}
			if err := st.Add(t.Atoms[colIdx[i]]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := relation.New(outSchema)
	row := relation.Tuple{Atoms: make([]value.Value, len(states))}
	for i, st := range states {
		row.Atoms[i] = st.Result()
	}
	out.Append(row)
	return applyLimit(out, root.Sel.Limit, root.Sel.Offset), nil
}

// rootSchema derives the output schema and the list of item expressions.
func (e *evaluator) rootSchema(root *sql.Block) (*relation.Schema, []sql.Expr, error) {
	s := &relation.Schema{Name: "result"}
	var items []sql.Expr
	if root.Sel.Star {
		// SELECT *: output the block schema positionally (items == nil).
		s.Cols = append(s.Cols, root.Schema.Cols...)
		return s, nil, nil
	}
	for _, it := range root.Sel.Items {
		name := it.Alias
		if name == "" {
			name = it.Expr.String()
		}
		s.Cols = append(s.Cols, relation.Column{Name: name, Type: relation.TAny})
		items = append(items, it.Expr)
	}
	return s, items, nil
}

// eachBlockTuple enumerates the cross product of a block's FROM tables.
func (e *evaluator) eachBlockTuple(b *sql.Block, f func(relation.Tuple) error) error {
	width := len(b.Schema.Cols)
	current := relation.Tuple{Atoms: make([]value.Value, 0, width)}
	var rec func(ti int) error
	rec = func(ti int) error {
		if ti == len(b.Tables) {
			t := relation.Tuple{Atoms: append([]value.Value(nil), current.Atoms...)}
			return f(t)
		}
		for _, row := range b.Tables[ti].Table.Rel.Tuples {
			save := len(current.Atoms)
			current.Atoms = append(current.Atoms, row.Atoms...)
			if err := rec(ti + 1); err != nil {
				return err
			}
			current.Atoms = current.Atoms[:save]
		}
		return nil
	}
	return rec(0)
}

// where evaluates the full (undecomposed) WHERE of a block for tuple t.
func (e *evaluator) where(b *sql.Block, t relation.Tuple) (bool, error) {
	if b.Sel.Where == nil {
		return true, nil
	}
	e.push(b, t)
	defer e.pop()
	tri, err := e.truth(b.Sel.Where)
	if err != nil {
		return false, err
	}
	return tri == value.True, nil
}

func (e *evaluator) push(b *sql.Block, t relation.Tuple) {
	e.frames = append(e.frames, frame{block: b, tuple: t})
}
func (e *evaluator) pop() { e.frames = e.frames[:len(e.frames)-1] }

// lookup finds the value of a resolved column in the current frame stack.
func (e *evaluator) lookup(c *sql.ColRef) (value.Value, error) {
	res, ok := e.q.Resolve(c)
	if !ok {
		return value.Null, fmt.Errorf("naive: unresolved column %s", c)
	}
	for i := len(e.frames) - 1; i >= 0; i-- {
		if e.frames[i].block == res.Block {
			j := res.Block.Schema.ColIndex(res.Name)
			if j < 0 {
				return value.Null, fmt.Errorf("naive: column %s missing from block schema", res.Name)
			}
			return e.frames[i].tuple.Atoms[j], nil
		}
	}
	return value.Null, fmt.Errorf("naive: no frame for block %d (column %s)", res.Block.ID, c)
}

// truth evaluates a predicate's three-valued result. Under 2VL the
// collapse has already happened at the comparison atoms (evalBinOp,
// evalSubquery), so a NULL reaching here is either a bare NULL-valued
// atom or a deliberately preserved empty-aggregate Unknown — both read
// as Unknown, which NOT then carries through (matching 3VL).
func (e *evaluator) truth(x sql.Expr) (value.Tri, error) {
	v, err := e.evalExpr(x)
	if err != nil {
		return value.Unknown, err
	}
	if v.IsNull() {
		return value.Unknown, nil
	}
	if v.Kind() != value.KindBool {
		return value.Unknown, fmt.Errorf("naive: predicate evaluated to %s", v.Kind())
	}
	return v.Truth(), nil
}

// evalExpr evaluates a scalar/boolean AST expression in the current frame
// stack, including subquery predicates.
func (e *evaluator) evalExpr(x sql.Expr) (value.Value, error) {
	switch n := x.(type) {
	case *sql.Lit:
		return n.V, nil
	case *sql.ColRef:
		return e.lookup(n)
	case *sql.NotExpr:
		t, err := e.truth(n.E)
		if err != nil {
			return value.Null, err
		}
		return t.Not().Value(), nil
	case *sql.IsNullExpr:
		v, err := e.evalExpr(n.E)
		if err != nil {
			return value.Null, err
		}
		return value.Bool(v.IsNull() != n.Negate), nil
	case *sql.BinOp:
		return e.evalBinOp(n)
	case *sql.SubqueryPred:
		t, err := e.evalSubquery(n)
		if err != nil {
			return value.Null, err
		}
		return t.Value(), nil
	case *sql.ScalarSub:
		return e.evalScalarSub(n)
	}
	return value.Null, fmt.Errorf("naive: cannot evaluate %T", x)
}

// evalScalarSub computes a scalar aggregate subquery in the current
// correlation environment: fold the aggregate over the qualifying rows.
func (e *evaluator) evalScalarSub(sc *sql.ScalarSub) (value.Value, error) {
	child := e.blockFor(sc.Sel)
	if child == nil {
		return value.Null, fmt.Errorf("naive: no analyzed block for scalar subquery")
	}
	return e.aggregateBlock(child)
}

// aggregateBlock folds a block's single aggregate over its qualifying
// tuples (locals, correlation and nested subqueries all honoured).
func (e *evaluator) aggregateBlock(child *sql.Block) (value.Value, error) {
	agg, ok := child.Agg()
	if !ok {
		return value.Null, fmt.Errorf("naive: block %d is not a scalar aggregate", child.ID)
	}
	state := algebra.NewAggState(agg.Func)
	colIdx := -1
	if agg.Col != "" {
		colIdx = child.Schema.ColIndex(agg.Col)
		if colIdx < 0 {
			return value.Null, fmt.Errorf("naive: aggregate column %s missing", agg.Col)
		}
	}
	err := e.eachBlockTuple(child, func(t relation.Tuple) error {
		keep, err := e.where(child, t)
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
		if colIdx < 0 {
			state.AddRow()
			return nil
		}
		return state.Add(t.Atoms[colIdx])
	})
	if err != nil {
		return value.Null, err
	}
	return state.Result(), nil
}

// aggNull reports a NULL produced by a scalar aggregate subquery — the
// one place a NULL appears that the base data never held (SUM/AVG/MIN/
// MAX over an empty qualifying set). 2VL preserves 3VL semantics for
// comparisons against it.
func aggNull(x sql.Expr, v value.Value) bool {
	_, ok := x.(*sql.ScalarSub)
	return ok && v.IsNull()
}

func (e *evaluator) evalBinOp(n *sql.BinOp) (value.Value, error) {
	switch n.Op {
	case "AND", "OR":
		lt, err := e.truth(n.L)
		if err != nil {
			return value.Null, err
		}
		rt, err := e.truth(n.R)
		if err != nil {
			return value.Null, err
		}
		if n.Op == "AND" {
			return lt.And(rt).Value(), nil
		}
		return lt.Or(rt).Value(), nil
	}
	l, err := e.evalExpr(n.L)
	if err != nil {
		return value.Null, err
	}
	r, err := e.evalExpr(n.R)
	if err != nil {
		return value.Null, err
	}
	switch n.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		op := cmpOpOf(n.Op)
		t, err := op.Apply(l, r)
		if err != nil {
			return value.Null, err
		}
		// 2VL keeps 3VL's Unknown when the NULL operand is an empty
		// scalar-aggregate subquery (a value the base data never held),
		// so 2VL ≡ 3VL on NULL-free data.
		if !aggNull(n.L, l) && !aggNull(n.R, r) {
			t = e.collapse(t)
		}
		return t.Value(), nil
	case "+", "-", "*", "/":
		return arith(n.Op, l, r)
	}
	return value.Null, fmt.Errorf("naive: unknown operator %q", n.Op)
}

// evalSubquery computes the 3VL truth of a linking predicate by executing
// the subquery per SQL semantics in the current correlation environment.
func (e *evaluator) evalSubquery(sp *sql.SubqueryPred) (value.Tri, error) {
	child := e.childBlock(sp)
	if child == nil {
		return value.Unknown, fmt.Errorf("naive: no analyzed block for subquery %s", sp)
	}

	var left value.Value
	if sp.Left != nil {
		v, err := e.evalExpr(sp.Left)
		if err != nil {
			return value.Unknown, err
		}
		left = v
	}

	// NOT IN under 2VL is ¬∃m (x = m): a <>-fold over collapsed members
	// would wrongly say False for x NOT IN {NULL}. It is refolded as an
	// existential over collapsed equalities and negated at the end.
	memberOp := sp.Cmp
	notInAsNegatedIn := e.twoVL && sp.Kind == sql.NotIn
	if notInAsNegatedIn {
		memberOp = expr.Eq
	}

	// A quantified predicate over an aggregate subquery sees a singleton
	// set: the one row every aggregate query returns.
	if _, isAgg := child.Agg(); isAgg && sp.Kind != sql.Exists && sp.Kind != sql.NotExists {
		item, err := e.aggregateBlock(child)
		if err != nil {
			return value.Unknown, err
		}
		op := memberOp
		switch sp.Kind {
		case sql.In:
			op = expr.Eq
		case sql.NotIn:
			if !notInAsNegatedIn {
				op = expr.Ne
			}
		}
		tri, err := op.Apply(left, item)
		if err != nil {
			return value.Unknown, err
		}
		// An empty-group SUM/AVG/MIN/MAX keeps its 3VL Unknown under 2VL
		// (see evalBinOp); the 2VL collapse applies to every other NULL.
		if !item.IsNull() {
			tri = e.collapse(tri)
		}
		if notInAsNegatedIn {
			tri = tri.Not()
		}
		return tri, nil
	}

	res := initialTri(sp.Kind)
	if notInAsNegatedIn {
		res = value.False // ∃-fold, negated after the loop
	}

	done := fmt.Errorf("naive: early out") // sentinel
	err := e.eachBlockTuple(child, func(t relation.Tuple) error {
		keep, err := e.where(child, t)
		if err != nil {
			return err
		}
		if !keep {
			return nil
		}
		switch sp.Kind {
		case sql.Exists:
			res = value.True
			return done
		case sql.NotExists:
			res = value.False
			return done
		}
		// Quantified comparison: evaluate the single select item.
		e.push(child, t)
		item, err := e.evalExpr(child.Sel.Items[0].Expr)
		e.pop()
		if err != nil {
			return err
		}
		cmp, err := memberOp.Apply(left, item)
		if err != nil {
			return err
		}
		cmp = e.collapse(cmp)
		if sp.Kind == sql.In || sp.Kind == sql.CmpSome || notInAsNegatedIn {
			res = res.Or(cmp)
			if res == value.True {
				return done
			}
		} else { // NotIn (3VL), CmpAll
			res = res.And(cmp)
			if res == value.False {
				return done
			}
		}
		return nil
	})
	if err != nil && err != done {
		return value.Unknown, err
	}
	if notInAsNegatedIn {
		res = res.Not()
	}
	return res, nil
}

func initialTri(k sql.LinkKind) value.Tri {
	switch k {
	case sql.Exists:
		return value.False // empty → false
	case sql.NotExists:
		return value.True // empty → true
	case sql.In, sql.CmpSome:
		return value.False
	default: // NotIn, CmpAll
		return value.True
	}
}

// childBlock finds the analyzed block corresponding to a subquery
// predicate (matching by the shared Select AST node).
func (e *evaluator) childBlock(sp *sql.SubqueryPred) *sql.Block {
	return e.blockFor(sp.Sel)
}

// blockFor finds the analyzed block of a Select AST node.
func (e *evaluator) blockFor(sel *sql.Select) *sql.Block {
	for _, b := range e.q.Blocks {
		if b.Sel == sel {
			return b
		}
	}
	return nil
}

func (e *evaluator) orderBy(out *relation.Relation, root *sql.Block, items []sql.Expr) error {
	type keyed struct {
		t    relation.Tuple
		keys []value.Value
	}
	rows := make([]keyed, out.Len())
	// ORDER BY keys must be select items (by position in items) or plain
	// column references into the output schema.
	for i, t := range out.Tuples {
		rows[i] = keyed{t: t}
		for _, o := range root.Sel.OrderBy {
			idx := -1
			if c, ok := o.Expr.(*sql.ColRef); ok {
				idx = out.Schema.ColIndex(c.String())
				if idx < 0 {
					idx = out.Schema.ColIndex(c.Column)
				}
			}
			if idx < 0 {
				return fmt.Errorf("naive: ORDER BY key %s is not a select item", o.Expr)
			}
			rows[i].keys = append(rows[i].keys, t.Atoms[idx])
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for ki, o := range root.Sel.OrderBy {
			va, vb := rows[a].keys[ki], rows[b].keys[ki]
			if value.Identical(va, vb) {
				continue
			}
			less := value.Less(va, vb)
			if o.Desc {
				return !less
			}
			return less
		}
		return false
	})
	for i := range rows {
		out.Tuples[i] = rows[i].t
	}
	return nil
}

func unqualified(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
