package naive

import (
	"testing"

	"nra/internal/catalog"
	"nra/internal/relation"
	"nra/internal/sql"
)

func db(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	r := relation.MustFromRows("R", []string{"A", "B", "D"},
		[]any{5, 1, 1},
		[]any{2, 2, 2},
		[]any{nil, 3, 3},
	)
	s := relation.MustFromRows("S", []string{"E", "G", "I"},
		[]any{2, 1, 1},
		[]any{3, 1, 2},
		[]any{4, 2, 3},
		[]any{nil, 1, 4},
	)
	if _, err := cat.Create("R", r, "D"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Create("S", s, "I"); err != nil {
		t.Fatal(err)
	}
	return cat
}

func eval(t testing.TB, cat *catalog.Catalog, src string) *relation.Relation {
	t.Helper()
	sel, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	q, err := sql.Analyze(sel, cat)
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	out, err := Evaluate(q)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return out
}

func firstCol(r *relation.Relation) []string {
	var out []string
	for _, t := range r.Tuples {
		out = append(out, t.Atoms[0].String())
	}
	return out
}

func TestKnownAnswers(t *testing.T) {
	cat := db(t)
	cases := []struct {
		src  string
		want int
	}{
		// R.A=5: 5>ALL{2,3,null}? unknown → out. R.A=2: {4} for G=2 → 2>4
		// false. R.A=null: unknown. Empty set for D=3? G=3 nothing → true!
		{"select B from R where A > all (select E from S where S.G = R.D)", 1},
		// EXISTS: D=1 and D=2 have matches.
		{"select B from R where exists (select * from S where S.G = R.D)", 2},
		{"select B from R where not exists (select * from S where S.G = R.D)", 1},
		// IN: A=2 with G=2 set {4}: false; A=5 with {2,3,null}: unknown;
		// A=null: unknown → 0 rows.
		{"select B from R where A in (select E from S where S.G = R.D)", 0},
		// NOT IN over NULL-bearing set: unknown; over {4}: 2<>4 true;
		// empty set → true.
		{"select B from R where A not in (select E from S where S.G = R.D)", 2},
		// Uncorrelated SOME: A=2 → 2<=2 true; A=5 → all false except
		// 5<=NULL unknown → unknown; A=NULL → unknown. One row.
		{"select B from R where A <= some (select E from S)", 1},
		// OR with subquery — the shape only this evaluator accepts.
		{"select B from R where B = 3 or exists (select * from S where S.G = R.D and S.E = 2)", 2},
		// Multiple subqueries in one conjunct via OR.
		{"select B from R where exists (select * from S where S.G = R.D) or A not in (select E from S)", 2},
	}
	for _, tc := range cases {
		got := eval(t, cat, tc.src)
		if got.Len() != tc.want {
			t.Errorf("%s\n  got %d rows, want %d:\n%s", tc.src, got.Len(), tc.want, got)
		}
	}
}

func TestNotWrappingPreserved(t *testing.T) {
	cat := db(t)
	// NOT(NOT EXISTS ...) ≡ EXISTS ...: double negation through the AST.
	a := eval(t, cat, "select B from R where not (not exists (select * from S where S.G = R.D))")
	b := eval(t, cat, "select B from R where exists (select * from S where S.G = R.D)")
	if !a.EqualSet(b) {
		t.Fatalf("double negation broken:\n%s\nvs\n%s", a, b)
	}
}

func TestSelectStarAndProjection(t *testing.T) {
	cat := db(t)
	star := eval(t, cat, "select * from R where A > 1")
	if len(star.Schema.Cols) != 3 || star.Len() != 2 {
		t.Fatalf("star:\n%s", star)
	}
	expr := eval(t, cat, "select A + B as s from R where D = 1")
	if expr.Schema.Cols[0].Name != "s" || expr.Tuples[0].Atoms[0].Int64() != 6 {
		t.Fatalf("expression projection:\n%s", expr)
	}
}

func TestDistinctAndOrderBy(t *testing.T) {
	cat := db(t)
	d := eval(t, cat, "select distinct G from S")
	if d.Len() != 2 {
		t.Fatalf("distinct: %d", d.Len())
	}
	o := eval(t, cat, "select E from S order by E desc")
	got := firstCol(o)
	// NULLs sort first ascending → last when descending.
	if got[0] != "4" || got[3] != "null" {
		t.Fatalf("order by desc: %v", got)
	}
	asc := eval(t, cat, "select E, I from S order by E")
	if firstCol(asc)[0] != "null" {
		t.Fatalf("order by asc: %v", firstCol(asc))
	}
}

func TestMultiTableFrom(t *testing.T) {
	cat := db(t)
	j := eval(t, cat, "select R.B, S.E from R, S where R.D = S.G")
	if j.Len() != 4 { // D=1 matches 3 S rows (G=1), D=2 matches 1
		t.Fatalf("join rows = %d:\n%s", j.Len(), j)
	}
}

func TestCorrelationToGrandparent(t *testing.T) {
	cat := db(t)
	// The innermost block references R (two levels up).
	out := eval(t, cat, `select B from R where exists
		(select * from S where S.G = R.D and exists
			(select * from S s2 where s2.E = R.A))`)
	// R.A=5: no s2.E=5 → false. R.A=2: s2.E=2 exists and S.G=2 exists → true.
	if out.Len() != 1 || out.Tuples[0].Atoms[0].Int64() != 2 {
		t.Fatalf("grandparent correlation:\n%s", out)
	}
}

func TestErrorsSurface(t *testing.T) {
	cat := db(t)
	sel, err := sql.Parse("select B from R where A + 'x' = 1")
	if err != nil {
		t.Fatal(err)
	}
	q, err := sql.Analyze(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(q); err == nil {
		t.Fatal("type error must surface")
	}
	sel2, _ := sql.Parse("select B from R order by A + 1")
	q2, err := sql.Analyze(sel2, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(q2); err == nil {
		t.Fatal("non-item ORDER BY key must error")
	}
}
