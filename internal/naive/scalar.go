package naive

import (
	"fmt"

	"nra/internal/expr"
	"nra/internal/value"
)

func cmpOpOf(op string) expr.CmpOp {
	switch op {
	case "=":
		return expr.Eq
	case "<>":
		return expr.Ne
	case "<":
		return expr.Lt
	case "<=":
		return expr.Le
	case ">":
		return expr.Gt
	case ">=":
		return expr.Ge
	}
	panic("naive: bad comparison operator " + op)
}

// arith mirrors internal/expr's arithmetic semantics: NULL-propagating,
// integer-preserving except division.
func arith(op string, x, y value.Value) (value.Value, error) {
	if x.IsNull() || y.IsNull() {
		return value.Null, nil
	}
	if x.Kind() == value.KindInt && y.Kind() == value.KindInt && op != "/" {
		a, b := x.Int64(), y.Int64()
		switch op {
		case "+":
			return value.Int(a + b), nil
		case "-":
			return value.Int(a - b), nil
		case "*":
			return value.Int(a * b), nil
		}
	}
	numeric := func(v value.Value) bool {
		return v.Kind() == value.KindInt || v.Kind() == value.KindFloat
	}
	if !numeric(x) || !numeric(y) {
		return value.Null, fmt.Errorf("naive: arithmetic on %s and %s", x.Kind(), y.Kind())
	}
	a, b := x.Float64(), y.Float64()
	switch op {
	case "+":
		return value.Float(a + b), nil
	case "-":
		return value.Float(a - b), nil
	case "*":
		return value.Float(a * b), nil
	case "/":
		if b == 0 {
			return value.Null, fmt.Errorf("naive: division by zero")
		}
		return value.Float(a / b), nil
	}
	return value.Null, fmt.Errorf("naive: unknown arithmetic operator %q", op)
}
