package stats

import (
	"sort"

	"nra/internal/value"
)

// Histogram is an equi-depth histogram over a column's non-NULL values.
// Bucket i covers (Bounds[i], Bounds[i+1]] — except bucket 0, which is
// closed on both ends — and holds Counts[i] rows, so len(Bounds) ==
// len(Counts)+1. Buckets hold (nearly) equal row counts, which keeps the
// relative estimation error uniform across skewed distributions.
type Histogram struct {
	Bounds []value.Value
	Counts []int
	total  int
}

// BuildHistogram sorts a copy of the non-NULL values (value.Less order)
// and cuts it into at most buckets equal-depth ranges.
func BuildHistogram(vals []value.Value, buckets int) *Histogram {
	n := len(vals)
	if n == 0 || buckets < 1 {
		return nil
	}
	sorted := make([]value.Value, n)
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return value.Less(sorted[i], sorted[j]) })
	if buckets > n {
		buckets = n
	}
	h := &Histogram{total: n}
	h.Bounds = append(h.Bounds, sorted[0])
	prev := 0
	for b := 1; b <= buckets; b++ {
		hi := b * n / buckets // cumulative rank of this bucket's upper bound
		if hi <= prev {
			continue
		}
		h.Bounds = append(h.Bounds, sorted[hi-1])
		h.Counts = append(h.Counts, hi-prev)
		prev = hi
	}
	return h
}

// Total returns the number of values the histogram summarises.
func (h *Histogram) Total() int { return h.total }

// FracLE estimates the fraction of values ≤ v, interpolating linearly
// inside the bucket that contains v (numeric columns only; non-numeric
// buckets assume the half-way point).
func (h *Histogram) FracLE(v value.Value) float64 {
	if h == nil || h.total == 0 {
		return defaultRange
	}
	if value.Less(v, h.Bounds[0]) {
		return 0
	}
	cum := 0
	for i, cnt := range h.Counts {
		lo, hi := h.Bounds[i], h.Bounds[i+1]
		if !value.Less(v, hi) { // v >= hi: whole bucket qualifies
			cum += cnt
			continue
		}
		return (float64(cum) + interpolate(lo, hi, v)*float64(cnt)) / float64(h.total)
	}
	return 1
}

// interpolate returns the fraction of a bucket (lo, hi] that lies ≤ v.
func interpolate(lo, hi, v value.Value) float64 {
	l, okL := asFloat(lo)
	h, okH := asFloat(hi)
	x, okX := asFloat(v)
	if !okL || !okH || !okX || h <= l {
		return 0.5
	}
	f := (x - l) / (h - l)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

func asFloat(v value.Value) (float64, bool) {
	switch v.Kind() {
	case value.KindInt:
		return float64(v.Int64()), true
	case value.KindFloat:
		return v.Float64(), true
	default:
		return 0, false
	}
}
