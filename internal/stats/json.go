package stats

import (
	"fmt"
	"strconv"

	"nra/internal/value"
)

// TableJSON is the serialisable form of Table, embedded in the csvio
// manifest so a saved database carries its ANALYZE results.
type TableJSON struct {
	Rows int          `json:"rows"`
	Cols []ColumnJSON `json:"columns"`
}

// ColumnJSON mirrors Column.
type ColumnJSON struct {
	Name   string      `json:"name"`
	Rows   int         `json:"rows"`
	Nulls  int         `json:"nulls,omitempty"`
	NDV    float64     `json:"ndv"`
	Width  float64     `json:"width"`
	Min    *ValueJSON  `json:"min,omitempty"`
	Max    *ValueJSON  `json:"max,omitempty"`
	Bounds []ValueJSON `json:"hist_bounds,omitempty"`
	Counts []int       `json:"hist_counts,omitempty"`
}

// ValueJSON encodes a single value with its kind, so 1 (INTEGER) and "1"
// (VARCHAR) round-trip distinctly.
type ValueJSON struct {
	Kind string `json:"kind"`
	Text string `json:"text"`
}

// ToJSON converts the statistics to their serialisable form.
func (t *Table) ToJSON() *TableJSON {
	out := &TableJSON{Rows: t.Rows}
	for _, c := range t.Cols {
		cj := ColumnJSON{Name: c.Name, Rows: c.Rows, Nulls: c.Nulls, NDV: c.NDV, Width: c.Width}
		cj.Min = encodeValue(c.Min)
		cj.Max = encodeValue(c.Max)
		if c.Hist != nil {
			for _, b := range c.Hist.Bounds {
				cj.Bounds = append(cj.Bounds, *encodeValue(b))
			}
			cj.Counts = append(cj.Counts, c.Hist.Counts...)
		}
		out.Cols = append(out.Cols, cj)
	}
	return out
}

// FromJSON rebuilds Table from its serialised form.
func FromJSON(tj *TableJSON) (*Table, error) {
	t := &Table{Rows: tj.Rows, byName: make(map[string]*Column, len(tj.Cols))}
	for _, cj := range tj.Cols {
		c := &Column{Name: cj.Name, Rows: cj.Rows, Nulls: cj.Nulls, NDV: cj.NDV, Width: cj.Width}
		var err error
		if c.Min, err = decodeValue(cj.Min); err != nil {
			return nil, fmt.Errorf("stats: column %s min: %w", cj.Name, err)
		}
		if c.Max, err = decodeValue(cj.Max); err != nil {
			return nil, fmt.Errorf("stats: column %s max: %w", cj.Name, err)
		}
		if len(cj.Bounds) > 0 {
			if len(cj.Bounds) != len(cj.Counts)+1 {
				return nil, fmt.Errorf("stats: column %s: %d bounds for %d buckets", cj.Name, len(cj.Bounds), len(cj.Counts))
			}
			h := &Histogram{Counts: append([]int(nil), cj.Counts...)}
			for _, b := range cj.Bounds {
				v, err := decodeValue(&b)
				if err != nil {
					return nil, fmt.Errorf("stats: column %s bound: %w", cj.Name, err)
				}
				h.Bounds = append(h.Bounds, v)
			}
			for _, n := range h.Counts {
				h.total += n
			}
			c.Hist = h
		}
		t.Cols = append(t.Cols, c)
		t.byName[c.Name] = c
	}
	return t, nil
}

func encodeValue(v value.Value) *ValueJSON {
	if v.IsNull() {
		return nil
	}
	vj := &ValueJSON{Kind: v.Kind().String()}
	switch v.Kind() {
	case value.KindInt:
		vj.Text = strconv.FormatInt(v.Int64(), 10)
	case value.KindFloat:
		vj.Text = strconv.FormatFloat(v.Float64(), 'g', -1, 64)
	case value.KindString:
		vj.Text = v.Text()
	case value.KindBool:
		vj.Text = v.String()
	}
	return vj
}

func decodeValue(vj *ValueJSON) (value.Value, error) {
	if vj == nil {
		return value.Null, nil
	}
	switch vj.Kind {
	case "INTEGER":
		i, err := strconv.ParseInt(vj.Text, 10, 64)
		if err != nil {
			return value.Null, err
		}
		return value.Int(i), nil
	case "FLOAT":
		f, err := strconv.ParseFloat(vj.Text, 64)
		if err != nil {
			return value.Null, err
		}
		return value.Float(f), nil
	case "VARCHAR":
		return value.Str(vj.Text), nil
	case "BOOLEAN":
		b, err := strconv.ParseBool(vj.Text)
		if err != nil {
			return value.Null, err
		}
		return value.Bool(b), nil
	default:
		return value.Null, fmt.Errorf("unknown value kind %q", vj.Kind)
	}
}
