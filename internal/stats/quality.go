package stats

import (
	"fmt"
	"math"
	"sync/atomic"
)

// QErrorBuckets is the resolution of QErrorHist: bucket i counts q-errors
// in [2^i, 2^(i+1)), with the last bucket absorbing everything larger.
const QErrorBuckets = 16

// QErrorHist is a concurrency-safe log₂-bucketed histogram of estimator
// q-errors (the symmetric factor max(est,act)/min(est,act) ≥ 1). The
// observability layer feeds one observation per executed plan operator
// that carried an estimate, closing the loop between the cost model's
// predictions and live traffic: a drifting histogram is the signal to
// re-ANALYZE. The zero value is ready to use.
type QErrorHist struct {
	buckets [QErrorBuckets]atomic.Int64
	count   atomic.Int64
	maxBits atomic.Uint64 // math.Float64bits of the largest q-error seen
}

// Note records one q-error observation (values < 1 are clamped to 1).
func (h *QErrorHist) Note(q float64) {
	if h == nil || math.IsNaN(q) {
		return
	}
	if q < 1 {
		q = 1
	}
	b := int(math.Log2(q))
	if b >= QErrorBuckets {
		b = QErrorBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	for {
		old := h.maxBits.Load()
		if q <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(q)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *QErrorHist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Max returns the largest q-error observed (0 before any observation).
func (h *QErrorHist) Max() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Buckets returns a copy of the per-bucket counts; bucket i holds
// q-errors in [2^i, 2^(i+1)).
func (h *QErrorHist) Buckets() []int64 {
	out := make([]int64, QErrorBuckets)
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile returns an upper bound (the bucket's right edge) for the p-th
// quantile of the observed q-errors, or 0 before any observation.
func (h *QErrorHist) Quantile(p float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < QErrorBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return math.Pow(2, float64(i+1))
		}
	}
	return h.Max()
}

// Suspect reports whether the accumulated q-errors suggest the
// statistics have drifted badly enough to warrant a re-ANALYZE: at
// least 32 observations with a p90 above 64×.
func (h *QErrorHist) Suspect() bool {
	return h.Count() >= 32 && h.Quantile(0.9) > 64
}

// Reset clears the histogram (tests and explicit operator resets).
func (h *QErrorHist) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.maxBits.Store(0)
}

// Summary renders the histogram in one line for metrics endpoints and
// the REPL.
func (h *QErrorHist) Summary() string {
	n := h.Count()
	if n == 0 {
		return "q-error: no observations"
	}
	s := fmt.Sprintf("q-error: n=%d p50≤%.0f p90≤%.0f p99≤%.0f max=%.1f",
		n, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max())
	if h.Suspect() {
		s += " (drift suspected — re-ANALYZE)"
	}
	return s
}
