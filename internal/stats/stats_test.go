package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"nra/internal/relation"
	"nra/internal/value"
)

func intRel(t *testing.T, name string, vals ...int64) *relation.Relation {
	t.Helper()
	schema := &relation.Schema{Name: name, Cols: []relation.Column{{Name: name + ".v", Type: relation.TInt}}}
	rel := relation.New(schema)
	for _, v := range vals {
		rel.Append(relation.Tuple{Atoms: []value.Value{value.Int(v)}})
	}
	return rel
}

func TestCollectBasics(t *testing.T) {
	schema := &relation.Schema{Name: "t", Cols: []relation.Column{
		{Name: "t.a", Type: relation.TInt},
		{Name: "t.s", Type: relation.TString},
	}}
	rel := relation.New(schema)
	for i := 0; i < 100; i++ {
		a := value.Int(int64(i % 10))
		s := value.Str(fmt.Sprintf("str%02d", i))
		if i%4 == 0 {
			a = value.Null
		}
		rel.Append(relation.Tuple{Atoms: []value.Value{a, s}})
	}
	ts := Collect(rel)
	if ts.Rows != 100 {
		t.Fatalf("rows = %d, want 100", ts.Rows)
	}
	a := ts.Col("a")
	if a == nil {
		t.Fatal("no stats for column a")
	}
	if got := a.NullFrac(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("null fraction = %g, want 0.25", got)
	}
	// Values 0..9 minus the multiples of four that were nulled out on
	// residues 0,4,8 — but every residue still appears for some i, so the
	// distinct count is exactly 10.
	if a.NDV != 10 {
		t.Errorf("ndv = %g, want 10 (exact below sketch size)", a.NDV)
	}
	if !value.Identical(a.Min, value.Int(0)) || !value.Identical(a.Max, value.Int(9)) {
		t.Errorf("min/max = %s/%s, want 0/9", a.Min, a.Max)
	}
	s := ts.Col("s")
	if s.NDV != 100 || s.Nulls != 0 {
		t.Errorf("string column: ndv=%g nulls=%d, want 100/0", s.NDV, s.Nulls)
	}
	if s.Width <= 40 {
		t.Errorf("string width = %g, want > 40 (payload accounted)", s.Width)
	}
}

func TestHistogramEquiDepth(t *testing.T) {
	// Heavily skewed: 900 copies of 1, then 100 distinct high values.
	var vals []value.Value
	for i := 0; i < 900; i++ {
		vals = append(vals, value.Int(1))
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, value.Int(int64(1000+i)))
	}
	h := BuildHistogram(vals, 10)
	if h == nil {
		t.Fatal("nil histogram")
	}
	if got := h.FracLE(value.Int(1)); math.Abs(got-0.9) > 0.05 {
		t.Errorf("FracLE(1) = %g, want ≈0.9", got)
	}
	if got := h.FracLE(value.Int(0)); got != 0 {
		t.Errorf("FracLE(0) = %g, want 0 (below min)", got)
	}
	if got := h.FracLE(value.Int(2000)); got != 1 {
		t.Errorf("FracLE(2000) = %g, want 1 (above max)", got)
	}
	mid := h.FracLE(value.Int(1050))
	if mid < 0.9 || mid > 1 {
		t.Errorf("FracLE(1050) = %g, want in [0.9, 1]", mid)
	}
}

func TestKMVSketch(t *testing.T) {
	// Below k: exact.
	s := newKMV(kmvK)
	for i := 0; i < 500; i++ {
		s.Add(fnv64a([]byte(fmt.Sprintf("v%d", i))))
		s.Add(fnv64a([]byte(fmt.Sprintf("v%d", i)))) // duplicates ignored
	}
	if got := s.Estimate(); got != 500 {
		t.Errorf("estimate = %g, want exactly 500 below sketch size", got)
	}
	// Above k: within 10%.
	s = newKMV(kmvK)
	const n = 50000
	for i := 0; i < n; i++ {
		s.Add(fnv64a([]byte(fmt.Sprintf("key-%d", i))))
	}
	got := s.Estimate()
	if got < 0.9*n || got > 1.1*n {
		t.Errorf("estimate = %g, want within 10%% of %d", got, n)
	}
}

func TestSelectivityHelpers(t *testing.T) {
	rel := intRel(t, "t")
	for i := int64(1); i <= 1000; i++ {
		rel.Append(relation.Tuple{Atoms: []value.Value{value.Int(i)}})
	}
	c := Collect(rel).Col("v")
	if got := c.FracEq(value.Int(500)); math.Abs(got-0.001) > 1e-6 {
		t.Errorf("FracEq = %g, want 0.001", got)
	}
	if got := c.FracEq(value.Int(5000)); got != 0 {
		t.Errorf("FracEq outside [min,max] = %g, want 0", got)
	}
	if got := c.FracLE(value.Int(250)); math.Abs(got-0.25) > 0.05 {
		t.Errorf("FracLE(250) = %g, want ≈0.25", got)
	}
	if got := c.FracLT(value.Int(1)); got > 0.05 {
		t.Errorf("FracLT(min) = %g, want ≈0", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	schema := &relation.Schema{Name: "t", Cols: []relation.Column{
		{Name: "t.a", Type: relation.TInt},
		{Name: "t.s", Type: relation.TString},
		{Name: "t.f", Type: relation.TFloat},
		{Name: "t.b", Type: relation.TBool},
	}}
	rel := relation.New(schema)
	for i := 0; i < 200; i++ {
		rel.Append(relation.Tuple{Atoms: []value.Value{
			value.Int(int64(i)),
			value.Str(fmt.Sprintf(`\weird "str" %d`, i)),
			value.Float(float64(i) / 7),
			value.Bool(i%2 == 0),
		}})
	}
	orig := Collect(rel)
	data, err := json.Marshal(orig.ToJSON())
	if err != nil {
		t.Fatal(err)
	}
	var tj TableJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(&tj)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != orig.Rows || len(back.Cols) != len(orig.Cols) {
		t.Fatalf("shape changed: %d/%d cols, %d/%d rows", len(back.Cols), len(orig.Cols), back.Rows, orig.Rows)
	}
	for i, oc := range orig.Cols {
		bc := back.Cols[i]
		if bc.Name != oc.Name || bc.Nulls != oc.Nulls || bc.NDV != oc.NDV || bc.Width != oc.Width {
			t.Errorf("column %s changed: %+v vs %+v", oc.Name, bc, oc)
		}
		if !value.Identical(bc.Min, oc.Min) || !value.Identical(bc.Max, oc.Max) {
			t.Errorf("column %s min/max changed", oc.Name)
		}
		if (bc.Hist == nil) != (oc.Hist == nil) {
			t.Fatalf("column %s histogram presence changed", oc.Name)
		}
		if oc.Hist != nil {
			if bc.Hist.Total() != oc.Hist.Total() || len(bc.Hist.Counts) != len(oc.Hist.Counts) {
				t.Errorf("column %s histogram shape changed", oc.Name)
			}
			probe := value.Int(57)
			if oc.Name == "f" {
				probe = value.Float(13.37)
			}
			if bc.Hist.FracLE(probe) != oc.Hist.FracLE(probe) {
				t.Errorf("column %s histogram estimate changed after round trip", oc.Name)
			}
		}
	}
}
