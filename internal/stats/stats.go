// Package stats collects per-table and per-column statistics — row
// counts, null fractions, distinct-count estimates, min/max bounds and
// equi-depth histograms — for the cost-based planner (internal/opt).
//
// Collection is a single ANALYZE pass over a flat relation. The sketch
// behind the distinct-count estimate is a k-minimum-values (KMV) sketch
// over an FNV-64a hash of each value's canonical key bytes: exact below
// k distinct values, within a few percent above, using O(k) memory —
// stdlib-only, no external dependencies. Statistics serialise to JSON so
// csvio can persist them alongside the CSV tables and an nraql session
// can reuse a previous ANALYZE.
package stats

import (
	"fmt"
	"strings"

	"nra/internal/relation"
	"nra/internal/value"
)

// DefaultBuckets is the equi-depth histogram resolution used by Collect.
const DefaultBuckets = 32

// Column holds the statistics of one column. Fractions returned by its
// estimation helpers are fractions of the column's non-NULL values;
// callers account for NULLs via NullFrac.
type Column struct {
	Name  string      // unqualified column name
	Rows  int         // rows in the table (including NULLs in this column)
	Nulls int         // rows where this column is NULL
	NDV   float64     // estimated distinct non-NULL values
	Min   value.Value // smallest non-NULL value (Null when column is all-NULL)
	Max   value.Value // largest non-NULL value
	Width float64     // avg accounted bytes per value (exec.TupleBytes model)
	Hist  *Histogram  // equi-depth histogram over non-NULL values; nil if none
}

// NullFrac returns the fraction of the column's rows that are NULL.
func (c *Column) NullFrac() float64 {
	if c == nil || c.Rows == 0 {
		return 0
	}
	return float64(c.Nulls) / float64(c.Rows)
}

// Table holds the statistics of one base table.
type Table struct {
	Rows int
	Cols []*Column

	byName map[string]*Column
}

// Col returns the statistics of the named (unqualified) column, or nil.
func (t *Table) Col(name string) *Column {
	if t == nil {
		return nil
	}
	return t.byName[name]
}

// Collect performs the ANALYZE pass over a flat relation and returns its
// statistics. Column names are stored unqualified so the same statistics
// serve every alias of the table.
func Collect(rel *relation.Relation) *Table {
	return CollectSeeded(rel, nil)
}

// ColumnSeed carries write-time column facts — exact min/max bounds and
// NULL counts folded from a columnar segment's zone maps — that
// CollectSeeded uses in place of its own min/max/null pass. A seed is
// used only when Valid and when Rows matches the relation, so stale or
// withheld seeds degrade to a plain Collect of that column.
type ColumnSeed struct {
	Valid    bool
	Rows     int         // rows the seed was collected over
	Nulls    int         // NULL rows in the column
	Min, Max value.Value // exact bounds under value.Less (Null when all-NULL)
}

// CollectSeeded is Collect with optional per-column seeds (indexed by
// column position; nil or short slices mean no seed). Seeded columns
// skip the per-row min/max comparisons and NULL counting; the output is
// identical to Collect's because the seeds fold the same values under
// the same ordering.
func CollectSeeded(rel *relation.Relation, seeds []ColumnSeed) *Table {
	t := &Table{Rows: rel.Len(), byName: make(map[string]*Column, len(rel.Schema.Cols))}
	for ci, sc := range rel.Schema.Cols {
		var seed *ColumnSeed
		if ci < len(seeds) && seeds[ci].Valid && seeds[ci].Rows == rel.Len() {
			seed = &seeds[ci]
		}
		c := collectColumn(rel, ci, seed)
		c.Name = unqualify(sc.Name)
		t.Cols = append(t.Cols, c)
		t.byName[c.Name] = c
	}
	return t
}

func collectColumn(rel *relation.Relation, ci int, seed *ColumnSeed) *Column {
	c := &Column{Rows: rel.Len(), Min: value.Null, Max: value.Null}
	sk := newKMV(kmvK)
	var nonNull []value.Value
	var key []byte
	var widthSum float64
	for _, tp := range rel.Tuples {
		v := tp.Atoms[ci]
		if v.IsNull() {
			c.Nulls++
			continue
		}
		key = v.AppendKey(key[:0])
		sk.Add(fnv64a(key))
		// Mirror exec.TupleBytes' per-atom accounting: 40 bytes per atom
		// plus string payload.
		widthSum += 40
		if v.Kind() == value.KindString {
			widthSum += float64(len(v.Text()))
		}
		if seed == nil {
			if c.Min.IsNull() || value.Less(v, c.Min) {
				c.Min = v
			}
			if c.Max.IsNull() || value.Less(c.Max, v) {
				c.Max = v
			}
		}
		nonNull = append(nonNull, v)
	}
	if seed != nil {
		c.Nulls, c.Min, c.Max = seed.Nulls, seed.Min, seed.Max
	}
	if n := len(nonNull); n > 0 {
		c.Width = widthSum / float64(n)
		c.NDV = sk.Estimate()
		if c.NDV > float64(n) {
			c.NDV = float64(n)
		}
		if c.NDV < 1 {
			c.NDV = 1
		}
		c.Hist = BuildHistogram(nonNull, DefaultBuckets)
	} else {
		c.Width = 40
	}
	return c
}

// FracEq estimates the fraction of the column's non-NULL values equal to v.
func (c *Column) FracEq(v value.Value) float64 {
	if c == nil || c.NDV <= 0 {
		return defaultEq
	}
	if !c.Min.IsNull() && (value.Less(v, c.Min) || value.Less(c.Max, v)) {
		return 0
	}
	return 1 / c.NDV
}

// FracLE estimates the fraction of non-NULL values ≤ v; FracLT excludes v.
func (c *Column) FracLE(v value.Value) float64 {
	if c == nil || c.Hist == nil {
		return defaultRange
	}
	return c.Hist.FracLE(v)
}

// FracLT estimates the fraction of non-NULL values < v.
func (c *Column) FracLT(v value.Value) float64 {
	f := c.FracLE(v) - c.FracEq(v)
	if f < 0 {
		return 0
	}
	return f
}

// Default selectivities used when a histogram or NDV is unavailable
// (System R's classics).
const (
	defaultEq    = 0.1
	defaultRange = 1.0 / 3
)

// Summary renders a human-readable table of the statistics (the REPL's
// \stats output).
func (t *Table) Summary(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d rows\n", name, t.Rows)
	fmt.Fprintf(&b, "  %-20s %9s %9s %8s  %-14s %-14s %s\n",
		"column", "nulls", "ndv", "width", "min", "max", "histogram")
	for _, c := range t.Cols {
		hist := "-"
		if c.Hist != nil {
			hist = fmt.Sprintf("%d buckets", len(c.Hist.Counts))
		}
		fmt.Fprintf(&b, "  %-20s %8.1f%% %9.0f %8.1f  %-14s %-14s %s\n",
			c.Name, 100*c.NullFrac(), c.NDV, c.Width, short(c.Min), short(c.Max), hist)
	}
	return b.String()
}

func short(v value.Value) string {
	s := v.String()
	if len(s) > 14 {
		s = s[:11] + "..."
	}
	return s
}

func unqualify(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
