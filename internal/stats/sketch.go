package stats

import "math"

// kmvK is the sketch size: exact distinct counts up to 1024, ~3% standard
// error above, 16 KiB of state per column.
const kmvK = 1024

// kmv is a k-minimum-values distinct-count sketch: it keeps the k
// smallest distinct 64-bit hashes seen. If fewer than k distinct hashes
// arrive the count is exact; otherwise the k-th smallest hash's position
// in the hash space estimates the density of distinct values.
type kmv struct {
	k    int
	heap []uint64            // max-heap of the k smallest hashes
	in   map[uint64]struct{} // membership, to ignore duplicates
}

func newKMV(k int) *kmv {
	return &kmv{k: k, in: make(map[uint64]struct{}, k)}
}

func (s *kmv) Add(h uint64) {
	if _, dup := s.in[h]; dup {
		return
	}
	if len(s.heap) < s.k {
		s.in[h] = struct{}{}
		s.heapPush(h)
		return
	}
	if h >= s.heap[0] {
		return // not among the k smallest
	}
	delete(s.in, s.heap[0])
	s.in[h] = struct{}{}
	s.heap[0] = h
	s.siftDown(0)
}

// Estimate returns the estimated number of distinct hashes added.
func (s *kmv) Estimate() float64 {
	n := len(s.heap)
	if n < s.k {
		return float64(n) // saw fewer than k distinct values: exact
	}
	kth := float64(s.heap[0]) / float64(math.MaxUint64) // density of the k smallest
	if kth <= 0 {
		return float64(n)
	}
	return float64(s.k-1) / kth
}

func (s *kmv) heapPush(h uint64) {
	s.heap = append(s.heap, h)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent] >= s.heap[i] {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *kmv) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r, big := 2*i+1, 2*i+2, i
		if l < n && s.heap[l] > s.heap[big] {
			big = l
		}
		if r < n && s.heap[r] > s.heap[big] {
			big = r
		}
		if big == i {
			return
		}
		s.heap[i], s.heap[big] = s.heap[big], s.heap[i]
		i = big
	}
}

// fnv64a hashes canonical value-key bytes (value.AppendKey) with the
// FNV-64a function — deterministic across runs and platforms, so
// serialised statistics and fresh ANALYZE passes agree.
func fnv64a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}
