package faultinject_test

// BenchmarkGovernance prices the resource-governance machinery: the
// ungoverned fast path, the accounting overhead under an effectively
// infinite budget (reservations and checkpoints run, nothing spills),
// and the spill slowdown at three budgets tight enough to force the
// chunked join and external sort. EXPERIMENTS.md records the results.

import (
	"testing"

	"nra/internal/core"
	"nra/internal/exec"
)

func BenchmarkGovernance(b *testing.B) {
	cat := testCatalog(b)
	q := analyze(b, cat, linkingQueries["not-in"])
	cases := []struct {
		name   string
		budget int64
	}{
		{"off", 0},       // ungoverned: zero-overhead path
		{"inf", 1 << 40}, // accounting on, never spills
		{"budget-1M", 1 << 20},
		{"budget-256K", 256 << 10},
		{"budget-64K", 64 << 10},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			dir := b.TempDir()
			var stats exec.Stats
			for i := 0; i < b.N; i++ {
				opt := core.Optimized()
				opt.MemoryBudget = tc.budget
				opt.SpillDir = dir
				opt.Stats = &stats
				if _, err := core.Execute(q, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Spills), "spills/op")
			if tc.budget > 1<<30 && stats.Spills > 0 {
				b.Fatal("infinite budget spilled")
			}
		})
	}
}
