package faultinject

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"nra/internal/catalog"
	"nra/internal/csvio"
	"nra/internal/relation"
	"nra/internal/value"
	"nra/internal/vfs"
	"nra/internal/wal"
)

// The FS crash-point matrix: a durable session (load → three journaled
// DML commits → full save + WAL checkpoint) is run once per filesystem
// operation with a crash injected exactly there, under both reboot
// modes and both on-disk formats (binary columnar segments and CSV).
// After every crash, recovery must land on exactly the pre- or
// post-state of some committed batch — never a torn state: a torn
// segment write must be caught by the manifest CRC or segment
// checksums and recovery must fall back to the committed manifest
// boundary. Recovery must never lose an acknowledged commit in
// LoseUnsynced mode, and must leave no temp files or orphan segment
// generations behind.

const faultDir = "/db"

func baseCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	s := relation.MustFromRows("S", []string{"a", "b"},
		[]any{1, 10}, []any{2, 20}, []any{3, nil})
	if _, err := cat.Create("S", s, "a"); err != nil {
		t.Fatal(err)
	}
	tt := relation.MustFromRows("T", []string{"k", "v"},
		[]any{7, "x"}, []any{8, `\N`}, []any{9, ""})
	if _, err := cat.Create("T", tt, "k"); err != nil {
		t.Fatal(err)
	}
	return cat
}

// batches are the journaled commits the workload runs, in order.
var batches = []wal.Record{
	{Op: wal.OpInsert, Table: "S", Rows: [][]wal.Cell{
		wal.EncodeRow([]value.Value{value.Int(4), value.Int(40)}),
		wal.EncodeRow([]value.Value{value.Int(5), value.Null}),
	}},
	{Op: wal.OpDelete, Table: "T", Keys: wal.EncodeRow([]value.Value{value.Int(8)})},
	{Op: wal.OpUpdate, Table: "S",
		Keys: wal.EncodeRow([]value.Value{value.Int(2)}),
		Cols: []string{"b"},
		Vals: [][]wal.Cell{wal.EncodeRow([]value.Value{value.Int(99)})}},
}

// setup seeds a fresh filesystem with the durable base state: a full
// save of the base catalog in the given format plus an empty journal.
func setup(t *testing.T, format csvio.Format) *FaultFS {
	t.Helper()
	fsys := NewFaultFS()
	if _, err := csvio.SaveFSAs(fsys, baseCatalog(t).Snapshot(), faultDir, format); err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(fsys, filepath.Join(faultDir, csvio.WALName), 1, wal.SyncOnCommit)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	return fsys
}

// workload opens the durable directory, commits the batches (journal
// first, then the in-memory catalog), then runs a full save with a WAL
// checkpoint. It returns how many batches were acknowledged (journal
// append returned success) before any failure.
func workload(fsys vfs.FS, format csvio.Format) (acked int, err error) {
	cat, ckpt, err := csvio.LoadFS(fsys, faultDir)
	if err != nil {
		return 0, err
	}
	walPath := filepath.Join(faultDir, csvio.WALName)
	recs, err := wal.Replay(fsys, walPath, ckpt)
	if err != nil {
		return 0, err
	}
	if err := wal.Apply(cat, recs); err != nil {
		return 0, err
	}
	l, err := wal.Open(fsys, walPath, ckpt, wal.SyncOnCommit)
	if err != nil {
		return 0, err
	}
	defer l.Close()
	for _, rec := range batches {
		if err := l.Append(rec); err != nil {
			return acked, err
		}
		if err := wal.Apply(cat, []wal.Record{rec}); err != nil {
			return acked, err
		}
		acked++
	}
	newCkpt, err := csvio.SaveFSAs(fsys, cat.Snapshot(), faultDir, format)
	if err != nil {
		return acked, err
	}
	if err := l.Checkpoint(newCkpt); err != nil {
		return acked, err
	}
	return acked, nil
}

// recoverDB reloads the directory exactly like a restarting engine.
func recoverDB(fsys vfs.FS) (*catalog.Catalog, error) {
	cat, ckpt, err := csvio.LoadFS(fsys, faultDir)
	if err != nil {
		return nil, err
	}
	recs, err := wal.Replay(fsys, filepath.Join(faultDir, csvio.WALName), ckpt)
	if err != nil {
		return nil, err
	}
	if err := wal.Apply(cat, recs); err != nil {
		return nil, err
	}
	return cat, nil
}

// fingerprint renders the catalog's full data content order-independently.
func fingerprint(cat *catalog.Catalog) string {
	var sb strings.Builder
	for _, name := range cat.Names() {
		tbl, err := cat.Table(name)
		if err != nil {
			panic(err)
		}
		rows := make([]string, tbl.Rel.Len())
		for i, tup := range tbl.Rel.Tuples {
			cells := make([]string, len(tup.Atoms))
			for j, v := range tup.Atoms {
				cells[j] = fmt.Sprintf("%s:%s", v.Kind(), v)
			}
			rows[i] = strings.Join(cells, "|")
		}
		sort.Strings(rows)
		fmt.Fprintf(&sb, "%s{%s}\n", name, strings.Join(rows, ";"))
	}
	return sb.String()
}

// committedStates returns the fingerprint after 0..len(batches) commits.
func committedStates(t *testing.T) []string {
	t.Helper()
	cat := baseCatalog(t)
	states := []string{fingerprint(cat)}
	for _, rec := range batches {
		if err := wal.Apply(cat, []wal.Record{rec}); err != nil {
			t.Fatal(err)
		}
		states = append(states, fingerprint(cat))
	}
	return states
}

func TestFSCrashPointMatrix(t *testing.T) {
	for _, format := range []csvio.Format{csvio.FormatColumnar, csvio.FormatCSV} {
		t.Run(format.String(), func(t *testing.T) {
			crashPointMatrix(t, format)
		})
	}
}

func crashPointMatrix(t *testing.T, format csvio.Format) {
	states := committedStates(t)

	// Census: run the workload once, unarmed, to count its FS operations.
	census := setup(t, format).RecordOps()
	base := census.OpCount()
	if acked, err := workload(census, format); err != nil || acked != len(batches) {
		t.Fatalf("census run failed: acked=%d err=%v", acked, err)
	}
	total := census.OpCount()
	if total-base < 20 {
		t.Fatalf("workload hit only %d FS operations; the crash matrix is too sparse to mean anything", total-base)
	}

	// Recovery with no crash at all reproduces the final state.
	if got := mustRecover(t, census, "no-crash"); got != states[len(states)-1] {
		t.Fatalf("clean recovery diverged from the final committed state:\n%s", got)
	}

	for n := base + 1; n <= total; n++ {
		for _, mode := range []RebootMode{LoseUnsynced, KeepAll} {
			name := fmt.Sprintf("op%d/mode%d", n, mode)
			fsys := setup(t, format).CrashAt(n)
			acked, err := workload(fsys, format)
			if err == nil && !fsys.Crashed() {
				t.Fatalf("%s: crash never fired", name)
			}
			fsys.Reboot(mode)

			got := mustRecover(t, fsys, name)
			idx := -1
			for i, s := range states {
				if got == s {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Fatalf("%s: recovered a TORN state (matches no committed batch boundary):\n%s", name, got)
			}
			if mode == LoseUnsynced && idx < acked {
				t.Fatalf("%s: lost an acknowledged commit: recovered state %d, %d were acknowledged", name, idx, acked)
			}

			assertDirClean(t, fsys, name)
		}
	}
}

// mustRecover runs recovery and fingerprints the result; recovery
// failing after a crash IS a torn state.
func mustRecover(t *testing.T, fsys *FaultFS, name string) string {
	t.Helper()
	cat, err := recoverDB(fsys)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", name, err)
	}
	return fingerprint(cat)
}

// assertDirClean pins the zero-leftovers invariant: after recovery the
// directory holds only the manifest, the journal and manifest-referenced
// data files (segments or CSV) — no temp files, no orphan generations.
func assertDirClean(t *testing.T, fsys *FaultFS, name string) {
	t.Helper()
	names, err := fsys.ReadDirNames(faultDir)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	manRaw, err := fsys.ReadFile(filepath.Join(faultDir, "catalog.json"))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for _, f := range names {
		if strings.HasSuffix(f, ".tmp") {
			t.Fatalf("%s: leftover temp file %s", name, f)
		}
		if f == "catalog.json" || f == csvio.WALName {
			continue
		}
		if !strings.Contains(string(manRaw), fmt.Sprintf("%q", f)) {
			t.Fatalf("%s: orphan file %s not referenced by the manifest", name, f)
		}
	}
}

// TestFaultFSModel pins the crash model itself: unsynced bytes die in a
// LoseUnsynced reboot, synced and renamed bytes survive, and every
// operation after the strike fails.
func TestFaultFSModel(t *testing.T) {
	fsys := NewFaultFS()
	if err := fsys.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Create("/d/a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("synced"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("+volatile"))
	f.Close()

	g, _ := fsys.Create("/d/b.tmp")
	g.Write([]byte("payload"))
	g.Sync()
	g.Close()
	if err := fsys.Rename("/d/b.tmp", "/d/b"); err != nil {
		t.Fatal(err)
	}

	fsys.CrashAt(fsys.OpCount() + 1)
	if _, err := fsys.Create("/d/c"); !errors.Is(err, ErrInjected) {
		t.Fatalf("strike error = %v", err)
	}
	if _, err := fsys.ReadFile("/d/a"); !errors.Is(err, ErrInjected) {
		t.Fatal("dead filesystem must refuse reads")
	}

	fsys.Reboot(LoseUnsynced)
	a, err := fsys.ReadFile("/d/a")
	if err != nil || string(a) != "synced" {
		t.Fatalf("a = %q, %v; want synced prefix only", a, err)
	}
	b, err := fsys.ReadFile("/d/b")
	if err != nil || string(b) != "payload" {
		t.Fatalf("renamed file lost: %q, %v", b, err)
	}
	if c, err := fsys.ReadFile("/d/c"); err == nil {
		// Create durably registers the file; its content must be empty.
		if len(c) != 0 {
			t.Fatalf("crashed create left content %q", c)
		}
	}
}
