package faultinject

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"nra/internal/vfs"
)

// FaultFS is an in-memory vfs.FS with a deterministic crash model, the
// filesystem counterpart of the executor hooks above and driven by the
// same census-then-strike protocol: run a save/commit sequence once in
// record mode to census its FS operations, then re-run it once per
// operation with a crash armed there, reboot, and assert recovery.
//
// Crash model (deliberately adversarial, deterministically so):
//
//   - File content is durable only up to the last Sync; a reboot in
//     LoseUnsynced mode truncates every file back to its synced bytes.
//   - Create durably registers the file (empty); Close durably persists
//     nothing.
//   - Rename and Remove are atomic and immediately durable — the
//     simplification of a journalling filesystem that orders metadata;
//     SyncDir is therefore a no-op (but still a crash point).
//   - The crash-armed operation applies a partial effect before failing:
//     a write tears in half, a sync loses its durability, a rename or
//     remove completes (the crash "just before rename" case is the crash
//     at the operation preceding it). Every later operation fails fast,
//     like a process that lost its disk.
//
// After Reboot the filesystem is usable again and recovery code can be
// run against exactly what a real crash would have left behind.
type FaultFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	ops     int64
	crashAt int64 // 0 = disarmed
	crashed bool
	record  bool
	log     []FSOp
}

type memFile struct {
	data   []byte // current (volatile) content
	synced []byte // content guaranteed to survive a LoseUnsynced reboot
}

// FSOp is one filesystem operation observed during a census run.
type FSOp struct {
	N    int64  // 1-based operation index
	Kind string // create | write | sync | syncdir | rename | remove
	Path string
}

func (o FSOp) String() string { return fmt.Sprintf("fs:%s#%d@%s", o.Kind, o.N, o.Path) }

// RebootMode selects what a simulated reboot preserves.
type RebootMode int

const (
	// LoseUnsynced models a power cut: unsynced bytes are gone.
	LoseUnsynced RebootMode = iota
	// KeepAll models a crash where the page cache happened to reach disk:
	// everything written survives. Recovery must work either way.
	KeepAll
)

// NewFaultFS returns an empty, disarmed in-memory filesystem.
func NewFaultFS() *FaultFS {
	return &FaultFS{files: make(map[string]*memFile), dirs: make(map[string]bool)}
}

// RecordOps switches the filesystem into census mode: every operation is
// logged, retrievable via Ops. Returns the filesystem for chaining.
func (f *FaultFS) RecordOps() *FaultFS { f.record = true; return f }

// CrashAt arms a crash at the n-th operation (1-based).
func (f *FaultFS) CrashAt(n int64) *FaultFS { f.crashAt = n; return f }

// Ops returns the operations observed in census mode, in order.
func (f *FaultFS) Ops() []FSOp {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FSOp(nil), f.log...)
}

// OpCount returns how many operations have run.
func (f *FaultFS) OpCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the armed crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Reboot brings a crashed filesystem back: in LoseUnsynced mode every
// file reverts to its last-synced content; in KeepAll mode everything
// written survives. The crash trigger is disarmed.
func (f *FaultFS) Reboot(mode RebootMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if mode == LoseUnsynced {
		for _, mf := range f.files {
			mf.data = append([]byte(nil), mf.synced...)
		}
	} else {
		for _, mf := range f.files {
			mf.synced = append([]byte(nil), mf.data...)
		}
	}
	f.crashed = false
	f.crashAt = 0
}

// step accounts one operation and reports whether it is the crash
// victim. It returns an error when the filesystem is already dead.
func (f *FaultFS) step(kind, path string) (strike bool, err error) {
	if f.crashed {
		return false, fmt.Errorf("%w: filesystem crashed (%s %s)", ErrInjected, kind, path)
	}
	f.ops++
	if f.record {
		f.log = append(f.log, FSOp{N: f.ops, Kind: kind, Path: path})
	}
	if f.crashAt != 0 && f.ops == f.crashAt {
		f.crashed = true
		return true, nil
	}
	return false, nil
}

func (f *FaultFS) crashErr(kind, path string) error {
	return fmt.Errorf("%w: crash at %s #%d (%s)", ErrInjected, kind, f.ops, path)
}

// MkdirAll registers the directory. Directory creation is not a crash
// point: every interesting failure in the save protocol involves files.
func (f *FaultFS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("%w: filesystem crashed (mkdir %s)", ErrInjected, dir)
	}
	f.dirs[filepath.Clean(dir)] = true
	return nil
}

// Create truncates or durably registers an empty file.
func (f *FaultFS) Create(name string) (vfs.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	strike, err := f.step("create", name)
	if err != nil {
		return nil, err
	}
	f.files[name] = &memFile{}
	if strike {
		return nil, f.crashErr("create", name)
	}
	return &faultFile{fs: f, path: name}, nil
}

// OpenAppend opens the file for appending, creating it if missing.
func (f *FaultFS) OpenAppend(name string) (vfs.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	strike, err := f.step("create", name)
	if err != nil {
		return nil, err
	}
	if _, ok := f.files[name]; !ok {
		f.files[name] = &memFile{}
	}
	if strike {
		return nil, f.crashErr("create", name)
	}
	return &faultFile{fs: f, path: name}, nil
}

// ReadFile returns the file's current content. Reads are not crash
// points, but a dead filesystem refuses them too.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, fmt.Errorf("%w: filesystem crashed (read %s)", ErrInjected, name)
	}
	mf, ok := f.files[filepath.Clean(name)]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), mf.data...), nil
}

// Rename atomically and durably renames a file.
func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldname, newname = filepath.Clean(oldname), filepath.Clean(newname)
	strike, err := f.step("rename", newname)
	if err != nil {
		return err
	}
	mf, ok := f.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	// Rename persists the file's current bytes under the new name: the
	// save protocol syncs before renaming, and modelling rename as also
	// ordering the data matches journalling filesystems' behaviour.
	mf.synced = append([]byte(nil), mf.data...)
	delete(f.files, oldname)
	f.files[newname] = mf
	if strike {
		return f.crashErr("rename", newname)
	}
	return nil
}

// Remove durably deletes a file; missing files are not an error.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	strike, err := f.step("remove", name)
	if err != nil {
		return err
	}
	delete(f.files, name)
	if strike {
		return f.crashErr("remove", name)
	}
	return nil
}

// Exists reports whether the file currently exists.
func (f *FaultFS) Exists(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.files[filepath.Clean(name)]
	return ok
}

// ReadDirNames lists the directory's file names, sorted.
func (f *FaultFS) ReadDirNames(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, fmt.Errorf("%w: filesystem crashed (readdir %s)", ErrInjected, dir)
	}
	prefix := filepath.Clean(dir) + string(filepath.Separator)
	var names []string
	for p := range f.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], string(filepath.Separator)) {
			names = append(names, p[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir is a crash point but otherwise a no-op: renames and removes
// are already durable in this model.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	strike, err := f.step("syncdir", dir)
	if err != nil {
		return err
	}
	if strike {
		return f.crashErr("syncdir", dir)
	}
	return nil
}

// faultFile is an open handle; all state lives in the FaultFS.
type faultFile struct {
	fs   *FaultFS
	path string
}

// Write appends p to the file. The crash victim applies only the first
// half of p — a torn write — before failing.
func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	strike, err := h.fs.step("write", h.path)
	if err != nil {
		return 0, err
	}
	mf, ok := h.fs.files[h.path]
	if !ok {
		return 0, &fs.PathError{Op: "write", Path: h.path, Err: fs.ErrNotExist}
	}
	if strike {
		mf.data = append(mf.data, p[:len(p)/2]...)
		return len(p) / 2, h.fs.crashErr("write", h.path)
	}
	mf.data = append(mf.data, p...)
	return len(p), nil
}

// Sync makes the file's current content durable.
func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	strike, err := h.fs.step("sync", h.path)
	if err != nil {
		return err
	}
	if strike {
		return h.fs.crashErr("sync", h.path)
	}
	mf, ok := h.fs.files[h.path]
	if !ok {
		return &fs.PathError{Op: "sync", Path: h.path, Err: fs.ErrNotExist}
	}
	mf.synced = append([]byte(nil), mf.data...)
	return nil
}

// Close never persists anything (that is Sync's job) and is not a crash
// point: a failing close adds nothing the write and sync faults miss.
func (h *faultFile) Close() error { return nil }
