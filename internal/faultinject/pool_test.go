package faultinject_test

// Pooled-governor harness: the budget-equivalence and fault-injection
// machinery pointed at the serving layer's shared memory pool
// (exec.Limits.MemPool). Concurrent queries charge one pool; aggregate
// pressure must induce spills (pool denials) without changing a single
// tuple, the pool's high-water mark must respect its capacity, and
// error paths — including injected allocation failures — must return
// every charged byte.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"nra/internal/core"
	"nra/internal/exec"
)

// TestPooledBudgetEquivalence runs all six linking operators
// concurrently against one small shared pool and asserts results
// identical tuple-for-tuple to the unbounded serial run, with the
// aggregate pressure provably inducing pool denials and the pool left
// empty.
func TestPooledBudgetEquivalence(t *testing.T) {
	cat := testCatalog(t)
	baseline := runtime.NumGoroutine()

	pool := exec.NewMemPool(256 << 10) // far below the queries' aggregate appetite
	dir := t.TempDir()
	var wg sync.WaitGroup
	errc := make(chan error, len(linkingQueries)*3)
	for round := 0; round < 3; round++ {
		for name, src := range linkingQueries {
			wg.Add(1)
			go func(name, src string) {
				defer wg.Done()
				q := analyze(t, cat, src)
				opt := core.Optimized()
				opt.MemPool = pool
				opt.SpillDir = dir
				got, err := core.Execute(q, opt)
				if err != nil {
					errc <- fmt.Errorf("%s pooled: %w", name, err)
					return
				}
				want, err := core.Execute(q, core.Optimized())
				if err != nil {
					errc <- err
					return
				}
				if got.Len() != want.Len() {
					errc <- fmt.Errorf("%s pooled: %d tuples, want %d", name, got.Len(), want.Len())
					return
				}
				for i := range want.Tuples {
					if got.Tuples[i].Key() != want.Tuples[i].Key() {
						errc <- fmt.Errorf("%s pooled: tuple %d differs under shared pool", name, i)
						return
					}
				}
			}(name, src)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Spillable reservations are granted only under the cap; any
	// overshoot comes from fixed (non-spillable) state, which the pool
	// accounts as forced bytes.
	if pool.Peak() > pool.Cap()+pool.Forced() {
		t.Errorf("pool peak %d exceeded cap %d + forced %d — spillable state broke the bound",
			pool.Peak(), pool.Cap(), pool.Forced())
	}
	if pool.Denials() == 0 {
		t.Error("shared pool induced no spill decisions — pressure test is vacuous")
	}
	if pool.Used() != 0 {
		t.Errorf("pool leaked %d bytes after all queries closed", pool.Used())
	}
	mustLeaveNoFiles(t, dir)
	mustNotLeakGoroutines(t, baseline)
}

// TestPooledAllocFaults injects allocation failures into pooled queries
// at every interception point in turn and asserts the pool is returned
// to empty regardless of where the query died — the serving layer's
// guarantee that one failed statement can never strand shared budget.
func TestPooledAllocFaults(t *testing.T) {
	cat := testCatalog(t)
	injected := errors.New("injected allocation failure")
	for name, src := range linkingQueries {
		t.Run(name, func(t *testing.T) {
			q := analyze(t, cat, src)
			// First pass: count allocation sites under the pool.
			pool := exec.NewMemPool(1 << 30)
			var sites atomic.Int64
			opt := core.Optimized()
			opt.MemPool = pool
			opt.SpillDir = t.TempDir()
			opt.Hooks = &exec.FaultHooks{BeforeAlloc: func(string, int64) error {
				sites.Add(1)
				return nil
			}}
			if _, err := core.Execute(q, opt); err != nil {
				t.Fatal(err)
			}
			if pool.Used() != 0 {
				t.Fatalf("clean pooled run left %d bytes charged", pool.Used())
			}
			n := sites.Load()
			if n == 0 {
				t.Skip("no allocation sites to fault")
			}
			// Fault every k-th site; the pool must come back empty each time.
			for k := int64(1); k <= n; k += (n + 9) / 10 {
				pool := exec.NewMemPool(1 << 30)
				var seen atomic.Int64
				opt := core.Optimized()
				opt.MemPool = pool
				opt.SpillDir = t.TempDir()
				opt.Hooks = &exec.FaultHooks{BeforeAlloc: func(string, int64) error {
					if seen.Add(1) == k {
						return injected
					}
					return nil
				}}
				_, err := core.Execute(q, opt)
				if err == nil {
					t.Fatalf("fault at site %d/%d not surfaced", k, n)
				}
				var qe *exec.QueryError
				if !errors.As(err, &qe) {
					t.Fatalf("fault at site %d surfaced uncontained: %v", k, err)
				}
				if pool.Used() != 0 {
					t.Fatalf("fault at site %d stranded %d pooled bytes", k, pool.Used())
				}
			}
		})
	}
}
