package faultinject_test

// End-to-end robustness harness: runs the six linking operators
// (EXISTS / NOT EXISTS / IN / NOT IN / SOME / ALL) over NULL-bearing
// data at several memory budgets and degrees of parallelism, asserting
// byte-identical results, provoked spills, bounded-time cancellation at
// every interception point, zero leaked goroutines and zero leftover
// spill files.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"nra/internal/catalog"
	"nra/internal/core"
	"nra/internal/exec"
	"nra/internal/faultinject"
	"nra/internal/relation"
	"nra/internal/sql"
)

// testCatalog builds a parent/child catalog with NULLs in every linked,
// linking and correlated attribute — the shapes that exercise three-
// valued logic in each linking operator — sized so a 64 KB budget
// forces the pre-nest sort and hash-join builds to spill.
func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	null := func(frac float64, v any) any {
		if rng.Float64() < frac {
			return nil
		}
		return v
	}
	parents := make([][]any, 600)
	for i := range parents {
		parents[i] = []any{i, null(0.12, rng.Intn(50)), null(0.1, rng.Intn(9))}
	}
	children := make([][]any, 2400)
	for i := range children {
		children[i] = []any{i, null(0.05, rng.Intn(600)), null(0.15, rng.Intn(50)), null(0.1, rng.Intn(9))}
	}
	cat := catalog.New()
	p := relation.MustFromRows("parent", []string{"id", "v", "g"}, parents...)
	c := relation.MustFromRows("child", []string{"cid", "pid", "w", "h"}, children...)
	if _, err := cat.Create("parent", p, "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Create("child", c, "cid"); err != nil {
		t.Fatal(err)
	}
	return cat
}

// linkingQueries is one correlated query per linking operator.
var linkingQueries = map[string]string{
	"exists":     "select parent.id, parent.v from parent where exists (select * from child where child.pid = parent.id and child.w > parent.v)",
	"not-exists": "select parent.id, parent.v from parent where not exists (select * from child where child.pid = parent.id and child.w > parent.v)",
	"in":         "select parent.id, parent.v from parent where parent.v in (select child.w from child where child.pid = parent.id)",
	"not-in":     "select parent.id, parent.v from parent where parent.v not in (select child.w from child where child.pid = parent.id)",
	"some":       "select parent.id, parent.v from parent where parent.v < some (select child.w from child where child.pid = parent.id and child.h = parent.g)",
	"all":        "select parent.id, parent.v from parent where parent.v >= all (select child.w from child where child.pid = parent.id and child.h = parent.g)",
}

func analyze(t testing.TB, cat *catalog.Catalog, src string) *sql.Query {
	t.Helper()
	sel, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	q, err := sql.Analyze(sel, cat)
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	return q
}

func mustEqualSeq(t *testing.T, label string, got, want *relation.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d tuples, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Tuples {
		if got.Tuples[i].Key() != want.Tuples[i].Key() {
			t.Fatalf("%s: tuple %d differs:\n got  %v\n want %v", label, i, got.Tuples[i], want.Tuples[i])
		}
	}
}

// mustLeaveNoFiles fails if dir is non-empty (leftover spill files).
func mustLeaveNoFiles(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading spill dir: %v", err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("spill dir not cleaned: %v", names)
	}
}

// mustNotLeakGoroutines waits (with retries — runtime bookkeeping and
// context watchers unwind asynchronously) for the goroutine count to
// return to the baseline.
func mustNotLeakGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBudgetEquivalence runs every linking operator at budgets from
// 64 KB to unbounded, serial and parallel, asserting results identical
// tuple-for-tuple to the unbounded serial run — and that the 64 KB
// budget provably forces spills.
func TestBudgetEquivalence(t *testing.T) {
	cat := testCatalog(t)
	budgets := []int64{0, 64 << 10, 1 << 20}
	for name, src := range linkingQueries {
		t.Run(name, func(t *testing.T) {
			q := analyze(t, cat, src)
			opt := core.Optimized()
			want, err := core.Execute(q, opt)
			if err != nil {
				t.Fatal(err)
			}
			spilled := false
			for _, budget := range budgets {
				for _, par := range []int{1, 4} {
					label := fmt.Sprintf("budget=%d par=%d", budget, par)
					dir := t.TempDir()
					var stats exec.Stats
					opt := core.Optimized()
					opt.MemoryBudget = budget
					opt.Parallelism = par
					opt.SpillDir = dir
					opt.Stats = &stats
					got, err := core.Execute(q, opt)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					mustEqualSeq(t, label, got, want)
					mustLeaveNoFiles(t, dir)
					if budget == 64<<10 && stats.Spills > 0 {
						spilled = true
						if stats.SpillBytes <= 0 {
							t.Errorf("%s: %d spills but no spill bytes", label, stats.Spills)
						}
					}
					if budget > 0 && stats.PeakBytes > budget {
						t.Errorf("%s: peak working state %d exceeds budget", label, stats.PeakBytes)
					}
				}
			}
			if !spilled {
				t.Errorf("64 KB budget never forced a spill — budget governance untested")
			}
		})
	}
}

// TestForcedSpillEquivalence drives every spillable operator down its
// spill path under an unbounded budget and asserts identical results.
func TestForcedSpillEquivalence(t *testing.T) {
	cat := testCatalog(t)
	for name, src := range linkingQueries {
		t.Run(name, func(t *testing.T) {
			q := analyze(t, cat, src)
			want, err := core.Execute(q, core.Optimized())
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{1, 4} {
				dir := t.TempDir()
				var stats exec.Stats
				opt := core.Optimized()
				opt.Parallelism = par
				opt.SpillDir = dir
				opt.Stats = &stats
				opt.Hooks = faultinject.New().ForceSpill(true).Hooks()
				got, err := core.Execute(q, opt)
				if err != nil {
					t.Fatalf("par=%d: %v", par, err)
				}
				mustEqualSeq(t, fmt.Sprintf("forced-spill par=%d", par), got, want)
				mustLeaveNoFiles(t, dir)
				if stats.Spills == 0 {
					t.Errorf("par=%d: forced spill did not spill", par)
				}
			}
		})
	}
}

// census runs a query once with a recording injector and returns every
// interception point it passed through.
func census(t *testing.T, q *sql.Query, budget int64, par int) []faultinject.Point {
	t.Helper()
	inj := faultinject.New().Record()
	opt := core.Optimized()
	opt.MemoryBudget = budget
	opt.Parallelism = par
	opt.SpillDir = t.TempDir()
	opt.Hooks = inj.Hooks()
	if _, err := core.Execute(q, opt); err != nil {
		t.Fatalf("census run: %v", err)
	}
	pts := inj.Points()
	if len(pts) == 0 {
		t.Fatal("census observed no interception points")
	}
	return pts
}

// TestInjectedFaultsAtEveryPoint strikes every distinct interception
// point the census observed — allocation failures, checkpoint errors,
// spill-I/O faults — and asserts the query fails fast with the injected
// sentinel wrapped in a *exec.QueryError, leaks no goroutines and
// leaves no spill files.
func TestInjectedFaultsAtEveryPoint(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, linkingQueries["not-in"])
	baseline := runtime.NumGoroutine()
	for _, par := range []int{1, 4} {
		for _, pt := range census(t, q, 64<<10, par) {
			t.Run(fmt.Sprintf("par=%d/%s", par, pt), func(t *testing.T) {
				dir := t.TempDir()
				opt := core.Optimized()
				opt.MemoryBudget = 64 << 10
				opt.Parallelism = par
				opt.SpillDir = dir
				opt.Hooks = faultinject.New().ArmAt(pt).Hooks()
				start := time.Now()
				_, err := core.Execute(q, opt)
				elapsed := time.Since(start)
				if !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("err = %v, want injected fault", err)
				}
				var qe *exec.QueryError
				if !errors.As(err, &qe) || qe.Op == "" {
					t.Fatalf("err = %#v, want *exec.QueryError with operator path", err)
				}
				if elapsed > time.Second {
					t.Errorf("abort took %v, want < 1s", elapsed)
				}
				mustLeaveNoFiles(t, dir)
			})
		}
	}
	mustNotLeakGoroutines(t, baseline)
}

// TestCancellationAtEveryCheckpoint cancels the query's context at each
// distinct checkpoint (mid-Next, mid-probe, mid-sort, mid-spill) and
// asserts a context.Canceled abort within 1s, no goroutine leaks and no
// leftover temp files.
func TestCancellationAtEveryCheckpoint(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, linkingQueries["all"])
	baseline := runtime.NumGoroutine()
	for _, par := range []int{1, 4} {
		for _, pt := range census(t, q, 64<<10, par) {
			if pt.Kind != faultinject.KindCheck {
				continue
			}
			t.Run(fmt.Sprintf("par=%d/%s", par, pt), func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				dir := t.TempDir()
				opt := core.Optimized()
				opt.MemoryBudget = 64 << 10
				opt.Parallelism = par
				opt.SpillDir = dir
				opt.Ctx = ctx
				opt.Hooks = faultinject.New().CancelAtCheck(pt.N, cancel).Hooks()
				start := time.Now()
				_, err := core.Execute(q, opt)
				elapsed := time.Since(start)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
				if elapsed > time.Second {
					t.Errorf("abort took %v, want < 1s", elapsed)
				}
				mustLeaveNoFiles(t, dir)
			})
		}
	}
	mustNotLeakGoroutines(t, baseline)
}

// TestTimeout runs a query under an unreachably small deadline and
// asserts a prompt DeadlineExceeded with full cleanup.
func TestTimeout(t *testing.T) {
	cat := testCatalog(t)
	q := analyze(t, cat, linkingQueries["not-exists"])
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	opt := core.Optimized()
	opt.Parallelism = 4
	opt.MemoryBudget = 64 << 10
	opt.SpillDir = dir
	opt.Timeout = time.Nanosecond
	start := time.Now()
	_, err := core.Execute(q, opt)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("abort took %v, want < 1s", elapsed)
	}
	mustLeaveNoFiles(t, dir)
	mustNotLeakGoroutines(t, baseline)
}
