// Package faultinject drives the executor's fault-injection hooks
// (exec.FaultHooks) deterministically: it counts every interception
// point a query passes through, and can be armed to fail the n-th
// allocation, the n-th checkpoint, or the n-th spill-file operation —
// or to cancel the query's context at a checkpoint, or to force every
// spillable operator down its spill path regardless of budget.
//
// The intended protocol is census-then-strike:
//
//	inj := faultinject.New().Record()
//	runQuery(inj.Hooks())            // records every point the query hits
//	for _, pt := range inj.Points() {
//	    inj2 := faultinject.New()
//	    inj2.ArmAt(pt)               // fail exactly that point
//	    runQuery(inj2.Hooks())       // must fail fast and leak nothing
//	}
//
// Injectors are safe for concurrent use (pool workers call hooks
// concurrently); arm them before the query starts, not during.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"nra/internal/exec"
)

// ErrInjected is the sentinel wrapped by every injected failure;
// errors.Is(err, ErrInjected) identifies a fault as synthetic.
var ErrInjected = errors.New("faultinject: injected fault")

// Kinds of interception points.
const (
	KindAlloc   = "alloc"    // exec.FaultHooks.BeforeAlloc
	KindCheck   = "check"    // exec.FaultHooks.OnCheck
	KindSpillIO = "spill-io" // exec.FaultHooks.SpillIO
)

// Point identifies one interception point observed during a census run:
// the n-th call of the given kind, which happened at operator op. Arming
// an injector at a Point reproduces a failure at exactly that call.
type Point struct {
	Kind string
	Op   string
	N    int64 // 1-based global call index within the kind
}

func (p Point) String() string { return fmt.Sprintf("%s#%d@%s", p.Kind, p.N, p.Op) }

// Injector implements the hook set. The zero value is not usable;
// construct with New.
type Injector struct {
	allocs, checks, spills atomic.Int64 // running call counts

	// Armed triggers (0 = disarmed). Set before the query runs.
	failAllocAt, failCheckAt, failSpillAt int64
	cancelAt                              int64
	cancel                                func()
	forceSpill                            bool

	record bool
	mu     sync.Mutex
	seen   map[string]Point // kind+"/"+op -> first occurrence
}

// New returns a disarmed injector that only counts calls.
func New() *Injector { return &Injector{seen: make(map[string]Point)} }

// Record switches the injector into census mode: every distinct
// (kind, operator) point is remembered with its first call index,
// retrievable via Points. Returns the injector for chaining.
func (in *Injector) Record() *Injector { in.record = true; return in }

// FailAllocAt arms the injector to fail the n-th working-state
// reservation (1-based), simulating an allocation failure.
func (in *Injector) FailAllocAt(n int64) *Injector { in.failAllocAt = n; return in }

// FailCheckAt arms the injector to return an error from the n-th
// operator checkpoint (1-based).
func (in *Injector) FailCheckAt(n int64) *Injector { in.failCheckAt = n; return in }

// FailSpillIOAt arms the injector to fail the n-th spill-file operation
// (1-based), simulating a disk fault mid-spill.
func (in *Injector) FailSpillIOAt(n int64) *Injector { in.failSpillAt = n; return in }

// CancelAtCheck arms the injector to call cancel at the n-th operator
// checkpoint (1-based) — the checkpoint itself does not fail, so the
// query aborts through the normal cancellation path, mid-Next.
func (in *Injector) CancelAtCheck(n int64, cancel func()) *Injector {
	in.cancelAt, in.cancel = n, cancel
	return in
}

// ForceSpill makes every spillable operator take its spill path even
// under an unbounded budget.
func (in *Injector) ForceSpill(v bool) *Injector { in.forceSpill = v; return in }

// ArmAt arms the trigger matching pt's kind at pt's call index.
func (in *Injector) ArmAt(pt Point) *Injector {
	switch pt.Kind {
	case KindAlloc:
		in.FailAllocAt(pt.N)
	case KindCheck:
		in.FailCheckAt(pt.N)
	case KindSpillIO:
		in.FailSpillIOAt(pt.N)
	default:
		panic("faultinject: unknown point kind " + pt.Kind)
	}
	return in
}

// AllocCalls reports how many reservations the query made.
func (in *Injector) AllocCalls() int64 { return in.allocs.Load() }

// CheckCalls reports how many checkpoints the query passed.
func (in *Injector) CheckCalls() int64 { return in.checks.Load() }

// SpillIOCalls reports how many spill-file operations the query made.
func (in *Injector) SpillIOCalls() int64 { return in.spills.Load() }

// Points returns every distinct (kind, operator) interception point
// observed in census mode, each with its first call index, ordered by
// kind then operator.
func (in *Injector) Points() []Point {
	in.mu.Lock()
	defer in.mu.Unlock()
	pts := make([]Point, 0, len(in.seen))
	for _, p := range in.seen {
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Kind != pts[j].Kind {
			return pts[i].Kind < pts[j].Kind
		}
		return pts[i].Op < pts[j].Op
	})
	return pts
}

func (in *Injector) note(kind, op string, n int64) {
	if !in.record {
		return
	}
	key := kind + "/" + op
	in.mu.Lock()
	if _, ok := in.seen[key]; !ok {
		in.seen[key] = Point{Kind: kind, Op: op, N: n}
	}
	in.mu.Unlock()
}

// Hooks returns the exec.FaultHooks backed by this injector. Install
// them via core.Options.Hooks (or exec.Limits.Hooks).
func (in *Injector) Hooks() *exec.FaultHooks {
	return &exec.FaultHooks{
		BeforeAlloc: func(op string, bytes int64) error {
			n := in.allocs.Add(1)
			in.note(KindAlloc, op, n)
			if in.failAllocAt != 0 && n == in.failAllocAt {
				return fmt.Errorf("%w: alloc #%d (%d bytes) at %s", ErrInjected, n, bytes, op)
			}
			return nil
		},
		OnCheck: func(op string) error {
			n := in.checks.Add(1)
			in.note(KindCheck, op, n)
			if in.cancelAt != 0 && n == in.cancelAt && in.cancel != nil {
				in.cancel()
			}
			if in.failCheckAt != 0 && n == in.failCheckAt {
				return fmt.Errorf("%w: check #%d at %s", ErrInjected, n, op)
			}
			return nil
		},
		ForceSpill: func(op string) bool { return in.forceSpill },
		SpillIO: func(op string) error {
			n := in.spills.Add(1)
			in.note(KindSpillIO, op, n)
			if in.failSpillAt != 0 && n == in.failSpillAt {
				return fmt.Errorf("%w: spill-io #%d at %s", ErrInjected, n, op)
			}
			return nil
		},
	}
}
