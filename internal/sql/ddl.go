package sql

import (
	"fmt"
	"strings"

	"nra/internal/relation"
)

// Data-definition statements: CREATE TABLE and DROP TABLE — enough to
// build a database from a SQL script (see cmd/nraql).

// ColDef is one column definition of CREATE TABLE.
type ColDef struct {
	Name    string
	Type    relation.Type
	NotNull bool
	PK      bool
}

// CreateTableStmt is CREATE TABLE name (col type [PRIMARY KEY] [NOT NULL], ...).
// Exactly one column must be the primary key (the engine's model requires
// a unique non-NULL key per relation).
type CreateTableStmt struct {
	Name string
	Cols []ColDef
	Pos  int
}

func (s *CreateTableStmt) stmt() {}
func (s *CreateTableStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", s.Name)
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
		if c.PK {
			b.WriteString(" PRIMARY KEY")
		}
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	b.WriteByte(')')
	return b.String()
}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct {
	Name string
	Pos  int
}

func (s *DropTableStmt) stmt()          {}
func (s *DropTableStmt) String() string { return "DROP TABLE " + s.Name }

// typeNames maps SQL type spellings to engine types.
var typeNames = map[string]relation.Type{
	"INTEGER": relation.TInt, "INT": relation.TInt, "BIGINT": relation.TInt,
	"FLOAT": relation.TFloat, "REAL": relation.TFloat, "DOUBLE": relation.TFloat,
	"DECIMAL": relation.TFloat, "NUMERIC": relation.TFloat,
	"VARCHAR": relation.TString, "TEXT": relation.TString, "STRING": relation.TString,
	"CHAR": relation.TString, "DATE": relation.TString,
	"BOOLEAN": relation.TBool, "BOOL": relation.TBool,
}

// parseCreate parses after the CREATE keyword was consumed.
func (p *parser) parseCreate(pos int) (Stmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "table name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen, "("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: name.Text, Pos: pos}
	for {
		cname, err := p.expect(TokIdent, "column name")
		if err != nil {
			return nil, err
		}
		tname, err := p.expect(TokIdent, "column type")
		if err != nil {
			return nil, err
		}
		typ, ok := typeNames[strings.ToUpper(tname.Text)]
		if !ok {
			return nil, errf(tname.Pos, "unknown type %q (try INTEGER, FLOAT, VARCHAR, BOOLEAN, DATE)", tname.Text)
		}
		// Optional VARCHAR(n)-style length, accepted and ignored.
		if p.peek().Kind == TokLParen {
			p.next()
			if _, err := p.expect(TokNumber, "length"); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen, ")"); err != nil {
				return nil, err
			}
		}
		def := ColDef{Name: cname.Text, Type: typ}
		for {
			if p.eatKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				def.PK = true
				def.NotNull = true
				continue
			}
			if p.atKeyword("NOT") && p.peek2().Kind == TokKeyword && p.peek2().Text == "NULL" {
				p.next()
				p.next()
				def.NotNull = true
				continue
			}
			break
		}
		st.Cols = append(st.Cols, def)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return nil, err
	}
	pks := 0
	for _, c := range st.Cols {
		if c.PK {
			pks++
		}
	}
	if pks != 1 {
		return nil, errf(pos, "CREATE TABLE %s must declare exactly one PRIMARY KEY column (got %d)", st.Name, pks)
	}
	return st, nil
}

// parseDrop parses after the DROP keyword was consumed.
func (p *parser) parseDrop(pos int) (Stmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "table name")
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name.Text, Pos: pos}, nil
}
