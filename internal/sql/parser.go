package sql

import (
	"strconv"
	"strings"

	"nra/internal/expr"
	"nra/internal/value"
)

// Parse parses a single SELECT statement (no statement-level set
// operations; see ParseStatement for those).
func Parse(src string) (*Select, error) {
	st, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*Select)
	if !ok {
		return nil, errf(0, "statement-level set operations are not allowed here")
	}
	return sel, nil
}

// ParseStatement parses a statement: one SELECT, or several combined with
// UNION / INTERSECT / EXCEPT (each optionally ALL). INTERSECT binds
// tighter than UNION and EXCEPT; equal operators associate left.
func ParseStatement(src string) (Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var st Stmt
	switch {
	case p.atKeyword("INSERT"):
		st, err = p.parseInsert(p.next().Pos)
	case p.atKeyword("DELETE"):
		st, err = p.parseDelete(p.next().Pos)
	case p.atKeyword("UPDATE"):
		st, err = p.parseUpdate(p.next().Pos)
	case p.atKeyword("CREATE"):
		st, err = p.parseCreate(p.next().Pos)
	case p.atKeyword("DROP"):
		st, err = p.parseDrop(p.next().Pos)
	default:
		st, err = p.parseStatement()
	}
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, errf(p.peek().Pos, "unexpected %s after end of statement", p.peek())
	}
	return st, nil
}

// parseStatement: term ((UNION | EXCEPT) [ALL] term)*
func (p *parser) parseStatement() (Stmt, error) {
	l, err := p.parseIntersectTerm()
	if err != nil {
		return nil, err
	}
	for {
		var kind SetOpKind
		switch {
		case p.atKeyword("UNION"):
			kind = Union
		case p.atKeyword("EXCEPT"):
			kind = Except
		default:
			return l, nil
		}
		pos := p.next().Pos
		if p.eatKeyword("ALL") {
			kind++ // Union→UnionAll, Except→ExceptAll
		}
		r, err := p.parseIntersectTerm()
		if err != nil {
			return nil, err
		}
		l = &SetOp{Kind: kind, L: l, R: r, Pos: pos}
	}
}

// parseIntersectTerm: select (INTERSECT [ALL] select)*
func (p *parser) parseIntersectTerm() (Stmt, error) {
	var l Stmt
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	l = sel
	for p.atKeyword("INTERSECT") {
		pos := p.next().Pos
		kind := Intersect
		if p.eatKeyword("ALL") {
			kind = IntersectAll
		}
		r, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		l = &SetOp{Kind: kind, L: l, R: r, Pos: pos}
	}
	return l, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peek2() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *parser) eatKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.eatKeyword(kw) {
		return errf(p.peek().Pos, "expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) expect(kind TokKind, what string) (Token, error) {
	if p.peek().Kind != kind {
		return Token{}, errf(p.peek().Pos, "expected %s, found %s", what, p.peek())
	}
	return p.next(), nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.eatKeyword("DISTINCT")

	if t := p.peek(); t.Kind == TokOp && t.Text == "*" {
		p.next()
		sel.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.eatKeyword("AS") {
				id, err := p.expect(TokIdent, "alias")
				if err != nil {
					return nil, err
				}
				item.Alias = id.Text
			} else if p.peek().Kind == TokIdent {
				item.Alias = p.next().Text
			}
			sel.Items = append(sel.Items, item)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		id, err := p.expect(TokIdent, "table name")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: id.Text}
		if p.eatKeyword("AS") {
			a, err := p.expect(TokIdent, "table alias")
			if err != nil {
				return nil, err
			}
			ref.Alias = a.Text
		} else if p.peek().Kind == TokIdent {
			ref.Alias = p.next().Text
		}
		sel.From = append(sel.From, ref)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}

	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}

	if p.eatKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.eatKeyword("DESC") {
				item.Desc = true
			} else {
				p.eatKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}

	if p.eatKeyword("LIMIT") {
		n, err := p.parseNonNegativeInt("LIMIT")
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	}
	if p.eatKeyword("OFFSET") {
		n, err := p.parseNonNegativeInt("OFFSET")
		if err != nil {
			return nil, err
		}
		sel.Offset = n
	}
	return sel, nil
}

// parseNonNegativeInt reads the integer operand of LIMIT/OFFSET.
func (p *parser) parseNonNegativeInt(what string) (int, error) {
	tok, err := p.expect(TokNumber, what+" count")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(tok.Text)
	if err != nil || n < 0 {
		return 0, errf(tok.Pos, "%s requires a non-negative integer, got %q", what, tok.Text)
	}
	return n, nil
}

// parseExpr parses with precedence OR < AND < NOT < predicate < additive
// < multiplicative < unary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "OR", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		pos := p.next().Pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "AND", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("NOT") {
		pos := p.next().Pos
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e, Pos: pos}, nil
	}
	return p.parsePredicate()
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.Eq, "<>": expr.Ne, "<": expr.Lt, "<=": expr.Le, ">": expr.Gt, ">=": expr.Ge,
}

func (p *parser) parsePredicate() (Expr, error) {
	if p.atKeyword("EXISTS") {
		pos := p.next().Pos
		sub, err := p.parseSubquery()
		if err != nil {
			return nil, err
		}
		return &SubqueryPred{Kind: Exists, Sel: sub, Pos: pos}, nil
	}

	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}

	t := p.peek()
	if t.Kind == TokOp {
		if op, ok := cmpOps[t.Text]; ok {
			pos := p.next().Pos
			// Quantified comparison?
			if p.atKeyword("ANY") || p.atKeyword("SOME") || p.atKeyword("ALL") {
				q := p.next().Text
				sub, err := p.parseSubquery()
				if err != nil {
					return nil, err
				}
				kind := CmpSome
				if q == "ALL" {
					kind = CmpAll
				}
				return &SubqueryPred{Kind: kind, Cmp: op, Left: l, Sel: sub, Pos: pos}, nil
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: t.Text, L: l, R: r, Pos: pos}, nil
		}
	}

	// x NOT IN (...) / x NOT BETWEEN a AND b
	if p.atKeyword("NOT") && (p.peek2().Kind == TokKeyword && (p.peek2().Text == "IN" || p.peek2().Text == "BETWEEN")) {
		p.next() // NOT
		if p.atKeyword("IN") {
			pos := p.next().Pos
			return p.parseInTail(l, pos, true)
		}
		pos := p.peek().Pos
		e, err := p.parseBetweenTail(l)
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e, Pos: pos}, nil
	}

	if p.atKeyword("IN") {
		pos := p.next().Pos
		return p.parseInTail(l, pos, false)
	}

	if p.atKeyword("BETWEEN") {
		return p.parseBetweenTail(l)
	}

	if p.atKeyword("IS") {
		pos := p.next().Pos
		neg := p.eatKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Negate: neg, Pos: pos}, nil
	}

	return l, nil
}

// parseInTail parses the operand of [NOT] IN: a subquery, or a value
// list. "x IN (a, b)" desugars to "x = a OR x = b"; "x NOT IN (a, b)" to
// "x <> a AND x <> b" — the 3VL-faithful expansions (NULLs in the list
// poison exactly as SQL requires).
func (p *parser) parseInTail(l Expr, pos int, negate bool) (Expr, error) {
	if _, err := p.expect(TokLParen, "("); err != nil {
		return nil, err
	}
	if p.atKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		if negate {
			return &SubqueryPred{Kind: NotIn, Cmp: expr.Ne, Left: l, Sel: sel, Pos: pos}, nil
		}
		return &SubqueryPred{Kind: In, Cmp: expr.Eq, Left: l, Sel: sel, Pos: pos}, nil
	}
	var out Expr
	for {
		item, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var cmp Expr
		if negate {
			cmp = &BinOp{Op: "<>", L: l, R: item, Pos: pos}
		} else {
			cmp = &BinOp{Op: "=", L: l, R: item, Pos: pos}
		}
		if out == nil {
			out = cmp
		} else if negate {
			out = &BinOp{Op: "AND", L: out, R: cmp, Pos: pos}
		} else {
			out = &BinOp{Op: "OR", L: out, R: cmp, Pos: pos}
		}
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return nil, err
	}
	return out, nil
}

// parseBetweenTail desugars "l BETWEEN a AND b" into l >= a AND l <= b.
func (p *parser) parseBetweenTail(l Expr) (Expr, error) {
	pos := p.peek().Pos
	if err := p.expectKeyword("BETWEEN"); err != nil {
		return nil, err
	}
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BinOp{
		Op:  "AND",
		L:   &BinOp{Op: ">=", L: l, R: lo, Pos: pos},
		R:   &BinOp{Op: "<=", L: l, R: hi, Pos: pos},
		Pos: pos,
	}, nil
}

// parseFuncCall parses an aggregate call after its name and before "(".
func (p *parser) parseFuncCall(name string, pos int) (Expr, error) {
	if _, err := p.expect(TokLParen, "("); err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind == TokOp && t.Text == "*" {
		if name != "COUNT" {
			return nil, errf(t.Pos, "%s(*) is not valid; only COUNT(*)", name)
		}
		p.next()
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return &FuncCall{Name: name, Star: true, Pos: pos}, nil
	}
	arg, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return nil, err
	}
	return &FuncCall{Name: name, Arg: arg, Pos: pos}, nil
}

func (p *parser) parseSubquery() (*Select, error) {
	if _, err := p.expect(TokLParen, "("); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen, ")"); err != nil {
		return nil, err
	}
	return sel, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "+" && t.Text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: t.Text, L: l, R: r, Pos: t.Pos}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "*" && t.Text != "/") {
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: t.Text, L: l, R: r, Pos: t.Pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokOp && t.Text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Constant-fold negative literals; otherwise 0 - e.
		if lit, ok := e.(*Lit); ok {
			switch lit.V.Kind() {
			case value.KindInt:
				return &Lit{V: value.Int(-lit.V.Int64()), Pos: t.Pos}, nil
			case value.KindFloat:
				return &Lit{V: value.Float(-lit.V.Float64()), Pos: t.Pos}, nil
			}
		}
		return &BinOp{Op: "-", L: &Lit{V: value.Int(0), Pos: t.Pos}, R: e, Pos: t.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if i, err := strconv.ParseInt(t.Text, 10, 64); err == nil {
			return &Lit{V: value.Int(i), Pos: t.Pos}, nil
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "malformed number %q", t.Text)
		}
		return &Lit{V: value.Float(f), Pos: t.Pos}, nil
	case TokString:
		p.next()
		return &Lit{V: value.Str(t.Text), Pos: t.Pos}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Lit{V: value.Null, Pos: t.Pos}, nil
		case "TRUE":
			p.next()
			return &Lit{V: value.Bool(true), Pos: t.Pos}, nil
		case "FALSE":
			p.next()
			return &Lit{V: value.Bool(false), Pos: t.Pos}, nil
		case "SELECT":
			return nil, errf(t.Pos, "scalar subqueries are not supported; use IN/EXISTS/SOME/ALL linking predicates")
		}
		return nil, errf(t.Pos, "unexpected keyword %s", t.Text)
	case TokIdent:
		p.next()
		// Aggregate function call?
		if p.peek().Kind == TokLParen {
			name := strings.ToUpper(t.Text)
			switch name {
			case "COUNT", "SUM", "AVG", "MIN", "MAX":
				return p.parseFuncCall(name, t.Pos)
			}
			return nil, errf(t.Pos, "unknown function %q (supported: COUNT, SUM, AVG, MIN, MAX)", t.Text)
		}
		if p.peek().Kind == TokDot {
			p.next()
			col, err := p.expect(TokIdent, "column name")
			if err != nil {
				return nil, err
			}
			return &ColRef{Qualifier: t.Text, Column: col.Text, Pos: t.Pos}, nil
		}
		return &ColRef{Column: t.Text, Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		if p.atKeyword("SELECT") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen, ")"); err != nil {
				return nil, err
			}
			return &ScalarSub{Sel: sel, Pos: t.Pos}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "unexpected %s", t)
}
