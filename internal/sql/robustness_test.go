package sql

import (
	"math/rand"
	"strings"
	"testing"
)

// The front end must never panic: any input yields a parse tree or an
// error. These fuzz-style loops feed random garbage, random token soup,
// and mutations of valid queries.

func TestLexParseNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(60)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(128))
		}
		src := string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseStatement(src)
		}()
	}
}

func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	words := []string{
		"select", "from", "where", "and", "or", "not", "in", "exists",
		"all", "any", "some", "union", "intersect", "except", "between",
		"is", "null", "order", "by", "count", "max", "(", ")", ",", ".",
		"*", "=", "<>", "<", ">", "<=", ">=", "+", "-", "/", "'txt'",
		"42", "3.14", "tbl", "col", "x", "y",
		"insert", "into", "values", "update", "set", "delete",
		"create", "table", "drop", "primary", "key", "limit", "offset",
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		n := 1 + rng.Intn(25)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseStatement(src)
		}()
	}
}

func TestParseNeverPanicsOnMutatedQueries(t *testing.T) {
	base := []string{
		queryQ,
		"select a from t where b in (select c from u where u.d = t.e)",
		"select count(*) from t where x > (select max(y) from u)",
		"select a from t union all select b from u intersect select c from v",
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		src := base[rng.Intn(len(base))]
		b := []byte(src)
		for k := 0; k < 1+rng.Intn(4); k++ {
			switch rng.Intn(3) {
			case 0: // delete a byte
				if len(b) > 1 {
					p := rng.Intn(len(b))
					b = append(b[:p], b[p+1:]...)
				}
			case 1: // duplicate a byte
				p := rng.Intn(len(b))
				b = append(b[:p], append([]byte{b[p]}, b[p:]...)...)
			default: // replace with random printable
				p := rng.Intn(len(b))
				b[p] = byte(32 + rng.Intn(95))
			}
		}
		src = string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseStatement(src)
		}()
	}
}

// TestAnalyzeNeverPanicsOnValidParsesOfSoup: whatever parses must also
// analyze without panicking (errors are fine).
func TestAnalyzeNeverPanicsOnValidParsesOfSoup(t *testing.T) {
	cat := testCatalog(t)
	words := []string{
		"select", "from", "where", "and", "or", "not", "in", "exists",
		"all", "R", "S", "T", "A", "B", "E", "G", "J", "K", "(", ")",
		",", ".", "*", "=", "<", ">", "1", "2", "count", "max",
		"union", "intersect",
	}
	rng := rand.New(rand.NewSource(4))
	parsed := 0
	for i := 0; i < 5000; i++ {
		n := 3 + rng.Intn(20)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		st, err := ParseStatement(sb.String())
		if err != nil {
			continue
		}
		parsed++
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("analyze panic on %q: %v", sb.String(), r)
				}
			}()
			_, _ = AnalyzeStatement(st, cat)
		}()
	}
	if parsed == 0 {
		t.Log("note: no soup parsed this seed (acceptable)")
	}
}
