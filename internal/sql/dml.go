package sql

// Data-modification statements. The engine is query-centric (the paper's
// subject is subquery *processing*), but a usable library needs writes:
// INSERT INTO ... VALUES, DELETE FROM ... WHERE, UPDATE ... SET ... WHERE.
// DELETE/UPDATE WHERE clauses have the full power of the query language —
// including nested subqueries — because the executor reduces them to a
// SELECT of the target rows' primary keys.

import (
	"fmt"
	"strings"
)

// InsertStmt is INSERT INTO table [(cols)] VALUES (...), (...), ...
type InsertStmt struct {
	Table string
	Cols  []string // empty = all columns in schema order
	Rows  [][]Expr // constant expressions only
	Pos   int
}

func (s *InsertStmt) stmt() {}
func (s *InsertStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s", s.Table)
	if len(s.Cols) > 0 {
		b.WriteString(" (" + strings.Join(s.Cols, ", ") + ")")
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// DeleteStmt is DELETE FROM table [WHERE pred].
type DeleteStmt struct {
	Table string
	Where Expr // nil = all rows
	Pos   int
}

func (s *DeleteStmt) stmt() {}
func (s *DeleteStmt) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// SetClause is one col = expr assignment of an UPDATE.
type SetClause struct {
	Col  string
	Expr Expr
}

// UpdateStmt is UPDATE table SET col = expr, ... [WHERE pred].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
	Pos   int
}

func (s *UpdateStmt) stmt() {}
func (s *UpdateStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "UPDATE %s SET ", s.Table)
	for i, sc := range s.Sets {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", sc.Col, sc.Expr)
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	return b.String()
}

// parseInsert parses after the INSERT keyword was consumed.
func (p *parser) parseInsert(pos int) (Stmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(TokIdent, "table name")
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: tbl.Text, Pos: pos}
	if p.peek().Kind == TokLParen {
		p.next()
		for {
			c, err := p.expect(TokIdent, "column name")
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c.Text)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokLParen, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
		if _, err := p.expect(TokRParen, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	return st, nil
}

// parseDelete parses after the DELETE keyword was consumed.
func (p *parser) parseDelete(pos int) (Stmt, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(TokIdent, "table name")
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: tbl.Text, Pos: pos}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

// parseUpdate parses after the UPDATE keyword was consumed.
func (p *parser) parseUpdate(pos int) (Stmt, error) {
	tbl, err := p.expect(TokIdent, "table name")
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: tbl.Text, Pos: pos}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.expect(TokIdent, "column name")
		if err != nil {
			return nil, err
		}
		if t := p.peek(); t.Kind != TokOp || t.Text != "=" {
			return nil, errf(t.Pos, "expected '=' in SET clause, found %s", t)
		}
		p.next()
		e, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Col: c.Text, Expr: e})
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}
