package sql

import (
	"fmt"
	"strings"

	"nra/internal/expr"
	"nra/internal/value"
)

// Node is any AST node.
type Node interface{ String() string }

// Stmt is a top-level statement: a single Select, or a SetOp combining
// statements with UNION / INTERSECT / EXCEPT.
type Stmt interface {
	Node
	stmt()
}

func (s *Select) stmt() {}

// SetOpKind names a statement-level set operation.
type SetOpKind uint8

// The set operations; the *All variants use bag (multiset) semantics.
const (
	Union SetOpKind = iota
	UnionAll
	Intersect
	IntersectAll
	Except
	ExceptAll
)

// String spells the operator.
func (k SetOpKind) String() string {
	switch k {
	case Union:
		return "UNION"
	case UnionAll:
		return "UNION ALL"
	case Intersect:
		return "INTERSECT"
	case IntersectAll:
		return "INTERSECT ALL"
	case Except:
		return "EXCEPT"
	case ExceptAll:
		return "EXCEPT ALL"
	}
	return "?"
}

// SetOp combines two statements. Standard SQL precedence applies:
// INTERSECT binds tighter than UNION/EXCEPT; equal operators associate
// left.
type SetOp struct {
	Kind SetOpKind
	L, R Stmt
	Pos  int
}

func (s *SetOp) stmt() {}
func (s *SetOp) String() string {
	return s.L.String() + " " + s.Kind.String() + " " + s.R.String()
}

// Select is one query block.
type Select struct {
	Distinct bool
	Star     bool // SELECT *
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil if absent
	OrderBy  []OrderItem
	Limit    int // -1 = no limit
	Offset   int // 0 = none
}

// SelectItem is one projection item.
type SelectItem struct {
	Expr  Expr
	Alias string // optional AS alias
}

// TableRef is a FROM-clause entry.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// Name returns the effective range-variable name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is a scalar or boolean expression in the AST. Unlike internal/expr,
// AST expressions may contain subqueries.
type Expr interface {
	Node
	// walk visits this node and its children (subqueries excluded).
	walk(func(Expr))
}

// ColRef is a column reference, optionally qualified.
type ColRef struct {
	Qualifier string // table or alias; "" if unqualified
	Column    string
	Pos       int
}

func (c *ColRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Column
	}
	return c.Column
}
func (c *ColRef) walk(f func(Expr)) { f(c) }

// Lit is a literal.
type Lit struct {
	V   value.Value
	Pos int
}

func (l *Lit) String() string {
	if l.V.Kind() == value.KindString {
		return "'" + strings.ReplaceAll(l.V.Text(), "'", "''") + "'"
	}
	return l.V.String()
}
func (l *Lit) walk(f func(Expr)) { f(l) }

// BinOp is a binary operation: comparison (= <> < <= > >=), logical
// (AND OR) or arithmetic (+ - * /).
type BinOp struct {
	Op   string
	L, R Expr
	Pos  int
}

func (b *BinOp) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }
func (b *BinOp) walk(f func(Expr)) {
	f(b)
	b.L.walk(f)
	b.R.walk(f)
}

// NotExpr is logical negation.
type NotExpr struct {
	E   Expr
	Pos int
}

func (n *NotExpr) String() string { return fmt.Sprintf("NOT (%s)", n.E) }
func (n *NotExpr) walk(f func(Expr)) {
	f(n)
	n.E.walk(f)
}

// IsNullExpr is IS [NOT] NULL.
type IsNullExpr struct {
	E      Expr
	Negate bool
	Pos    int
}

func (p *IsNullExpr) String() string {
	if p.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", p.E)
	}
	return fmt.Sprintf("(%s IS NULL)", p.E)
}
func (p *IsNullExpr) walk(f func(Expr)) {
	f(p)
	p.E.walk(f)
}

// LinkKind classifies the subquery predicate forms — the linking operators.
type LinkKind uint8

// The linking operator kinds. Positive: Exists, In, CmpSome.
// Negative: NotExists, NotIn, CmpAll (per §2's terminology). CmpScalar is
// the scalar-aggregate comparison "A θ (SELECT agg(B) ...)", which is
// neither (its empty-set behaviour is the aggregate's, not a quantifier's).
const (
	Exists LinkKind = iota
	NotExists
	In
	NotIn
	CmpSome   // θ SOME / θ ANY
	CmpAll    // θ ALL
	CmpScalar // θ (scalar aggregate subquery)
)

// Positive reports whether the operator is a positive linking operator.
func (k LinkKind) Positive() bool { return k == Exists || k == In || k == CmpSome }

// String spells the operator.
func (k LinkKind) String() string {
	switch k {
	case Exists:
		return "EXISTS"
	case NotExists:
		return "NOT EXISTS"
	case In:
		return "IN"
	case NotIn:
		return "NOT IN"
	case CmpSome:
		return "SOME"
	case CmpAll:
		return "ALL"
	case CmpScalar:
		return "θ scalar"
	}
	return "?"
}

// SubqueryPred is a linking predicate: EXISTS/NOT EXISTS (Left nil), or
// Left IN / NOT IN / θ SOME / θ ALL (subquery).
type SubqueryPred struct {
	Kind LinkKind
	Cmp  expr.CmpOp // for CmpSome/CmpAll; In/NotIn use Eq/Ne implicitly
	Left Expr       // nil for EXISTS forms
	Sel  *Select
	Pos  int
}

func (s *SubqueryPred) String() string {
	switch s.Kind {
	case Exists, NotExists:
		return fmt.Sprintf("%s (%s)", s.Kind, s.Sel)
	case In, NotIn:
		return fmt.Sprintf("(%s %s (%s))", s.Left, s.Kind, s.Sel)
	default:
		q := "SOME"
		if s.Kind == CmpAll {
			q = "ALL"
		}
		return fmt.Sprintf("(%s %s %s (%s))", s.Left, s.Cmp, q, s.Sel)
	}
}
func (s *SubqueryPred) walk(f func(Expr)) {
	f(s)
	if s.Left != nil {
		s.Left.walk(f)
	}
}

// FuncCall is an aggregate function application: COUNT(*), COUNT(x),
// SUM(x), AVG(x), MIN(x) or MAX(x). Aggregates may appear only as select
// items (of a scalar subquery, or of an aggregate-only root select list).
type FuncCall struct {
	Name string // upper-case: COUNT, SUM, AVG, MIN, MAX
	Arg  Expr   // nil for COUNT(*)
	Star bool
	Pos  int
}

func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	return fmt.Sprintf("%s(%s)", f.Name, f.Arg)
}
func (f *FuncCall) walk(fn func(Expr)) {
	fn(f)
	if f.Arg != nil {
		f.Arg.walk(fn)
	}
}

// ScalarSub is a scalar subquery — one that returns a single value
// because its select list is a single aggregate. It may appear wherever a
// scalar expression may (the reference evaluator supports all placements;
// the planners decompose the "expr θ (select agg ...)" conjunct form).
type ScalarSub struct {
	Sel *Select
	Pos int
}

func (s *ScalarSub) String() string     { return "(" + s.Sel.String() + ")" }
func (s *ScalarSub) walk(fn func(Expr)) { fn(s) }

// String renders the Select back to SQL (normalised form).
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Star {
		b.WriteString("*")
	} else {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.Expr.String())
			if it.Alias != "" {
				b.WriteString(" AS " + it.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Table)
		if t.Alias != "" && t.Alias != t.Table {
			b.WriteString(" " + t.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", s.Offset)
	}
	return b.String()
}

// Walk visits e and its child expressions in pre-order, not descending
// into subqueries.
func Walk(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	e.walk(f)
}

// Conjuncts splits an expression into its top-level AND-ed conjuncts.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinOp); ok && b.Op == "AND" {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// Subqueries returns the subquery predicates appearing anywhere in e
// (not descending into the subqueries themselves).
func Subqueries(e Expr) []*SubqueryPred {
	var out []*SubqueryPred
	if e == nil {
		return nil
	}
	e.walk(func(x Expr) {
		if sp, ok := x.(*SubqueryPred); ok {
			out = append(out, sp)
		}
	})
	return out
}
