package sql

import (
	"fmt"

	"nra/internal/algebra"
	"nra/internal/catalog"
	"nra/internal/expr"
	"nra/internal/relation"
)

// Query is an analyzed (name-resolved, block-decomposed) statement.
type Query struct {
	Root   *Block
	Blocks []*Block // pre-order, depth-first, left-to-right; Blocks[0] = Root

	res map[*ColRef]ColRes
}

// ColRes is the resolution of one column reference.
type ColRes struct {
	Block *Block
	Name  string // globally unique qualified name, e.g. "S.E" or "l2.l_qty"
}

// BlockTable is one FROM-clause table of a block with its unique range
// prefix and prefixed schema.
type BlockTable struct {
	Ref    TableRef
	Table  *catalog.Table
	Prefix string
	Schema *relation.Schema
}

// CorrPred is a correlated predicate C_ij: a conjunct of block i's WHERE
// clause that references columns of one or more enclosing blocks j.
type CorrPred struct {
	E      Expr
	Outers map[int]bool // IDs of the referenced ancestor blocks
}

// LinkEdge is a linking predicate L_i between a block and one child
// subquery block. Kind and Cmp are the *normalised* linking operator:
// a conjunct "NOT (x > ALL (...))" analyzes as Kind=CmpSome, Cmp=Le
// without mutating the AST (so the reference evaluator still sees the
// original NOT).
type LinkEdge struct {
	Pred  *SubqueryPred
	Kind  LinkKind
	Cmp   expr.CmpOp
	Child *Block

	// SynNeg records that (Kind, Cmp) came from folding an odd number of
	// NOT wrappers via quantifier duality. The duality is only valid in
	// 3VL; a 2VL planner must recover the syntactic form by undoing the
	// fold (negateKind is involutive) and negating classically.
	// Exists/NotExists and In/NotIn pairs need no such recovery — their
	// duals coincide in both logics — so SynNeg is tracked only for the
	// quantified-comparison and scalar-comparison operators.
	SynNeg bool
}

// Left returns the linking attribute expression (nil for EXISTS forms).
func (l *LinkEdge) Left() Expr { return l.Pred.Left }

// AggInfo describes one aggregate select item of a block.
type AggInfo struct {
	Func algebra.AggFunc
	Col  string // resolved qualified column; "" for COUNT(*)
}

// Block is one analyzed query block (§2's "inner/outer query block").
type Block struct {
	ID       int
	Sel      *Select
	Parent   *Block
	Children []*Block
	Tables   []*BlockTable
	Schema   *relation.Schema // concatenation of the block's table schemas

	// WHERE decomposition into the θ_i / C_ij / L_i of §4.1:
	Local []Expr      // predicates over this block's tables only
	Corr  []CorrPred  // correlated predicates
	Links []*LinkEdge // linking predicates, in syntactic order
	Other []Expr      // conjuncts the planners cannot decompose
	// (subqueries under OR/NOT etc.); only the
	// reference evaluator accepts blocks with these.

	// Presence is the column whose non-NULL marks a real tuple of this
	// block after outer joins: the primary key of the block's first table.
	Presence string

	// AggItems is non-nil when the block is an aggregate query: its select
	// list is entirely aggregate functions (one per item, no GROUP BY).
	// A scalar subquery is an aggregate block with exactly one item.
	AggItems []AggInfo

	// ComplexItems marks a root select list containing subqueries
	// (e.g. "SET salary = (select max(...) ...)" rewritten by DML);
	// only the reference evaluator supports it.
	ComplexItems bool
}

// Agg returns the single aggregate of a scalar-subquery block.
func (b *Block) Agg() (AggInfo, bool) {
	if len(b.AggItems) == 1 {
		return b.AggItems[0], true
	}
	return AggInfo{}, false
}

// Correlated reports whether the block references any enclosing block.
func (b *Block) Correlated() bool { return len(b.Corr) > 0 }

// LinkedAttr returns the child-side linked attribute (the single SELECT
// item of a quantified/IN subquery), as a resolved qualified name.
// It errors when the select list is not a single plain column.
func (q *Query) LinkedAttr(b *Block) (string, error) {
	if b.Sel.Star || len(b.Sel.Items) != 1 {
		return "", fmt.Errorf("sql: subquery block %d must select exactly one column for IN/SOME/ALL", b.ID)
	}
	c, ok := b.Sel.Items[0].Expr.(*ColRef)
	if !ok {
		return "", fmt.Errorf("sql: subquery block %d select item %q is not a plain column", b.ID, b.Sel.Items[0].Expr)
	}
	r, ok := q.res[c]
	if !ok {
		return "", fmt.Errorf("sql: unresolved column %s", c)
	}
	if r.Block != b {
		return "", fmt.Errorf("sql: subquery select item %s must belong to the subquery block", c)
	}
	return r.Name, nil
}

// Resolve returns the resolution of a column reference recorded during
// analysis.
func (q *Query) Resolve(c *ColRef) (ColRes, bool) {
	r, ok := q.res[c]
	return r, ok
}

// Statement is an analyzed statement tree: a leaf query, or a set
// operation over two statements.
type Statement struct {
	Kind  SetOpKind  // valid when Query is nil
	Query *Query     // leaf
	L, R  *Statement // set-operation operands
}

// Width returns the number of output columns.
func (s *Statement) Width() int {
	if s.Query != nil {
		root := s.Query.Root
		if root.Sel.Star {
			return len(root.Schema.Cols)
		}
		return len(root.Sel.Items)
	}
	return s.L.Width()
}

// Leaves appends the statement's leaf queries in left-to-right order.
func (s *Statement) Leaves() []*Query {
	if s.Query != nil {
		return []*Query{s.Query}
	}
	return append(s.L.Leaves(), s.R.Leaves()...)
}

// Resolver is the catalog view the analyzer binds table references
// against. Both *catalog.Catalog (current snapshot, convenient for
// single-threaded use) and *catalog.Snapshot (an immutable version —
// what concurrent query execution must use so a whole statement binds
// one consistent view) satisfy it.
type Resolver interface {
	Table(name string) (*catalog.Table, error)
}

// AnalyzeStatement resolves a statement tree, checking that set-operation
// operands have the same output width.
func AnalyzeStatement(st Stmt, cat Resolver) (*Statement, error) {
	switch x := st.(type) {
	case *Select:
		q, err := Analyze(x, cat)
		if err != nil {
			return nil, err
		}
		return &Statement{Query: q}, nil
	case *SetOp:
		l, err := AnalyzeStatement(x.L, cat)
		if err != nil {
			return nil, err
		}
		r, err := AnalyzeStatement(x.R, cat)
		if err != nil {
			return nil, err
		}
		if l.Width() != r.Width() {
			return nil, errf(x.Pos, "%s operands have %d and %d columns", x.Kind, l.Width(), r.Width())
		}
		return &Statement{Kind: x.Kind, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("sql: unknown statement type %T", st)
}

// Analyze resolves a parsed statement against the catalog.
func Analyze(sel *Select, cat Resolver) (*Query, error) {
	q := &Query{res: make(map[*ColRef]ColRes)}
	a := &analyzer{cat: cat, q: q, prefixes: make(map[string]int)}
	root, err := a.block(sel, nil)
	if err != nil {
		return nil, err
	}
	q.Root = root
	return q, nil
}

type analyzer struct {
	cat      Resolver
	q        *Query
	prefixes map[string]int // alias → use count, for unique prefixes
}

func (a *analyzer) block(sel *Select, parent *Block) (*Block, error) {
	b := &Block{ID: len(a.q.Blocks), Sel: sel, Parent: parent}
	a.q.Blocks = append(a.q.Blocks, b)
	if parent != nil && (sel.Limit >= 0 || sel.Offset > 0) {
		return nil, fmt.Errorf("sql: LIMIT/OFFSET is only supported on the outermost query (block %d)", b.ID)
	}

	// Resolve FROM tables and build the block schema with unique prefixes.
	b.Schema = &relation.Schema{Name: fmt.Sprintf("block%d", b.ID)}
	seen := make(map[string]bool)
	for _, ref := range sel.From {
		tbl, err := a.cat.Table(ref.Table)
		if err != nil {
			return nil, err
		}
		name := ref.Name()
		if seen[name] {
			return nil, fmt.Errorf("sql: duplicate range variable %q in block %d", name, b.ID)
		}
		seen[name] = true
		prefix := name
		if n := a.prefixes[name]; n > 0 {
			prefix = fmt.Sprintf("%s#%d", name, n+1)
		}
		a.prefixes[name]++
		bt := &BlockTable{Ref: ref, Table: tbl, Prefix: prefix, Schema: prefixSchema(tbl.Rel.Schema, prefix)}
		b.Tables = append(b.Tables, bt)
		b.Schema.Cols = append(b.Schema.Cols, bt.Schema.Cols...)
	}
	b.Presence = b.Tables[0].Prefix + "." + unqualified(b.Tables[0].Table.PK)

	// Resolve the select list (root selects from itself; subquery select
	// lists may in principle reference outer blocks, which the reference
	// evaluator supports). Aggregate items make this an aggregate block:
	// all items must then be aggregates over plain columns.
	if !sel.Star {
		aggCount := 0
		for _, item := range sel.Items {
			if hasSubquery(item.Expr) {
				// Allowed only in the outermost select list; evaluated by
				// the reference engine (planners fall back).
				if parent != nil {
					return nil, fmt.Errorf("sql: subqueries are not supported in a subquery's select list (block %d)", b.ID)
				}
				if err := a.resolveComplex(item.Expr, b); err != nil {
					return nil, err
				}
				b.ComplexItems = true
				continue
			}
			if err := a.resolveExpr(item.Expr, b); err != nil {
				return nil, err
			}
			if fc, ok := item.Expr.(*FuncCall); ok {
				aggCount++
				info, err := a.aggInfo(fc, b)
				if err != nil {
					return nil, err
				}
				b.AggItems = append(b.AggItems, info)
			} else if containsFuncCall(item.Expr) {
				return nil, errf(blockPos(item.Expr), "aggregates must be top-level select items")
			}
		}
		if aggCount > 0 && aggCount != len(sel.Items) {
			return nil, fmt.Errorf("sql: block %d mixes aggregate and non-aggregate select items", b.ID)
		}
	}

	// Decompose WHERE.
	for _, conj := range Conjuncts(sel.Where) {
		if containsAggOutsideSubquery(conj) {
			return nil, fmt.Errorf("sql: aggregate function in WHERE clause of block %d", b.ID)
		}
		if sp, kind, cmp, neg, ok := topLevelSubquery(conj); ok {
			if err := a.resolveScalar(sp.Left, b); err != nil {
				return nil, err
			}
			child, err := a.block(sp.Sel, b)
			if err != nil {
				return nil, err
			}
			if kind != CmpSome && kind != CmpAll {
				neg = false // the fold is 2VL-sound for EXISTS/IN duals
			}
			b.Links = append(b.Links, &LinkEdge{Pred: sp, Kind: kind, Cmp: cmp, Child: child, SynNeg: neg})
			b.Children = append(b.Children, child)
			continue
		}
		if sc, cmp, left, neg, ok := topLevelScalarCmp(conj); ok && !hasSubquery(left) {
			if err := a.resolveExpr(left, b); err != nil {
				return nil, err
			}
			child, err := a.block(sc.Sel, b)
			if err != nil {
				return nil, err
			}
			if _, isAgg := child.Agg(); !isAgg {
				return nil, errf(sc.Pos, "scalar subquery must select exactly one aggregate")
			}
			pred := &SubqueryPred{Kind: CmpScalar, Cmp: cmp, Left: left, Sel: sc.Sel, Pos: sc.Pos}
			b.Links = append(b.Links, &LinkEdge{Pred: pred, Kind: CmpScalar, Cmp: cmp, Child: child, SynNeg: neg})
			b.Children = append(b.Children, child)
			continue
		}
		if hasSubquery(conj) {
			// A subquery buried under OR / comparison etc.: analyzable for
			// the reference evaluator, but not decomposable for planners.
			if err := a.resolveComplex(conj, b); err != nil {
				return nil, err
			}
			b.Other = append(b.Other, conj)
			continue
		}
		outers, err := a.classify(conj, b)
		if err != nil {
			return nil, err
		}
		if len(outers) == 0 {
			b.Local = append(b.Local, conj)
		} else {
			b.Corr = append(b.Corr, CorrPred{E: conj, Outers: outers})
		}
	}

	for _, o := range sel.OrderBy {
		if err := a.resolveExpr(o.Expr, b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// topLevelSubquery recognises a conjunct that IS a linking predicate,
// normalising "NOT <subquery-pred>" into the complementary operator
// (¬(θ SOME) = ¬θ ALL and vice versa — valid in 3VL by quantifier
// duality). The AST itself is left untouched; only the returned
// (kind, cmp) pair is normalised. neg reports NOT-wrapper parity so a
// 2VL planner can recover the syntactic operator.
func topLevelSubquery(e Expr) (*SubqueryPred, LinkKind, expr.CmpOp, bool, bool) {
	switch x := e.(type) {
	case *SubqueryPred:
		return x, x.Kind, x.Cmp, false, true
	case *NotExpr:
		if sp, kind, cmp, neg, ok := topLevelSubquery(x.E); ok {
			nk, nc := negateKind(kind, cmp)
			return sp, nk, nc, !neg, true
		}
	}
	return nil, 0, 0, false, false
}

// topLevelScalarCmp recognises "expr θ (select agg ...)" (either
// orientation, optionally NOT-wrapped) as a CmpScalar linking predicate.
// ¬(a θ s) over a scalar s is a ¬θ s under 3VL (NULLs stay Unknown either
// way), so negation folds into the operator; neg reports the NOT parity
// for planners where the fold is unsound (2VL).
func topLevelScalarCmp(e Expr) (sc *ScalarSub, cmp expr.CmpOp, left Expr, neg, ok bool) {
	switch x := e.(type) {
	case *NotExpr:
		if sc, cmp, left, neg, ok = topLevelScalarCmp(x.E); ok {
			return sc, cmp.Negate(), left, !neg, true
		}
	case *BinOp:
		op, isCmp := cmpOps[x.Op]
		if !isCmp {
			return nil, 0, nil, false, false
		}
		if s, isSub := x.R.(*ScalarSub); isSub {
			if _, both := x.L.(*ScalarSub); both {
				return nil, 0, nil, false, false // scalar-vs-scalar: reference only
			}
			return s, op, x.L, false, true
		}
		if s, isSub := x.L.(*ScalarSub); isSub {
			return s, op.Flip(), x.R, false, true
		}
	}
	return nil, 0, nil, false, false
}

// hasSubquery reports whether e contains any subquery form.
func hasSubquery(e Expr) bool {
	found := false
	Walk(e, func(x Expr) {
		switch x.(type) {
		case *SubqueryPred, *ScalarSub:
			found = true
		}
	})
	return found
}

func containsFuncCall(e Expr) bool {
	found := false
	Walk(e, func(x Expr) {
		if _, ok := x.(*FuncCall); ok {
			found = true
		}
	})
	return found
}

// containsAggOutsideSubquery reports aggregate calls in a WHERE conjunct
// that are not inside a subquery (illegal SQL without HAVING).
func containsAggOutsideSubquery(e Expr) bool {
	return containsFuncCall(e) // walk does not descend into subqueries
}

func blockPos(e Expr) int {
	pos := 0
	Walk(e, func(x Expr) {
		if pos != 0 {
			return
		}
		if fc, ok := x.(*FuncCall); ok {
			pos = fc.Pos
		}
	})
	return pos
}

// aggInfo validates and resolves one aggregate select item: the argument
// must be a plain column of the block itself.
func (a *analyzer) aggInfo(fc *FuncCall, b *Block) (AggInfo, error) {
	var fn algebra.AggFunc
	if fc.Star {
		fn = algebra.AggCountStar
	} else {
		var ok bool
		fn, ok = algebra.AggFuncByName(fc.Name)
		if !ok {
			return AggInfo{}, errf(fc.Pos, "unknown aggregate %q", fc.Name)
		}
	}
	info := AggInfo{Func: fn}
	if fc.Star {
		return info, nil
	}
	c, ok := fc.Arg.(*ColRef)
	if !ok {
		return AggInfo{}, errf(fc.Pos, "aggregate argument must be a plain column, not %q", fc.Arg)
	}
	r, resolved := a.q.res[c]
	if !resolved {
		return AggInfo{}, errf(c.Pos, "unresolved column %s", c)
	}
	if r.Block != b {
		return AggInfo{}, errf(c.Pos, "aggregate argument %s must belong to the aggregating block", c)
	}
	info.Col = r.Name
	return info, nil
}

func negateKind(k LinkKind, cmp expr.CmpOp) (LinkKind, expr.CmpOp) {
	switch k {
	case Exists:
		return NotExists, cmp
	case NotExists:
		return Exists, cmp
	case In:
		return NotIn, expr.Ne
	case NotIn:
		return In, expr.Eq
	case CmpSome:
		return CmpAll, cmp.Negate()
	case CmpAll:
		return CmpSome, cmp.Negate()
	}
	return k, cmp
}

// resolveExpr resolves all column references of a subquery-free expression
// in the scope of block b (searching enclosing blocks for correlation).
func (a *analyzer) resolveExpr(e Expr, b *Block) error {
	var firstErr error
	e.walk(func(x Expr) {
		if firstErr != nil {
			return
		}
		if c, ok := x.(*ColRef); ok {
			if _, err := a.resolveCol(c, b); err != nil {
				firstErr = err
			}
		}
	})
	return firstErr
}

// resolveScalar is resolveExpr tolerating a nil expression (EXISTS forms).
func (a *analyzer) resolveScalar(e Expr, b *Block) error {
	if e == nil {
		return nil
	}
	return a.resolveExpr(e, b)
}

// resolveComplex resolves a conjunct that contains embedded subqueries:
// the scalar parts resolve in b, and each embedded subquery becomes a
// child block whose linking information is left attached to the
// SubqueryPred (the reference evaluator interprets it in place).
func (a *analyzer) resolveComplex(e Expr, b *Block) error {
	var firstErr error
	e.walk(func(x Expr) {
		if firstErr != nil {
			return
		}
		switch n := x.(type) {
		case *ColRef:
			if _, err := a.resolveCol(n, b); err != nil {
				firstErr = err
			}
		case *SubqueryPred:
			child, err := a.block(n.Sel, b)
			if err != nil {
				firstErr = err
				return
			}
			b.Children = append(b.Children, child)
		case *ScalarSub:
			child, err := a.block(n.Sel, b)
			if err != nil {
				firstErr = err
				return
			}
			if _, isAgg := child.Agg(); !isAgg {
				firstErr = errf(n.Pos, "scalar subquery must select exactly one aggregate")
				return
			}
			b.Children = append(b.Children, child)
		}
	})
	return firstErr
}

// classify resolves a subquery-free conjunct and returns the set of
// ancestor block IDs it references (empty = local predicate).
func (a *analyzer) classify(e Expr, b *Block) (map[int]bool, error) {
	outers := make(map[int]bool)
	var firstErr error
	e.walk(func(x Expr) {
		if firstErr != nil {
			return
		}
		if c, ok := x.(*ColRef); ok {
			res, err := a.resolveCol(c, b)
			if err != nil {
				firstErr = err
				return
			}
			if res.Block != b {
				outers[res.Block.ID] = true
			}
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if len(outers) == 0 {
		return nil, nil
	}
	return outers, nil
}

// resolveCol resolves one column reference starting at block b and walking
// outward (SQL's correlation rule). Results are memoised in the query.
func (a *analyzer) resolveCol(c *ColRef, b *Block) (ColRes, error) {
	if r, ok := a.q.res[c]; ok {
		return r, nil
	}
	for blk := b; blk != nil; blk = blk.Parent {
		var matches []ColRes
		for _, bt := range blk.Tables {
			if c.Qualifier != "" && c.Qualifier != bt.Ref.Name() {
				continue
			}
			if i := bt.Schema.ColIndex(bt.Prefix + "." + c.Column); i >= 0 {
				matches = append(matches, ColRes{Block: blk, Name: bt.Schema.Cols[i].Name})
			}
		}
		if len(matches) > 1 {
			return ColRes{}, errf(c.Pos, "ambiguous column %s in block %d", c, blk.ID)
		}
		if len(matches) == 1 {
			a.q.res[c] = matches[0]
			return matches[0], nil
		}
		// A qualifier that names a range variable of this block but whose
		// column is missing must not silently search outward.
		if c.Qualifier != "" {
			for _, bt := range blk.Tables {
				if c.Qualifier == bt.Ref.Name() {
					return ColRes{}, errf(c.Pos, "table %q has no column %q", c.Qualifier, c.Column)
				}
			}
		}
	}
	return ColRes{}, errf(c.Pos, "unknown column %s", c)
}

// Lower converts a resolved, subquery-free AST expression into an
// executable expression over qualified column names.
func (q *Query) Lower(e Expr) (expr.Expr, error) {
	switch x := e.(type) {
	case *ColRef:
		r, ok := q.res[x]
		if !ok {
			return nil, fmt.Errorf("sql: unresolved column %s", x)
		}
		return expr.Col(r.Name), nil
	case *Lit:
		return expr.Lit{V: x.V}, nil
	case *BinOp:
		l, err := q.Lower(x.L)
		if err != nil {
			return nil, err
		}
		r, err := q.Lower(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "AND":
			return expr.And(l, r), nil
		case "OR":
			return expr.Or(l, r), nil
		case "+":
			return expr.Arith{Op: expr.Add, L: l, R: r}, nil
		case "-":
			return expr.Arith{Op: expr.Sub, L: l, R: r}, nil
		case "*":
			return expr.Arith{Op: expr.Mul, L: l, R: r}, nil
		case "/":
			return expr.Arith{Op: expr.Div, L: l, R: r}, nil
		}
		if op, ok := cmpOps[x.Op]; ok {
			return expr.Compare(op, l, r), nil
		}
		return nil, fmt.Errorf("sql: cannot lower operator %q", x.Op)
	case *NotExpr:
		inner, err := q.Lower(x.E)
		if err != nil {
			return nil, err
		}
		return expr.Not{E: inner}, nil
	case *IsNullExpr:
		inner, err := q.Lower(x.E)
		if err != nil {
			return nil, err
		}
		return expr.IsNull{E: inner, Negate: x.Negate}, nil
	case *SubqueryPred:
		return nil, fmt.Errorf("sql: subquery predicate %s cannot be lowered directly", x)
	case *ScalarSub:
		return nil, fmt.Errorf("sql: scalar subquery %s cannot be lowered directly", x)
	case *FuncCall:
		return nil, fmt.Errorf("sql: aggregate %s cannot be lowered directly", x)
	}
	return nil, fmt.Errorf("sql: cannot lower %T", e)
}

// LowerAll lowers and conjoins a slice of AST expressions.
func (q *Query) LowerAll(es []Expr) (expr.Expr, error) {
	var parts []expr.Expr
	for _, e := range es {
		l, err := q.Lower(e)
		if err != nil {
			return nil, err
		}
		parts = append(parts, l)
	}
	return expr.And(parts...), nil
}

func prefixSchema(s *relation.Schema, prefix string) *relation.Schema {
	out := &relation.Schema{Name: prefix}
	for _, c := range s.Cols {
		out.Cols = append(out.Cols, relation.Column{Name: prefix + "." + unqualified(c.Name), Type: c.Type})
	}
	return out
}

func unqualified(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
