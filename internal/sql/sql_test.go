package sql

import (
	"strings"
	"testing"

	"nra/internal/catalog"
	"nra/internal/expr"
	"nra/internal/relation"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	r := relation.MustFromRows("R", []string{"A", "B", "C", "D"},
		[]any{1, 2, 3, 1})
	s := relation.MustFromRows("S", []string{"E", "F", "G", "H", "I"},
		[]any{2, 5, 1, 8, 1})
	tt := relation.MustFromRows("T", []string{"J", "K", "L"},
		[]any{7, 3, 1})
	for _, def := range []struct {
		name string
		rel  *relation.Relation
		pk   string
	}{{"R", r, "D"}, {"S", s, "I"}, {"T", tt, "L"}} {
		if _, err := cat.Create(def.name, def.rel, def.pk); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

const queryQ = `
select R.B, R.C, R.D
from R
where R.A > 1 and R.B not in
  (select S.E from S
   where S.F = 5 and R.D = S.G and S.H > all
     (select T.J from T where T.K = R.C and T.L <> S.I))`

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a.b, 'it''s' FROM t WHERE x <= 1.5 AND y <> 2 -- comment\n OR z != 3")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.String())
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"SELECT", "a", ".", "b", "'it's'", "<=", "1.5", "<>", "OR"} {
		if !strings.Contains(joined, want) {
			t.Errorf("lex output %q missing %q", joined, want)
		}
	}
	// != normalises to <>.
	if strings.Contains(joined, "!=") {
		t.Error("!= should normalise to <>")
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"select 'unterminated", "select 1.2.3 from t", "select @ from t", "select ! from t"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestParseQueryQShape(t *testing.T) {
	sel, err := Parse(queryQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Items) != 3 || sel.From[0].Table != "R" {
		t.Fatalf("unexpected shape: %s", sel)
	}
	subs := Subqueries(sel.Where)
	if len(subs) != 1 {
		t.Fatalf("top level should have 1 subquery, got %d", len(subs))
	}
	if subs[0].Kind != NotIn {
		t.Fatalf("kind = %v, want NOT IN", subs[0].Kind)
	}
	inner := Subqueries(subs[0].Sel.Where)
	if len(inner) != 1 || inner[0].Kind != CmpAll || inner[0].Cmp != expr.Gt {
		t.Fatalf("inner subquery misparsed: %v", inner)
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT a FROM t WHERE x = 1",
		"SELECT DISTINCT a, b FROM t WHERE x > 1 AND y < 2 OR NOT (z = 3)",
		"SELECT * FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a)",
		"SELECT a FROM t WHERE b IS NOT NULL AND c IS NULL",
		"SELECT a FROM t ORDER BY a DESC, b",
		"SELECT a FROM t WHERE x >= ANY (SELECT y FROM u)",
		"SELECT a FROM t WHERE x + 1 * 2 = 3",
		"SELECT a FROM t LIMIT 3 OFFSET 1",
		"SELECT a FROM t WHERE x > (SELECT MAX(y) FROM u)",
		"SELECT COUNT(*), MAX(a) FROM t WHERE b = 1",
	}
	for _, src := range srcs {
		sel, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		// Re-parse the rendering; must succeed and render identically.
		again, err := Parse(sel.String())
		if err != nil {
			t.Errorf("reparse of %q → %q: %v", src, sel.String(), err)
			continue
		}
		if again.String() != sel.String() {
			t.Errorf("round trip unstable:\n1: %s\n2: %s", sel, again)
		}
	}
}

func TestParseBetweenDesugars(t *testing.T) {
	sel, err := Parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
	if err != nil {
		t.Fatal(err)
	}
	s := sel.Where.String()
	if !strings.Contains(s, ">=") || !strings.Contains(s, "<=") {
		t.Fatalf("BETWEEN not desugared: %s", s)
	}
	sel2, err := Parse("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sel2.Where.(*NotExpr); !ok {
		t.Fatalf("NOT BETWEEN should parse as NOT: %s", sel2.Where)
	}
}

func TestParseNegativeNumber(t *testing.T) {
	sel, err := Parse("SELECT a FROM t WHERE a > -5 AND b < -2.5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sel.Where.String(), "-5") {
		t.Fatalf("negative literal fold: %s", sel.Where)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE x =",
		"SELECT a FROM t WHERE x IN y",
		"SELECT a FROM t trailing junk (",
		"SELECT a FROM t WHERE x IS 5",
		"FROM t SELECT a",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestAnalyzeQueryQ(t *testing.T) {
	cat := testCatalog(t)
	sel, err := Parse(queryQ)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(q.Blocks))
	}
	b1, b2, b3 := q.Blocks[0], q.Blocks[1], q.Blocks[2]

	// Block 1: local R.A > 1, one link (NOT IN).
	if len(b1.Local) != 1 || len(b1.Links) != 1 || len(b1.Corr) != 0 {
		t.Fatalf("block1 decomposition: local=%d links=%d corr=%d", len(b1.Local), len(b1.Links), len(b1.Corr))
	}
	if b1.Links[0].Pred.Kind != NotIn {
		t.Fatalf("block1 link = %v", b1.Links[0].Pred.Kind)
	}
	if b1.Presence != "R.D" {
		t.Fatalf("block1 presence = %s", b1.Presence)
	}

	// Block 2: local S.F=5, correlated R.D=S.G (to block 0), link >ALL.
	if len(b2.Local) != 1 || len(b2.Corr) != 1 || len(b2.Links) != 1 {
		t.Fatalf("block2 decomposition: local=%d corr=%d links=%d", len(b2.Local), len(b2.Corr), len(b2.Links))
	}
	if !b2.Corr[0].Outers[0] {
		t.Fatalf("block2 correlation should reference block 0: %v", b2.Corr[0].Outers)
	}
	if b2.Links[0].Pred.Kind != CmpAll {
		t.Fatalf("block2 link = %v", b2.Links[0].Pred.Kind)
	}

	// Block 3: two correlated predicates: T.K=R.C (block 0), T.L<>S.I (block 1).
	if len(b3.Corr) != 2 || len(b3.Links) != 0 {
		t.Fatalf("block3 decomposition: corr=%d links=%d", len(b3.Corr), len(b3.Links))
	}
	refs := map[int]bool{}
	for _, c := range b3.Corr {
		for id := range c.Outers {
			refs[id] = true
		}
	}
	if !refs[0] || !refs[1] {
		t.Fatalf("block3 must be correlated to blocks 0 and 1: %v", refs)
	}

	// Linked attribute of block 2 is S.E.
	la, err := q.LinkedAttr(b2)
	if err != nil || la != "S.E" {
		t.Fatalf("linked attr = %q (%v)", la, err)
	}
}

func TestAnalyzeNormalisesNegation(t *testing.T) {
	cat := testCatalog(t)
	sel, err := Parse("SELECT A FROM R WHERE NOT EXISTS (SELECT * FROM S WHERE S.G = R.D)")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Root.Links[0].Kind != NotExists {
		t.Fatalf("NOT EXISTS not normalised: %v", q.Root.Links[0].Kind)
	}
	// The AST itself must stay untouched (the reference evaluator needs
	// the original NOT to remain in place).
	if q.Root.Links[0].Pred.Kind != Exists {
		t.Fatal("normalisation must not mutate the AST")
	}

	sel2, _ := Parse("SELECT A FROM R WHERE NOT (B > ALL (SELECT E FROM S))")
	q2, err := Analyze(sel2, cat)
	if err != nil {
		t.Fatal(err)
	}
	link := q2.Root.Links[0]
	if link.Kind != CmpSome || link.Cmp != expr.Le {
		t.Fatalf("NOT >ALL should become <=SOME: %v %v", link.Kind, link.Cmp)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"SELECT A FROM nope",
		"SELECT A FROM R, R", // duplicate range variable
		"SELECT Z FROM R",    // unknown column
		"SELECT R.Z FROM R",  // unknown qualified column
		"SELECT X.A FROM R",  // unknown qualifier
		"SELECT A FROM R WHERE B IN (SELECT E, F FROM S)",  // multi-col subquery
		"SELECT A FROM R WHERE B IN (SELECT * FROM S)",     // star subquery for IN
		"SELECT A FROM R WHERE B IN (SELECT E + 1 FROM S)", // non-column item
	}
	for _, src := range bad {
		sel, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q) unexpectedly failed: %v", src, err)
			continue
		}
		q, err := Analyze(sel, cat)
		if err != nil {
			continue // analysis rejected it — fine
		}
		// IN-subquery shape errors surface via LinkedAttr.
		if len(q.Root.Links) > 0 {
			if _, err := q.LinkedAttr(q.Root.Links[0].Child); err == nil {
				t.Errorf("Analyze(%q) should fail somewhere", src)
			}
			continue
		}
		t.Errorf("Analyze(%q) should fail", src)
	}
}

func TestAnalyzeAmbiguousColumn(t *testing.T) {
	cat := testCatalog(t)
	// R has column D; S has no D. "I" is only in S. But "E" only in S.
	// Create genuine ambiguity with two tables sharing no columns is
	// impossible here, so check the self-join alias path instead.
	sel, err := Parse("SELECT r1.A FROM R r1, R r2 WHERE r1.D = r2.D")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Prefixes must be unique even though both tables are R.
	p1, p2 := q.Root.Tables[0].Prefix, q.Root.Tables[1].Prefix
	if p1 == p2 {
		t.Fatalf("prefixes must differ: %q %q", p1, p2)
	}
	// Unqualified A is ambiguous.
	sel2, _ := Parse("SELECT A FROM R r1, R r2 WHERE r1.D = r2.D")
	if _, err := Analyze(sel2, cat); err == nil {
		t.Fatal("ambiguous column must error")
	}
}

func TestScalarSubqueryPlacement(t *testing.T) {
	cat := testCatalog(t)
	// Non-aggregate scalar subqueries are rejected at analysis.
	sel, err := Parse("SELECT A FROM R WHERE (SELECT E FROM S) = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(sel, cat); err == nil {
		t.Fatal("non-aggregate scalar subquery must fail analysis")
	}
	// Subqueries in the ROOT select list are allowed (reference-only).
	sel2, err := Parse("SELECT (SELECT MAX(E) FROM S) FROM R")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Analyze(sel2, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.Root.ComplexItems || len(q2.Blocks) != 2 {
		t.Fatalf("root select-list subquery should mark ComplexItems: %v blocks=%d",
			q2.Root.ComplexItems, len(q2.Blocks))
	}
	// ... but not in a subquery's select list (beyond IN/ALL columns).
	sel2b, err := Parse("SELECT A FROM R WHERE EXISTS (SELECT (SELECT MAX(E) FROM S) FROM T)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(sel2b, cat); err == nil {
		t.Fatal("subquery select-list subquery must fail analysis")
	}
	// Aggregate scalar subqueries analyze into a CmpScalar link.
	sel3, err := Parse("SELECT A FROM R WHERE A > (SELECT MAX(E) FROM S WHERE S.G = R.D)")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(sel3, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Root.Links) != 1 || q.Root.Links[0].Kind != CmpScalar {
		t.Fatalf("links = %v", q.Root.Links)
	}
	if agg, ok := q.Root.Links[0].Child.Agg(); !ok || agg.Col != "S.E" {
		t.Fatalf("agg info = %v, %v", agg, ok)
	}
}

func TestAnalyzeOtherBucket(t *testing.T) {
	cat := testCatalog(t)
	sel, err := Parse("SELECT A FROM R WHERE A = 1 OR EXISTS (SELECT * FROM S WHERE S.G = R.D)")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Root.Other) != 1 || len(q.Root.Links) != 0 {
		t.Fatalf("OR-embedded subquery should land in Other: other=%d links=%d",
			len(q.Root.Other), len(q.Root.Links))
	}
	if len(q.Blocks) != 2 {
		t.Fatalf("embedded subquery should still be analyzed: %d blocks", len(q.Blocks))
	}
}

func TestLower(t *testing.T) {
	cat := testCatalog(t)
	sel, err := Parse("SELECT A FROM R WHERE A > 1 AND B + 1 <= 4 AND NOT (C IS NULL)")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	lowered, err := q.LowerAll(q.Root.Local)
	if err != nil {
		t.Fatal(err)
	}
	c, err := expr.Compile(lowered, q.Root.Schema)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := cat.Table("R")
	tri, err := c.Truth(tbl.Rel.Tuples[0]) // (1,2,3,1): A>1 false
	if err != nil {
		t.Fatal(err)
	}
	if tri.IsTrue() {
		t.Fatal("A>1 should fail for A=1")
	}
}

func TestParseStatementRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT a FROM t UNION SELECT b FROM u",
		"SELECT a FROM t UNION ALL SELECT b FROM u EXCEPT SELECT c FROM v",
		"SELECT a FROM t INTERSECT ALL SELECT b FROM u",
	}
	for _, src := range srcs {
		st, err := ParseStatement(src)
		if err != nil {
			t.Errorf("ParseStatement(%q): %v", src, err)
			continue
		}
		again, err := ParseStatement(st.String())
		if err != nil || again.String() != st.String() {
			t.Errorf("set-op round trip unstable for %q: %q vs %q (%v)", src, st, again, err)
		}
	}
	// Parse (single-select entry point) must reject set operations.
	if _, err := Parse("SELECT a FROM t UNION SELECT b FROM u"); err == nil {
		t.Error("Parse should reject statement-level set ops")
	}
}

func TestInValueList(t *testing.T) {
	cat := testCatalog(t)
	sel, err := Parse("SELECT A FROM R WHERE D IN (1, 2, 3) AND B NOT IN (5, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Desugared forms are plain local predicates — no subquery blocks.
	if len(q.Blocks) != 1 || len(q.Root.Links) != 0 {
		t.Fatalf("IN-lists should desugar: blocks=%d links=%d", len(q.Blocks), len(q.Root.Links))
	}
	s := sel.Where.String()
	if !strings.Contains(s, "OR") || !strings.Contains(s, "AND") {
		t.Fatalf("desugaring wrong: %s", s)
	}
	if _, err := Parse("SELECT A FROM R WHERE D IN ()"); err == nil {
		t.Fatal("empty IN list must fail")
	}
}
