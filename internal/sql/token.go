// Package sql implements the SQL front end for the subset of SQL the
// paper studies: SELECT-FROM-WHERE blocks with arbitrarily nested
// non-aggregate subqueries linked by EXISTS, NOT EXISTS, IN, NOT IN,
// θ SOME/ANY and θ ALL, with correlation to any enclosing block.
// It provides a lexer, a recursive-descent parser producing an AST, and a
// semantic analyzer that resolves names against a catalog and decomposes
// each query block's WHERE clause into local, correlated and linking
// predicates — the θ_i, C_ij and L_i of §4.1.
package sql

import "fmt"

// TokKind classifies lexical tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp // = <> < <= > >= + - * /
	TokLParen
	TokRParen
	TokComma
	TokDot
)

// Token is one lexical token with its source position (1-based offset).
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased; identifiers preserve case
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// keywords recognised by the lexer (case-insensitive in input).
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "EXISTS": true,
	"ANY": true, "SOME": true, "ALL": true, "BETWEEN": true,
	"IS": true, "NULL": true, "TRUE": true, "FALSE": true, "AS": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true,
	"LIMIT": true, "OFFSET": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"DELETE": true, "UPDATE": true, "SET": true,
	"CREATE": true, "TABLE": true, "DROP": true, "PRIMARY": true, "KEY": true,
}

// Error is a front-end error carrying the offending position.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sql: %s (at offset %d)", e.Msg, e.Pos)
}

func errf(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
