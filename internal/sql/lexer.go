package sql

import (
	"strings"
	"unicode"
)

// Lex tokenises a SQL string. It returns all tokens (terminated by a
// TokEOF token) or a lexical error.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // line comment
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '(':
			toks = append(toks, Token{TokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, Token{TokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, Token{TokComma, ",", i})
			i++
		case c == '.' && (i+1 >= n || !isDigit(src[i+1])):
			toks = append(toks, Token{TokDot, ".", i})
			i++
		case c == '=' || c == '+' || c == '-' || c == '*' || c == '/':
			toks = append(toks, Token{TokOp, string(c), i})
			i++
		case c == '<':
			switch {
			case i+1 < n && src[i+1] == '>':
				toks = append(toks, Token{TokOp, "<>", i})
				i += 2
			case i+1 < n && src[i+1] == '=':
				toks = append(toks, Token{TokOp, "<=", i})
				i += 2
			default:
				toks = append(toks, Token{TokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{TokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, Token{TokOp, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, Token{TokOp, "<>", i})
				i += 2
			} else {
				return nil, errf(i, "unexpected character %q", c)
			}
		case c == '\'':
			j := i + 1
			var b strings.Builder
			closed := false
			for j < n {
				if src[j] == '\'' {
					if j+1 < n && src[j+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					j++
					break
				}
				b.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, errf(i, "unterminated string literal")
			}
			toks = append(toks, Token{TokString, b.String(), i})
			i = j
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(src[i+1])):
			j := i
			isFloat := false
			for j < n && (isDigit(src[j]) || src[j] == '.') {
				if src[j] == '.' {
					if isFloat {
						return nil, errf(i, "malformed number")
					}
					isFloat = true
				}
				j++
			}
			toks = append(toks, Token{TokNumber, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{TokKeyword, up, i})
			} else {
				toks = append(toks, Token{TokIdent, word, i})
			}
			i = j
		default:
			return nil, errf(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
