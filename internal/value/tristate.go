package value

// Tri is a truth value in SQL's three-valued logic. WHERE clauses keep a
// tuple only when the predicate evaluates to True; both False and Unknown
// reject it — but the distinction matters to the pseudo-selection operator
// and to NOT, which maps Unknown to Unknown.
type Tri uint8

// The three truth values. The numeric order False < Unknown < True makes
// AND = min and OR = max, the standard Kleene tables.
const (
	False Tri = iota
	Unknown
	True
)

// TriOf converts a Go bool to a Tri.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// And returns the Kleene conjunction of t and u.
func (t Tri) And(u Tri) Tri {
	if u < t {
		return u
	}
	return t
}

// Or returns the Kleene disjunction of t and u.
func (t Tri) Or(u Tri) Tri {
	if u > t {
		return u
	}
	return t
}

// Not returns the Kleene negation of t. Unknown stays Unknown.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// IsTrue reports whether t is True (the WHERE-clause acceptance test).
func (t Tri) IsTrue() bool { return t == True }

// Value converts t to a SQL BOOLEAN value; Unknown becomes NULL.
func (t Tri) Value() Value {
	switch t {
	case True:
		return Bool(true)
	case False:
		return Bool(false)
	default:
		return Null
	}
}

// String returns "true", "false" or "unknown".
func (t Tri) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}
