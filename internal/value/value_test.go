package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "FLOAT",
		KindString: "VARCHAR", KindBool: "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value is not NULL")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero Value kind = %v", v.Kind())
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if Int(42).Int64() != 42 {
		t.Error("Int roundtrip failed")
	}
	if Float(2.5).Float64() != 2.5 {
		t.Error("Float roundtrip failed")
	}
	if Int(7).Float64() != 7.0 {
		t.Error("Int should widen via Float64")
	}
	if Str("abc").Text() != "abc" {
		t.Error("Str roundtrip failed")
	}
	if Bool(true).Truth() != True || Bool(false).Truth() != False {
		t.Error("Bool truth failed")
	}
	if Null.Truth() != Unknown {
		t.Error("NULL truth should be Unknown")
	}
}

func TestAccessorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Int64 on string": func() { Str("x").Int64() },
		"Text on int":     func() { Int(1).Text() },
		"Float64 on bool": func() { Bool(true).Float64() },
		"Truth on int":    func() { Int(1).Truth() },
		"Float64 on null": func() { Null.Float64() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b  Value
		cmp   int
		known bool
		err   bool
	}{
		{Int(1), Int(2), -1, true, false},
		{Int(2), Int(2), 0, true, false},
		{Int(3), Int(2), 1, true, false},
		{Int(2), Float(2.5), -1, true, false},
		{Float(2.5), Int(2), 1, true, false},
		{Float(2.0), Int(2), 0, true, false},
		{Str("a"), Str("b"), -1, true, false},
		{Str("2026-07-04"), Str("2026-07-05"), -1, true, false},
		{Bool(false), Bool(true), -1, true, false},
		{Null, Int(1), 0, false, false},
		{Int(1), Null, 0, false, false},
		{Null, Null, 0, false, false},
		{Int(1), Str("1"), 0, false, true},
		{Bool(true), Int(1), 0, false, true},
	}
	for _, tc := range tests {
		cmp, known, err := Compare(tc.a, tc.b)
		if (err != nil) != tc.err {
			t.Errorf("Compare(%v,%v) err = %v, want err=%v", tc.a, tc.b, err, tc.err)
			continue
		}
		if tc.err {
			continue
		}
		if known != tc.known || (known && cmp != tc.cmp) {
			t.Errorf("Compare(%v,%v) = (%d,%v), want (%d,%v)", tc.a, tc.b, cmp, known, tc.cmp, tc.known)
		}
	}
}

func TestIdentical(t *testing.T) {
	if !Identical(Null, Null) {
		t.Error("NULL must be identical to NULL under grouping semantics")
	}
	if Identical(Null, Int(0)) {
		t.Error("NULL is not identical to 0")
	}
	if !Identical(Int(5), Float(5.0)) {
		t.Error("widened numerics should group together")
	}
	if Identical(Int(5), Str("5")) {
		t.Error("kinds differ")
	}
	nan := Float(math.NaN())
	if !Identical(nan, nan) {
		t.Error("NaN must group with itself")
	}
}

func TestLessTotalOrder(t *testing.T) {
	vs := []Value{Null, Bool(false), Int(-3), Int(7), Float(2.5), Str(""), Str("z")}
	for i, a := range vs {
		for j, b := range vs {
			la, lb := Less(a, b), Less(b, a)
			if la && lb {
				t.Errorf("Less not antisymmetric for %v,%v", a, b)
			}
			if i == j && la {
				t.Errorf("Less not irreflexive for %v", a)
			}
		}
	}
	if !Less(Int(2), Float(2.5)) || Less(Float(2.5), Int(2)) {
		t.Error("cross-kind numeric order broken")
	}
}

func TestAppendKeyDistinguishes(t *testing.T) {
	vs := []Value{Null, Int(0), Int(1), Float(0.5), Str(""), Str("0"), Bool(false), Bool(true), Float(2.0), Int(2)}
	for i, a := range vs {
		for j, b := range vs {
			ka, kb := string(a.AppendKey(nil)), string(b.AppendKey(nil))
			same := ka == kb
			if same != Identical(a, b) {
				t.Errorf("key collision mismatch: %v vs %v (i=%d,j=%d): keys equal=%v identical=%v",
					a, b, i, j, same, Identical(a, b))
			}
		}
	}
}

func TestKeyConcatenationUnambiguous(t *testing.T) {
	// ("ab","c") must not collide with ("a","bc").
	k1 := Str("c").AppendKey(Str("ab").AppendKey(nil))
	k2 := Str("bc").AppendKey(Str("a").AppendKey(nil))
	if string(k1) == string(k2) {
		t.Fatal("length-prefixed string keys collided")
	}
}

func TestTriTables(t *testing.T) {
	// Kleene truth tables.
	and := [3][3]Tri{
		{False, False, False},
		{False, Unknown, Unknown},
		{False, Unknown, True},
	}
	or := [3][3]Tri{
		{False, Unknown, True},
		{Unknown, Unknown, True},
		{True, True, True},
	}
	all := []Tri{False, Unknown, True}
	for _, a := range all {
		for _, b := range all {
			if got := a.And(b); got != and[a][b] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, and[a][b])
			}
			if got := a.Or(b); got != or[a][b] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, or[a][b])
			}
		}
	}
	if False.Not() != True || True.Not() != False || Unknown.Not() != Unknown {
		t.Error("NOT table wrong")
	}
	if !True.IsTrue() || False.IsTrue() || Unknown.IsTrue() {
		t.Error("IsTrue wrong")
	}
	if Unknown.Value() != Null || True.Value() != Bool(true) {
		t.Error("Tri.Value wrong")
	}
	if TriOf(true) != True || TriOf(false) != False {
		t.Error("TriOf wrong")
	}
}

func triFromByte(b byte) Tri { return Tri(b % 3) }

func TestTriDeMorganQuick(t *testing.T) {
	err := quick.Check(func(x, y byte) bool {
		a, b := triFromByte(x), triFromByte(y)
		return a.And(b).Not() == a.Not().Or(b.Not()) &&
			a.Or(b).Not() == a.Not().And(b.Not())
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTriAlgebraQuick(t *testing.T) {
	err := quick.Check(func(x, y, z byte) bool {
		a, b, c := triFromByte(x), triFromByte(y), triFromByte(z)
		return a.And(b) == b.And(a) && // commutativity
			a.Or(b) == b.Or(a) &&
			a.And(b.And(c)) == a.And(b).And(c) && // associativity
			a.Or(b.Or(c)) == a.Or(b).Or(c) &&
			a.Not().Not() == a && // involution
			a.And(True) == a && a.Or(False) == a // identities
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := map[string]Value{
		"null": Null, "42": Int(42), "-1": Int(-1),
		"2.5": Float(2.5), "abc": Str("abc"), "true": Bool(true), "false": Bool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestTriString(t *testing.T) {
	if True.String() != "true" || False.String() != "false" || Unknown.String() != "unknown" {
		t.Error("Tri.String wrong")
	}
}
