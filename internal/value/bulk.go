package value

// Bulk columnar helpers: conversion of []Value columns into typed payload
// arrays with NULL bitmaps, and bitmap-aware comparison kernels over those
// arrays. These are the value-layer primitives the vectorized execution
// engine (internal/vec) builds its batches and predicate kernels on.
//
// A NULL bitmap is a []uint64 with bit i (word i/64, bit i%64) set when
// row i is NULL. The comparison kernels ignore NULL positions — they
// compute payload comparisons for every row — and the caller masks the
// result with the bitmap afterwards (NULL rows read as Unknown), which
// keeps the inner loops branch-free.

// NullWords returns the number of uint64 words a NULL bitmap over n rows
// needs.
func NullWords(n int) int { return (n + 63) / 64 }

// PayloadInt returns the integer payload word (0/1 for booleans) without
// checking the kind — for extraction loops that have already dispatched
// on Kind. The pointer receiver keeps bulk loops from copying the value
// struct (and its string header, with the write barrier that entails).
func (v *Value) PayloadInt() int64 { return v.i }

// PayloadFloat returns the float payload without checking the kind; see
// PayloadInt.
func (v *Value) PayloadFloat() float64 { return v.f }

// PayloadString returns the string payload without checking the kind;
// see PayloadInt.
func (v *Value) PayloadString() string { return v.s }

// setBit sets bit i of a bitmap.
func setBit(words []uint64, i int) { words[i>>6] |= 1 << (uint(i) & 63) }

// SetInt64 overwrites v in place with a non-NULL integer, touching only
// the kind and integer payload. Over a freshly zeroed backing array the
// string header stays zero, so the store carries no pointer and incurs
// no GC write barrier — the point of these setters over whole-struct
// assignment in bulk materialization loops (a NULL cell needs no write
// at all: the zero Value is NULL).
func (v *Value) SetInt64(x int64) { v.kind = KindInt; v.i = x }

// SetBool is SetInt64 for booleans (payload 0/1).
func (v *Value) SetBool(b bool) {
	v.kind = KindBool
	if b {
		v.i = 1
	} else {
		v.i = 0
	}
}

// SetFloat64 is SetInt64 for floats.
func (v *Value) SetFloat64(x float64) { v.kind = KindFloat; v.f = x }

// SetText is SetInt64 for strings. This one does write a pointer (the
// shared dictionary string's header), so it keeps the write barrier.
func (v *Value) SetText(s string) { v.kind = KindString; v.s = s }

// BulkKind scans one column of values and returns the kind of its first
// non-NULL value, with mixed=true when a later non-NULL value has a
// different kind (the column cannot be stored as one typed payload
// array). An all-NULL column reports (KindNull, false).
func BulkKind(vs []Value) (k Kind, mixed bool) {
	k = KindNull
	for _, v := range vs {
		if v.kind == KindNull {
			continue
		}
		if k == KindNull {
			k = v.kind
			continue
		}
		if v.kind != k {
			return k, true
		}
	}
	return k, false
}

// BulkInts extracts a KindInt column into data (0 at NULL rows) and the
// NULL bitmap nulls. It reports false when a non-NULL, non-integer value
// is found, leaving partial output behind. data must have len(vs)
// elements and nulls NullWords(len(vs)) zeroed words.
func BulkInts(vs []Value, data []int64, nulls []uint64) bool {
	for i, v := range vs {
		switch v.kind {
		case KindNull:
			setBit(nulls, i)
		case KindInt:
			data[i] = v.i
		default:
			return false
		}
	}
	return true
}

// BulkFloats extracts a KindFloat column; see BulkInts for the contract.
func BulkFloats(vs []Value, data []float64, nulls []uint64) bool {
	for i, v := range vs {
		switch v.kind {
		case KindNull:
			setBit(nulls, i)
		case KindFloat:
			data[i] = v.f
		default:
			return false
		}
	}
	return true
}

// BulkStrings extracts a KindString column; see BulkInts for the contract.
func BulkStrings(vs []Value, data []string, nulls []uint64) bool {
	for i, v := range vs {
		switch v.kind {
		case KindNull:
			setBit(nulls, i)
		case KindString:
			data[i] = v.s
		default:
			return false
		}
	}
	return true
}

// BulkBools extracts a KindBool column into 0/1 payloads; see BulkInts
// for the contract.
func BulkBools(vs []Value, data []int64, nulls []uint64) bool {
	for i, v := range vs {
		switch v.kind {
		case KindNull:
			setBit(nulls, i)
		case KindBool:
			data[i] = v.i
		default:
			return false
		}
	}
	return true
}

// CmpVerb names one of the six SQL comparison verbs for the bulk kernels
// (mirroring expr's operator set without importing it).
type CmpVerb uint8

// The comparison verbs, in expr's operator order.
const (
	VerbEq CmpVerb = iota
	VerbNe
	VerbLt
	VerbLe
	VerbGt
	VerbGe
)

// Holds reports whether a three-way comparison result c (as returned by
// Compare) satisfies the verb.
func (v CmpVerb) Holds(c int) bool {
	switch v {
	case VerbEq:
		return c == 0
	case VerbNe:
		return c != 0
	case VerbLt:
		return c < 0
	case VerbLe:
		return c <= 0
	case VerbGt:
		return c > 0
	case VerbGe:
		return c >= 0
	}
	return false
}

// CmpInt64Const sets bit i of out when data[i] verb c holds, ignoring
// NULLs (the caller masks). out must have NullWords(len(data)) zeroed
// words.
func CmpInt64Const(verb CmpVerb, data []int64, c int64, out []uint64) {
	switch verb {
	case VerbEq:
		for i, d := range data {
			if d == c {
				setBit(out, i)
			}
		}
	case VerbNe:
		for i, d := range data {
			if d != c {
				setBit(out, i)
			}
		}
	case VerbLt:
		for i, d := range data {
			if d < c {
				setBit(out, i)
			}
		}
	case VerbLe:
		for i, d := range data {
			if d <= c {
				setBit(out, i)
			}
		}
	case VerbGt:
		for i, d := range data {
			if d > c {
				setBit(out, i)
			}
		}
	case VerbGe:
		for i, d := range data {
			if d >= c {
				setBit(out, i)
			}
		}
	}
}

// CmpFloat64Const is CmpInt64Const over float payloads (integer operands
// are widened by the caller, as Compare does). The verbs are expressed
// through the same three-way ordering Compare uses, so NaN payloads —
// which order as "neither less nor greater" there — satisfy exactly the
// verbs the row engine says they do.
func CmpFloat64Const(verb CmpVerb, data []float64, c float64, out []uint64) {
	switch verb {
	case VerbEq:
		for i, d := range data {
			if !(d < c) && !(d > c) {
				setBit(out, i)
			}
		}
	case VerbNe:
		for i, d := range data {
			if d < c || d > c {
				setBit(out, i)
			}
		}
	case VerbLt:
		for i, d := range data {
			if d < c {
				setBit(out, i)
			}
		}
	case VerbLe:
		for i, d := range data {
			if !(d > c) {
				setBit(out, i)
			}
		}
	case VerbGt:
		for i, d := range data {
			if d > c {
				setBit(out, i)
			}
		}
	case VerbGe:
		for i, d := range data {
			if !(d < c) {
				setBit(out, i)
			}
		}
	}
}

// CmpInt64AsFloat64Const compares integer payloads against a float
// constant after widening — the int-vs-float case of Compare. Like
// CmpFloat64Const it goes through the three-way ordering so a NaN
// constant behaves exactly as it does in Compare.
func CmpInt64AsFloat64Const(verb CmpVerb, data []int64, c float64, out []uint64) {
	switch verb {
	case VerbEq:
		for i, d := range data {
			if f := float64(d); !(f < c) && !(f > c) {
				setBit(out, i)
			}
		}
	case VerbNe:
		for i, d := range data {
			if f := float64(d); f < c || f > c {
				setBit(out, i)
			}
		}
	case VerbLt:
		for i, d := range data {
			if float64(d) < c {
				setBit(out, i)
			}
		}
	case VerbLe:
		for i, d := range data {
			if !(float64(d) > c) {
				setBit(out, i)
			}
		}
	case VerbGt:
		for i, d := range data {
			if float64(d) > c {
				setBit(out, i)
			}
		}
	case VerbGe:
		for i, d := range data {
			if !(float64(d) < c) {
				setBit(out, i)
			}
		}
	}
}

// CmpStringConst is CmpInt64Const over string payloads.
func CmpStringConst(verb CmpVerb, data []string, c string, out []uint64) {
	switch verb {
	case VerbEq:
		for i, d := range data {
			if d == c {
				setBit(out, i)
			}
		}
	case VerbNe:
		for i, d := range data {
			if d != c {
				setBit(out, i)
			}
		}
	case VerbLt:
		for i, d := range data {
			if d < c {
				setBit(out, i)
			}
		}
	case VerbLe:
		for i, d := range data {
			if d <= c {
				setBit(out, i)
			}
		}
	case VerbGt:
		for i, d := range data {
			if d > c {
				setBit(out, i)
			}
		}
	case VerbGe:
		for i, d := range data {
			if d >= c {
				setBit(out, i)
			}
		}
	}
}

// CmpInt64s is the column-against-column form of CmpInt64Const.
func CmpInt64s(verb CmpVerb, a, b []int64, out []uint64) {
	for i := range a {
		if verb.Holds(cmpOrdered(a[i], b[i])) {
			setBit(out, i)
		}
	}
}

// CmpFloat64s is the column-against-column form of CmpFloat64Const.
func CmpFloat64s(verb CmpVerb, a, b []float64, out []uint64) {
	for i := range a {
		if verb.Holds(cmpOrdered(a[i], b[i])) {
			setBit(out, i)
		}
	}
}

// CmpStrings is the column-against-column form of CmpStringConst.
func CmpStrings(verb CmpVerb, a, b []string, out []uint64) {
	for i := range a {
		if verb.Holds(cmpOrdered(a[i], b[i])) {
			setBit(out, i)
		}
	}
}
