// Package value implements SQL atomic values with NULL and the
// three-valued logic (3VL) that the nested relational approach of
// Cao & Badia (SIGMOD 2005) depends on.
//
// A Value is an immutable tagged union over the SQL types the engine
// supports: 64-bit integers, 64-bit floats, strings and booleans, plus the
// distinguished NULL. Dates are represented as ISO-8601 strings
// ("2026-07-04"), whose lexicographic order coincides with chronological
// order, so no separate date kind is needed.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL, so freshly allocated
// tuples start out as all-NULL rows, which is exactly the padding behaviour
// left outer joins and pseudo-selections need.
type Value struct {
	kind Kind
	i    int64 // payload for KindInt; 0/1 for KindBool
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str returns a string value. (Not named String because Value has a
// String method.)
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int64 returns the integer payload. It panics unless v is an integer.
func (v Value) Int64() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: Int64 on %s", v.kind))
	}
	return v.i
}

// Float64 returns the float payload, widening integers. It panics unless v
// is numeric.
func (v Value) Float64() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic(fmt.Sprintf("value: Float64 on %s", v.kind))
}

// Text returns the string payload. It panics unless v is a string.
func (v Value) Text() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: Text on %s", v.kind))
	}
	return v.s
}

// Truth returns the boolean payload as a Tri. NULL maps to Unknown.
// It panics on non-boolean, non-null values.
func (v Value) Truth() Tri {
	switch v.kind {
	case KindBool:
		if v.i != 0 {
			return True
		}
		return False
	case KindNull:
		return Unknown
	}
	panic(fmt.Sprintf("value: Truth on %s", v.kind))
}

// String renders v the way the paper's figures print relations: NULL as
// "null", strings verbatim, numbers in their shortest form.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.kind))
	}
}

// numeric reports whether v is an INT or FLOAT.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare compares two values under SQL semantics. The second result is
// false when the comparison is NULL (either operand NULL): in that case the
// caller must treat any predicate over it as Unknown. Comparing values of
// incompatible kinds (e.g. a string with an int) is reported through err;
// the engine treats that as a type error, never silently.
func Compare(a, b Value) (cmp int, known bool, err error) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false, nil
	}
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return cmpOrdered(a.i, b.i), true, nil
	case a.numeric() && b.numeric():
		af, bf := a.Float64(), b.Float64()
		return cmpOrdered(af, bf), true, nil
	case a.kind == KindString && b.kind == KindString:
		return cmpOrdered(a.s, b.s), true, nil
	case a.kind == KindBool && b.kind == KindBool:
		return cmpOrdered(a.i, b.i), true, nil
	}
	return 0, false, fmt.Errorf("value: cannot compare %s with %s", a.kind, b.kind)
}

func cmpOrdered[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Identical reports whether a and b are the same value under *grouping*
// semantics: NULL is identical to NULL, and values of different kinds are
// never identical (no numeric widening; a column has one declared type).
// This is the equality used by nest/GROUP BY and DISTINCT, as opposed to
// the 3VL Compare used by predicates.
func Identical(a, b Value) bool {
	if a.kind != b.kind {
		// Allow 5 and 5.0 to group together when columns were widened.
		if a.numeric() && b.numeric() {
			return a.Float64() == b.Float64()
		}
		return false
	}
	switch a.kind {
	case KindNull:
		return true
	case KindInt, KindBool:
		return a.i == b.i
	case KindFloat:
		return a.f == b.f || (math.IsNaN(a.f) && math.IsNaN(b.f))
	case KindString:
		return a.s == b.s
	}
	return false
}

// Less is a total order used for deterministic sorting of relations
// (sort-based nest, golden-test output). NULL sorts first; across kinds the
// order is by kind tag. It is NOT the SQL comparison — use Compare for
// predicate evaluation.
func Less(a, b Value) bool {
	if a.kind != b.kind {
		if a.numeric() && b.numeric() {
			af, bf := a.Float64(), b.Float64()
			if af != bf {
				return af < bf
			}
			return a.kind < b.kind
		}
		return a.kind < b.kind
	}
	switch a.kind {
	case KindNull:
		return false
	case KindInt, KindBool:
		return a.i < b.i
	case KindFloat:
		return a.f < b.f
	case KindString:
		return a.s < b.s
	}
	return false
}

// AppendKey appends a canonical byte encoding of v to dst. Two values have
// the same encoding iff Identical(a, b). It is used to build hash keys for
// grouping, hash joins and duplicate elimination.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 0)
	case KindInt:
		dst = append(dst, 1)
		return appendUint64(dst, uint64(v.i))
	case KindFloat:
		// Encode integral floats as ints so widened columns hash together.
		if f := v.f; f == math.Trunc(f) && f >= math.MinInt64 && f < math.MaxInt64 {
			dst = append(dst, 1)
			return appendUint64(dst, uint64(int64(f)))
		}
		dst = append(dst, 2)
		return appendUint64(dst, math.Float64bits(v.f))
	case KindString:
		dst = append(dst, 3)
		dst = appendUint64(dst, uint64(len(v.s)))
		return append(dst, v.s...)
	case KindBool:
		dst = append(dst, 4, byte(v.i))
		return dst
	default:
		panic("value: AppendKey on invalid kind")
	}
}

func appendUint64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}
