// Package bench is the experiment harness that regenerates every figure
// of the paper's evaluation (§5): Figure 4 (Query 1), Figures 5–6
// (Query 2a/2b), Figures 7–9 (Query 3a/3b/3c with three correlated-
// predicate variants each), and the in-text intermediate-result
// processing measurements (original vs optimized nest + linking
// selection).
//
// The harness sweeps the same parameter the paper sweeps — the size of
// the outermost query block, controlled by selectivity predicates — at a
// laptop scale, and times three strategies on each point: the native
// "System A" plan, the original nested relational approach, and the
// optimized nested relational approach. Every point also cross-checks
// that all strategies return identical results.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nra/internal/algebra"
	"nra/internal/catalog"
	"nra/internal/core"
	"nra/internal/iomodel"
	"nra/internal/native"
	"nra/internal/relation"
	"nra/internal/sql"
	"nra/internal/value"
)

// Config parameterises a harness run.
type Config struct {
	// SF is the TPC-H scale factor (the paper used 1.0; the default 0.01
	// keeps a full sweep under a minute on a laptop).
	SF float64
	// Runs is the number of timed repetitions per point; the minimum is
	// reported (the paper reports averages of multiple runs with a cold
	// cache; minimum-of-N is the standard in-memory equivalent).
	Runs int
	// Seed feeds the deterministic generator.
	Seed uint64
	// NullFraction injects NULLs into measure columns. The paper's
	// "general case" discussion assumes NULLs are possible; 0 keeps the
	// data NULL-free while still *not* declaring NOT NULL.
	NullFraction float64
	// Verify cross-checks all strategies' results on every point.
	Verify bool
}

// DefaultConfig returns the standard laptop-scale configuration.
func DefaultConfig() Config {
	return Config{SF: 0.01, Runs: 3, Seed: 42, Verify: true}
}

// Strategy names used in figures.
const (
	StratNative       = "native"
	StratNRAOriginal  = "nra-original"
	StratNRAOptimized = "nra-optimized"
)

type strategy struct {
	name string
	run  func(q *sql.Query, m *iomodel.Meter) (*relation.Relation, error)
}

func strategies() []strategy {
	return []strategy{
		{StratNative, func(q *sql.Query, m *iomodel.Meter) (*relation.Relation, error) {
			ex, err := native.New(q)
			if err != nil {
				return nil, err
			}
			ex.SetMeter(m)
			return ex.Execute()
		}},
		{StratNRAOriginal, func(q *sql.Query, m *iomodel.Meter) (*relation.Relation, error) {
			opt := core.Original()
			opt.Meter = m
			return core.Execute(q, opt)
		}},
		{StratNRAOptimized, func(q *sql.Query, m *iomodel.Meter) (*relation.Relation, error) {
			opt := core.Optimized()
			opt.Meter = m
			return core.Execute(q, opt)
		}},
	}
}

// Point is one measured sweep point of a figure.
type Point struct {
	Label      string
	BlockSizes []int // per query block, outermost first
	Rows       int
	Times      map[string]time.Duration
	// Modeled is the same plan's elapsed time under the disk-resident
	// cold-cache cost model of internal/iomodel — the series comparable
	// to the paper's figures (see DESIGN.md §5).
	Modeled map[string]time.Duration
}

// Figure is one regenerated figure.
type Figure struct {
	ID     string
	Title  string
	Query  string // representative SQL with placeholders resolved for the last point
	Points []Point
	Notes  string
}

// Series returns the measured series names (columns), in a stable order:
// the standard strategies first, then any extra series alphabetically.
func (f *Figure) Series() []string {
	if len(f.Points) == 0 {
		return nil
	}
	std := []string{StratNative, StratNRAOriginal, StratNRAOptimized}
	var names []string
	seen := map[string]bool{}
	for _, n := range std {
		if _, ok := f.Points[0].Times[n]; ok {
			names = append(names, n)
			seen[n] = true
		}
	}
	var extra []string
	for n := range f.Points[0].Times {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// Format renders the figure as an aligned table, one row per sweep point
// (the paper's X axis) and one column per strategy (the paper's series).
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	names := f.Series()
	fmt.Fprintf(&b, "%-22s %8s", "block sizes", "rows")
	for _, n := range names {
		fmt.Fprintf(&b, " %15s", n)
	}
	b.WriteByte('\n')
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%-22s %8d", p.Label, p.Rows)
		for _, n := range names {
			fmt.Fprintf(&b, " %15s", fmtDur(p.Times[n]))
		}
		b.WriteByte('\n')
	}
	if len(f.Points) > 0 && len(f.Points[0].Modeled) > 0 {
		b.WriteString("modeled disk-resident cost (iomodel.Disk2005 — the paper-comparable series):\n")
		for _, p := range f.Points {
			fmt.Fprintf(&b, "%-22s %8s", p.Label, "")
			for _, n := range names {
				fmt.Fprintf(&b, " %15s", fmtModeled(p.Modeled, n))
			}
			b.WriteByte('\n')
		}
	}
	if f.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", f.Notes)
	}
	return b.String()
}

func fmtModeled(m map[string]time.Duration, name string) string {
	d, ok := m[name]
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

// Env is a prepared database plus the indexes the paper's experiments
// assume (§5.1–5.2).
type Env struct {
	Cat *catalog.Catalog
	cfg Config
}

// NewEnv generates the database and creates the paper's index set:
// primary-key indexes (automatic), the foreign-key index on l_orderkey
// (Query 1), ps_partkey (the partsupp access path), and the combined and
// single indexes on lineitem's foreign keys (Query 2/3).
func NewEnv(cfg Config) (*Env, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	cat, err := generate(cfg)
	if err != nil {
		return nil, err
	}
	e := &Env{Cat: cat, cfg: cfg}
	for _, idx := range [][2]string{
		{"lineitem", "l_orderkey"},
		{"lineitem", "l_partkey"},
		{"lineitem", "l_suppkey"},
		{"partsupp", "ps_partkey"},
	} {
		tbl, err := cat.Table(idx[0])
		if err != nil {
			return nil, err
		}
		if _, err := tbl.CreateIndex(idx[1]); err != nil {
			return nil, err
		}
	}
	li, _ := cat.Table("lineitem")
	if _, err := li.CreateIndex("l_partkey", "l_suppkey"); err != nil {
		return nil, err
	}
	ps, _ := cat.Table("partsupp")
	if _, err := ps.CreateIndex("ps_partkey", "ps_suppkey"); err != nil {
		return nil, err
	}
	return e, nil
}

// quantile returns the k-th smallest non-NULL value of a column, where k
// = frac·n — the cutoff that makes "col < cutoff" select ≈ frac of the
// table.
func (e *Env) quantile(table, col string, frac float64) (value.Value, error) {
	tbl, err := e.Cat.Table(table)
	if err != nil {
		return value.Null, err
	}
	var vals []value.Value
	for _, v := range tbl.Rel.Col(col) {
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return value.Less(vals[i], vals[j]) })
	k := int(frac * float64(len(vals)))
	if k >= len(vals) {
		k = len(vals) - 1
	}
	if k < 0 {
		k = 0
	}
	return vals[k], nil
}

// runFigure executes the sweep for one figure.
func (e *Env) runFigure(id, title, notes string, points []pointQuery) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, Notes: notes}
	for _, pq := range points {
		sel, err := sql.Parse(pq.sql)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", id, pq.label, err)
		}
		q, err := sql.Analyze(sel, e.Cat)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", id, pq.label, err)
		}
		p := Point{Label: pq.label, Times: make(map[string]time.Duration), Modeled: make(map[string]time.Duration)}
		p.BlockSizes, err = e.blockSizes(q)
		if err != nil {
			return nil, err
		}
		if p.Label == "" {
			p.Label = sizesLabel(p.BlockSizes)
		}
		var reference *relation.Relation
		for _, st := range strategies() {
			best := time.Duration(0)
			var out *relation.Relation
			var meter iomodel.Meter
			for r := 0; r < e.cfg.Runs; r++ {
				meter.Reset()
				start := time.Now()
				res, err := st.run(q, &meter)
				elapsed := time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("%s %s [%s]: %w", id, pq.label, st.name, err)
				}
				if best == 0 || elapsed < best {
					best = elapsed
				}
				out = res
			}
			p.Times[st.name] = best
			p.Modeled[st.name] = meter.Cost(iomodel.Disk2005())
			p.Rows = out.Len()
			if e.cfg.Verify {
				if reference == nil {
					reference = out
				} else if !out.EqualSet(reference) {
					return nil, fmt.Errorf("%s %s: strategy %s disagrees (%d vs %d rows)",
						id, pq.label, st.name, out.Len(), reference.Len())
				}
			}
		}
		fig.Points = append(fig.Points, p)
		fig.Query = pq.sql
	}
	return fig, nil
}

type pointQuery struct {
	label string
	sql   string
}

// blockSizes measures the paper's X-axis quantity: the size of each query
// block after its local selections, before linking predicates (single-
// table blocks, which is all the paper's workloads use).
func (e *Env) blockSizes(q *sql.Query) ([]int, error) {
	var sizes []int
	for _, b := range q.Blocks {
		local, err := q.LowerAll(b.Local)
		if err != nil {
			return nil, err
		}
		bt := b.Tables[0]
		rel := &relation.Relation{Schema: bt.Schema, Tuples: bt.Table.Rel.Tuples}
		if local == nil {
			sizes = append(sizes, rel.Len())
			continue
		}
		filtered, err := algebra.Select(rel, local)
		if err != nil {
			return nil, err
		}
		sizes = append(sizes, filtered.Len())
	}
	return sizes, nil
}
