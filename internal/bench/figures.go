package bench

import (
	"fmt"
	"strings"

	"nra/internal/catalog"
	"nra/internal/tpch"
)

func generate(cfg Config) (*catalog.Catalog, error) {
	t := tpch.Scale(cfg.SF)
	t.Seed = cfg.Seed
	t.NullFraction = cfg.NullFraction
	return tpch.Generate(t)
}

// outerFracs mirrors the paper's four growing outer-block sizes
// (4K/8K/12K/16K for Query 1; 12K/24K/36K/48K for Queries 2–3).
var outerFracs = []float64{0.25, 0.5, 0.75, 1.0}

func sizesLabel(sizes []int) string {
	parts := make([]string, len(sizes))
	for i, s := range sizes {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, "/")
}

// Fig4 regenerates Figure 4: Query 1, a one-level correlated >ALL query.
// The native approach must use nested iteration (no NOT NULL constraint),
// accessing lineitem through the l_orderkey index per outer tuple; both
// nested relational variants use one outer hash join plus nest + linking
// selection.
func (e *Env) Fig4() (*Figure, error) {
	var points []pointQuery
	for _, f := range outerFracs {
		x2, err := e.quantile("orders", "o_orderdate", f)
		if err != nil {
			return nil, err
		}
		points = append(points, pointQuery{
			sql: fmt.Sprintf(`select o_orderkey, o_orderpriority from orders
where o_orderdate >= '1992-01-01' and o_orderdate < '%s'
  and o_totalprice > all (select l_extendedprice from lineitem
      where l_orderkey = o_orderkey
        and l_commitdate < l_receiptdate and l_shipdate < l_commitdate)`, x2.Text()),
		})
	}
	return e.runFigure("fig4", "Query 1 (one-level, >ALL, correlated)",
		"no NOT NULL constraint → native falls back to nested iteration (§5.2)", points)
}

// Fig4NotNull regenerates the in-text variant of Query 1: with NOT NULL
// on o_totalprice and l_extendedprice, System A "directly performs an
// antijoin, and the performance is about the same as ours". Requires a
// NULL-free database (NullFraction = 0).
func (e *Env) Fig4NotNull() (*Figure, error) {
	for _, c := range [][2]string{{"orders", "o_totalprice"}, {"lineitem", "l_extendedprice"}} {
		tbl, err := e.Cat.Table(c[0])
		if err != nil {
			return nil, err
		}
		if err := tbl.SetNotNull(c[1]); err != nil {
			return nil, fmt.Errorf("fig4-notnull needs a NULL-free database: %w", err)
		}
	}
	var points []pointQuery
	for _, f := range outerFracs {
		x2, err := e.quantile("orders", "o_orderdate", f)
		if err != nil {
			return nil, err
		}
		points = append(points, pointQuery{
			sql: fmt.Sprintf(`select o_orderkey, o_orderpriority from orders
where o_orderdate >= '1992-01-01' and o_orderdate < '%s'
  and o_totalprice > all (select l_extendedprice from lineitem
      where l_orderkey = o_orderkey
        and l_commitdate < l_receiptdate and l_shipdate < l_commitdate)`, x2.Text()),
		})
	}
	return e.runFigure("fig4-notnull", "Query 1 with NOT NULL (native antijoin legal)",
		"with NOT NULL, native unnests to an antijoin and is competitive (§5.2)", points)
}

// query2 builds the Query 2 template (two-level, linearly correlated).
func (e *Env) query2(quant string) ([]pointQuery, error) {
	availY, err := e.quantile("partsupp", "ps_availqty", 0.5)
	if err != nil {
		return nil, err
	}
	var points []pointQuery
	for _, f := range outerFracs {
		sizeHi, err := e.quantile("part", "p_size", f)
		if err != nil {
			return nil, err
		}
		points = append(points, pointQuery{
			sql: fmt.Sprintf(`select p_partkey, p_name from part
where p_size >= 1 and p_size <= %s
  and p_retailprice < %s (select ps_supplycost from partsupp
      where ps_partkey = p_partkey and ps_availqty < %s
        and not exists (select * from lineitem
            where ps_partkey = l_partkey and ps_suppkey = l_suppkey
              and l_quantity = 25))`, sizeHi, quant, availY),
		})
	}
	return points, nil
}

// Fig5 regenerates Figure 5: Query 2a with the mixed ANY / NOT EXISTS
// operators. The native approach unnests bottom-up (antijoin then
// semijoin) and is competitive; the nested relational approach is close
// behind — the paper attributes native's small edge mostly to the fetch
// overhead its stored-procedure implementation paid, which a native Go
// implementation does not have.
func (e *Env) Fig5() (*Figure, error) {
	points, err := e.query2("any")
	if err != nil {
		return nil, err
	}
	return e.runFigure("fig5", "Query 2a (mixed: <ANY / NOT EXISTS, linear)",
		"native = semijoin∘antijoin pipeline (§5.2)", points)
}

// Fig6 regenerates Figure 6: Query 2b with the negative ALL / NOT EXISTS
// operators. Without a NOT NULL constraint native cannot antijoin the ALL
// and resorts to per-tuple nested iteration; the nested relational
// approach's cost is unchanged from Figure 5 — its operator-independence
// claim.
func (e *Env) Fig6() (*Figure, error) {
	points, err := e.query2("all")
	if err != nil {
		return nil, err
	}
	return e.runFigure("fig6", "Query 2b (negative: <ALL / NOT EXISTS, linear)",
		"native degrades to nested iteration; NRA cost ≈ Figure 5 (operator-independent)", points)
}

// query3 builds the Query 3 template: the third block is correlated to
// BOTH outer blocks (p_partkey from the first, ps_suppkey from the
// second), which defeats System A's unnesting even with NOT NULL.
// op1/op2 select the (a)/(b)/(c) correlated-predicate variants.
func (e *Env) query3(quant, existsOp, op1, op2 string) ([]pointQuery, error) {
	availY, err := e.quantile("partsupp", "ps_availqty", 0.5)
	if err != nil {
		return nil, err
	}
	var points []pointQuery
	for _, f := range outerFracs {
		sizeHi, err := e.quantile("part", "p_size", f)
		if err != nil {
			return nil, err
		}
		points = append(points, pointQuery{
			sql: fmt.Sprintf(`select p_partkey, p_name from part
where p_size >= 1 and p_size <= %s
  and p_retailprice < %s (select ps_supplycost from partsupp
      where ps_partkey = p_partkey and ps_availqty < %s
        and %s (select * from lineitem
            where p_partkey %s l_partkey and ps_suppkey %s l_suppkey
              and l_quantity = 25))`, sizeHi, quant, availY, existsOp, op1, op2),
		})
	}
	return points, nil
}

type q3Variant struct {
	suffix   string
	op1, op2 string
	desc     string
}

var q3Variants = []q3Variant{
	{"a", "=", "=", "p_partkey=l_partkey and ps_suppkey=l_suppkey"},
	{"b", "<>", "=", "p_partkey<>l_partkey and ps_suppkey=l_suppkey"},
	{"c", "=", "<>", "p_partkey=l_partkey and ps_suppkey<>l_suppkey"},
}

// Fig7 regenerates Figure 7(a,b,c): Query 3a with mixed ALL / EXISTS.
func (e *Env) Fig7() ([]*Figure, error) {
	return e.fig3Family("fig7", "Query 3a (mixed: <ALL / EXISTS, double correlation)", "all", "exists")
}

// Fig8 regenerates Figure 8(a,b,c): Query 3b with negative ALL / NOT
// EXISTS — the native approach's worst case.
func (e *Env) Fig8() ([]*Figure, error) {
	return e.fig3Family("fig8", "Query 3b (negative: <ALL / NOT EXISTS, double correlation)", "all", "not exists")
}

// Fig9 regenerates Figure 9(a,b,c): Query 3c with positive ANY / EXISTS —
// where §4.2.5's rewrite lets the nested relational approach match the
// native (semi)join plan.
func (e *Env) Fig9() ([]*Figure, error) {
	return e.fig3Family("fig9", "Query 3c (positive: <ANY / EXISTS, double correlation)", "any", "exists")
}

func (e *Env) fig3Family(id, title, quant, existsOp string) ([]*Figure, error) {
	var figs []*Figure
	for _, v := range q3Variants {
		points, err := e.query3(quant, existsOp, v.op1, v.op2)
		if err != nil {
			return nil, err
		}
		f, err := e.runFigure(id+v.suffix, fmt.Sprintf("%s — variant (%s): %s", title, v.suffix, v.desc),
			"", points)
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}

// AllFigures runs the complete evaluation: Figures 4–9 plus the NOT NULL
// variant of Query 1 and the intermediate-result processing tables.
func AllFigures(cfg Config) ([]*Figure, error) {
	e, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	var figs []*Figure
	add := func(f *Figure, err error) error {
		if err != nil {
			return err
		}
		figs = append(figs, f)
		return nil
	}
	if err := add(e.Fig4()); err != nil {
		return nil, err
	}
	if err := add(e.Fig5()); err != nil {
		return nil, err
	}
	if err := add(e.Fig6()); err != nil {
		return nil, err
	}
	for _, fam := range []func() ([]*Figure, error){e.Fig7, e.Fig8, e.Fig9} {
		fs, err := fam()
		if err != nil {
			return nil, err
		}
		figs = append(figs, fs...)
	}
	if p1, err := e.ProcQ1(); err == nil {
		figs = append(figs, p1)
	} else {
		return nil, err
	}
	if p2, err := e.ProcQ2(); err == nil {
		figs = append(figs, p2)
	} else {
		return nil, err
	}
	// NOT NULL variant needs its own environment when NULLs are injected,
	// and mutates constraints — run it on a fresh env last.
	if cfg.NullFraction == 0 {
		e2, err := NewEnv(cfg)
		if err != nil {
			return nil, err
		}
		if err := add(e2.Fig4NotNull()); err != nil {
			return nil, err
		}
	}
	return figs, nil
}
