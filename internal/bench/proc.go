package bench

import (
	"fmt"
	"time"

	"nra/internal/algebra"
	"nra/internal/exec"
	"nra/internal/expr"
	"nra/internal/relation"
)

// This file regenerates the paper's in-text processing-time tables: the
// cost of *just* the nest + linking selection over the already-fetched
// intermediate result, comparing the original two-pass evaluation
// (materialised nest, then linking selection — §4.1) with the optimized
// one-pass pipeline (§4.2.2). The paper reports 0.24/0.47/0.71/0.98 s vs
// 0.03/0.06/0.10/0.13 s for Query 1's four intermediate sizes, and
// 0.18/…/0.72 s vs 0.02/…/0.08 s for Query 2 — roughly an 8–10×
// single-pass advantage, linear in the intermediate size.

// ProcQ1 measures nest + linking selection over Query 1's intermediate
// result (orders ⟕ lineitem) at the four sweep sizes.
func (e *Env) ProcQ1() (*Figure, error) {
	fig := &Figure{
		ID:    "proc-q1",
		Title: "Query 1 intermediate-result processing (nest + linking selection only)",
		Notes: "paper: .24/.47/.71/.98s original vs .03/.06/.10/.13s optimized at 40K–165K tuples",
	}
	liTbl, err := e.Cat.Table("lineitem")
	if err != nil {
		return nil, err
	}
	li, err := algebra.Select(
		&relation.Relation{Schema: liTbl.Rel.Schema, Tuples: liTbl.Rel.Tuples},
		expr.And(
			expr.Compare(expr.Lt, expr.Col("l_commitdate"), expr.Col("l_receiptdate")),
			expr.Compare(expr.Lt, expr.Col("l_shipdate"), expr.Col("l_commitdate")),
		))
	if err != nil {
		return nil, err
	}
	li, err = algebra.Project(li, "l_rowid", "l_orderkey", "l_extendedprice")
	if err != nil {
		return nil, err
	}
	ordTbl, err := e.Cat.Table("orders")
	if err != nil {
		return nil, err
	}
	for _, f := range outerFracs {
		x2, err := e.quantile("orders", "o_orderdate", f)
		if err != nil {
			return nil, err
		}
		ord, err := algebra.Select(
			&relation.Relation{Schema: ordTbl.Rel.Schema, Tuples: ordTbl.Rel.Tuples},
			expr.Compare(expr.Lt, expr.Col("o_orderdate"), expr.Lit{V: x2}))
		if err != nil {
			return nil, err
		}
		ord, err = algebra.Project(ord, "o_orderkey", "o_totalprice")
		if err != nil {
			return nil, err
		}
		joined, err := algebra.LeftOuterJoin(ord, li,
			expr.Compare(expr.Eq, expr.Col("l_orderkey"), expr.Col("o_orderkey")))
		if err != nil {
			return nil, err
		}

		pred := algebra.AllPred("o_totalprice", expr.Gt, "g", "l_extendedprice", "l_rowid")
		point := Point{
			Label:      fmt.Sprintf("%d tuples", joined.Len()),
			BlockSizes: []int{ord.Len(), li.Len()},
			Times:      make(map[string]time.Duration),
		}

		orig, origRows, err := e.timeIt(func() (int, error) {
			nested, err := algebra.Nest(joined, []string{"o_orderkey", "o_totalprice"}, []string{"l_extendedprice", "l_rowid"}, "g")
			if err != nil {
				return 0, err
			}
			selected, err := algebra.LinkSelect(nested, pred)
			if err != nil {
				return 0, err
			}
			out, err := algebra.DropSub(selected, "g")
			if err != nil {
				return 0, err
			}
			return out.Len(), nil
		})
		if err != nil {
			return nil, err
		}
		spec := &exec.LinkSpec{
			Pred:      pred,
			AttrIdx:   joined.Schema.MustColIndex("o_totalprice"),
			LinkedIdx: joined.Schema.MustColIndex("l_extendedprice"),
			PresIdx:   joined.Schema.MustColIndex("l_rowid"),
		}
		opt, optRows, err := e.timeIt(func() (int, error) {
			out, err := exec.NestLink(exec.Background(), joined, []string{"o_orderkey"},
				[]string{"o_orderkey", "o_totalprice"}, spec, nil)
			if err != nil {
				return 0, err
			}
			return out.Len(), nil
		})
		if err != nil {
			return nil, err
		}
		if origRows != optRows {
			return nil, fmt.Errorf("proc-q1: original (%d rows) and optimized (%d rows) disagree", origRows, optRows)
		}
		point.Times[StratNRAOriginal] = orig
		point.Times[StratNRAOptimized] = opt
		point.Rows = origRows
		fig.Points = append(fig.Points, point)
	}
	return fig, nil
}

// ProcQ2 measures the two-level processing over Query 2's intermediate
// result (part ⟕ partsupp ⟕ lineitem): two nests and two linking
// selections (original) versus the single-sort single-scan fused chain
// (§4.2.1).
func (e *Env) ProcQ2() (*Figure, error) {
	fig := &Figure{
		ID:    "proc-q2",
		Title: "Query 2 intermediate-result processing (two levels)",
		Notes: "paper: .18/.36/.54/.72s original vs .02/.04/.06/.08s optimized at 14K–58K tuples",
	}
	availY, err := e.quantile("partsupp", "ps_availqty", 0.5)
	if err != nil {
		return nil, err
	}
	psTbl, _ := e.Cat.Table("partsupp")
	ps, err := algebra.Select(
		&relation.Relation{Schema: psTbl.Rel.Schema, Tuples: psTbl.Rel.Tuples},
		expr.Compare(expr.Lt, expr.Col("ps_availqty"), expr.Lit{V: availY}))
	if err != nil {
		return nil, err
	}
	ps, err = algebra.Project(ps, "ps_rowid", "ps_partkey", "ps_suppkey", "ps_supplycost")
	if err != nil {
		return nil, err
	}
	liTbl, _ := e.Cat.Table("lineitem")
	li, err := algebra.Select(
		&relation.Relation{Schema: liTbl.Rel.Schema, Tuples: liTbl.Rel.Tuples},
		expr.Compare(expr.Eq, expr.Col("l_quantity"), expr.Val(25)))
	if err != nil {
		return nil, err
	}
	li, err = algebra.Project(li, "l_rowid", "l_partkey", "l_suppkey")
	if err != nil {
		return nil, err
	}
	partTbl, _ := e.Cat.Table("part")

	for _, f := range outerFracs {
		sizeHi, err := e.quantile("part", "p_size", f)
		if err != nil {
			return nil, err
		}
		part, err := algebra.Select(
			&relation.Relation{Schema: partTbl.Rel.Schema, Tuples: partTbl.Rel.Tuples},
			expr.Compare(expr.Le, expr.Col("p_size"), expr.Lit{V: sizeHi}))
		if err != nil {
			return nil, err
		}
		part, err = algebra.Project(part, "p_partkey", "p_retailprice")
		if err != nil {
			return nil, err
		}
		j1, err := algebra.LeftOuterJoin(part, ps,
			expr.Compare(expr.Eq, expr.Col("ps_partkey"), expr.Col("p_partkey")))
		if err != nil {
			return nil, err
		}
		joined, err := algebra.LeftOuterJoin(j1, li, expr.And(
			expr.Compare(expr.Eq, expr.Col("ps_partkey"), expr.Col("l_partkey")),
			expr.Compare(expr.Eq, expr.Col("ps_suppkey"), expr.Col("l_suppkey"))))
		if err != nil {
			return nil, err
		}

		notExists := algebra.NotExistsPred("g2", "l_rowid")
		allPred := algebra.AllPred("p_retailprice", expr.Lt, "g1", "ps_supplycost", "ps_rowid")
		psCols := []string{"ps_rowid", "ps_partkey", "ps_suppkey", "ps_supplycost"}

		point := Point{
			Label:      fmt.Sprintf("%d tuples", joined.Len()),
			BlockSizes: []int{part.Len(), ps.Len(), li.Len()},
			Times:      make(map[string]time.Duration),
		}

		orig, origRows, err := e.timeIt(func() (int, error) {
			byCols := append([]string{"p_partkey", "p_retailprice"}, psCols...)
			nested, err := algebra.Nest(joined, byCols, []string{"l_rowid", "l_partkey", "l_suppkey"}, "g2")
			if err != nil {
				return 0, err
			}
			selected, err := algebra.LinkSelectPad(nested, notExists, psCols)
			if err != nil {
				return 0, err
			}
			flat, err := algebra.DropSub(selected, "g2")
			if err != nil {
				return 0, err
			}
			nested2, err := algebra.Nest(flat, []string{"p_partkey", "p_retailprice"}, psCols, "g1")
			if err != nil {
				return 0, err
			}
			selected2, err := algebra.LinkSelect(nested2, allPred)
			if err != nil {
				return 0, err
			}
			out, err := algebra.DropSub(selected2, "g1")
			if err != nil {
				return 0, err
			}
			return out.Len(), nil
		})
		if err != nil {
			return nil, err
		}

		levels := []exec.ChainLevel{
			{KeyCols: []string{"p_partkey"}, Spec: &exec.LinkSpec{
				Pred:      allPred,
				AttrIdx:   joined.Schema.MustColIndex("p_retailprice"),
				LinkedIdx: joined.Schema.MustColIndex("ps_supplycost"),
				PresIdx:   joined.Schema.MustColIndex("ps_rowid"),
			}},
			{KeyCols: []string{"ps_rowid"}, Spec: &exec.LinkSpec{
				Pred:      notExists,
				AttrIdx:   -1,
				LinkedIdx: -1,
				PresIdx:   joined.Schema.MustColIndex("l_rowid"),
			}},
		}
		opt, optRows, err := e.timeIt(func() (int, error) {
			out, err := exec.NestLinkChain(exec.Background(), joined, levels, []string{"p_partkey", "p_retailprice"})
			if err != nil {
				return 0, err
			}
			return out.Len(), nil
		})
		if err != nil {
			return nil, err
		}
		if origRows != optRows {
			return nil, fmt.Errorf("proc-q2: original (%d) and optimized (%d) disagree", origRows, optRows)
		}
		point.Times[StratNRAOriginal] = orig
		point.Times[StratNRAOptimized] = opt
		point.Rows = origRows
		fig.Points = append(fig.Points, point)
	}
	return fig, nil
}

// timeIt runs f cfg.Runs times, returning the minimum duration and f's
// last result.
func (e *Env) timeIt(f func() (int, error)) (time.Duration, int, error) {
	var best time.Duration
	rows := 0
	for r := 0; r < e.cfg.Runs; r++ {
		start := time.Now()
		n, err := f()
		elapsed := time.Since(start)
		if err != nil {
			return 0, 0, err
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
		rows = n
	}
	return best, rows, nil
}
