package bench

import (
	"fmt"
	"time"

	"nra/internal/core"
	"nra/internal/relation"
	"nra/internal/sql"
)

// ablationConfig is one Options configuration measured by an ablation run.
type ablationConfig struct {
	name string
	opt  core.Options
}

// ablationWorkload is one query family measured at its largest sweep point.
type ablationWorkload struct {
	id    string
	title string
	build func() ([]pointQuery, error)
}

func (e *Env) ablationWorkloads(idPrefix, titleSuffix string) []ablationWorkload {
	return []ablationWorkload{
		{idPrefix + "-q1", "Query 1 (" + titleSuffix + ", largest point)", func() ([]pointQuery, error) {
			x2, err := e.quantile("orders", "o_orderdate", 1.0)
			if err != nil {
				return nil, err
			}
			return []pointQuery{{sql: fmt.Sprintf(`select o_orderkey, o_orderpriority from orders
where o_orderdate >= '1992-01-01' and o_orderdate < '%s'
  and o_totalprice > all (select l_extendedprice from lineitem
      where l_orderkey = o_orderkey
        and l_commitdate < l_receiptdate and l_shipdate < l_commitdate)`, x2.Text())}}, nil
		}},
		{idPrefix + "-q2b", "Query 2b (" + titleSuffix + ", largest point)", func() ([]pointQuery, error) {
			pts, err := e.query2("all")
			if err != nil {
				return nil, err
			}
			return pts[len(pts)-1:], nil
		}},
		{idPrefix + "-q3b", "Query 3b(a) (" + titleSuffix + ", largest point)", func() ([]pointQuery, error) {
			pts, err := e.query3("all", "not exists", "=", "=")
			if err != nil {
				return nil, err
			}
			return pts[len(pts)-1:], nil
		}},
		{idPrefix + "-q3c", "Query 3c(a) (" + titleSuffix + ", largest point)", func() ([]pointQuery, error) {
			pts, err := e.query3("any", "exists", "=", "=")
			if err != nil {
				return nil, err
			}
			return pts[len(pts)-1:], nil
		}},
	}
}

// runAblation measures every configuration on every workload. The first
// configuration's result is the reference; strictOrder additionally
// demands the same tuple order (the parallel determinism guarantee),
// otherwise set equality suffices.
func (e *Env) runAblation(workloads []ablationWorkload, configs []ablationConfig, strictOrder bool) ([]*Figure, error) {
	var figs []*Figure
	for _, w := range workloads {
		pts, err := w.build()
		if err != nil {
			return nil, err
		}
		fig := &Figure{ID: w.id, Title: w.title}
		for _, pq := range pts {
			sel, err := sql.Parse(pq.sql)
			if err != nil {
				return nil, err
			}
			q, err := sql.Analyze(sel, e.Cat)
			if err != nil {
				return nil, err
			}
			point := Point{Times: make(map[string]time.Duration)}
			point.BlockSizes, err = e.blockSizes(q)
			if err != nil {
				return nil, err
			}
			point.Label = sizesLabel(point.BlockSizes)
			var reference *relation.Relation
			for _, c := range configs {
				opt := c.opt
				best, rows, err := e.timeIt(func() (int, error) {
					out, err := core.Execute(q, opt)
					if err != nil {
						return 0, err
					}
					if reference == nil {
						reference = out
					} else if err := sameResult(out, reference, strictOrder); err != nil {
						return 0, fmt.Errorf("%s: %s disagrees with %s: %w", w.id, c.name, configs[0].name, err)
					}
					return out.Len(), nil
				})
				if err != nil {
					return nil, err
				}
				point.Times[c.name] = best
				point.Rows = rows
			}
			fig.Points = append(fig.Points, point)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

func sameResult(got, want *relation.Relation, strictOrder bool) error {
	if !strictOrder {
		if !got.EqualSet(want) {
			return fmt.Errorf("result set differs")
		}
		return nil
	}
	if got.Len() != want.Len() {
		return fmt.Errorf("%d tuples, want %d", got.Len(), want.Len())
	}
	for i := range want.Tuples {
		if got.Tuples[i].Key() != want.Tuples[i].Key() {
			return fmt.Errorf("tuple %d differs", i)
		}
	}
	return nil
}

// Ablation measures each §4.2 optimization in isolation on the three
// workload families, at the largest sweep point — the design-choice
// benchmarks DESIGN.md calls out. Every configuration's result is
// verified against the original approach.
func (e *Env) Ablation() ([]*Figure, error) {
	configs := []ablationConfig{
		{"original", core.Original()},
		{"fused-4.2.2", core.Options{Fused: true}},
		{"bottomup-4.2.3", core.Options{BottomUp: true, Fused: true}},
		{"pushdown-4.2.4", core.Options{NestPushdown: true}},
		{"positive-4.2.5", core.Options{PositiveRewrite: true}},
		{"optimized-all", core.Optimized()},
	}
	return e.runAblation(e.ablationWorkloads("ablation", "§4.2 options"), configs, false)
}

// CostAblation measures cost-based physical planning against the pure
// heuristic planner on the same workload families. "heuristic" switches
// the estimator off; "costbased" runs with fresh statistics collected on
// every table; the -p4 variants hand both planners four workers and let
// the cost-based one decide whether the inputs justify them. All four
// configurations must return the same result set.
func (e *Env) CostAblation() ([]*Figure, error) {
	e.Cat.AnalyzeAll()
	heuristic := core.Optimized()
	heuristic.UseStats = false
	heuristic.CostBased = false
	heuristicP4 := heuristic
	heuristicP4.Parallelism = 4
	costP4 := core.Optimized()
	costP4.Parallelism = 4
	configs := []ablationConfig{
		{"heuristic", heuristic},
		{"costbased", core.Optimized()},
		{"heuristic-p4", heuristicP4},
		{"costbased-p4", costP4},
	}
	return e.runAblation(e.ablationWorkloads("costbased", "cost-based vs heuristic"), configs, false)
}

// TwoVLAblation measures two-valued logic against standard 3VL on the
// negative-operator workload families: the same optimized planner, with
// and without Options.TwoValuedLogic, so the delta is exactly the 2VL
// antijoin fast path replacing the padding-aware linking operators.
// Verification (2VL must equal 3VL) is sound only on NULL-free data, so
// a configuration injecting NULLs is rejected.
func (e *Env) TwoVLAblation() ([]*Figure, error) {
	if e.cfg.NullFraction > 0 {
		return nil, fmt.Errorf("bench: 2VL ablation needs NULL-free data (NullFraction = %g)", e.cfg.NullFraction)
	}
	twoVL := core.Optimized()
	twoVL.TwoValuedLogic = true
	configs := []ablationConfig{
		{"threevalued", core.Optimized()},
		{"twovalued", twoVL},
	}
	return e.runAblation(e.ablationWorkloads("twovl", "2VL vs 3VL"), configs, false)
}

// VecAblation measures the batch-at-a-time operators against the serial
// row engine on the same workload families: the same optimized planner,
// with and without Options.Vectorized, so the delta is exactly the
// vectorized kernels (columnar scan/filter, batched-probe hash join,
// typed-sort nest + linking selection) replacing the per-tuple
// operators. Verification is tuple-for-tuple — the batch operators must
// reproduce the row engine's output exactly, order included.
func (e *Env) VecAblation() ([]*Figure, error) {
	vectorized := core.Optimized()
	vectorized.Vectorized = true
	configs := []ablationConfig{
		{"row-serial", core.Optimized()},
		{"vectorized", vectorized},
	}
	return e.runAblation(e.ablationWorkloads("vectorized", "batch vs row"), configs, true)
}

// ParallelAblation measures the partitioned-parallel operators against
// the serial ones on the same workload families: serial (P=1) versus
// P = 2, 4 and 8. Verification is tuple-for-tuple — parallel execution
// must reproduce the serial output exactly, order included.
func (e *Env) ParallelAblation() ([]*Figure, error) {
	par := func(p int) core.Options {
		opt := core.Optimized()
		opt.Parallelism = p
		return opt
	}
	configs := []ablationConfig{
		{"serial-p1", core.Optimized()},
		{"parallel-p2", par(2)},
		{"parallel-p4", par(4)},
		{"parallel-p8", par(8)},
	}
	return e.runAblation(e.ablationWorkloads("parallelism", "parallel vs serial"), configs, true)
}
