package bench

import (
	"fmt"
	"time"

	"nra/internal/core"
	"nra/internal/relation"
	"nra/internal/sql"
)

// Ablation measures each §4.2 optimization in isolation on the three
// workload families, at the largest sweep point — the design-choice
// benchmarks DESIGN.md calls out. Every configuration's result is
// verified against the original approach.
func (e *Env) Ablation() ([]*Figure, error) {
	configs := []struct {
		name string
		opt  core.Options
	}{
		{"original", core.Original()},
		{"fused-4.2.2", core.Options{Fused: true}},
		{"bottomup-4.2.3", core.Options{BottomUp: true, Fused: true}},
		{"pushdown-4.2.4", core.Options{NestPushdown: true}},
		{"positive-4.2.5", core.Options{PositiveRewrite: true}},
		{"optimized-all", core.Optimized()},
	}

	workloads := []struct {
		id    string
		title string
		build func() ([]pointQuery, error)
	}{
		{"ablation-q1", "Query 1 (§4.2 options, largest point)", func() ([]pointQuery, error) {
			x2, err := e.quantile("orders", "o_orderdate", 1.0)
			if err != nil {
				return nil, err
			}
			return []pointQuery{{sql: fmt.Sprintf(`select o_orderkey, o_orderpriority from orders
where o_orderdate >= '1992-01-01' and o_orderdate < '%s'
  and o_totalprice > all (select l_extendedprice from lineitem
      where l_orderkey = o_orderkey
        and l_commitdate < l_receiptdate and l_shipdate < l_commitdate)`, x2.Text())}}, nil
		}},
		{"ablation-q2b", "Query 2b (§4.2 options, largest point)", func() ([]pointQuery, error) {
			pts, err := e.query2("all")
			if err != nil {
				return nil, err
			}
			return pts[len(pts)-1:], nil
		}},
		{"ablation-q3b", "Query 3b(a) (§4.2 options, largest point)", func() ([]pointQuery, error) {
			pts, err := e.query3("all", "not exists", "=", "=")
			if err != nil {
				return nil, err
			}
			return pts[len(pts)-1:], nil
		}},
		{"ablation-q3c", "Query 3c(a) (§4.2 options, largest point)", func() ([]pointQuery, error) {
			pts, err := e.query3("any", "exists", "=", "=")
			if err != nil {
				return nil, err
			}
			return pts[len(pts)-1:], nil
		}},
	}

	var figs []*Figure
	for _, w := range workloads {
		pts, err := w.build()
		if err != nil {
			return nil, err
		}
		fig := &Figure{ID: w.id, Title: w.title}
		for _, pq := range pts {
			sel, err := sql.Parse(pq.sql)
			if err != nil {
				return nil, err
			}
			q, err := sql.Analyze(sel, e.Cat)
			if err != nil {
				return nil, err
			}
			point := Point{Times: make(map[string]time.Duration)}
			point.BlockSizes, err = e.blockSizes(q)
			if err != nil {
				return nil, err
			}
			point.Label = sizesLabel(point.BlockSizes)
			var reference *relation.Relation
			for _, c := range configs {
				opt := c.opt
				best, rows, err := e.timeIt(func() (int, error) {
					out, err := core.Execute(q, opt)
					if err != nil {
						return 0, err
					}
					if reference == nil {
						reference = out
					} else if !out.EqualSet(reference) {
						return 0, fmt.Errorf("%s: %s disagrees with original", w.id, c.name)
					}
					return out.Len(), nil
				})
				if err != nil {
					return nil, err
				}
				point.Times[c.name] = best
				point.Rows = rows
			}
			fig.Points = append(fig.Points, point)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}
