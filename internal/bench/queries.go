package bench

import "fmt"

// QuerySQL returns the sweep's SQL statements (smallest to largest outer
// block) for a figure id: "fig4", "fig5", "fig6", "fig7a".."fig9c".
// It lets external benchmark drivers (bench_test.go, cmd/figures) reuse
// the exact workloads the figures measure.
func (e *Env) QuerySQL(id string) ([]string, error) {
	var (
		pts []pointQuery
		err error
	)
	switch id {
	case "fig4", "fig4-notnull":
		for _, f := range outerFracs {
			cut, qerr := e.quantile("orders", "o_orderdate", f)
			if qerr != nil {
				return nil, qerr
			}
			pts = append(pts, pointQuery{sql: fmt.Sprintf(`select o_orderkey, o_orderpriority from orders
where o_orderdate >= '1992-01-01' and o_orderdate < '%s'
  and o_totalprice > all (select l_extendedprice from lineitem
      where l_orderkey = o_orderkey
        and l_commitdate < l_receiptdate and l_shipdate < l_commitdate)`, cut.Text())})
		}
	case "fig5":
		pts, err = e.query2("any")
	case "fig6":
		pts, err = e.query2("all")
	case "fig7a", "fig7b", "fig7c":
		op1, op2 := variantOps(id)
		pts, err = e.query3("all", "exists", op1, op2)
	case "fig8a", "fig8b", "fig8c":
		op1, op2 := variantOps(id)
		pts, err = e.query3("all", "not exists", op1, op2)
	case "fig9a", "fig9b", "fig9c":
		op1, op2 := variantOps(id)
		pts, err = e.query3("any", "exists", op1, op2)
	default:
		return nil, fmt.Errorf("bench: unknown figure id %q", id)
	}
	if err != nil {
		return nil, err
	}
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = p.sql
	}
	return out, nil
}

func variantOps(id string) (op1, op2 string) {
	switch id[len(id)-1] {
	case 'b':
		return "<>", "="
	case 'c':
		return "=", "<>"
	default:
		return "=", "="
	}
}
