package bench

import (
	"strings"
	"testing"
	"time"
)

func tinyConfig() Config {
	return Config{SF: 0.001, Runs: 1, Seed: 7, Verify: true}
}

func TestFig4RunsAndVerifies(t *testing.T) {
	e, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	fig, err := e.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 4 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	// Sweep must be monotone in the outer block size.
	for i := 1; i < len(fig.Points); i++ {
		if fig.Points[i].BlockSizes[0] < fig.Points[i-1].BlockSizes[0] {
			t.Fatalf("outer block sizes not monotone: %v then %v",
				fig.Points[i-1].BlockSizes, fig.Points[i].BlockSizes)
		}
	}
	out := fig.Format()
	for _, want := range []string{"fig4", StratNative, StratNRAOptimized, "rows"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestFigureFamiliesRun(t *testing.T) {
	e, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Fig5(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Fig6(); err != nil {
		t.Fatal(err)
	}
	figs, err := e.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("fig8 family should have 3 variants, got %d", len(figs))
	}
	for _, f := range figs {
		for _, p := range f.Points {
			for _, s := range []string{StratNative, StratNRAOriginal, StratNRAOptimized} {
				if _, ok := p.Times[s]; !ok {
					t.Fatalf("%s point %s missing series %s", f.ID, p.Label, s)
				}
			}
		}
	}
}

func TestProcTables(t *testing.T) {
	e, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p1, err := e.ProcQ1()
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Points) != 4 {
		t.Fatalf("proc-q1 points = %d", len(p1.Points))
	}
	for _, p := range p1.Points {
		if p.Times[StratNRAOriginal] <= 0 || p.Times[StratNRAOptimized] <= 0 {
			t.Fatalf("missing proc timings: %v", p.Times)
		}
	}
	if _, err := e.ProcQ2(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationVerifies(t *testing.T) {
	e, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("ablation workloads = %d", len(figs))
	}
	for _, f := range figs {
		series := f.Series()
		if len(series) != 6 {
			t.Fatalf("%s: series = %v", f.ID, series)
		}
	}
}

func TestCostAblationVerifies(t *testing.T) {
	e, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.CostAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("cost ablation workloads = %d", len(figs))
	}
	for _, f := range figs {
		series := f.Series()
		if len(series) != 4 {
			t.Fatalf("%s: series = %v", f.ID, series)
		}
	}
}

func TestTwoVLAblationVerifies(t *testing.T) {
	e, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.TwoVLAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("2VL ablation workloads = %d", len(figs))
	}
	for _, f := range figs {
		series := f.Series()
		if len(series) != 2 {
			t.Fatalf("%s: series = %v", f.ID, series)
		}
	}
	// NULL-injecting configurations must be rejected: the 2VL-vs-3VL
	// verification is only sound on NULL-free data.
	cfg := tinyConfig()
	cfg.NullFraction = 0.1
	en, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := en.TwoVLAblation(); err == nil {
		t.Fatal("TwoVLAblation accepted a NULL-injecting config")
	}
}

func TestVecAblationVerifies(t *testing.T) {
	e, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.VecAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("vectorized ablation workloads = %d", len(figs))
	}
	for _, f := range figs {
		series := f.Series()
		if len(series) != 2 {
			t.Fatalf("%s: series = %v", f.ID, series)
		}
	}
}

func TestFig4NotNullAntijoinCompetitive(t *testing.T) {
	e, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	fig, err := e.Fig4NotNull()
	if err != nil {
		t.Fatal(err)
	}
	// With NOT NULL the native plan is the antijoin pipeline: it must not
	// be catastrophically slower than the NRA (same asymptotics).
	for _, p := range fig.Points {
		if p.Times[StratNative] > 50*p.Times[StratNRAOptimized]+time.Millisecond*200 {
			t.Fatalf("antijoin plan unexpectedly slow at %s: %v", p.Label, p.Times)
		}
	}
}

func TestNullFractionEnvRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.NullFraction = 0.1
	e, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Fig4(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Fig4NotNull(); err == nil {
		t.Fatal("NOT NULL variant must refuse a NULL-bearing database")
	}
}

// TestModeledShapesMatchPaper pins the reproduction's headline claims as
// regression tests: the modeled (access-count-based) series is fully
// deterministic, so the figure *shapes* can be asserted exactly.
func TestModeledShapesMatchPaper(t *testing.T) {
	e, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Figure 4: native (nested iteration) ≫ NRA, and native grows with
	// the outer block while NRA stays nearly flat.
	fig4, err := e.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	first, last := fig4.Points[0], fig4.Points[len(fig4.Points)-1]
	if last.Modeled[StratNative] < 10*last.Modeled[StratNRAOptimized] {
		t.Fatalf("fig4: native should be ≫ NRA on the modeled series: %v vs %v",
			last.Modeled[StratNative], last.Modeled[StratNRAOptimized])
	}
	if last.Modeled[StratNative] < 2*first.Modeled[StratNative] {
		t.Fatalf("fig4: native should grow with the outer block: %v → %v",
			first.Modeled[StratNative], last.Modeled[StratNative])
	}
	if last.Modeled[StratNRAOptimized] > 3*first.Modeled[StratNRAOptimized] {
		t.Fatalf("fig4: NRA should stay near-flat: %v → %v",
			first.Modeled[StratNRAOptimized], last.Modeled[StratNRAOptimized])
	}

	// Figure 5 vs Figure 6: native is competitive on the mixed ANY query
	// and collapses on the negative ALL query, while the NRA series is
	// operator-independent (≈ equal across the two figures).
	fig5, err := e.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	fig6, err := e.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	l5, l6 := fig5.Points[len(fig5.Points)-1], fig6.Points[len(fig6.Points)-1]
	if l5.Modeled[StratNative] > 2*l5.Modeled[StratNRAOptimized] {
		t.Fatalf("fig5: native pipeline should be competitive: %v vs %v",
			l5.Modeled[StratNative], l5.Modeled[StratNRAOptimized])
	}
	if l6.Modeled[StratNative] < 10*l6.Modeled[StratNRAOptimized] {
		t.Fatalf("fig6: native should collapse on ALL: %v vs %v",
			l6.Modeled[StratNative], l6.Modeled[StratNRAOptimized])
	}
	ratio := float64(l6.Modeled[StratNRAOptimized]) / float64(l5.Modeled[StratNRAOptimized])
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("NRA must be operator-independent across fig5/fig6: ratio %f", ratio)
	}

	// Figure 4 + NOT NULL: the antijoin makes native competitive again.
	e2, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	nn, err := e2.Fig4NotNull()
	if err != nil {
		t.Fatal(err)
	}
	lnn := nn.Points[len(nn.Points)-1]
	if lnn.Modeled[StratNative] > 2*lnn.Modeled[StratNRAOptimized] {
		t.Fatalf("fig4-notnull: antijoin should be competitive: %v vs %v",
			lnn.Modeled[StratNative], lnn.Modeled[StratNRAOptimized])
	}
}

func TestTracingAblationVerifies(t *testing.T) {
	e, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	figs, err := e.TracingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("tracing ablation workloads = %d", len(figs))
	}
	for _, f := range figs {
		series := f.Series()
		if len(series) != 2 {
			t.Fatalf("%s: series = %v", f.ID, series)
		}
	}
}

func TestTraceWaterfallsRender(t *testing.T) {
	e, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tfs, err := e.TraceWaterfalls()
	if err != nil {
		t.Fatal(err)
	}
	if len(tfs) != 4 {
		t.Fatalf("waterfalls = %d, want 4", len(tfs))
	}
	for _, tf := range tfs {
		if !strings.Contains(tf.Text, "query") || !strings.Contains(tf.Text, "operator") {
			t.Errorf("%s: waterfall missing headers:\n%s", tf.ID, tf.Text)
		}
		if !strings.Contains(tf.Text, "#") {
			t.Errorf("%s: waterfall has no time bars:\n%s", tf.ID, tf.Text)
		}
	}
}
