package bench

import (
	"sort"
	"time"
)

// QPSPoint is one cell of a throughput sweep: a concurrency level and
// cache setting with the measured rate and tail latencies. The service
// layer produces these (internal/service.RunQPS); this package holds
// the shape and the percentile arithmetic so cmd/benchrecord can record
// them beside the figure entries.
type QPSPoint struct {
	// Concurrency is the number of concurrent sessions driving load.
	Concurrency int
	// CacheOn reports whether the shared plan cache was enabled.
	CacheOn bool
	// Queries is the total number of statements executed.
	Queries int
	// QPS is the aggregate throughput in queries per second.
	QPS float64
	// P50 and P99 are the per-query latency percentiles.
	P50, P99 time.Duration
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of samples by the
// nearest-rank method; it returns 0 for an empty slice. The input is
// not modified.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
