package bench

import (
	"fmt"
	"time"

	"nra/internal/core"
	"nra/internal/obsv"
	"nra/internal/sql"
)

// TraceFigure is one traced benchmark query with its rendered span
// waterfall — where the wall time of the paper's workload queries goes.
type TraceFigure struct {
	ID    string
	Title string
	SQL   string
	Text  string // the rendered obsv.Waterfall
}

// TraceWaterfalls executes the three workload families (Query 1, 2b,
// 3b(a), 3c(a)) at their largest sweep point under the fully optimized
// configuration with tracing on, and renders each query's span waterfall.
func (e *Env) TraceWaterfalls() ([]*TraceFigure, error) {
	e.Cat.AnalyzeAll()
	var out []*TraceFigure
	for _, w := range e.ablationWorkloads("trace", "span waterfall") {
		pts, err := w.build()
		if err != nil {
			return nil, err
		}
		for _, pq := range pts {
			sel, err := sql.Parse(pq.sql)
			if err != nil {
				return nil, err
			}
			q, err := sql.Analyze(sel, e.Cat)
			if err != nil {
				return nil, err
			}
			opt := core.Optimized()
			opt.Tracer = obsv.NewTracer()
			opt.Label = pq.sql
			if _, err := core.Execute(q, opt); err != nil {
				return nil, err
			}
			out = append(out, &TraceFigure{
				ID:    w.id,
				Title: w.title,
				SQL:   pq.sql,
				Text:  obsv.Waterfall(opt.Tracer.Finish()),
			})
		}
	}
	return out, nil
}

// TracingAblation measures the overhead of span tracing: the fully
// optimized configuration untraced versus with a per-query tracer. The
// acceptance bar is ≤ 5% on these workloads (tracing records only
// operator entry/exit and per-morsel claims, never per-tuple events).
func (e *Env) TracingAblation() ([]*Figure, error) {
	configs := []struct {
		name string
		mk   func() core.Options // fresh Options (and tracer) per execution
	}{
		{"untraced", core.Optimized},
		{"traced", func() core.Options {
			opt := core.Optimized()
			opt.Tracer = obsv.NewTracer()
			return opt
		}},
	}
	var figs []*Figure
	for _, w := range e.ablationWorkloads("tracing", "tracing overhead") {
		pts, err := w.build()
		if err != nil {
			return nil, err
		}
		fig := &Figure{ID: w.id, Title: w.title}
		for _, pq := range pts {
			sel, err := sql.Parse(pq.sql)
			if err != nil {
				return nil, err
			}
			q, err := sql.Analyze(sel, e.Cat)
			if err != nil {
				return nil, err
			}
			point := Point{Times: make(map[string]time.Duration)}
			point.BlockSizes, err = e.blockSizes(q)
			if err != nil {
				return nil, err
			}
			point.Label = sizesLabel(point.BlockSizes)
			var reference int
			for i, c := range configs {
				best, rows, err := e.timeIt(func() (int, error) {
					out, err := core.Execute(q, c.mk())
					if err != nil {
						return 0, err
					}
					return out.Len(), nil
				})
				if err != nil {
					return nil, err
				}
				if i == 0 {
					reference = rows
				} else if rows != reference {
					return nil, fmt.Errorf("%s: %s returned %d rows, want %d", w.id, c.name, rows, reference)
				}
				point.Times[c.name] = best
				point.Rows = rows
			}
			fig.Points = append(fig.Points, point)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}
