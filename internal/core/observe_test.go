package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nra/internal/obsv"
	"nra/internal/tpch"
)

// workloadQueries are the paper's three TPC-H workload families (the
// shapes bench measures as Query 1, 2 and 3) — the span-tree tests
// trace each one.
var workloadQueries = []string{
	// Query 1: one correlated ALL subquery.
	`select o_orderkey, o_orderpriority from orders
	 where o_totalprice > all (select l_extendedprice from lineitem
	     where l_orderkey = o_orderkey)`,
	// Query 2: a two-level linear chain.
	`select p_partkey, p_name from part
	 where p_retailprice < any (select ps_supplycost from partsupp
	     where ps_partkey = p_partkey
	       and exists (select * from lineitem
	           where p_partkey = l_partkey and ps_suppkey = l_suppkey))`,
	// Query 3: NOT EXISTS over a chain (the antijoin-shaped family).
	`select c_name from customer
	 where not exists (select * from orders
	     where o_custkey = c_custkey and o_totalprice > 100000)`,
}

// checkSpanTree asserts the structural invariants of a finished trace:
// one query root; plan spans strictly sequential (never nested in each
// other); every span's window inside its parent's; physical operator
// spans present under the plan spans that ran them.
func checkSpanTree(t *testing.T, rec *obsv.SpanRecord) {
	t.Helper()
	if rec == nil || rec.Kind != obsv.KindQuery {
		t.Fatalf("root span = %+v, want kind %q", rec, obsv.KindQuery)
	}
	var plans, physical int
	var walk func(s *obsv.SpanRecord, inPlan bool)
	walk = func(s *obsv.SpanRecord, inPlan bool) {
		for _, c := range s.Children {
			if c.Start < s.Start {
				t.Errorf("span %q starts before its parent %q", c.Op, s.Op)
			}
			if c.Start+c.Elapsed > s.Start+s.Elapsed+s.Elapsed/8+1 {
				t.Errorf("span %q (%v+%v) extends past its parent %q (%v+%v)",
					c.Op, c.Start, c.Elapsed, s.Op, s.Start, s.Elapsed)
			}
			switch c.Kind {
			case obsv.KindQuery:
				t.Errorf("nested query span %q", c.Op)
			case obsv.KindPlan:
				plans++
				if inPlan {
					t.Errorf("plan span %q nested inside another plan span", c.Op)
				}
				walk(c, true)
			default:
				physical++
				walk(c, inPlan)
			}
		}
	}
	walk(rec, false)
	if plans == 0 {
		t.Error("trace has no plan spans")
	}
	if physical == 0 {
		t.Error("trace has no physical operator spans")
	}
}

func TestSpanTreeWorkloadQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H generation in -short mode")
	}
	cat, err := tpch.Generate(tpch.Scale(0.005))
	if err != nil {
		t.Fatal(err)
	}
	cat.AnalyzeAll()
	for i, src := range workloadQueries {
		q := analyze(t, cat, src)
		opt := Optimized()
		opt.Tracer = obsv.NewTracer()
		if _, err := Execute(q, opt); err != nil {
			t.Fatalf("query %d: %v", i+1, err)
		}
		rec := opt.Tracer.Finish()
		checkSpanTree(t, rec)
		if rec.Find(obsv.KindScan) == nil {
			t.Errorf("query %d: no scan span in\n%s", i+1, obsv.Waterfall(rec))
		}
		if rec.Find(obsv.KindJoin) == nil {
			t.Errorf("query %d: no join span in\n%s", i+1, obsv.Waterfall(rec))
		}
	}
}

func TestSpanTreeMatchesAnalyzeLog(t *testing.T) {
	// The EXPLAIN ANALYZE operator log is derived from the trace's plan
	// spans; their pre-order walk must agree with it op for op.
	cat := paperCatalog(t)
	q := analyze(t, cat, queryQ)
	tr := obsv.NewTracer()
	opt := Optimized()
	opt.Tracer = tr
	_, ops, _, err := ExecuteAnalyzed(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	rec := tr.Finish()
	checkSpanTree(t, rec)
	fromTrace := planOpStats(rec)
	if len(fromTrace) != len(ops) {
		t.Fatalf("trace has %d plan spans, analyze log has %d", len(fromTrace), len(ops))
	}
	for i := range ops {
		if ops[i] != fromTrace[i] {
			t.Errorf("op %d: analyze log %+v != trace %+v", i, ops[i], fromTrace[i])
		}
	}
}

func TestTracingDoesNotChangeExecution(t *testing.T) {
	// Tracing must never alter plan or physical-path decisions: the
	// operator walkthrough and the output tuples must be identical with
	// and without a tracer, on every configuration of the matrix.
	cat := paperCatalog(t)
	cat.AnalyzeAll()
	q := analyze(t, cat, queryQ)
	for name, base := range optionMatrix {
		var plain, traced strings.Builder
		optPlain := base
		optPlain.Trace = &plain
		want, err := Execute(q, optPlain)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		optTraced := base
		optTraced.Trace = &traced
		optTraced.Tracer = obsv.NewTracer()
		got, err := Execute(q, optTraced)
		if err != nil {
			t.Fatalf("%s traced: %v", name, err)
		}
		if plain.String() != traced.String() {
			t.Errorf("%s: tracing changed the operator walkthrough:\nplain:\n%s\ntraced:\n%s",
				name, plain.String(), traced.String())
		}
		if want.Len() != got.Len() {
			t.Fatalf("%s: tracing changed the result size: %d vs %d", name, want.Len(), got.Len())
		}
		for i := range want.Tuples {
			if want.Tuples[i].Key() != got.Tuples[i].Key() {
				t.Fatalf("%s: tracing changed tuple %d", name, i)
			}
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	cat := paperCatalog(t)
	q := analyze(t, cat, queryQ)
	var buf bytes.Buffer
	opt := Optimized()
	opt.SlowLog = obsv.NewSlowLog(&buf)
	opt.SlowQuery = 0 // log every query
	opt.Label = "queryQ"
	if _, err := Execute(q, opt); err != nil {
		t.Fatal(err)
	}
	entries, err := obsv.DecodeSlowLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("decoded %d slow-log entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Query != "queryQ" || e.Error != "" || e.DurationMS <= 0 {
		t.Fatalf("entry = %+v", e)
	}
	if !strings.Contains(e.Plan, "tree expression") || !strings.Contains(e.Plan, "strategy:") {
		t.Errorf("entry plan missing the EXPLAIN tree:\n%s", e.Plan)
	}
	if e.Trace == nil || e.Trace.Kind != obsv.KindQuery {
		t.Fatalf("entry trace = %+v", e.Trace)
	}
	checkSpanTree(t, e.Trace)

	// Above-threshold filtering: a generous threshold logs nothing.
	buf.Reset()
	opt.SlowLog = obsv.NewSlowLog(&buf)
	opt.SlowQuery = 10 * time.Second
	if _, err := Execute(q, opt); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("fast query logged anyway: %s", buf.String())
	}
}
