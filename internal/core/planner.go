package core

import (
	"fmt"
	"strings"

	"nra/internal/algebra"
	"nra/internal/colstore"
	"nra/internal/exec"
	"nra/internal/expr"
	"nra/internal/opt"
	"nra/internal/relation"
	"nra/internal/sql"
	"nra/internal/vec"
)

// planner holds per-query planning state.
type planner struct {
	q   *sql.Query
	opt Options
	ec  *exec.ExecContext // per-query governance; Background when unused

	colBlock map[string]int   // qualified column name → owning block ID
	needed   map[int][]string // block ID → columns that must flow upward
	keys     map[int][]string // block ID → its tables' PK columns

	// setSem marks a query whose output is a set rather than a bag: root
	// DISTINCT, no aggregates, no LIMIT/OFFSET, and no scalar-aggregate
	// link anywhere (aggregates are multiplicity-sensitive). Under set
	// semantics the §4.2.5 inner-block rewrite may skip its
	// multiset-restoring duplicate elimination: quantified links are
	// multiplicity-insensitive, extra copies collapse at the next nest or
	// at the root DISTINCT.
	setSem bool

	// Cost-based planning state (see costbased.go). est is nil unless
	// Options.UseStats is set and every table has fresh statistics.
	est       *opt.Estimator
	card      map[int]float64           // block ID → est reduced cardinality
	width     map[int]float64           // block ID → est payload bytes per tuple
	edgeEst   map[*sql.LinkEdge]edgeEst // per-edge join/link estimates
	peakRows  float64                   // largest estimated operator input
	statsNote string                    // EXPLAIN line describing stats availability
	planNotes []string                  // EXPLAIN chosen-because annotations
	spillOps  []string                  // operators planned onto their spill path
	vecNotes  []string                  // batch→row fallbacks observed at run time

	// vecCache maps an intermediate relation to its column-vector form,
	// filled by each batch operator and consumed by the next, so a fully
	// batchable reduce→join→nest chain converts each column exactly once.
	// Keyed by relation identity: relations are immutable during query
	// execution.
	vecCache map[*relation.Relation]*vec.Batch
}

func newPlanner(q *sql.Query, opt Options) (*planner, error) {
	p := &planner{
		q:        q,
		opt:      opt,
		ec:       exec.Background(),
		colBlock: make(map[string]int),
		needed:   make(map[int][]string),
		keys:     make(map[int][]string),
	}
	if err := p.check(); err != nil {
		return nil, err
	}
	p.setSem = p.computeSetSemantics()
	p.computeColumnOwners()
	if err := p.computeNeeded(); err != nil {
		return nil, err
	}
	p.buildEstimator()
	p.estimateQuery()
	return p, nil
}

// check verifies the query is decomposable per §4.1: every block's WHERE
// splits into θ_i / C_ij / L_i, with linking attributes that are columns
// or constants and single-column subquery select lists.
func (p *planner) check() error {
	for _, b := range p.q.Blocks {
		if len(b.Other) > 0 {
			return unsupportedf("block %d has a subquery under OR/NOT or another non-conjunctive shape", b.ID)
		}
		if b.ComplexItems {
			return unsupportedf("block %d has subqueries in its select list", b.ID)
		}
		for _, l := range b.Links {
			if l.Pred.Left != nil {
				switch l.Pred.Left.(type) {
				case *sql.ColRef, *sql.Lit:
				default:
					return unsupportedf("linking attribute %q of block %d is not a column or constant", l.Pred.Left, b.ID)
				}
			}
			switch l.Kind {
			case sql.Exists, sql.NotExists:
			case sql.CmpScalar:
				if _, ok := l.Child.Agg(); !ok {
					return unsupportedf("scalar subquery block %d lacks a single aggregate", l.Child.ID)
				}
			default:
				if _, err := p.q.LinkedAttr(l.Child); err != nil {
					return unsupportedf("%v", err)
				}
			}
		}
	}
	return nil
}

// computeSetSemantics reports whether the query's result is a set — the
// bag/set distinction of Ricciotti-style mixed semantics. True only when
// the root SELECT is DISTINCT with plain (non-aggregate) items, there is
// no LIMIT/OFFSET, and no block carries a scalar-aggregate link (COUNT/
// SUM/AVG observe member multiplicities, so intermediate duplicates must
// not be introduced).
func (p *planner) computeSetSemantics() bool {
	root := p.q.Root
	sel := root.Sel
	if !sel.Distinct || len(root.AggItems) > 0 || sel.Limit >= 0 || sel.Offset > 0 {
		return false
	}
	for _, b := range p.q.Blocks {
		for _, l := range b.Links {
			if l.Kind == sql.CmpScalar {
				return false
			}
		}
	}
	return true
}

func (p *planner) computeColumnOwners() {
	for _, b := range p.q.Blocks {
		for _, bt := range b.Tables {
			for _, c := range bt.Schema.Cols {
				p.colBlock[c.Name] = b.ID
			}
			p.keys[b.ID] = append(p.keys[b.ID], bt.Prefix+"."+unqualify(bt.Table.PK))
		}
	}
}

// computeNeeded determines, per block, the columns that must survive the
// block's reduction: select/order-by columns (root), every correlated- or
// linking-predicate column, the linked attributes, and all primary keys
// (group identity and presence markers).
func (p *planner) computeNeeded() error {
	add := func(blockID int, col string) {
		for _, c := range p.needed[blockID] {
			if c == col {
				return
			}
		}
		p.needed[blockID] = append(p.needed[blockID], col)
	}
	addExprCols := func(e sql.Expr) error {
		var firstErr error
		if e == nil {
			return nil
		}
		sql.Walk(e, func(x sql.Expr) {
			if firstErr != nil {
				return
			}
			if c, ok := x.(*sql.ColRef); ok {
				r, ok := p.q.Resolve(c)
				if !ok {
					firstErr = unsupportedf("unresolved column %s", c)
					return
				}
				add(r.Block.ID, r.Name)
			}
		})
		return firstErr
	}

	// Primary keys first: they are the group/presence machinery.
	for _, b := range p.q.Blocks {
		for _, k := range p.keys[b.ID] {
			add(b.ID, k)
		}
	}
	root := p.q.Root
	if root.Sel.Star {
		for _, c := range root.Schema.Cols {
			add(root.ID, c.Name)
		}
	} else {
		for _, it := range root.Sel.Items {
			if err := addExprCols(it.Expr); err != nil {
				return err
			}
		}
	}
	for _, o := range root.Sel.OrderBy {
		if err := addExprCols(o.Expr); err != nil {
			return err
		}
	}
	for _, b := range p.q.Blocks {
		for _, cp := range b.Corr {
			if err := addExprCols(cp.E); err != nil {
				return err
			}
		}
		for _, l := range b.Links {
			if err := addExprCols(l.Pred.Left); err != nil {
				return err
			}
			switch l.Kind {
			case sql.Exists, sql.NotExists:
			case sql.CmpScalar:
				if agg, ok := l.Child.Agg(); ok && agg.Col != "" {
					add(l.Child.ID, agg.Col)
				}
			default:
				la, err := p.q.LinkedAttr(l.Child)
				if err != nil {
					return unsupportedf("%v", err)
				}
				add(l.Child.ID, la)
			}
		}
	}
	return nil
}

// trace emits one line of the execution walkthrough when Options.Trace
// is set.
func (p *planner) trace(format string, args ...any) {
	if p.opt.Trace != nil {
		fmt.Fprintf(p.opt.Trace, format+"\n", args...)
	}
}

// seq charges sequential tuple accesses to the optional I/O meter
// (reads of inputs, writes of materialised outputs).
func (p *planner) seq(ns ...int) {
	for _, n := range ns {
		p.opt.Meter.Seq(n)
	}
}

// reduce produces T_i = σ_{θ_i}(R_i): the block's tables joined on the
// local predicates with selections pushed down, projected to the block's
// needed columns (§4.1 step 1). Single-table blocks — the common case —
// run as one pipelined scan→filter→project pass; multi-table blocks join
// with selections pushed to each side.
func (p *planner) reduce(b *sql.Block) (*relation.Relation, error) {
	if len(b.Tables) == 1 {
		return p.reduceSingle(b)
	}
	// Partition local conjuncts by the tables they touch.
	type pending struct {
		e    expr.Expr
		cols []string
	}
	var preds []pending
	for _, l := range b.Local {
		le, err := p.q.Lower(l)
		if err != nil {
			return nil, err
		}
		le = p.filterExpr(le)
		preds = append(preds, pending{e: le, cols: le.Columns(nil)})
	}

	covered := func(cols []string, have *relation.Schema) bool {
		for _, c := range cols {
			if have.ColIndex(c) < 0 {
				return false
			}
		}
		return true
	}

	sp := p.begin("reduce T%d (%s)", b.ID+1, blockTables(b))
	var rel *relation.Relation
	for ti, bt := range b.Tables {
		tblRel := &relation.Relation{Schema: bt.Schema, Tuples: bt.Table.Rel.Tuples}
		p.seq(tblRel.Len()) // base-table scan
		// Push down single-table selections before joining.
		var mine []expr.Expr
		var rest []pending
		for _, pd := range preds {
			if covered(pd.cols, bt.Schema) {
				mine = append(mine, pd.e)
			} else {
				rest = append(rest, pd)
			}
		}
		preds = rest
		if sel := expr.And(mine...); sel != nil {
			filtered, err := algebra.Select(tblRel, sel)
			if err != nil {
				return nil, err
			}
			tblRel = filtered
		}
		if ti == 0 {
			rel = tblRel
			continue
		}
		// Join on whatever local predicates are now fully covered.
		joined, err := joinSchemaPreview(rel, tblRel)
		if err != nil {
			return nil, err
		}
		var on []expr.Expr
		rest = nil
		for _, pd := range preds {
			if covered(pd.cols, joined) {
				on = append(on, pd.e)
			} else {
				rest = append(rest, pd)
			}
		}
		preds = rest
		// Cost-based build-side choice: the hash join builds on its right
		// input, so put the smaller relation there (legal for the inner
		// joins of block reduction — columns are addressed by name).
		left, right := rel, tblRel
		if p.costBased() && left.Len() < right.Len() {
			left, right = right, left
			p.trace("build side swapped: the %d-row accumulated join builds; %s (%d rows) probes", rel.Len(), bt.Ref.Table, tblRel.Len())
		}
		rel, err = p.join(left, right, expr.And(on...))
		if err != nil {
			return nil, err
		}
	}
	if len(preds) > 0 {
		// Leftover conjuncts (should not happen: locals only reference the
		// block's own tables) — apply as a final filter.
		var all []expr.Expr
		for _, pd := range preds {
			all = append(all, pd.e)
		}
		filtered, err := algebra.Select(rel, expr.And(all...))
		if err != nil {
			return nil, err
		}
		rel = filtered
	}
	out, err := algebra.Project(rel, p.needed[b.ID]...)
	if err != nil {
		return nil, err
	}
	p.seq(out.Len()) // write of the reduced block
	p.trace("T%d := σ_θ(%s)  → %d tuples", b.ID+1, blockTables(b), out.Len())
	p.done(sp, p.estCard(b), out.Len())
	return out, nil
}

// reduceSingle is the pipelined single-table reduction: one pass, no
// intermediate materialisation between selection and projection.
func (p *planner) reduceSingle(b *sql.Block) (*relation.Relation, error) {
	bt := b.Tables[0]
	base := &relation.Relation{Schema: bt.Schema, Tuples: bt.Table.Rel.Tuples}
	local, err := p.q.LowerAll(b.Local)
	if err != nil {
		return nil, err
	}
	local = p.filterExpr(local)
	sp := p.begin("reduce T%d (%s)", b.ID+1, bt.Ref.Table)
	var out *relation.Relation
	if p.vecGate() == "" {
		if !p.vecCostOK(float64(base.Len())) {
			p.vecNote(fmt.Sprintf("reduce T%d", b.ID+1), "below vectorization threshold")
		} else {
			colsrc, prune := p.segPrune(bt, base, local)
			vo, vb, reason, err := exec.VecReduce(p.ec, base, local, p.needed[b.ID], colsrc, prune)
			if err != nil {
				return nil, err
			}
			if reason != "" {
				p.vecNote(fmt.Sprintf("reduce T%d", b.ID+1), reason)
			} else {
				out = vo
				p.vecPut(out, vb)
			}
		}
	}
	if out == nil {
		var err error
		out, err = exec.Drain(p.ec, exec.NewProject(exec.NewFilter(exec.NewScan(base), local), p.needed[b.ID]))
		if err != nil {
			return nil, err
		}
	}
	p.seq(base.Len(), out.Len()) // one scan in, reduced block out
	p.trace("T%d := σ_θ(%s)  → %d tuples", b.ID+1, bt.Ref.Table, out.Len())
	p.done(sp, p.estCard(b), out.Len())
	return out, nil
}

// segPrune prepares a single-table reduction's zone-map pruning: when
// the table version is segment-backed (columnar durable format) and
// the segment still describes exactly base's rows, the local predicate
// is tested against every row group's zone maps. Groups proved free of
// matches are skipped by the scan AND left undecoded by the column
// source. Returns the plain memoized column store and a nil prune
// whenever pruning does not apply — the scan then behaves exactly as
// before segments existed.
func (p *planner) segPrune(bt *sql.BlockTable, base *relation.Relation, pred expr.Expr) (func(int) *vec.Vector, *exec.SegPrune) {
	t := bt.Table
	segs := t.Segments()
	if segs == nil || pred == nil || p.opt.NoZoneMapPruning || segs.Rows() != base.Len() {
		return t.VecColumn, nil
	}
	skip, scanned, total := colstore.PruneGroups(pred, base.Schema, segs.Footer())
	if skip == nil {
		return t.VecColumn, nil
	}
	p.trace("zone maps prune %s: %d/%d row groups scanned", bt.Ref.Table, scanned, total)
	prune := &exec.SegPrune{GroupRows: segs.Footer().GroupRows, Skip: skip}
	return func(c int) *vec.Vector { return t.VecColumnPruned(c, skip) }, prune
}

func blockTables(b *sql.Block) string {
	names := make([]string, 0, len(b.Tables))
	for _, bt := range b.Tables {
		names = append(names, bt.Ref.Table)
	}
	return strings.Join(names, " × ")
}

// joinSchemaPreview returns what the combined schema of a join would be
// (for predicate coverage checks) without executing it.
func joinSchemaPreview(l, r *relation.Relation) (*relation.Schema, error) {
	s := &relation.Schema{Name: "preview"}
	s.Cols = append(append([]relation.Column{}, l.Schema.Cols...), r.Schema.Cols...)
	return s, nil
}

// corrCond conjoins and lowers a block's correlated predicates.
func (p *planner) corrCond(b *sql.Block) (expr.Expr, error) {
	var parts []expr.Expr
	for _, cp := range b.Corr {
		e, err := p.q.Lower(cp.E)
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	return p.filterExpr(expr.And(parts...)), nil
}

// filterExpr adapts a lowered filter/join predicate to the session logic:
// under 2VL it applies the filter-context rewrite (which leaves bare
// comparisons and AND-trees structurally unchanged, so equi-key and
// push-down pattern matching still fire); under 3VL it is the identity.
func (p *planner) filterExpr(e expr.Expr) expr.Expr {
	if !p.opt.TwoValuedLogic || e == nil {
		return e
	}
	return expr.TwoValued(e)
}

// linkPred converts a link edge into an algebra.LinkPred over the nested
// attribute subName, with the child's presence column marking padding.
//
// Under 2VL the analyzer's 3VL normalisations are unsound and the
// encoding changes: NOT IN becomes a negated =SOME (x NOT IN {NULL} is
// True under 2VL, whereas <>ALL over a collapsed <> would say False), and
// a NOT-folded quantifier or scalar comparison (edge.SynNeg) is undone to
// its syntactic form and negated classically after the fold.
func (p *planner) linkPred(edge *sql.LinkEdge, subName string, child *sql.Block) (algebra.LinkPred, error) {
	pred := algebra.LinkPred{Sub: subName, Presence: child.Presence}
	twoVL := p.opt.TwoValuedLogic
	switch edge.Kind {
	case sql.Exists:
		pred.Empty = algebra.NotEmpty
		return pred, nil
	case sql.NotExists:
		pred.Empty = algebra.IsEmpty
		return pred, nil
	case sql.CmpScalar:
		agg, ok := child.Agg()
		if !ok {
			return pred, unsupportedf("scalar subquery block %d lacks a single aggregate", child.ID)
		}
		pred.Agg = agg.Func
		pred.Linked = agg.Col
		pred.Op = edge.Cmp
		if twoVL {
			pred.TwoValued = true
			if edge.SynNeg {
				pred.Op, pred.Negate = edge.Cmp.Negate(), true
			}
		}
		return p.fillLeft(edge, pred)
	}
	la, err := p.q.LinkedAttr(child)
	if err != nil {
		return pred, unsupportedf("%v", err)
	}
	pred.Linked = la
	switch edge.Kind {
	case sql.In:
		pred.Op, pred.Quant = expr.Eq, algebra.Some
	case sql.NotIn:
		if twoVL {
			pred.Op, pred.Quant, pred.Negate = expr.Eq, algebra.Some, true
		} else {
			pred.Op, pred.Quant = expr.Ne, algebra.All
		}
	case sql.CmpSome:
		pred.Op, pred.Quant = edge.Cmp, algebra.Some
		if twoVL && edge.SynNeg {
			pred.Op, pred.Quant, pred.Negate = edge.Cmp.Negate(), algebra.All, true
		}
	case sql.CmpAll:
		pred.Op, pred.Quant = edge.Cmp, algebra.All
		if twoVL && edge.SynNeg {
			pred.Op, pred.Quant, pred.Negate = edge.Cmp.Negate(), algebra.Some, true
		}
	}
	pred.TwoValued = twoVL
	return p.fillLeft(edge, pred)
}

// fillLeft resolves the linking attribute (a column of an enclosing block
// or a constant) into the predicate.
func (p *planner) fillLeft(edge *sql.LinkEdge, pred algebra.LinkPred) (algebra.LinkPred, error) {
	switch left := edge.Pred.Left.(type) {
	case *sql.ColRef:
		r, ok := p.q.Resolve(left)
		if !ok {
			return pred, unsupportedf("unresolved linking attribute %s", left)
		}
		pred.Attr = r.Name
	case *sql.Lit:
		v := left.V
		pred.Const = &v
	default:
		return pred, unsupportedf("linking attribute %q", edge.Pred.Left)
	}
	return pred, nil
}

// strictOK reports whether the strict linking selection σ may be used
// when computing a link whose parent block is b: true when b is the root
// or when every pending linking operator on the path to the root is
// positive (§4.1: "σ̄ is used for computing negative or mixed linking
// predicates; σ ... for the last ... or all unfinished being positive").
// The top parameter is the block acting as root of the current
// (sub)computation — the global root, or the subquery block itself when a
// non-correlated subtree is evaluated standalone.
func (p *planner) strictOK(b, top *sql.Block) bool {
	if b == top {
		return true
	}
	if p.opt.AlwaysPad {
		return false
	}
	for blk := b; blk != top && blk.Parent != nil; blk = blk.Parent {
		link := incomingLink(blk)
		if link == nil || !link.Kind.Positive() {
			return false
		}
	}
	return true
}

func incomingLink(b *sql.Block) *sql.LinkEdge {
	if b.Parent == nil {
		return nil
	}
	for _, l := range b.Parent.Links {
		if l.Child == b {
			return l
		}
	}
	return nil
}

// blockCols returns the columns of rel owned by block id, in schema order.
func (p *planner) blockCols(rel *relation.Relation, id int) []string {
	var out []string
	for _, c := range rel.Schema.Cols {
		if p.colBlock[c.Name] == id {
			out = append(out, c.Name)
		}
	}
	return out
}

// otherCols returns the columns of rel NOT owned by block id.
func (p *planner) otherCols(rel *relation.Relation, id int) []string {
	var out []string
	for _, c := range rel.Schema.Cols {
		if p.colBlock[c.Name] != id {
			out = append(out, c.Name)
		}
	}
	return out
}

// pathKeyCols returns the PK columns of every block from root-of-subtree
// top down to b that are present in rel, in block order — the group keys
// for the fused operators.
func (p *planner) pathKeyCols(rel *relation.Relation, b, top *sql.Block) []string {
	var chain []*sql.Block
	for blk := b; ; blk = blk.Parent {
		chain = append([]*sql.Block{blk}, chain...)
		if blk == top || blk.Parent == nil {
			break
		}
	}
	var out []string
	for _, blk := range chain {
		for _, k := range p.keys[blk.ID] {
			if rel.Schema.ColIndex(k) >= 0 {
				out = append(out, k)
			}
		}
	}
	return out
}

// subtreeUncorrelated reports whether block c's whole subtree references
// no block outside the subtree — in which case it can be evaluated once
// and shared by all outer tuples (§4: virtual Cartesian product).
func (p *planner) subtreeUncorrelated(c *sql.Block) bool {
	inSub := map[int]bool{}
	var mark func(b *sql.Block)
	mark = func(b *sql.Block) {
		inSub[b.ID] = true
		for _, ch := range b.Children {
			mark(ch)
		}
	}
	mark(c)
	var bad bool
	var visit func(b *sql.Block)
	visit = func(b *sql.Block) {
		for _, cp := range b.Corr {
			for id := range cp.Outers {
				if !inSub[id] {
					bad = true
				}
			}
		}
		for _, ch := range b.Children {
			visit(ch)
		}
	}
	visit(c)
	return !bad
}

// finish applies the root select list, DISTINCT and ORDER BY.
func (p *planner) finish(rel *relation.Relation) (*relation.Relation, error) {
	sp := p.begin("finish (select list / DISTINCT / ORDER BY)")
	out, err := exec.FinishQuery(rel, p.q)
	if err == nil {
		p.done(sp, -1, out.Len())
	} else {
		sp.End()
	}
	return out, err
}

func unqualify(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
