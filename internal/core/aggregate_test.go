package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nra/internal/naive"
	"nra/internal/native"
	"nra/internal/sql"
	"nra/internal/value"
)

// TestScalarAggregateQueries runs fixed scalar-aggregate workloads through
// every strategy configuration (plus the native baseline) against the
// reference evaluator.
func TestScalarAggregateQueries(t *testing.T) {
	cat := paperCatalog(t)
	queries := map[string]string{
		"max uncorrelated":      "select B from R where R.A > (select max(S.E) from S)",
		"min uncorrelated":      "select B from R where R.A < (select min(S.E) from S where S.F = 5)",
		"sum correlated":        "select B from R where R.A > (select sum(S.E) from S where S.G = R.D)",
		"avg correlated":        "select B from R where R.A >= (select avg(S.E) from S where S.G = R.D)",
		"count star correlated": "select B from R where 2 = (select count(*) from S where S.G = R.D)",
		"count col correlated":  "select B from R where (select count(S.E) from S where S.G = R.D) >= 1",
		"count empty is zero":   "select B from R where 0 = (select count(*) from S where S.G = R.D and S.F = 99)",
		"max of empty is null":  "select B from R where R.A > (select max(S.E) from S where S.G = R.D and S.F = 99)",
		"flipped orientation":   "select B from R where (select max(S.E) from S where S.G = R.D) < R.A",
		"negated scalar cmp":    "select B from R where not (R.A > (select max(S.E) from S where S.G = R.D))",
		"two scalar subqueries": `select B from R where
			R.A > (select min(S.E) from S where S.G = R.D)
			and R.A <= (select max(T.J) from T where T.K = R.C)`,
		"scalar below quantified": `select B from R where R.B in
			(select S.E from S where S.G = R.D and S.H >
				(select avg(T.J) from T where T.K = S.G))`,
		"scalar above exists": `select B from R where
			R.A >= (select count(*) from S where S.G = R.D and exists
				(select * from T where T.K = S.G))`,
	}
	for name, src := range queries {
		src := src
		t.Run(name, func(t *testing.T) {
			checkAllStrategies(t, cat, src)
			// Also the native baseline.
			q := analyze(t, cat, src)
			want, err := naive.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := native.Execute(q)
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			if !got.EqualSet(want) {
				t.Fatalf("native differs:\n%s\nvs reference:\n%s", got, want)
			}
		})
	}
}

// TestMaxRewriteIsNotAll is the §2 counterexample as an end-to-end test:
// with R.A = 5 and the subquery set {2, 3, 4, NULL},
// "R.A > ALL (...)" is Unknown (row rejected) but
// "R.A > (select max(...))" is True (MAX skips NULLs → 4).
func TestMaxRewriteIsNotAll(t *testing.T) {
	cat := paperCatalog(t)
	// R row with A=5 is (5,6,7,2); S rows with G=2: (6,5,2,null,3) → E=6.
	// Use a tailored pair instead: compare over S.H for G=1: {8,2}.
	allQ := "select B from R where R.A > all (select S.E from S where S.F = 5)"
	maxQ := "select B from R where R.A > (select max(S.E) from S where S.F = 5)"
	// S.E over F=5: {2,4,6,3,null} → max 6; ALL over the same set: any
	// comparison with NULL poisons non-false results.
	qAll := analyze(t, cat, allQ)
	qMax := analyze(t, cat, maxQ)
	rAll, err := Execute(qAll, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	rMax, err := Execute(qMax, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	// A=10 row: >ALL {2,4,6,3,null} = unknown (10>null) → rejected;
	// >max(=6) = true → returned. The two queries MUST differ.
	if rAll.EqualSet(rMax) {
		t.Fatalf("ALL and MAX rewrite should differ under NULLs:\nALL:\n%s\nMAX:\n%s", rAll, rMax)
	}
	if rAll.Len() != 0 {
		t.Fatalf(">ALL over NULL-bearing set must reject all rows:\n%s", rAll)
	}
	if rMax.Len() == 0 {
		t.Fatal(">MAX must accept the A=10 row")
	}
}

// TestCountRewriteIsNotNotExists: "0 = (select count(*) ...)" IS
// equivalent to NOT EXISTS (count ignores NULLs only per-column), while
// the §2 warning concerns rewriting θALL via counts — check the exact
// equivalence that does hold, as a sanity anchor.
func TestCountRewriteMatchesNotExists(t *testing.T) {
	cat := paperCatalog(t)
	a := analyze(t, cat, "select B from R where 0 = (select count(*) from S where S.G = R.D)")
	b := analyze(t, cat, "select B from R where not exists (select * from S where S.G = R.D)")
	ra, err := Execute(a, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Execute(b, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if !ra.EqualSet(rb) {
		t.Fatalf("COUNT(*)=0 should equal NOT EXISTS:\n%s\nvs\n%s", ra, rb)
	}
}

func TestRootAggregates(t *testing.T) {
	cat := paperCatalog(t)
	for name, src := range map[string]string{
		"plain":          "select count(*) from S",
		"filtered":       "select count(*), max(S.E), min(S.E), sum(S.E), avg(S.E) from S where S.F = 5",
		"count col":      "select count(S.E) from S",
		"with subquery":  "select count(*) from R where exists (select * from S where S.G = R.D)",
		"empty input":    "select count(*), max(S.E) from S where S.F = 123",
		"aliased output": "select count(*) as n from S",
	} {
		src := src
		t.Run(name, func(t *testing.T) {
			checkAllStrategies(t, cat, src)
		})
	}
	// Spot-check values.
	q := analyze(t, cat, "select count(*), count(S.E), max(S.E) from S where S.F = 5")
	out, err := Execute(q, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	// F=5 rows: E ∈ {2,4,6,3,null} → count(*)=5, count(E)=4, max=6.
	atoms := out.Tuples[0].Atoms
	if atoms[0].Int64() != 5 || atoms[1].Int64() != 4 || atoms[2].Int64() != 6 {
		t.Fatalf("aggregate values wrong:\n%s", out)
	}
	// Empty input: COUNT 0, MAX NULL.
	q2 := analyze(t, cat, "select count(*), max(S.E) from S where S.F = 123")
	out2, err := Execute(q2, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if out2.Len() != 1 || out2.Tuples[0].Atoms[0].Int64() != 0 || !out2.Tuples[0].Atoms[1].IsNull() {
		t.Fatalf("empty aggregate:\n%s", out2)
	}
}

func TestAggregateValidation(t *testing.T) {
	cat := paperCatalog(t)
	bad := []string{
		"select B, count(*) from R",                               // mixing
		"select B from R where count(*) > 1",                      // agg in WHERE
		"select B from R where R.A > (select S.E from S)",         // non-agg scalar sub
		"select B from R where R.A > (select max(S.E), 1 from S)", // two items
		"select max(B + 1) from R",                                // non-column arg
		"select B from R where R.A in (select sum(*) from S)",     // SUM(*)
		"select B from R where R.A > (select nosuch(S.E) from S)", // unknown func
	}
	for _, src := range bad {
		sel, err := sql.Parse(src)
		if err != nil {
			continue // rejected by parser — fine
		}
		if _, err := sql.Analyze(sel, cat); err == nil {
			t.Errorf("Analyze(%q) should fail", src)
		}
	}

	// Scalar-vs-scalar comparison: legal SQL, beyond the planner's
	// decomposition (Other bucket) — the reference evaluator handles it.
	svs := "select B from R where (select max(S.E) from S) > (select min(T.J) from T)"
	q := analyze(t, cat, svs)
	if err := Supported(q); err == nil {
		t.Error("scalar-vs-scalar should be unsupported by the planner")
	}
	if _, err := naive.Evaluate(q); err != nil {
		t.Errorf("reference should evaluate scalar-vs-scalar: %v", err)
	}
}

func TestAvgIsFloat(t *testing.T) {
	cat := paperCatalog(t)
	q := analyze(t, cat, "select avg(S.E) from S where S.G = 1")
	out, err := Execute(q, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	// E over G=1: {2,4} → avg 3.0 as FLOAT.
	if out.Tuples[0].Atoms[0].Kind() != value.KindFloat || out.Tuples[0].Atoms[0].Float64() != 3.0 {
		t.Fatalf("avg = %v", out.Tuples[0].Atoms[0])
	}
}

// TestDifferentialScalarAgg extends the random differential workload with
// scalar-aggregate predicates.
func TestDifferentialScalarAgg(t *testing.T) {
	iters := 250
	if testing.Short() {
		iters = 40
	}
	funcs := []string{"count(*)", "count(%s)", "sum(%s)", "avg(%s)", "min(%s)", "max(%s)"}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(42_000_000 + seed)))
		cat := randCatalog(t, rng)
		g := &queryGen{rng: rng}

		// Outer block with a scalar-aggregate predicate (and sometimes a
		// second, quantified one).
		alias := g.nextAlias()
		child := g.nextAlias()
		fn := funcs[rng.Intn(len(funcs))]
		if strings.Contains(fn, "%s") {
			fn = fmt.Sprintf(fn, child+"."+genCols[rng.Intn(len(genCols))])
		}
		corr := ""
		if rng.Intn(2) == 0 {
			corr = fmt.Sprintf(" where %s.%s = %s.%s",
				child, genCols[rng.Intn(len(genCols))],
				alias, genCols[rng.Intn(len(genCols))])
		}
		extra := ""
		if rng.Intn(3) == 0 {
			extra = " and " + g.linkPredicate(alias, nil, 0)
		}
		src := fmt.Sprintf("select %s.%s from %s %s where %s.%s %s (select %s from %s %s%s)%s",
			alias, genCols[rng.Intn(len(genCols))],
			genTables[rng.Intn(len(genTables))], alias,
			alias, genCols[rng.Intn(len(genCols))],
			genOps[rng.Intn(len(genOps))],
			fn, genTables[rng.Intn(len(genTables))], child, corr, extra)

		sel, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse %q: %v", seed, src, err)
		}
		q, err := sql.Analyze(sel, cat)
		if err != nil {
			t.Fatalf("seed %d: analyze %q: %v", seed, src, err)
		}
		want, err := naive.Evaluate(q)
		if err != nil {
			t.Fatalf("seed %d: reference %q: %v", seed, src, err)
		}
		for name, opt := range optionMatrix {
			got, err := Execute(q, opt)
			if err != nil {
				t.Fatalf("seed %d (%s): %q: %v", seed, name, src, err)
			}
			if !got.EqualSet(want) {
				t.Fatalf("seed %d (%s): differs for\n  %s\nreference:\n%s\ngot:\n%s",
					seed, name, src, want, got)
			}
		}
		nat, err := native.Execute(q)
		if err != nil {
			t.Fatalf("seed %d (native): %q: %v", seed, src, err)
		}
		if !nat.EqualSet(want) {
			t.Fatalf("seed %d (native): differs for\n  %s\nreference:\n%s\ngot:\n%s",
				seed, src, want, nat)
		}
	}
}
