package core

import (
	"nra/internal/obsv"
	optpkg "nra/internal/opt"
)

// This file is the bridge between a finished trace and the planner's
// introspection surfaces: EXPLAIN ANALYZE's operator table is read back
// from the trace's plan-level spans, and every estimate-carrying span
// feeds one q-error observation into the estimator's accuracy histogram
// (opt.Accuracy) and the process metrics registry.

// planOpStats extracts EXPLAIN ANALYZE's operator rows from a finished
// trace. Plan spans are recorded strictly sequentially (each one ends
// before the next begins — see planner.begin/done), so the pre-order
// walk visits them in execution order and the result matches the
// operator log the planner produced before spans existed, row for row.
func planOpStats(rec *obsv.SpanRecord) []OpStat {
	var out []OpStat
	rec.Walk(func(s *obsv.SpanRecord) {
		if s.Kind != obsv.KindPlan {
			return
		}
		out = append(out, OpStat{Op: s.Op, Est: s.EstRows, Act: int(s.RowsOut)})
	})
	return out
}

// feedEstimates closes the estimator's feedback loop: one q-error
// observation per plan span that carried a cardinality estimate, into
// both the process-wide opt.Accuracy histogram (the re-ANALYZE drift
// signal) and the metrics registry.
func feedEstimates(rec *obsv.SpanRecord, reg *obsv.Registry) {
	rec.Walk(func(s *obsv.SpanRecord) {
		if s.Kind != obsv.KindPlan || s.EstRows < 0 {
			return
		}
		qe := optpkg.QError(s.EstRows, int(s.RowsOut))
		optpkg.Accuracy.Note(qe)
		reg.ObserveQError(qe)
	})
}
