package core

import (
	"strings"
	"testing"
)

// TestVectorizedMatchesSerial demands byte-identical output — same
// rows, same order — between the row engine and the batch engine on
// every linking-operator shape: the batch operators are a pure
// physical rewrite, so the serial row engine is their parity oracle.
func TestVectorizedMatchesSerial(t *testing.T) {
	cat := paperCatalog(t)
	queries := map[string]string{
		"exists": `select R.A, R.D from R where exists
			(select * from S where S.G = R.D)`,
		"not-exists": `select R.A, R.D from R where not exists
			(select * from S where S.G = R.D and S.H > 4)`,
		"in": `select R.A, R.D from R where R.B in
			(select S.E from S where S.G = R.D)`,
		"not-in": `select R.A, R.D from R where R.B not in
			(select S.E from S where S.G = R.D)`,
		"lt-some": `select R.A, R.D from R where R.A < some
			(select S.H from S where S.G = R.D)`,
		"gt-all": `select R.A, R.D from R where R.A > all
			(select T.J from T where T.K = R.C)`,
		"chain": `select R.A, R.D from R where R.A < some
			(select S.E from S where S.G = R.D and not exists
				(select * from T where T.K = S.I))`,
		"query-q": queryQ,
		"uncorrelated-not-in": `select R.A, R.D from R where R.B not in
			(select S.E from S where S.F = 5)`,
		"scalar-agg": `select R.A, R.D from R where R.A >
			(select max(S.E) from S where S.G = R.D)`,
	}
	for name, src := range queries {
		q := analyze(t, cat, src)
		want, err := Execute(q, Optimized())
		if err != nil {
			t.Fatalf("%s: row engine: %v", name, err)
		}
		vopt := Optimized()
		vopt.Vectorized = true
		got, err := Execute(q, vopt)
		if err != nil {
			t.Fatalf("%s: vectorized: %v", name, err)
		}
		if err := sameSequence(got, want); err != nil {
			t.Errorf("%s: vectorized output differs from row engine: %v", name, err)
		}
	}
}

// TestExplainVectorized checks the plan annotations: the header line,
// the per-operator [batch] labels, and the gate's "disabled" verdict
// when vectorization is combined with an incompatible physical knob.
func TestExplainVectorized(t *testing.T) {
	cat := paperCatalog(t)
	q := analyze(t, cat, `select R.A, R.D from R where R.B in
		(select S.E from S where S.G = R.D)`)

	vopt := Optimized()
	vopt.Vectorized = true
	plan, err := Explain(q, vopt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "vectorized: batch-at-a-time kernels") {
		t.Errorf("plan lacks the vectorized header:\n%s", plan)
	}
	if !strings.Contains(plan, "[batch]") {
		t.Errorf("plan lacks a [batch] operator annotation:\n%s", plan)
	}

	par := vopt
	par.Parallelism = 4
	plan, err = Explain(q, par)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "vectorized: requested but disabled (partitioned parallelism requested)") {
		t.Errorf("parallel plan does not report the closed gate:\n%s", plan)
	}

	budget := vopt
	budget.MemoryBudget = 64 << 10
	plan, err = Explain(q, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "vectorized: requested but disabled (memory budget set") {
		t.Errorf("budgeted plan does not report the closed gate:\n%s", plan)
	}
}
