package core

import (
	"strings"
	"testing"

	"nra/internal/naive"
	"nra/internal/tpch"
	"nra/internal/value"
)

// parityQueries is the query set the plan-parity tests run: every linking
// operator, both correlation styles, and the paper's nested Query Q.
var parityQueries = []string{
	queryQ,
	"select A, B from R where A > 1",
	"select R.A, S.E from R, S where R.D = S.G and S.F = 5",
	"select B from R where exists (select * from S where S.G = R.D)",
	"select B from R where not exists (select * from S where S.G = R.D)",
	"select B from R where R.B in (select S.E from S where S.G = R.D)",
	"select B from R where R.B not in (select S.E from S where S.G = R.D)",
	"select B from R where R.A > all (select S.E from S where S.G = R.D)",
	"select B from R where R.A < some (select S.E from S where S.G = R.D)",
	"select B from R where R.B in (select S.E from S)",
	"select B from R where R.A > (select max(T.J) from T where T.K = R.C)",
}

func heuristicOptions() Options {
	opt := Optimized()
	opt.UseStats = false
	opt.CostBased = false
	return opt
}

// TestPlanParityNoStats is the graceful-degradation guarantee: with
// UseStats/CostBased on but no statistics collected, the planner must
// reproduce the heuristic planner's behaviour exactly — the same operator
// trace and the same tuples in the same order.
func TestPlanParityNoStats(t *testing.T) {
	for _, src := range parityQueries {
		cat := paperCatalog(t) // fresh catalog: no table has statistics
		q := analyze(t, cat, src)

		var heurTrace, costTrace strings.Builder
		heurOpt := heuristicOptions()
		heurOpt.Trace = &heurTrace
		costOpt := Optimized() // UseStats + CostBased on
		costOpt.Trace = &costTrace

		heur, err := Execute(q, heurOpt)
		if err != nil {
			t.Fatalf("heuristic %q: %v", src, err)
		}
		cost, err := Execute(q, costOpt)
		if err != nil {
			t.Fatalf("cost-based %q: %v", src, err)
		}
		if heurTrace.String() != costTrace.String() {
			t.Errorf("traces diverge without stats for %q:\nheuristic:\n%s\ncost-based:\n%s",
				src, heurTrace.String(), costTrace.String())
		}
		if heur.Len() != cost.Len() {
			t.Fatalf("%q: %d vs %d tuples", src, heur.Len(), cost.Len())
		}
		for i := range heur.Tuples {
			if heur.Tuples[i].Key() != cost.Tuples[i].Key() {
				t.Fatalf("%q: tuple %d differs", src, i)
			}
		}
	}
}

// TestExplainParityNoStats: without statistics the only EXPLAIN difference
// may be the trailing "statistics: absent" note.
func TestExplainParityNoStats(t *testing.T) {
	cat := paperCatalog(t)
	q := analyze(t, cat, queryQ)
	heur, err := Explain(q, heuristicOptions())
	if err != nil {
		t.Fatal(err)
	}
	cost, err := Explain(q, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(cost, "\n") {
		if strings.HasPrefix(line, "statistics:") {
			continue
		}
		kept = append(kept, line)
	}
	if strings.Join(kept, "\n") != heur {
		t.Errorf("EXPLAIN diverges without stats:\nheuristic:\n%s\ncost-based:\n%s", heur, cost)
	}
}

// TestCostBasedCorrectness: with fresh statistics the cost-based planner
// may pick different physical plans (edge order, rewrite gates, spills) —
// but every query must still return exactly the reference result.
func TestCostBasedCorrectness(t *testing.T) {
	for _, src := range parityQueries {
		cat := paperCatalog(t)
		cat.AnalyzeAll()
		q := analyze(t, cat, src)
		want, err := naive.Evaluate(q)
		if err != nil {
			t.Fatalf("reference %q: %v", src, err)
		}
		for name, opt := range map[string]Options{
			"costbased":    Optimized(),
			"costbased-p4": func() Options { o := Optimized(); o.Parallelism = 4; return o }(),
			"costbased-budget": func() Options {
				o := Optimized()
				o.MemoryBudget = 1 << 10 // force planned + reactive spills
				return o
			}(),
		} {
			got, err := Execute(q, opt)
			if err != nil {
				t.Fatalf("%s %q: %v", name, src, err)
			}
			if !got.EqualSet(want) {
				t.Errorf("%s: wrong result for %q:\nwant (%d rows):\n%s\ngot (%d rows):\n%s",
					name, src, want.Len(), want, got.Len(), got)
			}
		}
	}
}

// TestStaleStatsFallBack: DML invalidates statistics, and the planner must
// then degrade to heuristic behaviour (estimator absent) rather than plan
// from stale numbers.
func TestStaleStatsFallBack(t *testing.T) {
	cat := paperCatalog(t)
	cat.AnalyzeAll()
	q := analyze(t, cat, queryQ)
	p, err := newPlanner(q, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if p.est == nil {
		t.Fatal("estimator absent despite fresh stats on all tables")
	}

	if _, err := cat.Delete("S", []value.Value{value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	q2 := analyze(t, cat, queryQ)
	p2, err := newPlanner(q2, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if p2.est != nil {
		t.Fatal("estimator still active though S's statistics are stale")
	}
	if !strings.Contains(p2.statsNote, "absent or stale") {
		t.Fatalf("statsNote = %q", p2.statsNote)
	}
}

// TestParallelDegreeReduced: on inputs far below the partitioning
// threshold the cost-based planner runs serially even when parallelism
// was requested; the heuristic planner takes the request at face value.
func TestParallelDegreeReduced(t *testing.T) {
	cat := paperCatalog(t)
	cat.AnalyzeAll()
	q := analyze(t, cat, queryQ)

	opt := Optimized()
	opt.Parallelism = 4
	p, err := newPlanner(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.par(); got != 1 {
		t.Fatalf("cost-based degree on tiny input = %d, want 1", got)
	}

	heur := heuristicOptions()
	heur.Parallelism = 4
	ph, err := newPlanner(q, heur)
	if err != nil {
		t.Fatal(err)
	}
	if got := ph.par(); got != 4 {
		t.Fatalf("heuristic degree = %d, want the requested 4", got)
	}
}

// TestExplainAnalyzeOutput: EXPLAIN ANALYZE must print the per-operator
// estimated vs actual row counts and the resource accounting.
func TestExplainAnalyzeOutput(t *testing.T) {
	cat := paperCatalog(t)
	cat.AnalyzeAll()
	q := analyze(t, cat, "select B from R where R.B in (select S.E from S where S.G = R.D)")
	out, err := ExplainAnalyze(q, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"analyze:", "est rows", "act rows", "q-error",
		"reduce T1 (R)", "peak tracked memory:",
		"statistics: fresh on all 2 tables",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
}

// tpchQErrorQueries are checked at TPC-H scale 0.01: the estimator's
// q-error (max(est,act)/min(est,act), both clamped to one row) must stay
// within a fixed factor on every operator that carries an estimate.
var tpchQErrorQueries = []string{
	`select o_orderkey from orders
	 where o_totalprice > all (select l_extendedprice from lineitem
	       where l_orderkey = o_orderkey and l_shipdate < l_commitdate)`,
	`select c_name from customer
	 where exists (select * from orders where o_custkey = c_custkey)`,
	`select c_name from customer
	 where c_custkey not in (select o_custkey from orders where o_totalprice > 50000)`,
	`select s_name from supplier
	 where s_suppkey in (select ps_suppkey from partsupp where ps_availqty > 100)`,
}

func TestTPCHQError(t *testing.T) {
	if testing.Short() {
		t.Skip("TPC-H generation in -short mode")
	}
	cat, err := tpch.Generate(tpch.Scale(0.01))
	if err != nil {
		t.Fatal(err)
	}
	cat.AnalyzeAll()
	const maxQ = 64.0
	for _, src := range tpchQErrorQueries {
		q := analyze(t, cat, src)
		_, ops, _, err := ExecuteAnalyzed(q, Optimized())
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		estimated := 0
		for _, o := range ops {
			if o.Est < 0 {
				continue
			}
			estimated++
			if qe := qError(o.Est, o.Act); qe > maxQ {
				t.Errorf("%q: operator %q q-error %.1f (est %.0f, act %d) exceeds %.0f",
					src, o.Op, qe, o.Est, o.Act, maxQ)
			}
		}
		if estimated == 0 {
			t.Errorf("%q: no operator carried an estimate", src)
		}
	}
}

// TestBuildSideSwap: with statistics active the block-reduction hash
// join builds on the smaller input; the result must not change.
func TestBuildSideSwap(t *testing.T) {
	cat := paperCatalog(t)
	cat.AnalyzeAll()
	q := analyze(t, cat, "select R.A, S.E from R, S where R.D = S.G")
	want, err := naive.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}

	var tr strings.Builder
	opt := Optimized()
	opt.Trace = &tr
	got, err := Execute(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	// R (5 rows) accumulates first and is smaller than S (6 rows), so it
	// moves to the build side.
	if !strings.Contains(tr.String(), "build side swapped") {
		t.Errorf("expected a build-side swap in the trace:\n%s", tr.String())
	}
	if !got.EqualSet(want) {
		t.Errorf("swapped join changed the result:\nwant:\n%s\ngot:\n%s", want, got)
	}

	// Without statistics, no swap.
	tr.Reset()
	heur := heuristicOptions()
	heur.Trace = &tr
	if _, err := Execute(q, heur); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tr.String(), "build side swapped") {
		t.Error("heuristic planner must not swap build sides")
	}
}
