package core

import (
	"fmt"
	"strings"

	"nra/internal/algebra"
	"nra/internal/opt"
	"nra/internal/sql"
)

// Explain renders the tree expression of §4.1 (the paper's Figure 3(a))
// for an analyzed query, annotated with the execution strategy the given
// options select.
func Explain(q *sql.Query, opt Options) (string, error) {
	p, err := newPlanner(q, opt)
	if err != nil {
		return "", err
	}
	return p.explainString(), nil
}

// explainString renders the EXPLAIN text for an already-constructed
// planner — shared by Explain and the slow-query log, which captures the
// executed plan without re-planning.
func (p *planner) explainString() string {
	opt := p.opt
	q := p.q
	var b strings.Builder
	b.WriteString("tree expression (§4.1):\n")
	p.explainBlock(&b, q.Root, 0)

	b.WriteString("strategy: ")
	switch {
	case opt.BottomUp && firstOK(p.linearCorrelatedChain()):
		b.WriteString("bottom-up linear correlation (§4.2.3)")
	case opt.Fused && firstOK(p.fullyCorrelatedLinearChain()):
		b.WriteString("fully fused nest chain: one sort, one scan (§4.2.1)")
	case opt.Fused:
		b.WriteString("top-down outer joins + pipelined nest/linking selection (§4.2.2)")
	default:
		b.WriteString("top-down outer joins + materialised nest, then linking selection (Algorithm 1)")
	}
	b.WriteByte('\n')
	if opt.TwoValuedLogic {
		b.WriteString("  two-valued logic: NULL comparisons are FALSE; negative operators antijoin at strict leaves\n")
	}
	if opt.PositiveRewrite {
		b.WriteString("  positive linking operators rewritten to (semi)joins where pending operators allow (§4.2.5)\n")
		if p.setSem {
			b.WriteString("  set-semantics output (root DISTINCT): §4.2.5 inner-block duplicate elimination elided\n")
		}
	}
	if opt.NestPushdown {
		b.WriteString("  nest pushed below equi-joins on the nesting attributes (§4.2.4)\n")
	}
	if par := p.par(); par > 1 {
		fmt.Fprintf(&b, "parallelism: %d (partitioned hash-join build/probe; nest + linking selection per nest-key partition)\n", par)
	} else {
		b.WriteString("parallelism: 1 (serial operators)\n")
	}
	if opt.Vectorized {
		if reason := p.vecGate(); reason != "" {
			fmt.Fprintf(&b, "vectorized: requested but disabled (%s)\n", reason)
		} else {
			b.WriteString("vectorized: batch-at-a-time kernels (scan/filter/project, batched-probe hash join, fused nest + linking selection); shapes without a kernel fall back per operator\n")
			for _, n := range p.vecNotes {
				fmt.Fprintf(&b, "  vec: %s\n", n)
			}
		}
	}
	if opt.MemoryBudget > 0 {
		fmt.Fprintf(&b, "memory budget: %d bytes (hash-join builds degrade to chunked grace joins, pre-nest sorts to external merges, when working state exceeds it; results are identical)\n", opt.MemoryBudget)
	} else {
		b.WriteString("memory budget: unbounded (no operator spills)\n")
	}
	if opt.Timeout > 0 {
		fmt.Fprintf(&b, "timeout: %s (cancellation observed at operator boundaries; workers drained, spill files removed)\n", opt.Timeout)
	}
	if opt.UseStats && p.statsNote != "" {
		b.WriteString(p.statsNote)
		b.WriteByte('\n')
		for _, n := range p.planNotes {
			fmt.Fprintf(&b, "  cost: %s\n", n)
		}
	}
	return b.String()
}

// ExplainAnalyze executes the query and renders the EXPLAIN tree followed
// by a per-operator table joining the planner's cardinality estimates with
// the actual row counts observed during execution, and the run's resource
// accounting (peak tracked bytes, spill events).
func ExplainAnalyze(q *sql.Query, opt Options) (string, error) {
	plan, err := Explain(q, opt)
	if err != nil {
		return "", err
	}
	_, ops, st, err := ExecuteAnalyzed(q, opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(plan)
	b.WriteString("analyze:\n")
	opw := 8
	for _, o := range ops {
		if n := len([]rune(o.Op)); n > opw {
			opw = n
		}
	}
	fmt.Fprintf(&b, "  %-*s  %10s  %10s  %8s\n", opw, "operator", "est rows", "act rows", "q-error")
	for _, o := range ops {
		est, qe := "-", "-"
		if o.Est >= 0 {
			est = fmtRows(o.Est)
			qe = fmt.Sprintf("%.2f", qError(o.Est, o.Act))
		}
		fmt.Fprintf(&b, "  %-*s  %10s  %10d  %8s\n", opw, o.Op, est, o.Act, qe)
	}
	fmt.Fprintf(&b, "  peak tracked memory: %d bytes; spills: %d (%d bytes)\n",
		st.PeakBytes, st.Spills, st.SpillBytes)
	return b.String(), nil
}

// qError is opt.QError: the symmetric estimation-error factor
// max(est,act)/min(est,act) with both sides clamped to at least one row.
func qError(est float64, act int) float64 { return opt.QError(est, act) }

func firstOK[T any](_ T, ok bool) bool { return ok }

func (p *planner) explainBlock(b *strings.Builder, blk *sql.Block, depth int) {
	indent := strings.Repeat("  ", depth)
	var tables []string
	for _, bt := range blk.Tables {
		tables = append(tables, bt.Ref.Table)
	}
	fmt.Fprintf(b, "%sT%d: %s", indent, blk.ID+1, strings.Join(tables, " ⋈ "))
	if loc := exprStrings(blk.Local); len(loc) > 0 {
		fmt.Fprintf(b, "  [θ: %s]", strings.Join(loc, " AND "))
	}
	if cor := corrStrings(blk.Corr); len(cor) > 0 {
		fmt.Fprintf(b, "  [C: %s]", strings.Join(cor, " AND "))
	}
	if p.est != nil {
		fmt.Fprintf(b, "  [est %s rows]", fmtRows(p.card[blk.ID]))
	}
	if p.opt.Vectorized && p.vecGate() == "" {
		fmt.Fprintf(b, "  [%s]", p.reduceVecLabel(blk))
	}
	if lbl := p.segPruneLabel(blk); lbl != "" {
		fmt.Fprintf(b, "  [%s]", lbl)
	}
	b.WriteByte('\n')
	for _, l := range blk.Links {
		if p.antijoin2VLOK(blk, p.q.Root, l) {
			// The 2VL fast path: no linking operator remains — the edge
			// executes as a plain antijoin against the reduced child.
			fmt.Fprintf(b, "%s  ▷ antijoin T%d (2VL)", indent, l.Child.ID+1)
			if ee, ok := p.estEdge(l); ok {
				fmt.Fprintf(b, "  [est: keeps %.3g → %s rows]", ee.frac, fmtRows(ee.after))
			}
			b.WriteByte('\n')
			p.explainBlock(b, l.Child, depth+1)
			continue
		}
		mode := "σ"
		if !p.strictOK(blk, p.q.Root) {
			mode = "σ̄"
		}
		fmt.Fprintf(b, "%s  L: %s  (%s)", indent, linkString(l), mode)
		if ee, ok := p.estEdge(l); ok {
			fmt.Fprintf(b, "  [est: ⟕ %s rows, link keeps %.3g → %s rows]",
				fmtRows(ee.joined), ee.frac, fmtRows(ee.after))
		}
		if p.opt.Vectorized && p.vecGate() == "" {
			fmt.Fprintf(b, "  [⟕ %s]", p.linkJoinVecLabel(l.Child))
		}
		b.WriteByte('\n')
		p.explainBlock(b, l.Child, depth+1)
	}
}

// fmtRows renders an estimated cardinality compactly.
func fmtRows(f float64) string {
	if f < 0 {
		return "?"
	}
	if f < 10 {
		return fmt.Sprintf("%.2g", f)
	}
	return fmt.Sprintf("%.0f", f)
}

func linkString(l *sql.LinkEdge) string {
	switch l.Kind {
	case sql.Exists, sql.NotExists:
		return l.Kind.String()
	case sql.In, sql.NotIn:
		return fmt.Sprintf("%s %s", l.Pred.Left, l.Kind)
	case sql.CmpScalar:
		agg, _ := l.Child.Agg()
		arg := agg.Col
		if agg.Func == algebra.AggCountStar {
			arg = "*"
		}
		return fmt.Sprintf("%s %s %s(%s)", l.Pred.Left, l.Cmp, aggName(agg.Func), arg)
	default:
		q := "SOME"
		if l.Kind == sql.CmpAll {
			q = "ALL"
		}
		return fmt.Sprintf("%s %s%s", l.Pred.Left, l.Cmp, q)
	}
}

func aggName(f algebra.AggFunc) string {
	if f == algebra.AggCountStar {
		return "COUNT"
	}
	return f.String()
}

func exprStrings(es []sql.Expr) []string {
	out := make([]string, 0, len(es))
	for _, e := range es {
		out = append(out, e.String())
	}
	return out
}

func corrStrings(cs []sql.CorrPred) []string {
	out := make([]string, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.E.String())
	}
	return out
}
