// Package core implements the nested relational approach of Cao & Badia
// (SIGMOD 2005) for evaluating SQL queries with non-aggregate subqueries:
// the tree-expression construction and Algorithm 1 of §4.1, plus every
// optimization of §4.2 —
//
//	§4.2.1/4.2.2  fused single-pass nest + linking selection, and the
//	              fully fused nest chain for linear queries (one sort,
//	              one scan, all linking predicates);
//	§4.2.3        bottom-up evaluation of linearly correlated queries;
//	§4.2.4        nest push-down below the (outer) join;
//	§4.2.5        algebraic rewriting of positive linking operators into
//	              (semi)joins.
//
// The approach unnests a query top-down into a chain of left outer hash
// joins, then computes the linking predicates bottom-up with nest (υ) and
// the linking selection (σ / σ̄) — uniformly for every linking operator,
// any nesting depth, and with full SQL NULL semantics. No indexes are
// required.
package core

import (
	"errors"
	"fmt"
	"io"

	"nra/internal/exec"
	"nra/internal/iomodel"
	"nra/internal/relation"
	"nra/internal/sql"
)

// Options selects which §4.2 optimizations are applied. The zero value is
// the original approach of §4.1 (materialised nest, then linking
// selection — two passes per level).
type Options struct {
	// Fused pipelines nest with the adjacent linking selection in a single
	// pass (§4.2.2), and evaluates linear queries with one sort + one scan
	// over the whole join (§4.2.1).
	Fused bool
	// BottomUp processes linearly correlated queries from the innermost
	// block outward, keeping intermediate results small (§4.2.3).
	BottomUp bool
	// NestPushdown moves the nest below the outer join when the nesting
	// attributes equal the equi-join attributes (§4.2.4).
	NestPushdown bool
	// PositiveRewrite turns positive linking operators into (semi)joins
	// when no pending negative operator forbids it (§4.2.5).
	PositiveRewrite bool
	// AlwaysPad forces the pseudo-selection σ̄ even where the strict σ
	// would do; used by the equivalence tests.
	AlwaysPad bool
	// Parallelism is the degree of partitioned parallelism for the hash-
	// join and nest/linking-selection pipeline: joins hash-partition build
	// and probe across workers, and the fused nest + linking selection
	// runs per nest-key partition (see docs/PARALLELISM.md). Values ≤ 1
	// select the serial operators; results are byte-identical at every
	// degree. exec.DefaultParallelism() is the hardware-sized default.
	Parallelism int
	// Meter, when non-nil, accumulates the plan's modeled disk accesses
	// (sequential scan/write tuples; the nested relational approach never
	// performs random accesses) — see internal/iomodel.
	Meter *iomodel.Meter
	// Trace, when non-nil, receives a line per executed algebra operator
	// with input/output cardinalities — the paper's Temp1→Temp4
	// walkthrough for any query.
	Trace io.Writer
}

// Original returns the unoptimized §4.1 configuration.
func Original() Options { return Options{} }

// Optimized returns the fully optimized configuration.
func Optimized() Options {
	return Options{Fused: true, BottomUp: true, NestPushdown: true, PositiveRewrite: true}
}

// OptimizedParallel returns the fully optimized configuration with
// partitioned parallelism at the hardware's degree
// (exec.DefaultParallelism: NumCPU, overridable via NRA_PARALLELISM).
func OptimizedParallel() Options {
	opt := Optimized()
	opt.Parallelism = exec.DefaultParallelism()
	return opt
}

// ErrUnsupported reports a query shape the nested relational planner does
// not handle (the reference evaluator still does).
var ErrUnsupported = errors.New("core: unsupported query shape")

func unsupportedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUnsupported, fmt.Sprintf(format, args...))
}

// Execute runs an analyzed query with the nested relational approach.
func Execute(q *sql.Query, opt Options) (*relation.Relation, error) {
	p, err := newPlanner(q, opt)
	if err != nil {
		return nil, err
	}
	return p.run()
}

// Supported reports nil when the planner can evaluate q, or a wrapped
// ErrUnsupported explaining why not.
func Supported(q *sql.Query) error {
	_, err := newPlanner(q, Options{})
	return err
}
