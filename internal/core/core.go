// Package core implements the nested relational approach of Cao & Badia
// (SIGMOD 2005) for evaluating SQL queries with non-aggregate subqueries:
// the tree-expression construction and Algorithm 1 of §4.1, plus every
// optimization of §4.2 —
//
//	§4.2.1/4.2.2  fused single-pass nest + linking selection, and the
//	              fully fused nest chain for linear queries (one sort,
//	              one scan, all linking predicates);
//	§4.2.3        bottom-up evaluation of linearly correlated queries;
//	§4.2.4        nest push-down below the (outer) join;
//	§4.2.5        algebraic rewriting of positive linking operators into
//	              (semi)joins.
//
// The approach unnests a query top-down into a chain of left outer hash
// joins, then computes the linking predicates bottom-up with nest (υ) and
// the linking selection (σ / σ̄) — uniformly for every linking operator,
// any nesting depth, and with full SQL NULL semantics. No indexes are
// required.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"nra/internal/exec"
	"nra/internal/iomodel"
	"nra/internal/obsv"
	"nra/internal/relation"
	"nra/internal/sql"
)

// Options selects which §4.2 optimizations are applied. The zero value is
// the original approach of §4.1 (materialised nest, then linking
// selection — two passes per level).
type Options struct {
	// Fused pipelines nest with the adjacent linking selection in a single
	// pass (§4.2.2), and evaluates linear queries with one sort + one scan
	// over the whole join (§4.2.1).
	Fused bool
	// BottomUp processes linearly correlated queries from the innermost
	// block outward, keeping intermediate results small (§4.2.3).
	BottomUp bool
	// NestPushdown moves the nest below the outer join when the nesting
	// attributes equal the equi-join attributes (§4.2.4).
	NestPushdown bool
	// PositiveRewrite turns positive linking operators into (semi)joins
	// when no pending negative operator forbids it (§4.2.5).
	PositiveRewrite bool
	// AlwaysPad forces the pseudo-selection σ̄ even where the strict σ
	// would do; used by the equivalence tests.
	AlwaysPad bool
	// TwoValuedLogic evaluates the query under Libkin-style two-valued
	// logic ("Handling SQL Nulls with Two-Valued Logic"): every comparison
	// involving a NULL is FALSE, never Unknown, and NOT is classical.
	// Under 2VL the negative linking operators (NOT EXISTS, NOT IN, θ ALL)
	// are plain antijoins, which the planner exploits at strict leaves.
	// The one NULL the base data never held — SUM/AVG/MIN/MAX over an
	// empty subquery — keeps its 3VL Unknown, so on NULL-free data 2VL
	// and 3VL results coincide unconditionally (fuzzer-checked).
	TwoValuedLogic bool
	// UseStats lets the planner read the catalog's collected statistics
	// (catalog.Table.Analyze) for cardinality estimation. Estimation is
	// all-or-nothing: one table with absent or stale statistics disables
	// it for the whole query, so planning degrades to the heuristics and
	// reproduces their plans exactly.
	UseStats bool
	// CostBased lets the cardinality estimates steer physical decisions:
	// subquery processing order, the §4.2.5 semijoin and §4.2.4 push-down
	// gates, the partitioned-parallel degree (1 when the input is too
	// small to amortise the pool) and planned grace-join / external-sort
	// spilling against MemoryBudget. No effect without UseStats and fresh
	// statistics. Every choice is between result-equivalent plans.
	CostBased bool
	// Vectorized selects the batch-at-a-time operators (internal/vec)
	// for the hot path: vectorized scan→filter→project block reduction,
	// the batched-probe hash join, and the fused nest + linking
	// selection driven by a typed sort and group-offset arrays. Results
	// are byte-identical to the serial row operators — the row engine is
	// the parity oracle, enforced by tests and the differential fuzzer.
	// The batch operators apply only on the serial in-memory path: with
	// Parallelism > 1, a MemoryBudget, or fault Hooks the planner keeps
	// the row operators (batches neither partition nor spill), and any
	// operator whose shape has no batch kernel — nested inputs, non-equi
	// join conditions, predicates the kernel compiler rejects — falls
	// back to its row implementation per operator. EXPLAIN annotates
	// each operator [batch] or [row: reason].
	Vectorized bool
	// NoZoneMapPruning disables row-group pruning against columnar
	// segment zone maps on the vectorized scan path (docs/STORAGE.md).
	// Pruning never changes results — skipped groups are proven empty
	// under the predicate's 3VL truth set by the segment min/max/null
	// zone maps — so this switch exists for the storage ablation and for
	// debugging, not for correctness. No effect on row execution or on
	// catalogs without attached segments.
	NoZoneMapPruning bool
	// Parallelism is the degree of partitioned parallelism for the hash-
	// join and nest/linking-selection pipeline: joins hash-partition build
	// and probe across workers, and the fused nest + linking selection
	// runs per nest-key partition (see docs/PARALLELISM.md). Values ≤ 1
	// select the serial operators; results are byte-identical at every
	// degree. exec.DefaultParallelism() is the hardware-sized default.
	Parallelism int
	// Meter, when non-nil, accumulates the plan's modeled disk accesses
	// (sequential scan/write tuples; the nested relational approach never
	// performs random accesses) — see internal/iomodel.
	Meter *iomodel.Meter
	// Trace, when non-nil, receives a line per executed algebra operator
	// with input/output cardinalities — the paper's Temp1→Temp4
	// walkthrough for any query.
	Trace io.Writer
	// MemoryBudget bounds the bytes of operator working state (hash-join
	// build sides, pre-nest sort copies) a query may hold in memory;
	// 0 = unbounded. Operators exceeding it degrade gracefully to spill
	// files with byte-identical results — see docs/ROBUSTNESS.md.
	MemoryBudget int64
	// MemPool, when non-nil, charges the query's working-state
	// reservations against a budget shared with other concurrent queries
	// (the serving layer's pooled admission control) in addition to any
	// per-query MemoryBudget; reservations the pool refuses take the
	// spill path. See exec.MemPool and docs/SERVICE.md.
	MemPool *exec.MemPool
	// Timeout aborts the query with context.DeadlineExceeded this long
	// after Execute starts; 0 = no deadline.
	Timeout time.Duration
	// Ctx, when non-nil, cancels the query when the context is cancelled.
	Ctx context.Context
	// SpillDir hosts the query's spill files ("" = os.TempDir()); the
	// per-query spill directory is always removed when Execute returns.
	SpillDir string
	// Hooks installs fault-injection interception points in every operator
	// (see internal/faultinject); nil in production.
	Hooks *exec.FaultHooks
	// Stats, when non-nil, receives the query's resource accounting (peak
	// working-state bytes, spill events/bytes) when Execute returns.
	Stats *exec.Stats
	// Tracer, when non-nil, records the query's per-operator span tree
	// (see internal/obsv). Execute finishes the tracer before returning;
	// read the tree with Tracer.Finish (idempotent). Nil disables tracing
	// at zero per-tuple cost. Tracing never changes plan or physical-path
	// decisions. ExecuteAnalyzed and a non-nil SlowLog create a private
	// tracer when this is nil.
	Tracer *obsv.Tracer
	// SlowQuery is the slow-query-log threshold: a query whose wall time
	// reaches it is recorded to SlowLog. 0 logs every query (when SlowLog
	// is set).
	SlowQuery time.Duration
	// SlowLog, when non-nil, receives a structured JSON-lines entry —
	// plan, trace tree, est-vs-actual rows, resource stats — for every
	// query at least SlowQuery slow.
	SlowLog *obsv.SlowLog
	// Label identifies the query in the slow-query log (usually its SQL
	// text).
	Label string
	// SessionID and QueryID attribute the query to a serving-layer
	// session and its monotonically increasing per-session query counter.
	// They tag the trace's root span and the slow-query-log entry, so
	// concurrent queries' records stay attributable; zero values leave
	// the records untagged.
	SessionID string
	// QueryID is the per-session monotonic query counter (see SessionID).
	QueryID uint64
}

// Original returns the unoptimized §4.1 configuration.
func Original() Options { return Options{} }

// Optimized returns the fully optimized configuration. Cost-based
// planning is on by default; it only takes effect on queries whose
// tables all carry fresh statistics.
func Optimized() Options {
	return Options{Fused: true, BottomUp: true, NestPushdown: true, PositiveRewrite: true,
		UseStats: true, CostBased: true}
}

// OptimizedParallel returns the fully optimized configuration with
// partitioned parallelism at the hardware's degree
// (exec.DefaultParallelism: NumCPU, overridable via NRA_PARALLELISM).
func OptimizedParallel() Options {
	opt := Optimized()
	opt.Parallelism = exec.DefaultParallelism()
	return opt
}

// ErrUnsupported reports a query shape the nested relational planner does
// not handle (the reference evaluator still does).
var ErrUnsupported = errors.New("core: unsupported query shape")

func unsupportedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUnsupported, fmt.Sprintf(format, args...))
}

// Execute runs an analyzed query with the nested relational approach.
// The query runs under a per-query exec.ExecContext built from the
// options' governance knobs (Ctx/Timeout/MemoryBudget/Hooks); whatever
// the outcome — success, error, cancellation, panic-turned-error — the
// context is closed before returning, which stops its goroutines and
// removes any spill files it created.
func Execute(q *sql.Query, opt Options) (*relation.Relation, error) {
	out, _, err := executeLogged(q, opt, nil)
	return out, err
}

// OpStat is one executed operator with its planned cardinality estimate
// (EXPLAIN ANALYZE's per-operator row).
type OpStat struct {
	Op  string  // operator label, e.g. "reduce T2 (lineitem)"
	Est float64 // estimated output rows; < 0 when no estimate was available
	Act int     // actual output rows
}

// ExecuteAnalyzed runs the query while recording, for every executed
// operator, its estimated and actual output cardinality, plus the
// query's resource accounting — the data behind EXPLAIN ANALYZE.
func ExecuteAnalyzed(q *sql.Query, opt Options) (*relation.Relation, []OpStat, exec.Stats, error) {
	var log []OpStat
	var st exec.Stats
	opt.Stats = &st
	out, _, err := executeLogged(q, opt, &log)
	return out, log, st, err
}

func executeLogged(q *sql.Query, opt Options, log *[]OpStat) (*relation.Relation, *planner, error) {
	p, err := newPlanner(q, opt)
	if err != nil {
		return nil, nil, err
	}
	// EXPLAIN ANALYZE and the slow-query log are both span consumers: when
	// the caller supplied no tracer, they get a private one.
	tr := opt.Tracer
	if tr == nil && (log != nil || opt.SlowLog != nil) {
		tr = obsv.NewTracer()
	}
	start := time.Now()
	if tr != nil && (opt.SessionID != "" || opt.QueryID != 0) {
		tr.Tag(opt.SessionID, opt.QueryID)
	}
	ec := exec.NewExecContext(opt.Ctx, exec.Limits{
		MemoryBudget: opt.MemoryBudget,
		Timeout:      opt.Timeout,
		TempDir:      opt.SpillDir,
		Hooks:        opt.Hooks,
		Tracer:       tr,
		MemPool:      opt.MemPool,
	})
	p.ec = ec
	if len(p.spillOps) > 0 {
		ec.PlanSpill(p.spillOps...)
	}
	out, err := p.run()
	st := ec.Stats()
	if opt.Stats != nil {
		*opt.Stats = st
	}
	if cerr := ec.Close(); err == nil {
		err = cerr
	}
	elapsed := time.Since(start)
	reg := obsv.Default()
	slow := opt.SlowLog != nil && elapsed >= opt.SlowQuery
	reg.NoteQuery(elapsed, err, slow)
	if tr != nil {
		rec := tr.Finish()
		reg.ObserveTrace(rec)
		feedEstimates(rec, reg)
		if log != nil {
			*log = planOpStats(rec)
		}
		if slow {
			entry := &obsv.SlowLogEntry{
				Time:       time.Now(),
				Query:      opt.Label,
				Session:    opt.SessionID,
				QueryID:    opt.QueryID,
				DurationMS: float64(elapsed) / float64(time.Millisecond),
				Plan:       p.explainString(),
				PeakBytes:  st.PeakBytes,
				Spills:     st.Spills,
				SpillBytes: st.SpillBytes,
				Trace:      rec,
			}
			if err != nil {
				entry.Error = err.Error()
			}
			_ = opt.SlowLog.Record(entry)
		}
	}
	return out, p, err
}

// Supported reports nil when the planner can evaluate q, or a wrapped
// ErrUnsupported explaining why not.
func Supported(q *sql.Query) error {
	_, err := newPlanner(q, Options{})
	return err
}
