package core

import (
	"nra/internal/algebra"
	"nra/internal/exec"
	"nra/internal/relation"
	"nra/internal/sql"
)

// chainBlocks returns the blocks of a nested *linear* query as a slice,
// root first — or ok=false when any block has more than one subquery
// (a nested tree query) or an Other-bucket conjunct.
func (p *planner) chainBlocks() ([]*sql.Block, bool) {
	var chain []*sql.Block
	b := p.q.Root
	for {
		chain = append(chain, b)
		if len(b.Links) == 0 {
			return chain, len(b.Children) == 0 || len(b.Links) == len(b.Children)
		}
		if len(b.Links) != 1 || len(b.Children) != 1 {
			return nil, false
		}
		b = b.Links[0].Child
	}
}

// fullyCorrelatedLinearChain reports a linear query in which every
// subquery block is correlated (so the top-down unnesting is a chain of
// left outer joins with no virtual Cartesian products) — the §4.2.1 fused
// chain applies.
func (p *planner) fullyCorrelatedLinearChain() ([]*sql.Block, bool) {
	chain, ok := p.chainBlocks()
	if !ok || len(chain) < 2 {
		return nil, false
	}
	for _, b := range chain[1:] {
		if len(b.Corr) == 0 {
			return nil, false
		}
	}
	return chain, true
}

// linearCorrelatedChain recognises §4.2.3's *linear correlation*: a
// linear query in which each inner block is correlated only to its
// immediate parent, and each linking attribute belongs to the immediate
// parent (or is a constant). Such queries evaluate bottom-up.
func (p *planner) linearCorrelatedChain() ([]*sql.Block, bool) {
	chain, ok := p.fullyCorrelatedLinearChain()
	if !ok {
		return nil, false
	}
	for i, b := range chain {
		for _, cp := range b.Corr {
			for outer := range cp.Outers {
				if b.Parent == nil || outer != b.Parent.ID {
					return nil, false
				}
			}
		}
		if len(b.Links) == 1 {
			if c, isCol := b.Links[0].Pred.Left.(*sql.ColRef); isCol {
				r, okRes := p.q.Resolve(c)
				if !okRes || r.Block != chain[i] {
					return nil, false
				}
			}
		}
	}
	return chain, true
}

// runBottomUp implements §4.2.3: process a linearly correlated query from
// the innermost block outward. At each level the (small) set of already-
// qualified child tuples is outer-joined to the parent block, nested, and
// reduced by a strict linking selection — only qualified tuples ever
// participate in further joins.
func (p *planner) runBottomUp(chain []*sql.Block) (*relation.Relation, error) {
	p.trace("bottom-up evaluation of a linearly correlated chain (§4.2.3)")
	res, err := p.reduce(chain[len(chain)-1])
	if err != nil {
		return nil, err
	}
	for i := len(chain) - 2; i >= 0; i-- {
		b, c := chain[i], chain[i+1]
		edge := b.Links[0]
		rel, err := p.reduce(b)
		if err != nil {
			return nil, err
		}
		cond, err := p.corrCond(c)
		if err != nil {
			return nil, err
		}
		sp := p.begin("outer join T%d (bottom-up §4.2.3)", c.ID+1)
		joined, err := p.outerJoin(rel, res, cond)
		if err != nil {
			return nil, err
		}
		p.seq(rel.Len(), res.Len(), joined.Len())
		p.done(sp, -1, joined.Len())
		subName := "sub"
		pred, err := p.linkPred(edge, subName, c)
		if err != nil {
			return nil, err
		}
		by := p.blockCols(joined, b.ID)
		if p.opt.Fused {
			spec, err := p.linkSpec(joined, pred, c)
			if err != nil {
				return nil, err
			}
			sp := p.begin("nest+link L%d (bottom-up)", c.ID+1)
			res, err = p.nestLink(joined, p.keys[b.ID], by, spec, nil)
			if err != nil {
				return nil, err
			}
			p.seq(3*joined.Len(), res.Len())
			p.done(sp, p.estAfter(edge), res.Len())
			continue
		}
		keep := p.blockCols(joined, c.ID)
		nested, err := algebra.Nest(joined, by, keep, subName)
		if err != nil {
			return nil, err
		}
		selected, err := algebra.LinkSelect(nested, pred)
		if err != nil {
			return nil, err
		}
		p.seq(2*joined.Len(), nested.Len(), selected.Len())
		res, err = algebra.DropSub(selected, subName)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runFusedChain implements §4.2.1: build the full left-deep outer join of
// the chain, then evaluate every linking predicate with a single sort and
// a single scan (only the deepest nest physically reorders tuples; all
// others are conceptual).
func (p *planner) runFusedChain(chain []*sql.Block) (*relation.Relation, error) {
	rel, err := p.reduce(chain[0])
	if err != nil {
		return nil, err
	}
	for _, c := range chain[1:] {
		tc, err := p.reduce(c)
		if err != nil {
			return nil, err
		}
		cond, err := p.corrCond(c)
		if err != nil {
			return nil, err
		}
		relLen := rel.Len()
		sp := p.begin("outer join T%d (fused chain)", c.ID+1)
		rel, err = p.outerJoin(rel, tc, cond)
		if err != nil {
			return nil, err
		}
		p.seq(relLen, tc.Len(), rel.Len())
		p.done(sp, p.estJoined(incomingLink(c)), rel.Len())
	}
	levels := make([]exec.ChainLevel, len(chain)-1)
	for i := 0; i < len(chain)-1; i++ {
		b, c := chain[i], chain[i+1]
		pred, err := p.linkPred(b.Links[0], "chain", c)
		if err != nil {
			return nil, err
		}
		spec, err := p.linkSpec(rel, pred, c)
		if err != nil {
			return nil, err
		}
		levels[i] = exec.ChainLevel{KeyCols: p.keys[b.ID], Spec: spec}
	}
	sp := p.begin("nest+link chain (%d levels, §4.2.1)", len(levels))
	out, err := p.nestLinkChain(rel, levels, p.blockCols(rel, chain[0].ID))
	if err != nil {
		return nil, err
	}
	p.seq(3*rel.Len(), out.Len()) // one sort + one scan for every level
	p.trace("rel := NestLinkChain(%d levels)  (§4.2.1 fused chain, %d → %d tuples)", len(levels), rel.Len(), out.Len())
	p.done(sp, p.estAfter(chain[0].Links[0]), out.Len())
	return out, nil
}
