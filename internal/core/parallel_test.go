package core

import (
	"fmt"
	"testing"

	"nra/internal/relation"
)

// TestParallelMatchesSerialMatrix asserts that partitioned-parallel
// execution at P ∈ {2, 4, 8} returns tuple-for-tuple identical results
// (same tuples, same order) to serial execution (P = 1) for all six
// linking operators — EXISTS, NOT EXISTS, IN, NOT IN, θ SOME and θ ALL —
// on the paper's Query 1–3 shapes over the NULL-bearing Figure 1
// catalog. NOT IN with NULLs is the classic partition-merge trap: a
// NULL in any group member must veto the whole group, so a group split
// across partitions would silently flip the verdict.
func TestParallelMatchesSerialMatrix(t *testing.T) {
	cat := paperCatalog(t)
	queries := map[string]string{
		// The six linking operators, each over NULL-bearing attributes.
		"exists": `select R.A, R.D from R where exists
			(select * from S where S.G = R.D)`,
		"not-exists": `select R.A, R.D from R where not exists
			(select * from S where S.G = R.D and S.H > 4)`,
		"in": `select R.A, R.D from R where R.B in
			(select S.E from S where S.G = R.D)`,
		"not-in": `select R.A, R.D from R where R.B not in
			(select S.E from S where S.G = R.D)`,
		"lt-some": `select R.A, R.D from R where R.A < some
			(select S.H from S where S.G = R.D)`,
		"gt-all": `select R.A, R.D from R where R.A > all
			(select T.J from T where T.K = R.C)`,
		// Query 1 shape: one level, correlated θ ALL.
		"q1-shape": `select R.B, R.D from R where R.A > all
			(select S.E from S where S.G = R.D and S.F = 5)`,
		// Query 2 shape: θ SOME over a block with a nested NOT EXISTS.
		"q2-shape": `select R.A, R.D from R where R.A < some
			(select S.E from S where S.G = R.D and not exists
				(select * from T where T.K = S.I))`,
		// Query 3 shape: θ ALL with double correlation (inner block
		// correlated to both enclosing levels) — the paper's Query Q.
		"q3-shape": queryQ,
		// Uncorrelated subquery and scalar aggregate round out the planner
		// paths (single-table nest vs. outer-join nest; agg linking).
		"uncorrelated-not-in": `select R.A, R.D from R where R.B not in
			(select S.E from S where S.F = 5)`,
		"scalar-agg": `select R.A, R.D from R where R.A >
			(select max(S.E) from S where S.G = R.D)`,
	}
	bases := map[string]Options{
		"optimized": Optimized(),
		"original":  Original(),
	}
	for qname, src := range queries {
		q := analyze(t, cat, src)
		for bname, base := range bases {
			serialOpt := base
			serialOpt.Parallelism = 1
			want, err := Execute(q, serialOpt)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", qname, bname, err)
			}
			for _, p := range []int{2, 4, 8} {
				opt := base
				opt.Parallelism = p
				got, err := Execute(q, opt)
				if err != nil {
					t.Errorf("%s/%s P=%d: %v", qname, bname, p, err)
					continue
				}
				if err := sameSequence(got, want); err != nil {
					t.Errorf("%s/%s P=%d differs from serial: %v", qname, bname, p, err)
				}
			}
		}
	}
}

// sameSequence checks tuple-for-tuple identity, order included — the
// determinism guarantee is stronger than set equality.
func sameSequence(got, want *relation.Relation) error {
	if got.Len() != want.Len() {
		return fmt.Errorf("%d tuples, want %d", got.Len(), want.Len())
	}
	for i := range want.Tuples {
		if got.Tuples[i].Key() != want.Tuples[i].Key() {
			return fmt.Errorf("tuple %d: got %v, want %v", i, got.Tuples[i], want.Tuples[i])
		}
	}
	return nil
}

// TestParallelExplain checks the Parallelism knob surfaces in EXPLAIN.
func TestParallelExplain(t *testing.T) {
	cat := paperCatalog(t)
	q := analyze(t, cat, queryQ)

	opt := Optimized()
	out, err := Explain(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := "parallelism: 1 (serial operators)"; !containsLine(out, want) {
		t.Errorf("serial explain missing %q:\n%s", want, out)
	}

	opt.Parallelism = 4
	out, err = Explain(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := "parallelism: 4"; !containsLine(out, want) {
		t.Errorf("parallel explain missing %q:\n%s", want, out)
	}
}

func containsLine(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
