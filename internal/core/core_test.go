package core

import (
	"strings"
	"testing"

	"nra/internal/catalog"
	"nra/internal/naive"
	"nra/internal/relation"
	"nra/internal/sql"
)

// paperCatalog reconstructs the spirit of Figure 1's base relations R, S,
// T (the published scan of the figure is partly illegible, so values are
// chosen to exercise the same phenomena: NULLs in linked and correlated
// attributes, empty subquery sets, and failing ALL groups).
func paperCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	r := relation.MustFromRows("R", []string{"A", "B", "C", "D"},
		[]any{1, 2, 3, 1},
		[]any{5, 6, 7, 2},
		[]any{10, 2, 3, 3},
		[]any{nil, nil, 5, 4},
		[]any{8, 4, 5, 5},
	)
	s := relation.MustFromRows("S", []string{"E", "F", "G", "H", "I"},
		[]any{2, 5, 1, 8, 1},
		[]any{4, 5, 1, 2, 2},
		[]any{6, 5, 2, nil, 3},
		[]any{9, 7, 3, 5, 4},
		[]any{3, 5, 9, 4, 5},
		[]any{nil, 5, 3, 7, 6},
	)
	tt := relation.MustFromRows("T", []string{"J", "K", "L"},
		[]any{7, 3, 1},
		[]any{9, 3, 2},
		[]any{nil, 5, 3},
		[]any{1, 7, 4},
		[]any{3, 5, 5},
	)
	mustCreate(t, cat, "R", r, "D")
	mustCreate(t, cat, "S", s, "I")
	mustCreate(t, cat, "T", tt, "L")
	return cat
}

func mustCreate(t testing.TB, cat *catalog.Catalog, name string, rel *relation.Relation, pk string) {
	t.Helper()
	if _, err := cat.Create(name, rel, pk); err != nil {
		t.Fatal(err)
	}
}

func analyze(t testing.TB, cat *catalog.Catalog, src string) *sql.Query {
	t.Helper()
	sel, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	q, err := sql.Analyze(sel, cat)
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	return q
}

// optionMatrix is every §4.2 configuration the equivalence tests check
// against the reference evaluator.
var optionMatrix = map[string]Options{
	"original":        Original(),
	"optimized":       Optimized(),
	"alwaysPad":       {AlwaysPad: true},
	"fused":           {Fused: true},
	"bottomUp":        {BottomUp: true},
	"bottomUpFused":   {BottomUp: true, Fused: true},
	"nestPushdown":    {NestPushdown: true},
	"positiveRewrite": {PositiveRewrite: true},
	"padFused":        {AlwaysPad: true, Fused: true},
}

// checkAllStrategies asserts that every configuration returns exactly the
// reference evaluator's result.
func checkAllStrategies(t *testing.T, cat *catalog.Catalog, src string) {
	t.Helper()
	q := analyze(t, cat, src)
	want, err := naive.Evaluate(q)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for name, opt := range optionMatrix {
		got, err := Execute(q, opt)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !got.EqualSet(want) {
			t.Errorf("%s: result differs from reference for\n  %s\nreference (%d rows):\n%s%s (%d rows):\n%s",
				name, src, want.Len(), want, name, got.Len(), got)
		}
	}
}

const queryQ = `
select R.B, R.C, R.D
from R
where R.A > 1 and R.B not in
  (select S.E from S
   where S.F = 5 and R.D = S.G and S.H > all
     (select T.J from T where T.K = R.C and T.L <> S.I))`

func TestQueryQAllStrategies(t *testing.T) {
	checkAllStrategies(t, paperCatalog(t), queryQ)
}

func TestFixedQueries(t *testing.T) {
	cat := paperCatalog(t)
	queries := map[string]string{
		"flat":                    "select A, B from R where A > 1",
		"flat multi-table":        "select R.A, S.E from R, S where R.D = S.G and S.F = 5",
		"exists correlated":       "select B from R where exists (select * from S where S.G = R.D)",
		"not exists correlated":   "select B from R where not exists (select * from S where S.G = R.D)",
		"in correlated":           "select B from R where R.B in (select S.E from S where S.G = R.D)",
		"not in correlated":       "select B from R where R.B not in (select S.E from S where S.G = R.D)",
		"all correlated":          "select B from R where R.A > all (select S.E from S where S.G = R.D)",
		"some correlated":         "select B from R where R.A < some (select S.E from S where S.G = R.D)",
		"all uncorrelated":        "select B from R where R.A >= all (select S.E from S where S.F = 5)",
		"in uncorrelated":         "select B from R where R.B in (select S.E from S)",
		"exists uncorrelated":     "select B from R where exists (select * from S where S.F = 9)",
		"not exists uncorrelated": "select B from R where not exists (select * from S where S.F = 9)",
		"constant linking attr":   "select B from R where 5 < all (select S.E from S where S.G = R.D)",
		"two level mixed": `select B from R where R.B in
			(select S.E from S where S.G = R.D and not exists
				(select * from T where T.K = R.C and T.L <> S.I))`,
		"two level negative": `select B from R where R.B not in
			(select S.E from S where S.G = R.D and S.H > all
				(select T.J from T where T.K = S.G))`,
		"two level positive": `select B from R where R.B in
			(select S.E from S where S.G = R.D and exists
				(select * from T where T.K = S.G))`,
		"tree query": `select B from R where
			exists (select * from S where S.G = R.D)
			and not exists (select * from T where T.K = R.C)`,
		"tree query quantified": `select B from R where
			R.B <= any (select S.E from S where S.G = R.D)
			and R.A > all (select T.J from T where T.K = R.C)`,
		"non equi correlation":  "select B from R where R.A > all (select S.E from S where S.G <> R.D)",
		"nulls in linking attr": "select B from R where R.B > all (select S.E from S where S.G = R.D)",
		"distinct":              "select distinct B from R where exists (select * from S where S.G = R.D)",
		"order by":              "select B, A from R where A > 1 order by B desc, A",
		"three level linear": `select B from R where R.B not in
			(select S.E from S where S.G = R.D and S.H >= some
				(select T.J from T where T.K = S.G and T.L < 5))`,
		"in list aliases": "select r.B from R r where r.B in (select s.E from S s where s.G = r.D)",
	}
	for name, src := range queries {
		src := src
		t.Run(name, func(t *testing.T) { checkAllStrategies(t, cat, src) })
	}
}

func TestUnsupportedShapes(t *testing.T) {
	cat := paperCatalog(t)
	// Subquery under OR: planners must refuse, reference must work.
	q := analyze(t, cat, "select B from R where A = 1 or exists (select * from S where S.G = R.D)")
	if err := Supported(q); err == nil {
		t.Fatal("OR-embedded subquery should be unsupported by the planner")
	}
	if _, err := naive.Evaluate(q); err != nil {
		t.Fatalf("reference evaluator should handle it: %v", err)
	}
	// Arithmetic linking attribute.
	q2 := analyze(t, cat, "select B from R where R.B + 1 in (select S.E from S)")
	if err := Supported(q2); err == nil {
		t.Fatal("non-column linking attribute should be unsupported")
	}
}

func TestChainDetection(t *testing.T) {
	cat := paperCatalog(t)
	p := func(src string) *planner {
		pl, err := newPlanner(analyze(t, cat, src), Optimized())
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}

	linear := p(`select B from R where R.B not in
		(select S.E from S where S.G = R.D and S.H > all
			(select T.J from T where T.K = S.G))`)
	if _, ok := linear.fullyCorrelatedLinearChain(); !ok {
		t.Error("linear correlated query not detected as fused chain")
	}
	if chain, ok := linear.linearCorrelatedChain(); !ok || len(chain) != 3 {
		t.Error("linear correlation (§4.2.3) not detected")
	}

	// Query Q is linear in shape but T is correlated to R (two levels up),
	// so §4.2.3 must NOT apply while the fused chain still does.
	qq := p(queryQ)
	if _, ok := qq.fullyCorrelatedLinearChain(); !ok {
		t.Error("Query Q should allow the fused chain")
	}
	if _, ok := qq.linearCorrelatedChain(); ok {
		t.Error("Query Q is not linearly correlated (T references R)")
	}

	tree := p(`select B from R where
		exists (select * from S where S.G = R.D)
		and exists (select * from T where T.K = R.C)`)
	if _, ok := tree.chainBlocks(); ok {
		t.Error("tree query must not be treated as a chain")
	}
}

func TestStrictnessRule(t *testing.T) {
	cat := paperCatalog(t)
	// Mixed: inner edge under a negative NOT IN must pad.
	pl, err := newPlanner(analyze(t, cat, queryQ), Options{})
	if err != nil {
		t.Fatal(err)
	}
	root := pl.q.Root
	s := root.Links[0].Child
	if !pl.strictOK(root, root) {
		t.Error("root level is always strict")
	}
	if pl.strictOK(s, root) {
		t.Error("level under NOT IN must use the pseudo-selection")
	}

	// All-positive pending: strict is allowed below.
	pl2, err := newPlanner(analyze(t, cat, `select B from R where R.B in
		(select S.E from S where S.G = R.D and exists
			(select * from T where T.K = S.G))`), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := pl2.q.Root.Links[0].Child
	if !pl2.strictOK(s2, pl2.q.Root) {
		t.Error("all-positive pending links allow strict selection")
	}
}

func TestExplainProducesTree(t *testing.T) {
	cat := paperCatalog(t)
	q := analyze(t, cat, queryQ)
	out, err := Explain(q, Optimized())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T1", "NOT IN", "ALL", "R.D = S.G"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestMultiTableSubqueryBlocks(t *testing.T) {
	cat := paperCatalog(t)
	queries := map[string]string{
		"exists over a join": `select B from R where exists
			(select * from S, T where T.K = S.G and S.G = R.D)`,
		"in over a join": `select B from R where R.B in
			(select S.E from S, T where T.K = S.G and S.G = R.D and T.J > 2)`,
		"all over a join": `select B from R where R.A > all
			(select S.E from S, T where T.K = S.G and S.G = R.D)`,
	}
	for name, src := range queries {
		src := src
		t.Run(name, func(t *testing.T) {
			q := analyze(t, cat, src)
			want, err := naive.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			for cfg, opt := range optionMatrix {
				got, err := Execute(q, opt)
				if err != nil {
					t.Fatalf("%s: %v", cfg, err)
				}
				if !got.EqualSet(want) {
					t.Fatalf("%s: differs from reference for %s\nref:\n%s\ngot:\n%s", cfg, src, want, got)
				}
			}
		})
	}
}
