package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nra/internal/catalog"
	"nra/internal/naive"
	"nra/internal/relation"
	"nra/internal/sql"
)

// This file implements the differential test central to the reproduction:
// for randomly generated databases *with NULLs* and randomly generated
// nested queries covering every linking operator, correlation pattern and
// nesting shape, every planner configuration must agree exactly with the
// reference evaluator.

// randCatalog builds three small tables with NULL-bearing columns.
func randCatalog(t testing.TB, rng *rand.Rand) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for ti, name := range []string{"A", "B", "C"} {
		rows := 3 + rng.Intn(8)
		cols := []string{"k", "w", "x", "y"}
		var data [][]any
		for r := 0; r < rows; r++ {
			row := []any{r} // k: unique non-null PK
			for c := 1; c < len(cols); c++ {
				if rng.Float64() < 0.18 {
					row = append(row, nil)
				} else {
					row = append(row, rng.Intn(5))
				}
			}
			data = append(data, row)
		}
		rel := relation.MustFromRows(name, cols, data...)
		if _, err := cat.Create(name, rel, "k"); err != nil {
			t.Fatal(err)
		}
		_ = ti
	}
	return cat
}

// queryGen emits random nested queries over tables A, B, C. Aliases are
// unique (t0, t1, ...), so correlation targets are unambiguous.
type queryGen struct {
	rng   *rand.Rand
	alias int
}

var genTables = []string{"A", "B", "C"}
var genCols = []string{"w", "x", "y"}
var genOps = []string{"=", "<>", "<", "<=", ">", ">="}

func (g *queryGen) nextAlias() string {
	g.alias++
	return fmt.Sprintf("t%d", g.alias)
}

// block generates one query block. outer lists the aliases visible for
// correlation (nearest last). Returns the block SQL without SELECT list.
func (g *queryGen) query(depth int) string {
	alias := g.nextAlias()
	table := genTables[g.rng.Intn(len(genTables))]
	sel := fmt.Sprintf("%s.%s", alias, genCols[g.rng.Intn(len(genCols))])
	where := g.where(alias, nil, depth)
	q := fmt.Sprintf("select %s from %s %s", sel, table, alias)
	if where != "" {
		q += " where " + where
	}
	return q
}

// where builds a conjunction of local, correlated and linking predicates.
func (g *queryGen) where(alias string, outer []string, depth int) string {
	var conj []string
	// Local predicate(s).
	n := g.rng.Intn(2)
	for i := 0; i < n; i++ {
		conj = append(conj, fmt.Sprintf("%s.%s %s %d",
			alias, genCols[g.rng.Intn(len(genCols))],
			genOps[g.rng.Intn(len(genOps))], g.rng.Intn(5)))
	}
	// Correlated predicate(s) against visible outer aliases.
	for _, o := range outer {
		if g.rng.Float64() < 0.7 {
			conj = append(conj, fmt.Sprintf("%s.%s %s %s.%s",
				alias, genCols[g.rng.Intn(len(genCols))],
				genOps[g.rng.Intn(3)], // =, <>, < keep joins varied
				o, genCols[g.rng.Intn(len(genCols))]))
		}
	}
	// Subqueries.
	if depth > 0 {
		kids := 1
		if g.rng.Float64() < 0.25 {
			kids = 2 // tree query
		}
		for i := 0; i < kids; i++ {
			conj = append(conj, g.linkPredicate(alias, outer, depth-1))
		}
	}
	return strings.Join(conj, " and ")
}

func (g *queryGen) linkPredicate(alias string, outer []string, depth int) string {
	child := g.nextAlias()
	table := genTables[g.rng.Intn(len(genTables))]
	visible := append(append([]string{}, outer...), alias)
	childWhere := g.where(child, visible, depth)
	whereClause := ""
	if childWhere != "" {
		whereClause = " where " + childWhere
	}
	linked := fmt.Sprintf("%s.%s", child, genCols[g.rng.Intn(len(genCols))])

	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("exists (select * from %s %s%s)", table, child, whereClause)
	case 1:
		return fmt.Sprintf("not exists (select * from %s %s%s)", table, child, whereClause)
	case 2:
		return fmt.Sprintf("%s.%s in (select %s from %s %s%s)",
			alias, genCols[g.rng.Intn(len(genCols))], linked, table, child, whereClause)
	case 3:
		return fmt.Sprintf("%s.%s not in (select %s from %s %s%s)",
			alias, genCols[g.rng.Intn(len(genCols))], linked, table, child, whereClause)
	case 4:
		return fmt.Sprintf("%s.%s %s some (select %s from %s %s%s)",
			alias, genCols[g.rng.Intn(len(genCols))],
			genOps[g.rng.Intn(len(genOps))], linked, table, child, whereClause)
	case 5:
		agg := []string{"count(*)", "min(%s)", "max(%s)", "sum(%s)", "avg(%s)", "count(%s)"}[g.rng.Intn(6)]
		if strings.Contains(agg, "%s") {
			agg = fmt.Sprintf(agg, linked)
		}
		return fmt.Sprintf("%s.%s %s (select %s from %s %s%s)",
			alias, genCols[g.rng.Intn(len(genCols))],
			genOps[g.rng.Intn(len(genOps))], agg, table, child, whereClause)
	default:
		return fmt.Sprintf("%s.%s %s all (select %s from %s %s%s)",
			alias, genCols[g.rng.Intn(len(genCols))],
			genOps[g.rng.Intn(len(genOps))], linked, table, child, whereClause)
	}
}

func TestDifferentialRandomQueries(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		cat := randCatalog(t, rng)
		g := &queryGen{rng: rng}
		src := g.query(1 + rng.Intn(2)) // depth 1–2

		sel, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse %q: %v", seed, src, err)
		}
		q, err := sql.Analyze(sel, cat)
		if err != nil {
			t.Fatalf("seed %d: analyze %q: %v", seed, src, err)
		}
		want, err := naive.Evaluate(q)
		if err != nil {
			t.Fatalf("seed %d: reference %q: %v", seed, src, err)
		}
		for name, opt := range optionMatrix {
			got, err := Execute(q, opt)
			if err != nil {
				t.Fatalf("seed %d (%s): %q: %v", seed, name, src, err)
			}
			if !got.EqualSet(want) {
				t.Fatalf("seed %d (%s): result differs for\n  %s\nreference (%d rows):\n%s%s (%d rows):\n%s",
					seed, name, src, want.Len(), want, name, got.Len(), got)
			}
		}
	}
}

func TestDifferentialDeepNesting(t *testing.T) {
	iters := 120
	if testing.Short() {
		iters = 20
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(1_000_000 + seed)))
		cat := randCatalog(t, rng)
		g := &queryGen{rng: rng}
		src := g.query(3) // three-level nesting

		sel, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse %q: %v", seed, src, err)
		}
		q, err := sql.Analyze(sel, cat)
		if err != nil {
			t.Fatalf("seed %d: analyze %q: %v", seed, src, err)
		}
		want, err := naive.Evaluate(q)
		if err != nil {
			t.Fatalf("seed %d: reference %q: %v", seed, src, err)
		}
		for _, name := range []string{"original", "optimized", "alwaysPad"} {
			got, err := Execute(q, optionMatrix[name])
			if err != nil {
				t.Fatalf("seed %d (%s): %q: %v", seed, name, src, err)
			}
			if !got.EqualSet(want) {
				t.Fatalf("seed %d (%s): result differs for\n  %s\nreference (%d rows):\n%s%s (%d rows):\n%s",
					seed, name, src, want.Len(), want, name, got.Len(), got)
			}
		}
	}
}
