package core

import (
	"fmt"
	"math"

	"nra/internal/algebra"
	"nra/internal/obsv"
	"nra/internal/opt"
	"nra/internal/sql"
	"nra/internal/stats"
)

// Cost-based planning. When Options.UseStats is set and *every* base
// table of the query carries fresh statistics, the planner builds an
// opt.Estimator and precomputes per-block and per-edge cardinality
// estimates; Options.CostBased then lets those estimates steer the
// physical decisions (subquery processing order, §4.2.5 semijoin and
// §4.2.4 push-down gating, partitioned-parallel degree, planned
// spilling). The estimator is all-or-nothing — one missing or stale
// table disables it — so a query without statistics plans exactly as the
// heuristics always have (plan parity, verified by tests).

// edgeEst holds the precomputed estimates for one linking edge.
type edgeEst struct {
	inner  float64 // |T_c|: the reduced child block
	outer  float64 // |rel| before this edge's join
	joined float64 // |rel ⟕ T_c| (or |rel| for uncorrelated subtrees)
	frac   float64 // linking-selectivity: fraction of outer tuples kept
	after  float64 // |rel| after the linking selection
	why    string  // formula rendered by opt.LinkSelectivity

	semijoin     bool // §4.2.5 rewrite is the cost-model choice
	semijoinNote string
}

// costBased reports whether cost-model decisions are active: requested
// by the options and backed by a live estimator.
func (p *planner) costBased() bool { return p.opt.CostBased && p.est != nil }

// buildEstimator constructs the estimator when every table of the query
// has fresh statistics; otherwise p.est stays nil and planning is purely
// heuristic.
func (p *planner) buildEstimator() {
	if !p.opt.UseStats {
		return
	}
	e := opt.NewEstimator()
	for _, b := range p.q.Blocks {
		for _, bt := range b.Tables {
			ts := bt.Table.Stats()
			if ts == nil {
				p.statsNote = "statistics: absent or stale on some tables — heuristic planning (run ANALYZE)"
				return
			}
			e.AddTable(bt.Schema, ts)
		}
	}
	p.est = e
	p.statsNote = fmt.Sprintf("statistics: fresh on all %d tables — cost-based planning active", len(p.q.Blocks))
}

// estimateQuery precomputes the per-block reduced cardinalities, the
// per-edge join/link estimates, the peak operator input (for the
// parallel-degree decision) and the planned-spill set.
func (p *planner) estimateQuery() {
	if p.est == nil {
		return
	}
	p.card = make(map[int]float64, len(p.q.Blocks))
	p.width = make(map[int]float64, len(p.q.Blocks))
	p.edgeEst = make(map[*sql.LinkEdge]edgeEst)
	for _, b := range p.q.Blocks {
		base := 1.0
		for _, bt := range b.Tables {
			base *= float64(bt.Table.Rel.Len())
		}
		sel := 1.0
		if local, err := p.q.LowerAll(b.Local); err == nil {
			sel = p.est.Selectivity(local)
		}
		p.card[b.ID] = base * sel
		w := 0.0
		for _, col := range p.needed[b.ID] {
			if cs := p.est.Col(col); cs != nil {
				w += cs.Width
			} else {
				w += 40
			}
		}
		p.width[b.ID] = w
	}
	p.peakRows = p.card[p.q.Root.ID]
	p.estimateChildren(p.q.Root, p.q.Root, p.card[p.q.Root.ID])
	p.decideParallel()
	p.decideSpills()
}

// estimateChildren mirrors processChildren's recursion over the link
// tree, estimating instead of executing. It returns the estimated
// cardinality of rel after all of node's links are applied.
func (p *planner) estimateChildren(node, top *sql.Block, rel float64) float64 {
	for _, edge := range node.Links {
		c := edge.Child
		inner := p.card[c.ID]
		strict := p.strictOK(node, top)
		uncorr := p.subtreeUncorrelated(c)

		var ee edgeEst
		ee.inner = inner
		ee.outer = rel
		if uncorr {
			// Standalone evaluation + shared group: rel keeps its width.
			set := p.estimateChildren(c, c, inner)
			match := 0.0
			if set >= 0.5 {
				match = 1
			}
			ee.joined = rel
			ee.frac, ee.why = p.linkSelEstimate(edge, c, match, math.Max(set, 1))
		} else {
			corrE, err := p.corrCond(c)
			if err != nil {
				corrE = nil
			}
			match, avg := p.est.GroupShape(corrE, rel, inner)
			ee.joined = p.est.OuterJoinRows(rel, inner, corrE)
			p.estimateChildren(c, top, ee.joined)
			ee.frac, ee.why = p.linkSelEstimate(edge, c, match, avg)
		}
		p.peakRows = math.Max(p.peakRows, math.Max(ee.joined, inner))

		ee.after = rel * ee.frac
		if !strict {
			ee.after = rel // σ̄ pads failing tuples instead of dropping them
		}

		// §4.2.5 gate: price the semijoin rewrite against the fused
		// nest + linking-selection path it replaces. Inner blocks pay a
		// duplicate elimination over the joined relation to restore the
		// multiset — elided (and not charged) under set-semantics output,
		// which prices the rewrite cheaper for DISTINCT queries.
		if p.opt.PositiveRewrite && edge.Kind.Positive() && strict && !uncorr {
			semi := opt.SemiJoinCost(inner, rel, rel*ee.frac)
			if len(c.Links) > 0 && !p.setSem {
				semi += opt.DistinctCost(ee.joined)
			}
			nest := opt.HashJoinCost(inner, rel, ee.joined) + opt.NestLinkCost(ee.joined, ee.after)
			ee.semijoin = semi <= nest
			verdict := "rewrite to (semi)join"
			if !ee.semijoin {
				verdict = "keep nest+link"
			}
			ee.semijoinNote = fmt.Sprintf("L%d %s: %s (semijoin %.3g vs nest+link %.3g tuple-touches)",
				c.ID+1, linkString(edge), verdict, semi, nest)
			if p.opt.CostBased {
				p.noteOnce(ee.semijoinNote)
			}
		}

		p.edgeEst[edge] = ee
		rel = ee.after
	}
	return rel
}

// linkSelEstimate fills an opt.LinkInput from the edge's resolved
// attribute statistics and returns the linking selectivity.
func (p *planner) linkSelEstimate(edge *sql.LinkEdge, c *sql.Block, match, avg float64) (float64, string) {
	in := opt.LinkInput{Kind: edge.Kind, Cmp: edge.Cmp, MatchFrac: match, AvgGroup: avg}
	var attrCol, linkedCol *stats.Column
	switch edge.Kind {
	case sql.Exists, sql.NotExists:
	case sql.CmpScalar:
		if agg, ok := c.Agg(); ok {
			in.CountAgg = agg.Func == algebra.AggCountStar
			if cs := p.est.Col(agg.Col); cs != nil {
				in.LinkedNull, in.LinkedNDV = cs.NullFrac(), cs.NDV
				linkedCol = cs
			}
		}
	default:
		if la, err := p.q.LinkedAttr(c); err == nil {
			if cs := p.est.Col(la); cs != nil {
				in.LinkedNull, in.LinkedNDV = cs.NullFrac(), cs.NDV
				linkedCol = cs
			}
		}
	}
	switch left := edge.Pred.Left.(type) {
	case *sql.ColRef:
		if r, ok := p.q.Resolve(left); ok {
			if cs := p.est.Col(r.Name); cs != nil {
				in.AttrNull = cs.NullFrac()
				attrCol = cs
			}
		}
	case *sql.Lit:
		in.ConstAttr = true
	}
	if f, ok := opt.CmpColFraction(attrCol, linkedCol, edge.Cmp); ok {
		in.PTheta, in.HavePTheta = f, true
	}
	return opt.LinkSelectivity(in)
}

// decideParallel picks the effective partitioned-parallel degree from
// the estimated peak operator input.
func (p *planner) decideParallel() {
	req := p.opt.Parallelism
	if req <= 1 || !p.opt.CostBased {
		return
	}
	if got := opt.ParallelDegree(req, p.peakRows); got != req {
		p.planNotes = append(p.planNotes, fmt.Sprintf(
			"parallel degree 1 (requested %d): est peak input %.0f rows < %d-row pool threshold",
			req, p.peakRows, opt.MinParallelRows))
	}
}

// decideSpills plans in-memory vs spilling execution against the memory
// budget: when an estimated hash-join build side or sort input exceeds
// the budget, the affected operators start on their grace-join /
// external-sort paths instead of failing over mid-build.
func (p *planner) decideSpills() {
	if !p.opt.CostBased || p.opt.MemoryBudget <= 0 {
		return
	}
	budget := float64(p.opt.MemoryBudget)
	maxBuild := 0.0
	for _, b := range p.q.Blocks {
		if b == p.q.Root {
			continue // child blocks are the build sides of the unnesting joins
		}
		maxBuild = math.Max(maxBuild, opt.EstBytes(p.card[b.ID], p.width[b.ID]))
	}
	if maxBuild > budget {
		p.spillOps = append(p.spillOps, "hashjoin", "join")
		p.planNotes = append(p.planNotes, fmt.Sprintf(
			"planned grace hash join: est build side %.0f B > budget %d B", maxBuild, p.opt.MemoryBudget))
	}
	totalWidth := 0.0
	for _, w := range p.width {
		totalWidth += w
	}
	if sortBytes := opt.EstBytes(p.peakRows, totalWidth); sortBytes > budget {
		p.spillOps = append(p.spillOps, "nestlink/sort")
		p.planNotes = append(p.planNotes, fmt.Sprintf(
			"planned external sort: est sort input %.0f B > budget %d B", sortBytes, p.opt.MemoryBudget))
	}
}

// orderEdges returns node's links sorted most-selective-first (smallest
// estimated surviving fraction), so later, costlier links see fewer
// tuples. Reordering is only semantics-preserving under the strict
// linking selection — σ̄ pads the node's columns, which a sibling
// evaluated later would observe — so callers gate on strictOK.
func (p *planner) orderEdges(links []*sql.LinkEdge) []*sql.LinkEdge {
	ordered := append([]*sql.LinkEdge(nil), links...)
	// Stable insertion sort: ties keep syntactic order.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && p.edgeEst[ordered[j]].frac < p.edgeEst[ordered[j-1]].frac; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	for i, e := range ordered {
		if e != links[i] {
			p.planNotes = append(p.planNotes, "subquery evaluation reordered most-selective-first")
			break
		}
	}
	return ordered
}

// chooseSemijoin reports the cost model's verdict for the §4.2.5
// rewrite of this edge (true without an estimate: the heuristic default).
func (p *planner) chooseSemijoin(edge *sql.LinkEdge) bool {
	if !p.costBased() {
		return true
	}
	ee, ok := p.edgeEst[edge]
	if !ok {
		return true
	}
	return ee.semijoin
}

// choosePushdown reports the cost model's verdict for §4.2.4: nest the
// reduced child before the join iff sorting the small T_c beats sorting
// the joined relation (true without an estimate: the heuristic default).
func (p *planner) choosePushdown(edge *sql.LinkEdge) bool {
	if !p.costBased() {
		return true
	}
	ee, ok := p.edgeEst[edge]
	if !ok {
		return true
	}
	// Pushdown: sort/nest T_c, then outer-join the groups to rel (the
	// output stays one tuple per outer tuple). Default: outer-join first,
	// then the fused nest+link over the (larger) joined relation.
	push := opt.SortCost(ee.inner) + opt.HashJoinCost(ee.inner, ee.outer, ee.outer)
	keep := opt.HashJoinCost(ee.inner, ee.outer, ee.joined) + opt.NestLinkCost(ee.joined, ee.after)
	if push > keep {
		p.noteOnce(fmt.Sprintf("L%d: nest push-down skipped (push %.3g vs nest+link %.3g tuple-touches)",
			edge.Child.ID+1, push, keep))
		return false
	}
	return true
}

// noteOnce appends a plan note, deduplicating repeats (EXPLAIN builds a
// planner and never executes, so runtime notes must not double up).
func (p *planner) noteOnce(n string) {
	for _, have := range p.planNotes {
		if have == n {
			return
		}
	}
	p.planNotes = append(p.planNotes, n)
}

// estEdge returns the estimates for an edge, or ok=false without an
// estimator.
func (p *planner) estEdge(edge *sql.LinkEdge) (edgeEst, bool) {
	ee, ok := p.edgeEst[edge]
	return ee, ok
}

// estJoined / estAfter return an edge's estimated join-output and
// post-link cardinalities, or -1 without an estimate.
func (p *planner) estJoined(edge *sql.LinkEdge) float64 {
	if ee, ok := p.edgeEst[edge]; ok {
		return ee.joined
	}
	return -1
}

func (p *planner) estAfter(edge *sql.LinkEdge) float64 {
	if ee, ok := p.edgeEst[edge]; ok {
		return ee.after
	}
	return -1
}

func (p *planner) estOuter(edge *sql.LinkEdge) float64 {
	if ee, ok := p.edgeEst[edge]; ok {
		return ee.outer
	}
	return -1
}

// estCard returns a block's estimated reduced cardinality, or -1.
func (p *planner) estCard(b *sql.Block) float64 {
	if p.est == nil {
		return -1
	}
	return p.card[b.ID]
}

// begin opens a plan-level trace span for one executed operator — the
// unit EXPLAIN ANALYZE reports one row for. With tracing off it returns
// nil and skips the label formatting, so the disabled path costs one nil
// check and zero allocations. Physical operator spans (joins, sorts, the
// fused nest+link scans) started while a plan span is open nest under it.
func (p *planner) begin(format string, args ...any) *obsv.Span {
	if !p.ec.Tracing() {
		return nil
	}
	return p.ec.StartSpan(fmt.Sprintf(format, args...), obsv.KindPlan)
}

// done closes a plan span with the operator's estimated (est < 0 = no
// estimate) and actual output rows. Plan spans never nest inside each
// other — every begin's span is done before the next begin — so walking
// a trace in start order reproduces the sequential operator log exactly.
func (p *planner) done(sp *obsv.Span, est float64, act int) {
	if sp == nil {
		return
	}
	sp.SetEst(est)
	sp.AddRowsOut(int64(act))
	sp.End()
}
