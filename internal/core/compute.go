package core

import (
	"fmt"

	"nra/internal/algebra"
	"nra/internal/exec"
	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/sql"
)

// run executes the full query: unnest top-down into (outer) joins, compute
// the linking predicates bottom-up, then finish with the root projection.
func (p *planner) run() (*relation.Relation, error) {
	root := p.q.Root

	if p.opt.BottomUp {
		if chain, ok := p.linearCorrelatedChain(); ok {
			rel, err := p.runBottomUp(chain)
			if err != nil {
				return nil, err
			}
			return p.finish(rel)
		}
	}
	if p.opt.Fused {
		if chain, ok := p.fullyCorrelatedLinearChain(); ok && len(chain) > 1 {
			rel, err := p.runFusedChain(chain)
			if err != nil {
				return nil, err
			}
			return p.finish(rel)
		}
	}

	rel, err := p.reduce(root)
	if err != nil {
		return nil, err
	}
	rel, err = p.processChildren(root, root, rel)
	if err != nil {
		return nil, err
	}
	return p.finish(rel)
}

// processChildren runs Algorithm 1's loop over the children of node,
// consuming each subquery in depth-first, left-to-right order. top is the
// block acting as the root of the current computation (the global root,
// or the subtree root during standalone evaluation of a non-correlated
// subquery).
func (p *planner) processChildren(node, top *sql.Block, rel *relation.Relation) (*relation.Relation, error) {
	links := node.Links
	// Cost-based: evaluate the most selective link first so later links
	// see fewer tuples. Safe only under the strict σ — the padding σ̄
	// NULLs node's columns, which a sibling evaluated later observes.
	if p.costBased() && len(links) > 1 && p.strictOK(node, top) {
		links = p.orderEdges(links)
	}
	for _, edge := range links {
		var err error
		rel, err = p.processEdge(node, top, edge, rel)
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// processEdge evaluates one linking predicate L between node and
// edge.Child, transforming rel (which holds the columns of the blocks on
// the path top..node) into the same shape with L applied.
func (p *planner) processEdge(node, top *sql.Block, edge *sql.LinkEdge, rel *relation.Relation) (*relation.Relation, error) {
	c := edge.Child
	subName := fmt.Sprintf("sub%d", c.ID)
	strict := p.strictOK(node, top)

	// §4: a subtree with no outside correlation is executed once and the
	// result shared by every outer tuple (virtual Cartesian product).
	if p.subtreeUncorrelated(c) {
		set, err := p.standalone(c)
		if err != nil {
			return nil, err
		}
		return p.applyLinkOnGroup(node, edge, algebra.AddGroup(rel, subName, set), subName, strict, rel.Schema)
	}

	// 2VL: a negative linking operator is ¬∃(match) with a two-valued
	// match condition — a plain antijoin at strict leaves (Libkin). The
	// general nest+link path below computes the same verdicts; this is
	// the collapsed fast path.
	if p.antijoin2VLOK(node, top, edge) {
		return p.processEdgeAntijoin(edge, rel)
	}

	// §4.2.5: positive linking operators rewrite to (semi)joins when no
	// pending negative operator needs the failing tuples kept — and, with
	// cost-based planning, when the cost model agrees.
	if p.opt.PositiveRewrite && edge.Kind.Positive() && strict && p.chooseSemijoin(edge) {
		return p.processEdgePositive(node, top, edge, rel)
	}

	cond, err := p.corrCond(c)
	if err != nil {
		return nil, err
	}

	// §4.2.4: push the nest below the join when the correlation is a pure
	// equi-join on the nesting attributes and the child is a leaf.
	if p.opt.NestPushdown && len(c.Links) == 0 {
		if joinCols, outerCols, ok := p.pushdownCols(c, cond, rel.Schema); ok {
			// The linked attribute must survive the pushed-down nest as a
			// nested (not nesting) attribute.
			usable := true
			if edge.Kind != sql.Exists && edge.Kind != sql.NotExists {
				la := ""
				if edge.Kind == sql.CmpScalar {
					if agg, ok := c.Agg(); ok {
						la = agg.Col // "" for COUNT(*): nothing to protect
					}
				} else {
					var err error
					la, err = p.q.LinkedAttr(c)
					if err != nil {
						return nil, unsupportedf("%v", err)
					}
				}
				for _, jc := range joinCols {
					if la != "" && jc == la {
						usable = false
						break
					}
				}
			}
			if usable && p.choosePushdown(edge) {
				return p.processEdgePushdown(node, edge, rel, subName, strict, joinCols, outerCols)
			}
		}
	}

	tc, err := p.reduce(c)
	if err != nil {
		return nil, err
	}
	relLen := rel.Len()
	sp := p.begin("outer join T%d", c.ID+1)
	rel, err = p.outerJoin(rel, tc, cond)
	if err != nil {
		return nil, err
	}
	p.seq(relLen, tc.Len(), rel.Len()) // hash outer join: read both, write out
	p.trace("rel := rel ⟕ T%d  (%d ⟕ %d → %d tuples)", c.ID+1, relLen, tc.Len(), rel.Len())
	p.done(sp, p.estJoined(edge), rel.Len())
	// Recurse: the child's own subqueries are consumed first (bottom-up
	// computation of the linking predicates).
	rel, err = p.processChildren(c, top, rel)
	if err != nil {
		return nil, err
	}

	pred, err := p.linkPred(edge, subName, c)
	if err != nil {
		return nil, err
	}
	by := p.otherCols(rel, c.ID)
	keep := p.blockCols(rel, c.ID)

	if p.opt.Fused {
		// §4.2.2: one pass — nest and linking selection pipelined.
		spec, err := p.linkSpec(rel, pred, c)
		if err != nil {
			return nil, err
		}
		var pad []string
		if !strict {
			pad = p.blockCols(rel, node.ID)
		}
		sp := p.begin("nest+link L%d (%s)", c.ID+1, linkString(edge))
		out, err := p.nestLink(rel, p.pathKeyCols(rel, node, top), by, spec, pad)
		if err != nil {
			return nil, err
		}
		p.seq(3*rel.Len(), out.Len()) // one sort (two passes) + one scan + write
		p.trace("rel := NestLink[%s]  (fused υ+σ, %d → %d tuples)", pred, rel.Len(), out.Len())
		p.done(sp, p.estAfter(edge), out.Len())
		return out, nil
	}

	// Original §4.1: materialised nest, then linking selection, then the
	// projection dropping the consumed nested attribute.
	nIn := rel.Len()
	rel, err = algebra.Nest(rel, by, keep, subName)
	if err != nil {
		return nil, err
	}
	p.seq(nIn, nIn) // nest: read the flat input, write the nested form
	p.trace("rel := υ(rel)  (%d tuples → %d groups)", nIn, rel.Len())
	nNested := rel.Len()
	mode := "σ"
	if !strict {
		mode = "σ̄"
	}
	sp = p.begin("%s L%d (%s)", mode, c.ID+1, linkString(edge))
	if strict {
		rel, err = algebra.LinkSelect(rel, pred)
	} else {
		rel, err = algebra.LinkSelectPad(rel, pred, p.blockCols(rel, node.ID))
	}
	if err != nil {
		return nil, err
	}
	p.seq(nIn, nNested) // linking selection: second pass over the groups
	p.trace("rel := %s[%s](rel)  → %d tuples", mode, pred, rel.Len())
	p.done(sp, p.estAfter(edge), rel.Len())
	return algebra.DropSub(rel, subName)
}

// applyLinkOnGroup evaluates the linking selection on a relation that
// already carries the subquery result as a nested attribute (the
// non-correlated case), then drops the group.
func (p *planner) applyLinkOnGroup(node *sql.Block, edge *sql.LinkEdge, rel *relation.Relation, subName string, strict bool, outer *relation.Schema) (*relation.Relation, error) {
	c := edge.Child
	pred, err := p.linkPred(edge, subName, c)
	if err != nil {
		return nil, err
	}
	// Standalone sets contain only real tuples; presence filtering is
	// unnecessary but harmless (kept for uniformity).
	nIn := rel.Len()
	sp := p.begin("link L%d on shared subquery result (%s)", c.ID+1, linkString(edge))
	if strict {
		rel, err = algebra.LinkSelect(rel, pred)
	} else {
		rel, err = algebra.LinkSelectPad(rel, pred, p.blockCols(rel, node.ID))
	}
	if err != nil {
		return nil, err
	}
	p.seq(nIn, rel.Len())
	p.done(sp, p.estAfter(edge), rel.Len())
	return algebra.DropSub(rel, subName)
}

// standalone evaluates block c's subtree in isolation, returning its
// result set (the reduced block with all of its own linking predicates
// applied).
func (p *planner) standalone(c *sql.Block) (*relation.Relation, error) {
	rel, err := p.reduce(c)
	if err != nil {
		return nil, err
	}
	return p.processChildren(c, c, rel)
}

// linkSpec resolves a LinkPred's column references into flat indexes of
// rel for the fused operators.
func (p *planner) linkSpec(rel *relation.Relation, pred algebra.LinkPred, child *sql.Block) (*exec.LinkSpec, error) {
	spec := &exec.LinkSpec{Pred: pred, AttrIdx: -1, LinkedIdx: -1, PresIdx: -1}
	spec.PresIdx = rel.Schema.ColIndex(child.Presence)
	if spec.PresIdx < 0 {
		return nil, fmt.Errorf("core: presence column %q missing from %s", child.Presence, rel.Schema)
	}
	if pred.Empty == algebra.NoEmptyTest {
		if pred.Agg != algebra.AggCountStar {
			spec.LinkedIdx = rel.Schema.ColIndex(pred.Linked)
			if spec.LinkedIdx < 0 {
				return nil, fmt.Errorf("core: linked column %q missing from %s", pred.Linked, rel.Schema)
			}
		}
		if pred.Const == nil {
			spec.AttrIdx = rel.Schema.ColIndex(pred.Attr)
			if spec.AttrIdx < 0 {
				return nil, fmt.Errorf("core: linking attribute %q missing from %s", pred.Attr, rel.Schema)
			}
		}
	}
	return spec, nil
}

// processEdgePositive implements §4.2.5: for a positive linking operator
// with only positive operators pending, σ_{AθSOME{B}}(υ(R ⟕_C S)) is
// rewritten to R ⋉_{C ∧ AθB} S (semijoin for leaves; join + projection +
// duplicate elimination for inner blocks whose own subqueries still need
// the child's columns).
func (p *planner) processEdgePositive(node, top *sql.Block, edge *sql.LinkEdge, rel *relation.Relation) (*relation.Relation, error) {
	c := edge.Child
	cond, err := p.corrCond(c)
	if err != nil {
		return nil, err
	}
	linkCond, err := p.positiveLinkCond(edge, c)
	if err != nil {
		return nil, err
	}
	on := expr.And(cond, linkCond)

	tc, err := p.reduce(c)
	if err != nil {
		return nil, err
	}
	if len(c.Links) == 0 {
		sp := p.begin("semijoin T%d (§4.2.5, %s)", c.ID+1, linkString(edge))
		out, err := algebra.SemiJoin(rel, tc, on)
		if err != nil {
			return nil, err
		}
		p.seq(rel.Len(), tc.Len(), out.Len())
		p.trace("rel := rel ⋉ T%d  (§4.2.5 positive rewrite, %d → %d tuples)", c.ID+1, rel.Len(), out.Len())
		p.done(sp, p.estAfter(edge), out.Len())
		return out, nil
	}
	outCols := rel.Schema.ColNames()
	relLen := rel.Len()
	rel, err = p.join(rel, tc, on)
	if err != nil {
		return nil, err
	}
	p.seq(relLen, tc.Len(), rel.Len())
	rel, err = p.processChildren(c, top, rel)
	if err != nil {
		return nil, err
	}
	rel, err = algebra.Project(rel, outCols...)
	if err != nil {
		return nil, err
	}
	// Set-semantics output (root DISTINCT, no aggregates anywhere): the
	// multiset need not be restored — quantified links ignore copies and
	// the root DISTINCT collapses whatever survives — so the duplicate
	// elimination is elided (bag/set-aware §4.2.5 gate).
	if p.setSem {
		sp := p.begin("join T%d (§4.2.5 set-output, %s)", c.ID+1, linkString(edge))
		p.trace("§4.2.5 duplicate elimination elided: set-semantics output (%d tuples)", rel.Len())
		p.done(sp, p.estAfter(edge), rel.Len())
		return rel, nil
	}
	// The kept primary keys make distinct-by-value identical to
	// distinct-by-row, so this restores the pre-join multiset. The span
	// opens here — after the children's spans closed — so plan spans stay
	// sequential and the operator log keeps its pre-span order.
	sp := p.begin("join+distinct T%d (§4.2.5, %s)", c.ID+1, linkString(edge))
	out := algebra.Distinct(rel)
	p.seq(rel.Len(), out.Len())
	p.done(sp, p.estAfter(edge), out.Len())
	return out, nil
}

// positiveLinkCond renders a positive quantified link as a θ join
// condition (A θ B); EXISTS contributes no condition. Match-iff-True
// makes the bare comparison correct in both logics — except under 2VL
// for a NOT-folded SOME (edge.SynNeg), whose syntactic form ¬(A θ' ALL)
// means "some member fails θ' under 2VL": the condition becomes the
// classical negation of the strict-2VL comparison.
func (p *planner) positiveLinkCond(edge *sql.LinkEdge, c *sql.Block) (expr.Expr, error) {
	if edge.Kind == sql.Exists {
		return nil, nil
	}
	la, err := p.q.LinkedAttr(c)
	if err != nil {
		return nil, unsupportedf("%v", err)
	}
	left, err := p.leftExpr(edge)
	if err != nil {
		return nil, err
	}
	op := edge.Cmp
	if edge.Kind == sql.In {
		op = expr.Eq
	}
	if p.opt.TwoValuedLogic && edge.SynNeg && edge.Kind == sql.CmpSome {
		return expr.Not{E: expr.TwoValuedStrict(expr.Compare(edge.Cmp.Negate(), left, expr.Col(la)))}, nil
	}
	return expr.Compare(op, left, expr.Col(la)), nil
}

// leftExpr lowers the linking attribute (column of an enclosing block, or
// a constant) into an expression.
func (p *planner) leftExpr(edge *sql.LinkEdge) (expr.Expr, error) {
	switch l := edge.Pred.Left.(type) {
	case *sql.ColRef:
		r, ok := p.q.Resolve(l)
		if !ok {
			return nil, unsupportedf("unresolved linking attribute %s", l)
		}
		return expr.Col(r.Name), nil
	case *sql.Lit:
		return expr.Lit{V: l.V}, nil
	}
	return nil, unsupportedf("linking attribute %q", edge.Pred.Left)
}

// antijoin2VL reports whether a linking operator is effectively negative
// under 2VL — equivalent to ¬∃(two-valued match), i.e. an antijoin.
// CmpAll covers both syntactic forms: A θ ALL {B} is ¬∃m ¬₂(A θ m), and a
// NOT-folded SOME (SynNeg) is ¬∃m (A θ' m).
func antijoin2VL(edge *sql.LinkEdge) bool {
	switch edge.Kind {
	case sql.NotExists, sql.NotIn, sql.CmpAll:
		return true
	}
	return false
}

// antijoin2VLOK gates the 2VL antijoin fast path: a negative operator on
// a correlated leaf child, in strict position (a failing outer tuple can
// be discarded outright). Shared with EXPLAIN's plan rendering.
func (p *planner) antijoin2VLOK(node, top *sql.Block, edge *sql.LinkEdge) bool {
	return p.opt.TwoValuedLogic && antijoin2VL(edge) &&
		len(edge.Child.Links) == 0 && !p.subtreeUncorrelated(edge.Child) &&
		p.strictOK(node, top)
}

// antijoinCond builds the per-child-row match condition whose
// non-existence realises a negative 2VL link: the (2VL-rewritten)
// correlation conjoined with the operator's comparison.
func (p *planner) antijoinCond(edge *sql.LinkEdge, c *sql.Block) (expr.Expr, error) {
	cond, err := p.corrCond(c)
	if err != nil {
		return nil, err
	}
	if edge.Kind == sql.NotExists {
		return cond, nil
	}
	la, err := p.q.LinkedAttr(c)
	if err != nil {
		return nil, unsupportedf("%v", err)
	}
	left, err := p.leftExpr(edge)
	if err != nil {
		return nil, err
	}
	var link expr.Expr
	switch {
	case edge.Kind == sql.NotIn:
		// x NOT IN {B} (2VL) = ¬∃m (x = m): match-iff-True already
		// collapses the NULL comparisons.
		link = expr.Compare(expr.Eq, left, expr.Col(la))
	case edge.SynNeg:
		// NOT (x θ' SOME {B}) = ¬∃m (x θ' m), θ' the syntactic operator.
		link = expr.Compare(edge.Cmp.Negate(), left, expr.Col(la))
	default:
		// x θ ALL {B} (2VL) = ¬∃m ¬₂(x θ m): the inner comparison must be
		// strictly two-valued, else a NULL member reads as "no match" and
		// the outer tuple wrongly survives.
		link = expr.Not{E: expr.TwoValuedStrict(expr.Compare(edge.Cmp, left, expr.Col(la)))}
	}
	return expr.And(cond, link), nil
}

// processEdgeAntijoin executes a negative 2VL link as rel ▷_on T_c — the
// Libkin collapse: no outer join, no nest, no padding machinery.
func (p *planner) processEdgeAntijoin(edge *sql.LinkEdge, rel *relation.Relation) (*relation.Relation, error) {
	c := edge.Child
	on, err := p.antijoinCond(edge, c)
	if err != nil {
		return nil, err
	}
	tc, err := p.reduce(c)
	if err != nil {
		return nil, err
	}
	sp := p.begin("antijoin T%d (2VL)", c.ID+1)
	out, err := algebra.AntiJoin(rel, tc, on)
	if err != nil {
		return nil, err
	}
	p.seq(rel.Len(), tc.Len(), out.Len())
	p.trace("rel := rel ▷ T%d  (2VL antijoin, %d → %d tuples)", c.ID+1, rel.Len(), out.Len())
	p.done(sp, p.estAfter(edge), out.Len())
	return out, nil
}

// pushdownCols checks §4.2.4's applicability: the correlation condition
// is a conjunction of equalities child-col = outer-col. It returns the
// child-side and outer-side columns when applicable.
func (p *planner) pushdownCols(c *sql.Block, cond expr.Expr, outer *relation.Schema) (childCols, outerCols []string, ok bool) {
	if cond == nil {
		return nil, nil, false
	}
	var walk func(e expr.Expr) bool
	walk = func(e expr.Expr) bool {
		if l, isAnd := e.(expr.Logic); isAnd && l.Op == expr.OpAnd {
			return walk(l.L) && walk(l.R)
		}
		cmp, isCmp := e.(expr.Cmp)
		if !isCmp || cmp.Op != expr.Eq {
			return false
		}
		lc, lok := cmp.L.(expr.Column)
		rc, rok := cmp.R.(expr.Column)
		if !lok || !rok {
			return false
		}
		switch {
		case p.colBlock[lc.Name] == c.ID && outer.ColIndex(rc.Name) >= 0:
			childCols = append(childCols, lc.Name)
			outerCols = append(outerCols, rc.Name)
			return true
		case p.colBlock[rc.Name] == c.ID && outer.ColIndex(lc.Name) >= 0:
			childCols = append(childCols, rc.Name)
			outerCols = append(outerCols, lc.Name)
			return true
		}
		return false
	}
	if !walk(cond) {
		return nil, nil, false
	}
	return childCols, outerCols, len(childCols) > 0
}

// processEdgePushdown implements §4.2.4: nest the reduced child by its
// join columns first (υ over the small T_c), then left-outer-join the
// one-level nested relation to rel — the identity
// υ_{B},{C}(R ⋈_{A=B} S) = R ⋈_{A=B} (υ_{B},{C} S).
func (p *planner) processEdgePushdown(node *sql.Block, edge *sql.LinkEdge, rel *relation.Relation, subName string, strict bool, childCols, outerCols []string) (*relation.Relation, error) {
	c := edge.Child
	tc, err := p.reduce(c)
	if err != nil {
		return nil, err
	}
	// One child column may be equated with several outer columns; nest by
	// each child column once, but keep every equality in the join.
	var nestBy []string
	seen := make(map[string]bool, len(childCols))
	for _, jc := range childCols {
		if !seen[jc] {
			seen[jc] = true
			nestBy = append(nestBy, jc)
		}
	}
	var keep []string
	for _, col := range tc.Schema.ColNames() {
		if !seen[col] {
			keep = append(keep, col)
		}
	}
	sp := p.begin("nest T%d below join (§4.2.4)", c.ID+1)
	nested, err := algebra.Nest(tc, nestBy, keep, subName)
	if err != nil {
		return nil, err
	}
	p.seq(tc.Len(), nested.Len()) // pushed-down nest over the small T_c
	p.trace("υ(T%d) pushed below the join (§4.2.4): %d tuples → %d groups", c.ID+1, tc.Len(), nested.Len())
	p.done(sp, -1, nested.Len())
	var onParts []expr.Expr
	for i := range childCols {
		onParts = append(onParts, expr.Compare(expr.Eq, expr.Col(outerCols[i]), expr.Col(childCols[i])))
	}
	outCols := rel.Schema.ColNames()
	relLen := rel.Len()
	rel, err = p.outerJoin(rel, nested, expr.And(onParts...))
	if err != nil {
		return nil, err
	}
	p.seq(relLen, nested.Len(), rel.Len())
	pred, err := p.linkPred(edge, subName, c)
	if err != nil {
		return nil, err
	}
	// Members of a pushed-down group are real child tuples; an outer tuple
	// with no match gets a nil group (the empty set). The child's presence
	// column may have been projected away from the group, so presence
	// filtering is disabled.
	pred.Presence = ""
	sp = p.begin("link L%d on pushed-down groups (%s)", c.ID+1, linkString(edge))
	if strict {
		rel, err = algebra.LinkSelect(rel, pred)
	} else {
		rel, err = algebra.LinkSelectPad(rel, pred, p.blockCols(rel, node.ID))
	}
	if err != nil {
		return nil, err
	}
	p.done(sp, p.estAfter(edge), rel.Len())
	// Drop the group and the child-side join columns.
	rel, err = algebra.DropSub(rel, subName)
	if err != nil {
		return nil, err
	}
	return algebra.Project(rel, outCols...)
}
