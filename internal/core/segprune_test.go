package core

import (
	"strings"
	"testing"

	"nra/internal/catalog"
	"nra/internal/colstore"
	"nra/internal/relation"
)

// segCatalog builds a catalog whose tables are segment-backed with
// 64-row groups — the configuration a columnar Save/Load produces,
// shrunk so a few hundred rows span many groups. F.a is clustered
// (ascending PK), so range predicates over it prune; F.d carries NULL
// runs for IS NULL pruning; F.c cycles a small dictionary.
func segCatalog(t testing.TB, attach bool) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	rows := make([][]any, 640)
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := range rows {
		var d any
		if i >= 128 && i < 256 { // groups 2 and 3 are all-NULL in d
			d = nil
		} else {
			d = i % 7
		}
		rows[i] = []any{i, float64(i) / 4, words[(i/160)%len(words)], d}
	}
	rel := relation.MustFromRows("F", []string{"a", "b", "c", "d"}, rows...)
	tbl, err := cat.Create("F", rel, "a")
	if err != nil {
		t.Fatal(err)
	}
	if attach {
		seg, err := colstore.Write(rel, colstore.WriteOptions{GroupRows: 64})
		if err != nil {
			t.Fatal(err)
		}
		rdr, err := colstore.Open(seg)
		if err != nil {
			t.Fatal(err)
		}
		tbl.AttachSegments(rdr)
	}
	return cat
}

// TestSegmentPruningParity is the zone-map soundness gate at the query
// level: for every predicate shape the pruner understands, the
// segment-backed vectorized plan (groups skipped, skipped bytes never
// decoded) must produce the same tuple sequence as both the row engine
// on the same catalog and the vectorized engine on an unsegmented
// catalog.
func TestSegmentPruningParity(t *testing.T) {
	queries := []string{
		"select F.a from F where F.a < 100",
		"select F.a, F.c from F where F.a >= 600",
		"select F.a from F where F.b > 100000.0",   // impossible: every group pruned
		"select F.a from F where F.d is null",      // NULL-run groups kept, others too (d has no NULLs there)
		"select F.a from F where F.d is not null",  // all-NULL groups pruned
		"select F.a from F where not (F.a >= 100)", // NOT over a range
		"select F.a from F where F.a < 64 or F.a > 600",
		"select F.a from F where F.c = 'alpha' and F.a < 500",
		"select F.a from F where 100 > F.a", // flipped operand order
		"select F.a from F where F.a < 100 and F.d = 3",
		`select F.a from F where F.a < 130 and exists
			(select * from F f2 where f2.a = F.d)`, // pruning inside a linked plan
	}
	segCat := segCatalog(t, true)
	flatCat := segCatalog(t, false)
	vopt := Optimized()
	vopt.Vectorized = true
	for _, src := range queries {
		want, err := Execute(analyze(t, flatCat, src), Optimized())
		if err != nil {
			t.Fatalf("%q: row engine: %v", src, err)
		}
		for name, cat := range map[string]*catalog.Catalog{"segmented": segCat, "flat": flatCat} {
			got, err := Execute(analyze(t, cat, src), vopt)
			if err != nil {
				t.Fatalf("%q on %s catalog: %v", src, name, err)
			}
			if err := sameSequence(got, want); err != nil {
				t.Errorf("%q on %s catalog differs from row engine: %v", src, name, err)
			}
		}
	}
}

// TestExplainSegments pins the static plan annotation: EXPLAIN over a
// segment-backed table reports exactly the scanned/total row groups the
// runtime scan will visit, and stays silent for unsegmented tables and
// row-path predicates.
func TestExplainSegments(t *testing.T) {
	vopt := Optimized()
	vopt.Vectorized = true

	cat := segCatalog(t, true)
	for src, want := range map[string]string{
		"select F.a from F where F.a < 100":      "[segments: 2/10]",
		"select F.a from F where F.b > 100000.0": "[segments: 0/10]",
		"select F.a from F where F.a >= 0":       "[segments: 10/10]",
	} {
		plan, err := Explain(analyze(t, cat, src), vopt)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan, want) {
			t.Errorf("plan for %q lacks %q:\n%s", src, want, plan)
		}
	}

	// Unsegmented catalog: no annotation at all.
	plan, err := Explain(analyze(t, segCatalog(t, false), "select F.a from F where F.a < 100"), vopt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "segments:") {
		t.Errorf("unsegmented plan claims segment pruning:\n%s", plan)
	}

	// Row path (vectorization off): the scan reads every group, so the
	// annotation would be a lie.
	plan, err = Explain(analyze(t, cat, "select F.a from F where F.a < 100"), Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "segments:") {
		t.Errorf("row-path plan claims segment pruning:\n%s", plan)
	}

	// NoZoneMapPruning: same segmented catalog and batch path, pruning
	// switched off for the ablation — no annotation, identical results.
	nopt := vopt
	nopt.NoZoneMapPruning = true
	plan, err = Explain(analyze(t, cat, "select F.a from F where F.a < 100"), nopt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "segments:") {
		t.Errorf("NoZoneMapPruning plan claims segment pruning:\n%s", plan)
	}
	pruned, err := Execute(analyze(t, cat, "select F.a from F where F.a < 100"), vopt)
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := Execute(analyze(t, cat, "select F.a from F where F.a < 100"), nopt)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSequence(pruned, unpruned); err != nil {
		t.Errorf("pruned vs NoZoneMapPruning: %v", err)
	}
}

// TestPrunedScanSkipsDecoding checks the lazy half of the contract: a
// pruned query leaves the skipped groups' bytes undecoded in the
// catalog's column store, and a later full scan tops them up to exact
// parity with the unsegmented answer.
func TestPrunedScanSkipsDecoding(t *testing.T) {
	cat := segCatalog(t, true)
	vopt := Optimized()
	vopt.Vectorized = true
	// Selective first: only groups 0–1 of F decode.
	if _, err := Execute(analyze(t, cat, "select F.a, F.b, F.c, F.d from F where F.a < 100"), vopt); err != nil {
		t.Fatal(err)
	}
	// Then the full table through the same memoized vectors.
	got, err := Execute(analyze(t, cat, "select F.a, F.b, F.c, F.d from F where F.a >= 0"), vopt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Execute(analyze(t, segCatalog(t, false), "select F.a, F.b, F.c, F.d from F where F.a >= 0"), Optimized())
	if err != nil {
		t.Fatal(err)
	}
	if err := sameSequence(got, want); err != nil {
		t.Fatalf("full scan after pruned scan is wrong: %v", err)
	}
	if got.Len() != 640 {
		t.Fatalf("full scan returned %d rows, want 640", got.Len())
	}
}
