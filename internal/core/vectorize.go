package core

import (
	"fmt"

	"nra/internal/colstore"
	"nra/internal/expr"
	"nra/internal/opt"
	"nra/internal/sql"
	"nra/internal/vec"
)

// Batch-at-a-time dispatch. Options.Vectorized routes the hot-path
// operators — block reduction, hash joins, the fused nest + linking
// selection — through internal/vec's kernels when the whole-query gate
// and the per-operator shape checks allow it. Every decision is recorded
// so EXPLAIN and the slow-query log show which path each operator took
// and why; the row engine remains the parity oracle, so every fallback
// is between byte-identical implementations.

// vecGate reports why the batch operators cannot be used under the
// current options ("" = they can). The gate is a pure function of the
// options, so EXPLAIN reaches the same verdict as execution: batches
// neither hash-partition across workers nor spill under a memory
// budget, and the fault-injection hooks intercept only the row
// operators. Context/timeout governance does NOT disable the batch
// path — its operators observe cancellation at batch boundaries.
func (p *planner) vecGate() string {
	switch {
	case !p.opt.Vectorized:
		return "not requested"
	case p.opt.Parallelism > 1:
		return "partitioned parallelism requested"
	case p.opt.MemoryBudget > 0:
		return "memory budget set (batch operators do not spill)"
	case p.opt.MemPool != nil:
		return "pooled memory budget set (batch operators do not spill)"
	case p.opt.Hooks != nil:
		return "fault hooks installed"
	}
	return ""
}

// vecCostOK applies the cost gate: with cost-based planning active, an
// operator input below opt.VecMinRows keeps the row path (batch setup
// would not amortise); without it the batch path is taken uncondition-
// ally, matching how the other physical knobs behave.
func (p *planner) vecCostOK(rows float64) bool {
	return !p.costBased() || opt.VectorizeWorthwhile(rows)
}

// vecNote records one operator's runtime fallback from the batch to the
// row path, deduplicated, for EXPLAIN and the slow-query log.
func (p *planner) vecNote(op, reason string) {
	n := fmt.Sprintf("%s [row: %s]", op, reason)
	for _, e := range p.vecNotes {
		if e == n {
			return
		}
	}
	p.vecNotes = append(p.vecNotes, n)
}

// reduceVecLabel classifies a block's reduction for the static EXPLAIN
// annotation: "batch" when the single-table scan→filter→project pass
// has a predicate kernel, else "row: reason". It mirrors exactly the
// checks exec.VecReduce performs at run time.
func (p *planner) reduceVecLabel(b *sql.Block) string {
	if len(b.Tables) != 1 {
		return "row: multi-table block"
	}
	local, err := p.q.LowerAll(b.Local)
	if err != nil {
		return "row: unlowerable predicate"
	}
	if local = p.filterExpr(local); local != nil {
		if _, ok := vec.CompilePred(local, b.Tables[0].Schema); !ok {
			return "row: predicate has no batch kernel"
		}
	}
	return "batch"
}

// segPruneLabel renders EXPLAIN's static `segments: scanned/total`
// annotation for a single-table block whose table version is
// segment-backed and whose local predicate runs on the batch path. It
// calls the same colstore.PruneGroups the runtime scan uses, so the
// numbers are exactly what execution will do on this snapshot.
func (p *planner) segPruneLabel(b *sql.Block) string {
	if !p.opt.Vectorized || p.vecGate() != "" || p.opt.NoZoneMapPruning || len(b.Tables) != 1 {
		return ""
	}
	bt := b.Tables[0]
	segs := bt.Table.Segments()
	if segs == nil || segs.Rows() != bt.Table.Rel.Len() {
		return ""
	}
	local, err := p.q.LowerAll(b.Local)
	if err != nil || local == nil {
		return ""
	}
	local = p.filterExpr(local)
	if _, ok := vec.CompilePred(local, bt.Schema); !ok {
		return "" // row fallback scans every group
	}
	_, scanned, total := colstore.PruneGroups(local, bt.Schema, segs.Footer())
	return fmt.Sprintf("segments: %d/%d", scanned, total)
}

// linkJoinVecLabel classifies a link edge's outer join for the static
// EXPLAIN annotation. The batched-probe hash join needs the correlation
// condition to be an AND-tree of column = column conjuncts (the same
// shape gate the equi-key extractor applies at run time); anything else
// leaves a residual the batch join has no kernel for.
func (p *planner) linkJoinVecLabel(child *sql.Block) string {
	on, err := p.corrCond(child)
	if err != nil {
		return "row: unlowerable correlation predicate"
	}
	if on == nil {
		return "row: no equi-join keys"
	}
	if !equiShape(on) {
		return "row: non-equi residual condition"
	}
	return "batch"
}

// equiShape reports whether e is an AND-tree of column = column
// comparisons — the join shapes the batch hash join accepts whole.
func equiShape(e expr.Expr) bool {
	switch x := e.(type) {
	case expr.Logic:
		return x.Op == expr.OpAnd && equiShape(x.L) && equiShape(x.R)
	case expr.Cmp:
		if x.Op != expr.Eq {
			return false
		}
		_, lc := x.L.(expr.Column)
		_, rc := x.R.(expr.Column)
		return lc && rc
	}
	return false
}
