package core

import (
	"math/rand"
	"strings"
	"testing"

	"nra/internal/naive"
	"nra/internal/sql"
)

// Plan-shape tests for the 2VL mode: under two-valued logic every
// negative linking operator at a strict correlated leaf must unnest into
// a plain antijoin — the EXPLAIN tree shows "▷ antijoin" and no "L:"
// linking-operator line — while under 3VL the same queries keep their
// linking operators.

var twoVLNegativeQueries = map[string]string{
	"not-exists": "select t1.x from A t1 where not exists (select * from B t2 where t2.w = t1.w)",
	"not-in":     "select t1.x from A t1 where t1.x not in (select t2.y from B t2 where t2.w = t1.w)",
	"all":        "select t1.x from A t1 where t1.x > all (select t2.y from B t2 where t2.w = t1.w)",
	"not-some":   "select t1.x from A t1 where not t1.x <= some (select t2.y from B t2 where t2.w = t1.w)",
}

func twoVLOptions() Options {
	o := Optimized()
	o.TwoValuedLogic = true
	return o
}

func TestTwoVLExplainAntijoinShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cat := randCatalog(t, rng)
	for name, src := range twoVLNegativeQueries {
		sel, err := sql.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		q, err := sql.Analyze(sel, cat)
		if err != nil {
			t.Fatalf("%s: analyze: %v", name, err)
		}
		plan, err := Explain(q, twoVLOptions())
		if err != nil {
			t.Fatalf("%s: explain: %v", name, err)
		}
		if !strings.Contains(plan, "▷ antijoin") {
			t.Errorf("%s: 2VL plan lacks the antijoin:\n%s", name, plan)
		}
		if strings.Contains(plan, "L: ") {
			t.Errorf("%s: 2VL plan still shows a linking operator:\n%s", name, plan)
		}
		plan3, err := Explain(q, Optimized())
		if err != nil {
			t.Fatalf("%s: explain 3VL: %v", name, err)
		}
		if !strings.Contains(plan3, "L: ") || strings.Contains(plan3, "▷ antijoin") {
			t.Errorf("%s: 3VL plan should keep the linking operator:\n%s", name, plan3)
		}
	}
}

// TestTwoVLAntijoinMatchesReference pins the antijoin fast path's
// results against the 2VL reference evaluator on NULL-bearing data, for
// every planner configuration in the option matrix.
func TestTwoVLAntijoinMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cat := randCatalog(t, rng)
		for name, src := range twoVLNegativeQueries {
			sel, err := sql.Parse(src)
			if err != nil {
				t.Fatalf("%s: parse: %v", name, err)
			}
			q, err := sql.Analyze(sel, cat)
			if err != nil {
				t.Fatalf("%s: analyze: %v", name, err)
			}
			want, err := naive.EvaluateTwoValued(q)
			if err != nil {
				t.Fatalf("%s: reference: %v", name, err)
			}
			for mode, opt := range optionMatrix {
				opt.TwoValuedLogic = true
				got, err := Execute(q, opt)
				if err != nil {
					t.Fatalf("seed %d %s (%s): %v", seed, name, mode, err)
				}
				if !got.EqualSet(want) {
					t.Fatalf("seed %d %s (%s): 2VL result differs\nreference (%d rows):\n%s%s (%d rows):\n%s",
						seed, name, mode, want.Len(), want, mode, got.Len(), got)
				}
			}
		}
	}
}
