package core

import (
	"nra/internal/algebra"
	"nra/internal/exec"
	"nra/internal/expr"
	"nra/internal/obsv"
	"nra/internal/opt"
	"nra/internal/relation"
	"nra/internal/vec"
)

// Physical-operator dispatch: every join and fused nest/linking-selection
// the planner emits goes through these helpers, which select the
// partitioned-parallel implementations when Options.Parallelism > 1 and
// the serial ones otherwise. Both implementations produce byte-identical
// output (the parallel operators merge partitions deterministically), so
// the degree of parallelism is purely a physical knob.

// par returns the effective degree of parallelism (≥ 1). With cost-based
// planning active the degree drops to 1 when the estimated peak operator
// input is too small to amortise the worker pool (opt.ParallelDegree);
// results are byte-identical either way.
func (p *planner) par() int {
	if p.opt.Parallelism > 1 {
		if p.costBased() {
			return opt.ParallelDegree(p.opt.Parallelism, p.peakRows)
		}
		return p.opt.Parallelism
	}
	return 1
}

// join executes l ⋈_on r with the plan's degree of parallelism.
func (p *planner) join(l, r *relation.Relation, on expr.Expr) (*relation.Relation, error) {
	if out, done, err := p.vecJoin(l, r, on, false); done {
		return out, err
	}
	if par := p.par(); par > 1 || p.ec.Governed() {
		return exec.ParallelJoin(p.ec, l, r, on, false, par)
	}
	return p.serialJoin(l, r, on, false)
}

// outerJoin executes l ⟕_on r with the plan's degree of parallelism.
func (p *planner) outerJoin(l, r *relation.Relation, on expr.Expr) (*relation.Relation, error) {
	if out, done, err := p.vecJoin(l, r, on, true); done {
		return out, err
	}
	if par := p.par(); par > 1 || p.ec.Governed() {
		return exec.ParallelJoin(p.ec, l, r, on, true, par)
	}
	return p.serialJoin(l, r, on, true)
}

// vecJoin tries the batched-probe hash join. done is false when the
// join must run on the row path instead (gate closed, input too small,
// or a shape with no batch kernel — the last recorded as a vec note).
// Input batches come from the planner's batch cache when an upstream
// batch operator produced them; the output batch is cached in turn, so
// a fully batchable reduce→join→nest chain converts each column once.
func (p *planner) vecJoin(l, r *relation.Relation, on expr.Expr, outer bool) (out *relation.Relation, done bool, err error) {
	op := "join"
	if outer {
		op = "outer join"
	}
	if p.vecGate() != "" {
		return nil, false, nil
	}
	if !p.vecCostOK(float64(l.Len() + r.Len())) {
		p.vecNote(op, "below vectorization threshold")
		return nil, false, nil
	}
	out, ob, reason, err := exec.VecHashJoin(p.ec, l, r, p.vecCache[l], p.vecCache[r], on, outer)
	if err != nil {
		return nil, true, err
	}
	if reason != "" {
		p.vecNote(op, reason)
		return nil, false, nil
	}
	p.vecPut(out, ob)
	return out, true, nil
}

// vecPut records rel's column-vector form for downstream batch
// operators; vecCache is keyed by relation identity, sound because
// relations are immutable during query execution.
func (p *planner) vecPut(rel *relation.Relation, b *vec.Batch) {
	if p.vecCache == nil {
		p.vecCache = make(map[*relation.Relation]*vec.Batch)
	}
	p.vecCache[rel] = b
}

// serialJoin runs the serial algebra join under a span of its own, so
// the trace covers every physical join variant exactly once
// (exec.ParallelJoin records its own span).
func (p *planner) serialJoin(l, r *relation.Relation, on expr.Expr, outer bool) (res *relation.Relation, err error) {
	if p.ec.Tracing() {
		op := "join"
		if outer {
			op = "outer join"
		}
		sp := p.ec.StartSpan(op, obsv.KindJoin)
		sp.AddRowsIn(int64(l.Len() + r.Len()))
		defer func() {
			if res != nil {
				sp.AddRowsOut(int64(res.Len()))
			}
			sp.End()
		}()
	}
	if outer {
		return algebra.LeftOuterJoin(l, r, on)
	}
	return algebra.Join(l, r, on)
}

// nestLink executes the fused nest + linking selection with the plan's
// degree of parallelism (partitioned by the nest key).
func (p *planner) nestLink(rel *relation.Relation, keyCols, by []string, spec *exec.LinkSpec, pad []string) (*relation.Relation, error) {
	if p.vecGate() == "" {
		if !p.vecCostOK(float64(rel.Len())) {
			p.vecNote("nestlink", "below vectorization threshold")
		} else {
			out, reason, err := exec.VecNestLink(p.ec, rel, p.vecCache[rel], keyCols, by, spec, pad)
			if err != nil {
				return nil, err
			}
			if reason == "" {
				return out, nil
			}
			p.vecNote("nestlink", reason)
		}
	}
	if par := p.par(); par > 1 {
		return exec.ParallelNestLink(p.ec, rel, keyCols, by, spec, pad, par)
	}
	return exec.NestLink(p.ec, rel, keyCols, by, spec, pad)
}

// nestLinkChain executes the fully fused nest chain with the plan's
// degree of parallelism (partitioned by the outermost nest key).
func (p *planner) nestLinkChain(rel *relation.Relation, levels []exec.ChainLevel, outBy []string) (*relation.Relation, error) {
	if p.vecGate() == "" {
		if !p.vecCostOK(float64(rel.Len())) {
			p.vecNote("nestlinkchain", "below vectorization threshold")
		} else {
			out, reason, err := exec.VecNestLinkChain(p.ec, rel, p.vecCache[rel], levels, outBy)
			if err != nil {
				return nil, err
			}
			if reason == "" {
				return out, nil
			}
			p.vecNote("nestlinkchain", reason)
		}
	}
	if par := p.par(); par > 1 {
		return exec.ParallelNestLinkChain(p.ec, rel, levels, outBy, par)
	}
	return exec.NestLinkChain(p.ec, rel, levels, outBy)
}
