package core

import (
	"nra/internal/algebra"
	"nra/internal/exec"
	"nra/internal/expr"
	"nra/internal/obsv"
	"nra/internal/opt"
	"nra/internal/relation"
)

// Physical-operator dispatch: every join and fused nest/linking-selection
// the planner emits goes through these helpers, which select the
// partitioned-parallel implementations when Options.Parallelism > 1 and
// the serial ones otherwise. Both implementations produce byte-identical
// output (the parallel operators merge partitions deterministically), so
// the degree of parallelism is purely a physical knob.

// par returns the effective degree of parallelism (≥ 1). With cost-based
// planning active the degree drops to 1 when the estimated peak operator
// input is too small to amortise the worker pool (opt.ParallelDegree);
// results are byte-identical either way.
func (p *planner) par() int {
	if p.opt.Parallelism > 1 {
		if p.costBased() {
			return opt.ParallelDegree(p.opt.Parallelism, p.peakRows)
		}
		return p.opt.Parallelism
	}
	return 1
}

// join executes l ⋈_on r with the plan's degree of parallelism.
func (p *planner) join(l, r *relation.Relation, on expr.Expr) (*relation.Relation, error) {
	if par := p.par(); par > 1 || p.ec.Governed() {
		return exec.ParallelJoin(p.ec, l, r, on, false, par)
	}
	return p.serialJoin(l, r, on, false)
}

// outerJoin executes l ⟕_on r with the plan's degree of parallelism.
func (p *planner) outerJoin(l, r *relation.Relation, on expr.Expr) (*relation.Relation, error) {
	if par := p.par(); par > 1 || p.ec.Governed() {
		return exec.ParallelJoin(p.ec, l, r, on, true, par)
	}
	return p.serialJoin(l, r, on, true)
}

// serialJoin runs the serial algebra join under a span of its own, so
// the trace covers every physical join variant exactly once
// (exec.ParallelJoin records its own span).
func (p *planner) serialJoin(l, r *relation.Relation, on expr.Expr, outer bool) (res *relation.Relation, err error) {
	if p.ec.Tracing() {
		op := "join"
		if outer {
			op = "outer join"
		}
		sp := p.ec.StartSpan(op, obsv.KindJoin)
		sp.AddRowsIn(int64(l.Len() + r.Len()))
		defer func() {
			if res != nil {
				sp.AddRowsOut(int64(res.Len()))
			}
			sp.End()
		}()
	}
	if outer {
		return algebra.LeftOuterJoin(l, r, on)
	}
	return algebra.Join(l, r, on)
}

// nestLink executes the fused nest + linking selection with the plan's
// degree of parallelism (partitioned by the nest key).
func (p *planner) nestLink(rel *relation.Relation, keyCols, by []string, spec *exec.LinkSpec, pad []string) (*relation.Relation, error) {
	if par := p.par(); par > 1 {
		return exec.ParallelNestLink(p.ec, rel, keyCols, by, spec, pad, par)
	}
	return exec.NestLink(p.ec, rel, keyCols, by, spec, pad)
}

// nestLinkChain executes the fully fused nest chain with the plan's
// degree of parallelism (partitioned by the outermost nest key).
func (p *planner) nestLinkChain(rel *relation.Relation, levels []exec.ChainLevel, outBy []string) (*relation.Relation, error) {
	if par := p.par(); par > 1 {
		return exec.ParallelNestLinkChain(p.ec, rel, levels, outBy, par)
	}
	return exec.NestLinkChain(p.ec, rel, levels, outBy)
}
