package colstore

import (
	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/value"
)

// PruneGroups evaluates pred against every row group's zone maps and
// returns skip[g] = true for each group the zones prove contains no row
// satisfying pred — no row where pred evaluates TRUE under 3VL, the
// filter-keep condition. (The engine's two-valued mode needs no special
// case here: 2VL predicates reach the planner already rewritten by
// expr.TwoValued into 3VL expressions with the same keep set.) scanned
// counts the groups left standing; total is the group count. skip is
// nil when nothing was pruned (schema mismatch, no prunable shape in
// pred, or zones too wide), letting callers skip the per-group check.
//
// The evaluator computes, per group, an over-approximation of the set
// of truth values pred can take on the group's rows. A group is skipped
// only when TRUE is not in that set. Unrecognized expression shapes,
// withheld bounds and cross-kind comparisons (which the row engine
// reports as type errors) all widen the set to {T, F, U}, so they
// disable pruning rather than change results. The same pure function
// backs both the runtime scan and EXPLAIN's static
// `segments: scanned/total` annotation, so the two always agree.
func PruneGroups(pred expr.Expr, s *relation.Schema, ft *Footer) (skip []bool, scanned, total int) {
	total = len(ft.Groups)
	if pred == nil || len(s.Cols) != len(ft.Cols) || total == 0 {
		return nil, total, total
	}
	skip = make([]bool, total)
	any := false
	for g := range ft.Groups {
		p := zoneEval(pred, s, &ft.Groups[g])
		if !p.t {
			skip[g] = true
			any = true
		} else {
			scanned++
		}
	}
	if !any {
		return nil, total, total
	}
	return skip, scanned, total
}

// poss is the set of truth values a predicate may take over a row
// group; every evaluation rule may over-approximate (include extra
// members) but never under-approximate, which keeps skipping sound.
type poss struct{ t, f, u bool }

func allPoss() poss { return poss{t: true, f: true, u: true} }

// zoneEval returns the possible truth values of e over group g.
func zoneEval(e expr.Expr, s *relation.Schema, g *GroupMeta) poss {
	switch n := e.(type) {
	case expr.Cmp:
		return zoneCmp(n, s, g)
	case expr.Logic:
		l, r := zoneEval(n.L, s, g), zoneEval(n.R, s, g)
		if n.Op == expr.OpAnd {
			return poss{t: l.t && r.t, f: l.f || r.f, u: l.u || r.u}
		}
		return poss{t: l.t || r.t, f: l.f && r.f, u: l.u || r.u}
	case expr.Not:
		k := zoneEval(n.E, s, g)
		return poss{t: k.f, f: k.t, u: k.u}
	case expr.IsNull:
		col, ok := n.E.(expr.Column)
		if !ok {
			if lit, isLit := n.E.(expr.Lit); isLit {
				return triPoss(value.TriOf(lit.V.IsNull() != n.Negate))
			}
			return allPoss()
		}
		ci := s.ColIndex(col.Name)
		if ci < 0 {
			return allPoss()
		}
		z := &g.Zones[ci]
		isNull := poss{t: z.Nulls > 0, f: z.Nulls < z.Rows}
		if n.Negate {
			isNull.t, isNull.f = isNull.f, isNull.t
		}
		return isNull
	case expr.Lit:
		if n.V.IsNull() {
			return poss{u: true}
		}
		if n.V.Kind() == value.KindBool {
			return triPoss(n.V.Truth())
		}
		return allPoss()
	}
	return allPoss()
}

func triPoss(t value.Tri) poss {
	switch t {
	case value.True:
		return poss{t: true}
	case value.False:
		return poss{f: true}
	default:
		return poss{u: true}
	}
}

// zoneCmp bounds a column-vs-literal comparison (either operand order)
// against the group's zone map. Any shape it cannot reason about — two
// columns, arithmetic, missing bounds, a comparison value.Compare
// rejects — yields the full set.
func zoneCmp(c expr.Cmp, s *relation.Schema, g *GroupMeta) poss {
	var col expr.Column
	var lit value.Value
	op := c.Op
	switch l := c.L.(type) {
	case expr.Column:
		r, ok := c.R.(expr.Lit)
		if !ok {
			return allPoss()
		}
		col, lit = l, r.V
	case expr.Lit:
		r, ok := c.R.(expr.Column)
		if !ok {
			return allPoss()
		}
		col, lit, op = r, l.V, op.Flip()
	default:
		return allPoss()
	}
	ci := s.ColIndex(col.Name)
	if ci < 0 {
		return allPoss()
	}
	z := &g.Zones[ci]

	var p poss
	if lit.IsNull() {
		// NULL on either side makes every row's comparison Unknown.
		p.u = z.Rows > 0
		return p
	}
	if nonNull := z.Rows - z.Nulls; nonNull > 0 {
		if !z.HasBounds {
			p.t, p.f = true, true
		} else {
			cMin, okMin, errMin := value.Compare(z.Min, lit)
			cMax, okMax, errMax := value.Compare(z.Max, lit)
			if errMin != nil || errMax != nil || !okMin || !okMax {
				// The row engine would raise a type error here; keep the
				// group so it still does.
				return allPoss()
			}
			switch op {
			case expr.Eq:
				p.t = cMin <= 0 && cMax >= 0
				p.f = cMin != 0 || cMax != 0
			case expr.Ne:
				p.t = cMin != 0 || cMax != 0
				p.f = cMin <= 0 && cMax >= 0
			case expr.Lt:
				p.t, p.f = cMin < 0, cMax >= 0
			case expr.Le:
				p.t, p.f = cMin <= 0, cMax > 0
			case expr.Gt:
				p.t, p.f = cMax > 0, cMin <= 0
			case expr.Ge:
				p.t, p.f = cMax >= 0, cMin < 0
			default:
				return allPoss()
			}
		}
	}
	if z.Nulls > 0 {
		p.u = true
	}
	return p
}
