package colstore

import (
	"math"
	"math/rand"
	"testing"

	"nra/internal/relation"
	"nra/internal/stats"
	"nra/internal/value"
	"nra/internal/vec"
)

// buildRel assembles a flat relation; each column is a []value.Value.
func buildRel(name string, names []string, types []relation.Type, cols ...[]value.Value) *relation.Relation {
	sc := &relation.Schema{Name: name}
	for i, n := range names {
		sc.Cols = append(sc.Cols, relation.Column{Name: n, Type: types[i]})
	}
	rel := relation.New(sc)
	if len(cols) == 0 {
		return rel
	}
	for r := range cols[0] {
		tp := relation.Tuple{Atoms: make([]value.Value, len(cols))}
		for c := range cols {
			tp.Atoms[c] = cols[c][r]
		}
		rel.Append(tp)
	}
	return rel
}

// roundTrip writes rel and reopens it, failing the test on any error.
func roundTrip(t *testing.T, rel *relation.Relation, opt WriteOptions) *Reader {
	t.Helper()
	data, err := Write(rel, opt)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	r, err := Open(data)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return r
}

// assertRelEqual compares two relations tuple-for-tuple under
// value.Identical (so NaNs and -0.0 compare by identity, not ordering).
func assertRelEqual(t *testing.T, got, want *relation.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("rows: got %d want %d", got.Len(), want.Len())
	}
	for i := range want.Tuples {
		for c := range want.Tuples[i].Atoms {
			g, w := got.Tuples[i].Atoms[c], want.Tuples[i].Atoms[c]
			if !value.Identical(g, w) {
				t.Fatalf("row %d col %d: got %v want %v", i, c, g, w)
			}
		}
	}
}

// assertVectorParity checks a decoded column is observationally
// identical to vec.ColumnVector over the original rows: same kind, same
// per-row values and NULL bits, and for dictionary strings the same
// codes and first-appearance dictionary.
func assertVectorParity(t *testing.T, got *vec.Vector, rel *relation.Relation, c int) {
	t.Helper()
	want := vec.ColumnVector(rel.Tuples, c)
	if got.Kind != want.Kind {
		t.Fatalf("col %d kind: got %v want %v", c, got.Kind, want.Kind)
	}
	if got.Len() != want.Len() {
		t.Fatalf("col %d len: got %d want %d", c, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.IsNull(i) != want.IsNull(i) {
			t.Fatalf("col %d row %d null: got %v want %v", c, i, got.IsNull(i), want.IsNull(i))
		}
		if !value.Identical(got.Value(i), want.Value(i)) {
			t.Fatalf("col %d row %d: got %v want %v", c, i, got.Value(i), want.Value(i))
		}
	}
	if want.Kind == value.KindString {
		if len(got.Dict) != len(want.Dict) {
			t.Fatalf("col %d dict size: got %d want %d", c, len(got.Dict), len(want.Dict))
		}
		for i := range want.Dict {
			if got.Dict[i] != want.Dict[i] {
				t.Fatalf("col %d dict[%d]: got %q want %q", c, i, got.Dict[i], want.Dict[i])
			}
			if got.Codes[i] != want.Codes[i] {
				t.Fatalf("col %d code[%d]: got %d want %d", c, i, got.Codes[i], want.Codes[i])
			}
		}
	}
	// Typed payloads in NULL slots stay zero, like the in-memory store.
	for i := 0; i < want.Len(); i++ {
		if !got.IsNull(i) {
			continue
		}
		switch got.Kind {
		case value.KindInt, value.KindBool:
			if got.Ints[i] != 0 {
				t.Fatalf("col %d row %d: NULL slot holds %d", c, i, got.Ints[i])
			}
		case value.KindFloat:
			if got.Floats[i] != 0 {
				t.Fatalf("col %d row %d: NULL slot holds %v", c, i, got.Floats[i])
			}
		case value.KindString:
			if got.Codes[i] != 0 {
				t.Fatalf("col %d row %d: NULL slot holds code %d", c, i, got.Codes[i])
			}
		}
	}
}

func checkRoundTrip(t *testing.T, rel *relation.Relation, opt WriteOptions) *Reader {
	t.Helper()
	r := roundTrip(t, rel, opt)
	back, err := r.RelationFor(rel.Schema)
	if err != nil {
		t.Fatalf("RelationFor: %v", err)
	}
	assertRelEqual(t, back, rel)
	for c := range rel.Schema.Cols {
		got, err := r.Column(c)
		if err != nil {
			t.Fatalf("Column(%d): %v", c, err)
		}
		assertVectorParity(t, got, rel, c)
	}
	return r
}

// randomRel generates a mixed-type relation with NULL skew for the
// property tests.
func randomRel(rng *rand.Rand, rows int) *relation.Relation {
	names := []string{"t.a", "t.b", "t.c", "t.d"}
	types := []relation.Type{relation.TInt, relation.TFloat, relation.TString, relation.TBool}
	cols := make([][]value.Value, 4)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for r := 0; r < rows; r++ {
		for c := range cols {
			if rng.Intn(5) == 0 {
				cols[c] = append(cols[c], value.Null)
				continue
			}
			switch c {
			case 0:
				cols[c] = append(cols[c], value.Int(rng.Int63n(2000)-1000))
			case 1:
				cols[c] = append(cols[c], value.Float(rng.NormFloat64()*100))
			case 2:
				cols[c] = append(cols[c], value.Str(words[rng.Intn(len(words))]))
			case 3:
				cols[c] = append(cols[c], value.Bool(rng.Intn(2) == 0))
			}
		}
	}
	return buildRel("t", names, types, cols...)
}

func TestRoundTripTypedColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, rows := range []int{1, 63, 64, 65, 200, 1000} {
		rel := randomRel(rng, rows)
		r := checkRoundTrip(t, rel, WriteOptions{GroupRows: 64})
		wantGroups := (rows + 63) / 64
		if r.Footer().NumGroups() != wantGroups {
			t.Fatalf("rows=%d: %d groups, want %d", rows, r.Footer().NumGroups(), wantGroups)
		}
	}
}

func TestRoundTripEmptyTable(t *testing.T) {
	rel := buildRel("t", []string{"t.a", "t.b"}, []relation.Type{relation.TInt, relation.TString})
	r := checkRoundTrip(t, rel, WriteOptions{})
	if r.Rows() != 0 || r.Footer().NumGroups() != 0 {
		t.Fatalf("empty table: rows=%d groups=%d", r.Rows(), r.Footer().NumGroups())
	}
}

func TestRoundTripAllNullColumn(t *testing.T) {
	n := 130
	nulls := make([]value.Value, n)
	ints := make([]value.Value, n)
	for i := range ints {
		ints[i] = value.Int(int64(i))
	}
	rel := buildRel("t", []string{"t.a", "t.b"}, []relation.Type{relation.TInt, relation.TString}, ints, nulls)
	r := checkRoundTrip(t, rel, WriteOptions{GroupRows: 64})
	if enc := r.Footer().Cols[1].Enc; enc != EncBoxed {
		t.Fatalf("all-NULL column encoded as %q, want %q", enc, EncBoxed)
	}
	for g := 0; g < r.Footer().NumGroups(); g++ {
		z := r.Footer().Groups[g].Zones[1]
		if z.HasBounds || z.Nulls != z.Rows {
			t.Fatalf("group %d zone: %+v", g, z)
		}
	}
}

func TestRoundTripSingleRowSegment(t *testing.T) {
	rel := buildRel("t", []string{"t.a", "t.b", "t.c"},
		[]relation.Type{relation.TInt, relation.TFloat, relation.TString},
		[]value.Value{value.Int(-42)}, []value.Value{value.Float(3.5)}, []value.Value{value.Str("only")})
	r := checkRoundTrip(t, rel, WriteOptions{})
	if r.Footer().NumGroups() != 1 || r.Footer().Groups[0].Rows != 1 {
		t.Fatalf("single row segment: %+v", r.Footer().Groups)
	}
}

func TestRoundTripDictionaryOverflow(t *testing.T) {
	n := 256
	strs := make([]value.Value, n)
	for i := range strs {
		strs[i] = value.Str(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i%17)))
	}
	rel := buildRel("t", []string{"t.s"}, []relation.Type{relation.TString}, strs)
	r := checkRoundTrip(t, rel, WriteOptions{GroupRows: 64, DictMax: 8})
	if enc := r.Footer().Cols[0].Enc; enc != EncStr {
		t.Fatalf("overflowing column encoded as %q, want %q", enc, EncStr)
	}

	// The same data under a roomy cap dictionary-encodes.
	few := make([]value.Value, n)
	for i := range few {
		few[i] = value.Str([]string{"x", "y", "z"}[i%3])
	}
	rel2 := buildRel("t", []string{"t.s"}, []relation.Type{relation.TString}, few)
	r2 := checkRoundTrip(t, rel2, WriteOptions{GroupRows: 64})
	if enc := r2.Footer().Cols[0].Enc; enc != EncDict {
		t.Fatalf("low-cardinality column encoded as %q, want %q", enc, EncDict)
	}
}

func TestRoundTripFloatSpecials(t *testing.T) {
	vals := []value.Value{
		value.Float(math.NaN()),
		value.Float(math.Inf(1)),
		value.Float(math.Inf(-1)),
		value.Float(math.Copysign(0, -1)),
		value.Float(0),
		value.Null,
		value.Float(math.MaxFloat64),
		value.Float(math.SmallestNonzeroFloat64),
	}
	rel := buildRel("t", []string{"t.f"}, []relation.Type{relation.TFloat}, vals)
	r := checkRoundTrip(t, rel, WriteOptions{GroupRows: 64})
	z := r.Footer().Groups[0].Zones[0]
	if z.HasBounds {
		t.Fatalf("NaN-bearing group published bounds %v..%v", z.Min, z.Max)
	}
	// Without the NaN the bounds come back, surviving the hex-bits JSON
	// round trip with ±Inf intact.
	rel2 := buildRel("t", []string{"t.f"}, []relation.Type{relation.TFloat}, vals[1:])
	r2 := checkRoundTrip(t, rel2, WriteOptions{GroupRows: 64})
	z2 := r2.Footer().Groups[0].Zones[0]
	if !z2.HasBounds || !math.IsInf(z2.Min.Float64(), -1) || !math.IsInf(z2.Max.Float64(), 1) {
		t.Fatalf("zone bounds %v..%v (HasBounds=%v)", z2.Min, z2.Max, z2.HasBounds)
	}
}

func TestRoundTripIntExtremes(t *testing.T) {
	vals := []value.Value{
		value.Int(math.MaxInt64), value.Int(math.MinInt64), value.Int(0), value.Null, value.Int(1),
	}
	rel := buildRel("t", []string{"t.i"}, []relation.Type{relation.TInt}, vals)
	checkRoundTrip(t, rel, WriteOptions{GroupRows: 64})
}

func TestRoundTripMixedKindColumn(t *testing.T) {
	vals := []value.Value{value.Int(1), value.Str("two"), value.Float(3.5), value.Bool(true), value.Null}
	rel := buildRel("t", []string{"t.m"}, []relation.Type{relation.TAny}, vals)
	r := checkRoundTrip(t, rel, WriteOptions{GroupRows: 64})
	if enc := r.Footer().Cols[0].Enc; enc != EncBoxed {
		t.Fatalf("mixed column encoded as %q, want %q", enc, EncBoxed)
	}
}

func TestRoundTripBoolColumn(t *testing.T) {
	n := 150
	vals := make([]value.Value, n)
	for i := range vals {
		switch i % 3 {
		case 0:
			vals[i] = value.Bool(true)
		case 1:
			vals[i] = value.Bool(false)
		default:
			vals[i] = value.Null
		}
	}
	rel := buildRel("t", []string{"t.b"}, []relation.Type{relation.TBool}, vals)
	r := checkRoundTrip(t, rel, WriteOptions{GroupRows: 64})
	if enc := r.Footer().Cols[0].Enc; enc != EncBool {
		t.Fatalf("bool column encoded as %q, want %q", enc, EncBool)
	}
}

func TestWriteRejectsBadShapes(t *testing.T) {
	rel := buildRel("t", []string{"t.a"}, []relation.Type{relation.TInt}, []value.Value{value.Int(1)})
	if _, err := Write(rel, WriteOptions{GroupRows: 100}); err == nil {
		t.Fatal("unaligned group size accepted")
	}
	nested := relation.New(&relation.Schema{Name: "n", Subs: []relation.Sub{{Name: "g", Schema: rel.Schema}}})
	if _, err := Write(nested, WriteOptions{}); err == nil {
		t.Fatal("nested schema accepted")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel := randomRel(rng, 100)
	data, err := Write(rel, WriteOptions{GroupRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation either fails Open or fails decode — never panics
	// and never silently yields rows.
	for cut := 0; cut < len(data); cut++ {
		r, err := Open(data[:cut])
		if err != nil {
			continue
		}
		if _, err := r.RelationFor(rel.Schema); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	// A flipped byte in the footer region breaks the checksum.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-tailLen-10] ^= 0xff
	if _, err := Open(corrupt); err == nil {
		t.Fatal("corrupted footer accepted")
	}
}

func TestSeedsMatchCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rel := randomRel(rng, 500)
	r := roundTrip(t, rel, WriteOptions{GroupRows: 64})
	seeds := r.Seeds()
	want := stats.Collect(rel)
	got := stats.CollectSeeded(rel, seeds)
	for i, c := range want.Cols {
		g := got.Cols[i]
		if g.Nulls != c.Nulls || !value.Identical(g.Min, c.Min) || !value.Identical(g.Max, c.Max) {
			t.Fatalf("col %s: seeded {nulls %d, %v..%v} vs collected {nulls %d, %v..%v}",
				c.Name, g.Nulls, g.Min, g.Max, c.Nulls, c.Min, c.Max)
		}
		if g.NDV != c.NDV || g.Width != c.Width {
			t.Fatalf("col %s: seeded NDV/width %v/%v vs %v/%v", c.Name, g.NDV, g.Width, c.NDV, c.Width)
		}
	}
	// NaN groups withhold the seed; CollectSeeded falls back cleanly.
	vals := []value.Value{value.Float(1), value.Float(math.NaN()), value.Float(-2)}
	nanRel := buildRel("t", []string{"t.f"}, []relation.Type{relation.TFloat}, vals)
	nr := roundTrip(t, nanRel, WriteOptions{GroupRows: 64})
	if nr.Seeds()[0].Valid {
		t.Fatal("NaN column produced a valid seed")
	}
	nGot := stats.CollectSeeded(nanRel, nr.Seeds())
	nWant := stats.Collect(nanRel)
	if !value.Identical(nGot.Cols[0].Min, nWant.Cols[0].Min) || !value.Identical(nGot.Cols[0].Max, nWant.Cols[0].Max) {
		t.Fatal("fallback column stats diverge from Collect")
	}
}
