// Package colstore implements the engine's binary columnar segment
// format — the durable table representation that replaces CSV (which
// remains as an import/export path; see internal/csvio).
//
// A segment file holds one table version, laid out column-major:
//
//	magic | dict sections | row-group blocks | footer JSON | tail
//
// String columns whose value set is small enough store a whole-column
// dictionary once, in first-appearance order, so decoding reproduces
// exactly the dictionary vec.ColumnVector would build from the row
// store. Rows are split into fixed-size row groups (DefaultGroupRows,
// always a multiple of 64 so NULL bitmaps slice on word boundaries and
// vectorized predicate windows stay word-aligned); each group stores
// one encoded block per column, preceded in the footer by a zone map —
// min/max bounds, NULL count and row count — collected for free at
// write time. Scans prune row groups against compiled predicates using
// only the zone maps, before decoding any block bytes (PruneGroups),
// and ANALYZE seeds its min/max/null pass from the same zones
// (Reader.Seeds feeding stats.CollectSeeded).
//
// The footer is JSON (schema, encodings, block directory, zone maps)
// and the 16-byte tail carries its length, a CRC-32 of its bytes and a
// closing magic, so a reader can locate and verify the footer from the
// end of the file alone. Torn or truncated files fail Open or decode
// with an error, never a panic; the manifest-level CRC in csvio guards
// the file as a whole.
//
// Encodings (one per column, chosen from the column's vector kind):
//
//	int    frame-of-reference bit-packing: per-group varint minimum,
//	       a width byte, then deltas packed LSB-first into words
//	float  raw IEEE-754 bits, 8 bytes per row, little-endian
//	bool   one bit per row, packed into bitmap words
//	dict   bit-packed codes into the whole-column dictionary
//	str    length-prefixed raw strings (dictionary-overflow fallback)
//	boxed  per-row kind tag + payload (mixed-kind or all-NULL columns)
//
// Every block starts with the group's NULL bitmap in vec.Bitmap's word
// layout, so decoded vectors share bitmaps with the in-memory column
// store byte-for-byte. Decoding a column yields a *vec.Vector that is
// observationally identical to vec.ColumnVector over the row store —
// the property the round-trip tests in this package assert — which is
// what lets the vectorized executor run on decoded columns without a
// parity caveat. See docs/STORAGE.md for the full layout diagram.
package colstore

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"nra/internal/relation"
	"nra/internal/value"
)

// DefaultGroupRows is the default row-group size. It is a multiple of
// the executor's batch size (1024) and of the bitmap word width (64),
// so group boundaries are always word-aligned window starts.
const DefaultGroupRows = 8192

// DefaultDictMax is the default cap on dictionary entries per string
// column before the writer falls back to raw strings.
const DefaultDictMax = 1 << 16

// Column encodings; the Enc field of ColMeta.
const (
	EncInt   = "int"   // frame-of-reference bit-packed int64
	EncFloat = "float" // raw float64 bits
	EncBool  = "bool"  // bit-packed booleans
	EncDict  = "dict"  // bit-packed codes into a whole-column dictionary
	EncStr   = "str"   // length-prefixed raw strings
	EncBoxed = "boxed" // per-row kind tag + payload
)

const (
	magicHeader = "NRSEG1\x00\n"
	magicTail   = "NRS1"
	tailLen     = 16 // u64 footer length + u32 footer CRC + 4-byte magic
	version     = 1
)

// BlockRef locates an encoded byte range inside the segment file.
type BlockRef struct {
	Off int64 `json:"off"`
	Len int64 `json:"len"`
}

// ColMeta describes one column of the segment: its (unqualified) name,
// declared type, encoding, and — for dictionary-encoded strings — the
// whole-column dictionary section.
type ColMeta struct {
	Name string
	Type relation.Type
	Enc  string
	Dict BlockRef // zero when the encoding has no dictionary section
}

// Zone is the zone map of one column over one row group: the row and
// NULL counts, and — when HasBounds — the smallest and largest non-NULL
// value in the group under value.Less order. Bounds are withheld
// (HasBounds false) for boxed columns, for all-NULL groups, and for
// float groups containing NaN, whose ordering value.Compare cannot
// decide; absent bounds make the group unprunable, never wrong.
type Zone struct {
	Rows      int
	Nulls     int
	HasBounds bool
	Min, Max  value.Value
}

// GroupMeta is the footer entry of one row group: its height plus one
// block reference and one zone map per column.
type GroupMeta struct {
	Rows   int
	Blocks []BlockRef
	Zones  []Zone
}

// Footer is the decoded segment directory.
type Footer struct {
	Version   int
	Rows      int
	GroupRows int
	Cols      []ColMeta
	Groups    []GroupMeta
}

// NumGroups returns the number of row groups.
func (f *Footer) NumGroups() int { return len(f.Groups) }

// --- footer JSON wire form -------------------------------------------
//
// int64 offsets round-trip exactly through encoding/json (full decimal
// digits); float bounds are stored as hex-encoded IEEE-754 bits because
// JSON numbers cannot carry every float64 (nor ±Inf) losslessly.

type footerJSON struct {
	Version   int         `json:"version"`
	Rows      int         `json:"rows"`
	GroupRows int         `json:"group_rows"`
	Cols      []colJSON   `json:"cols"`
	Groups    []groupJSON `json:"groups"`
}

type colJSON struct {
	Name string    `json:"name"`
	Type string    `json:"type"`
	Enc  string    `json:"enc"`
	Dict *BlockRef `json:"dict,omitempty"`
}

type groupJSON struct {
	Rows   int        `json:"rows"`
	Blocks []BlockRef `json:"blocks"`
	Zones  []zoneJSON `json:"zones"`
}

type zoneJSON struct {
	Rows  int      `json:"rows"`
	Nulls int      `json:"nulls"`
	Min   *valJSON `json:"min,omitempty"`
	Max   *valJSON `json:"max,omitempty"`
}

type valJSON struct {
	K string `json:"k"`
	I int64  `json:"i,omitempty"`
	F string `json:"f,omitempty"`
	S string `json:"s,omitempty"`
	B bool   `json:"b,omitempty"`
}

func valToJSON(v value.Value) (*valJSON, error) {
	switch v.Kind() {
	case value.KindInt:
		return &valJSON{K: "int", I: v.Int64()}, nil
	case value.KindFloat:
		return &valJSON{K: "float", F: strconv.FormatUint(math.Float64bits(v.Float64()), 16)}, nil
	case value.KindString:
		return &valJSON{K: "str", S: v.Text()}, nil
	case value.KindBool:
		return &valJSON{K: "bool", B: v.Truth() == value.True}, nil
	}
	return nil, fmt.Errorf("colstore: zone bound of kind %v", v.Kind())
}

func valFromJSON(j *valJSON) (value.Value, error) {
	switch j.K {
	case "int":
		return value.Int(j.I), nil
	case "float":
		bits, err := strconv.ParseUint(j.F, 16, 64)
		if err != nil {
			return value.Null, fmt.Errorf("colstore: bad float bound %q: %w", j.F, err)
		}
		return value.Float(math.Float64frombits(bits)), nil
	case "str":
		return value.Str(j.S), nil
	case "bool":
		return value.Bool(j.B), nil
	}
	return value.Null, fmt.Errorf("colstore: unknown zone bound kind %q", j.K)
}

func (f *Footer) marshal() ([]byte, error) {
	j := footerJSON{Version: f.Version, Rows: f.Rows, GroupRows: f.GroupRows}
	for _, c := range f.Cols {
		cj := colJSON{Name: c.Name, Type: c.Type.String(), Enc: c.Enc}
		if c.Dict != (BlockRef{}) {
			d := c.Dict
			cj.Dict = &d
		}
		j.Cols = append(j.Cols, cj)
	}
	for _, g := range f.Groups {
		gj := groupJSON{Rows: g.Rows, Blocks: g.Blocks}
		for _, z := range g.Zones {
			zj := zoneJSON{Rows: z.Rows, Nulls: z.Nulls}
			if z.HasBounds {
				mn, err := valToJSON(z.Min)
				if err != nil {
					return nil, err
				}
				mx, err := valToJSON(z.Max)
				if err != nil {
					return nil, err
				}
				zj.Min, zj.Max = mn, mx
			}
			gj.Zones = append(gj.Zones, zj)
		}
		j.Groups = append(j.Groups, gj)
	}
	return json.Marshal(j)
}

func unmarshalFooter(data []byte) (*Footer, error) {
	var j footerJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("colstore: footer: %w", err)
	}
	f := &Footer{Version: j.Version, Rows: j.Rows, GroupRows: j.GroupRows}
	for _, cj := range j.Cols {
		ty, err := typeByName(cj.Type)
		if err != nil {
			return nil, err
		}
		c := ColMeta{Name: cj.Name, Type: ty, Enc: cj.Enc}
		if cj.Dict != nil {
			c.Dict = *cj.Dict
		}
		f.Cols = append(f.Cols, c)
	}
	for _, gj := range j.Groups {
		g := GroupMeta{Rows: gj.Rows, Blocks: gj.Blocks}
		for _, zj := range gj.Zones {
			z := Zone{Rows: zj.Rows, Nulls: zj.Nulls}
			if zj.Min != nil && zj.Max != nil {
				mn, err := valFromJSON(zj.Min)
				if err != nil {
					return nil, err
				}
				mx, err := valFromJSON(zj.Max)
				if err != nil {
					return nil, err
				}
				z.HasBounds, z.Min, z.Max = true, mn, mx
			}
			g.Zones = append(g.Zones, z)
		}
		f.Groups = append(f.Groups, g)
	}
	return f, nil
}

func typeByName(s string) (relation.Type, error) {
	switch s {
	case "INTEGER":
		return relation.TInt, nil
	case "FLOAT":
		return relation.TFloat, nil
	case "VARCHAR":
		return relation.TString, nil
	case "BOOLEAN":
		return relation.TBool, nil
	case "ANY":
		return relation.TAny, nil
	}
	return relation.TAny, fmt.Errorf("colstore: unknown column type %q", s)
}
