package colstore

import (
	"math/rand"
	"testing"

	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/value"
)

// TestPruneGroupsSelective checks that a selective predicate over a
// clustered column actually skips groups, and that the skip set lines
// up with the zone bounds.
func TestPruneGroupsSelective(t *testing.T) {
	n := 640 // ten groups of 64
	ints := make([]value.Value, n)
	for i := range ints {
		ints[i] = value.Int(int64(i))
	}
	rel := buildRel("t", []string{"t.a"}, []relation.Type{relation.TInt}, ints)
	r := roundTrip(t, rel, WriteOptions{GroupRows: 64})

	pred := expr.Compare(expr.Lt, expr.Col("t.a"), expr.Val(int64(100)))
	skip, scanned, total := PruneGroups(pred, rel.Schema, r.Footer())
	if total != 10 || scanned != 2 {
		t.Fatalf("scanned %d/%d groups, want 2/10", scanned, total)
	}
	for g := 0; g < total; g++ {
		wantSkip := g >= 2 // groups [128,192) onward hold only a >= 128
		if skip[g] != wantSkip {
			t.Fatalf("group %d: skip=%v want %v", g, skip[g], wantSkip)
		}
	}

	// An unselective predicate returns a nil skip set.
	wide := expr.Compare(expr.Ge, expr.Col("t.a"), expr.Val(int64(0)))
	if skip, scanned, total := PruneGroups(wide, rel.Schema, r.Footer()); skip != nil || scanned != total {
		t.Fatalf("unselective predicate pruned %d/%d", total-scanned, total)
	}

	// A never-true predicate prunes everything.
	none := expr.Compare(expr.Gt, expr.Col("t.a"), expr.Val(int64(10000)))
	if _, scanned, _ := PruneGroups(none, rel.Schema, r.Footer()); scanned != 0 {
		t.Fatalf("impossible predicate still scans %d groups", scanned)
	}
}

// TestPruneGroupsSoundness drives random predicates over random data
// and asserts the fundamental property: a pruned group contains no row
// on which the predicate evaluates to TRUE under the row engine.
func TestPruneGroupsSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	words := []string{"alpha", "beta", "gamma", "delta"}

	randLit := func(kind int) expr.Expr {
		switch kind {
		case 0:
			return expr.Lit{V: value.Int(rng.Int63n(2000) - 1000)}
		case 1:
			return expr.Lit{V: value.Float(rng.NormFloat64() * 100)}
		case 2:
			return expr.Lit{V: value.Str(words[rng.Intn(len(words))])}
		default:
			return expr.Lit{V: value.Null}
		}
	}
	colForKind := []string{"t.a", "t.b", "t.c"}
	ops := []expr.CmpOp{expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge}

	var randPred func(depth int) expr.Expr
	randPred = func(depth int) expr.Expr {
		if depth > 0 && rng.Intn(2) == 0 {
			switch rng.Intn(3) {
			case 0:
				return expr.Logic{Op: expr.OpAnd, L: randPred(depth - 1), R: randPred(depth - 1)}
			case 1:
				return expr.Logic{Op: expr.OpOr, L: randPred(depth - 1), R: randPred(depth - 1)}
			default:
				return expr.Not{E: randPred(depth - 1)}
			}
		}
		if rng.Intn(6) == 0 {
			return expr.IsNull{E: expr.Col(colForKind[rng.Intn(3)]), Negate: rng.Intn(2) == 0}
		}
		kind := rng.Intn(3)
		col := expr.Col(colForKind[kind])
		lit := randLit(kind)
		if rng.Intn(8) == 0 {
			lit = expr.Lit{V: value.Null}
		}
		op := ops[rng.Intn(len(ops))]
		if rng.Intn(2) == 0 {
			return expr.Compare(op, col, lit)
		}
		return expr.Compare(op.Flip(), lit, col)
	}

	for trial := 0; trial < 200; trial++ {
		rel := randomRel(rng, 64*(1+rng.Intn(6)))
		r := roundTrip(t, rel, WriteOptions{GroupRows: 64})
		pred := randPred(3)
		skip, _, total := PruneGroups(pred, rel.Schema, r.Footer())
		if skip == nil {
			continue
		}
		compiled, err := expr.Compile(pred, rel.Schema)
		if err != nil {
			t.Fatalf("trial %d: compile %s: %v", trial, pred, err)
		}
		groupRows := r.Footer().GroupRows
		for g := 0; g < total; g++ {
			if !skip[g] {
				continue
			}
			start := g * groupRows
			end := start + r.Footer().Groups[g].Rows
			for i := start; i < end; i++ {
				tri, err := compiled.Truth(rel.Tuples[i])
				if err != nil {
					t.Fatalf("trial %d: pruned group %d raises %v under the row engine (pred %s)", trial, g, err, pred)
				}
				if tri == value.True {
					t.Fatalf("trial %d: pruned group %d contains a TRUE row %d (pred %s)", trial, g, i, pred)
				}
			}
		}
	}
}
