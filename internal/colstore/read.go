package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"nra/internal/relation"
	"nra/internal/stats"
	"nra/internal/value"
	"nra/internal/vec"
)

// Reader decodes a segment file image. It is immutable after Open and
// safe for concurrent use; decoding allocates fresh vectors, so callers
// (the catalog's column store) memoize decoded columns themselves.
type Reader struct {
	data []byte
	ft   *Footer
}

// Open verifies the segment's magic and footer checksum and decodes the
// directory. It validates every block reference against the file bounds
// so later decodes cannot read out of range; torn or truncated files
// return an error here or from decode, never a panic.
func Open(data []byte) (*Reader, error) {
	if len(data) < len(magicHeader)+tailLen {
		return nil, fmt.Errorf("colstore: segment truncated (%d bytes)", len(data))
	}
	if string(data[:len(magicHeader)]) != magicHeader {
		return nil, fmt.Errorf("colstore: bad segment magic")
	}
	tail := data[len(data)-tailLen:]
	if string(tail[12:]) != magicTail {
		return nil, fmt.Errorf("colstore: bad segment tail magic")
	}
	ftLen := binary.LittleEndian.Uint64(tail[:8])
	ftCRC := binary.LittleEndian.Uint32(tail[8:12])
	end := len(data) - tailLen
	if ftLen > uint64(end-len(magicHeader)) {
		return nil, fmt.Errorf("colstore: footer length %d out of range", ftLen)
	}
	fj := data[end-int(ftLen) : end]
	if crc32.ChecksumIEEE(fj) != ftCRC {
		return nil, fmt.Errorf("colstore: footer checksum mismatch")
	}
	ft, err := unmarshalFooter(fj)
	if err != nil {
		return nil, err
	}
	if ft.Version != version {
		return nil, fmt.Errorf("colstore: unsupported segment version %d", ft.Version)
	}
	r := &Reader{data: data, ft: ft}
	if err := r.validate(int64(end - int(ftLen))); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) validate(payloadEnd int64) error {
	ft := r.ft
	if ft.GroupRows <= 0 || ft.GroupRows%64 != 0 {
		return fmt.Errorf("colstore: group size %d is not a positive multiple of 64", ft.GroupRows)
	}
	checkRef := func(b BlockRef) error {
		if b.Off < int64(len(magicHeader)) || b.Len < 0 || b.Off+b.Len > payloadEnd {
			return fmt.Errorf("colstore: block [%d,+%d) out of segment bounds", b.Off, b.Len)
		}
		return nil
	}
	for _, c := range ft.Cols {
		if c.Dict != (BlockRef{}) {
			if err := checkRef(c.Dict); err != nil {
				return err
			}
		}
	}
	total := 0
	for gi, g := range ft.Groups {
		if g.Rows <= 0 || g.Rows > ft.GroupRows {
			return fmt.Errorf("colstore: group %d has %d rows", gi, g.Rows)
		}
		// Every group but the last must be full: decoders compute group
		// row offsets as g*GroupRows, and pruning skips whole groups by
		// that arithmetic.
		if gi < len(ft.Groups)-1 && g.Rows != ft.GroupRows {
			return fmt.Errorf("colstore: group %d has %d rows, want %d (only the last group may be short)", gi, g.Rows, ft.GroupRows)
		}
		if len(g.Blocks) != len(ft.Cols) || len(g.Zones) != len(ft.Cols) {
			return fmt.Errorf("colstore: group %d directory is ragged", gi)
		}
		for _, b := range g.Blocks {
			if err := checkRef(b); err != nil {
				return err
			}
		}
		total += g.Rows
	}
	if total != ft.Rows {
		return fmt.Errorf("colstore: groups sum to %d rows, footer says %d", total, ft.Rows)
	}
	return nil
}

// Footer returns the decoded segment directory.
func (r *Reader) Footer() *Footer { return r.ft }

// Rows returns the segment's row count.
func (r *Reader) Rows() int { return r.ft.Rows }

// NumCols returns the segment's column count.
func (r *Reader) NumCols() int { return len(r.ft.Cols) }

// SizeBytes returns the byte size of the segment image.
func (r *Reader) SizeBytes() int { return len(r.data) }

// Column decodes column c across every row group into one full-height
// vector, observationally identical to vec.ColumnVector over the
// original rows.
func (r *Reader) Column(c int) (*vec.Vector, error) {
	d, err := r.NewColumnDecoder(c)
	if err != nil {
		return nil, err
	}
	if err := d.EnsureGroups(nil); err != nil {
		return nil, err
	}
	return d.Vector(), nil
}

// ColumnDecoder decodes one column group-at-a-time into a shared
// full-height vector, so a zone-map-pruned scan never pays to decode
// the bytes of groups it skips. Undecoded regions of the vector hold
// zero payloads and clear NULL bits — readers must touch only rows of
// groups they have ensured. The decoder itself is not safe for
// concurrent use (the catalog serializes Ensure calls under its column
// lock), but once a group is decoded its vector region never changes,
// so readers that observed the Ensure may read it freely.
type ColumnDecoder struct {
	r    *Reader
	c    int
	v    *vec.Vector
	done []bool
}

// NewColumnDecoder allocates the decoder and full-height vector for
// column c. Dictionary columns read their (whole-column) dictionary
// section here. Plain string columns (EncStr) decode every group
// eagerly instead: their dictionary is rebuilt by appending in row
// order, and a shared vector's Dict must not grow after readers hold
// it — lazy decoding would reorder or race those appends.
func (r *Reader) NewColumnDecoder(c int) (*ColumnDecoder, error) {
	ft := r.ft
	if c < 0 || c >= len(ft.Cols) {
		return nil, fmt.Errorf("colstore: column %d out of range", c)
	}
	cm := ft.Cols[c]
	d := &ColumnDecoder{r: r, c: c, v: newVector(cm.Enc, ft.Rows), done: make([]bool, len(ft.Groups))}
	if cm.Enc == EncDict {
		dict, err := r.readDict(cm.Dict)
		if err != nil {
			return nil, err
		}
		d.v.Dict = dict
	}
	if cm.Enc == EncStr {
		strCodes := make(map[string]int32)
		start := 0
		for gi := range ft.Groups {
			g := &ft.Groups[gi]
			if err := r.decodeBlock(d.v, cm.Enc, g.Blocks[c], start, g.Rows, strCodes); err != nil {
				return nil, fmt.Errorf("colstore: column %q group %d: %w", cm.Name, gi, err)
			}
			d.done[gi] = true
			start += g.Rows
		}
	}
	return d, nil
}

// Vector returns the shared full-height vector. Only rows of ensured
// groups are meaningful.
func (d *ColumnDecoder) Vector() *vec.Vector { return d.v }

// EnsureGroups decodes every not-yet-decoded group g with skip[g]
// false (nil skip = all groups). Groups live at fixed row offsets
// (g*GroupRows), so ensuring them in any order yields identical bytes.
func (d *ColumnDecoder) EnsureGroups(skip []bool) error {
	ft := d.r.ft
	cm := ft.Cols[d.c]
	for gi := range ft.Groups {
		if d.done[gi] || (gi < len(skip) && skip[gi]) {
			continue
		}
		g := &ft.Groups[gi]
		if err := d.r.decodeBlock(d.v, cm.Enc, g.Blocks[d.c], gi*ft.GroupRows, g.Rows, nil); err != nil {
			return fmt.Errorf("colstore: column %q group %d: %w", cm.Name, gi, err)
		}
		d.done[gi] = true
	}
	return nil
}

// newVector allocates a full-height vector shaped for the encoding.
func newVector(enc string, n int) *vec.Vector {
	return vec.NewVector(kindForEnc(enc), n)
}

func kindForEnc(enc string) value.Kind {
	switch enc {
	case EncInt:
		return value.KindInt
	case EncBool:
		return value.KindBool
	case EncFloat:
		return value.KindFloat
	case EncDict, EncStr:
		return value.KindString
	default:
		return value.KindNull
	}
}

func (r *Reader) readDict(ref BlockRef) ([]string, error) {
	b := byteReader{data: r.data[ref.Off : ref.Off+ref.Len]}
	count, err := b.uvarint()
	if err != nil {
		return nil, err
	}
	if count > uint64(ref.Len) {
		return nil, fmt.Errorf("colstore: dictionary count %d exceeds section size", count)
	}
	dict := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		s, err := b.str()
		if err != nil {
			return nil, err
		}
		dict = append(dict, s)
	}
	return dict, nil
}

// decodeBlock decodes one row group's block into rows [start,
// start+rows) of the full-height vector. start is word-aligned for
// every group but (possibly) the last, which has no successor, so the
// NULL bitmap words copy straight in.
func (r *Reader) decodeBlock(v *vec.Vector, enc string, ref BlockRef, start, rows int, strCodes map[string]int32) error {
	b := byteReader{data: r.data[ref.Off : ref.Off+ref.Len]}
	words, err := b.words(value.NullWords(rows))
	if err != nil {
		return err
	}
	copy(v.Nulls[start>>6:], words)
	switch enc {
	case EncInt:
		mn, err := b.varint()
		if err != nil {
			return err
		}
		width, err := b.byte()
		if err != nil {
			return err
		}
		if int(width) > 64 {
			return fmt.Errorf("bit width %d", width)
		}
		if err := unpack(&b, int(width), rows, func(i int, d uint64) {
			v.Ints[start+i] = int64(uint64(mn) + d)
		}); err != nil {
			return err
		}
		if int(width) == 0 && mn != 0 {
			for i := 0; i < rows; i++ {
				v.Ints[start+i] = mn
			}
		}
		// NULL slots packed delta 0 and decoded as the group minimum;
		// re-zero them to match vec.ColumnVector's zero payloads.
		for i := start; i < start+rows; i++ {
			if v.Nulls.Get(i) {
				v.Ints[i] = 0
			}
		}
	case EncFloat:
		raw, err := b.bytes(rows * 8)
		if err != nil {
			return err
		}
		for i := 0; i < rows; i++ {
			v.Floats[start+i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	case EncBool:
		bitWords, err := b.words(value.NullWords(rows))
		if err != nil {
			return err
		}
		for i := 0; i < rows; i++ {
			if bitWords[i>>6]>>(uint(i)&63)&1 != 0 {
				v.Ints[start+i] = 1
			}
		}
	case EncDict:
		width, err := b.byte()
		if err != nil {
			return err
		}
		if cw := codeWidth(len(v.Dict)); int(width) != cw {
			return fmt.Errorf("code width %d, dictionary needs %d", width, cw)
		}
		dictLen := len(v.Dict)
		var oob error
		if err := unpack(&b, int(width), rows, func(i int, d uint64) {
			if d >= uint64(dictLen) && oob == nil {
				if dictLen == 0 && d == 0 {
					return // all-NULL group in a dictionary column
				}
				oob = fmt.Errorf("dictionary code %d out of range", d)
				return
			}
			v.Codes[start+i] = int32(d)
		}); err != nil {
			return err
		}
		if oob != nil {
			return oob
		}
	case EncStr:
		for i := 0; i < rows; i++ {
			if v.Nulls.Get(start + i) {
				continue
			}
			s, err := b.str()
			if err != nil {
				return err
			}
			code, ok := strCodes[s]
			if !ok {
				code = int32(len(v.Dict))
				strCodes[s] = code
				v.Dict = append(v.Dict, s)
			}
			v.Codes[start+i] = code
		}
	case EncBoxed:
		for i := 0; i < rows; i++ {
			val, err := b.boxed()
			if err != nil {
				return err
			}
			v.Vals[start+i] = val
		}
	default:
		return fmt.Errorf("unknown encoding %q", enc)
	}
	return nil
}

// unpack reads n width-bit values packed LSB-first into little-endian
// words and calls set for each. width 0 means every value is 0.
func unpack(b *byteReader, width, n int, set func(i int, d uint64)) error {
	if width == 0 {
		return nil
	}
	words, err := b.words((n*width + 63) / 64)
	if err != nil {
		return err
	}
	mask := widthMask(width)
	for i := 0; i < n; i++ {
		p := i * width
		x := words[p>>6] >> (uint(p) & 63)
		if rem := 64 - (p & 63); rem < width {
			x |= words[p>>6+1] << uint(rem)
		}
		set(i, x&mask)
	}
	return nil
}

// RelationFor materializes the whole segment as a relation over the
// given schema (the catalog's column order, which matches the footer's;
// names compare unqualified). Decoded columns flow through the same
// batch materialization the vectorized executor uses.
func (r *Reader) RelationFor(schema *relation.Schema) (*relation.Relation, error) {
	ft := r.ft
	if len(schema.Cols) != len(ft.Cols) {
		return nil, fmt.Errorf("colstore: schema has %d columns, segment %d", len(schema.Cols), len(ft.Cols))
	}
	for i, sc := range schema.Cols {
		if unqualify(sc.Name) != ft.Cols[i].Name {
			return nil, fmt.Errorf("colstore: column %d is %q in schema, %q in segment", i, unqualify(sc.Name), ft.Cols[i].Name)
		}
	}
	cols := make([]*vec.Vector, len(ft.Cols))
	for c := range ft.Cols {
		v, err := r.Column(c)
		if err != nil {
			return nil, err
		}
		cols[c] = v
	}
	b := &vec.Batch{Schema: schema, Cols: cols, Start: 0, End: ft.Rows}
	return b.ToRelation(), nil
}

// Seeds folds the zone maps into per-column ANALYZE seeds (exact
// min/max and NULL counts) for stats.CollectSeeded. A column's seed is
// withheld when any of its groups lacks bounds without being all-NULL —
// boxed columns and NaN-bearing float groups — so ANALYZE recomputes
// those columns from the rows.
func (r *Reader) Seeds() []stats.ColumnSeed {
	ft := r.ft
	seeds := make([]stats.ColumnSeed, len(ft.Cols))
	for c := range ft.Cols {
		s := stats.ColumnSeed{Valid: true, Rows: ft.Rows, Min: value.Null, Max: value.Null}
		for gi := range ft.Groups {
			z := &ft.Groups[gi].Zones[c]
			s.Nulls += z.Nulls
			if !z.HasBounds {
				if z.Nulls != z.Rows {
					s.Valid = false
					break
				}
				continue
			}
			if s.Min.IsNull() || value.Less(z.Min, s.Min) {
				s.Min = z.Min
			}
			if s.Max.IsNull() || value.Less(s.Max, z.Max) {
				s.Max = z.Max
			}
		}
		seeds[c] = s
	}
	return seeds
}

// byteReader is a bounds-checked cursor over a block's bytes.
type byteReader struct {
	data []byte
	pos  int
}

func (b *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || b.pos+n > len(b.data) {
		return nil, fmt.Errorf("block truncated at byte %d (want %d more)", b.pos, n)
	}
	out := b.data[b.pos : b.pos+n]
	b.pos += n
	return out, nil
}

func (b *byteReader) byte() (byte, error) {
	raw, err := b.bytes(1)
	if err != nil {
		return 0, err
	}
	return raw[0], nil
}

func (b *byteReader) words(n int) ([]uint64, error) {
	raw, err := b.bytes(n * 8)
	if err != nil {
		return nil, err
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(raw[i*8:])
	}
	return words, nil
}

func (b *byteReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(b.data[b.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint at byte %d", b.pos)
	}
	b.pos += n
	return x, nil
}

func (b *byteReader) varint() (int64, error) {
	x, n := binary.Varint(b.data[b.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint at byte %d", b.pos)
	}
	b.pos += n
	return x, nil
}

func (b *byteReader) str() (string, error) {
	n, err := b.uvarint()
	if err != nil {
		return "", err
	}
	raw, err := b.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

func (b *byteReader) boxed() (value.Value, error) {
	tag, err := b.byte()
	if err != nil {
		return value.Null, err
	}
	switch tag {
	case boxNull:
		return value.Null, nil
	case boxInt:
		x, err := b.varint()
		if err != nil {
			return value.Null, err
		}
		return value.Int(x), nil
	case boxFloat:
		raw, err := b.bytes(8)
		if err != nil {
			return value.Null, err
		}
		return value.Float(math.Float64frombits(binary.LittleEndian.Uint64(raw))), nil
	case boxStr:
		s, err := b.str()
		if err != nil {
			return value.Null, err
		}
		return value.Str(s), nil
	case boxBool:
		x, err := b.byte()
		if err != nil {
			return value.Null, err
		}
		return value.Bool(x != 0), nil
	}
	return value.Null, fmt.Errorf("unknown boxed tag %d", tag)
}
