package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"

	"nra/internal/relation"
	"nra/internal/value"
	"nra/internal/vec"
)

// WriteOptions tunes the segment writer. The zero value selects the
// defaults.
type WriteOptions struct {
	// GroupRows is the row-group height; 0 selects DefaultGroupRows.
	// It must be a multiple of 64 so every group starts on a bitmap
	// word boundary (the vectorized executor's alignment contract).
	GroupRows int
	// DictMax caps dictionary entries per string column; 0 selects
	// DefaultDictMax. Columns exceeding it store raw strings.
	DictMax int
}

// Write encodes a flat relation into a columnar segment file image.
// Columns are converted through vec.ColumnVector, so the bytes encode
// exactly what the in-memory column store would hold; footer column
// names are stored unqualified, matching the csvio manifest convention.
func Write(rel *relation.Relation, opt WriteOptions) ([]byte, error) {
	if len(rel.Schema.Subs) > 0 {
		return nil, fmt.Errorf("colstore: cannot store nested schema %s", rel.Schema.Name)
	}
	groupRows := opt.GroupRows
	if groupRows == 0 {
		groupRows = DefaultGroupRows
	}
	if groupRows <= 0 || groupRows%64 != 0 {
		return nil, fmt.Errorf("colstore: group size %d is not a positive multiple of 64", groupRows)
	}
	dictMax := opt.DictMax
	if dictMax == 0 {
		dictMax = DefaultDictMax
	}

	rows, ncols := rel.Len(), len(rel.Schema.Cols)
	ft := &Footer{Version: version, Rows: rows, GroupRows: groupRows}
	buf := []byte(magicHeader)

	// Convert every column up front and pick its encoding.
	cols := make([]*vec.Vector, ncols)
	for c, sc := range rel.Schema.Cols {
		v := vec.ColumnVector(rel.Tuples, c)
		cols[c] = v
		cm := ColMeta{Name: unqualify(sc.Name), Type: sc.Type, Enc: encodingFor(v, rows, dictMax)}
		if cm.Enc == EncDict {
			// Whole-column dictionary section, first-appearance order:
			// decoded vectors share codes with vec.ColumnVector exactly.
			off := int64(len(buf))
			buf = binary.AppendUvarint(buf, uint64(len(v.Dict)))
			for _, s := range v.Dict {
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				buf = append(buf, s...)
			}
			cm.Dict = BlockRef{Off: off, Len: int64(len(buf)) - off}
		}
		ft.Cols = append(ft.Cols, cm)
	}

	for start := 0; start < rows; start += groupRows {
		end := start + groupRows
		if end > rows {
			end = rows
		}
		g := GroupMeta{Rows: end - start}
		for c, v := range cols {
			off := int64(len(buf))
			var err error
			buf, err = appendBlock(buf, ft.Cols[c].Enc, v, start, end)
			if err != nil {
				return nil, err
			}
			g.Blocks = append(g.Blocks, BlockRef{Off: off, Len: int64(len(buf)) - off})
			g.Zones = append(g.Zones, collectZone(ft.Cols[c].Enc, v, start, end))
		}
		ft.Groups = append(ft.Groups, g)
	}

	fj, err := ft.marshal()
	if err != nil {
		return nil, err
	}
	buf = append(buf, fj...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(fj)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(fj))
	buf = append(buf, magicTail...)
	return buf, nil
}

// encodingFor picks the column encoding from the converted vector's
// kind. String dictionaries fall back to raw strings when the
// dictionary would hold more than DictMax entries or more than 3/4 of
// the column's non-NULL values (the dictionary would cost more than it
// saves).
func encodingFor(v *vec.Vector, rows, dictMax int) string {
	switch v.Kind {
	case value.KindInt:
		return EncInt
	case value.KindFloat:
		return EncFloat
	case value.KindBool:
		return EncBool
	case value.KindString:
		nonNull := rows - popcount(v.Nulls)
		if len(v.Dict) > dictMax || len(v.Dict)*4 > nonNull*3 {
			return EncStr
		}
		return EncDict
	default:
		return EncBoxed
	}
}

func popcount(b vec.Bitmap) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// appendBlock encodes rows [start, end) of one column. Every block
// leads with the group's NULL bitmap words; start is a multiple of 64
// (the writer's group-size contract) so the window slices the column
// bitmap on word boundaries.
func appendBlock(buf []byte, enc string, v *vec.Vector, start, end int) ([]byte, error) {
	n := end - start
	buf = appendBitmapWindow(buf, v.Nulls, start, n)
	switch enc {
	case EncInt:
		return appendIntBlock(buf, v, start, end), nil
	case EncFloat:
		for i := start; i < end; i++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Floats[i]))
		}
		return buf, nil
	case EncBool:
		words := make([]uint64, value.NullWords(n))
		for i := start; i < end; i++ {
			if v.Ints[i] != 0 {
				words[(i-start)>>6] |= 1 << (uint(i-start) & 63)
			}
		}
		return appendWords(buf, words), nil
	case EncDict:
		width := codeWidth(len(v.Dict))
		buf = append(buf, byte(width))
		return appendPacked(buf, width, n, func(i int) uint64 { return uint64(v.Codes[start+i]) }), nil
	case EncStr:
		for i := start; i < end; i++ {
			if v.Nulls.Get(i) {
				continue
			}
			s := v.Dict[v.Codes[i]]
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
		return buf, nil
	case EncBoxed:
		for i := start; i < end; i++ {
			buf = appendBoxed(buf, v.Vals[i])
		}
		return buf, nil
	}
	return nil, fmt.Errorf("colstore: unknown encoding %q", enc)
}

// appendIntBlock writes frame-of-reference bit-packed int64s: a varint
// minimum, a width byte, then (value - minimum) deltas packed LSB-first
// into little-endian words. NULL rows pack delta 0 and are re-zeroed on
// decode. The delta range is computed in uint64 two's complement so a
// full-range int64 column cannot overflow.
func appendIntBlock(buf []byte, v *vec.Vector, start, end int) []byte {
	n := end - start
	var mn, mx int64
	seen := false
	for i := start; i < end; i++ {
		if v.Nulls.Get(i) {
			continue
		}
		x := v.Ints[i]
		if !seen {
			mn, mx, seen = x, x, true
		} else if x < mn {
			mn = x
		} else if x > mx {
			mx = x
		}
	}
	if !seen {
		mn, mx = 0, 0
	}
	width := bits.Len64(uint64(mx) - uint64(mn))
	buf = binary.AppendVarint(buf, mn)
	buf = append(buf, byte(width))
	return appendPacked(buf, width, n, func(i int) uint64 {
		if v.Nulls.Get(start + i) {
			return 0
		}
		return uint64(v.Ints[start+i]) - uint64(mn)
	})
}

// appendPacked packs n width-bit values LSB-first into little-endian
// uint64 words. width 0 writes nothing (every value is 0).
func appendPacked(buf []byte, width, n int, get func(i int) uint64) []byte {
	if width == 0 {
		return buf
	}
	words := make([]uint64, (n*width+63)/64)
	for i := 0; i < n; i++ {
		x := get(i) & widthMask(width)
		p := i * width
		words[p>>6] |= x << (uint(p) & 63)
		if rem := 64 - (p & 63); rem < width {
			words[p>>6+1] |= x >> uint(rem)
		}
	}
	return appendWords(buf, words)
}

func widthMask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(width) - 1
}

// codeWidth returns the packed bit width for dictionary codes.
func codeWidth(dictLen int) int {
	if dictLen <= 1 {
		return 0
	}
	return bits.Len64(uint64(dictLen - 1))
}

// appendBitmapWindow copies bits [start, start+n) of b — start is
// word-aligned — masking slack bits of the last word to zero.
func appendBitmapWindow(buf []byte, b vec.Bitmap, start, n int) []byte {
	words := make([]uint64, value.NullWords(n))
	copy(words, b[start>>6:])
	if rem := n & 63; rem != 0 && len(words) > 0 {
		words[len(words)-1] &= 1<<uint(rem) - 1
	}
	return appendWords(buf, words)
}

func appendWords(buf []byte, words []uint64) []byte {
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// Boxed payload tags, one byte per row ahead of the payload.
const (
	boxNull  = 0
	boxInt   = 1
	boxFloat = 2
	boxStr   = 3
	boxBool  = 4
)

func appendBoxed(buf []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.KindInt:
		buf = append(buf, boxInt)
		return binary.AppendVarint(buf, v.Int64())
	case value.KindFloat:
		buf = append(buf, boxFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float64()))
	case value.KindString:
		buf = append(buf, boxStr)
		s := v.Text()
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	case value.KindBool:
		b := byte(0)
		if v.Truth() == value.True {
			b = 1
		}
		return append(buf, boxBool, b)
	default:
		return append(buf, boxNull)
	}
}

// collectZone computes the zone map of rows [start, end): row and NULL
// counts always; min/max bounds when the group's ordering is decidable
// (see Zone).
func collectZone(enc string, v *vec.Vector, start, end int) Zone {
	z := Zone{Rows: end - start}
	for i := start; i < end; i++ {
		if v.Nulls.Get(i) {
			z.Nulls++
		}
	}
	if enc == EncBoxed || z.Nulls == z.Rows {
		return z
	}
	switch enc {
	case EncInt:
		var mn, mx int64
		seen := false
		for i := start; i < end; i++ {
			if v.Nulls.Get(i) {
				continue
			}
			x := v.Ints[i]
			if !seen {
				mn, mx, seen = x, x, true
			} else if x < mn {
				mn = x
			} else if x > mx {
				mx = x
			}
		}
		z.HasBounds, z.Min, z.Max = true, value.Int(mn), value.Int(mx)
	case EncFloat:
		var mn, mx float64
		seen := false
		for i := start; i < end; i++ {
			if v.Nulls.Get(i) {
				continue
			}
			x := v.Floats[i]
			if math.IsNaN(x) {
				// NaN defeats value.Compare's ordering; withhold bounds
				// so the group is never pruned.
				return z
			}
			if !seen {
				mn, mx, seen = x, x, true
			} else {
				if x < mn {
					mn = x
				}
				if x > mx {
					mx = x
				}
			}
		}
		z.HasBounds, z.Min, z.Max = true, value.Float(mn), value.Float(mx)
	case EncBool:
		var mn, mx int64 = 1, 0
		for i := start; i < end; i++ {
			if v.Nulls.Get(i) {
				continue
			}
			if v.Ints[i] < mn {
				mn = v.Ints[i]
			}
			if v.Ints[i] > mx {
				mx = v.Ints[i]
			}
		}
		z.HasBounds, z.Min, z.Max = true, value.Bool(mn != 0), value.Bool(mx != 0)
	case EncDict, EncStr:
		var mn, mx string
		seen := false
		for i := start; i < end; i++ {
			if v.Nulls.Get(i) {
				continue
			}
			s := v.Dict[v.Codes[i]]
			if !seen {
				mn, mx, seen = s, s, true
			} else {
				if s < mn {
					mn = s
				}
				if s > mx {
					mx = s
				}
			}
		}
		z.HasBounds, z.Min, z.Max = true, value.Str(mn), value.Str(mx)
	}
	return z
}

// unqualify strips a table qualifier prefix, mirroring csvio's manifest
// naming so footers and manifests agree on column names.
func unqualify(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
