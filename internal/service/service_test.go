package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nra"
	"nra/internal/exec"
	"nra/internal/obsv"
)

// testDB builds a small parent/child database with correlated-subquery
// shapes.
func testDB(t testing.TB) *nra.DB {
	t.Helper()
	db := nra.Open()
	parents := make([][]any, 0, 60)
	for i := 0; i < 60; i++ {
		parents = append(parents, []any{i, i % 7, i % 5})
	}
	children := make([][]any, 0, 240)
	for i := 0; i < 240; i++ {
		children = append(children, []any{i, i % 60, i % 9, i % 5})
	}
	db.MustCreateTable("parent", []string{"id", "v", "g"}, "id", parents...)
	db.MustCreateTable("child", []string{"cid", "pid", "w", "h"}, "cid", children...)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	return db
}

const corrQuery = "select parent.id, parent.v from parent where exists (select * from child where child.pid = parent.id and child.w > parent.v)"

func TestAdmissionGate(t *testing.T) {
	a := newAdmission(1, 1, 50*time.Millisecond)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue and times out; a second is rejected
	// immediately while the first still occupies the queue slot.
	queued := make(chan error, 1)
	go func() {
		_, err := a.acquire(context.Background())
		queued <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter enqueue
	if _, err := a.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full acquire: %v, want ErrOverloaded", err)
	}
	if err := <-queued; !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued acquire: %v, want ErrQueueTimeout", err)
	}
	if got := a.rejected.Load(); got != 2 {
		t.Fatalf("rejected = %d, want 2", got)
	}
	release()

	// After release the gate admits again.
	release2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release2()

	// A queued waiter whose context ends first is rejected with its
	// context error.
	release3, _ := a.acquire(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := a.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: %v, want context.Canceled", err)
	}
	release3()
}

func TestWorkerPoolClamp(t *testing.T) {
	w := newWorkerPool(2)
	got, rel := w.acquire(4)
	if got != 3 { // 1 implicit + 2 pooled
		t.Fatalf("got %d workers, want 3", got)
	}
	got2, rel2 := w.acquire(4)
	if got2 != 1 { // pool exhausted — degrade to serial, never block
		t.Fatalf("got %d workers with exhausted pool, want 1", got2)
	}
	rel2()
	rel()
	if got3, rel3 := w.acquire(2); got3 != 2 {
		t.Fatalf("got %d workers after release, want 2", got3)
	} else {
		rel3()
	}
	if got4, rel4 := w.acquire(1); got4 != 1 {
		t.Fatalf("serial acquire got %d, want 1", got4)
	} else {
		rel4()
	}
}

func TestWireErrorMapping(t *testing.T) {
	cases := []struct {
		err  error
		kind string
		op   string
	}{
		{&exec.QueryError{Op: "hashjoin/build", Err: errors.New("boom")}, KindExec, "hashjoin/build"},
		{&exec.QueryError{Op: "scan", Err: context.Canceled}, KindCancelled, "scan"},
		{&exec.QueryError{Op: "sort", Err: context.DeadlineExceeded}, KindTimeout, "sort"},
		{context.Canceled, KindCancelled, ""},
		{context.DeadlineExceeded, KindTimeout, ""},
		{ErrOverloaded, KindAdmission, ""},
		{ErrQueueTimeout, KindAdmission, ""},
		{ErrDraining, KindDraining, ""},
		{sessionErrorf("no such thing"), KindSession, ""},
		{errors.New("plain failure"), KindQuery, ""},
	}
	for _, c := range cases {
		w := toWireError(c.err)
		if w.Kind != c.kind || w.Op != c.op {
			t.Errorf("toWireError(%v) = kind %q op %q, want %q %q", c.err, w.Kind, w.Op, c.kind, c.op)
		}
	}
	if toWireError(nil) != nil {
		t.Error("toWireError(nil) != nil")
	}
}

func TestServerDo(t *testing.T) {
	db := testDB(t)
	srv := New(Config{DB: db, Registry: obsv.NewRegistry()})
	sess := srv.OpenSession()
	ctx := context.Background()

	hello := srv.Do(ctx, sess, Request{Op: OpHello})
	if !hello.OK || hello.Session != sess.ID() {
		t.Fatalf("hello: %+v", hello)
	}

	q := srv.Do(ctx, sess, Request{Op: OpQuery, SQL: corrQuery})
	if !q.OK || len(q.Columns) != 2 || len(q.Rows) == 0 || q.QueryID == 0 {
		t.Fatalf("query: %+v", q)
	}

	// DML bumps the epoch; the response reports the new one.
	ex := srv.Do(ctx, sess, Request{Op: OpExec, SQL: "insert into parent values (1000, 3, 1)"})
	if !ex.OK || ex.RowsAffected != 1 || ex.Epoch <= q.Epoch {
		t.Fatalf("exec: %+v", ex)
	}

	// Prepared statements: prepare, run, close, run-after-close fails.
	if r := srv.Do(ctx, sess, Request{Op: OpPrepare, Name: "p1", SQL: corrQuery}); !r.OK {
		t.Fatalf("prepare: %+v", r)
	}
	if r := srv.Do(ctx, sess, Request{Op: OpRun, Name: "p1"}); !r.OK || len(r.Rows) == 0 {
		t.Fatalf("run: %+v", r)
	}
	if r := srv.Do(ctx, sess, Request{Op: OpCloseStmt, Name: "p1"}); !r.OK {
		t.Fatalf("close_stmt: %+v", r)
	}
	if r := srv.Do(ctx, sess, Request{Op: OpRun, Name: "p1"}); r.OK || r.Error.Kind != KindSession {
		t.Fatalf("run after close: %+v", r)
	}

	// Session options: valid set reflected in describe, bad ones rejected.
	if r := srv.Do(ctx, sess, Request{Op: OpSet, Key: "strategy", Value: "nested-parallel"}); !r.OK || !strings.Contains(r.Text, "nested-parallel") {
		t.Fatalf("set strategy: %+v", r)
	}
	if r := srv.Do(ctx, sess, Request{Op: OpSet, Key: "strategy", Value: "bogus"}); r.OK || r.Error.Kind != KindSession {
		t.Fatalf("set bogus strategy: %+v", r)
	}
	for _, kv := range [][2]string{{"2vl", "on"}, {"vectorized", "off"}, {"parallelism", "2"}, {"timeout", "30s"}} {
		if r := srv.Do(ctx, sess, Request{Op: OpSet, Key: kv[0], Value: kv[1]}); !r.OK {
			t.Fatalf("set %s: %+v", kv[0], r)
		}
	}

	// Pin: reads repeat at the pinned epoch while the table moves on.
	pin := srv.Do(ctx, sess, Request{Op: OpPin})
	before := srv.Do(ctx, sess, Request{Op: OpQuery, SQL: "select id from parent where id >= 1000"})
	srv.Do(ctx, sess, Request{Op: OpExec, SQL: "insert into parent values (1001, 4, 2)"})
	after := srv.Do(ctx, sess, Request{Op: OpQuery, SQL: "select id from parent where id >= 1000"})
	if !pin.OK || len(before.Rows) != 1 || len(after.Rows) != 1 || after.Epoch != pin.Epoch {
		t.Fatalf("pinned reads moved: pin %+v before %d after %d rows", pin, len(before.Rows), len(after.Rows))
	}
	unpin := srv.Do(ctx, sess, Request{Op: OpUnpin})
	latest := srv.Do(ctx, sess, Request{Op: OpQuery, SQL: "select id from parent where id >= 1000"})
	if !unpin.OK || len(latest.Rows) != 2 {
		t.Fatalf("unpinned read: %+v (%d rows)", unpin, len(latest.Rows))
	}

	// Introspection ops.
	if r := srv.Do(ctx, sess, Request{Op: OpTables}); !r.OK || len(r.Tables) != 2 {
		t.Fatalf("tables: %+v", r)
	}
	if r := srv.Do(ctx, sess, Request{Op: OpStats, Table: "parent"}); !r.OK || r.Text == "" {
		t.Fatalf("stats table: %+v", r)
	}
	if r := srv.Do(ctx, sess, Request{Op: OpStats}); !r.OK || !strings.Contains(r.Text, "plan cache") {
		t.Fatalf("server stats: %+v", r)
	}
	if r := srv.Do(ctx, sess, Request{Op: OpExplain, SQL: corrQuery}); !r.OK || r.Text == "" {
		t.Fatalf("explain: %+v", r)
	}
	if r := srv.Do(ctx, sess, Request{Op: OpExplainAnalyze, SQL: corrQuery}); !r.OK || r.Text == "" {
		t.Fatalf("explain analyze: %+v", r)
	}
	if r := srv.Do(ctx, sess, Request{Op: OpWaterfall, SQL: corrQuery}); !r.OK || r.Text == "" {
		t.Fatalf("waterfall: %+v", r)
	}
	if r := srv.Do(ctx, sess, Request{Op: OpAnalyze}); !r.OK {
		t.Fatalf("analyze: %+v", r)
	}
	if r := srv.Do(ctx, sess, Request{Op: "nonsense"}); r.OK || r.Error.Kind != KindSession {
		t.Fatalf("unknown op: %+v", r)
	}
}

func TestQueryTimeoutKind(t *testing.T) {
	db := testDB(t)
	srv := New(Config{DB: db})
	sess := srv.OpenSession()
	ctx := context.Background()
	if r := srv.Do(ctx, sess, Request{Op: OpSet, Key: "timeout", Value: "1ns"}); !r.OK {
		t.Fatalf("set timeout: %+v", r)
	}
	r := srv.Do(ctx, sess, Request{Op: OpQuery, SQL: corrQuery})
	if r.OK || r.Error.Kind != KindTimeout {
		t.Fatalf("timed-out query: %+v", r)
	}
}

func TestHTTPAPI(t *testing.T) {
	db := testDB(t)
	srv := New(Config{DB: db})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path string, body any) Response {
		t.Helper()
		data, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
		return out
	}

	if r := post("/v1/query", map[string]any{"sql": corrQuery}); !r.OK || len(r.Rows) == 0 {
		t.Fatalf("/v1/query: %+v", r)
	}
	if r := post("/v1/exec", map[string]any{"sql": "insert into parent values (2000, 1, 1)"}); !r.OK || r.RowsAffected != 1 {
		t.Fatalf("/v1/exec: %+v", r)
	}

	// A named session persists options across requests.
	hello := post("/v1/session", map[string]any{})
	if !hello.OK || hello.Session == "" {
		t.Fatalf("/v1/session hello: %+v", hello)
	}
	if r := post("/v1/session", map[string]any{"op": OpSet, "session": hello.Session, "key": "strategy", "value": "native"}); !r.OK {
		t.Fatalf("/v1/session set: %+v", r)
	}
	if r := post("/v1/prepare", map[string]any{"session": hello.Session, "name": "q", "sql": corrQuery}); !r.OK {
		t.Fatalf("/v1/prepare: %+v", r)
	}
	if r := post("/v1/run", map[string]any{"session": hello.Session, "name": "q"}); !r.OK || len(r.Rows) == 0 {
		t.Fatalf("/v1/run: %+v", r)
	}
	if r := post("/v1/run", map[string]any{"session": "s999x", "name": "q"}); r.OK || r.Error.Kind != KindSession {
		t.Fatalf("/v1/run bad session: %+v", r)
	}
	if r := post("/v1/explain", map[string]any{"sql": corrQuery}); !r.OK || r.Text == "" {
		t.Fatalf("/v1/explain: %+v", r)
	}
	if r := post("/v1/analyze", map[string]any{"table": "parent"}); !r.OK {
		t.Fatalf("/v1/analyze: %+v", r)
	}

	// Streaming: header line, row lines, done trailer.
	data, _ := json.Marshal(map[string]any{"sql": "select id from parent where id < 3", "stream": true})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 3 rows + trailer
		t.Fatalf("stream lines: %q", lines)
	}
	var hdr streamHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || len(hdr.Columns) != 1 {
		t.Fatalf("stream header %q: %v", lines[0], err)
	}
	var tr streamTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tr); err != nil || !tr.Done || tr.Rows != 3 {
		t.Fatalf("stream trailer %q: %v", lines[len(lines)-1], err)
	}

	// GET endpoints.
	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp, b.String()
	}
	if resp, body := get("/v1/tables"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "parent") {
		t.Fatalf("/v1/tables: %d %q", resp.StatusCode, body)
	}
	if resp, body := get("/v1/stats"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "PlanCache") {
		t.Fatalf("/v1/stats: %d %q", resp.StatusCode, body)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	// Transport errors: bad JSON is 400.
	badResp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status: %d", badResp.StatusCode)
	}
}

func TestLineProtocol(t *testing.T) {
	db := testDB(t)
	srv := New(Config{DB: db})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeLine(ln)
	defer ln.Close()

	c, err := DialLine(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Session() == "" {
		t.Fatal("no session from hello")
	}
	if r, err := c.Do(Request{Op: OpQuery, SQL: corrQuery}); err != nil || len(r.Rows) == 0 {
		t.Fatalf("query: %+v %v", r, err)
	}
	if r, err := c.Do(Request{Op: OpSet, Key: "2vl", Value: "on"}); err != nil || !strings.Contains(r.Text, "2vl=true") {
		t.Fatalf("set: %+v %v", r, err)
	}
	if _, err := c.Do(Request{Op: OpPrepare, Name: "p", SQL: corrQuery}); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if r, err := c.Do(Request{Op: OpRun, Name: "p"}); err != nil || len(r.Rows) == 0 {
		t.Fatalf("run: %+v %v", r, err)
	}
	if _, err := c.Do(Request{Op: OpQuery, SQL: "select nonsense from nowhere"}); err == nil {
		t.Fatal("bad query did not error")
	} else {
		var we *WireError
		if !errors.As(err, &we) || we.Kind != KindQuery {
			t.Fatalf("bad query error: %v", err)
		}
	}
	// A second client gets its own session.
	c2, err := DialLine(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Session() == c.Session() {
		t.Fatal("sessions not distinct")
	}
}

func TestDrain(t *testing.T) {
	db := testDB(t)
	srv := New(Config{DB: db, DrainGrace: time.Millisecond})
	sess := srv.OpenSession()
	ctx := context.Background()

	// Launch statements that may still be in flight when drain starts.
	done := make(chan Response, 4)
	for i := 0; i < 4; i++ {
		go func() {
			done <- srv.Do(ctx, sess, Request{Op: OpQuery, SQL: corrQuery})
		}()
	}
	drainCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Every in-flight statement resolved: finished, cancelled, or
	// rejected — never hung.
	for i := 0; i < 4; i++ {
		r := <-done
		if !r.OK && r.Error.Kind != KindCancelled && r.Error.Kind != KindDraining {
			t.Fatalf("in-flight statement during drain: %+v", r)
		}
	}
	// New statements are rejected while control ops still answer.
	if r := srv.Do(ctx, sess, Request{Op: OpQuery, SQL: corrQuery}); r.OK || r.Error.Kind != KindDraining {
		t.Fatalf("post-drain query: %+v", r)
	}
	if r := srv.Do(ctx, sess, Request{Op: OpPing}); !r.OK {
		t.Fatalf("post-drain ping: %+v", r)
	}
}

func TestQPSSweepSmoke(t *testing.T) {
	db := testDB(t)
	pts, err := RunQPS(db, QPSConfig{
		Queries:     []string{corrQuery, "select id from parent where v > 3"},
		Concurrency: []int{1, 2},
		PerWorker:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 { // {on, off} × {1, 2}
		t.Fatalf("points: %d", len(pts))
	}
	for _, p := range pts {
		if p.Queries == 0 || p.QPS <= 0 || p.P50 <= 0 || p.P99 < p.P50 {
			t.Fatalf("degenerate point: %+v", p)
		}
	}
}
