package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
)

// maxLine bounds one line-protocol request (1 MiB, matching the shell's
// input buffer).
const maxLine = 1 << 20

// ServeLine accepts line-protocol connections on l until the listener
// closes (Drain closes tracked connections; close the listener to stop
// accepting). The protocol is newline-delimited JSON: the client sends
// one Request per line and receives one Response per line, in order.
// Each connection owns one session, opened on accept and closed with
// the connection, so \set-style state is naturally connection-scoped.
func (s *Server) ServeLine(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

// serveConn runs one connection's request loop.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	s.trackConn(conn)
	defer s.untrackConn(conn)

	sess := s.OpenSession()
	defer s.CloseSession(sess)

	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, maxLine), maxLine)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			if enc.Encode(fail(sess.id, 0, sessionErrorf("bad request: %v", err))) != nil {
				return
			}
			continue
		}
		// Statements are serial per connection; cancellation arrives via
		// server drain (which cancels registered in-flight statements
		// directly), so the background context suffices.
		resp := s.Do(context.Background(), sess, req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if req.Op == OpQuit {
			return
		}
	}
}

// DialLine connects a line-protocol client to addr and performs the
// hello handshake, returning the client and the server-assigned
// session ID.
func DialLine(addr string) (*LineClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &LineClient{conn: conn, enc: json.NewEncoder(conn), sc: bufio.NewScanner(conn)}
	c.sc.Buffer(make([]byte, maxLine), maxLine)
	resp, err := c.Do(Request{Op: OpHello})
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.session = resp.Session
	return c, nil
}

// LineClient is a synchronous line-protocol client: one request, one
// response, in order. It is not safe for concurrent use — open one
// client per concurrent session, which is the protocol's session model
// anyway.
type LineClient struct {
	conn    net.Conn
	enc     *json.Encoder
	sc      *bufio.Scanner
	session string
}

// Session returns the server-assigned session ID.
func (c *LineClient) Session() string { return c.session }

// Do sends one request and reads its response. A transport failure
// closes the connection; a Response with ok=false is returned as the
// response AND as its *WireError so call sites can branch on err alone.
func (c *LineClient) Do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, err
		}
		return Response{}, io.ErrUnexpectedEOF
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, err
	}
	if resp.Error != nil {
		return resp, resp.Error
	}
	return resp, nil
}

// Close ends the session (best-effort quit) and closes the connection.
func (c *LineClient) Close() error {
	c.enc.Encode(Request{Op: OpQuit})
	return c.conn.Close()
}
