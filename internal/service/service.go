package service

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nra"
	"nra/internal/obsv"
)

// Config parameterises a Server. The zero value of every knob picks a
// sensible default; only DB is required.
type Config struct {
	// DB is the shared database every session executes against.
	DB *nra.DB
	// MaxInFlight bounds concurrently executing statements
	// (default 2×GOMAXPROCS).
	MaxInFlight int
	// QueueDepth bounds statements waiting for admission beyond
	// MaxInFlight; further arrivals are rejected immediately
	// (default 4×MaxInFlight).
	QueueDepth int
	// QueueTimeout rejects a queued statement that waited this long
	// (default 5s; negative = wait as long as its context allows).
	QueueTimeout time.Duration
	// MemPoolBytes is the shared memory pool charged by every
	// statement's operator working state (0 = unbounded).
	MemPoolBytes int64
	// Workers bounds the aggregate intra-query parallelism across all
	// sessions (default GOMAXPROCS).
	Workers int
	// PlanCacheSize is the shared plan cache capacity in statements
	// (default 256; negative disables the cache).
	PlanCacheSize int
	// DrainGrace is how long Drain waits for in-flight statements to
	// finish naturally before cancelling the stragglers (default 500ms).
	DrainGrace time.Duration
	// CheckpointDir, when non-empty, makes Drain checkpoint the database
	// (full save + WAL truncation) into this directory after quiescing.
	CheckpointDir string
	// Registry receives the server's gauges — plan cache, admission,
	// memory pool, session counts — for /debug/metrics (nil = none).
	Registry *obsv.Registry
}

// Server is the concurrent query service: it owns the shared plan
// cache, the admission gate, the worker and memory pools, and the
// session table, and exposes them over an HTTP API (Handler) and a
// line protocol (ServeLine). One Server is safe for any number of
// concurrent sessions; create it with New.
type Server struct {
	cfg     Config
	db      *nra.DB
	cache   *nra.PlanCache
	pool    *nra.MemPool
	adm     *admission
	workers *workerPool

	mu       sync.Mutex
	sessions map[string]*Session
	cancels  map[uint64]context.CancelFunc
	conns    map[net.Conn]struct{}

	seq      atomic.Uint64 // session IDs
	ticket   atomic.Uint64 // in-flight cancellation registry keys
	draining atomic.Bool
	wg       sync.WaitGroup // in-flight statements

	waterfallMu sync.Mutex // serialises traced runs (one LastTrace slot)
}

// New builds a Server over cfg.DB, installs the shared plan cache on
// it, and registers the service gauges with cfg.Registry.
func New(cfg Config) *Server {
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 4 * cfg.MaxInFlight
	}
	if cfg.QueueTimeout == 0 {
		cfg.QueueTimeout = 5 * time.Second
	}
	if cfg.QueueTimeout < 0 {
		cfg.QueueTimeout = 0
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 500 * time.Millisecond
	}
	s := &Server{
		cfg:      cfg,
		db:       cfg.DB,
		adm:      newAdmission(cfg.MaxInFlight, cfg.QueueDepth, cfg.QueueTimeout),
		workers:  newWorkerPool(cfg.Workers),
		sessions: make(map[string]*Session),
		cancels:  make(map[uint64]context.CancelFunc),
		conns:    make(map[net.Conn]struct{}),
	}
	if cfg.PlanCacheSize >= 0 {
		size := cfg.PlanCacheSize
		if size == 0 {
			size = 256
		}
		s.cache = nra.NewPlanCache(size)
		s.db.SetPlanCache(s.cache)
	} else {
		s.db.SetPlanCache(nil) // cache disabled — unwire any previous one
	}
	if cfg.MemPoolBytes > 0 {
		s.pool = nra.NewMemPool(cfg.MemPoolBytes)
	}
	s.registerGauges(cfg.Registry)
	return s
}

// registerGauges publishes the server's live counters as registry
// gauges, polled at metrics-snapshot time.
func (s *Server) registerGauges(r *obsv.Registry) {
	if r == nil {
		return
	}
	r.RegisterGauge("plancache_hits", func() int64 { return int64(s.cache.Stats().Hits) })
	r.RegisterGauge("plancache_misses", func() int64 { return int64(s.cache.Stats().Misses) })
	r.RegisterGauge("plancache_invalidations", func() int64 { return int64(s.cache.Stats().Invalidations) })
	r.RegisterGauge("plancache_entries", func() int64 { return int64(s.cache.Stats().Entries) })
	r.RegisterGauge("admission_inflight", s.adm.inflight.Load)
	r.RegisterGauge("admission_queued", s.adm.queued.Load)
	r.RegisterGauge("admission_rejected", s.adm.rejected.Load)
	r.RegisterGauge("service_sessions", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.sessions))
	})
	r.RegisterGauge("service_workers_in_use", s.workers.inUse)
	r.RegisterGauge("mempool_used_bytes", s.pool.Used)
	r.RegisterGauge("mempool_peak_bytes", s.pool.Peak)
	r.RegisterGauge("mempool_denials", s.pool.Denials)
}

// OpenSession creates a session with default options.
func (s *Server) OpenSession() *Session {
	sess := &Session{srv: s, id: fmt.Sprintf("s%03d", s.seq.Add(1))}
	s.mu.Lock()
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	return sess
}

// Session resolves a session by ID, nil when unknown or closed.
func (s *Server) Session(id string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// CloseSession removes a session, discarding its prepared statements
// and pinned snapshot. In-flight statements finish normally.
func (s *Server) CloseSession(sess *Session) {
	if sess == nil {
		return
	}
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	sess.mu.Lock()
	sess.closed = true
	sess.prepared = nil
	sess.pinned = nil
	sess.mu.Unlock()
}

// Stats is a point-in-time snapshot of the server's shared machinery.
type Stats struct {
	// Sessions is the number of open sessions.
	Sessions int
	// Inflight is the number of currently executing statements.
	Inflight int64
	// Queued is the number of statements waiting for admission.
	Queued int64
	// Admitted counts statements admitted since startup.
	Admitted int64
	// Rejected counts statements rejected by the admission gate.
	Rejected int64
	// PlanCache holds the shared plan cache's counters.
	PlanCache nra.PlanCacheStats
	// PoolCap, PoolUsed, PoolPeak and PoolDenials describe the shared
	// memory pool (all zero when no pool is configured).
	PoolCap, PoolUsed, PoolPeak, PoolDenials int64
	// Epoch is the current catalog epoch.
	Epoch uint64
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	return Stats{
		Sessions:    n,
		Inflight:    s.adm.inflight.Load(),
		Queued:      s.adm.queued.Load(),
		Admitted:    s.adm.admitted.Load(),
		Rejected:    s.adm.rejected.Load(),
		PlanCache:   s.cache.Stats(),
		PoolCap:     s.pool.Cap(),
		PoolUsed:    s.pool.Used(),
		PoolPeak:    s.pool.Peak(),
		PoolDenials: s.pool.Denials(),
		Epoch:       s.db.Snapshot().Epoch(),
	}
}

// String renders the stats for the line protocol's \stats output.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions:      %d\n", st.Sessions)
	fmt.Fprintf(&b, "in flight:     %d (queued %d, admitted %d, rejected %d)\n",
		st.Inflight, st.Queued, st.Admitted, st.Rejected)
	fmt.Fprintf(&b, "plan cache:    %d entries, %d hits, %d misses, %d invalidations, %d evictions\n",
		st.PlanCache.Entries, st.PlanCache.Hits, st.PlanCache.Misses,
		st.PlanCache.Invalidations, st.PlanCache.Evictions)
	if st.PoolCap > 0 {
		fmt.Fprintf(&b, "memory pool:   %d/%d bytes used, peak %d, denials %d\n",
			st.PoolUsed, st.PoolCap, st.PoolPeak, st.PoolDenials)
	}
	fmt.Fprintf(&b, "catalog epoch: %d\n", st.Epoch)
	return b.String()
}

// Do executes one request on behalf of a session: it passes the
// admission gate, builds the statement's strategy from the session
// defaults plus the server's pools, runs it, and shapes the result for
// the wire. Control operations (hello, ping, set, pin, unpin, prepare,
// close_stmt, tables, stats) bypass admission — they do no query work.
func (s *Server) Do(ctx context.Context, sess *Session, req Request) Response {
	switch req.Op {
	case OpHello:
		return Response{OK: true, Session: sess.id, Epoch: s.db.Snapshot().Epoch()}
	case OpPing:
		return Response{OK: true, Session: sess.id}
	case OpSet:
		if err := sess.set(req.Key, req.Value); err != nil {
			return fail(sess.id, 0, err)
		}
		return Response{OK: true, Session: sess.id, Text: sess.describe()}
	case OpPin:
		return Response{OK: true, Session: sess.id, Epoch: sess.pin()}
	case OpUnpin:
		sess.unpin()
		return Response{OK: true, Session: sess.id, Epoch: s.db.Snapshot().Epoch()}
	case OpPrepare:
		if err := sess.prepare(req.Name, req.SQL); err != nil {
			return fail(sess.id, 0, err)
		}
		return Response{OK: true, Session: sess.id}
	case OpCloseStmt:
		if err := sess.closeStmt(req.Name); err != nil {
			return fail(sess.id, 0, err)
		}
		return Response{OK: true, Session: sess.id}
	case OpTables:
		return s.doTables(sess)
	case OpStats:
		return s.doStats(sess, req.Table)
	case OpQuery, OpExec, OpExplain, OpExplainAnalyze, OpWaterfall, OpRun, OpAnalyze:
		return s.doStatement(ctx, sess, req)
	case OpQuit:
		s.CloseSession(sess)
		return Response{OK: true, Session: sess.id}
	}
	return fail(sess.id, 0, sessionErrorf("unknown op %q", req.Op))
}

// doTables lists tables with row counts.
func (s *Server) doTables(sess *Session) Response {
	names := s.db.Tables()
	sort.Strings(names)
	infos := make([]TableInfo, 0, len(names))
	for _, n := range names {
		rows, err := s.db.NumRows(n)
		if err != nil {
			continue // dropped concurrently
		}
		infos = append(infos, TableInfo{Name: n, Rows: rows})
	}
	return Response{OK: true, Session: sess.id, Tables: infos, Epoch: s.db.Snapshot().Epoch()}
}

// doStats renders one table's optimizer statistics, or the server's own
// counters when no table is named.
func (s *Server) doStats(sess *Session, table string) Response {
	if table == "" {
		return Response{OK: true, Session: sess.id, Text: s.Stats().String()}
	}
	out, err := s.db.StatsSummary(table)
	if err != nil {
		return fail(sess.id, 0, err)
	}
	return Response{OK: true, Session: sess.id, Text: out}
}

// doStatement is the admitted execution path shared by every operation
// that touches query machinery.
func (s *Server) doStatement(ctx context.Context, sess *Session, req Request) Response {
	qid := sess.nextQueryID()
	if s.draining.Load() {
		return fail(sess.id, qid, ErrDraining)
	}
	release, err := s.adm.acquire(ctx)
	if err != nil {
		return fail(sess.id, qid, err)
	}
	defer release()

	// Register for drain-time cancellation. The registration window also
	// closes the startup race: a statement admitted just as Drain flips
	// the flag is still cancellable.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ticket := s.ticket.Add(1)
	s.mu.Lock()
	s.cancels[ticket] = cancel
	s.mu.Unlock()
	s.wg.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.cancels, ticket)
		s.mu.Unlock()
		s.wg.Done()
	}()
	// Re-check after registering: a statement that raced past the first
	// check is now visible to Drain's cancelAll and wg.Wait, so either
	// it bails here or drain cancels/awaits it — never neither.
	if s.draining.Load() {
		return fail(sess.id, qid, ErrDraining)
	}

	strategy, releaseWorkers := sess.strategy(qid)
	defer releaseWorkers()

	start := time.Now()
	resp := s.execute(ctx, sess, req, strategy)
	resp.Session, resp.QueryID = sess.id, qid
	resp.ElapsedUS = time.Since(start).Microseconds()
	return resp
}

// execute dispatches one admitted statement.
func (s *Server) execute(ctx context.Context, sess *Session, req Request, strategy nra.Strategy) Response {
	switch req.Op {
	case OpQuery:
		var res *nra.Result
		var err error
		if snap := sess.snap(); snap != nil {
			res, err = snap.QueryWithContext(ctx, req.SQL, strategy)
		} else {
			res, err = s.db.QueryWithContext(ctx, req.SQL, strategy)
		}
		if err != nil {
			return Response{Error: toWireError(err)}
		}
		return renderResult(res, s.epochFor(sess))
	case OpRun:
		st, err := sess.stmt(req.Name)
		if err != nil {
			return Response{Error: toWireError(err)}
		}
		res, err := st.RunWithContext(ctx, strategy)
		if err != nil {
			return Response{Error: toWireError(err)}
		}
		return renderResult(res, s.epochFor(sess))
	case OpExec:
		n, err := s.db.Exec(req.SQL)
		if err != nil {
			return Response{Error: toWireError(err)}
		}
		return Response{OK: true, RowsAffected: n, Epoch: s.db.Snapshot().Epoch()}
	case OpAnalyze:
		var err error
		if req.Table != "" {
			err = s.db.Analyze(strings.Fields(req.Table)...)
		} else {
			err = s.db.Analyze()
		}
		if err != nil {
			return Response{Error: toWireError(err)}
		}
		return Response{OK: true, Epoch: s.db.Snapshot().Epoch()}
	case OpExplain:
		out, err := s.db.Explain(req.SQL, strategy)
		if err != nil {
			return Response{Error: toWireError(err)}
		}
		return Response{OK: true, Text: out}
	case OpExplainAnalyze:
		out, err := s.db.ExplainAnalyze(req.SQL, strategy)
		if err != nil {
			return Response{Error: toWireError(err)}
		}
		return Response{OK: true, Text: out}
	case OpWaterfall:
		// LastTrace is a single DB-wide slot; serialise traced runs so a
		// concurrent query cannot clobber the waterfall between the run
		// and the read.
		s.waterfallMu.Lock()
		defer s.waterfallMu.Unlock()
		if _, err := s.db.QueryWithContext(ctx, req.SQL, strategy.WithTracing(true)); err != nil {
			return Response{Error: toWireError(err)}
		}
		tr := s.db.LastTrace()
		if tr == nil {
			return Response{Error: toWireError(sessionErrorf("no trace captured"))}
		}
		return Response{OK: true, Text: tr.Waterfall()}
	}
	return Response{Error: toWireError(sessionErrorf("unknown op %q", req.Op))}
}

// epochFor reports the epoch a session's reads observe: the pinned
// snapshot's, or the current one.
func (s *Server) epochFor(sess *Session) uint64 {
	if snap := sess.snap(); snap != nil {
		return snap.Epoch()
	}
	return s.db.Snapshot().Epoch()
}

// renderResult shapes a query result for the wire, sorting rows
// canonically so concurrent clients can compare outputs byte-for-byte.
func renderResult(res *nra.Result, epoch uint64) Response {
	res.Sort()
	rows := res.Rows()
	if rows == nil {
		rows = [][]any{}
	}
	return Response{OK: true, Columns: res.Columns(), Rows: rows, Epoch: epoch}
}

// Draining reports whether the server has stopped admitting statements.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain shuts the server down gracefully: stop admitting statements,
// give in-flight ones DrainGrace to finish, cancel the stragglers
// through their execution contexts, wait for the last to unwind, close
// line-protocol connections, and (when CheckpointDir is set) checkpoint
// the database so the WAL is truncated at a clean snapshot. It returns
// ctx.Err() if ctx ends before the in-flight statements unwind.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	grace := time.NewTimer(s.cfg.DrainGrace)
	defer grace.Stop()
	select {
	case <-done:
	case <-grace.C:
		s.cancelAll()
	case <-ctx.Done():
		s.cancelAll()
	}
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}

	s.closeConns()
	if s.cfg.CheckpointDir != "" {
		if err := s.db.Save(s.cfg.CheckpointDir); err != nil {
			return fmt.Errorf("service: drain checkpoint: %w", err)
		}
	}
	return nil
}

// cancelAll cancels every registered in-flight statement.
func (s *Server) cancelAll() {
	s.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(s.cancels))
	for _, c := range s.cancels {
		cancels = append(cancels, c)
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// trackConn registers a line-protocol connection for drain-time close.
func (s *Server) trackConn(c net.Conn) {
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

// untrackConn forgets a closed connection.
func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// closeConns closes all tracked line-protocol connections.
func (s *Server) closeConns() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
