package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// apiRequest is the HTTP request body: a Request plus the transport
// concerns the line protocol handles implicitly (session routing and
// streaming).
type apiRequest struct {
	Request
	// Session routes the request to an existing session; empty uses an
	// ephemeral session scoped to this request.
	Session string `json:"session,omitempty"`
	// Stream asks for newline-delimited JSON: a columns line, one line
	// per row, then a done trailer. Only OpQuery and OpRun stream.
	Stream bool `json:"stream,omitempty"`
}

// streamHeader is the first line of a streamed result.
type streamHeader struct {
	// Columns holds the result column names.
	Columns []string `json:"columns"`
	// Session and QueryID identify the execution, as in Response.
	Session string `json:"session"`
	// QueryID is the session's statement counter for this query.
	QueryID uint64 `json:"query_id"`
}

// streamTrailer is the last line of a streamed result.
type streamTrailer struct {
	// Done is always true; it marks the trailer line.
	Done bool `json:"done"`
	// Rows is the total row count sent.
	Rows int `json:"rows"`
	// Epoch is the catalog epoch the query observed.
	Epoch uint64 `json:"epoch"`
	// ElapsedUS is the server-side execution time in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/query    {"sql": ..., "session"?: ..., "stream"?: true}
//	POST /v1/exec     {"sql": ...}
//	POST /v1/prepare  {"session": ..., "name": ..., "sql": ...}
//	POST /v1/run      {"session": ..., "name": ..., "stream"?: true}
//	POST /v1/explain  {"sql": ..., "op"?: "explain_analyze" | "waterfall"}
//	POST /v1/analyze  {"table"?: ...}
//	POST /v1/session  {"op": "hello" | "set" | "pin" | "unpin" | "quit", ...}
//	GET  /v1/tables
//	GET  /v1/stats
//	GET  /healthz
//
// Responses are Response JSON; streamed queries send header, row, and
// trailer lines instead. Errors keep HTTP 200 with ok=false except for
// transport-level problems (bad JSON = 400, draining = 503).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleOp(OpQuery))
	mux.HandleFunc("POST /v1/exec", s.handleOp(OpExec))
	mux.HandleFunc("POST /v1/prepare", s.handleOp(OpPrepare))
	mux.HandleFunc("POST /v1/run", s.handleOp(OpRun))
	mux.HandleFunc("POST /v1/explain", s.handleOp(OpExplain))
	mux.HandleFunc("POST /v1/analyze", s.handleOp(OpAnalyze))
	mux.HandleFunc("POST /v1/session", s.handleOp(OpHello))
	mux.HandleFunc("GET /v1/tables", func(w http.ResponseWriter, r *http.Request) {
		sess := s.OpenSession()
		defer s.CloseSession(sess)
		writeJSON(w, http.StatusOK, s.doTables(sess))
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleOp adapts one operation to HTTP: it decodes the body, resolves
// the session (ephemeral when unnamed), runs Do, and encodes the result
// as one JSON object or a stream.
func (s *Server) handleOp(defaultOp string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req apiRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest,
				fail("", 0, sessionErrorf("bad request body: %v", err)))
			return
		}
		if req.Op == "" {
			req.Op = defaultOp
		}
		sess, ephemeral, err := s.resolveSession(req.Session)
		if err != nil {
			writeJSON(w, http.StatusOK, fail(req.Session, 0, err))
			return
		}
		// An ephemeral session lives for this request only — except when
		// the client is explicitly opening one (hello), which hands the
		// session ID back for reuse across requests.
		if ephemeral && req.Op != OpHello {
			defer s.CloseSession(sess)
		}
		if req.Stream && (req.Op == OpQuery || req.Op == OpRun) {
			s.streamQuery(w, r, sess, req.Request)
			return
		}
		resp := s.Do(r.Context(), sess, req.Request)
		status := http.StatusOK
		if resp.Error != nil && resp.Error.Kind == KindDraining {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, resp)
	}
}

// resolveSession finds the named session or opens an ephemeral one.
func (s *Server) resolveSession(id string) (*Session, bool, error) {
	if id == "" {
		return s.OpenSession(), true, nil
	}
	if sess := s.Session(id); sess != nil {
		return sess, false, nil
	}
	return nil, false, sessionErrorf("no session %q", id)
}

// streamQuery runs a query and writes the result as newline-delimited
// JSON: {"columns":...}, one JSON array per row, {"done":true,...}.
// Errors before the first row are a plain Response line; the result is
// fully materialised before the header is sent, so a stream that opened
// always ends with the trailer.
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request, sess *Session, req Request) {
	resp := s.Do(r.Context(), sess, req)
	if resp.Error != nil {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	enc.Encode(streamHeader{Columns: resp.Columns, Session: resp.Session, QueryID: resp.QueryID})
	for _, row := range resp.Rows {
		if err := enc.Encode(row); err != nil {
			return // client went away
		}
	}
	enc.Encode(streamTrailer{Done: true, Rows: len(resp.Rows), Epoch: resp.Epoch, ElapsedUS: resp.ElapsedUS})
}

// writeJSON encodes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
