package service

import (
	"context"
	"sync/atomic"
	"time"
)

// admission is the max-in-flight gate: at most cap(slots) statements
// execute concurrently; up to queueCap more wait in a bounded queue, and
// a waiter is rejected when the queue is full, its wait exceeds the
// queue timeout, or its context ends first. Everything beyond that is
// rejected immediately — the server sheds load instead of building an
// unbounded backlog.
type admission struct {
	slots    chan struct{}
	queueCap int64
	timeout  time.Duration

	inflight atomic.Int64
	queued   atomic.Int64
	rejected atomic.Int64
	admitted atomic.Int64
}

// newAdmission builds a gate admitting maxInFlight concurrent
// statements with queueDepth waiters and the given queue timeout
// (0 = wait as long as the statement's context allows).
func newAdmission(maxInFlight, queueDepth int, timeout time.Duration) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		queueCap: int64(queueDepth),
		timeout:  timeout,
	}
}

// acquire admits one statement, blocking in the bounded queue when the
// gate is full. It returns the release function on admission, or
// ErrOverloaded / ErrQueueTimeout / ctx.Err() on rejection.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		a.admitted.Add(1)
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > a.queueCap {
		a.queued.Add(-1)
		a.rejected.Add(1)
		return nil, ErrOverloaded
	}
	defer a.queued.Add(-1)

	var timeoutC <-chan time.Time
	if a.timeout > 0 {
		t := time.NewTimer(a.timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		a.admitted.Add(1)
		return a.release, nil
	case <-timeoutC:
		a.rejected.Add(1)
		return nil, ErrQueueTimeout
	case <-ctx.Done():
		a.rejected.Add(1)
		return nil, ctx.Err()
	}
}

// release returns an admitted statement's slot.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.slots
}

// workerPool bounds the aggregate intra-query parallelism of the
// process: a statement asking for N-way partitioned execution takes its
// extra N-1 workers from the pool non-blocking, and runs with however
// many it got. Serial execution never waits — every admitted statement
// always owns one implicit worker — so the pool degrades parallelism
// under load instead of queueing behind it.
type workerPool struct {
	slots chan struct{}
}

// newWorkerPool builds a pool of n shareable worker slots.
func newWorkerPool(n int) *workerPool {
	if n < 1 {
		n = 1
	}
	return &workerPool{slots: make(chan struct{}, n)}
}

// acquire grants min(want, 1+available) workers and returns the grant
// with its release function. want below 2 returns 1 with a no-op
// release.
func (w *workerPool) acquire(want int) (int, func()) {
	if want < 2 {
		return 1, func() {}
	}
	got := 1
	for got < want {
		select {
		case w.slots <- struct{}{}:
			got++
		default:
			want = got // pool exhausted; run with what we have
		}
	}
	extra := got - 1
	return got, func() {
		for i := 0; i < extra; i++ {
			<-w.slots
		}
	}
}

// inUse reports how many pooled worker slots are currently granted.
func (w *workerPool) inUse() int64 { return int64(len(w.slots)) }
