// Package service is the concurrent query service over one shared
// durable database: sessions with per-session execution defaults and
// prepared statements, a shared epoch-keyed plan cache, pooled admission
// control (max-in-flight gate, bounded queue, shared memory pool,
// bounded worker slots), and two wire surfaces — an HTTP/JSON API and a
// newline-delimited JSON line protocol for interactive clients. See
// docs/SERVICE.md for the operational story.
package service

import (
	"context"
	"errors"
	"fmt"

	"nra/internal/exec"
)

// Request is one operation submitted to the service, shared by the HTTP
// API and the line protocol. Op selects the operation; the remaining
// fields parameterise it (unused fields are ignored).
type Request struct {
	// Op is the operation name: one of the Op* constants.
	Op string `json:"op"`
	// SQL is the statement text for query/exec/explain/prepare.
	SQL string `json:"sql,omitempty"`
	// Name identifies a prepared statement for prepare/run/close_stmt.
	Name string `json:"name,omitempty"`
	// Key is the session option for set: strategy, timeout, 2vl,
	// vectorized, or parallelism.
	Key string `json:"key,omitempty"`
	// Value is the new session-option value for set.
	Value string `json:"value,omitempty"`
	// Table names a table for stats, or restricts analyze (empty = all).
	Table string `json:"table,omitempty"`
}

// Operation names accepted in Request.Op.
const (
	// OpHello opens the dialogue: it returns the session ID and the
	// current catalog epoch without executing anything.
	OpHello = "hello"
	// OpPing is a no-op round trip.
	OpPing = "ping"
	// OpQuery executes a SELECT and returns columns and rows.
	OpQuery = "query"
	// OpExec executes DML/DDL (INSERT, DELETE, UPDATE, CREATE, DROP) and
	// returns the affected-row count.
	OpExec = "exec"
	// OpExplain returns the statement's plan without executing it.
	OpExplain = "explain"
	// OpExplainAnalyze executes the statement and returns the plan
	// annotated with estimated vs actual cardinalities.
	OpExplainAnalyze = "explain_analyze"
	// OpWaterfall executes the statement traced and returns the span
	// waterfall rendering.
	OpWaterfall = "waterfall"
	// OpStats returns the collected optimizer statistics for one table.
	OpStats = "stats"
	// OpTables lists tables with row counts.
	OpTables = "tables"
	// OpAnalyze collects optimizer statistics (Table restricts to one).
	OpAnalyze = "analyze"
	// OpPrepare parses and analyzes SQL under Name for repeated OpRun.
	OpPrepare = "prepare"
	// OpRun executes the prepared statement Name.
	OpRun = "run"
	// OpCloseStmt discards the prepared statement Name.
	OpCloseStmt = "close_stmt"
	// OpSet changes one session default (Key/Value).
	OpSet = "set"
	// OpPin pins the session to the current snapshot: subsequent queries
	// read that version regardless of concurrent commits.
	OpPin = "pin"
	// OpUnpin releases a pinned snapshot; queries track the latest
	// committed version again.
	OpUnpin = "unpin"
	// OpQuit closes the session (line protocol: also the connection).
	OpQuit = "quit"
)

// TableInfo is one row of an OpTables listing.
type TableInfo struct {
	// Name is the table name.
	Name string `json:"name"`
	// Rows is the table's current row count.
	Rows int `json:"rows"`
}

// Response is the service's answer to one Request. OK distinguishes
// success from failure; on failure only Error (and the identifying
// Session/QueryID) are set.
type Response struct {
	// OK reports whether the operation succeeded.
	OK bool `json:"ok"`
	// Columns holds the result column names of a query.
	Columns []string `json:"columns,omitempty"`
	// Rows holds the result rows (canonically sorted) as JSON-native
	// values: numbers, strings, booleans, null.
	Rows [][]any `json:"rows,omitempty"`
	// RowsAffected is the DML row count for OpExec.
	RowsAffected int `json:"rows_affected,omitempty"`
	// Text carries rendered output: plans, waterfalls, statistics.
	Text string `json:"text,omitempty"`
	// Tables is the OpTables listing.
	Tables []TableInfo `json:"tables,omitempty"`
	// Session is the session the operation ran under.
	Session string `json:"session,omitempty"`
	// QueryID is the session's monotonic statement counter for this
	// operation; it matches the tag on trace spans and slow-log entries.
	QueryID uint64 `json:"query_id,omitempty"`
	// Epoch is the catalog epoch the operation observed.
	Epoch uint64 `json:"epoch,omitempty"`
	// ElapsedUS is the server-side execution time in microseconds.
	ElapsedUS int64 `json:"elapsed_us,omitempty"`
	// Error describes the failure when OK is false.
	Error *WireError `json:"error,omitempty"`
}

// WireError is the structured error shape sent to clients.
type WireError struct {
	// Kind classifies the failure: one of the Kind* constants.
	Kind string `json:"kind"`
	// Op is the failing operator path when the error originated inside
	// the executor (from *exec.QueryError).
	Op string `json:"op,omitempty"`
	// Message is the full error text.
	Message string `json:"message"`
}

// Error implements error so a WireError can travel through error paths
// on the client side.
func (e *WireError) Error() string { return e.Message }

// Error kinds carried in WireError.Kind.
const (
	// KindQuery is a generic statement failure: parse, analysis, or
	// semantic errors.
	KindQuery = "query"
	// KindExec is a contained executor failure (*exec.QueryError); Op
	// names the failing operator.
	KindExec = "exec"
	// KindCancelled reports the statement's context was cancelled.
	KindCancelled = "cancelled"
	// KindTimeout reports the statement exceeded its deadline.
	KindTimeout = "timeout"
	// KindAdmission reports the admission gate rejected the statement:
	// the queue was full or the queue wait timed out.
	KindAdmission = "admission"
	// KindDraining reports the server is shutting down and no longer
	// admits statements.
	KindDraining = "draining"
	// KindSession reports a session-level protocol error: unknown
	// prepared statement, bad option, malformed request.
	KindSession = "session"
)

// Sentinel errors surfaced by the admission gate and drain sequence.
var (
	// ErrDraining rejects statements arriving after drain began.
	ErrDraining = errors.New("service: draining, not admitting statements")
	// ErrOverloaded rejects statements when the admission queue is full.
	ErrOverloaded = errors.New("service: overloaded, admission queue full")
	// ErrQueueTimeout rejects statements that waited too long in the
	// admission queue.
	ErrQueueTimeout = errors.New("service: timed out waiting for admission")
)

// errSession marks session-level protocol errors so toWireError can
// classify them as KindSession.
type errSession struct{ msg string }

func (e errSession) Error() string { return e.msg }

// sessionErrorf builds a KindSession error.
func sessionErrorf(format string, args ...any) error {
	return errSession{msg: "service: " + fmt.Sprintf(format, args...)}
}

// toWireError maps an execution error onto the wire shape. Cancellation
// and deadline take precedence over the executor wrapper (a cancelled
// operator surfaces as *exec.QueryError wrapping context.Canceled); the
// operator path is preserved whenever one is present.
func toWireError(err error) *WireError {
	if err == nil {
		return nil
	}
	w := &WireError{Kind: KindQuery, Message: err.Error()}
	var qe *exec.QueryError
	if errors.As(err, &qe) {
		w.Kind, w.Op = KindExec, qe.Op
	}
	switch {
	case errors.Is(err, ErrDraining):
		w.Kind = KindDraining
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrQueueTimeout):
		w.Kind = KindAdmission
	case errors.Is(err, context.DeadlineExceeded):
		w.Kind = KindTimeout
	case errors.Is(err, context.Canceled):
		w.Kind = KindCancelled
	default:
		var se errSession
		if errors.As(err, &se) {
			w.Kind = KindSession
		}
	}
	return w
}

// fail builds a failure Response for a session.
func fail(sess string, qid uint64, err error) Response {
	return Response{Session: sess, QueryID: qid, Error: toWireError(err)}
}
