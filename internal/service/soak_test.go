package service

// Service soak: K concurrent sessions mix queries, DML, ANALYZE and
// prepared statements over one shared database through the full service
// path — admission, worker clamping, shared memory pool, plan cache.
// Pinned readers verify snapshot consistency byte-for-byte against a
// frozen oracle of their own epoch while writers commit continuously;
// drain must leave no goroutine behind; the plan cache must show hits
// AND epoch invalidations (DML/ANALYZE both bump the epoch). Run under
// -race in CI.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"nra"
	"nra/internal/obsv"
)

// soakQueries is the readers' statement mix: one query per linking
// operator over the parent/child schema.
var soakQueries = []string{
	"select parent.id, parent.v from parent where exists (select * from child where child.pid = parent.id and child.w > parent.v)",
	"select parent.id, parent.v from parent where not exists (select * from child where child.pid = parent.id and child.w > parent.v)",
	"select parent.id, parent.v from parent where parent.v in (select child.w from child where child.pid = parent.id)",
	"select parent.id, parent.v from parent where parent.v not in (select child.w from child where child.pid = parent.id)",
	"select parent.id, parent.v from parent where parent.v < some (select child.w from child where child.pid = parent.id and child.h = parent.g)",
	"select parent.id, parent.v from parent where parent.v >= all (select child.w from child where child.pid = parent.id and child.h = parent.g)",
}

// soakDB builds the shared database: parent/child with NULLs in every
// linked, linking and correlated attribute.
func soakDB(t testing.TB) *nra.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	null := func(frac float64, v any) any {
		if rng.Float64() < frac {
			return nil
		}
		return v
	}
	db := nra.Open()
	parents := make([][]any, 200)
	for i := range parents {
		parents[i] = []any{i, null(0.12, rng.Intn(50)), null(0.1, rng.Intn(9))}
	}
	children := make([][]any, 800)
	for i := range children {
		children[i] = []any{i, null(0.05, rng.Intn(200)), null(0.15, rng.Intn(50)), null(0.1, rng.Intn(9))}
	}
	db.MustCreateTable("parent", []string{"id", "v", "g"}, "id", parents...)
	db.MustCreateTable("child", []string{"cid", "pid", "w", "h"}, "cid", children...)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestServiceSoak(t *testing.T) {
	readers, writers, preparers, iters := 10, 3, 3, 6
	if testing.Short() {
		readers, writers, preparers, iters = 4, 1, 1, 3
	}

	db := soakDB(t)
	srv := New(Config{
		DB:           db,
		MaxInFlight:  8,
		QueueDepth:   256,
		QueueTimeout: 30 * time.Second,
		MemPoolBytes: 8 << 20,
		Workers:      4,
		Registry:     obsv.NewRegistry(),
	})
	baseline := runtime.NumGoroutine()
	ctx := context.Background()

	var wg sync.WaitGroup
	errc := make(chan error, readers+writers+preparers)

	// Readers: pin a snapshot, freeze an oracle of the same epoch, and
	// demand byte-identical results for every query while writers commit.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess := srv.OpenSession()
			defer srv.CloseSession(sess)
			if r%2 == 1 { // half the readers exercise parallel + 2VL paths
				srv.Do(ctx, sess, Request{Op: OpSet, Key: "parallelism", Value: "2"})
			}
			for i := 0; i < iters; i++ {
				pin := srv.Do(ctx, sess, Request{Op: OpPin})
				if pin.Error != nil {
					errc <- fmt.Errorf("reader %d: pin: %s", r, pin.Error.Message)
					return
				}
				oracle, err := sess.snap().Frozen()
				if err != nil {
					errc <- fmt.Errorf("reader %d: freeze: %w", r, err)
					return
				}
				for qi, q := range soakQueries {
					resp := srv.Do(ctx, sess, Request{Op: OpQuery, SQL: q})
					if resp.Error != nil {
						errc <- fmt.Errorf("reader %d: query %d: %s", r, qi, resp.Error.Message)
						return
					}
					if resp.Epoch != pin.Epoch {
						errc <- fmt.Errorf("reader %d: query %d ran at epoch %d, pinned %d", r, qi, resp.Epoch, pin.Epoch)
						return
					}
					want, err := oracle.Query(q)
					if err != nil {
						errc <- fmt.Errorf("reader %d: oracle %d: %w", r, qi, err)
						return
					}
					want.Sort()
					if !sameRows(resp.Rows, want.Rows()) {
						errc <- fmt.Errorf("reader %d: query %d diverged from frozen oracle at epoch %d", r, qi, pin.Epoch)
						return
					}
				}
				srv.Do(ctx, sess, Request{Op: OpUnpin})
			}
		}(r)
	}

	// Writers: commit DML and ANALYZE continuously, each in a private
	// key range so statements never contend on validation.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := srv.OpenSession()
			defer srv.CloseSession(sess)
			base := 10_000 + w*1_000
			for i := 0; i < iters*4; i++ {
				stmts := []string{
					fmt.Sprintf("insert into child values (%d, %d, %d, %d)", base+i, i%200, i%50, i%9),
					fmt.Sprintf("update child set w = %d where cid = %d", (i+7)%50, base+i),
					fmt.Sprintf("delete from child where cid = %d", base+i),
				}
				for _, s := range stmts {
					if resp := srv.Do(ctx, sess, Request{Op: OpExec, SQL: s}); resp.Error != nil {
						errc <- fmt.Errorf("writer %d: %q: %s", w, s, resp.Error.Message)
						return
					}
				}
				if i%5 == 4 { // periodic ANALYZE invalidates cached plans
					if resp := srv.Do(ctx, sess, Request{Op: OpAnalyze, Table: "child"}); resp.Error != nil {
						errc <- fmt.Errorf("writer %d: analyze: %s", w, resp.Error.Message)
						return
					}
				}
			}
		}(w)
	}

	// Preparers: session-owned prepared statements re-bind across the
	// writers' epoch bumps through the shared plan cache.
	for p := 0; p < preparers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sess := srv.OpenSession()
			defer srv.CloseSession(sess)
			q := soakQueries[p%len(soakQueries)]
			if resp := srv.Do(ctx, sess, Request{Op: OpPrepare, Name: "s", SQL: q}); resp.Error != nil {
				errc <- fmt.Errorf("preparer %d: prepare: %s", p, resp.Error.Message)
				return
			}
			for i := 0; i < iters*3; i++ {
				resp := srv.Do(ctx, sess, Request{Op: OpRun, Name: "s"})
				if resp.Error != nil {
					errc <- fmt.Errorf("preparer %d: run %d: %s", p, i, resp.Error.Message)
					return
				}
			}
		}(p)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	st := srv.Stats()
	if st.PlanCache.Hits == 0 {
		t.Errorf("plan cache saw no hits under soak: %+v", st.PlanCache)
	}
	if st.PlanCache.Invalidations == 0 {
		t.Errorf("plan cache saw no epoch invalidations despite DML/ANALYZE: %+v", st.PlanCache)
	}
	if st.Admitted == 0 || st.Inflight != 0 || st.Queued != 0 {
		t.Errorf("admission gate inconsistent after soak: %+v", st)
	}
	if st.PoolUsed != 0 {
		t.Errorf("memory pool leaked %d bytes after soak", st.PoolUsed)
	}

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if r := srv.Do(ctx, srv.OpenSession(), Request{Op: OpQuery, SQL: soakQueries[0]}); r.OK || r.Error.Kind != KindDraining {
		t.Fatalf("post-drain admission: %+v", r)
	}

	// Zero goroutine leaks after drain: everything the service spawned
	// has unwound.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak after drain: %d > baseline %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}
