package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"nra"
	"nra/internal/bench"
)

// QPSConfig parameterises a throughput sweep (RunQPS).
type QPSConfig struct {
	// Queries is the statement mix; each worker cycles through it.
	Queries []string
	// Concurrency lists the session counts to sweep (default 1, 4, 16).
	Concurrency []int
	// PerWorker is the number of statements each session issues per cell
	// (default 25).
	PerWorker int
	// CacheModes lists the plan-cache settings to sweep (default
	// on and off).
	CacheModes []bool
	// MemPoolBytes configures the cells' shared memory pool
	// (0 = unbounded).
	MemPoolBytes int64
}

// RunQPS sweeps service throughput over db: for every (cache mode,
// concurrency) cell it builds a fresh Server, opens that many sessions,
// and drives the query mix through the full service path — admission,
// session strategy build, plan cache, execution — measuring per-query
// latency in-process (no network, so the numbers isolate service and
// engine cost). Every cell cross-checks that each query's result equals
// the serial baseline, so a throughput win can never hide a wrong
// answer.
func RunQPS(db *nra.DB, cfg QPSConfig) ([]bench.QPSPoint, error) {
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("service: qps sweep needs at least one query")
	}
	if len(cfg.Concurrency) == 0 {
		cfg.Concurrency = []int{1, 4, 16}
	}
	if cfg.PerWorker <= 0 {
		cfg.PerWorker = 25
	}
	if len(cfg.CacheModes) == 0 {
		cfg.CacheModes = []bool{true, false}
	}

	// Each cell's Server re-wires the database's plan cache; leave the
	// database unwired when the sweep is done.
	defer db.SetPlanCache(nil)

	// Serial baselines, one per query, for the correctness cross-check.
	baselines := make([][][]any, len(cfg.Queries))
	for i, q := range cfg.Queries {
		res, err := db.Query(q)
		if err != nil {
			return nil, fmt.Errorf("service: qps baseline %q: %w", q, err)
		}
		res.Sort()
		baselines[i] = res.Rows()
	}

	var points []bench.QPSPoint
	for _, cacheOn := range cfg.CacheModes {
		for _, c := range cfg.Concurrency {
			pt, err := runQPSCell(db, cfg, baselines, cacheOn, c)
			if err != nil {
				return nil, err
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// runQPSCell measures one (cache mode, concurrency) cell.
func runQPSCell(db *nra.DB, cfg QPSConfig, baselines [][][]any, cacheOn bool, concurrency int) (bench.QPSPoint, error) {
	size := 0 // default cache
	if !cacheOn {
		size = -1
	}
	srv := New(Config{
		DB:            db,
		MaxInFlight:   concurrency,
		PlanCacheSize: size,
		MemPoolBytes:  cfg.MemPoolBytes,
	})
	defer srv.Drain(context.Background())

	latencies := make([][]time.Duration, concurrency)
	errs := make([]error, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := srv.OpenSession()
			defer srv.CloseSession(sess)
			for i := 0; i < cfg.PerWorker; i++ {
				qi := (w + i) % len(cfg.Queries)
				t0 := time.Now()
				resp := srv.Do(context.Background(), sess, Request{Op: OpQuery, SQL: cfg.Queries[qi]})
				if resp.Error != nil {
					errs[w] = fmt.Errorf("service: qps worker %d: %s", w, resp.Error.Message)
					return
				}
				latencies[w] = append(latencies[w], time.Since(t0))
				if !sameRows(resp.Rows, baselines[qi]) {
					errs[w] = fmt.Errorf("service: qps worker %d: query %d diverged from serial baseline", w, qi)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return bench.QPSPoint{}, err
		}
	}
	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	return bench.QPSPoint{
		Concurrency: concurrency,
		CacheOn:     cacheOn,
		Queries:     len(all),
		QPS:         float64(len(all)) / wall.Seconds(),
		P50:         bench.Percentile(all, 0.50),
		P99:         bench.Percentile(all, 0.99),
	}, nil
}

// sameRows compares a wire result (canonically sorted) with a baseline
// result's rows. Wire rows have passed through JSON-free in-process
// rendering, so values compare directly.
func sameRows(got [][]any, want [][]any) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return false
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				return false
			}
		}
	}
	return true
}
