package service

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nra"
)

// Session is one client's state on the server: per-session execution
// defaults, named prepared statements, an optional pinned snapshot, and
// the monotonic query counter that tags this session's statements in
// traces and the slow-query log. A Session is safe for concurrent use
// (the line protocol serialises naturally; HTTP clients may share one).
type Session struct {
	srv *Server
	id  string

	qid atomic.Uint64 // per-session statement counter

	mu       sync.Mutex
	opts     sessionOpts
	prepared map[string]*nra.Stmt
	pinned   *nra.Snap
	closed   bool
}

// sessionOpts are the per-session execution defaults, applied to every
// statement the session runs.
type sessionOpts struct {
	strategy    string // name in strategyNames; "" = auto
	timeout     time.Duration
	twoVL       bool
	vectorized  bool
	parallelism int // 0 = strategy default
}

// strategyNames maps wire names onto strategies; it mirrors the nraql
// shell so remote \strategy accepts the same vocabulary.
var strategyNames = map[string]nra.Strategy{
	"auto":             nra.Auto,
	"nested-optimized": nra.NestedOptimized,
	"nested-original":  nra.NestedOriginal,
	"nested-parallel":  nra.NestedParallel,
	"native":           nra.Native,
	"reference":        nra.Reference,
}

// ID returns the session's server-assigned identifier.
func (s *Session) ID() string { return s.id }

// nextQueryID advances the session's statement counter.
func (s *Session) nextQueryID() uint64 { return s.qid.Add(1) }

// set changes one session default. Supported keys: strategy, timeout
// (Go duration, 0 = none), 2vl (on/off), vectorized (on/off),
// parallelism (integer, 0 = default).
func (s *Session) set(key, value string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch strings.ToLower(strings.TrimSpace(key)) {
	case "strategy":
		if _, ok := strategyNames[value]; !ok {
			return sessionErrorf("unknown strategy %q", value)
		}
		s.opts.strategy = value
	case "timeout":
		d, err := time.ParseDuration(value)
		if err != nil || d < 0 {
			return sessionErrorf("invalid timeout %q (want a Go duration, e.g. 30s)", value)
		}
		s.opts.timeout = d
	case "2vl":
		on, err := parseOnOff(value)
		if err != nil {
			return err
		}
		s.opts.twoVL = on
	case "vectorized", "vec":
		on, err := parseOnOff(value)
		if err != nil {
			return err
		}
		s.opts.vectorized = on
	case "parallelism":
		n, err := strconv.Atoi(strings.TrimSpace(value))
		if err != nil || n < 0 {
			return sessionErrorf("invalid parallelism %q (want a non-negative integer)", value)
		}
		s.opts.parallelism = n
	default:
		return sessionErrorf("unknown option %q (try strategy, timeout, 2vl, vectorized, parallelism)", key)
	}
	return nil
}

// parseOnOff parses a boolean session-option value.
func parseOnOff(v string) (bool, error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, sessionErrorf("invalid value %q (want on or off)", v)
}

// strategy builds the statement's strategy from the session defaults
// plus the server-wide wiring: the requested parallelism is clamped to
// the worker slots actually granted, working state is charged to the
// shared memory pool, and the statement is tagged with the session and
// query IDs. The returned release function gives back the granted
// worker slots after execution.
func (s *Session) strategy(qid uint64) (nra.Strategy, func()) {
	s.mu.Lock()
	o := s.opts
	s.mu.Unlock()

	base := nra.Auto
	if o.strategy != "" {
		base = strategyNames[o.strategy]
	}
	release := func() {}
	if o.parallelism > 1 {
		got, rel := s.srv.workers.acquire(o.parallelism)
		release = rel
		base = base.WithParallelism(got)
	} else if o.parallelism == 1 {
		base = base.WithParallelism(1)
	}
	if o.timeout > 0 {
		base = base.WithTimeout(o.timeout)
	}
	if o.twoVL {
		base = base.WithTwoValuedLogic(true)
	}
	if o.vectorized {
		base = base.WithVectorized(true)
	}
	base = base.WithMemoryPool(s.srv.pool)
	base = base.WithQueryTag(s.id, qid)
	return base, release
}

// pin pins the session to the current snapshot and returns its epoch.
func (s *Session) pin() uint64 {
	snap := s.srv.db.Snapshot()
	s.mu.Lock()
	s.pinned = snap
	s.mu.Unlock()
	return snap.Epoch()
}

// unpin releases a pinned snapshot.
func (s *Session) unpin() {
	s.mu.Lock()
	s.pinned = nil
	s.mu.Unlock()
}

// snap returns the session's pinned snapshot, nil when unpinned.
func (s *Session) snap() *nra.Snap {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pinned
}

// prepare analyzes src under the given name, replacing any previous
// statement of that name.
func (s *Session) prepare(name, src string) error {
	if name == "" {
		return sessionErrorf("prepare needs a statement name")
	}
	st, err := s.srv.db.Prepare(src)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.prepared == nil {
		s.prepared = make(map[string]*nra.Stmt)
	}
	s.prepared[name] = st
	s.mu.Unlock()
	return nil
}

// stmt resolves a prepared statement by name.
func (s *Session) stmt(name string) (*nra.Stmt, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.prepared[name]
	if !ok {
		return nil, sessionErrorf("no prepared statement %q", name)
	}
	return st, nil
}

// closeStmt discards a prepared statement.
func (s *Session) closeStmt(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.prepared[name]; !ok {
		return sessionErrorf("no prepared statement %q", name)
	}
	delete(s.prepared, name)
	return nil
}

// describe renders the session defaults for \stats-style introspection.
func (s *Session) describe() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	strat := s.opts.strategy
	if strat == "" {
		strat = "auto"
	}
	pin := "latest"
	if s.pinned != nil {
		pin = fmt.Sprintf("epoch %d", s.pinned.Epoch())
	}
	return fmt.Sprintf(
		"session %s: strategy=%s timeout=%s 2vl=%v vectorized=%v parallelism=%d snapshot=%s prepared=%d",
		s.id, strat, s.opts.timeout, s.opts.twoVL, s.opts.vectorized,
		s.opts.parallelism, pin, len(s.prepared))
}
