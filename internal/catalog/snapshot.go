package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"nra/internal/relation"
	"nra/internal/value"
)

// Catalog is a set of tables behind an atomically published snapshot:
// readers load the current Snapshot wait-free; writers serialise on one
// mutex and publish copy-on-write versions. See the package comment.
type Catalog struct {
	mu   sync.Mutex // serialises writers; readers never take it
	snap atomic.Pointer[Snapshot]
}

// Snapshot is one immutable, epoch-stamped version of the catalog. Every
// query plans and executes against a single snapshot: the tables (rows,
// constraints, indexes and statistics) it resolves can never change
// underneath it, no matter what writers commit concurrently.
type Snapshot struct {
	tables map[string]*Table
	epoch  uint64
}

// Snapshot returns the current published snapshot. It never blocks.
func (c *Catalog) Snapshot() *Snapshot { return c.snap.Load() }

// Epoch returns the current snapshot's epoch — a counter bumped by every
// committed mutation. Cached plans keyed on it re-bind exactly when the
// catalog has changed.
func (c *Catalog) Epoch() uint64 { return c.Snapshot().epoch }

// Epoch returns the snapshot's epoch stamp.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Table looks up a table by name.
func (s *Snapshot) Table(name string) (*Table, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// Names returns the sorted table names.
func (s *Snapshot) Names() []string {
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Materialize deep-copies the snapshot into a fresh, independent Catalog:
// rows are cloned, constraints and indexes recreated, statistics carried
// over. It is the frozen-copy oracle of the concurrency tests — a query
// on the materialized catalog must agree byte-for-byte with the same
// query on the live snapshot — and a general "fork the database" tool.
func (s *Snapshot) Materialize() (*Catalog, error) {
	c := New()
	for _, name := range s.Names() {
		t := s.tables[name]
		nt, err := newTable(name, t.Rel.Clone(), unqualifiedPK(t), false)
		if err != nil {
			return nil, err
		}
		for col, nn := range t.NotNull {
			if nn {
				nt.NotNull[col] = true
			}
		}
		for _, cols := range t.Indexes() {
			if _, err := nt.CreateIndex(cols...); err != nil {
				return nil, err
			}
		}
		nt.stats, nt.statsStale = t.stats, t.statsStale
		tx := c.Begin()
		tx.staged[name] = nt
		tx.Commit()
	}
	return c, nil
}

// unqualifiedPK returns the column name of t's primary key without its
// table qualifier, suitable for re-resolution against a cloned schema.
func unqualifiedPK(t *Table) string {
	pk := t.PK
	for i := len(pk) - 1; i >= 0; i-- {
		if pk[i] == '.' {
			return pk[i+1:]
		}
	}
	return pk
}

// Tx is the single-writer transaction: it holds the catalog's writer
// mutex from Begin until Commit or Rollback, stages copy-on-write table
// versions, and publishes them atomically as one new snapshot. Readers
// are never blocked; they keep resolving the base snapshot until Commit
// publishes. A Tx's reads (Table, Snapshot) see the base snapshot
// overlaid with its own staged writes.
type Tx struct {
	c       *Catalog
	base    *Snapshot
	staged  map[string]*Table
	dropped map[string]bool
	done    bool
}

// Begin acquires the writer lock and opens a transaction over the
// current snapshot. Exactly one Tx exists at a time; Begin blocks other
// writers (only) until Commit or Rollback.
func (c *Catalog) Begin() *Tx {
	c.mu.Lock()
	return &Tx{
		c:       c,
		base:    c.snap.Load(),
		staged:  make(map[string]*Table),
		dropped: make(map[string]bool),
	}
}

// Snapshot returns the transaction's base snapshot — the consistent read
// view its mutations are computed against.
func (tx *Tx) Snapshot() *Snapshot { return tx.base }

// Table resolves a table in the transaction's view: staged version if
// any, else the base snapshot's.
func (tx *Tx) Table(name string) (*Table, error) {
	if tx.dropped[name] {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	if t, ok := tx.staged[name]; ok {
		return t, nil
	}
	return tx.base.Table(name)
}

// Create stages a new table (validated exactly like Catalog.Create).
func (tx *Tx) Create(name string, rel *relation.Relation, pk string) (*Table, error) {
	return tx.create(name, rel, pk, false)
}

// CreateLoaded stages a new table from a loader replaying a checksummed
// committed save: the primary-key uniqueness scan is skipped (the bytes
// provably round-trip a catalog that already enforced it) and the PK
// index is declared lazily, built on first Index lookup. Never use it
// on data that has not passed an integrity check.
func (tx *Tx) CreateLoaded(name string, rel *relation.Relation, pk string) (*Table, error) {
	return tx.create(name, rel, pk, true)
}

func (tx *Tx) create(name string, rel *relation.Relation, pk string, trusted bool) (*Table, error) {
	if _, err := tx.Table(name); err == nil {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t, err := newTable(name, rel, pk, trusted)
	if err != nil {
		return nil, err
	}
	tx.staged[name] = t
	delete(tx.dropped, name)
	return t, nil
}

// Drop stages a table removal; it errors when the table does not exist
// in the transaction's view.
func (tx *Tx) Drop(name string) error {
	if _, err := tx.Table(name); err != nil {
		return err
	}
	delete(tx.staged, name)
	tx.dropped[name] = true
	return nil
}

// Insert stages an append of rows to the named table, returning the
// number staged. Validation failures leave the transaction's view
// unchanged.
func (tx *Tx) Insert(table string, rows [][]value.Value) (int, error) {
	t, err := tx.Table(table)
	if err != nil {
		return 0, err
	}
	nt, n, err := t.insertRows(rows)
	if err != nil {
		return 0, err
	}
	tx.staged[table] = nt
	return n, nil
}

// Delete stages removal of the rows whose primary key is in keys,
// returning the number removed (missing keys are not an error).
func (tx *Tx) Delete(table string, keys []value.Value) (int, error) {
	t, err := tx.Table(table)
	if err != nil {
		return 0, err
	}
	nt, n, err := t.deleteByPK(keys)
	if err != nil {
		return 0, err
	}
	tx.staged[table] = nt
	return n, nil
}

// Update stages a rewrite of the named columns of the rows identified by
// keys (keys[i]'s row gets vals[i], parallel to cols), returning the
// number updated. The full post-state is validated before staging.
func (tx *Tx) Update(table string, keys []value.Value, cols []string, vals [][]value.Value) (int, error) {
	t, err := tx.Table(table)
	if err != nil {
		return 0, err
	}
	nt, n, err := t.applyUpdates(keys, cols, vals)
	if err != nil {
		return 0, err
	}
	tx.staged[table] = nt
	return n, nil
}

// Commit publishes the staged versions as one new snapshot (epoch
// bumped) and releases the writer lock. Committing an empty transaction
// still bumps the epoch. Commit after Commit/Rollback is a no-op.
func (tx *Tx) Commit() {
	if tx.done {
		return
	}
	next := make(map[string]*Table, len(tx.base.tables)+len(tx.staged))
	for n, t := range tx.base.tables {
		if !tx.dropped[n] {
			next[n] = t
		}
	}
	for n, t := range tx.staged {
		next[n] = t
	}
	tx.c.snap.Store(&Snapshot{tables: next, epoch: tx.base.epoch + 1})
	tx.done = true
	tx.c.mu.Unlock()
}

// Rollback discards the staged versions and releases the writer lock;
// it is a no-op after Commit or a prior Rollback, so "defer tx.Rollback()"
// is always safe.
func (tx *Tx) Rollback() {
	if tx.done {
		return
	}
	tx.done = true
	tx.c.mu.Unlock()
}
