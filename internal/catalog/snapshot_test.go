package catalog

import (
	"fmt"
	"sync"
	"testing"

	"nra/internal/value"
)

// TestSnapshotIsolation pins the core guarantee: a snapshot taken before
// a mutation keeps resolving the pre-mutation version — rows, indexes
// and statistics — while the catalog's current snapshot moves on.
func TestSnapshotIsolation(t *testing.T) {
	c := New()
	if _, err := c.Create("emp", sample(), "id"); err != nil {
		t.Fatal(err)
	}
	c.AnalyzeAll()
	before := c.Snapshot()
	tBefore, err := before.Table("emp")
	if err != nil {
		t.Fatal(err)
	}
	if tBefore.Stats() == nil {
		t.Fatal("pre-mutation snapshot should carry fresh statistics")
	}

	if _, err := c.Insert("emp", [][]value.Value{{value.Int(9), value.Int(30), value.Int(55)}}); err != nil {
		t.Fatal(err)
	}

	// The old snapshot is frozen.
	if got, _ := before.Table("emp"); got != tBefore {
		t.Fatal("snapshot re-resolved a different table version")
	}
	if tBefore.Rel.Len() != 3 {
		t.Fatalf("snapshot version mutated: %d rows", tBefore.Rel.Len())
	}
	if tBefore.Stats() == nil {
		t.Fatal("snapshot's statistics went stale — cost decisions must be per-snapshot")
	}
	if rows := tBefore.Index("id").Lookup(value.Int(9)); rows != nil {
		t.Fatal("snapshot's index sees a later insert")
	}

	// The current snapshot sees the commit, with stale stats.
	after := c.Snapshot()
	tAfter, err := after.Table("emp")
	if err != nil {
		t.Fatal(err)
	}
	if tAfter.Rel.Len() != 4 {
		t.Fatalf("current version has %d rows, want 4", tAfter.Rel.Len())
	}
	if tAfter.Stats() != nil {
		t.Fatal("current version's statistics should be stale after DML")
	}
	if after.Epoch() <= before.Epoch() {
		t.Fatalf("epoch did not advance: %d -> %d", before.Epoch(), after.Epoch())
	}
}

// TestTxAtomicCommit pins that a transaction's staged changes are
// invisible until Commit and all-or-nothing afterwards, and that
// Rollback discards them.
func TestTxAtomicCommit(t *testing.T) {
	c := New()
	if _, err := c.Create("emp", sample(), "id"); err != nil {
		t.Fatal(err)
	}
	pre := c.Snapshot()

	tx := c.Begin()
	if _, err := tx.Insert("emp", [][]value.Value{{value.Int(7), value.Int(10), value.Int(1)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Delete("emp", []value.Value{value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	// Tx reads see both staged writes.
	tv, err := tx.Table("emp")
	if err != nil {
		t.Fatal(err)
	}
	if tv.Rel.Len() != 3 {
		t.Fatalf("tx view has %d rows, want 3", tv.Rel.Len())
	}
	// Readers don't (single-writer lock doesn't block snapshots).
	if cs := c.Snapshot(); cs != pre {
		t.Fatal("uncommitted transaction published a snapshot")
	}
	tx.Commit()

	got, _ := c.Table("emp")
	if got.Rel.Len() != 3 {
		t.Fatalf("committed view has %d rows, want 3", got.Rel.Len())
	}

	tx2 := c.Begin()
	if err := tx2.Drop("emp"); err != nil {
		t.Fatal(err)
	}
	tx2.Rollback()
	if _, err := c.Table("emp"); err != nil {
		t.Fatal("rolled-back drop took effect")
	}
}

// TestMaterializeAgrees pins the frozen-copy oracle: a materialized
// snapshot holds an equal, fully independent copy of every table.
func TestMaterializeAgrees(t *testing.T) {
	c := New()
	tbl, err := c.Create("emp", sample(), "id")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetNotNull("dept"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("dept"); err != nil {
		t.Fatal(err)
	}
	c.AnalyzeAll()

	snap := c.Snapshot()
	frozen, err := snap.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the live catalog; the frozen copy must not move.
	if _, err := c.Delete("emp", []value.Value{value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	ft, err := frozen.Table("emp")
	if err != nil {
		t.Fatal(err)
	}
	st, _ := snap.Table("emp")
	if !ft.Rel.EqualSet(st.Rel) {
		t.Fatal("materialized rows differ from the snapshot's")
	}
	if !ft.IsNotNull("dept") {
		t.Fatal("materialized copy lost a NOT NULL constraint")
	}
	if ft.Index("dept") == nil {
		t.Fatal("materialized copy lost an index")
	}
	if ft.Stats() == nil {
		t.Fatal("materialized copy lost statistics")
	}
}

// TestConcurrentReadersWriters is the package-level race smoke: readers
// resolve snapshots and scan them while writers commit; under -race this
// pins that readers never observe a torn version.
func TestConcurrentReadersWriters(t *testing.T) {
	c := New()
	if _, err := c.Create("emp", sample(), "id"); err != nil {
		t.Fatal(err)
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pk := value.Int(int64(100 + w*10000 + i))
				if _, err := c.Insert("emp", [][]value.Value{{pk, value.Int(int64(i % 5)), value.Int(1)}}); err != nil {
					panic(fmt.Sprintf("writer %d: %v", w, err))
				}
				if _, err := c.Delete("emp", []value.Value{pk}); err != nil {
					panic(fmt.Sprintf("writer %d: %v", w, err))
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 500; i++ {
				snap := c.Snapshot()
				tb, err := snap.Table("emp")
				if err != nil {
					panic(err)
				}
				n := tb.Rel.Len()
				// Scan the version twice; an immutable version counts the
				// same both times.
				sum1, sum2 := 0, 0
				for _, tup := range tb.Rel.Tuples {
					sum1 += int(tup.Atoms[0].Int64())
				}
				for _, tup := range tb.Rel.Tuples {
					sum2 += int(tup.Atoms[0].Int64())
				}
				if sum1 != sum2 || tb.Rel.Len() != n {
					panic("torn read of a snapshot version")
				}
			}
		}()
	}
	// Writers churn until every reader finishes its bounded loop.
	readers.Wait()
	close(stop)
	writers.Wait()
}
