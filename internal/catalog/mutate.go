package catalog

import (
	"fmt"

	"nra/internal/index"
	"nra/internal/relation"
	"nra/internal/value"
)

// Mutations are copy-on-write: each produces a NEW *Table version over a
// fresh tuple slice, validates the post-state (types, NOT NULL,
// primary-key uniqueness) and rebuilds the indexes for the new version,
// leaving the input version — and therefore every published snapshot
// that references it — untouched. Readers keep scanning their snapshot's
// version; the new version becomes visible only when a Tx commits it.
// Index rebuilds keep reads index-consistent at O(n) write cost — the
// right trade-off for an analytical engine.

// clone returns a shallow version copy of t: shared rows and index
// structures, private metadata maps. Metadata mutations (constraints,
// indexes, statistics) on the clone never alter the original.
func (t *Table) clone() *Table {
	nn := make(map[string]bool, len(t.NotNull))
	for k, v := range t.NotNull {
		nn[k] = v
	}
	// Lazy index promotion mutates published versions under idxMu, so
	// the copy must hold it too.
	t.idxMu.Lock()
	idx := make(map[string]*index.Index, len(t.indexes))
	for k, v := range t.indexes {
		idx[k] = v
	}
	var lazy map[string][]string
	if len(t.lazyIdx) > 0 {
		lazy = make(map[string][]string, len(t.lazyIdx))
		for k, v := range t.lazyIdx {
			lazy[k] = v
		}
	}
	t.idxMu.Unlock()
	return &Table{
		Name:       t.Name,
		Rel:        t.Rel,
		PK:         t.PK,
		NotNull:    nn,
		indexes:    idx,
		lazyIdx:    lazy,
		stats:      t.stats,
		statsStale: t.statsStale,
		segs:       t.segs, // same rows, still segment-backed
	}
}

// withTuples builds the successor version of t over a new tuple slice:
// fresh relation, rebuilt indexes, statistics marked stale, and the
// backing columnar segment detached — its bytes describe the old rows.
func (t *Table) withTuples(tuples []relation.Tuple) (*Table, error) {
	nt := t.clone()
	nt.segs = nil
	nt.Rel = &relation.Relation{Schema: t.Rel.Schema, Tuples: tuples}
	for key, idx := range nt.indexes {
		fresh, err := index.Build(nt.Rel, idx.Columns())
		if err != nil {
			return nil, err
		}
		nt.indexes[key] = fresh
	}
	nt.statsStale = true
	return nt, nil
}

// insertRows returns a new version with rows (full table width, schema
// order) appended, and the number inserted. On any validation error no
// version is produced.
func (t *Table) insertRows(rows [][]value.Value) (*Table, int, error) {
	schema := t.Rel.Schema
	pkIdx := schema.MustColIndex(t.PK)
	seen := make(map[string]bool, t.Rel.Len()+len(rows))
	for _, tup := range t.Rel.Tuples {
		seen[string(tup.Atoms[pkIdx].AppendKey(nil))] = true
	}
	staged := make([]relation.Tuple, 0, len(rows))
	for ri, row := range rows {
		if len(row) != len(schema.Cols) {
			return nil, 0, fmt.Errorf("catalog: insert into %s: row %d has %d values, want %d",
				t.Name, ri, len(row), len(schema.Cols))
		}
		for ci, v := range row {
			if err := t.checkCell(schema.Cols[ci], v); err != nil {
				return nil, 0, fmt.Errorf("catalog: insert into %s row %d: %w", t.Name, ri, err)
			}
		}
		pk := row[pkIdx]
		if pk.IsNull() {
			return nil, 0, fmt.Errorf("catalog: insert into %s row %d: NULL primary key", t.Name, ri)
		}
		key := string(pk.AppendKey(nil))
		if seen[key] {
			return nil, 0, fmt.Errorf("catalog: insert into %s row %d: duplicate primary key %s", t.Name, ri, pk)
		}
		seen[key] = true
		staged = append(staged, relation.Tuple{Atoms: append([]value.Value(nil), row...)})
	}
	next := make([]relation.Tuple, 0, t.Rel.Len()+len(staged))
	next = append(next, t.Rel.Tuples...)
	next = append(next, staged...)
	nt, err := t.withTuples(next)
	if err != nil {
		return nil, 0, err
	}
	return nt, len(staged), nil
}

// deleteByPK returns a new version without the rows whose primary key is
// in keys, and the number removed (missing keys are not an error).
func (t *Table) deleteByPK(keys []value.Value) (*Table, int, error) {
	pkIdx := t.Rel.Schema.MustColIndex(t.PK)
	doomed := make(map[string]bool, len(keys))
	for _, k := range keys {
		if k.IsNull() {
			continue
		}
		doomed[string(k.AppendKey(nil))] = true
	}
	kept := make([]relation.Tuple, 0, t.Rel.Len())
	removed := 0
	for _, tup := range t.Rel.Tuples {
		if doomed[string(tup.Atoms[pkIdx].AppendKey(nil))] {
			removed++
			continue
		}
		kept = append(kept, tup)
	}
	if removed == 0 {
		return t, 0, nil
	}
	nt, err := t.withTuples(kept)
	if err != nil {
		return nil, 0, err
	}
	return nt, removed, nil
}

// applyUpdates returns a new version with the named columns of the rows
// identified by keys rewritten: keys[i]'s row gets vals[i] (parallel to
// cols). The full post-state is validated before the version is
// produced; on error no version exists.
func (t *Table) applyUpdates(keys []value.Value, cols []string, vals [][]value.Value) (*Table, int, error) {
	schema := t.Rel.Schema
	pkIdx := schema.MustColIndex(t.PK)
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		j := schema.ColIndex(c)
		if j < 0 {
			return nil, 0, fmt.Errorf("catalog: update %s: no column %q", t.Name, c)
		}
		colIdx[i] = j
	}
	byKey := make(map[string][]value.Value, len(keys))
	for i, k := range keys {
		if len(vals[i]) != len(cols) {
			return nil, 0, fmt.Errorf("catalog: update %s: row %d has %d values, want %d",
				t.Name, i, len(vals[i]), len(cols))
		}
		byKey[string(k.AppendKey(nil))] = vals[i]
	}

	next := make([]relation.Tuple, len(t.Rel.Tuples))
	updated := 0
	seen := make(map[string]bool, len(t.Rel.Tuples))
	for i, tup := range t.Rel.Tuples {
		atoms := tup.Atoms
		if newVals, hit := byKey[string(tup.Atoms[pkIdx].AppendKey(nil))]; hit {
			updated++
			atoms = append([]value.Value(nil), tup.Atoms...)
			for vi, j := range colIdx {
				if err := t.checkCell(schema.Cols[j], newVals[vi]); err != nil {
					return nil, 0, fmt.Errorf("catalog: update %s: %w", t.Name, err)
				}
				atoms[j] = newVals[vi]
			}
		}
		pk := atoms[pkIdx]
		if pk.IsNull() {
			return nil, 0, fmt.Errorf("catalog: update %s: NULL primary key", t.Name)
		}
		key := string(pk.AppendKey(nil))
		if seen[key] {
			return nil, 0, fmt.Errorf("catalog: update %s: duplicate primary key %s", t.Name, pk)
		}
		seen[key] = true
		next[i] = relation.Tuple{Atoms: atoms}
	}
	if updated == 0 {
		return t, 0, nil
	}
	nt, err := t.withTuples(next)
	if err != nil {
		return nil, 0, err
	}
	return nt, updated, nil
}

// checkCell validates one value against a column's declared type and the
// table's NOT NULL constraints.
func (t *Table) checkCell(col relation.Column, v value.Value) error {
	if v.IsNull() {
		if t.NotNull[col.Name] {
			return fmt.Errorf("NULL violates NOT NULL(%s)", col.Name)
		}
		return nil
	}
	ok := true
	switch col.Type {
	case relation.TInt:
		ok = v.Kind() == value.KindInt
	case relation.TFloat:
		ok = v.Kind() == value.KindFloat || v.Kind() == value.KindInt
	case relation.TString:
		ok = v.Kind() == value.KindString
	case relation.TBool:
		ok = v.Kind() == value.KindBool
	}
	if !ok {
		return fmt.Errorf("value %s (%s) does not fit column %s (%s)", v, v.Kind(), col.Name, col.Type)
	}
	return nil
}
