package catalog

import (
	"fmt"

	"nra/internal/index"
	"nra/internal/relation"
	"nra/internal/value"
)

// Mutations. The engine is reader-optimised: every mutation validates the
// post-state (types, NOT NULL, primary-key uniqueness) and then rebuilds
// the table's indexes, which keeps reads index-consistent at O(n) write
// cost — the right trade-off for an analytical engine. Mutations are NOT
// safe to run concurrently with queries on the same DB.

// InsertRows appends rows (full table width, schema order) and returns
// the number inserted. On any validation error nothing is inserted.
func (t *Table) InsertRows(rows [][]value.Value) (int, error) {
	schema := t.Rel.Schema
	pkIdx := schema.MustColIndex(t.PK)
	seen := make(map[string]bool, t.Rel.Len()+len(rows))
	for _, tup := range t.Rel.Tuples {
		seen[string(tup.Atoms[pkIdx].AppendKey(nil))] = true
	}
	staged := make([]relation.Tuple, 0, len(rows))
	for ri, row := range rows {
		if len(row) != len(schema.Cols) {
			return 0, fmt.Errorf("catalog: insert into %s: row %d has %d values, want %d",
				t.Name, ri, len(row), len(schema.Cols))
		}
		for ci, v := range row {
			if err := t.checkCell(schema.Cols[ci], v); err != nil {
				return 0, fmt.Errorf("catalog: insert into %s row %d: %w", t.Name, ri, err)
			}
		}
		pk := row[pkIdx]
		if pk.IsNull() {
			return 0, fmt.Errorf("catalog: insert into %s row %d: NULL primary key", t.Name, ri)
		}
		key := string(pk.AppendKey(nil))
		if seen[key] {
			return 0, fmt.Errorf("catalog: insert into %s row %d: duplicate primary key %s", t.Name, ri, pk)
		}
		seen[key] = true
		staged = append(staged, relation.Tuple{Atoms: append([]value.Value(nil), row...)})
	}
	t.Rel.Append(staged...)
	if err := t.rebuildIndexes(); err != nil {
		return 0, err
	}
	if len(staged) > 0 {
		t.invalidateStats()
	}
	return len(staged), nil
}

// DeleteByPK removes the rows whose primary key is in keys; it returns
// the number removed (missing keys are not an error).
func (t *Table) DeleteByPK(keys []value.Value) (int, error) {
	pkIdx := t.Rel.Schema.MustColIndex(t.PK)
	doomed := make(map[string]bool, len(keys))
	for _, k := range keys {
		if k.IsNull() {
			continue
		}
		doomed[string(k.AppendKey(nil))] = true
	}
	kept := t.Rel.Tuples[:0]
	removed := 0
	for _, tup := range t.Rel.Tuples {
		if doomed[string(tup.Atoms[pkIdx].AppendKey(nil))] {
			removed++
			continue
		}
		kept = append(kept, tup)
	}
	t.Rel.Tuples = kept
	if removed > 0 {
		if err := t.rebuildIndexes(); err != nil {
			return 0, err
		}
		t.invalidateStats()
	}
	return removed, nil
}

// ApplyUpdates rewrites the named columns of the rows identified by keys:
// keys[i]'s row gets vals[i] (parallel to cols). It validates the full
// post-state before committing; on error the table is unchanged.
func (t *Table) ApplyUpdates(keys []value.Value, cols []string, vals [][]value.Value) (int, error) {
	schema := t.Rel.Schema
	pkIdx := schema.MustColIndex(t.PK)
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		j := schema.ColIndex(c)
		if j < 0 {
			return 0, fmt.Errorf("catalog: update %s: no column %q", t.Name, c)
		}
		colIdx[i] = j
	}
	byKey := make(map[string][]value.Value, len(keys))
	for i, k := range keys {
		if len(vals[i]) != len(cols) {
			return 0, fmt.Errorf("catalog: update %s: row %d has %d values, want %d",
				t.Name, i, len(vals[i]), len(cols))
		}
		byKey[string(k.AppendKey(nil))] = vals[i]
	}

	next := make([]relation.Tuple, len(t.Rel.Tuples))
	updated := 0
	seen := make(map[string]bool, len(t.Rel.Tuples))
	for i, tup := range t.Rel.Tuples {
		atoms := tup.Atoms
		if newVals, hit := byKey[string(tup.Atoms[pkIdx].AppendKey(nil))]; hit {
			updated++
			atoms = append([]value.Value(nil), tup.Atoms...)
			for vi, j := range colIdx {
				if err := t.checkCell(schema.Cols[j], newVals[vi]); err != nil {
					return 0, fmt.Errorf("catalog: update %s: %w", t.Name, err)
				}
				atoms[j] = newVals[vi]
			}
		}
		pk := atoms[pkIdx]
		if pk.IsNull() {
			return 0, fmt.Errorf("catalog: update %s: NULL primary key", t.Name)
		}
		key := string(pk.AppendKey(nil))
		if seen[key] {
			return 0, fmt.Errorf("catalog: update %s: duplicate primary key %s", t.Name, pk)
		}
		seen[key] = true
		next[i] = relation.Tuple{Atoms: atoms}
	}
	if updated == 0 {
		return 0, nil
	}
	t.Rel.Tuples = next
	if err := t.rebuildIndexes(); err != nil {
		return 0, err
	}
	t.invalidateStats()
	return updated, nil
}

// checkCell validates one value against a column's declared type and the
// table's NOT NULL constraints.
func (t *Table) checkCell(col relation.Column, v value.Value) error {
	if v.IsNull() {
		if t.NotNull[col.Name] {
			return fmt.Errorf("NULL violates NOT NULL(%s)", col.Name)
		}
		return nil
	}
	ok := true
	switch col.Type {
	case relation.TInt:
		ok = v.Kind() == value.KindInt
	case relation.TFloat:
		ok = v.Kind() == value.KindFloat || v.Kind() == value.KindInt
	case relation.TString:
		ok = v.Kind() == value.KindString
	case relation.TBool:
		ok = v.Kind() == value.KindBool
	}
	if !ok {
		return fmt.Errorf("value %s (%s) does not fit column %s (%s)", v, v.Kind(), col.Name, col.Type)
	}
	return nil
}

// rebuildIndexes recreates every index over the current rows.
func (t *Table) rebuildIndexes() error {
	for key, idx := range t.indexes {
		fresh, err := index.Build(t.Rel, idx.Columns())
		if err != nil {
			return err
		}
		t.indexes[key] = fresh
	}
	return nil
}
