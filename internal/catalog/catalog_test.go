package catalog

import (
	"testing"

	"nra/internal/relation"
	"nra/internal/value"
)

func sample() *relation.Relation {
	return relation.MustFromRows("emp", []string{"id", "dept", "salary"},
		[]any{1, 10, 100},
		[]any{2, 10, nil},
		[]any{3, 20, 80},
	)
}

func TestCreateAndLookup(t *testing.T) {
	c := New()
	tbl, err := c.Create("emp", sample(), "id")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.PK != "id" {
		t.Fatalf("pk = %q", tbl.PK)
	}
	got, err := c.Table("emp")
	if err != nil || got != tbl {
		t.Fatal("lookup failed")
	}
	if _, err := c.Table("nope"); err == nil {
		t.Fatal("missing table must error")
	}
	if names := c.Names(); len(names) != 1 || names[0] != "emp" {
		t.Fatalf("names = %v", names)
	}
}

func TestCreateValidation(t *testing.T) {
	c := New()
	if _, err := c.Create("t", sample(), "nope"); err == nil {
		t.Fatal("unknown PK column must error")
	}
	dupPK := relation.MustFromRows("t", []string{"id"}, []any{1}, []any{1})
	if _, err := c.Create("t", dupPK, "id"); err == nil {
		t.Fatal("duplicate PK must error")
	}
	nullPK := relation.MustFromRows("t", []string{"id"}, []any{nil})
	if _, err := c.Create("t", nullPK, "id"); err == nil {
		t.Fatal("NULL PK must error")
	}
	if _, err := c.Create("emp", sample(), "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("emp", sample(), "id"); err == nil {
		t.Fatal("duplicate table must error")
	}
	nested := &relation.Schema{Name: "n",
		Cols: []relation.Column{{Name: "k", Type: relation.TInt}},
		Subs: []relation.Sub{{Name: "g", Schema: relation.NewSchema("g")}}}
	if _, err := c.Create("n", relation.New(nested), "k"); err == nil {
		t.Fatal("nested base table must error")
	}
}

func TestPKIndexAutomatic(t *testing.T) {
	c := New()
	tbl, err := c.Create("emp", sample(), "id")
	if err != nil {
		t.Fatal(err)
	}
	idx := tbl.Index("id")
	if idx == nil {
		t.Fatal("PK index should be created automatically (§5.1)")
	}
	rows := idx.Lookup(value.Int(2))
	if len(rows) != 1 || rows[0] != 1 {
		t.Fatalf("lookup = %v", rows)
	}
}

func TestNotNullConstraint(t *testing.T) {
	c := New()
	tbl, _ := c.Create("emp", sample(), "id")
	if err := tbl.SetNotNull("salary"); err == nil {
		t.Fatal("NULL data must reject NOT NULL")
	}
	if err := tbl.SetNotNull("dept"); err != nil {
		t.Fatal(err)
	}
	if !tbl.IsNotNull("dept") || tbl.IsNotNull("salary") {
		t.Fatal("constraint bookkeeping wrong")
	}
	if !tbl.IsNotNull("id") {
		t.Fatal("PK is implicitly NOT NULL")
	}
	if err := tbl.SetNotNull("nope"); err == nil {
		t.Fatal("unknown column must error")
	}
	if tbl.IsNotNull("nope") {
		t.Fatal("unknown column is not NOT NULL")
	}
}

func TestIndexLifecycle(t *testing.T) {
	c := New()
	tbl, _ := c.Create("emp", sample(), "id")
	idx, err := tbl.CreateIndex("dept")
	if err != nil {
		t.Fatal(err)
	}
	again, err := tbl.CreateIndex("dept")
	if err != nil || again != idx {
		t.Fatal("CreateIndex should be idempotent")
	}
	if _, err := tbl.CreateIndex("dept", "salary"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("nope"); err == nil {
		t.Fatal("unknown column must error")
	}
	lists := tbl.Indexes()
	if len(lists) != 3 { // id (auto), dept, dept+salary
		t.Fatalf("indexes = %v", lists)
	}
	tbl.DropIndex("dept")
	if tbl.Index("dept") != nil {
		t.Fatal("drop failed")
	}
	tbl.DropIndex("nope") // no-op, no panic
	if len(tbl.Indexes()) != 2 {
		t.Fatalf("indexes after drop = %v", tbl.Indexes())
	}
}

func TestIndexSharedWithBaseRows(t *testing.T) {
	c := New()
	tbl, _ := c.Create("emp", sample(), "id")
	idx, _ := tbl.CreateIndex("dept")
	rows := idx.Lookup(value.Int(10))
	if len(rows) != 2 {
		t.Fatalf("dept=10 rows = %v", rows)
	}
	for _, r := range rows {
		if tbl.Rel.Tuples[r].Atoms[1].Int64() != 10 {
			t.Fatal("row ids must address the base relation")
		}
	}
}

func TestMutations(t *testing.T) {
	c := New()
	tbl, err := c.Create("emp", sample(), "id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CreateIndex("dept"); err != nil {
		t.Fatal(err)
	}
	cur := func() *Table {
		t.Helper()
		tb, err := c.Table("emp")
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}

	// Insert commits a new version with maintained indexes.
	n, err := c.Insert("emp", [][]value.Value{
		{value.Int(4), value.Int(10), value.Int(70)},
	})
	if err != nil || n != 1 {
		t.Fatalf("insert: %d %v", n, err)
	}
	if rows := cur().Index("dept").Lookup(value.Int(10)); len(rows) != 3 {
		t.Fatalf("index after insert: %v", rows)
	}
	if tbl.Rel.Len() != 3 {
		t.Fatalf("insert mutated the pre-insert version: %d rows", tbl.Rel.Len())
	}

	// Duplicate PK rejected atomically.
	if _, err := c.Insert("emp", [][]value.Value{
		{value.Int(5), value.Int(30), value.Int(1)},
		{value.Int(4), value.Int(30), value.Int(1)},
	}); err == nil {
		t.Fatal("duplicate PK in batch must fail")
	}
	if cur().Rel.Len() != 4 {
		t.Fatalf("failed batch partially applied: %d rows", cur().Rel.Len())
	}

	// Delete by PK.
	removed, err := c.Delete("emp", []value.Value{value.Int(2), value.Int(99), value.Null})
	if err != nil || removed != 1 {
		t.Fatalf("delete: %d %v", removed, err)
	}
	if rows := cur().Index("id").Lookup(value.Int(2)); rows != nil {
		t.Fatal("index stale after delete")
	}

	// Update, including a PK change.
	updated, err := c.Update("emp",
		[]value.Value{value.Int(3)}, []string{"id", "salary"},
		[][]value.Value{{value.Int(30), value.Int(85)}})
	if err != nil || updated != 1 {
		t.Fatalf("update: %d %v", updated, err)
	}
	if rows := cur().Index("id").Lookup(value.Int(30)); len(rows) != 1 {
		t.Fatal("index stale after PK update")
	}

	// PK collision on update rejected.
	if _, err := c.Update("emp",
		[]value.Value{value.Int(30)}, []string{"id"},
		[][]value.Value{{value.Int(1)}}); err == nil {
		t.Fatal("PK collision must fail")
	}

	// Type violation.
	if _, err := c.Update("emp",
		[]value.Value{value.Int(1)}, []string{"salary"},
		[][]value.Value{{value.Str("lots")}}); err == nil {
		t.Fatal("type violation must fail")
	}
}

func TestStatsLifecycle(t *testing.T) {
	c := New()
	tbl, err := c.Create("emp", sample(), "id")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Stats() != nil {
		t.Fatal("fresh table must have no statistics before ANALYZE")
	}
	ts := tbl.Analyze()
	if ts == nil || tbl.Stats() != ts {
		t.Fatal("Analyze must install statistics")
	}
	if ts.Rows != 3 {
		t.Fatalf("rows = %d, want 3", ts.Rows)
	}
	if sal := ts.Col("salary"); sal == nil || sal.Nulls != 1 {
		t.Fatalf("salary stats = %+v, want 1 NULL", sal)
	}

	// Every DML mutation commits a version with stale stats, and stale
	// stats read as absent.
	cur := func() *Table {
		t.Helper()
		tb, err := c.Table("emp")
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	if _, err := c.Insert("emp", [][]value.Value{{value.Int(4), value.Int(30), value.Int(90)}}); err != nil {
		t.Fatal(err)
	}
	if cur().Stats() != nil || !cur().StatsStale() {
		t.Fatal("insert must invalidate statistics")
	}
	if err := c.AnalyzeTable("emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update("emp", []value.Value{value.Int(4)}, []string{"salary"}, [][]value.Value{{value.Int(95)}}); err != nil {
		t.Fatal(err)
	}
	if cur().Stats() != nil {
		t.Fatal("update must invalidate statistics")
	}
	if err := c.AnalyzeTable("emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("emp", []value.Value{value.Int(4)}); err != nil {
		t.Fatal(err)
	}
	if cur().Stats() != nil {
		t.Fatal("delete must invalidate statistics")
	}
	// A no-op delete leaves them fresh.
	if err := c.AnalyzeTable("emp"); err != nil {
		t.Fatal(err)
	}
	ts = cur().Stats()
	if _, err := c.Delete("emp", []value.Value{value.Int(99)}); err != nil {
		t.Fatal(err)
	}
	if cur().Stats() != ts {
		t.Fatal("no-op delete must not invalidate statistics")
	}

	// SetStats installs persisted statistics as fresh.
	tbl2, err := c.Create("emp2", sample(), "id")
	if err != nil {
		t.Fatal(err)
	}
	tbl2.SetStats(ts)
	if tbl2.Stats() != ts {
		t.Fatal("SetStats must install fresh statistics")
	}
}
