// Package catalog manages named base tables, their constraints and their
// indexes. The paper's engine model assumes every relation has a unique
// non-NULL primary key (used by the nested approach to recognise padding
// tuples), and the native baseline's plan choices depend on NOT NULL
// constraints and index availability — all of which live here.
package catalog

import (
	"fmt"
	"sort"

	"nra/internal/index"
	"nra/internal/relation"
	"nra/internal/stats"
)

// Table is a base relation plus metadata.
type Table struct {
	Name    string
	Rel     *relation.Relation
	PK      string          // primary key column (qualified name)
	NotNull map[string]bool // columns with a NOT NULL constraint (PK implied)

	indexes    map[string]*index.Index // by canonical column-list key
	stats      *stats.Table            // last ANALYZE result; nil = never analyzed
	statsStale bool                    // set by DML; stale stats are treated as absent
}

// Catalog is a set of tables.
type Catalog struct {
	tables map[string]*Table
}

// New returns an empty catalog.
func New() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Create registers a table. The primary key column must exist, be unique
// and contain no NULLs; this is validated eagerly because both query
// processing approaches rely on it.
func (c *Catalog) Create(name string, rel *relation.Relation, pk string) (*Table, error) {
	if _, dup := c.tables[name]; dup {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if rel.Schema.Depth() != 0 {
		return nil, fmt.Errorf("catalog: base table %q must be flat", name)
	}
	pkIdx := rel.Schema.ColIndex(pk)
	if pkIdx < 0 {
		return nil, fmt.Errorf("catalog: table %q has no column %q for primary key", name, pk)
	}
	pkName := rel.Schema.Cols[pkIdx].Name
	seen := make(map[string]struct{}, rel.Len())
	for i, t := range rel.Tuples {
		v := t.Atoms[pkIdx]
		if v.IsNull() {
			return nil, fmt.Errorf("catalog: table %q row %d: NULL primary key", name, i)
		}
		k := string(v.AppendKey(nil))
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("catalog: table %q row %d: duplicate primary key %s", name, i, v)
		}
		seen[k] = struct{}{}
	}
	t := &Table{
		Name:    name,
		Rel:     rel,
		PK:      pkName,
		NotNull: map[string]bool{pkName: true},
		indexes: make(map[string]*index.Index),
	}
	// B+-tree indexes on primary keys are "automatically built by System A"
	// (§5.1); mirror that. Register the table only once the index exists,
	// so a failed Create leaves no half-built table behind.
	if _, err := t.CreateIndex(pkName); err != nil {
		return nil, err
	}
	c.tables[name] = t
	return t, nil
}

// Drop removes a table; it errors when the table does not exist.
func (c *Catalog) Drop(name string) error {
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, name)
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return t, nil
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetNotNull declares a NOT NULL constraint on a column; the native
// baseline's planner uses it to decide whether an antijoin is legal for
// ALL / NOT IN (§5.2). It verifies the data actually satisfies it.
func (t *Table) SetNotNull(col string) error {
	i := t.Rel.Schema.ColIndex(col)
	if i < 0 {
		return fmt.Errorf("catalog: table %q has no column %q", t.Name, col)
	}
	for row, tp := range t.Rel.Tuples {
		if tp.Atoms[i].IsNull() {
			return fmt.Errorf("catalog: table %q row %d violates NOT NULL(%s)", t.Name, row, col)
		}
	}
	t.NotNull[t.Rel.Schema.Cols[i].Name] = true
	return nil
}

// IsNotNull reports whether col carries a NOT NULL constraint.
func (t *Table) IsNotNull(col string) bool {
	i := t.Rel.Schema.ColIndex(col)
	if i < 0 {
		return false
	}
	return t.NotNull[t.Rel.Schema.Cols[i].Name]
}

// Analyze collects fresh statistics over the table's current rows (the
// ANALYZE pass) and clears any staleness mark.
func (t *Table) Analyze() *stats.Table {
	t.stats = stats.Collect(t.Rel)
	t.statsStale = false
	return t.stats
}

// Stats returns the table's statistics, or nil when none were collected
// or a DML mutation made them stale — the planner must treat stale
// statistics as absent rather than silently plan with wrong row counts.
func (t *Table) Stats() *stats.Table {
	if t.statsStale {
		return nil
	}
	return t.stats
}

// StatsStale reports whether statistics exist but were invalidated by a
// mutation since the last ANALYZE.
func (t *Table) StatsStale() bool { return t.stats != nil && t.statsStale }

// SetStats installs previously collected statistics (a persisted ANALYZE
// result reloaded by csvio) as fresh.
func (t *Table) SetStats(s *stats.Table) {
	t.stats = s
	t.statsStale = false
}

// invalidateStats marks the statistics stale; every successful DML
// mutation calls it.
func (t *Table) invalidateStats() { t.statsStale = true }

// AnalyzeAll collects statistics for every table in the catalog.
func (c *Catalog) AnalyzeAll() {
	for _, t := range c.tables {
		t.Analyze()
	}
}

// CreateIndex builds (or returns an existing) index on the given columns,
// in order. Single- and multi-column indexes are supported, mirroring the
// paper's combined index on (l_partkey, l_suppkey) versus the single
// indexes it compares against.
func (t *Table) CreateIndex(cols ...string) (*index.Index, error) {
	canonical := make([]string, len(cols))
	for i, c := range cols {
		j := t.Rel.Schema.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("catalog: table %q has no column %q", t.Name, c)
		}
		canonical[i] = t.Rel.Schema.Cols[j].Name
	}
	key := indexKey(canonical)
	if idx, ok := t.indexes[key]; ok {
		return idx, nil
	}
	idx, err := index.Build(t.Rel, canonical)
	if err != nil {
		return nil, err
	}
	t.indexes[key] = idx
	return idx, nil
}

// Index returns the index on exactly the given column list, or nil.
func (t *Table) Index(cols ...string) *index.Index {
	canonical := make([]string, len(cols))
	for i, c := range cols {
		j := t.Rel.Schema.ColIndex(c)
		if j < 0 {
			return nil
		}
		canonical[i] = t.Rel.Schema.Cols[j].Name
	}
	return t.indexes[indexKey(canonical)]
}

// DropIndex removes the index on the given column list, if present. The
// experiments use this to study the native approach's index sensitivity.
func (t *Table) DropIndex(cols ...string) {
	canonical := make([]string, len(cols))
	for i, c := range cols {
		j := t.Rel.Schema.ColIndex(c)
		if j < 0 {
			return
		}
		canonical[i] = t.Rel.Schema.Cols[j].Name
	}
	delete(t.indexes, indexKey(canonical))
}

// Indexes lists the column sets of all indexes, sorted.
func (t *Table) Indexes() [][]string {
	var keys []string
	byKey := make(map[string]*index.Index, len(t.indexes))
	for k, v := range t.indexes {
		keys = append(keys, k)
		byKey[k] = v
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k].Columns())
	}
	return out
}

func indexKey(cols []string) string {
	key := ""
	for _, c := range cols {
		key += c + "\x00"
	}
	return key
}
