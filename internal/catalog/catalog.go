// Package catalog manages named base tables, their constraints and their
// indexes. The paper's engine model assumes every relation has a unique
// non-NULL primary key (used by the nested approach to recognise padding
// tuples), and the native baseline's plan choices depend on NOT NULL
// constraints and index availability — all of which live here.
//
// Concurrency model (snapshot isolation, single writer):
//
//   - A Catalog is a sequence of immutable Snapshots published through an
//     atomic pointer. Readers call Snapshot() (or any read method, which
//     reads the current snapshot) and never block, never lock.
//   - Every mutation — DML, DDL, constraint/index/statistics changes —
//     runs under one writer mutex, builds new *Table versions without
//     touching the published ones (copy-on-write), and commits by
//     publishing a new Snapshot with a bumped epoch.
//   - A *Table obtained from a snapshot is immutable: queries planned
//     against it (including its statistics, so cost decisions are stable
//     per query) read a frozen version of the data no matter what
//     writers commit meanwhile.
//
// The Table-level mutating methods (SetNotNull, CreateIndex, Analyze, …)
// exist for single-threaded catalog construction — generators and
// loaders that build a catalog before sharing it. Once a catalog is
// visible to concurrent readers, use the Catalog-level methods (or a Tx),
// which are copy-on-write.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"nra/internal/colstore"
	"nra/internal/index"
	"nra/internal/relation"
	"nra/internal/stats"
	"nra/internal/value"
	"nra/internal/vec"
)

// Table is a base relation plus metadata. Tables published in a snapshot
// are immutable; mutating methods are reserved for single-threaded
// catalog construction (see the package comment).
type Table struct {
	Name    string
	Rel     *relation.Relation
	PK      string          // primary key column (qualified name)
	NotNull map[string]bool // columns with a NOT NULL constraint (PK implied)

	// indexes holds the built indexes by canonical column-list key;
	// lazyIdx holds column lists that are declared (they appear in
	// Indexes() and persist with the manifest) but not built yet —
	// trusted loads declare every index and Index() builds on first
	// lookup, so cold start never pays for indexes no query uses.
	// idxMu guards both maps: lazy promotion mutates a published
	// version, which is otherwise immutable.
	idxMu      sync.Mutex
	indexes    map[string]*index.Index // by canonical column-list key
	lazyIdx    map[string][]string     // declared, unbuilt; canonical cols by key
	stats      *stats.Table            // last ANALYZE result; nil = never analyzed
	statsStale bool                    // set by DML; stale stats are treated as absent

	// vecCols memoizes the columnar form of this version's columns for
	// the vectorized scan — the table's column-store representation,
	// built lazily per column on first vectorized access. A version's
	// rows are immutable (mutations are copy-on-write and produce a
	// successor version, which starts cold), so entries never go stale.
	// vecMu guards both maps: snapshots are shared across queries.
	// segDecs holds the per-column segment decoders of a segment-backed
	// version; they fill group-at-a-time, so pruned scans never decode
	// the bytes of skipped row groups.
	vecMu   sync.Mutex
	vecCols map[int]*vec.Vector
	segDecs map[int]*colstore.ColumnDecoder

	// segs is the columnar segment this version was loaded from, when
	// the durable format is columnar (internal/colstore via csvio).
	// VecColumn then decodes columns from segment bytes instead of
	// re-converting the row store, and the planner prunes row groups
	// against the segment's zone maps. Mutations drop it: a successor
	// version's rows no longer match the segment (the next checkpoint
	// writes a fresh one).
	segs *colstore.Reader
}

// AttachSegments installs the columnar segment reader backing this
// table version's rows. The caller (csvio.LoadFS) guarantees the
// segment holds exactly Rel's rows in Rel's column order.
func (t *Table) AttachSegments(r *colstore.Reader) { t.segs = r }

// Segments returns the columnar segment reader backing this version,
// or nil when the version is not segment-backed (CSV-loaded tables and
// post-mutation versions).
func (t *Table) Segments() *colstore.Reader { return t.segs }

// VecColumn returns the memoized columnar form of column c — decoded
// from the backing segment when one is attached, converted from the row
// store otherwise — converting and caching it on first access.
func (t *Table) VecColumn(c int) *vec.Vector {
	return t.VecColumnPruned(c, nil)
}

// VecColumnPruned is VecColumn for a scan that will skip the row
// groups marked in skip (the zone-map prune set; see
// colstore.PruneGroups): on a segment-backed version only the
// remaining groups are decoded, and the skipped regions of the shared
// vector stay undecoded until some later scan needs them. The scan
// must not read rows of skipped groups — exec.VecScan's SegPrune
// windows guarantee that. skip is ignored for row-store tables.
func (t *Table) VecColumnPruned(c int, skip []bool) *vec.Vector {
	t.vecMu.Lock()
	defer t.vecMu.Unlock()
	if v, ok := t.vecCols[c]; ok {
		return v
	}
	if t.segs != nil {
		if v := t.segColumn(c, skip); v != nil {
			return v
		}
		// The segment passed its checksums at load, so a decode error
		// here means a bug, not corruption; fall back to the row store
		// rather than fail the query.
	}
	if t.vecCols == nil {
		t.vecCols = make(map[int]*vec.Vector)
	}
	v := vec.ColumnVector(t.Rel.Tuples, c)
	t.vecCols[c] = v
	return v
}

// segColumn ensures column c's decoder exists and its non-skipped
// groups are decoded, returning the shared vector (nil on decode
// error). Caller holds vecMu; a group decodes at most once per table
// version, and the mutex hand-off publishes the decoded region to
// every scan that asks for it afterwards.
func (t *Table) segColumn(c int, skip []bool) *vec.Vector {
	dec, ok := t.segDecs[c]
	if !ok {
		var err error
		if dec, err = t.segs.NewColumnDecoder(c); err != nil {
			return nil
		}
		if t.segDecs == nil {
			t.segDecs = make(map[int]*colstore.ColumnDecoder)
		}
		t.segDecs[c] = dec
	}
	if err := dec.EnsureGroups(skip); err != nil {
		return nil
	}
	return dec.Vector()
}

// New returns an empty catalog at epoch 1.
func New() *Catalog {
	c := &Catalog{}
	c.snap.Store(&Snapshot{tables: make(map[string]*Table), epoch: 1})
	return c
}

// newTable validates rel against the primary-key contract and builds a
// fresh Table version (PK index included, mirroring §5.1's automatic
// primary-key B+-trees). When trusted is set — loaders replaying a
// checksummed committed save, whose bytes provably round-trip a catalog
// that already enforced the contract — the uniqueness scan is skipped
// and the PK index is declared lazily instead of built, so cold start
// pays for neither.
func newTable(name string, rel *relation.Relation, pk string, trusted bool) (*Table, error) {
	if rel.Schema.Depth() != 0 {
		return nil, fmt.Errorf("catalog: base table %q must be flat", name)
	}
	pkIdx := rel.Schema.ColIndex(pk)
	if pkIdx < 0 {
		return nil, fmt.Errorf("catalog: table %q has no column %q for primary key", name, pk)
	}
	pkName := rel.Schema.Cols[pkIdx].Name
	if !trusted {
		seen := make(map[string]struct{}, rel.Len())
		for i, t := range rel.Tuples {
			v := t.Atoms[pkIdx]
			if v.IsNull() {
				return nil, fmt.Errorf("catalog: table %q row %d: NULL primary key", name, i)
			}
			k := string(v.AppendKey(nil))
			if _, dup := seen[k]; dup {
				return nil, fmt.Errorf("catalog: table %q row %d: duplicate primary key %s", name, i, v)
			}
			seen[k] = struct{}{}
		}
	}
	t := &Table{
		Name:    name,
		Rel:     rel,
		PK:      pkName,
		NotNull: map[string]bool{pkName: true},
		indexes: make(map[string]*index.Index),
	}
	if trusted {
		t.lazyIdx = map[string][]string{indexKey([]string{pkName}): {pkName}}
		return t, nil
	}
	if _, err := t.CreateIndex(pkName); err != nil {
		return nil, err
	}
	return t, nil
}

// Create registers a table. The primary key column must exist, be unique
// and contain no NULLs; this is validated eagerly because both query
// processing approaches rely on it.
func (c *Catalog) Create(name string, rel *relation.Relation, pk string) (*Table, error) {
	tx := c.Begin()
	defer tx.Rollback()
	t, err := tx.Create(name, rel, pk)
	if err != nil {
		return nil, err
	}
	tx.Commit()
	return t, nil
}

// CreateLoaded registers a table from a loader replaying a checksummed
// committed save — see Tx.CreateLoaded for the trust contract: no
// primary-key re-validation, PK index declared lazily.
func (c *Catalog) CreateLoaded(name string, rel *relation.Relation, pk string) (*Table, error) {
	tx := c.Begin()
	defer tx.Rollback()
	t, err := tx.CreateLoaded(name, rel, pk)
	if err != nil {
		return nil, err
	}
	tx.Commit()
	return t, nil
}

// Drop removes a table; it errors when the table does not exist.
func (c *Catalog) Drop(name string) error {
	tx := c.Begin()
	defer tx.Rollback()
	if err := tx.Drop(name); err != nil {
		return err
	}
	tx.Commit()
	return nil
}

// Table looks up a table in the current snapshot.
func (c *Catalog) Table(name string) (*Table, error) { return c.Snapshot().Table(name) }

// Names returns the sorted table names of the current snapshot.
func (c *Catalog) Names() []string { return c.Snapshot().Names() }

// SetNotNull declares a NOT NULL constraint on a column; the native
// baseline's planner uses it to decide whether an antijoin is legal for
// ALL / NOT IN (§5.2). It verifies the data actually satisfies it.
// Construction-time only; a live catalog uses Catalog.SetNotNull.
func (t *Table) SetNotNull(col string) error {
	i := t.Rel.Schema.ColIndex(col)
	if i < 0 {
		return fmt.Errorf("catalog: table %q has no column %q", t.Name, col)
	}
	for row, tp := range t.Rel.Tuples {
		if tp.Atoms[i].IsNull() {
			return fmt.Errorf("catalog: table %q row %d violates NOT NULL(%s)", t.Name, row, col)
		}
	}
	t.NotNull[t.Rel.Schema.Cols[i].Name] = true
	return nil
}

// SetNotNull is the copy-on-write form of Table.SetNotNull: it commits a
// new version of the named table carrying the constraint.
func (c *Catalog) SetNotNull(table, col string) error {
	return c.mutateTable(table, func(t *Table) error { return t.SetNotNull(col) })
}

// IsNotNull reports whether col carries a NOT NULL constraint.
func (t *Table) IsNotNull(col string) bool {
	i := t.Rel.Schema.ColIndex(col)
	if i < 0 {
		return false
	}
	return t.NotNull[t.Rel.Schema.Cols[i].Name]
}

// Analyze collects fresh statistics over the table's current rows (the
// ANALYZE pass) and clears any staleness mark. Construction-time only;
// a live catalog uses Catalog.AnalyzeTable / Catalog.AnalyzeAll.
func (t *Table) Analyze() *stats.Table {
	if t.segs != nil {
		// Segment-backed versions seed the min/max/null pass from the
		// zone maps collected at write time; the result is identical to
		// an unseeded Collect, just cheaper.
		t.stats = stats.CollectSeeded(t.Rel, t.segs.Seeds())
	} else {
		t.stats = stats.Collect(t.Rel)
	}
	t.statsStale = false
	return t.stats
}

// Stats returns the table's statistics, or nil when none were collected
// or a DML mutation made them stale — the planner must treat stale
// statistics as absent rather than silently plan with wrong row counts.
func (t *Table) Stats() *stats.Table {
	if t.statsStale {
		return nil
	}
	return t.stats
}

// StatsStale reports whether statistics exist but were invalidated by a
// mutation since the last ANALYZE.
func (t *Table) StatsStale() bool { return t.stats != nil && t.statsStale }

// SetStats installs previously collected statistics (a persisted ANALYZE
// result reloaded by csvio) as fresh. Construction-time only.
func (t *Table) SetStats(s *stats.Table) {
	t.stats = s
	t.statsStale = false
}

// AnalyzeTable commits a new version of the named table with freshly
// collected statistics; readers holding earlier snapshots keep planning
// from the statistics their snapshot was published with.
func (c *Catalog) AnalyzeTable(name string) error {
	return c.mutateTable(name, func(t *Table) error { t.Analyze(); return nil })
}

// AnalyzeAll collects statistics for every table and commits them as one
// new snapshot.
func (c *Catalog) AnalyzeAll() {
	tx := c.Begin()
	defer tx.Rollback()
	for _, name := range tx.base.Names() {
		t, err := tx.Table(name)
		if err != nil {
			continue
		}
		nt := t.clone()
		nt.Analyze()
		tx.staged[name] = nt
	}
	tx.Commit()
}

// CreateIndexOn commits a new version of the named table carrying an
// index on the given columns (a no-op version bump when it exists).
func (c *Catalog) CreateIndexOn(table string, cols ...string) error {
	return c.mutateTable(table, func(t *Table) error {
		_, err := t.CreateIndex(cols...)
		return err
	})
}

// DropIndexOn commits a new version of the named table without the index
// on the given columns.
func (c *Catalog) DropIndexOn(table string, cols ...string) error {
	return c.mutateTable(table, func(t *Table) error { t.DropIndex(cols...); return nil })
}

// Insert appends rows to the named table as one committed batch,
// returning the number inserted. On any validation error nothing is
// committed.
func (c *Catalog) Insert(table string, rows [][]value.Value) (int, error) {
	tx := c.Begin()
	defer tx.Rollback()
	n, err := tx.Insert(table, rows)
	if err != nil {
		return 0, err
	}
	tx.Commit()
	return n, nil
}

// Delete removes the named table's rows whose primary key is in keys,
// committing the survivors as a new version; missing keys are not an
// error.
func (c *Catalog) Delete(table string, keys []value.Value) (int, error) {
	tx := c.Begin()
	defer tx.Rollback()
	n, err := tx.Delete(table, keys)
	if err != nil {
		return 0, err
	}
	tx.Commit()
	return n, nil
}

// Update rewrites the named columns of the rows identified by keys
// (keys[i]'s row gets vals[i], parallel to cols) and commits the result
// as a new version. On error nothing is committed.
func (c *Catalog) Update(table string, keys []value.Value, cols []string, vals [][]value.Value) (int, error) {
	tx := c.Begin()
	defer tx.Rollback()
	n, err := tx.Update(table, keys, cols, vals)
	if err != nil {
		return 0, err
	}
	tx.Commit()
	return n, nil
}

// mutateTable clones the named table, applies fn to the clone, and
// commits it as a new snapshot.
func (c *Catalog) mutateTable(name string, fn func(*Table) error) error {
	tx := c.Begin()
	defer tx.Rollback()
	t, err := tx.Table(name)
	if err != nil {
		return err
	}
	nt := t.clone()
	if err := fn(nt); err != nil {
		return err
	}
	tx.staged[name] = nt
	tx.Commit()
	return nil
}

// CreateIndex builds (or returns an existing) index on the given columns,
// in order. Single- and multi-column indexes are supported, mirroring the
// paper's combined index on (l_partkey, l_suppkey) versus the single
// indexes it compares against. Construction-time only; a live catalog
// uses Catalog.CreateIndexOn.
func (t *Table) CreateIndex(cols ...string) (*index.Index, error) {
	canonical := make([]string, len(cols))
	for i, c := range cols {
		j := t.Rel.Schema.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("catalog: table %q has no column %q", t.Name, c)
		}
		canonical[i] = t.Rel.Schema.Cols[j].Name
	}
	key := indexKey(canonical)
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	return t.buildIndex(key, canonical)
}

// DeclareIndex registers an index on the given columns without building
// it: the column list persists with the manifest and the index is built
// on the first Index lookup that asks for it. Loaders use it so cold
// start never pays for indexes no query uses.
func (t *Table) DeclareIndex(cols ...string) error {
	canonical := make([]string, len(cols))
	for i, c := range cols {
		j := t.Rel.Schema.ColIndex(c)
		if j < 0 {
			return fmt.Errorf("catalog: table %q has no column %q", t.Name, c)
		}
		canonical[i] = t.Rel.Schema.Cols[j].Name
	}
	key := indexKey(canonical)
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if _, ok := t.indexes[key]; ok {
		return nil
	}
	if t.lazyIdx == nil {
		t.lazyIdx = make(map[string][]string)
	}
	t.lazyIdx[key] = canonical
	return nil
}

// buildIndex returns the built index for key, promoting a lazy
// declaration or building a fresh index over canonical. Caller holds
// idxMu.
func (t *Table) buildIndex(key string, canonical []string) (*index.Index, error) {
	if idx, ok := t.indexes[key]; ok {
		return idx, nil
	}
	idx, err := index.Build(t.Rel, canonical)
	if err != nil {
		return nil, err
	}
	t.indexes[key] = idx
	delete(t.lazyIdx, key)
	return idx, nil
}

// Index returns the index on exactly the given column list, or nil.
// A declared-but-unbuilt index (trusted loads defer building) is built
// here on first lookup; the promotion is synchronized, so snapshots
// stay safe to share across queries.
func (t *Table) Index(cols ...string) *index.Index {
	canonical := make([]string, len(cols))
	for i, c := range cols {
		j := t.Rel.Schema.ColIndex(c)
		if j < 0 {
			return nil
		}
		canonical[i] = t.Rel.Schema.Cols[j].Name
	}
	key := indexKey(canonical)
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if idx, ok := t.indexes[key]; ok {
		return idx
	}
	if spec, ok := t.lazyIdx[key]; ok {
		idx, err := t.buildIndex(key, spec)
		if err != nil {
			return nil
		}
		return idx
	}
	return nil
}

// DropIndex removes the index on the given column list, if present. The
// experiments use this to study the native approach's index sensitivity.
// Construction-time only; a live catalog uses Catalog.DropIndexOn.
func (t *Table) DropIndex(cols ...string) {
	canonical := make([]string, len(cols))
	for i, c := range cols {
		j := t.Rel.Schema.ColIndex(c)
		if j < 0 {
			return
		}
		canonical[i] = t.Rel.Schema.Cols[j].Name
	}
	key := indexKey(canonical)
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	delete(t.indexes, key)
	delete(t.lazyIdx, key)
}

// Indexes lists the column sets of all indexes — built and declared —
// sorted.
func (t *Table) Indexes() [][]string {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	var keys []string
	byKey := make(map[string][]string, len(t.indexes)+len(t.lazyIdx))
	for k, v := range t.indexes {
		keys = append(keys, k)
		byKey[k] = v.Columns()
	}
	for k, cols := range t.lazyIdx {
		if _, ok := byKey[k]; ok {
			continue
		}
		keys = append(keys, k)
		byKey[k] = cols
	}
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out
}

func indexKey(cols []string) string {
	key := ""
	for _, c := range cols {
		key += c + "\x00"
	}
	return key
}
