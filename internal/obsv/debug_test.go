package obsv

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.NoteQuery(time.Millisecond, nil, false)
	addr, stop, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/debug/metrics"); !strings.Contains(body, "nra_queries 1") {
		t.Errorf("/debug/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "queries") {
		t.Errorf("/debug/vars missing registry:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	if body := get("/debug/"); !strings.Contains(body, "pprof") {
		t.Errorf("index page missing links:\n%s", body)
	}
}
