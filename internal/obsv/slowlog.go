package obsv

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowLogEntry is one record of the structured slow-query log: enough
// context — SQL (or label), plan text, resource stats, and the full
// trace tree with est-vs-actual rows — to analyse the query offline
// without re-running it.
type SlowLogEntry struct {
	Time       time.Time   `json:"time"`
	Query      string      `json:"query,omitempty"`    // SQL text or caller-supplied label
	Session    string      `json:"session,omitempty"`  // owning session ID (serving layer)
	QueryID    uint64      `json:"query_id,omitempty"` // per-session monotonic query counter
	DurationMS float64     `json:"duration_ms"`
	Error      string      `json:"error,omitempty"`
	Plan       string      `json:"plan,omitempty"` // EXPLAIN text of the executed plan
	PeakBytes  int64       `json:"peak_bytes"`
	Spills     int64       `json:"spills"`
	SpillBytes int64       `json:"spill_bytes"`
	Trace      *SpanRecord `json:"trace,omitempty"`
}

// SlowLog appends JSON-lines entries to a writer, one object per
// slow query. Record is safe for concurrent use.
type SlowLog struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSlowLog returns a slow-query log writing to w.
func NewSlowLog(w io.Writer) *SlowLog { return &SlowLog{w: w} }

// Record appends one entry as a single JSON line. Encoding or write
// errors are returned but the log stays usable.
func (l *SlowLog) Record(e *SlowLogEntry) error {
	if l == nil || e == nil {
		return nil
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err = l.w.Write(data)
	return err
}

// DecodeSlowLog parses a JSON-lines slow-query log back into entries —
// the offline-analysis half of the round trip. Blank lines are skipped;
// a malformed line aborts with its decode error.
func DecodeSlowLog(r io.Reader) ([]*SlowLogEntry, error) {
	var out []*SlowLogEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		e := new(SlowLogEntry)
		if err := json.Unmarshal(line, e); err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
