// Package obsv is the engine's observability subsystem: per-operator
// trace spans, a process-wide metrics registry exported via expvar, a
// structured (JSON lines) slow-query log, and an opt-in debug HTTP
// endpoint serving expvar and net/http/pprof.
//
// The design goal is strict pay-for-use: every Span and Tracer method is
// safe on a nil receiver and does nothing, so an operator records into
// the current trace with plain calls and a disabled trace costs only nil
// checks — zero allocations on the per-tuple hot path (asserted by
// tests). Span field updates are coarse (operator entry/exit, per-morsel
// claims), never per tuple, so a plain mutex on the owning Tracer is
// cheap and keeps the package race-free.
//
// See docs/OBSERVABILITY.md for the span model, metric names and the
// slow-query log schema.
package obsv

import (
	"sync"
	"time"
)

// Span kinds: the operator class a span measures. The registry
// aggregates cumulative rows and time per kind.
const (
	// KindQuery is the implicit root span of every trace.
	KindQuery = "query"
	// KindPlan marks a planner-level operator span (the EXPLAIN ANALYZE
	// rows): reduce, outer join, nest+link, finish, and friends.
	KindPlan = "plan"
	// KindScan is a base-relation scan.
	KindScan = "scan"
	// KindJoin is an in-memory (hash or nested-loop) join.
	KindJoin = "join"
	// KindGraceJoin is the budget-bounded chunked spill join.
	KindGraceJoin = "gracejoin"
	// KindSort is an in-memory pre-nest sort.
	KindSort = "sort"
	// KindExtSort is the external merge sort a budget-exceeded sort
	// degrades to.
	KindExtSort = "extsort"
	// KindNestLink is the fused nest + linking selection (§4.2.2).
	KindNestLink = "nestlink"
	// KindChain is the fully fused nest chain (§4.2.1).
	KindChain = "nestlinkchain"
)

// Span is one live operator measurement inside a Tracer's span tree:
// wall-clock start/elapsed, rows in/out, working-state bytes reserved,
// spill events, and morsels claimed per worker. A nil *Span is the
// disabled trace; every method on it is a no-op.
//
// Spans are opened and closed on the query's driving goroutine (operator
// entry points are sequential); concurrent pool workers only add morsel
// claims, which lock the owning Tracer.
type Span struct {
	tr     *Tracer
	parent *Span

	op      string
	kind    string
	start   time.Duration // offset from the trace's start
	elapsed time.Duration
	ended   bool

	est                float64 // estimated output rows; < 0 = none
	rowsIn, rowsOut    int64
	batches            int64 // batches processed by a vectorized operator
	bytes              int64 // working-state bytes reserved under this span
	spills, spillBytes int64
	morsels            []int64 // tasks claimed per worker (index = worker id)
	children           []*Span
}

// Tracer records one query's span tree. The zero value is not usable;
// construct with NewTracer. A nil *Tracer is the disabled tracer: Start
// returns a nil Span and costs nothing.
type Tracer struct {
	mu   sync.Mutex
	t0   time.Time
	root *Span
	cur  *Span

	// session / queryID label the trace's root record so concurrent
	// queries' slow-log entries and span trees stay attributable — see
	// Tag.
	session string
	queryID uint64
}

// NewTracer returns a tracer whose clock starts now, with an open root
// span of kind KindQuery.
func NewTracer() *Tracer {
	t := &Tracer{t0: time.Now()}
	t.root = &Span{tr: t, op: "query", kind: KindQuery, est: -1}
	t.cur = t.root
	return t
}

// Start opens a child span of the innermost open span and makes it
// current. It returns nil on a nil tracer.
func (t *Tracer) Start(op, kind string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, parent: t.cur, op: op, kind: kind, start: time.Since(t.t0), est: -1}
	t.cur.children = append(t.cur.children, sp)
	t.cur = sp
	return sp
}

// Current returns the innermost open span (the root before any Start),
// or nil on a nil tracer. Workers use it to credit bytes, spills and
// morsels to whatever operator is running.
func (t *Tracer) Current() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur
}

// endLocked closes s (and, if s is an ancestor of the current span, every
// span on the path down to it — robustness against error paths that skip
// an End) and pops the current-span stack. t.mu must be held.
func (t *Tracer) endLocked(s *Span) {
	now := time.Since(t.t0)
	if !s.ended {
		s.ended = true
		s.elapsed = now - s.start
	}
	// Pop the stack if s lies on the open chain.
	for c := t.cur; c != nil; c = c.parent {
		if c != s {
			continue
		}
		for d := t.cur; d != s; d = d.parent {
			if !d.ended {
				d.ended = true
				d.elapsed = now - d.start
			}
		}
		if s.parent != nil {
			t.cur = s.parent
		} else {
			t.cur = s
		}
		return
	}
}

// Finish closes every open span (including the root) and returns the
// trace's snapshot. It is idempotent: later calls re-snapshot without
// reopening anything.
func (t *Tracer) Finish() *SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	now := time.Since(t.t0)
	for d := t.cur; d != nil; d = d.parent {
		if !d.ended {
			d.ended = true
			d.elapsed = now - d.start
		}
	}
	t.cur = t.root
	t.mu.Unlock()
	return t.Snapshot()
}

// Tag labels the trace with the owning session ID and the session's
// monotonically increasing query ID. The tag lands on the root record of
// every later Snapshot/Finish, keeping concurrent queries' span trees
// attributable to the session that ran them. Safe on a nil tracer.
func (t *Tracer) Tag(session string, queryID uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.session, t.queryID = session, queryID
}

// Snapshot renders the span tree as exported, JSON-serialisable records.
// Open spans report their elapsed time so far. Returns nil on a nil
// tracer.
func (t *Tracer) Snapshot() *SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Since(t.t0)
	r := snap(t.root, now)
	r.Session, r.QueryID = t.session, t.queryID
	return r
}

func snap(s *Span, now time.Duration) *SpanRecord {
	r := &SpanRecord{
		Op:         s.op,
		Kind:       s.kind,
		Start:      s.start,
		Elapsed:    s.elapsed,
		EstRows:    s.est,
		RowsIn:     s.rowsIn,
		RowsOut:    s.rowsOut,
		Batches:    s.batches,
		Bytes:      s.bytes,
		Spills:     s.spills,
		SpillBytes: s.spillBytes,
	}
	if !s.ended {
		r.Elapsed = now - s.start
	}
	if len(s.morsels) > 0 {
		r.Morsels = append([]int64(nil), s.morsels...)
	}
	for _, c := range s.children {
		r.Children = append(r.Children, snap(c, now))
	}
	return r
}

// End closes the span, recording its elapsed wall time. No-op on nil or
// an already-ended span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.tr.endLocked(s)
	s.tr.mu.Unlock()
}

// SetKind reclassifies the span (e.g. a sort that degraded to an
// external merge becomes KindExtSort).
func (s *Span) SetKind(kind string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.kind = kind
	s.tr.mu.Unlock()
}

// SetEst records the planner's estimated output rows (< 0 = none).
func (s *Span) SetEst(rows float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.est = rows
	s.tr.mu.Unlock()
}

// AddRowsIn adds to the span's input-row count.
func (s *Span) AddRowsIn(n int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.rowsIn += n
	s.tr.mu.Unlock()
}

// AddRowsOut adds to the span's output-row count.
func (s *Span) AddRowsOut(n int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.rowsOut += n
	s.tr.mu.Unlock()
}

// AddBatches adds to the span's processed-batch count. Row counts stay
// in rows_in/rows_out; a vectorized operator additionally accounts the
// batches it moved, so traces show batch granularity separately from
// row volume. Like every Span method it is a no-op on a nil receiver,
// preserving the zero-allocation disabled path.
func (s *Span) AddBatches(n int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.batches += n
	s.tr.mu.Unlock()
}

// AddBytes credits working-state bytes reserved while this span ran.
func (s *Span) AddBytes(n int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.bytes += n
	s.tr.mu.Unlock()
}

// NoteSpill records one spill event of the given size against the span.
func (s *Span) NoteSpill(bytes int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.spills++
	s.spillBytes += bytes
	s.tr.mu.Unlock()
}

// EnsureWorkers grows the per-worker morsel counters to at least n.
// Callers invoke it before the workers of one parallel phase start; the
// pool guarantees no worker of a previous phase is still running.
func (s *Span) EnsureWorkers(n int) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	for len(s.morsels) < n {
		s.morsels = append(s.morsels, 0)
	}
	s.tr.mu.Unlock()
}

// Morsel records one task claimed by worker w (0 = the submitting
// goroutine). Claims are per-morsel, not per-tuple, so the lock is cheap.
func (s *Span) Morsel(w int) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if w >= 0 && w < len(s.morsels) {
		s.morsels[w]++
	}
	s.tr.mu.Unlock()
}
