package obsv

import (
	"fmt"
	"strings"
	"time"
)

// SpanRecord is the exported, immutable snapshot of one Span: what the
// slow-query log serialises and the waterfall renderer draws. Durations
// marshal as integer nanoseconds, so a logged trace round-trips through
// encoding/json losslessly.
type SpanRecord struct {
	Op         string        `json:"op"`
	Kind       string        `json:"kind"`
	Start      time.Duration `json:"start_ns"`   // offset from the trace start
	Elapsed    time.Duration `json:"elapsed_ns"` // wall time inside the span
	EstRows    float64       `json:"est_rows"`   // planner estimate; < 0 = none
	RowsIn     int64         `json:"rows_in"`
	RowsOut    int64         `json:"rows_out"`
	Batches    int64         `json:"batches,omitempty"`     // batches moved by a vectorized operator
	Bytes      int64         `json:"bytes,omitempty"`       // working-state bytes reserved
	Spills     int64         `json:"spills,omitempty"`      // spill events under this span
	SpillBytes int64         `json:"spill_bytes,omitempty"` // bytes written to spill files
	Morsels    []int64       `json:"morsels,omitempty"`     // tasks claimed per worker
	Children   []*SpanRecord `json:"children,omitempty"`

	// Session and QueryID label the root record of a tagged trace (see
	// Tracer.Tag): the serving layer's session ID and its monotonically
	// increasing per-session query counter, so interleaved concurrent
	// queries stay attributable. Zero values on untagged or child spans.
	Session string `json:"session,omitempty"`
	QueryID uint64 `json:"query_id,omitempty"`
}

// Walk visits the record and every descendant in pre-order (which is
// span start order, because children are appended as they open).
func (r *SpanRecord) Walk(fn func(*SpanRecord)) {
	if r == nil {
		return
	}
	fn(r)
	for _, c := range r.Children {
		c.Walk(fn)
	}
}

// Find returns the first record (pre-order) whose Kind matches, or nil.
func (r *SpanRecord) Find(kind string) *SpanRecord {
	var out *SpanRecord
	r.Walk(func(s *SpanRecord) {
		if out == nil && s.Kind == kind {
			out = s
		}
	})
	return out
}

// waterfallBarWidth is the character width of the waterfall's time bars.
const waterfallBarWidth = 32

// Waterfall renders the span tree as an indented text table with one
// offset-scaled bar per span — where the query's wall time went:
//
//	op                         rows       time  |bar            |
//	query                         -     12.3ms  |################|
//	  reduce T1 (orders)       4500      3.1ms  |####            |
//
// The bar's offset and length are proportional to the span's start and
// elapsed time within the whole trace.
func Waterfall(root *SpanRecord) string {
	if root == nil {
		return "(no trace recorded)\n"
	}
	total := root.Elapsed
	opw := len("operator")
	var measure func(r *SpanRecord, depth int)
	measure = func(r *SpanRecord, depth int) {
		if n := 2*depth + len([]rune(r.Op)); n > opw {
			opw = n
		}
		if end := r.Start + r.Elapsed; end > total {
			total = end
		}
		for _, c := range r.Children {
			measure(c, depth+1)
		}
	}
	measure(root, 0)

	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %10s  %10s  |%s|\n", opw, "operator", "rows", "time",
		strings.Repeat(" ", waterfallBarWidth))
	var render func(r *SpanRecord, depth int)
	render = func(r *SpanRecord, depth int) {
		rows := "-"
		if r.RowsOut > 0 || r.RowsIn > 0 {
			rows = fmt.Sprintf("%d", r.RowsOut)
		}
		label := strings.Repeat("  ", depth) + r.Op
		fmt.Fprintf(&b, "%-*s  %10s  %10s  |%s|", opw, label, rows,
			fmtDuration(r.Elapsed), bar(r.Start, r.Elapsed, total))
		if r.Batches > 0 {
			fmt.Fprintf(&b, " %d batches", r.Batches)
		}
		if r.Spills > 0 {
			fmt.Fprintf(&b, " %d spills (%d B)", r.Spills, r.SpillBytes)
		}
		if len(r.Morsels) > 1 {
			fmt.Fprintf(&b, " morsels=%v", r.Morsels)
		}
		b.WriteByte('\n')
		for _, c := range r.Children {
			render(c, depth+1)
		}
	}
	render(root, 0)
	return b.String()
}

// bar draws one offset-scaled time bar of waterfallBarWidth characters.
func bar(start, elapsed, total time.Duration) string {
	if total <= 0 {
		return strings.Repeat(" ", waterfallBarWidth)
	}
	lead := int(int64(start) * int64(waterfallBarWidth) / int64(total))
	if lead > waterfallBarWidth {
		lead = waterfallBarWidth
	}
	n := int(int64(elapsed) * int64(waterfallBarWidth) / int64(total))
	if n < 1 {
		n = 1
	}
	if lead+n > waterfallBarWidth {
		n = waterfallBarWidth - lead
		if n < 1 {
			lead, n = waterfallBarWidth-1, 1
		}
	}
	return strings.Repeat(" ", lead) + strings.Repeat("#", n) +
		strings.Repeat(" ", waterfallBarWidth-lead-n)
}

// fmtDuration renders a duration compactly for the waterfall table.
func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
