package obsv

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nra/internal/stats"
)

// Registry is the process-wide metrics accumulator: query counts and
// outcomes, per-operator-kind cumulative rows/time/spills (aggregated
// from finished traces), and the estimator q-error histogram. All
// methods are safe for concurrent use; the cheap counters are updated on
// every query, the per-kind aggregates only when a query ran with
// tracing enabled.
type Registry struct {
	queries       atomic.Int64
	queryErrors   atomic.Int64
	cancellations atomic.Int64
	slowQueries   atomic.Int64
	spills        atomic.Int64
	spillBytes    atomic.Int64
	queryNanos    atomic.Int64

	mu     sync.Mutex
	ops    map[string]*OpMetrics
	gauges []gauge

	qerr stats.QErrorHist

	publishOnce sync.Once
}

// gauge is a registered callback metric: subsystems with their own state
// (the serving layer's plan cache, admission queue, session table) expose
// point-in-time values through it instead of double-accounting into the
// registry's counters.
type gauge struct {
	name string
	fn   func() int64
}

// OpMetrics is the cumulative per-operator-kind aggregate exported by
// the registry.
type OpMetrics struct {
	Calls   int64         `json:"calls"`
	RowsIn  int64         `json:"rows_in"`
	RowsOut int64         `json:"rows_out"`
	Time    time.Duration `json:"time_ns"`
	Spills  int64         `json:"spills"`
}

// defaultRegistry is the process-wide instance behind Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every query reports into.
func Default() *Registry { return defaultRegistry }

// NewRegistry returns an empty registry (tests; production code uses
// Default).
func NewRegistry() *Registry { return &Registry{ops: make(map[string]*OpMetrics)} }

// NoteQuery records one finished query: its duration, outcome (err may
// be nil) and whether it crossed the slow-query threshold.
// Cancellations — context.Canceled or context.DeadlineExceeded anywhere
// in the error chain — are counted separately from other errors.
func (r *Registry) NoteQuery(d time.Duration, err error, slow bool) {
	if r == nil {
		return
	}
	r.queries.Add(1)
	r.queryNanos.Add(int64(d))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			r.cancellations.Add(1)
		} else {
			r.queryErrors.Add(1)
		}
	}
	if slow {
		r.slowQueries.Add(1)
	}
}

// ObserveTrace folds a finished trace into the per-operator-kind
// aggregates and the spill counters. Plan- and query-level spans carry
// planner bookkeeping, not physical work, and are skipped for the
// per-kind rows/time sums (their spills still count).
func (r *Registry) ObserveTrace(rec *SpanRecord) {
	if r == nil || rec == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec.Walk(func(s *SpanRecord) {
		r.spills.Add(s.Spills)
		r.spillBytes.Add(s.SpillBytes)
		if s.Kind == KindQuery || s.Kind == KindPlan {
			return
		}
		m := r.ops[s.Kind]
		if m == nil {
			m = &OpMetrics{}
			r.ops[s.Kind] = m
		}
		m.Calls++
		m.RowsIn += s.RowsIn
		m.RowsOut += s.RowsOut
		m.Time += s.Elapsed
		m.Spills += s.Spills
	})
}

// ObserveQError records one estimator q-error observation.
func (r *Registry) ObserveQError(q float64) {
	if r == nil {
		return
	}
	r.qerr.Note(q)
}

// QErrors exposes the registry's q-error histogram (read-only use).
func (r *Registry) QErrors() *stats.QErrorHist { return &r.qerr }

// RegisterGauge adds a named callback metric to the registry: fn is
// polled on every Snapshot / MetricsText and its value exported as
// "nra_<name>". fn must be safe for concurrent use and must not call
// back into the registry. Registering a name twice replaces the earlier
// callback (the serving layer re-registers across restarts in tests).
func (r *Registry) RegisterGauge(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.gauges {
		if r.gauges[i].name == name {
			r.gauges[i].fn = fn
			return
		}
	}
	r.gauges = append(r.gauges, gauge{name: name, fn: fn})
}

// Snapshot returns the registry's state as a JSON-friendly map — the
// value served at /debug/vars under the "nra" key.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	out := map[string]any{
		"queries":        r.queries.Load(),
		"query_errors":   r.queryErrors.Load(),
		"cancellations":  r.cancellations.Load(),
		"slow_queries":   r.slowQueries.Load(),
		"spills":         r.spills.Load(),
		"spill_bytes":    r.spillBytes.Load(),
		"query_time_ns":  r.queryNanos.Load(),
		"qerror_count":   r.qerr.Count(),
		"qerror_max":     r.qerr.Max(),
		"qerror_p90":     r.qerr.Quantile(0.9),
		"qerror_buckets": r.qerr.Buckets(),
	}
	ops := make(map[string]OpMetrics)
	r.mu.Lock()
	for k, m := range r.ops {
		ops[k] = *m
	}
	gauges := append([]gauge(nil), r.gauges...)
	r.mu.Unlock()
	// Poll gauges outside the lock: their callbacks reach into other
	// subsystems' state and must not nest under the registry mutex.
	for _, g := range gauges {
		out[g.name] = g.fn()
	}
	out["operators"] = ops
	return out
}

// MetricsText renders the snapshot as sorted "name value" lines — the
// plain-text body served at /debug/metrics.
func (r *Registry) MetricsText() string {
	snap := r.Snapshot()
	if snap == nil {
		return ""
	}
	var b strings.Builder
	keys := make([]string, 0, len(snap))
	for k := range snap {
		if k == "operators" || k == "qerror_buckets" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "nra_%s %v\n", k, snap[k])
	}
	ops := snap["operators"].(map[string]OpMetrics)
	kinds := make([]string, 0, len(ops))
	for k := range ops {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		m := ops[k]
		fmt.Fprintf(&b, "nra_op_calls{kind=%q} %d\n", k, m.Calls)
		fmt.Fprintf(&b, "nra_op_rows_in{kind=%q} %d\n", k, m.RowsIn)
		fmt.Fprintf(&b, "nra_op_rows_out{kind=%q} %d\n", k, m.RowsOut)
		fmt.Fprintf(&b, "nra_op_time_ns{kind=%q} %d\n", k, int64(m.Time))
		fmt.Fprintf(&b, "nra_op_spills{kind=%q} %d\n", k, m.Spills)
	}
	return b.String()
}

// Publish exports the registry under the expvar name "nra". expvar
// panics on duplicate names, so publication happens at most once per
// registry; only the debug endpoint (and tests via expvar.Get) need it —
// in-process readers use Snapshot directly.
func (r *Registry) Publish() {
	r.publishOnce.Do(func() {
		name := "nra"
		if r != defaultRegistry {
			name = fmt.Sprintf("nra-%p", r)
		}
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}
