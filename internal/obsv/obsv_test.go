package obsv

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", KindScan)
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil", sp)
	}
	if tr.Current() != nil {
		t.Fatal("nil tracer Current != nil")
	}
	if tr.Finish() != nil || tr.Snapshot() != nil {
		t.Fatal("nil tracer Finish/Snapshot != nil")
	}
	// Every Span method must be a no-op on nil.
	sp.End()
	sp.SetKind(KindSort)
	sp.SetEst(1)
	sp.AddRowsIn(1)
	sp.AddRowsOut(1)
	sp.AddBytes(1)
	sp.NoteSpill(1)
	sp.EnsureWorkers(4)
	sp.Morsel(0)
}

func TestSpanStack(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("a", KindJoin)
	b := tr.Start("b", KindScan)
	if tr.Current() != b {
		t.Fatal("current != innermost open span")
	}
	b.End()
	if tr.Current() != a {
		t.Fatal("ending the innermost span must pop to its parent")
	}
	c := tr.Start("c", KindScan)
	c.AddRowsOut(7)
	c.End()
	a.End()
	rec := tr.Finish()
	if rec.Kind != KindQuery || len(rec.Children) != 1 {
		t.Fatalf("root = %q with %d children, want query/1", rec.Kind, len(rec.Children))
	}
	ra := rec.Children[0]
	if ra.Op != "a" || len(ra.Children) != 2 {
		t.Fatalf("span a = %q with %d children, want a/2", ra.Op, len(ra.Children))
	}
	if ra.Children[0].Op != "b" || ra.Children[1].Op != "c" {
		t.Fatalf("children = %q,%q, want b,c", ra.Children[0].Op, ra.Children[1].Op)
	}
	if ra.Children[1].RowsOut != 7 {
		t.Fatalf("c rows out = %d, want 7", ra.Children[1].RowsOut)
	}
}

func TestOutOfOrderEnd(t *testing.T) {
	// An error path may end an ancestor while a descendant is still open:
	// the descendant must be closed too, and the stack must stay sane.
	tr := NewTracer()
	a := tr.Start("a", KindJoin)
	tr.Start("b", KindScan) // never explicitly ended
	a.End()
	if cur := tr.Current(); cur == nil || cur.op != "query" {
		t.Fatalf("current after ancestor End = %v, want root", cur)
	}
	rec := tr.Finish()
	if got := rec.Children[0].Children[0]; got.Op != "b" || got.Elapsed < 0 {
		t.Fatalf("descendant span not closed properly: %+v", got)
	}
}

func TestFinishIdempotent(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("a", KindScan)
	sp.AddRowsOut(3)
	r1 := tr.Finish()
	time.Sleep(time.Millisecond)
	r2 := tr.Finish()
	if r1.Children[0].Elapsed != r2.Children[0].Elapsed {
		t.Fatalf("Finish not idempotent: %v vs %v", r1.Children[0].Elapsed, r2.Children[0].Elapsed)
	}
	if r2.Children[0].RowsOut != 3 {
		t.Fatalf("rows lost on re-snapshot: %d", r2.Children[0].RowsOut)
	}
}

func TestWaterfall(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("scan r", KindScan)
	sp.AddRowsIn(100)
	sp.AddRowsOut(42)
	sp.NoteSpill(4096)
	sp.EnsureWorkers(2)
	sp.Morsel(0)
	sp.Morsel(1)
	sp.End()
	out := Waterfall(tr.Finish())
	for _, want := range []string{"operator", "query", "scan r", "42", "1 spills (4096 B)", "morsels=[1 1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	if got := Waterfall(nil); got != "(no trace recorded)\n" {
		t.Errorf("Waterfall(nil) = %q", got)
	}
}

func TestFindAndWalk(t *testing.T) {
	tr := NewTracer()
	tr.Start("a", KindJoin).End()
	tr.Start("b", KindSort).End()
	rec := tr.Finish()
	if s := rec.Find(KindSort); s == nil || s.Op != "b" {
		t.Fatalf("Find(sort) = %v", s)
	}
	var ops []string
	rec.Walk(func(s *SpanRecord) { ops = append(ops, s.Op) })
	if len(ops) != 3 || ops[0] != "query" || ops[1] != "a" || ops[2] != "b" {
		t.Fatalf("walk order = %v", ops)
	}
}

func TestSlowLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	log := NewSlowLog(&buf)
	tr := NewTracer()
	tr.Start("scan r", KindScan).End()
	entry := &SlowLogEntry{
		Time:       time.Now().UTC(),
		Query:      "select * from r",
		DurationMS: 12.5,
		Plan:       "plan text",
		PeakBytes:  1024,
		Spills:     1,
		SpillBytes: 4096,
		Trace:      tr.Finish(),
	}
	if err := log.Record(entry); err != nil {
		t.Fatal(err)
	}
	if err := log.Record(&SlowLogEntry{Query: "second", Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSlowLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d entries, want 2", len(got))
	}
	e := got[0]
	if e.Query != entry.Query || e.DurationMS != entry.DurationMS ||
		e.PeakBytes != entry.PeakBytes || e.SpillBytes != entry.SpillBytes {
		t.Fatalf("round-trip mismatch: %+v", e)
	}
	if e.Trace == nil || e.Trace.Kind != KindQuery || e.Trace.Children[0].Op != "scan r" {
		t.Fatalf("trace did not round-trip: %+v", e.Trace)
	}
	if got[1].Error != "boom" {
		t.Fatalf("error field did not round-trip: %+v", got[1])
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.NoteQuery(10*time.Millisecond, nil, false)
	r.NoteQuery(20*time.Millisecond, errors.New("x"), true)
	r.NoteQuery(time.Millisecond, wrapCanceled{}, false)

	tr := NewTracer()
	sp := tr.Start("scan r", KindScan)
	sp.AddRowsIn(100)
	sp.AddRowsOut(50)
	sp.NoteSpill(2048)
	sp.End()
	r.ObserveTrace(tr.Finish())
	r.ObserveQError(4)

	snap := r.Snapshot()
	if snap["queries"].(int64) != 3 {
		t.Fatalf("queries = %v", snap["queries"])
	}
	if snap["query_errors"].(int64) != 1 {
		t.Fatalf("query_errors = %v", snap["query_errors"])
	}
	if snap["cancellations"].(int64) != 1 {
		t.Fatalf("cancellations = %v", snap["cancellations"])
	}
	if snap["slow_queries"].(int64) != 1 {
		t.Fatalf("slow_queries = %v", snap["slow_queries"])
	}
	if snap["spills"].(int64) != 1 || snap["spill_bytes"].(int64) != 2048 {
		t.Fatalf("spills = %v/%v", snap["spills"], snap["spill_bytes"])
	}
	ops := snap["operators"].(map[string]OpMetrics)
	if m := ops[KindScan]; m.Calls != 1 || m.RowsIn != 100 || m.RowsOut != 50 {
		t.Fatalf("scan metrics = %+v", m)
	}
	text := r.MetricsText()
	for _, want := range []string{"nra_queries 3", "nra_cancellations 1", `nra_op_calls{kind="scan"} 1`} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics text missing %q:\n%s", want, text)
		}
	}
}

// wrapCanceled mimics an operator error wrapping context.Canceled.
type wrapCanceled struct{}

func (wrapCanceled) Error() string { return "query canceled" }
func (wrapCanceled) Unwrap() error { return context.Canceled }

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.NoteQuery(time.Microsecond, nil, false)
				tr := NewTracer()
				sp := tr.Start("scan r", KindScan)
				sp.AddRowsOut(1)
				sp.End()
				r.ObserveTrace(tr.Finish())
				r.ObserveQError(2)
				_ = r.Snapshot()
				_ = r.MetricsText()
			}
		}()
	}
	wg.Wait()
	if n := r.Snapshot()["queries"].(int64); n != 1600 {
		t.Fatalf("queries = %d, want 1600", n)
	}
}
