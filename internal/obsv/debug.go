package obsv

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugHandler returns the HTTP mux behind the opt-in debug endpoint:
// expvar at /debug/vars (including the "nra" registry snapshot), the
// plain-text registry dump at /debug/metrics, and the standard
// net/http/pprof profiles under /debug/pprof/. The handlers are
// registered on a private mux, never on http.DefaultServeMux, so
// importing this package does not widen the attack surface of any other
// server in the process.
func DebugHandler(r *Registry) http.Handler {
	r.Publish()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, r.MetricsText())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	index := func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" && req.URL.Path != "/debug/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "nra debug endpoint\n\n/debug/vars\n/debug/metrics\n/debug/pprof/\n")
	}
	mux.HandleFunc("/", index)
	mux.HandleFunc("/debug/", index)
	return mux
}

// ServeDebug binds addr and serves the debug endpoint in a background
// goroutine, returning the bound address (useful with ":0") and a
// shutdown func. The endpoint exposes profiling data and must only be
// bound to trusted interfaces — see docs/OBSERVABILITY.md.
func ServeDebug(addr string, r *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugHandler(r), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
