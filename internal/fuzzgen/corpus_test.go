package fuzzgen

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestCorpusRegressions replays every checked-in reproducer under the
// full differential matrix. Each testdata/corpus/*.sql file records the
// catalog seed and NULL fraction it failed under as header comments; the
// catalog is regenerated from those parameters, so a corpus entry is a
// complete, deterministic regression test for a historical failure.
func TestCorpusRegressions(t *testing.T) {
	files, err := filepath.Glob("testdata/corpus/*.sql")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty regression corpus: expected testdata/corpus/*.sql")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			seed, nulls, src, err := readCorpusFile(f)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.NullFraction = nulls
			cat, err := NewCatalog(seed, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckSQL(src, cat, nulls == 0); err != nil {
				t.Fatalf("corpus regression (seed %d, nulls %g):\n  %s\n%v", seed, nulls, src, err)
			}
		})
	}
}

// readCorpusFile parses a corpus entry: "-- seed: N" and "-- nulls: F"
// headers followed by the SQL text (other "--" lines are free comments).
func readCorpusFile(path string) (seed int64, nulls float64, src string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, "", err
	}
	seed = -1
	var sqlLines []string
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "-- seed:"):
			seed, err = strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(trimmed, "-- seed:")), 10, 64)
			if err != nil {
				return 0, 0, "", err
			}
		case strings.HasPrefix(trimmed, "-- nulls:"):
			nulls, err = strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(trimmed, "-- nulls:")), 64)
			if err != nil {
				return 0, 0, "", err
			}
		case strings.HasPrefix(trimmed, "--"), trimmed == "":
			// free comment
		default:
			sqlLines = append(sqlLines, trimmed)
		}
	}
	if seed < 0 {
		return 0, 0, "", errMissingSeed(path)
	}
	return seed, nulls, strings.Join(sqlLines, " "), nil
}

type errMissingSeed string

func (e errMissingSeed) Error() string { return "corpus file missing '-- seed:' header: " + string(e) }
