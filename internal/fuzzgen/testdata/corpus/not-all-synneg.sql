-- seed: 11
-- nulls: 0.18
-- NOT (theta ALL) folds to the dual SOME; 2VL must treat it as the
-- negated universal, not as a strict existential.
select t1.x from C t1 where not t1.y = all (select t2.w from B t2 where t2.x = t1.x)
