-- seed: 17
-- nulls: 0.18
-- Root DISTINCT with DISTINCT under the subquery: the bag/set-aware
-- positive-rewrite gate may elide inner duplicate elimination only when
-- the output really is a set.
select distinct t1.x from A t1 where t1.x in (select distinct t2.y from B t2 where t2.w = t1.w and exists (select * from C t3 where t3.x = t2.x))
