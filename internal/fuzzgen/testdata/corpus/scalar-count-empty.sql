-- seed: 13
-- nulls: 0.18
-- Scalar COUNT(*) over an empty correlated child is 0, not NULL: the
-- comparison must see the zero row every aggregate query produces.
select t1.w from A t1 where t1.w >= (select count(*) from B t2 where t2.y = t1.x)
