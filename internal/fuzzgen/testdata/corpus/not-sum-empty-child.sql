-- seed: 5019
-- nulls: 0.18
-- Found by the fuzzer (seed 5019, NULL-free lane): SUM over an empty
-- correlated child is NULL even on NULL-free base data, so
-- NOT (x > (SELECT SUM ...)) keeps the row under 2VL and drops it under
-- 3VL. Every engine must still match its own oracle exactly.
select t1.x from B t1 where not t1.x > (select sum(t2.x) from C t2 where t2.w < t1.y)
