-- seed: 5019
-- nulls: 0
-- Found by the fuzzer (seed 5019, NULL-free lane): SUM over an empty
-- correlated child is NULL even on NULL-free base data. 2VL now keeps
-- 3VL's Unknown for comparisons against that empty-aggregate NULL (the
-- one NULL the base data never held), so NOT (x > (SELECT SUM ...))
-- drops the row under both logics and 2VL ≡ 3VL holds unconditionally
-- on NULL-free data — which the nulls: 0 lane asserts.
select t1.x from B t1 where not t1.x > (select sum(t2.x) from C t2 where t2.w < t1.y)
