-- seed: 7
-- nulls: 0.18
-- NOT (theta SOME): the analyzer folds it to the dual ALL; under 2VL the
-- fold is unsound without the syntactic-negation parity bit.
select t1.w from B t1 where not t1.x <= some (select t2.y from A t2 where t2.x = t1.w)
