-- seed: 3
-- nulls: 0.18
-- NOT IN whose child produces NULL members: 3VL must drop the outer
-- tuple (x <> NULL is UNKNOWN), 2VL must keep it when no member equals.
select t1.x from A t1 where t1.x not in (select t2.y from B t2)
