-- seed: 8
-- nulls: 0
-- NULL-free database: 2VL and 3VL are the same logic, so the 2VL
-- antijoin fast path must agree with the 3VL linking operators exactly.
select t1.y from B t1 where t1.y not in (select t2.x from A t2 where t2.w = t1.w) and not exists (select * from C t3 where t3.y = t1.x)
