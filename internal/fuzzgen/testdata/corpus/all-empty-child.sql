-- seed: 5
-- nulls: 0.18
-- Correlated theta-ALL over a possibly-empty child: vacuous truth must
-- survive the padding-aware linking selection in every mode.
select t1.y from A t1 where t1.y > all (select t2.x from C t2 where t2.w = t1.w)
