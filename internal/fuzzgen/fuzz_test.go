package fuzzgen

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// envInt reads an integer environment knob, falling back to def when the
// variable is unset or malformed.
func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestFuzzDifferential is the main fuzzing loop: NRA_FUZZ_QUERIES random
// nested queries (default 250; CI runs 1000), each checked across the
// full differential matrix — reference oracle vs four execution modes vs
// the native baseline, under both 3VL and 2VL, with every fourth seed on
// NULL-free data where 2VL must equal 3VL exactly. A failure shrinks to
// a minimal query, prints the reproducing seed, and (when
// NRA_FUZZ_ARTIFACT_DIR is set) writes a corpus-format artifact file.
// NRA_FUZZ_SECONDS soft-bounds wall time; truncation is logged.
func TestFuzzDifferential(t *testing.T) {
	queries := envInt("NRA_FUZZ_QUERIES", 250)
	if testing.Short() && queries > 60 {
		queries = 60
	}
	secs := envInt("NRA_FUZZ_SECONDS", 0)
	baseSeed := int64(envInt("NRA_FUZZ_SEED", 1))
	var deadline time.Time
	if secs > 0 {
		deadline = time.Now().Add(time.Duration(secs) * time.Second)
	}
	checked := 0
	for i := 0; i < queries; i++ {
		if secs > 0 && time.Now().After(deadline) {
			t.Logf("fuzz: time box of %ds hit — truncated to %d of %d queries", secs, checked, queries)
			break
		}
		runSeed(t, baseSeed+int64(i))
		checked++
	}
	t.Logf("fuzz: %d queries checked (base seed %d, 5-mode matrix, 3VL+2VL)", checked, baseSeed)
}

// runSeed generates and differentially checks the query at one seed.
// The seed determines the catalog, the query, and the NULL regime.
func runSeed(t *testing.T, seed int64) {
	t.Helper()
	cfg := DefaultConfig()
	nullFree := seed%4 == 0
	if nullFree {
		cfg.NullFraction = 0
	}
	cat, err := NewCatalog(seed, cfg)
	if err != nil {
		t.Fatalf("seed %d: catalog: %v", seed, err)
	}
	spec := NewGen(seed, cfg).Query()
	if err := Check(spec, cat, nullFree); err != nil {
		min := Shrink(spec, cat, nullFree)
		writeArtifact(t, seed, cfg, spec, min)
		t.Fatalf("fuzz failure at seed %d (nulls=%g)\n  original:  %s\n  minimized: %s\n%v\n"+
			"reproduce: NRA_FUZZ_SEED=%d NRA_FUZZ_QUERIES=1 go test ./internal/fuzzgen -run TestFuzzDifferential\n"+
			"then check the minimized query into internal/fuzzgen/testdata/corpus/ (see docs/FUZZING.md)",
			seed, cfg.NullFraction, spec.SQL(), min.SQL(), Check(min, cat, nullFree), seed)
	}
}

// writeArtifact saves a corpus-format reproducer for CI to upload.
func writeArtifact(t *testing.T, seed int64, cfg Config, spec, min *Spec) {
	t.Helper()
	dir := os.Getenv("NRA_FUZZ_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	body := fmt.Sprintf("-- seed: %d\n-- nulls: %g\n-- minimized from: %s\n%s\n",
		seed, cfg.NullFraction, spec.SQL(), min.SQL())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("seed-%d.sql", seed))
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Logf("artifact: %v", err)
		return
	}
	t.Logf("failing seed written to %s", path)
}

// TestTwoVLMatchesThreeVLNullFree pins the semantics property behind the
// 2VL mode: on databases without NULLs, two-valued and three-valued
// logic are the same logic, so every engine must produce identical
// results under both — including the antijoin fast path the 2VL planner
// takes for NOT IN / NOT EXISTS / θ ALL.
func TestTwoVLMatchesThreeVLNullFree(t *testing.T) {
	iters := 80
	if testing.Short() {
		iters = 20
	}
	cfg := DefaultConfig()
	cfg.NullFraction = 0
	for i := 0; i < iters; i++ {
		seed := int64(5_000 + i)
		cat, err := NewCatalog(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: catalog: %v", seed, err)
		}
		spec := NewGen(seed, cfg).Query()
		if err := Check(spec, cat, true); err != nil {
			min := Shrink(spec, cat, true)
			t.Fatalf("seed %d: 2VL/3VL divergence on NULL-free data\n  minimized: %s\n%v",
				seed, min.SQL(), err)
		}
	}
}

// TestShrinkProducesValidSQL pins the shrinker's invariant: every
// structural reduction of a generated spec still parses, analyzes and
// evaluates — so a minimized reproducer is always a runnable query.
func TestShrinkProducesValidSQL(t *testing.T) {
	cfg := DefaultConfig()
	for i := 0; i < 20; i++ {
		seed := int64(9_000 + i)
		cat, err := NewCatalog(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: catalog: %v", seed, err)
		}
		spec := NewGen(seed, cfg).Query()
		for _, cand := range reductions(spec) {
			if err := Check(cand, cat, false); err != nil {
				t.Fatalf("seed %d: reduction of a passing spec fails\n  %s\n%v", seed, cand.SQL(), err)
			}
		}
	}
}
