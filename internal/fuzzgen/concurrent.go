package fuzzgen

import (
	"fmt"
	"math/rand"

	"nra/internal/catalog"
	"nra/internal/core"
	"nra/internal/naive"
	"nra/internal/sql"
	"nra/internal/value"
)

// Mutator applies seeded random DML — inserts, deletes, updates — to
// the fuzzing catalog through the copy-on-write mutation API. It is the
// writer side of the concurrent-DML differential mode: each Mutator is
// deterministic in its seed, uses a disjoint primary-key range for
// inserts, and only ever generates legal operations (deleting or
// updating an absent key is a no-op, not an error). Inserts are bounded:
// once maxLive of a mutator's rows are alive it recycles old ones
// instead, so tables cannot grow without bound while the (superlinear)
// reference oracle races it.
type Mutator struct {
	rng  *rand.Rand
	next int      // next fresh insert key
	live []insKey // rows inserted by this mutator and not yet deleted
}

// insKey locates one row this mutator inserted.
type insKey struct {
	table string
	k     int
}

// maxLive caps a mutator's alive inserted rows.
const maxLive = 25

// NewMutator returns a mutator whose inserts use the PK range
// [10000·(lane+1), ...) so concurrent mutators never collide.
func NewMutator(seed int64, lane int) *Mutator {
	return &Mutator{rng: rand.New(rand.NewSource(seed)), next: 10_000 * (lane + 1)}
}

// Step applies one random DML operation to a random fuzz table.
func (m *Mutator) Step(cat *catalog.Catalog) error {
	table := genTables[m.rng.Intn(len(genTables))]
	cell := func() value.Value {
		if m.rng.Float64() < 0.2 {
			return value.Null
		}
		return value.Int(int64(m.rng.Intn(6)))
	}
	op := m.rng.Intn(3)
	if op == 0 && len(m.live) >= maxLive {
		op = 1
	}
	switch op {
	case 0: // insert a fresh row
		row := []value.Value{value.Int(int64(m.next)), cell(), cell(), cell()}
		if _, err := cat.Insert(table, [][]value.Value{row}); err != nil {
			return err
		}
		m.live = append(m.live, insKey{table, m.next})
		m.next++
		return nil
	case 1: // delete: one of our live inserts, else a base row
		if len(m.live) > 0 && m.rng.Intn(3) > 0 {
			i := m.rng.Intn(len(m.live))
			e := m.live[i]
			m.live = append(m.live[:i], m.live[i+1:]...)
			_, err := cat.Delete(e.table, []value.Value{value.Int(int64(e.k))})
			return err
		}
		_, err := cat.Delete(table, []value.Value{value.Int(int64(m.rng.Intn(12)))})
		return err
	default: // update one non-key column of a (possibly absent) row
		col := []string{"w", "x", "y"}[m.rng.Intn(3)]
		k := value.Int(int64(m.rng.Intn(12)))
		_, err := cat.Update(table, []value.Value{k}, []string{col}, [][]value.Value{{cell()}})
		return err
	}
}

// CheckSnapshot differentially checks one query against a pinned
// snapshot while writers may be committing concurrently: the reference
// evaluator bound to the snapshot is the oracle for every execution
// mode bound to the same snapshot, and the whole result is re-derived
// on a Materialize()d deep copy — a frozen database sharing no
// structures with the live catalog. Divergence from the frozen copy is
// a snapshot-isolation bug; divergence between modes is an engine bug.
func CheckSnapshot(src string, snap *catalog.Snapshot) error {
	q, err := analyzeOn(src, snap)
	if err != nil {
		return err
	}
	want, err := naive.Evaluate(q)
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	for _, m := range Modes() {
		got, err := core.Execute(q, m.Opts)
		if err != nil {
			return fmt.Errorf("%s: %w", m.Name, err)
		}
		if !got.EqualSet(want) {
			return mismatch(m.Name, want, got)
		}
	}
	frozen, err := snap.Materialize()
	if err != nil {
		return fmt.Errorf("materialize: %w", err)
	}
	q2, err := analyzeOn(src, frozen)
	if err != nil {
		return fmt.Errorf("frozen rebind: %w", err)
	}
	oracle, err := naive.Evaluate(q2)
	if err != nil {
		return fmt.Errorf("frozen reference: %w", err)
	}
	if !oracle.EqualSet(want) {
		return mismatch("frozen-oracle", oracle, want)
	}
	return nil
}

// analyzeOn parses and binds src against an explicit catalog view (the
// live catalog, a pinned snapshot, or a frozen copy).
func analyzeOn(src string, res sql.Resolver) (*sql.Query, error) {
	sel, err := sql.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	q, err := sql.Analyze(sel, res)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	return q, nil
}
