package fuzzgen

import (
	"math/rand"

	"nra/internal/catalog"
	"nra/internal/relation"
)

// NewCatalog builds the three-table fuzzing database (A, B, C; columns
// k, w, x, y with k the row-index primary key) from a seed. Non-key
// cells are NULL with probability cfg.NullFraction; when cfg.Skew is
// set, ~35% of the remaining cells land on one hot value so joins see
// both empty and heavily duplicated match sets. Statistics are collected
// so the cost-based mode plans from fresh estimates.
func NewCatalog(seed int64, cfg Config) (*catalog.Catalog, error) {
	rng := rand.New(rand.NewSource(seed))
	cat := catalog.New()
	if cfg.MaxRows < 3 {
		cfg.MaxRows = 3
	}
	for _, name := range genTables {
		rows := 3 + rng.Intn(cfg.MaxRows-2)
		cols := []string{"k", "w", "x", "y"}
		var data [][]any
		for r := 0; r < rows; r++ {
			row := []any{r} // k: unique non-NULL PK
			for c := 1; c < len(cols); c++ {
				switch {
				case rng.Float64() < cfg.NullFraction:
					row = append(row, nil)
				case cfg.Skew && rng.Float64() < 0.35:
					row = append(row, 2) // hot value
				default:
					row = append(row, rng.Intn(6))
				}
			}
			data = append(data, row)
		}
		rel, err := relation.FromRows(name, cols, data...)
		if err != nil {
			return nil, err
		}
		if _, err := cat.Create(name, rel, "k"); err != nil {
			return nil, err
		}
	}
	cat.AnalyzeAll()
	return cat, nil
}
