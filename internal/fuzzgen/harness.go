package fuzzgen

import (
	"errors"
	"fmt"

	"nra/internal/catalog"
	"nra/internal/core"
	"nra/internal/naive"
	"nra/internal/native"
	"nra/internal/relation"
	"nra/internal/sql"
)

// Mode is one engine configuration of the differential matrix.
type Mode struct {
	Name string
	Opts core.Options
}

// Modes returns the five execution modes every generated query is
// checked under: heuristic serial, vectorized batch-at-a-time, 4-way
// parallel, memory-governed with a 64 KiB budget (forcing spills), and
// cost-based planning from fresh statistics. Results must be identical
// across all of them.
func Modes() []Mode {
	serial := core.Optimized()
	serial.UseStats, serial.CostBased = false, false
	vectorized := serial
	vectorized.Vectorized = true
	parallel := serial
	parallel.Parallelism = 4
	governed := serial
	governed.MemoryBudget = 64 << 10
	return []Mode{
		{"serial", serial},
		{"vectorized", vectorized},
		{"parallel-4", parallel},
		{"governed-64K", governed},
		{"cost-based", core.Optimized()},
	}
}

// CheckSQL runs one query through the full differential matrix against
// cat: the reference evaluator is the oracle; every execution mode (and,
// where its planner supports the shape, the native baseline) must match
// it tuple-for-tuple under 3VL, and the 2VL reference evaluator under
// 2VL. nullFree additionally asserts 2VL ≡ 3VL, which is sound only when
// cat holds no NULLs. It returns nil when every engine agrees.
func CheckSQL(src string, cat *catalog.Catalog, nullFree bool) error {
	sel, err := sql.Parse(src)
	if err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	q, err := sql.Analyze(sel, cat)
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	want, err := naive.Evaluate(q)
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	for _, m := range Modes() {
		got, err := core.Execute(q, m.Opts)
		if err != nil {
			return fmt.Errorf("%s: %w", m.Name, err)
		}
		if !got.EqualSet(want) {
			return mismatch(m.Name, want, got)
		}
	}
	if ex, err := native.New(q); err == nil {
		got, err := ex.Execute()
		if err != nil {
			return fmt.Errorf("native: %w", err)
		}
		if !got.EqualSet(want) {
			return mismatch("native", want, got)
		}
	} else if !errors.Is(err, native.ErrUnsupported) {
		return fmt.Errorf("native: %w", err)
	}
	want2, err := naive.EvaluateTwoValued(q)
	if err != nil {
		return fmt.Errorf("reference-2vl: %w", err)
	}
	for _, m := range Modes() {
		o := m.Opts
		o.TwoValuedLogic = true
		got, err := core.Execute(q, o)
		if err != nil {
			return fmt.Errorf("%s-2vl: %w", m.Name, err)
		}
		if !got.EqualSet(want2) {
			return mismatch(m.Name+"-2vl", want2, got)
		}
	}
	if nullFree && !want2.EqualSet(want) {
		return mismatch("2vl-vs-3vl(null-free)", want, want2)
	}
	return nil
}

// Check runs the differential matrix for one generated spec.
func Check(spec *Spec, cat *catalog.Catalog, nullFree bool) error {
	return CheckSQL(spec.SQL(), cat, nullFree)
}

func mismatch(mode string, want, got *relation.Relation) error {
	return fmt.Errorf("%s: result differs\noracle (%d rows):\n%s%s (%d rows):\n%s",
		mode, want.Len(), want, mode, got.Len(), got)
}

// Shrink greedily minimises a failing spec: it tries structural
// reductions — drop a subquery link, drop a local or correlated
// predicate, unwrap a syntactic NOT, clear a DISTINCT — and keeps any
// single reduction under which the differential check still fails,
// repeating until no reduction reproduces the failure. The result is
// the minimal spec whose SQL goes into the regression corpus.
func Shrink(spec *Spec, cat *catalog.Catalog, nullFree bool) *Spec {
	cur := spec.clone()
	for round := 0; round < 200; round++ {
		improved := false
		for _, cand := range reductions(cur) {
			if Check(cand, cat, nullFree) != nil {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// blockList returns the spec's blocks in depth-first order; clones of
// the same spec enumerate identically, so an index addresses the same
// block across copies.
func blockList(b *Block) []*Block {
	out := []*Block{b}
	for i := range b.Links {
		out = append(out, blockList(b.Links[i].Child)...)
	}
	return out
}

// reductions enumerates every single-step structural reduction of s,
// biggest cuts (dropping whole subqueries) first.
func reductions(s *Spec) []*Spec {
	var out []*Spec
	at := func(bi int, mut func(*Block)) {
		c := s.clone()
		mut(blockList(c.Root)[bi])
		out = append(out, c)
	}
	for bi, b := range blockList(s.Root) {
		for li := range b.Links {
			li := li
			at(bi, func(cb *Block) { cb.Links = append(cb.Links[:li:li], cb.Links[li+1:]...) })
		}
		for li := range b.Links {
			if b.Links[li].Not {
				li := li
				at(bi, func(cb *Block) { cb.Links[li].Not = false })
			}
		}
		for ci := range b.Locals {
			ci := ci
			at(bi, func(cb *Block) { cb.Locals = append(cb.Locals[:ci:ci], cb.Locals[ci+1:]...) })
		}
		for ci := range b.Corrs {
			ci := ci
			at(bi, func(cb *Block) { cb.Corrs = append(cb.Corrs[:ci:ci], cb.Corrs[ci+1:]...) })
		}
		if b.Distinct {
			at(bi, func(cb *Block) { cb.Distinct = false })
		}
	}
	return out
}
