package fuzzgen

import (
	"sync"
	"testing"
)

// TestFuzzConcurrentDML is the concurrent-DML differential mode: two
// seeded mutators commit random inserts/deletes/updates through the
// copy-on-write catalog API while two readers pin snapshots, run
// generated nested queries on them across the full execution-mode
// matrix, and re-derive each result on a frozen (deep-copied) oracle of
// the same snapshot. Any divergence — a reader seeing a torn mutation,
// a mode disagreeing with the reference, a snapshot drifting from its
// frozen copy — fails with the seed and query. Run under -race in CI;
// NRA_FUZZ_DML_SEEDS scales the number of rounds.
//
// Clean-soak note: as of 2026-08-08 this mode has produced no
// discrepancy across seeds 20000+ at the default and CI settings, so
// the corpus gains no entry from it yet; a failure here should be
// minimized by hand (Shrink works on the Spec) and checked into
// internal/fuzzgen/testdata/corpus/ like any other reproducer.
func TestFuzzConcurrentDML(t *testing.T) {
	rounds := envInt("NRA_FUZZ_DML_SEEDS", 4)
	queriesPerReader := 25
	if testing.Short() {
		rounds, queriesPerReader = 1, 10
	}
	const (
		writerCount = 2
		readerCount = 2
	)
	for s := 0; s < rounds; s++ {
		seed := int64(20_000 + s)
		cfg := DefaultConfig()
		cfg.MaxDepth = 2 // the oracle is superlinear in depth and runs 11× per query here
		cat, err := NewCatalog(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: catalog: %v", seed, err)
		}

		stop := make(chan struct{})
		var writers sync.WaitGroup
		for w := 0; w < writerCount; w++ {
			writers.Add(1)
			go func(w int) {
				defer writers.Done()
				m := NewMutator(seed*10+int64(w), w)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := m.Step(cat); err != nil {
						t.Errorf("seed %d writer %d: %v", seed, w, err)
						return
					}
				}
			}(w)
		}

		var readers sync.WaitGroup
		for r := 0; r < readerCount; r++ {
			readers.Add(1)
			go func(r int) {
				defer readers.Done()
				gen := NewGen(seed+int64(r)*7_919, cfg)
				for i := 0; i < queriesPerReader; i++ {
					spec := gen.Query()
					snap := cat.Snapshot()
					if err := CheckSnapshot(spec.SQL(), snap); err != nil {
						t.Errorf("seed %d reader %d epoch %d:\n  %s\n%v",
							seed, r, snap.Epoch(), spec.SQL(), err)
						return
					}
				}
			}(r)
		}

		readers.Wait()
		close(stop)
		writers.Wait()
	}
}
