// Package fuzzgen is a seeded, grammar-driven generator of random nested
// SQL queries plus the differential harness that cross-checks every
// execution engine against the reference evaluator.
//
// The generator produces structured query specs — not strings — covering
// all six linking operators (EXISTS, NOT EXISTS, IN, NOT IN, θ SOME,
// θ ALL) plus scalar aggregate comparisons, at arbitrary nesting depth,
// with correlated and uncorrelated children, syntactic NOT wrapping,
// DISTINCT at the root and under subqueries, over NULL-bearing skewed
// data. Because specs are trees, a failing query shrinks structurally
// (see Shrink) to a minimal reproducer identified by its seed.
//
// See docs/FUZZING.md for the grammar, the execution-mode matrix, and
// the corpus workflow for failing seeds.
package fuzzgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generator and the generated data.
type Config struct {
	// MaxDepth bounds subquery nesting (1 = a single level of children).
	MaxDepth int
	// NullFraction is the probability that a generated non-key cell is
	// NULL. Zero yields NULL-free data, where 2VL must equal 3VL.
	NullFraction float64
	// MaxRows bounds each generated table's cardinality.
	MaxRows int
	// Skew concentrates ~35% of non-NULL cells on one hot value, so
	// joins hit both empty and heavily duplicated match sets.
	Skew bool
}

// DefaultConfig is the standard fuzzing configuration: depth ≤ 3,
// NULL-bearing skewed data.
func DefaultConfig() Config {
	return Config{MaxDepth: 3, NullFraction: 0.18, MaxRows: 10, Skew: true}
}

// Spec is one generated query as a structural tree; SQL renders it.
type Spec struct {
	Root *Block
}

// Block is one query block: a table with local, correlated and linking
// predicates, and a select list of one column (or an aggregate of it).
type Block struct {
	Table    string
	Alias    string
	Distinct bool
	SelCol   string // unqualified select-list column
	Agg      string // "", "count(*)", "min", "max", "sum", "avg", "count"
	Star     bool   // SELECT * (children of EXISTS / NOT EXISTS)
	Locals   []Cond
	Corrs    []Cond
	Links    []Link
}

// Cond is one conjunct: Col θ RHS, where RHS is a literal (Locals) or a
// qualified outer column (Corrs).
type Cond struct {
	Col string
	Op  string
	RHS string
}

// Link is one subquery predicate attached to a block.
type Link struct {
	Kind    string // "exists", "not exists", "in", "not in", "some", "all", "scalar"
	Op      string // comparison operator for some/all/scalar
	Not     bool   // extra syntactic NOT wrapping the predicate
	LeftCol string // outer column compared against the child (all but exists)
	Child   *Block
}

var (
	genTables = []string{"A", "B", "C"}
	genCols   = []string{"w", "x", "y"}
	genOps    = []string{"=", "<>", "<", "<=", ">", ">="}
	genAggs   = []string{"count(*)", "min", "max", "sum", "avg", "count"}
	genKinds  = []string{"exists", "not exists", "in", "not in", "some", "all", "scalar"}
)

// Gen is a deterministic query generator: the same seed and config
// always produce the same sequence of specs.
type Gen struct {
	rng   *rand.Rand
	cfg   Config
	aggs  []string
	alias int
}

// NewGen returns a generator for the given seed. NULL-free configs draw
// from the full aggregate set: SUM/AVG/MIN/MAX over an *empty* child set
// yield NULL even on NULL-free base data, but every engine now keeps
// 3VL's Unknown for comparisons against an empty-aggregate NULL under
// 2VL, so the 2VL ≡ 3VL equivalence the NULL-free lane asserts holds
// unconditionally (see testdata/corpus/not-sum-empty-child.sql).
func NewGen(seed int64, cfg Config) *Gen {
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if cfg.MaxRows < 3 {
		cfg.MaxRows = 3
	}
	return &Gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg, aggs: genAggs}
}

func (g *Gen) nextAlias() string {
	g.alias++
	return fmt.Sprintf("t%d", g.alias)
}

func (g *Gen) col() string { return genCols[g.rng.Intn(len(genCols))] }
func (g *Gen) op() string  { return genOps[g.rng.Intn(len(genOps))] }

// Query generates one random nested query spec.
func (g *Gen) Query() *Spec {
	depth := 1 + g.rng.Intn(g.cfg.MaxDepth)
	root := g.block(nil, depth)
	root.Distinct = g.rng.Float64() < 0.4
	return &Spec{Root: root}
}

// block generates one query block. outer lists the aliases visible for
// correlation, nearest enclosing last.
func (g *Gen) block(outer []string, depth int) *Block {
	b := &Block{
		Table:  genTables[g.rng.Intn(len(genTables))],
		Alias:  g.nextAlias(),
		SelCol: g.col(),
	}
	for i := g.rng.Intn(2); i > 0; i-- {
		b.Locals = append(b.Locals, Cond{Col: g.col(), Op: g.op(), RHS: fmt.Sprint(g.rng.Intn(5))})
	}
	for _, o := range outer {
		if g.rng.Float64() < 0.6 {
			// =, <>, < keep join shapes varied without exploding output.
			b.Corrs = append(b.Corrs, Cond{Col: g.col(), Op: genOps[g.rng.Intn(3)], RHS: o + "." + g.col()})
		}
	}
	if depth > 0 {
		kids := 1
		if g.rng.Float64() < 0.25 {
			kids = 2 // tree query
		}
		visible := append(append([]string{}, outer...), b.Alias)
		for i := 0; i < kids; i++ {
			b.Links = append(b.Links, g.link(visible, depth-1))
		}
	}
	return b
}

func (g *Gen) link(outer []string, depth int) Link {
	l := Link{
		Kind:    genKinds[g.rng.Intn(len(genKinds))],
		Op:      g.op(),
		LeftCol: g.col(),
		Not:     g.rng.Float64() < 0.25,
	}
	l.Child = g.block(outer, depth)
	switch l.Kind {
	case "exists", "not exists":
		l.Child.Star = true
	case "scalar":
		// Scalar comparisons need an aggregate child.
		l.Child.Agg = g.aggs[g.rng.Intn(len(g.aggs))]
	default:
		// DISTINCT under a quantified subquery exercises the bag/set gate.
		l.Child.Distinct = g.rng.Float64() < 0.2
	}
	return l
}

// SQL renders the spec as the normalized SQL the parser accepts.
func (s *Spec) SQL() string { return s.Root.sql() }

func (b *Block) sql() string {
	var item string
	switch {
	case b.Star:
		item = "*"
	case b.Agg == "count(*)":
		item = "count(*)"
	case b.Agg != "":
		item = fmt.Sprintf("%s(%s.%s)", b.Agg, b.Alias, b.SelCol)
	default:
		item = b.Alias + "." + b.SelCol
	}
	distinct := ""
	if b.Distinct {
		distinct = "distinct "
	}
	q := fmt.Sprintf("select %s%s from %s %s", distinct, item, b.Table, b.Alias)
	var conj []string
	for _, c := range b.Locals {
		conj = append(conj, fmt.Sprintf("%s.%s %s %s", b.Alias, c.Col, c.Op, c.RHS))
	}
	for _, c := range b.Corrs {
		conj = append(conj, fmt.Sprintf("%s.%s %s %s", b.Alias, c.Col, c.Op, c.RHS))
	}
	for _, l := range b.Links {
		conj = append(conj, l.sql(b.Alias))
	}
	if len(conj) > 0 {
		q += " where " + strings.Join(conj, " and ")
	}
	return q
}

func (l Link) sql(alias string) string {
	child := l.Child.sql()
	left := alias + "." + l.LeftCol
	var s string
	switch l.Kind {
	case "exists", "not exists":
		s = fmt.Sprintf("%s (%s)", l.Kind, child)
	case "in", "not in":
		s = fmt.Sprintf("%s %s (%s)", left, l.Kind, child)
	case "some", "all":
		s = fmt.Sprintf("%s %s %s (%s)", left, l.Op, l.Kind, child)
	default: // scalar aggregate comparison
		s = fmt.Sprintf("%s %s (%s)", left, l.Op, child)
	}
	if l.Not {
		s = "not " + s
	}
	return s
}

// clone deep-copies a block tree (shrinking mutates copies).
func (b *Block) clone() *Block {
	c := *b
	c.Locals = append([]Cond(nil), b.Locals...)
	c.Corrs = append([]Cond(nil), b.Corrs...)
	c.Links = make([]Link, len(b.Links))
	for i, l := range b.Links {
		l.Child = l.Child.clone()
		c.Links[i] = l
	}
	return &c
}

// clone deep-copies the spec.
func (s *Spec) clone() *Spec { return &Spec{Root: s.Root.clone()} }
