// Package expr implements scalar and boolean expressions over tuples,
// evaluated under SQL's three-valued logic. Expressions are built by the
// SQL front end and by planners; operators compile them once against a
// schema and then evaluate the compiled form per tuple.
package expr

import (
	"fmt"

	"nra/internal/relation"
	"nra/internal/value"
)

// Expr is an expression tree node.
type Expr interface {
	// String renders the expression in SQL-ish syntax.
	String() string
	// Columns appends the names of all columns referenced to dst.
	Columns(dst []string) []string
	// compile resolves column references against env and returns an
	// evaluator over a tuple stack (innermost frame last).
	compile(env *Env) (evalFn, error)
}

type evalFn func(stack []relation.Tuple) (value.Value, error)

// Env is a compilation environment: a stack of schemas, outermost first.
// Column references resolve in the *innermost* frame that knows the name,
// which is exactly SQL's correlation rule for subqueries.
type Env struct {
	frames []*relation.Schema
}

// NewEnv builds an environment from schemas, outermost first.
func NewEnv(schemas ...*relation.Schema) *Env { return &Env{frames: schemas} }

// Push returns a new Env with one more (inner) frame.
func (e *Env) Push(s *relation.Schema) *Env {
	frames := make([]*relation.Schema, len(e.frames)+1)
	copy(frames, e.frames)
	frames[len(e.frames)] = s
	return &Env{frames: frames}
}

// resolve finds (frame, column) for a name, innermost first.
func (e *Env) resolve(name string) (frame, col int, ok bool) {
	for f := len(e.frames) - 1; f >= 0; f-- {
		if c := e.frames[f].ColIndex(name); c >= 0 {
			return f, c, true
		}
	}
	return 0, 0, false
}

// Compiled is a bound predicate/scalar ready for repeated evaluation.
type Compiled struct {
	fn     evalFn
	frames int
}

// Compile binds e against a single-schema environment. The returned
// Compiled evaluates against one tuple of that schema.
func Compile(e Expr, s *relation.Schema) (*Compiled, error) {
	return CompileEnv(e, NewEnv(s))
}

// CompileEnv binds e against a full environment (for correlated
// evaluation). Eval must then be given one tuple per frame, outermost
// first.
func CompileEnv(e Expr, env *Env) (*Compiled, error) {
	fn, err := e.compile(env)
	if err != nil {
		return nil, err
	}
	return &Compiled{fn: fn, frames: len(env.frames)}, nil
}

// Eval evaluates the compiled expression over a tuple stack.
func (c *Compiled) Eval(stack ...relation.Tuple) (value.Value, error) {
	if len(stack) != c.frames {
		return value.Null, fmt.Errorf("expr: evaluated with %d frames, compiled for %d", len(stack), c.frames)
	}
	return c.fn(stack)
}

// Truth evaluates the compiled expression as a predicate under 3VL.
func (c *Compiled) Truth(stack ...relation.Tuple) (value.Tri, error) {
	v, err := c.Eval(stack...)
	if err != nil {
		return value.Unknown, err
	}
	if v.IsNull() {
		return value.Unknown, nil
	}
	if v.Kind() != value.KindBool {
		return value.Unknown, fmt.Errorf("expr: predicate evaluated to non-boolean %s", v.Kind())
	}
	return v.Truth(), nil
}

// MustCompile is Compile that panics on error; for tests.
func MustCompile(e Expr, s *relation.Schema) *Compiled {
	c, err := Compile(e, s)
	if err != nil {
		panic(err)
	}
	return c
}
