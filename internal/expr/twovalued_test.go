package expr

import (
	"testing"

	"nra/internal/relation"
	"nra/internal/value"
)

// twoVLTruth is the ground-truth 2VL semantics, computed directly on the
// AST: comparisons with any NULL operand are False, NOT is classical.
func twoVLTruth(t *testing.T, e Expr, s *relation.Schema, tup relation.Tuple) bool {
	t.Helper()
	switch x := e.(type) {
	case Cmp:
		lv := evalScalar(t, x.L, s, tup)
		rv := evalScalar(t, x.R, s, tup)
		if lv.IsNull() || rv.IsNull() {
			return false
		}
		tri, err := x.Op.Apply(lv, rv)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		return tri.IsTrue()
	case Logic:
		l := twoVLTruth(t, x.L, s, tup)
		r := twoVLTruth(t, x.R, s, tup)
		if x.Op == OpAnd {
			return l && r
		}
		return l || r
	case Not:
		return !twoVLTruth(t, x.E, s, tup)
	case IsNull:
		v := evalScalar(t, x.E, s, tup)
		return v.IsNull() != x.Negate
	}
	t.Fatalf("twoVLTruth: unhandled %T", e)
	return false
}

func evalScalar(t *testing.T, e Expr, s *relation.Schema, tup relation.Tuple) value.Value {
	t.Helper()
	c, err := Compile(e, s)
	if err != nil {
		t.Fatalf("compile scalar %s: %v", e, err)
	}
	v, err := c.Eval(tup)
	if err != nil {
		t.Fatalf("eval scalar %s: %v", e, err)
	}
	return v
}

func twoVLCases() (s *relation.Schema, tuples []relation.Tuple, preds []Expr) {
	s = relation.NewSchema("t",
		relation.Column{Name: "t.a", Type: relation.TInt},
		relation.Column{Name: "t.b", Type: relation.TInt},
	)
	mk := func(a, b any) relation.Tuple {
		av, err := relation.ToValue(a)
		if err != nil {
			panic(err)
		}
		bv, err := relation.ToValue(b)
		if err != nil {
			panic(err)
		}
		return relation.Tuple{Atoms: []value.Value{av, bv}}
	}
	tuples = []relation.Tuple{
		mk(1, 1), mk(1, 2), mk(nil, 1), mk(1, nil), mk(nil, nil), mk(3, 2),
	}
	a, b := Col("t.a"), Col("t.b")
	cmp := Compare(Eq, a, b)
	lt := Compare(Lt, a, Val(2))
	preds = []Expr{
		cmp,
		Not{E: cmp},
		Compare(Ne, a, b),
		And(cmp, lt),
		Or(cmp, lt),
		Not{E: And(cmp, lt)},
		Not{E: Or(Not{E: cmp}, lt)},
		And(Not{E: lt}, Compare(Ge, b, Val(1))),
		IsNull{E: a},
		Not{E: IsNull{E: a, Negate: true}},
		Or(Not{E: cmp}, Not{E: Compare(Gt, a, b)}),
	}
	return s, tuples, preds
}

// TestTwoValuedFilterContext checks the filter-context contract: the
// rewritten predicate is 3VL-True exactly when 2VL semantics say True.
func TestTwoValuedFilterContext(t *testing.T) {
	s, tuples, preds := twoVLCases()
	for _, p := range preds {
		rw := TwoValued(p)
		c, err := Compile(rw, s)
		if err != nil {
			t.Fatalf("compile %s: %v", rw, err)
		}
		for _, tup := range tuples {
			got, err := c.Truth(tup)
			if err != nil {
				t.Fatalf("truth %s: %v", rw, err)
			}
			want := twoVLTruth(t, p, s, tup)
			if got.IsTrue() != want {
				t.Errorf("TwoValued(%s) on %v: filter-True=%v, want %v", p, tup.Atoms, got.IsTrue(), want)
			}
		}
	}
}

// TestTwoValuedStrict checks the strict contract: the rewritten predicate
// is never Unknown and its truth value equals the 2VL truth value.
func TestTwoValuedStrict(t *testing.T) {
	s, tuples, preds := twoVLCases()
	for _, p := range preds {
		rw := TwoValuedStrict(p)
		c, err := Compile(rw, s)
		if err != nil {
			t.Fatalf("compile %s: %v", rw, err)
		}
		for _, tup := range tuples {
			got, err := c.Truth(tup)
			if err != nil {
				t.Fatalf("truth %s: %v", rw, err)
			}
			if got == value.Unknown {
				t.Errorf("TwoValuedStrict(%s) on %v: Unknown, want a definite truth value", p, tup.Atoms)
				continue
			}
			want := twoVLTruth(t, p, s, tup)
			if got.IsTrue() != want {
				t.Errorf("TwoValuedStrict(%s) on %v: %v, want %v", p, tup.Atoms, got.IsTrue(), want)
			}
		}
	}
}

// TestTwoValuedPreservesShape pins that filter-context rewriting leaves
// bare comparisons and AND-trees structurally unchanged, so equi-key and
// pushdown pattern-matching in the planner still recognises them.
func TestTwoValuedPreservesShape(t *testing.T) {
	a, b := Col("t.a"), Col("u.b")
	e := And(Compare(Eq, a, b), Compare(Lt, a, Val(5)))
	if got := TwoValued(e); got.String() != e.String() {
		t.Errorf("TwoValued changed AND-tree shape: %s -> %s", e, got)
	}
}
