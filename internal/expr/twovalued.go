package expr

// Two-valued-logic rewriting, after Libkin & Peterfreund's "Handling SQL
// Nulls with Two-Valued Logic". Under 2VL every comparison involving a
// NULL is plain FALSE instead of Unknown, and NOT is classical negation.
// Rather than threading a logic-mode flag through every evaluator, a 2VL
// predicate is compiled to an ordinary 3VL expression that provably
// computes the 2VL truth value.
//
// Two rewrites are provided:
//
//   - TwoValuedStrict(e) never evaluates to Unknown: its 3VL truth value
//     IS the 2VL truth value of e. Comparisons gain IS NOT NULL guards on
//     both operands, so NOT over the result is classical.
//
//   - TwoValued(e) is the cheaper filter-context form: its 3VL truth
//     value agrees with 2VL on True, and is False-or-Unknown exactly when
//     2VL says False. A filter keeps a tuple iff the predicate is True,
//     so the two are interchangeable there — and because bare comparisons
//     and AND-trees are left structurally unchanged, downstream
//     pattern-matching (equi-key extraction, pushdown analysis) still
//     fires. Strict guards are inserted only under NOT, where the
//     False/Unknown distinction becomes observable.

// TwoValued rewrites a predicate for evaluation in filter context under
// two-valued logic: a tuple passes the rewritten predicate (3VL truth =
// True) exactly when the original predicate is 2VL-true. Non-negated
// comparisons and AND/OR structure are preserved verbatim.
func TwoValued(e Expr) Expr {
	switch x := e.(type) {
	case Logic:
		return Logic{Op: x.Op, L: TwoValued(x.L), R: TwoValued(x.R)}
	case Not:
		return Not{E: TwoValuedStrict(x.E)}
	default:
		// Cmp: Unknown only when 2VL says False — a filter drops the
		// tuple either way. IsNull is never Unknown. Scalars pass through.
		return e
	}
}

// TwoValuedStrict rewrites a predicate so that its 3VL truth value equals
// its 2VL truth value on every tuple — in particular it is never Unknown,
// making 3VL NOT over the result behave classically. Comparisons become
//
//	(L θ R) AND L IS NOT NULL AND R IS NOT NULL
//
// which is False (not Unknown) whenever either operand is NULL.
func TwoValuedStrict(e Expr) Expr {
	switch x := e.(type) {
	case Cmp:
		return And(x, IsNull{E: x.L, Negate: true}, IsNull{E: x.R, Negate: true})
	case Logic:
		return Logic{Op: x.Op, L: TwoValuedStrict(x.L), R: TwoValuedStrict(x.R)}
	case Not:
		return Not{E: TwoValuedStrict(x.E)}
	case IsNull:
		return x
	default:
		// A bare value used as a predicate (e.g. a boolean column):
		// NULL must read as False, not Unknown.
		return And(e, IsNull{E: e, Negate: true})
	}
}
