package expr

import (
	"fmt"
	"strings"

	"nra/internal/relation"
	"nra/internal/value"
)

// CmpOp is a comparison operator θ ∈ {=, <>, <, <=, >, >=}.
type CmpOp uint8

// The comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Negate returns the complement operator (¬(a op b) = a op' b under 2VL;
// under 3VL the Unknown case is preserved because both sides map NULL
// comparisons to Unknown).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	}
	panic("expr: invalid CmpOp")
}

// Flip returns the operator with swapped operands: a op b == b op.Flip() a.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default:
		return op // = and <> are symmetric
	}
}

// Apply evaluates a θ b under 3VL.
func (op CmpOp) Apply(a, b value.Value) (value.Tri, error) {
	cmp, known, err := value.Compare(a, b)
	if err != nil {
		return value.Unknown, err
	}
	if !known {
		return value.Unknown, nil
	}
	switch op {
	case Eq:
		return value.TriOf(cmp == 0), nil
	case Ne:
		return value.TriOf(cmp != 0), nil
	case Lt:
		return value.TriOf(cmp < 0), nil
	case Le:
		return value.TriOf(cmp <= 0), nil
	case Gt:
		return value.TriOf(cmp > 0), nil
	case Ge:
		return value.TriOf(cmp >= 0), nil
	}
	return value.Unknown, fmt.Errorf("expr: invalid comparison operator %d", op)
}

// Column references an atomic column by (usually qualified) name.
type Column struct{ Name string }

// Col is shorthand for a column reference.
func Col(name string) Column { return Column{Name: name} }

func (c Column) String() string                { return c.Name }
func (c Column) Columns(dst []string) []string { return append(dst, c.Name) }

func (c Column) compile(env *Env) (evalFn, error) {
	f, i, ok := env.resolve(c.Name)
	if !ok {
		return nil, fmt.Errorf("expr: unknown column %q", c.Name)
	}
	return func(stack []relation.Tuple) (value.Value, error) {
		return stack[f].Atoms[i], nil
	}, nil
}

// Lit is a literal value.
type Lit struct{ V value.Value }

// Val wraps a Go literal as an expression (nil = NULL).
func Val(x any) Lit {
	v, err := relation.ToValue(x)
	if err != nil {
		panic(err)
	}
	return Lit{V: v}
}

func (l Lit) String() string {
	if l.V.Kind() == value.KindString {
		return "'" + strings.ReplaceAll(l.V.Text(), "'", "''") + "'"
	}
	return l.V.String()
}
func (l Lit) Columns(dst []string) []string { return dst }

func (l Lit) compile(*Env) (evalFn, error) {
	v := l.V
	return func([]relation.Tuple) (value.Value, error) { return v, nil }, nil
}

// Cmp is a binary comparison L θ R.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Compare builds a comparison node.
func Compare(op CmpOp, l, r Expr) Cmp { return Cmp{Op: op, L: l, R: r} }

func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }
func (c Cmp) Columns(dst []string) []string {
	return c.R.Columns(c.L.Columns(dst))
}

func (c Cmp) compile(env *Env) (evalFn, error) {
	lf, err := c.L.compile(env)
	if err != nil {
		return nil, err
	}
	rf, err := c.R.compile(env)
	if err != nil {
		return nil, err
	}
	op := c.Op
	return func(stack []relation.Tuple) (value.Value, error) {
		a, err := lf(stack)
		if err != nil {
			return value.Null, err
		}
		b, err := rf(stack)
		if err != nil {
			return value.Null, err
		}
		t, err := op.Apply(a, b)
		if err != nil {
			return value.Null, err
		}
		return t.Value(), nil
	}, nil
}

// LogicOp is AND or OR.
type LogicOp uint8

// The binary logical connectives.
const (
	OpAnd LogicOp = iota
	OpOr
)

func (op LogicOp) String() string {
	if op == OpAnd {
		return "AND"
	}
	return "OR"
}

// Logic is a Kleene conjunction or disjunction.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// And builds the conjunction of the given predicates (nil for empty input).
func And(es ...Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = Logic{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}

// Or builds the disjunction of the given predicates.
func Or(l, r Expr) Expr { return Logic{Op: OpOr, L: l, R: r} }

func (l Logic) String() string { return fmt.Sprintf("(%s %s %s)", l.L, l.Op, l.R) }
func (l Logic) Columns(dst []string) []string {
	return l.R.Columns(l.L.Columns(dst))
}

func (l Logic) compile(env *Env) (evalFn, error) {
	lf, err := l.L.compile(env)
	if err != nil {
		return nil, err
	}
	rf, err := l.R.compile(env)
	if err != nil {
		return nil, err
	}
	and := l.Op == OpAnd
	return func(stack []relation.Tuple) (value.Value, error) {
		a, err := lf(stack)
		if err != nil {
			return value.Null, err
		}
		ta, err := asTri(a)
		if err != nil {
			return value.Null, err
		}
		// Short circuit where 3VL allows it.
		if and && ta == value.False {
			return value.Bool(false), nil
		}
		if !and && ta == value.True {
			return value.Bool(true), nil
		}
		b, err := rf(stack)
		if err != nil {
			return value.Null, err
		}
		tb, err := asTri(b)
		if err != nil {
			return value.Null, err
		}
		if and {
			return ta.And(tb).Value(), nil
		}
		return ta.Or(tb).Value(), nil
	}, nil
}

func asTri(v value.Value) (value.Tri, error) {
	if v.IsNull() {
		return value.Unknown, nil
	}
	if v.Kind() != value.KindBool {
		return value.Unknown, fmt.Errorf("expr: logical operand is %s, not boolean", v.Kind())
	}
	return v.Truth(), nil
}

// Not is Kleene negation.
type Not struct{ E Expr }

func (n Not) String() string                { return fmt.Sprintf("NOT (%s)", n.E) }
func (n Not) Columns(dst []string) []string { return n.E.Columns(dst) }

func (n Not) compile(env *Env) (evalFn, error) {
	f, err := n.E.compile(env)
	if err != nil {
		return nil, err
	}
	return func(stack []relation.Tuple) (value.Value, error) {
		v, err := f(stack)
		if err != nil {
			return value.Null, err
		}
		t, err := asTri(v)
		if err != nil {
			return value.Null, err
		}
		return t.Not().Value(), nil
	}, nil
}

// IsNull is the IS [NOT] NULL predicate — the only predicate that is never
// Unknown.
type IsNull struct {
	E      Expr
	Negate bool
}

func (p IsNull) String() string {
	if p.Negate {
		return fmt.Sprintf("%s IS NOT NULL", p.E)
	}
	return fmt.Sprintf("%s IS NULL", p.E)
}
func (p IsNull) Columns(dst []string) []string { return p.E.Columns(dst) }

func (p IsNull) compile(env *Env) (evalFn, error) {
	f, err := p.E.compile(env)
	if err != nil {
		return nil, err
	}
	neg := p.Negate
	return func(stack []relation.Tuple) (value.Value, error) {
		v, err := f(stack)
		if err != nil {
			return value.Null, err
		}
		return value.Bool(v.IsNull() != neg), nil
	}, nil
}

// ArithOp is an arithmetic operator.
type ArithOp uint8

// The arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (op ArithOp) String() string { return [...]string{"+", "-", "*", "/"}[op] }

// Arith is binary arithmetic; any NULL operand yields NULL.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

func (a Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }
func (a Arith) Columns(dst []string) []string {
	return a.R.Columns(a.L.Columns(dst))
}

func (a Arith) compile(env *Env) (evalFn, error) {
	lf, err := a.L.compile(env)
	if err != nil {
		return nil, err
	}
	rf, err := a.R.compile(env)
	if err != nil {
		return nil, err
	}
	op := a.Op
	return func(stack []relation.Tuple) (value.Value, error) {
		x, err := lf(stack)
		if err != nil {
			return value.Null, err
		}
		y, err := rf(stack)
		if err != nil {
			return value.Null, err
		}
		return applyArith(op, x, y)
	}, nil
}

func applyArith(op ArithOp, x, y value.Value) (value.Value, error) {
	if x.IsNull() || y.IsNull() {
		return value.Null, nil
	}
	if x.Kind() == value.KindInt && y.Kind() == value.KindInt && op != Div {
		a, b := x.Int64(), y.Int64()
		switch op {
		case Add:
			return value.Int(a + b), nil
		case Sub:
			return value.Int(a - b), nil
		case Mul:
			return value.Int(a * b), nil
		}
	}
	if (x.Kind() == value.KindInt || x.Kind() == value.KindFloat) &&
		(y.Kind() == value.KindInt || y.Kind() == value.KindFloat) {
		a, b := x.Float64(), y.Float64()
		switch op {
		case Add:
			return value.Float(a + b), nil
		case Sub:
			return value.Float(a - b), nil
		case Mul:
			return value.Float(a * b), nil
		case Div:
			if b == 0 {
				return value.Null, fmt.Errorf("expr: division by zero")
			}
			return value.Float(a / b), nil
		}
	}
	return value.Null, fmt.Errorf("expr: arithmetic on %s and %s", x.Kind(), y.Kind())
}
