package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"nra/internal/relation"
	"nra/internal/value"
)

func schemaRS() *relation.Schema {
	return relation.NewSchema("R",
		relation.Column{Name: "R.A", Type: relation.TInt},
		relation.Column{Name: "R.B", Type: relation.TInt},
		relation.Column{Name: "R.S", Type: relation.TString},
	)
}

func tup(a, b any, s any) relation.Tuple {
	va, _ := relation.ToValue(a)
	vb, _ := relation.ToValue(b)
	vs, _ := relation.ToValue(s)
	return relation.NewTuple(va, vb, vs)
}

func TestColumnAndLiteral(t *testing.T) {
	c := MustCompile(Col("R.B"), schemaRS())
	v, err := c.Eval(tup(1, 7, "x"))
	if err != nil || v.Int64() != 7 {
		t.Fatalf("col eval: %v %v", v, err)
	}
	lit := MustCompile(Val(3.5), schemaRS())
	v, _ = lit.Eval(tup(0, 0, ""))
	if v.Float64() != 3.5 {
		t.Fatal("literal eval")
	}
}

func TestUnknownColumnError(t *testing.T) {
	if _, err := Compile(Col("R.Z"), schemaRS()); err == nil {
		t.Fatal("unknown column must fail at compile time")
	}
}

func TestComparisons3VL(t *testing.T) {
	s := schemaRS()
	tests := []struct {
		e    Expr
		t    relation.Tuple
		want value.Tri
	}{
		{Compare(Gt, Col("R.A"), Val(5)), tup(6, 0, ""), value.True},
		{Compare(Gt, Col("R.A"), Val(5)), tup(5, 0, ""), value.False},
		{Compare(Gt, Col("R.A"), Val(5)), tup(nil, 0, ""), value.Unknown},
		{Compare(Eq, Col("R.A"), Col("R.B")), tup(2, 2, ""), value.True},
		{Compare(Ne, Col("R.A"), Col("R.B")), tup(2, nil, ""), value.Unknown},
		{Compare(Le, Col("R.S"), Val("m")), tup(0, 0, "a"), value.True},
	}
	for i, tc := range tests {
		c := MustCompile(tc.e, s)
		got, err := c.Truth(tc.t)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != tc.want {
			t.Errorf("case %d (%s): got %v, want %v", i, tc.e, got, tc.want)
		}
	}
}

func TestLogicAndNot3VL(t *testing.T) {
	s := schemaRS()
	// R.A > 5 AND R.B = 1, with NULLs flowing through.
	e := And(Compare(Gt, Col("R.A"), Val(5)), Compare(Eq, Col("R.B"), Val(1)))
	c := MustCompile(e, s)
	cases := []struct {
		t    relation.Tuple
		want value.Tri
	}{
		{tup(6, 1, ""), value.True},
		{tup(6, 2, ""), value.False},
		{tup(4, nil, ""), value.False},   // False AND Unknown = False
		{tup(6, nil, ""), value.Unknown}, // True AND Unknown = Unknown
		{tup(nil, nil, ""), value.Unknown},
	}
	for i, tc := range cases {
		got, err := c.Truth(tc.t)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("AND case %d: got %v want %v", i, got, tc.want)
		}
	}
	or := MustCompile(Or(Compare(Gt, Col("R.A"), Val(5)), Compare(Eq, Col("R.B"), Val(1))), s)
	if got, _ := or.Truth(tup(nil, 1, "")); got != value.True {
		t.Error("Unknown OR True must be True")
	}
	not := MustCompile(Not{E: Compare(Gt, Col("R.A"), Val(5))}, s)
	if got, _ := not.Truth(tup(nil, 0, "")); got != value.Unknown {
		t.Error("NOT Unknown must be Unknown")
	}
}

func TestIsNull(t *testing.T) {
	s := schemaRS()
	isn := MustCompile(IsNull{E: Col("R.A")}, s)
	if got, _ := isn.Truth(tup(nil, 0, "")); got != value.True {
		t.Error("IS NULL on NULL")
	}
	if got, _ := isn.Truth(tup(1, 0, "")); got != value.False {
		t.Error("IS NULL on value")
	}
	isnn := MustCompile(IsNull{E: Col("R.A"), Negate: true}, s)
	if got, _ := isnn.Truth(tup(nil, 0, "")); got != value.False {
		t.Error("IS NOT NULL on NULL")
	}
}

func TestArithmetic(t *testing.T) {
	s := schemaRS()
	e := MustCompile(Arith{Op: Add, L: Col("R.A"), R: Arith{Op: Mul, L: Col("R.B"), R: Val(2)}}, s)
	v, err := e.Eval(tup(1, 3, ""))
	if err != nil || v.Int64() != 7 {
		t.Fatalf("1+3*2 = %v (%v)", v, err)
	}
	v, _ = e.Eval(tup(nil, 3, ""))
	if !v.IsNull() {
		t.Fatal("NULL arithmetic must be NULL")
	}
	div := MustCompile(Arith{Op: Div, L: Val(1), R: Col("R.A")}, s)
	if _, err := div.Eval(tup(0, 0, "")); err == nil {
		t.Fatal("division by zero must error")
	}
	v, err = div.Eval(tup(4, 0, ""))
	if err != nil || v.Float64() != 0.25 {
		t.Fatalf("1/4 = %v (%v)", v, err)
	}
	bad := MustCompile(Arith{Op: Add, L: Col("R.S"), R: Val(1)}, s)
	if _, err := bad.Eval(tup(0, 0, "x")); err == nil {
		t.Fatal("string arithmetic must error")
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	s := schemaRS()
	c := MustCompile(Compare(Eq, Col("R.A"), Col("R.S")), s)
	if _, err := c.Truth(tup(1, 0, "x")); err == nil {
		t.Fatal("int=string comparison must error")
	}
	l := MustCompile(Logic{Op: OpAnd, L: Col("R.A"), R: Val(true)}, s)
	if _, err := l.Truth(tup(1, 0, "")); err == nil {
		t.Fatal("non-boolean logic operand must error")
	}
}

func TestCorrelatedEnvResolution(t *testing.T) {
	outer := relation.NewSchema("R", relation.Column{Name: "R.A", Type: relation.TInt})
	inner := relation.NewSchema("S", relation.Column{Name: "S.B", Type: relation.TInt})
	env := NewEnv(outer).Push(inner)
	c, err := CompileEnv(Compare(Eq, Col("R.A"), Col("S.B")), env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Truth(relation.NewTuple(value.Int(3)), relation.NewTuple(value.Int(3)))
	if err != nil || got != value.True {
		t.Fatalf("correlated eval: %v %v", got, err)
	}
	// Inner frame shadows outer frame for same-named columns.
	inner2 := relation.NewSchema("S", relation.Column{Name: "R.A", Type: relation.TInt})
	env2 := NewEnv(outer).Push(inner2)
	c2, err := CompileEnv(Col("R.A"), env2)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := c2.Eval(relation.NewTuple(value.Int(1)), relation.NewTuple(value.Int(2)))
	if v.Int64() != 2 {
		t.Fatal("innermost frame must win")
	}
	// Wrong frame count errors.
	if _, err := c2.Eval(relation.NewTuple(value.Int(1))); err == nil {
		t.Fatal("frame count mismatch must error")
	}
}

func TestCmpOpNegateFlipQuick(t *testing.T) {
	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	err := quick.Check(func(oi uint8, a, b int64) bool {
		op := ops[int(oi)%len(ops)]
		x, y := value.Int(a), value.Int(b)
		direct, _ := op.Apply(x, y)
		neg, _ := op.Negate().Apply(x, y)
		flip, _ := op.Flip().Apply(y, x)
		return direct == neg.Not() && direct == flip
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCmpOpNegateWithNullStaysUnknown(t *testing.T) {
	for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		direct, _ := op.Apply(value.Null, value.Int(1))
		neg, _ := op.Negate().Apply(value.Null, value.Int(1))
		if direct != value.Unknown || neg != value.Unknown {
			t.Errorf("%s: NULL comparison must stay Unknown under negation", op)
		}
	}
}

func TestStringRendering(t *testing.T) {
	e := And(
		Compare(Gt, Col("R.A"), Val(10)),
		Not{E: IsNull{E: Col("R.B")}},
	)
	s := e.String()
	for _, want := range []string{"R.A > 10", "NOT", "R.B IS NULL", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering %q missing %q", s, want)
		}
	}
	if Val("o'brien").String() != "'o''brien'" {
		t.Errorf("string literal quoting: %s", Val("o'brien"))
	}
}

func TestColumnsCollection(t *testing.T) {
	e := And(Compare(Gt, Col("R.A"), Col("R.B")), IsNull{E: Col("R.S")})
	got := e.Columns(nil)
	if len(got) != 3 {
		t.Fatalf("Columns = %v", got)
	}
}

func TestAndOfNothingIsNil(t *testing.T) {
	if And() != nil {
		t.Fatal("And() should be nil")
	}
	if And(nil, nil) != nil {
		t.Fatal("And(nil,nil) should be nil")
	}
	one := Compare(Eq, Col("R.A"), Val(1))
	if And(nil, one) != Expr(one) {
		t.Fatal("And of single expr should be that expr")
	}
}
