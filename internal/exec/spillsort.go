package exec

import (
	"io"
	"sort"

	"nra/internal/algebra"
	"nra/internal/obsv"
	"nra/internal/relation"
	"nra/internal/value"
)

// spillSortBy sorts tuples by the given column indexes into a fresh
// slice, producing exactly the order Relation.SortBy does (stable,
// value.Less, NULLs first). When the sorted copy fits the memory budget
// (or the context is ungoverned) it runs in memory via parallelSortBy;
// otherwise it degrades to an external merge sort:
//
//  1. the input is split into consecutive runs each within the per-chunk
//     working-state bound; every run is sorted with the original global
//     position as tie-break and written to its own spill file, each
//     record tagged with that position;
//  2. a k-way merge over the run files compares by the sort columns and
//     tie-breaks on the tag.
//
// Runs are consecutive input ranges sorted stably and the merge breaks
// ties on original position, which defines the exact total order a stable
// sort does — so the external result is byte-identical to the in-memory
// one regardless of run boundaries.
//
// The second result reports whether the sort spilled.
func spillSortBy(ec *ExecContext, op string, tuples []relation.Tuple, idx []int, schema *relation.Schema, par int) ([]relation.Tuple, bool, error) {
	var sp *obsv.Span
	if ec.Tracing() {
		sp = ec.StartSpan(op, obsv.KindSort)
		sp.AddRowsIn(int64(len(tuples)))
		defer sp.End()
	}
	if !ec.ForceSpill(op) {
		bytes := tuplesBytes(tuples)
		ok, err := ec.TryReserve(op, bytes)
		if err != nil {
			return nil, false, err
		}
		if ok {
			defer ec.Release(bytes)
			out, err := parallelSortBy(ec, tuples, idx, par)
			sp.AddRowsOut(int64(len(out)))
			return out, false, err
		}
	}
	sp.SetKind(obsv.KindExtSort)
	out, err := externalSortBy(ec, op, tuples, idx, schema)
	sp.AddRowsOut(int64(len(out)))
	return out, true, err
}

// lessOn compares two tuples on the sort columns under the SortBy order.
// known=false means equal on every column (the caller tie-breaks).
func lessOn(a, b relation.Tuple, idx []int) (less, known bool) {
	for _, i := range idx {
		va, vb := a.Atoms[i], b.Atoms[i]
		if !value.Identical(va, vb) {
			return value.Less(va, vb), true
		}
	}
	return false, false
}

func externalSortBy(ec *ExecContext, op string, tuples []relation.Tuple, idx []int, schema *relation.Schema) ([]relation.Tuple, error) {
	bounds := algebra.SpillChunks(tuples, TupleBytes, ec.spillChunkBytes())
	readers := make([]*spillReader, 0, len(bounds)-1)
	defer func() {
		for _, r := range readers {
			r.close()
		}
	}()

	// Run generation: sort each consecutive range by (columns, original
	// position) and write it out tagged with the position. Only one run's
	// working copy is charged at a time.
	for w := 0; w+1 < len(bounds); w++ {
		if err := ec.Check(op); err != nil {
			return nil, err
		}
		lo, hi := bounds[w], bounds[w+1]
		runBytes := tuplesBytes(tuples[lo:hi])
		if err := ec.Reserve(op, runBytes); err != nil {
			return nil, err
		}
		ord := make([]int, hi-lo)
		for i := range ord {
			ord[i] = lo + i
		}
		sort.Slice(ord, func(i, j int) bool {
			a, b := ord[i], ord[j]
			if l, known := lessOn(tuples[a], tuples[b], idx); known {
				return l
			}
			return a < b
		})
		sw, err := newSpillWriter(ec, op)
		if err != nil {
			ec.Release(runBytes)
			return nil, err
		}
		for _, j := range ord {
			if err := sw.writeRecord(uint64(j), tuples[j]); err != nil {
				sw.close()
				ec.Release(runBytes)
				return nil, &QueryError{Op: op, Err: err}
			}
		}
		n, err := sw.finish()
		ec.Release(runBytes)
		if err != nil {
			sw.close()
			return nil, err
		}
		ec.NoteSpill(n)
		readers = append(readers, newSpillReader(ec, op, sw.f, schema))
	}

	// k-way merge. The lookahead is one decoded tuple per run — fixed
	// cursor state, bounded by the run count, not charged against the
	// budget (see docs/ROBUSTNESS.md).
	heads := make([]relation.Tuple, len(readers))
	tags := make([]uint64, len(readers))
	alive := make([]bool, len(readers))
	advance := func(w int) error {
		tag, t, err := readers[w].readRecord()
		if err == io.EOF {
			alive[w] = false
			return nil
		}
		if err != nil {
			return err
		}
		tags[w], heads[w], alive[w] = tag, t, true
		return nil
	}
	for w := range readers {
		if err := advance(w); err != nil {
			return nil, err
		}
	}
	out := make([]relation.Tuple, 0, len(tuples))
	for {
		if len(out)&1023 == 0 {
			if err := ec.Check(op); err != nil {
				return nil, err
			}
		}
		best := -1
		for w := range readers {
			if !alive[w] {
				continue
			}
			if best < 0 {
				best = w
				continue
			}
			if l, known := lessOn(heads[w], heads[best], idx); known {
				if l {
					best = w
				}
			} else if tags[w] < tags[best] {
				best = w
			}
		}
		if best < 0 {
			return out, nil
		}
		out = append(out, heads[best])
		if err := advance(best); err != nil {
			return nil, err
		}
	}
}
