package exec

// Shutdown semantics: Close on the streaming join operators must be a
// safe no-op before Open and after a previous Close, must close both
// inputs exactly once, and — for the parallel operator — must drain
// every in-flight worker before returning, whether it is called before
// the first Next or mid-stream. The goroutine-leak regression test
// pins the early-Close drain behaviour.

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"nra/internal/algebra"
	"nra/internal/expr"
	"nra/internal/relation"
)

// countingIter counts Open/Close calls on a wrapped iterator, to assert
// parents honour the close-exactly-once contract.
type countingIter struct {
	inner  Iterator
	opens  int
	closes int
}

func (c *countingIter) Open(ec *ExecContext) error          { c.opens++; return c.inner.Open(ec) }
func (c *countingIter) Next() (relation.Tuple, bool, error) { return c.inner.Next() }
func (c *countingIter) Schema() *relation.Schema            { return c.inner.Schema() }
func (c *countingIter) Close() error                        { c.closes++; return c.inner.Close() }

func shutdownInputs(t *testing.T) (*relation.Relation, *relation.Relation, expr.Expr) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	l := randomRel("l", []string{"a", "x"}, 400, rng, 0.1, 25)
	r := randomRel("r", []string{"b", "y"}, 500, rng, 0.1, 25)
	return l, r, expr.Compare(expr.Eq, expr.Col("a"), expr.Col("b"))
}

// closeScenarios drives an iterator through the three early-Close shapes
// — before Open, before the first Next, and mid-stream — asserting a
// double Close stays a no-op and both inputs close exactly once per
// cycle, then re-opens it and checks a full drain still matches want.
func closeScenarios(t *testing.T, mk func() (Iterator, *countingIter, *countingIter), want *relation.Relation) {
	t.Helper()

	t.Run("close before open", func(t *testing.T) {
		it, li, ri := mk()
		for i := 0; i < 2; i++ {
			if err := it.Close(); err != nil {
				t.Fatalf("close #%d: %v", i+1, err)
			}
		}
		if li.closes != 1 || ri.closes != 1 {
			t.Fatalf("inputs closed %d/%d times, want exactly once", li.closes, ri.closes)
		}
	})

	t.Run("close before first next", func(t *testing.T) {
		it, li, ri := mk()
		if err := it.Open(Background()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := it.Close(); err != nil {
				t.Fatalf("close #%d: %v", i+1, err)
			}
		}
		if li.closes != 1 || ri.closes != 1 {
			t.Fatalf("inputs closed %d/%d times, want exactly once", li.closes, ri.closes)
		}
	})

	t.Run("close mid-stream", func(t *testing.T) {
		it, li, ri := mk()
		if err := it.Open(Background()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, ok, err := it.Next(); err != nil || !ok {
				t.Fatalf("next #%d: ok=%v err=%v", i+1, ok, err)
			}
		}
		for i := 0; i < 2; i++ {
			if err := it.Close(); err != nil {
				t.Fatalf("close #%d: %v", i+1, err)
			}
		}
		if li.closes != 1 || ri.closes != 1 {
			t.Fatalf("inputs closed %d/%d times, want exactly once", li.closes, ri.closes)
		}
	})

	t.Run("reopen after close", func(t *testing.T) {
		it, _, _ := mk()
		if err := it.Open(Background()); err != nil {
			t.Fatal(err)
		}
		if _, _, err := it.Next(); err != nil {
			t.Fatal(err)
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := Drain(Background(), it) // Drain re-Opens
		if err != nil {
			t.Fatal(err)
		}
		mustEqualSeq(t, "reopen", got, want)
	})
}

func TestHashJoinCloseSemantics(t *testing.T) {
	l, r, on := shutdownInputs(t)
	want, err := algebra.LeftOuterJoin(l, r, on)
	if err != nil {
		t.Fatal(err)
	}
	closeScenarios(t, func() (Iterator, *countingIter, *countingIter) {
		li := &countingIter{inner: NewScan(l)}
		ri := &countingIter{inner: NewScan(r)}
		return NewHashJoin(li, ri, on, true), li, ri
	}, want)
}

func TestParallelJoinIterCloseSemantics(t *testing.T) {
	l, r, on := shutdownInputs(t)
	want, err := algebra.LeftOuterJoin(l, r, on)
	if err != nil {
		t.Fatal(err)
	}
	closeScenarios(t, func() (Iterator, *countingIter, *countingIter) {
		li := &countingIter{inner: NewScan(l)}
		ri := &countingIter{inner: NewScan(r)}
		return NewParallelJoinIter(li, ri, on, true, 8), li, ri
	}, want)
}

// waitNoLeak retries the goroutine-count comparison (workers unwind
// asynchronously after Close returns their results).
func waitNoLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelJoinIterNoGoroutineLeak is the regression test for the
// early-Close drain: repeatedly Open a parallel join (whose producer and
// workers run in the background), abandon it before or mid-stream, Close,
// and assert the goroutine count returns to the baseline.
func TestParallelJoinIterNoGoroutineLeak(t *testing.T) {
	l, r, on := shutdownInputs(t)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 40; i++ {
		ec := NewExecContext(nil, Limits{MemoryBudget: 32 << 10})
		it := NewParallelJoinIter(NewScan(l), NewScan(r), on, true, 8)
		if err := it.Open(ec); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < i%4; j++ { // 0 = close before first Next
			if _, _, err := it.Next(); err != nil {
				t.Fatal(err)
			}
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ec.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitNoLeak(t, baseline)
}
