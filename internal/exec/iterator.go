package exec

import (
	"fmt"

	"nra/internal/expr"
	"nra/internal/obsv"
	"nra/internal/relation"
	"nra/internal/value"
)

// Iterator is the classical volcano interface: Open prepares the
// operator under a per-query ExecContext (which carries cancellation,
// the memory budget and fault hooks down the tree), Next produces one
// tuple at a time (ok=false at end of stream), Close releases state.
// Operators compose into pipelines that never materialise intermediate
// results — the execution style §4.2.2's pipelining argument assumes.
//
// Contract points every implementation honours:
//   - Open(ec) passes ec to its inputs' Open and retains it for the
//     operator's own checkpoints; cancellation is observed at operator
//     boundaries (between tuples or morsels), never only at end of
//     stream.
//   - Close is idempotent, safe before the first Next (even before
//     Open), and closes *all* inputs exactly once — an input may own
//     resources (goroutines, spill files) beyond its tuple stream.
//   - After an error or cancellation, Close still releases everything;
//     no goroutine or temp file outlives the query's ExecContext.
type Iterator interface {
	Open(ec *ExecContext) error
	Next() (relation.Tuple, bool, error)
	Close() error
	// Schema describes the produced tuples.
	Schema() *relation.Schema
}

// Drain runs an iterator to completion under ec and materialises its
// output.
func Drain(ec *ExecContext, it Iterator) (*relation.Relation, error) {
	if err := it.Open(ec); err != nil {
		it.Close()
		return nil, err
	}
	defer it.Close()
	out := relation.New(it.Schema())
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Append(t)
	}
}

// Scan streams a materialised relation.
type Scan struct {
	Rel *relation.Relation
	pos int
	ec  *ExecContext
	sp  *obsv.Span
}

// NewScan returns a scan over rel.
func NewScan(rel *relation.Relation) *Scan { return &Scan{Rel: rel} }

// Open positions the scan at the first tuple and opens its span.
func (s *Scan) Open(ec *ExecContext) error {
	s.pos, s.ec = 0, ec
	if ec.Tracing() {
		s.sp = ec.StartSpan("scan "+s.Rel.Schema.Name, obsv.KindScan)
	}
	return nil
}

// Close ends the scan's span (rows in = the relation's cardinality,
// rows out = tuples actually consumed).
func (s *Scan) Close() error {
	if s.sp != nil {
		s.sp.AddRowsIn(int64(s.Rel.Len()))
		s.sp.AddRowsOut(int64(s.pos))
		s.sp.End()
		s.sp = nil
	}
	return nil
}

// Schema returns the scanned relation's schema.
func (s *Scan) Schema() *relation.Schema { return s.Rel.Schema }

// Next returns the next tuple, checking governance every 256 tuples.
func (s *Scan) Next() (relation.Tuple, bool, error) {
	if s.pos&255 == 0 {
		if err := s.ec.Check("scan"); err != nil {
			return relation.Tuple{}, false, err
		}
	}
	if s.pos >= s.Rel.Len() {
		return relation.Tuple{}, false, nil
	}
	t := s.Rel.Tuples[s.pos]
	s.pos++
	return t, true, nil
}

// Filter streams the input tuples satisfying a predicate (3VL: only True
// passes).
type Filter struct {
	In   Iterator
	Pred expr.Expr

	compiled *expr.Compiled
}

// NewFilter wraps in with predicate pred (nil = pass-through).
func NewFilter(in Iterator, pred expr.Expr) *Filter { return &Filter{In: in, Pred: pred} }

// Open opens the input and compiles the predicate against its schema.
func (f *Filter) Open(ec *ExecContext) error {
	if err := f.In.Open(ec); err != nil {
		return err
	}
	if f.Pred == nil {
		f.compiled = nil
		return nil
	}
	c, err := expr.Compile(f.Pred, f.In.Schema())
	if err != nil {
		return fmt.Errorf("filter: %w", err)
	}
	f.compiled = c
	return nil
}

// Close closes the input.
func (f *Filter) Close() error { return f.In.Close() }

// Schema returns the input's schema (filtering drops no columns).
func (f *Filter) Schema() *relation.Schema { return f.In.Schema() }

// Next returns the next input tuple whose predicate is True.
func (f *Filter) Next() (relation.Tuple, bool, error) {
	for {
		t, ok, err := f.In.Next()
		if err != nil || !ok {
			return t, ok, err
		}
		if f.compiled == nil {
			return t, true, nil
		}
		tri, err := f.compiled.Truth(t)
		if err != nil {
			return relation.Tuple{}, false, err
		}
		if tri.IsTrue() {
			return t, true, nil
		}
	}
}

// Project streams a column subset of its input.
type Project struct {
	In   Iterator
	Cols []string

	idx    []int
	schema *relation.Schema
}

// NewProject projects in onto cols.
func NewProject(in Iterator, cols []string) *Project { return &Project{In: in, Cols: cols} }

// Open opens the input and resolves the projected column indexes.
func (p *Project) Open(ec *ExecContext) error {
	if err := p.In.Open(ec); err != nil {
		return err
	}
	in := p.In.Schema()
	p.idx = p.idx[:0]
	p.schema = &relation.Schema{Name: in.Name}
	for _, c := range p.Cols {
		j := in.ColIndex(c)
		if j < 0 {
			return fmt.Errorf("project: no column %q in %s", c, in)
		}
		p.idx = append(p.idx, j)
		p.schema.Cols = append(p.schema.Cols, in.Cols[j])
	}
	return nil
}

// Close closes the input.
func (p *Project) Close() error { return p.In.Close() }

// Schema returns the projected schema (set by Open).
func (p *Project) Schema() *relation.Schema { return p.schema }

// Next returns the next input tuple restricted to the projected columns.
func (p *Project) Next() (relation.Tuple, bool, error) {
	t, ok, err := p.In.Next()
	if err != nil || !ok {
		return relation.Tuple{}, ok, err
	}
	out := relation.Tuple{Atoms: make([]value.Value, len(p.idx))}
	for i, j := range p.idx {
		out.Atoms[i] = t.Atoms[j]
	}
	return out, true, nil
}

// Limit streams at most N tuples after skipping Offset.
type Limit struct {
	In     Iterator
	N      int // -1 = unlimited
	Offset int

	emitted, skipped int
}

// NewLimit wraps in with a LIMIT/OFFSET window.
func NewLimit(in Iterator, n, offset int) *Limit { return &Limit{In: in, N: n, Offset: offset} }

// Open resets the window counters and opens the input.
func (l *Limit) Open(ec *ExecContext) error {
	l.emitted, l.skipped = 0, 0
	return l.In.Open(ec)
}

// Close closes the input.
func (l *Limit) Close() error { return l.In.Close() }

// Schema returns the input's schema.
func (l *Limit) Schema() *relation.Schema { return l.In.Schema() }

// Next returns the next tuple inside the LIMIT/OFFSET window.
func (l *Limit) Next() (relation.Tuple, bool, error) {
	for {
		if l.N >= 0 && l.emitted >= l.N {
			return relation.Tuple{}, false, nil
		}
		t, ok, err := l.In.Next()
		if err != nil || !ok {
			return t, ok, err
		}
		if l.skipped < l.Offset {
			l.skipped++
			continue
		}
		l.emitted++
		return t, true, nil
	}
}

// HashJoin streams the probe (left) side against a hash table built over
// the build (right) side on Open — an inner or left-outer equi-join with
// optional residual predicate, matching algebra.Join/LeftOuterJoin.
//
// Under a memory budget, a build side whose tracked footprint exceeds
// the remaining budget degrades to the grace-style chunked join
// (joinSpill): the probe side is materialised, the build side processed
// one budget-sized chunk at a time through spill files, and the merged
// result — byte-identical to the in-memory join — is streamed from Next.
type HashJoin struct {
	Left, Right Iterator
	On          expr.Expr
	Outer       bool

	ec       *ExecContext
	schema   *relation.Schema
	build    *relation.Relation
	table    map[string][]int
	lk, rk   []int
	residual *expr.Compiled
	pad      relation.Tuple
	reserved int64 // build-side bytes charged against the budget
	closed   bool

	spilled  *relation.Relation // non-nil: stream this instead of probing
	spillPos int
	sp       *obsv.Span
	inRows   int64 // probe tuples consumed
	outRows  int64 // joined tuples produced

	cur     relation.Tuple // current probe tuple
	matches []int
	mi      int
	matched bool
	have    bool
	loopPos int // nested-loop fallback position
	useLoop bool
	steps   int
}

// NewHashJoin joins left ⋈/⟕ right on the given condition.
func NewHashJoin(left, right Iterator, on expr.Expr, outer bool) *HashJoin {
	return &HashJoin{Left: left, Right: right, On: on, Outer: outer}
}

// Schema returns the joined schema (set by Open).
func (h *HashJoin) Schema() *relation.Schema { return h.schema }

// Open builds the hash table from the build side (spilling to a grace
// join when over budget) and prepares the probe side.
func (h *HashJoin) Open(ec *ExecContext) (err error) {
	defer Guard("hashjoin/open", &err)
	h.ec = ec
	h.spilled, h.spillPos, h.reserved, h.steps = nil, 0, 0, 0
	h.inRows, h.outRows = 0, 0
	h.closed = false
	// The span opens before the inputs so their spans nest under it.
	if ec.Tracing() {
		h.sp = ec.StartSpan("hashjoin", obsv.KindJoin)
	}
	if err := h.Left.Open(ec); err != nil {
		return err
	}
	// Materialise the build side without closing it: Close releases both
	// inputs, per the iterator contract (an input may own resources —
	// goroutines, partitions — beyond its tuple stream).
	if err := h.Right.Open(ec); err != nil {
		return err
	}
	h.build = relation.New(h.Right.Schema())
	for {
		t, ok, err := h.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h.build.Append(t)
	}
	ls, rs := h.Left.Schema(), h.build.Schema
	h.schema = &relation.Schema{Name: ls.Name}
	h.schema.Cols = append(append([]relation.Column{}, ls.Cols...), rs.Cols...)
	seen := map[string]bool{}
	for _, c := range h.schema.Cols {
		if seen[c.Name] {
			return fmt.Errorf("hashjoin: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}

	h.lk, h.rk, h.residual = nil, nil, nil
	lk, rk, residual := extractEquiKeys(h.On, ls, rs)
	h.lk, h.rk = lk, rk
	if residual != nil {
		c, err := expr.Compile(residual, h.schema)
		if err != nil {
			return fmt.Errorf("hashjoin: %w", err)
		}
		h.residual = c
	}

	// Budget the build side (tuples + hash table). When it does not fit —
	// or a fault hook forces the slow path — degrade to the chunked
	// spill join instead of building the full table.
	if ec.Governed() {
		bytes := tuplesBytes(h.build.Tuples)
		spill := ec.ForceSpill("hashjoin")
		if !spill {
			ok, err := ec.TryReserve("hashjoin", bytes)
			if err != nil {
				return err
			}
			if ok {
				h.reserved = bytes
			} else {
				spill = true
			}
		}
		if spill {
			probe := relation.New(ls)
			for {
				if probe.Len()&255 == 0 {
					if err := ec.Check("hashjoin/probe"); err != nil {
						return err
					}
				}
				t, ok, err := h.Left.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				probe.Append(t)
			}
			out, err := joinSpill(ec, "hashjoin", probe, h.build, h.lk, h.rk, h.residual, h.schema, h.Outer)
			if err != nil {
				return err
			}
			h.inRows = int64(probe.Len())
			h.spilled = out
			return nil
		}
	}

	h.useLoop = len(h.lk) == 0
	if !h.useLoop {
		h.table = make(map[string][]int, h.build.Len())
	rows:
		for i, t := range h.build.Tuples {
			for _, k := range h.rk {
				if t.Atoms[k].IsNull() {
					continue rows
				}
			}
			key := t.KeyOn(h.rk)
			h.table[key] = append(h.table[key], i)
		}
	}
	h.pad = relation.Tuple{Atoms: make([]value.Value, len(rs.Cols))}
	h.have = false
	return nil
}

// Close releases both inputs and the budget reservation. The right side
// is closed here (not when its stream is drained in Open), so inputs that
// own state past end-of-stream are released exactly once, whether or not
// Open succeeded in between. Close is idempotent and safe before Open or
// the first Next.
// Close releases the build table, closes both inputs, and ends the
// join's span.
func (h *HashJoin) Close() error {
	if h.closed {
		return nil
	}
	h.closed = true
	if h.reserved > 0 {
		h.ec.Release(h.reserved)
		h.reserved = 0
	}
	err := h.Left.Close()
	if rerr := h.Right.Close(); err == nil {
		err = rerr
	}
	if h.sp != nil {
		if h.build != nil {
			h.sp.AddRowsIn(int64(h.build.Len()))
		}
		h.sp.AddRowsIn(h.inRows)
		h.sp.AddRowsOut(h.outRows)
		h.sp.End()
		h.sp = nil
	}
	return err
}

// Next returns the next joined tuple (or, for an outer join, the next
// NULL-padded probe tuple with no match).
func (h *HashJoin) Next() (t relation.Tuple, ok bool, err error) {
	defer Guard("hashjoin/next", &err)
	if h.spilled != nil {
		if h.spillPos >= h.spilled.Len() {
			return relation.Tuple{}, false, nil
		}
		t := h.spilled.Tuples[h.spillPos]
		h.spillPos++
		h.outRows++
		return t, true, nil
	}
	for {
		h.steps++
		if h.steps&255 == 0 {
			if err := h.ec.Check("hashjoin/next"); err != nil {
				return relation.Tuple{}, false, err
			}
		}
		if !h.have {
			t, ok, err := h.Left.Next()
			if err != nil || !ok {
				return relation.Tuple{}, ok, err
			}
			h.cur, h.have, h.matched = t, true, false
			h.inRows++
			h.mi, h.loopPos = 0, 0
			if !h.useLoop {
				h.matches = nil
				allKeys := true
				for _, k := range h.lk {
					if h.cur.Atoms[k].IsNull() {
						allKeys = false
						break
					}
				}
				if allKeys {
					h.matches = h.table[h.cur.KeyOn(h.lk)]
				}
			}
		}
		var candidate int
		var exhausted bool
		if h.useLoop {
			if h.loopPos >= h.build.Len() {
				exhausted = true
			} else {
				candidate = h.loopPos
				h.loopPos++
			}
		} else {
			if h.mi >= len(h.matches) {
				exhausted = true
			} else {
				candidate = h.matches[h.mi]
				h.mi++
			}
		}
		if exhausted {
			h.have = false
			if h.Outer && !h.matched {
				h.outRows++
				return h.concat(h.cur, h.pad), true, nil
			}
			continue
		}
		joined := h.concat(h.cur, h.build.Tuples[candidate])
		if h.residual != nil {
			tri, err := h.residual.Truth(joined)
			if err != nil {
				return relation.Tuple{}, false, err
			}
			if !tri.IsTrue() {
				continue
			}
		}
		h.matched = true
		h.outRows++
		return joined, true, nil
	}
}

func (h *HashJoin) concat(l, r relation.Tuple) relation.Tuple {
	t := relation.Tuple{Atoms: make([]value.Value, 0, len(l.Atoms)+len(r.Atoms))}
	t.Atoms = append(append(t.Atoms, l.Atoms...), r.Atoms...)
	return t
}

// extractEquiKeys mirrors algebra's equi-conjunct extraction for the
// iterator pipeline.
func extractEquiKeys(on expr.Expr, ls, rs *relation.Schema) (lk, rk []int, residual expr.Expr) {
	var rest []expr.Expr
	var walk func(e expr.Expr)
	walk = func(e expr.Expr) {
		if l, ok := e.(expr.Logic); ok && l.Op == expr.OpAnd {
			walk(l.L)
			walk(l.R)
			return
		}
		if c, ok := e.(expr.Cmp); ok && c.Op == expr.Eq {
			lc, lok := c.L.(expr.Column)
			rc, rok := c.R.(expr.Column)
			if lok && rok {
				li, ri := ls.ColIndex(lc.Name), rs.ColIndex(rc.Name)
				if li >= 0 && ri >= 0 && rs.ColIndex(lc.Name) < 0 && ls.ColIndex(rc.Name) < 0 {
					lk, rk = append(lk, li), append(rk, ri)
					return
				}
				li, ri = ls.ColIndex(rc.Name), rs.ColIndex(lc.Name)
				if li >= 0 && ri >= 0 && rs.ColIndex(rc.Name) < 0 && ls.ColIndex(lc.Name) < 0 {
					lk, rk = append(lk, li), append(rk, ri)
					return
				}
			}
		}
		rest = append(rest, e)
	}
	if on != nil {
		walk(on)
	}
	return lk, rk, expr.And(rest...)
}
