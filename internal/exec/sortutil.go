package exec

import (
	"sort"

	"nra/internal/relation"
)

func sortSliceStable(ts []relation.Tuple, less func(a, b relation.Tuple) bool) {
	sort.SliceStable(ts, func(i, j int) bool { return less(ts[i], ts[j]) })
}
