package exec

import (
	"context"
	"sync"

	"nra/internal/expr"
	"nra/internal/relation"
)

// ParallelJoinIter adapts the partitioned-parallel join to the volcano
// contract: Open materialises both inputs and launches the join on a
// background producer under a cancellable child of the query's
// ExecContext; Next streams the finished result.
//
// Its Close implements the shutdown semantics the pool alone cannot: an
// early Close — before the first Next, or mid-stream — cancels the child
// context (workers stop claiming morsels at the next boundary) and then
// *waits for every in-flight chunk to drain* before closing the inputs
// and returning, so no worker goroutine outlives the operator and no
// worker still touches operator state after Close returns. Close is
// idempotent and safe before Open.
type ParallelJoinIter struct {
	Left, Right Iterator
	On          expr.Expr
	Outer       bool
	Par         int

	child  *ExecContext
	cancel context.CancelFunc
	schema *relation.Schema
	wg     sync.WaitGroup
	resCh  chan parJoinResult
	out    *relation.Relation
	err    error
	got    bool
	pos    int
	closed bool
}

type parJoinResult struct {
	out *relation.Relation
	err error
}

// NewParallelJoinIter joins left ⋈/⟕ right with par-way parallelism.
func NewParallelJoinIter(left, right Iterator, on expr.Expr, outer bool, par int) *ParallelJoinIter {
	return &ParallelJoinIter{Left: left, Right: right, On: on, Outer: outer, Par: par}
}

// Schema returns the joined schema (available after Open).
func (p *ParallelJoinIter) Schema() *relation.Schema { return p.schema }

// Open materialises both inputs and runs the partitioned-parallel join.
func (p *ParallelJoinIter) Open(ec *ExecContext) (err error) {
	defer Guard("parjoin/open", &err)
	p.closed = false
	if err := p.Left.Open(ec); err != nil {
		return err
	}
	if err := p.Right.Open(ec); err != nil {
		return err
	}
	drain := func(it Iterator) (*relation.Relation, error) {
		out := relation.New(it.Schema())
		for {
			t, ok, err := it.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				return out, nil
			}
			out.Append(t)
		}
	}
	l, err := drain(p.Left)
	if err != nil {
		return err
	}
	r, err := drain(p.Right)
	if err != nil {
		return err
	}
	if p.schema, err = parJoinSchema(l.Schema, r.Schema); err != nil {
		return err
	}
	p.child, p.cancel = ec.WithCancel()
	p.resCh = make(chan parJoinResult, 1)
	p.out, p.err, p.got, p.pos = nil, nil, false, 0
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		out, err := ParallelJoin(p.child, l, r, p.On, p.Outer, p.Par)
		p.resCh <- parJoinResult{out, err}
	}()
	return nil
}

// Next streams the materialised join result.
func (p *ParallelJoinIter) Next() (relation.Tuple, bool, error) {
	if !p.got {
		res := <-p.resCh
		p.out, p.err, p.got = res.out, res.err, true
	}
	if p.err != nil {
		return relation.Tuple{}, false, p.err
	}
	if p.pos >= p.out.Len() {
		return relation.Tuple{}, false, nil
	}
	t := p.out.Tuples[p.pos]
	p.pos++
	return t, true, nil
}

// Close releases the materialised result and closes both inputs.
func (p *ParallelJoinIter) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	if p.cancel != nil {
		p.cancel()      // stop claiming new morsels
		p.wg.Wait()     // drain in-flight chunks
		p.child.Close() // release the child watcher
	}
	err := p.Left.Close()
	if rerr := p.Right.Close(); err == nil {
		err = rerr
	}
	return err
}
