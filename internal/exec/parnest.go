package exec

import (
	"fmt"

	"nra/internal/obsv"
	"nra/internal/relation"
)

// Parallel variants of the fused nest + linking-selection operators.
// Since υ_{N1,N2} groups by N1 and every linking predicate is
// partition-safe (algebra.LinkPred.PartitionSafe: a group's verdict reads
// only its own members), the flat input partitions cleanly by the nest
// key: sort in parallel, then split the sorted run into group-aligned
// ranges and evaluate each range's groups concurrently. Range outputs
// concatenate in range order, so the result is byte-identical to the
// serial operators — `go test` goldens and paper-figure reproductions do
// not depend on the degree of parallelism.

// ParallelNestLink is NestLink evaluated with up to par workers. The
// sorted input is split at group boundaries (a group never spans two
// ranges), each range runs the fused single-pass scan independently, and
// the per-range outputs are concatenated in key order.
func ParallelNestLink(ec *ExecContext, rel *relation.Relation, keyCols, by []string, spec *LinkSpec, pad []string, par int) (res *relation.Relation, err error) {
	defer Guard("nestlink", &err)
	if par <= 1 || !spec.Pred.PartitionSafe() {
		return NestLink(ec, rel, keyCols, by, spec, pad)
	}
	// The serial delegation above records its own span; the parallel fast
	// path records one here, so each execution is covered exactly once.
	if ec.Tracing() {
		sp := ec.StartSpan("nestlink", obsv.KindNestLink)
		sp.AddRowsIn(int64(rel.Len()))
		defer func() {
			if res != nil {
				sp.AddRowsOut(int64(res.Len()))
			}
			sp.End()
		}()
	}
	plan, err := prepareNestLink(rel.Schema, keyCols, by, spec, pad)
	if err != nil {
		return nil, err
	}
	sorted, _, err := spillSortBy(ec, "nestlink/sort", rel.Tuples, plan.keyIdx, rel.Schema, par)
	if err != nil {
		return nil, err
	}
	bounds := groupAlignedBounds(sorted, plan.keyIdx, par)
	outs := make([]*relation.Relation, len(bounds)-1)
	err = Run(ec, par, len(outs), func(w int) error {
		out, err := plan.scan(ec, sorted[bounds[w]:bounds[w+1]])
		if err != nil {
			return err
		}
		outs[w] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatRelations(plan.outSchema, outs), nil
}

// ParallelNestLinkChain is NestLinkChain evaluated with up to par
// workers: one parallel sort by the concatenated level keys, then
// concurrent chain scans over ranges aligned on the outermost level's
// group boundaries (inner levels group by refinements of the outer key,
// so an outermost-group range contains every inner group whole).
func ParallelNestLinkChain(ec *ExecContext, rel *relation.Relation, levels []ChainLevel, outBy []string, par int) (res *relation.Relation, err error) {
	defer Guard("nestlinkchain", &err)
	safe := true
	for i := range levels {
		if !levels[i].Spec.Pred.PartitionSafe() {
			safe = false
			break
		}
	}
	if par <= 1 || !safe {
		return NestLinkChain(ec, rel, levels, outBy)
	}
	if ec.Tracing() {
		sp := ec.StartSpan(fmt.Sprintf("nestlinkchain (%d levels)", len(levels)), obsv.KindChain)
		sp.AddRowsIn(int64(rel.Len()))
		defer func() {
			if res != nil {
				sp.AddRowsOut(int64(res.Len()))
			}
			sp.End()
		}()
	}
	plan, err := prepareChain(rel.Schema, levels, outBy)
	if err != nil {
		return nil, err
	}
	sorted, _, err := spillSortBy(ec, "nestlink/sort", rel.Tuples, plan.sortIdx, rel.Schema, par)
	if err != nil {
		return nil, err
	}
	bounds := groupAlignedBounds(sorted, plan.levels[0].keyIdx, par)
	outs := make([]*relation.Relation, len(bounds)-1)
	err = Run(ec, par, len(outs), func(w int) error {
		out, err := plan.scan(ec, sorted[bounds[w]:bounds[w+1]])
		if err != nil {
			return err
		}
		outs[w] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatRelations(plan.outSchema, outs), nil
}

// groupAlignedBounds splits sorted tuples into at most p contiguous
// ranges whose boundaries fall on group-key changes, so every group is
// wholly contained in one range. Adjacent equal-key tuples are guaranteed
// adjacent because the input is sorted by exactly these columns.
func groupAlignedBounds(tuples []relation.Tuple, keyIdx []int, p int) []int {
	raw := chunkBounds(len(tuples), p)
	bounds := []int{0}
	for _, b := range raw[1 : len(raw)-1] {
		if b <= bounds[len(bounds)-1] {
			continue
		}
		// Advance b to the next group boundary at or after it.
		for b < len(tuples) && tuples[b].KeyOn(keyIdx) == tuples[b-1].KeyOn(keyIdx) {
			b++
		}
		if b > bounds[len(bounds)-1] && b < len(tuples) {
			bounds = append(bounds, b)
		}
	}
	return append(bounds, len(tuples))
}
