package exec

import "sync/atomic"

// MemPool is a shared, byte-accounted memory budget pooled across
// concurrent queries: every governed ExecContext wired to the pool
// (Limits.MemPool) charges its working-state reservations against the
// pool *in addition to* its own per-query budget, so N in-flight queries
// together never hold more spillable state in memory than the pool's
// capacity. A reservation the pool refuses makes the operator take its
// spill path — exactly the graceful degradation a per-query budget
// triggers, but driven by aggregate pressure instead of a per-query
// assumption that the whole machine is available.
//
// A MemPool is safe for concurrent use. A nil *MemPool imposes no bound;
// every method is safe on it.
type MemPool struct {
	cap     int64
	used    atomic.Int64
	peak    atomic.Int64
	denials atomic.Int64
	forced  atomic.Int64
}

// NewMemPool returns a pool with the given capacity in bytes. bytes ≤ 0
// returns nil — the unbounded pool.
func NewMemPool(bytes int64) *MemPool {
	if bytes <= 0 {
		return nil
	}
	return &MemPool{cap: bytes}
}

// TryReserve attempts to reserve n bytes, reporting success. On refusal
// nothing is charged and the denial counter is bumped — the caller
// should degrade to its spill path.
func (p *MemPool) TryReserve(n int64) bool {
	if p == nil {
		return true
	}
	for {
		cur := p.used.Load()
		if cur+n > p.cap {
			p.denials.Add(1)
			return false
		}
		if p.used.CompareAndSwap(cur, cur+n) {
			break
		}
	}
	p.notePeak()
	return true
}

// Reserve charges n bytes unconditionally — fixed, non-spillable
// operator state (bitmaps, merge cursors) that has no disk fallback.
// Like ExecContext.Reserve it may overshoot the capacity; the overshoot
// is bounded because per-query Reserve already refuses pathological
// single allocations.
func (p *MemPool) Reserve(n int64) {
	if p == nil {
		return
	}
	p.used.Add(n)
	p.forced.Add(n)
	p.notePeak()
}

// Release returns n reserved bytes to the pool.
func (p *MemPool) Release(n int64) {
	if p == nil {
		return
	}
	p.used.Add(-n)
}

func (p *MemPool) notePeak() {
	for {
		pk, u := p.peak.Load(), p.used.Load()
		if u <= pk || p.peak.CompareAndSwap(pk, u) {
			return
		}
	}
}

// Cap returns the pool capacity in bytes (0 for the nil pool).
func (p *MemPool) Cap() int64 {
	if p == nil {
		return 0
	}
	return p.cap
}

// Used returns the bytes currently reserved from the pool.
func (p *MemPool) Used() int64 {
	if p == nil {
		return 0
	}
	return p.used.Load()
}

// Peak returns the high-water mark of reserved bytes.
func (p *MemPool) Peak() int64 {
	if p == nil {
		return 0
	}
	return p.peak.Load()
}

// Denials returns how many reservations the pool refused (each one a
// spill decision induced by aggregate memory pressure).
func (p *MemPool) Denials() int64 {
	if p == nil {
		return 0
	}
	return p.denials.Load()
}

// Forced returns the cumulative bytes charged unconditionally (fixed,
// non-spillable state via Reserve). Spillable reservations are granted
// only under the capacity, so Peak ≤ Cap + Forced always holds — Forced
// bounds how far fixed state can push the pool past its cap.
func (p *MemPool) Forced() int64 {
	if p == nil {
		return 0
	}
	return p.forced.Load()
}
