package exec

import (
	"io"

	"nra/internal/algebra"
	"nra/internal/expr"
	"nra/internal/obsv"
	"nra/internal/relation"
)

// joinSpill is the budget-bounded hash join: the grace-style degradation
// ParallelJoin and HashJoin take when the build side does not fit the
// memory budget. It produces output byte-identical to algebra.Join /
// algebra.LeftOuterJoin (and therefore to the partitioned-parallel join):
//
//  1. the build side is split into consecutive chunks each within the
//     per-chunk working-state bound, so only one chunk's hash table is in
//     memory at a time;
//  2. for each chunk, the whole probe side is scanned in input order and
//     every surviving joined tuple is written to that chunk's spill file
//     tagged with its probe-row index; a matched bitmap accumulates
//     outer-join padding decisions across chunks;
//  3. a final merge walks probe indexes 0..n-1, concatenating each
//     index's records from the chunk files in chunk order.
//
// Chunks are consecutive ranges of the build input, so "chunk order" is
// ascending build-row order — exactly the in-memory join's match order
// (hash buckets list build rows in input order). Padding appends after a
// probe tuple's last match, as in the serial loop.
//
// A nil lk/rk (no equality conjunct) degrades each chunk to a nested-loop
// scan, mirroring the in-memory fallback.
func joinSpill(ec *ExecContext, op string, l, r *relation.Relation, lk, rk []int, check *expr.Compiled, schema *relation.Schema, outer bool) (out *relation.Relation, err error) {
	if ec.Tracing() {
		sp := ec.StartSpan(op+"/grace", obsv.KindGraceJoin)
		sp.AddRowsIn(int64(l.Len() + r.Len()))
		defer func() {
			if out != nil {
				sp.AddRowsOut(int64(out.Len()))
			}
			sp.End()
		}()
	}
	bounds := algebra.SpillChunks(r.Tuples, TupleBytes, ec.spillChunkBytes())
	readers := make([]*spillReader, 0, len(bounds)-1)
	defer func() {
		for _, rd := range readers {
			rd.close()
		}
	}()

	var matched []bool
	if outer {
		if err := ec.Reserve(op, int64(l.Len())); err != nil {
			return nil, err
		}
		defer ec.Release(int64(l.Len()))
		matched = make([]bool, l.Len())
	}
	pad := nullNested(r.Schema)

	for w := 0; w+1 < len(bounds); w++ {
		if err := ec.Check(op); err != nil {
			return nil, err
		}
		lo, hi := bounds[w], bounds[w+1]
		chunkBytes := tuplesBytes(r.Tuples[lo:hi])
		if err := ec.Reserve(op, chunkBytes); err != nil {
			return nil, err
		}
		release := func() { ec.Release(chunkBytes) }

		// Build this chunk's table; NULL-keyed build rows match nothing.
		var table map[string][]int
		if len(rk) > 0 {
			table = make(map[string][]int, hi-lo)
		rows:
			for ri := lo; ri < hi; ri++ {
				t := r.Tuples[ri]
				for _, k := range rk {
					if t.Atoms[k].IsNull() {
						continue rows
					}
				}
				key := t.KeyOn(rk)
				table[key] = append(table[key], ri)
			}
		}

		sw, err := newSpillWriter(ec, op)
		if err != nil {
			release()
			return nil, err
		}
		for li, lt := range l.Tuples {
			if li&255 == 0 {
				if err := ec.Check(op); err != nil {
					sw.close()
					release()
					return nil, err
				}
			}
			var cand []int
			if table != nil {
				allKeys := true
				for _, k := range lk {
					if lt.Atoms[k].IsNull() {
						allKeys = false
						break
					}
				}
				if allKeys {
					cand = table[lt.KeyOn(lk)]
				}
			}
			next := lo // nested-loop fallback cursor
			for {
				var ri int
				if table != nil {
					if len(cand) == 0 {
						break
					}
					ri, cand = cand[0], cand[1:]
				} else {
					if next >= hi {
						break
					}
					ri = next
					next++
				}
				joined := concatNested(lt, r.Tuples[ri])
				if check != nil {
					tri, err := check.Truth(joined)
					if err != nil {
						sw.close()
						release()
						return nil, &QueryError{Op: op, Err: err}
					}
					if !tri.IsTrue() {
						continue
					}
				}
				if matched != nil {
					matched[li] = true
				}
				if err := sw.writeRecord(uint64(li), joined); err != nil {
					sw.close()
					release()
					return nil, &QueryError{Op: op, Err: err}
				}
			}
		}
		n, err := sw.finish()
		release()
		if err != nil {
			sw.close()
			return nil, err
		}
		ec.NoteSpill(n)
		readers = append(readers, newSpillReader(ec, op, sw.f, schema))
	}

	// Merge: per probe index, chunk files in chunk (= build) order. Each
	// reader holds one lookahead record; its tags are non-decreasing
	// because phase 2 scanned probes in order.
	heads := make([]relation.Tuple, len(readers))
	tags := make([]uint64, len(readers))
	alive := make([]bool, len(readers))
	advance := func(w int) error {
		tag, t, err := readers[w].readRecord()
		if err == io.EOF {
			alive[w] = false
			return nil
		}
		if err != nil {
			return err
		}
		tags[w], heads[w], alive[w] = tag, t, true
		return nil
	}
	for w := range readers {
		if err := advance(w); err != nil {
			return nil, err
		}
	}
	out = relation.New(schema)
	for li, lt := range l.Tuples {
		if li&1023 == 0 {
			if err := ec.Check(op); err != nil {
				return nil, err
			}
		}
		for w := range readers {
			for alive[w] && tags[w] == uint64(li) {
				out.Append(heads[w])
				if err := advance(w); err != nil {
					return nil, err
				}
			}
		}
		if outer && !matched[li] {
			out.Append(concatNested(lt, pad))
		}
	}
	return out, nil
}
