package exec

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file is the parallel substrate of the executor: one bounded,
// process-wide worker pool shared by every partitioned operator
// (partitioned hash join, parallel nest + linking selection, parallel
// sort). Operators split their work into independent morsels and submit
// them through Pool.Run; the pool bounds the number of simultaneously
// running worker goroutines so concurrent operators never oversubscribe
// the machine.

// DefaultParallelism is the degree of parallelism used when a caller asks
// for "as parallel as the hardware allows": runtime.NumCPU(), overridable
// with the NRA_PARALLELISM environment variable (values < 1 are ignored).
func DefaultParallelism() int {
	if s := os.Getenv("NRA_PARALLELISM"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.NumCPU()
}

// Pool is a counting semaphore bounding the helper goroutines spawned by
// parallel operators. The zero Pool is not usable; construct with NewPool.
//
// The submitting goroutine always participates in its own work, so Run
// never blocks waiting for pool capacity and nested submissions cannot
// deadlock: when the pool is saturated an operator simply degrades toward
// serial execution on the caller's goroutine.
type Pool struct {
	slots chan struct{}
}

// NewPool returns a pool allowing up to size concurrent helper workers
// (minimum 1).
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{slots: make(chan struct{}, size)}
}

// sharedPool is the process-wide pool all operators draw from.
var (
	sharedPool     *Pool
	sharedPoolOnce sync.Once
)

// SharedPool returns the process-wide worker pool, sized by
// DefaultParallelism at first use.
func SharedPool() *Pool {
	sharedPoolOnce.Do(func() { sharedPool = NewPool(DefaultParallelism()) })
	return sharedPool
}

// tryAcquire claims a helper slot without blocking.
func (p *Pool) tryAcquire() bool {
	select {
	case p.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (p *Pool) release() { <-p.slots }

// Run executes task(0) … task(n-1) using at most par concurrent workers:
// the calling goroutine plus up to par-1 helpers drawn non-blockingly
// from the pool. Tasks are claimed from a shared counter, so uneven task
// costs balance automatically (morsel-style scheduling). The first error
// cancels the remaining tasks and is returned. Tasks must be independent;
// they may not assume any ordering.
//
// The run is governed by ec: workers stop claiming morsels as soon as ec
// is cancelled (returning the wrapped cancellation error), a panic inside
// a task is recovered into a *QueryError instead of killing the process,
// and — crucially for clean shutdown — Run never returns before every
// in-flight task has finished, so a caller observing Run's return knows
// no worker still touches its state.
func (p *Pool) Run(ec *ExecContext, par, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if par > n {
		par = n
	}
	runTask := func(i int) (err error) {
		defer Guard("pool/task", &err)
		return task(i)
	}
	// Morsel accounting goes to whichever operator span is open; claims
	// are per-task, so the tracer lock is off the per-tuple path.
	sp := ec.CurrentSpan()
	if par <= 1 {
		sp.EnsureWorkers(1)
		for i := 0; i < n; i++ {
			if err := ec.Check("pool"); err != nil {
				return err
			}
			sp.Morsel(0)
			if err := runTask(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		first  error
		wg     sync.WaitGroup
	)
	sp.EnsureWorkers(par)
	worker := func(id int) {
		for !failed.Load() && ec.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			sp.Morsel(id)
			if err := runTask(i); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
				failed.Store(true)
				return
			}
		}
	}
	for w := 1; w < par; w++ {
		if !p.tryAcquire() {
			break // pool saturated: the caller picks up the slack
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer p.release()
			worker(id)
		}(w)
	}
	worker(0) // the caller always works too
	wg.Wait() // drain: all in-flight tasks complete before Run returns
	mu.Lock()
	defer mu.Unlock()
	if first == nil {
		// Cancellation without a task error: surface it, because tasks
		// were skipped and the results are incomplete.
		first = ec.Check("pool")
	}
	return first
}

// Run executes tasks on the shared pool — see Pool.Run.
func Run(ec *ExecContext, par, n int, task func(i int) error) error {
	return SharedPool().Run(ec, par, n, task)
}
