package exec

import (
	"fmt"

	"nra/internal/obsv"
	"nra/internal/relation"
	"nra/internal/value"
	"nra/internal/vec"
)

// The vectorized fused nest + linking selection operators. The columnar
// side replaces what profiling shows dominates the row operators — the
// boxed multi-key sort and the per-tuple KeyOn string materialization
// for group-boundary detection — with the typed SortIdx permutation and
// canonical key equality over vectors. Group members are then folded
// through the same quantState accumulator as the row scan, reading
// each member's two or three relevant cells straight out of the column
// vectors, so verdicts, 2VL collapses, aggregate folds and padding
// behave identically by construction.

// VecNestLink is the vectorized fused single-level nest + linking
// selection — the batch counterpart of NestLink, byte-identical in
// output order. b optionally supplies the already-converted batch of
// rel (the planner's batch cache); nil converts on the spot. A
// non-empty reason means the input cannot batch (nested attributes)
// and the caller must run the row path.
func VecNestLink(ec *ExecContext, rel *relation.Relation, b *vec.Batch, keyCols, by []string, spec *LinkSpec, pad []string) (res *relation.Relation, reason string, err error) {
	defer Guard("nestlink", &err)
	if b == nil {
		var ok bool
		if b, ok = vec.FromRelation(rel); !ok {
			return nil, "nested input", nil
		}
	}
	var sp *obsv.Span
	if ec.Tracing() {
		sp = ec.StartSpan("nestlink", obsv.KindNestLink)
		sp.AddRowsIn(int64(rel.Len()))
		sp.AddBatches(1)
		defer func() {
			if res != nil {
				sp.AddRowsOut(int64(res.Len()))
			}
			sp.End()
		}()
	}
	plan, err := prepareNestLink(rel.Schema, keyCols, by, spec, pad)
	if err != nil {
		return nil, "", err
	}
	ord, err := vecSort(ec, "nestlink/sort", b, plan.keyIdx)
	if err != nil {
		return nil, "", err
	}
	offs := vec.GroupOffsets(b.Cols, ord, plan.keyIdx)
	b.Offsets = [][]int32{offs}

	out := relation.New(plan.outSchema)
	var state quantState
	for g := 0; g+1 < len(offs); g++ {
		if g&255 == 0 {
			if err := ec.Check("nestlink/scan"); err != nil {
				return nil, "", err
			}
		}
		rep := ord[offs[g]]
		state.reset(spec)
		for p := offs[g]; p < offs[g+1]; p++ {
			row := int(ord[p])
			if b.Cols[spec.PresIdx].IsNull(row) {
				continue // padding, not a set member
			}
			if err := state.addMember(spec, linkAttrVec(spec, b.Cols, row), linkedValVec(spec, b.Cols, row)); err != nil {
				return nil, "", err
			}
		}
		if err := emitNestLink(out, plan, &state, b.Cols, rep); err != nil {
			return nil, "", err
		}
	}
	return out, "", nil
}

// emitNestLink appends one closed group's output row, honoring strict
// vs padded mode exactly as the row scan does; rep is the group's
// representative row index.
func emitNestLink(out *relation.Relation, plan *nestLinkPlan, state *quantState, cols []*vec.Vector, rep int32) error {
	v, err := state.verdict(plan.spec, linkAttrVec(plan.spec, cols, int(rep)))
	if err != nil {
		return err
	}
	row := relation.Tuple{Atoms: make([]value.Value, len(plan.byIdx))}
	for i, j := range plan.byIdx {
		row.Atoms[i] = cols[j].Value(int(rep))
	}
	if v.IsTrue() {
		out.Append(row)
		return nil
	}
	if plan.padIdx == nil {
		return nil // strict: discard
	}
	for _, oi := range plan.padIdx {
		row.Atoms[oi] = value.Null
	}
	out.Append(row)
	return nil
}

// VecNestLinkChain is the vectorized fully fused nest chain — the batch
// counterpart of NestLinkChain. One typed sort orders the flat input by
// the concatenated level keys; per-level group-offset arrays drive the
// same level-close/member-fold logic as the row scan. b optionally
// supplies the already-converted batch of rel; nil converts on the
// spot. A non-empty reason means the input cannot batch and the caller
// must run the row path.
func VecNestLinkChain(ec *ExecContext, rel *relation.Relation, b *vec.Batch, levels []ChainLevel, outBy []string) (res *relation.Relation, reason string, err error) {
	defer Guard("nestlinkchain", &err)
	if b == nil {
		var ok bool
		if b, ok = vec.FromRelation(rel); !ok {
			return nil, "nested input", nil
		}
	}
	var sp *obsv.Span
	if ec.Tracing() {
		sp = ec.StartSpan(fmt.Sprintf("nestlinkchain (%d levels)", len(levels)), obsv.KindChain)
		sp.AddRowsIn(int64(rel.Len()))
		sp.AddBatches(1)
		defer func() {
			if res != nil {
				sp.AddRowsOut(int64(res.Len()))
			}
			sp.End()
		}()
	}
	plan, err := prepareChain(rel.Schema, levels, outBy)
	if err != nil {
		return nil, "", err
	}
	ord, err := vecSort(ec, "nestlink/sort", b, plan.sortIdx)
	if err != nil {
		return nil, "", err
	}

	// changed[p] is the outermost level whose own group key differs
	// between sorted positions p-1 and p (len(levels) = no boundary).
	// A level-l group's identity is the concatenation of keys 0..l, so
	// a boundary at level i opens new groups at every level >= i —
	// exactly the "first level whose KeyOn differs, then reset all
	// deeper levels" logic of the row scan.
	n := len(plan.levels)
	changed := make([]int, len(ord))
	b.Offsets = make([][]int32, n)
	for l := 0; l < n; l++ {
		b.Offsets[l] = []int32{0}
	}
	for p := range ord {
		if p == 0 {
			changed[p] = 0
			continue
		}
		changed[p] = n
		for l := 0; l < n; l++ {
			if !vecKeysEqual(b.Cols, plan.levels[l].keyIdx, ord[p-1], ord[p]) {
				changed[p] = l
				break
			}
		}
		for l := changed[p]; l < n; l++ {
			b.Offsets[l] = append(b.Offsets[l], int32(p))
		}
	}
	if len(ord) > 0 {
		for l := 0; l < n; l++ {
			b.Offsets[l] = append(b.Offsets[l], int32(len(ord)))
		}
	}

	out := relation.New(plan.outSchema)
	states := make([]quantState, n)
	reps := make([]int32, n)
	started := false

	closeLevel := func(i int) error {
		rep := int(reps[i])
		v, err := states[i].verdict(plan.levels[i].Spec, linkAttrVec(plan.levels[i].Spec, b.Cols, rep))
		if err != nil {
			return err
		}
		if i == 0 {
			if v.IsTrue() {
				row := relation.Tuple{Atoms: make([]value.Value, len(plan.outIdx))}
				for oi, j := range plan.outIdx {
					row.Atoms[oi] = b.Cols[j].Value(int(reps[0]))
				}
				out.Append(row)
			}
			return nil
		}
		up := plan.levels[i-1].Spec
		if !v.IsTrue() {
			return nil
		}
		if b.Cols[up.PresIdx].IsNull(rep) {
			return nil
		}
		return states[i-1].addMember(up, linkAttrVec(up, b.Cols, rep), linkedValVec(up, b.Cols, rep))
	}

	deep := plan.levels[n-1].Spec
	for pos, row := range ord {
		if pos&255 == 0 {
			if err := ec.Check("nestlinkchain/scan"); err != nil {
				return nil, "", err
			}
		}
		if ch := changed[pos]; ch < n {
			if started {
				for i := n - 1; i >= ch; i-- {
					if err := closeLevel(i); err != nil {
						return nil, "", err
					}
				}
			}
			for i := ch; i < n; i++ {
				states[i].reset(plan.levels[i].Spec)
				reps[i] = row
			}
			started = true
		}
		if !b.Cols[deep.PresIdx].IsNull(int(row)) {
			if err := states[n-1].addMember(deep, linkAttrVec(deep, b.Cols, int(row)), linkedValVec(deep, b.Cols, int(row))); err != nil {
				return nil, "", err
			}
		}
	}
	if started {
		for i := n - 1; i >= 0; i-- {
			if err := closeLevel(i); err != nil {
				return nil, "", err
			}
		}
	}
	return out, "", nil
}

// linkAttrVec is linkAttr reading from column vectors: the linking
// attribute of the group representative (or the predicate's constant).
func linkAttrVec(spec *LinkSpec, cols []*vec.Vector, row int) value.Value {
	if spec.Pred.Const != nil {
		return *spec.Pred.Const
	}
	if spec.AttrIdx < 0 {
		return value.Null
	}
	return cols[spec.AttrIdx].Value(row)
}

// linkedValVec is linkedVal reading from column vectors: the member's
// linked attribute B.
func linkedValVec(spec *LinkSpec, cols []*vec.Vector, row int) value.Value {
	if spec.LinkedIdx < 0 {
		return value.Null
	}
	return cols[spec.LinkedIdx].Value(row)
}

// vecKeysEqual reports canonical key equality between rows a and b over
// the given key columns — the test KeyOn string comparison performs.
func vecKeysEqual(cols []*vec.Vector, keyIdx []int, a, b int32) bool {
	for _, k := range keyIdx {
		if !vec.KeyEqualAt(cols[k], int(a), cols[k], int(b)) {
			return false
		}
	}
	return true
}

// vecSort runs the typed sort-index kernel under the same span shape as
// the row operators' spillSortBy, so traces keep their structure.
func vecSort(ec *ExecContext, op string, b *vec.Batch, keyIdx []int) ([]int32, error) {
	if err := ec.Check(op); err != nil {
		return nil, err
	}
	var sp *obsv.Span
	if ec.Tracing() {
		sp = ec.StartSpan(op, obsv.KindSort)
		sp.AddRowsIn(int64(b.End))
		defer func() {
			sp.AddRowsOut(int64(b.End))
			sp.End()
		}()
	}
	return vec.SortIdx(b.Cols, b.End, keyIdx), nil
}
