package exec

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"nra/internal/algebra"
	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/value"
)

func TestPoolRun(t *testing.T) {
	pool := NewPool(4)
	var sum atomic.Int64
	if err := pool.Run(Background(), 8, 1000, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := sum.Load(), int64(999*1000/2); got != want {
		t.Fatalf("sum = %d, want %d (some tasks ran zero or twice)", got, want)
	}

	boom := fmt.Errorf("boom")
	err := pool.Run(Background(), 4, 100, func(i int) error {
		if i == 37 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}

	// n = 0 and par > n are fine.
	if err := pool.Run(Background(), 8, 0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := 0
	if err := pool.Run(Background(), 64, 1, func(int) error { ran++; return nil }); err != nil || ran != 1 {
		t.Fatalf("ran=%d err=%v", ran, err)
	}
}

// randomRel builds a deterministic pseudo-random relation with duplicate
// and NULL key values — the shapes that stress partition boundaries.
func randomRel(name string, cols []string, n int, rng *rand.Rand, nullFrac float64, domain int) *relation.Relation {
	rows := make([][]any, n)
	for i := range rows {
		row := make([]any, len(cols))
		for j := range row {
			if rng.Float64() < nullFrac {
				row[j] = nil
			} else {
				row[j] = rng.Intn(domain)
			}
		}
		rows[i] = row
	}
	return relation.MustFromRows(name, cols, rows...)
}

// mustEqualSeq fails unless two relations hold identical tuple sequences
// (order-sensitive — the determinism guarantee, stronger than EqualSet).
func mustEqualSeq(t *testing.T, label string, got, want *relation.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d tuples, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Tuples {
		if got.Tuples[i].Key() != want.Tuples[i].Key() {
			t.Fatalf("%s: tuple %d differs:\n got  %v\n want %v", label, i, got.Tuples[i], want.Tuples[i])
		}
	}
}

func TestParallelSortByMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 10, 257, 2048, 5000} {
		rel := randomRel("r", []string{"a", "b", "c"}, n, rng, 0.15, 13)
		idx := []int{0, 1}
		serial := &relation.Relation{Schema: rel.Schema, Tuples: append([]relation.Tuple(nil), rel.Tuples...)}
		serial.SortBy("a", "b")
		for _, p := range []int{1, 2, 3, 4, 8} {
			got, err := parallelSortBy(Background(), rel.Tuples, idx, p)
			if err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			mustEqualSeq(t, fmt.Sprintf("n=%d p=%d", n, p),
				&relation.Relation{Schema: rel.Schema, Tuples: got}, serial)
		}
	}
}

func TestGroupAlignedBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := randomRel("r", []string{"k", "v"}, 1000, rng, 0.2, 7)
	idx := []int{0}
	sorted, err := parallelSortBy(Background(), rel.Tuples, idx, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 7, 16} {
		bounds := groupAlignedBounds(sorted, idx, p)
		if bounds[0] != 0 || bounds[len(bounds)-1] != len(sorted) {
			t.Fatalf("p=%d: bounds %v do not cover the input", p, bounds)
		}
		for i := 1; i < len(bounds)-1; i++ {
			b := bounds[i]
			if b <= bounds[i-1] {
				t.Fatalf("p=%d: bounds %v not strictly increasing", p, bounds)
			}
			if sorted[b].KeyOn(idx) == sorted[b-1].KeyOn(idx) {
				t.Fatalf("p=%d: boundary %d splits group %q", p, b, sorted[b].KeyOn(idx))
			}
		}
	}
}

func TestParallelJoinMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := randomRel("l", []string{"a", "x"}, 700, rng, 0.1, 40)
	r := randomRel("r", []string{"b", "y"}, 900, rng, 0.1, 40)

	equi := expr.Compare(expr.Eq, expr.Col("a"), expr.Col("b"))
	residual := expr.And(equi, expr.Compare(expr.Lt, expr.Col("x"), expr.Col("y")))
	theta := expr.Compare(expr.Lt, expr.Col("a"), expr.Col("b")) // no equi conjunct: loop fallback

	cases := []struct {
		name  string
		on    expr.Expr
		outer bool
	}{
		{"inner-equi", equi, false},
		{"outer-equi", equi, true},
		{"inner-residual", residual, false},
		{"outer-residual", residual, true},
		{"inner-theta", theta, false},
		{"outer-theta", theta, true},
		{"cross", nil, false},
	}
	for _, tc := range cases {
		var want *relation.Relation
		var err error
		if tc.outer {
			want, err = algebra.LeftOuterJoin(l, r, tc.on)
		} else {
			want, err = algebra.Join(l, r, tc.on)
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 4, 8} {
			got, err := ParallelJoin(Background(), l, r, tc.on, tc.outer, p)
			if err != nil {
				t.Fatalf("%s p=%d: %v", tc.name, p, err)
			}
			mustEqualSeq(t, fmt.Sprintf("%s p=%d", tc.name, p), got, want)
		}
	}
}

// TestParallelJoinNestedGroups covers the §4.2.4 pushdown shape: the
// build side carries a nested attribute that must survive partitioned
// build/probe and NULL padding.
func TestParallelJoinNestedGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	l := randomRel("l", []string{"a", "x"}, 300, rng, 0.1, 25)
	flat := randomRel("f", []string{"b", "v"}, 400, rng, 0.1, 25)
	nested, err := algebra.Nest(flat, []string{"b"}, []string{"v"}, "grp")
	if err != nil {
		t.Fatal(err)
	}
	on := expr.Compare(expr.Eq, expr.Col("a"), expr.Col("b"))
	want, err := algebra.LeftOuterJoin(l, nested, on)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8} {
		got, err := ParallelJoin(Background(), l, nested, on, true, p)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualSeq(t, fmt.Sprintf("nested p=%d", p), got, want)
	}
}

// nestLinkInput builds a flat relation shaped like an outer-join result:
// group key k, linking attribute A, inner presence pk (NULL = padding)
// and linked attribute B.
func nestLinkInput(n int, rng *rand.Rand) *relation.Relation {
	rows := make([][]any, n)
	for i := range rows {
		var a, pk, b any
		if rng.Float64() < 0.15 {
			a = nil
		} else {
			a = rng.Intn(9)
		}
		if rng.Float64() < 0.2 {
			pk, b = nil, nil // outer-join padding: empty-group marker
		} else {
			pk = i
			if rng.Float64() < 0.2 {
				b = nil
			} else {
				b = rng.Intn(9)
			}
		}
		rows[i] = []any{rng.Intn(60), a, pk, b}
	}
	return relation.MustFromRows("j", []string{"k", "A", "pk", "B"}, rows...)
}

func linkSpecs() map[string]algebra.LinkPred {
	return map[string]algebra.LinkPred{
		"exists":     algebra.ExistsPred("sub", "pk"),
		"not-exists": algebra.NotExistsPred("sub", "pk"),
		"in":         algebra.SomePred("A", expr.Eq, "sub", "B", "pk"),
		"not-in":     algebra.AllPred("A", expr.Ne, "sub", "B", "pk"),
		"lt-some":    algebra.SomePred("A", expr.Lt, "sub", "B", "pk"),
		"gt-all":     algebra.AllPred("A", expr.Gt, "sub", "B", "pk"),
		"gt-max":     algebra.AggPred("A", expr.Gt, algebra.AggMax, "sub", "B", "pk"),
		"eq-count":   algebra.AggPred("A", expr.Eq, algebra.AggCountStar, "sub", "", "pk"),
	}
}

func TestParallelNestLinkMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rel := nestLinkInput(3000, rng)
	schema := rel.Schema
	for name, pred := range linkSpecs() {
		spec := &LinkSpec{
			Pred:      pred,
			AttrIdx:   schema.MustColIndex("A"),
			LinkedIdx: schema.MustColIndex("B"),
			PresIdx:   schema.MustColIndex("pk"),
		}
		if pred.Empty != algebra.NoEmptyTest {
			spec.AttrIdx, spec.LinkedIdx = -1, -1
		}
		if pred.Agg == algebra.AggCountStar {
			spec.LinkedIdx = -1
		}
		for _, pad := range [][]string{nil, {"A"}} {
			want, err := NestLink(Background(), rel, []string{"k"}, []string{"k", "A"}, spec, pad)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{2, 4, 8} {
				got, err := ParallelNestLink(Background(), rel, []string{"k"}, []string{"k", "A"}, spec, pad, p)
				if err != nil {
					t.Fatalf("%s p=%d: %v", name, p, err)
				}
				mustEqualSeq(t, fmt.Sprintf("%s pad=%v p=%d", name, pad, p), got, want)
			}
		}
	}
}

func TestParallelNestLinkChainMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	// Flat input of a two-link chain: block0 key k0, block1 key k1 (NULL =
	// level-1 padding), block2 key k2 (NULL = level-2 padding), attrs.
	n := 4000
	rows := make([][]any, n)
	for i := range rows {
		k0 := rng.Intn(40)
		var k1, a1, k2, b2 any
		if rng.Float64() < 0.15 {
			k1, a1, k2, b2 = nil, nil, nil, nil
		} else {
			k1 = rng.Intn(200)
			if rng.Float64() < 0.2 {
				a1 = nil
			} else {
				a1 = rng.Intn(9)
			}
			if rng.Float64() < 0.25 {
				k2, b2 = nil, nil
			} else {
				k2 = i
				if rng.Float64() < 0.2 {
					b2 = nil
				} else {
					b2 = rng.Intn(9)
				}
			}
		}
		rows[i] = []any{k0, rng.Intn(9), k1, a1, k2, b2}
	}
	rel := relation.MustFromRows("j", []string{"k0", "a0", "k1", "a1", "k2", "b2"}, rows...)
	schema := rel.Schema

	spec := func(pred algebra.LinkPred, attr, linked, pres string) *LinkSpec {
		s := &LinkSpec{Pred: pred, AttrIdx: -1, LinkedIdx: -1, PresIdx: schema.MustColIndex(pres)}
		if attr != "" {
			s.AttrIdx = schema.MustColIndex(attr)
		}
		if linked != "" {
			s.LinkedIdx = schema.MustColIndex(linked)
		}
		return s
	}
	combos := []struct {
		name   string
		l1, l2 *LinkSpec
	}{
		{"all+exists",
			spec(algebra.AllPred("a0", expr.Ne, "c", "a1", "k1"), "a0", "a1", "k1"),
			spec(algebra.ExistsPred("c", "k2"), "", "", "k2")},
		{"some+not-exists",
			spec(algebra.SomePred("a0", expr.Eq, "c", "a1", "k1"), "a0", "a1", "k1"),
			spec(algebra.NotExistsPred("c", "k2"), "", "", "k2")},
		{"all+all",
			spec(algebra.AllPred("a0", expr.Gt, "c", "a1", "k1"), "a0", "a1", "k1"),
			spec(algebra.AllPred("a1", expr.Ne, "c", "b2", "k2"), "a1", "b2", "k2")},
	}
	for _, c := range combos {
		mk := func() []ChainLevel {
			return []ChainLevel{
				{KeyCols: []string{"k0"}, Spec: c.l1},
				{KeyCols: []string{"k1"}, Spec: c.l2},
			}
		}
		want, err := NestLinkChain(Background(), rel, mk(), []string{"k0", "a0"})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 4, 8} {
			got, err := ParallelNestLinkChain(Background(), rel, mk(), []string{"k0", "a0"}, p)
			if err != nil {
				t.Fatalf("%s p=%d: %v", c.name, p, err)
			}
			mustEqualSeq(t, fmt.Sprintf("%s p=%d", c.name, p), got, want)
		}
	}
}

// TestHashJoinClosesBothInputs guards the iterator contract: Close must
// release the build side too, not only the probe side.
func TestHashJoinClosesBothInputs(t *testing.T) {
	l := relation.MustFromRows("l", []string{"a"}, []any{1}, []any{2})
	r := relation.MustFromRows("r", []string{"b"}, []any{2}, []any{3})
	lc := &closeCounter{Iterator: NewScan(l)}
	rc := &closeCounter{Iterator: NewScan(r)}
	h := NewHashJoin(lc, rc, expr.Compare(expr.Eq, expr.Col("a"), expr.Col("b")), false)
	out, err := Drain(Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("join returned %d tuples, want 1", out.Len())
	}
	if lc.closed == 0 {
		t.Error("left input never closed")
	}
	if rc.closed == 0 {
		t.Error("right (build) input never closed")
	}
}

type closeCounter struct {
	Iterator
	closed int
}

func (c *closeCounter) Close() error {
	c.closed++
	return c.Iterator.Close()
}

// Silence unused-import if value ends up unused in future edits.
var _ = value.Null
