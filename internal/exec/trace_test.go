package exec

import (
	"testing"

	"nra/internal/obsv"
	"nra/internal/relation"
)

// TestDisabledTracingZeroAlloc pins the pay-for-use guarantee: with no
// tracer installed, the per-tuple hot path — scan iteration plus the
// span bookkeeping calls every operator makes — performs zero
// allocations. All span methods are nil-receiver no-ops.
func TestDisabledTracingZeroAlloc(t *testing.T) {
	rel := relation.MustFromRows("r", []string{"a", "b"},
		[]any{1, 2}, []any{3, 4}, []any{5, 6}, []any{7, 8})
	ec := NewExecContext(nil, Limits{})
	defer ec.Close()
	if ec.Tracing() {
		t.Fatal("untraced context reports Tracing() = true")
	}

	s := NewScan(rel)
	if err := s.Open(ec); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	allocs := testing.AllocsPerRun(1000, func() {
		s.pos = 0
		for {
			_, ok, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
		// The span calls every operator makes per batch/morsel: all
		// no-ops on the nil span of an untraced context.
		sp := ec.CurrentSpan()
		sp.AddRowsIn(1)
		sp.AddRowsOut(1)
		sp.AddBytes(64)
		sp.NoteSpill(0)
		sp.EnsureWorkers(4)
		sp.Morsel(0)
		sp.SetKind(obsv.KindExtSort)
		sp.End()
		ec.StartSpan("x", obsv.KindScan).End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates: %.1f allocs/run, want 0", allocs)
	}
}

// TestTracerDoesNotGovern pins the design invariant that installing a
// tracer never flips a query onto the governed physical paths — tracing
// observes execution, it must not change it.
func TestTracerDoesNotGovern(t *testing.T) {
	ec := NewExecContext(nil, Limits{Tracer: obsv.NewTracer()})
	defer ec.Close()
	if ec.Governed() {
		t.Error("a tracer alone must not make the context governed")
	}
	if !ec.Tracing() {
		t.Error("Tracing() = false with a tracer installed")
	}
}

// TestTracedScanCounts verifies a traced scan records its input and
// consumed cardinalities on its span.
func TestTracedScanCounts(t *testing.T) {
	rel := relation.MustFromRows("r", []string{"a"}, []any{1}, []any{2}, []any{3})
	tr := obsv.NewTracer()
	ec := NewExecContext(nil, Limits{Tracer: tr})
	defer ec.Close()
	out, err := Drain(ec, NewScan(rel))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("drained %d tuples, want 3", out.Len())
	}
	rec := tr.Finish()
	scan := rec.Find(obsv.KindScan)
	if scan == nil {
		t.Fatalf("no scan span in %s", obsv.Waterfall(rec))
	}
	if scan.RowsIn != 3 || scan.RowsOut != 3 {
		t.Errorf("scan span rows = %d in / %d out, want 3/3", scan.RowsIn, scan.RowsOut)
	}
}
