// Package exec implements the physical, pipelined execution operators of
// the optimized nested relational approach: the fused nest + linking
// selection of §4.2.2 (one pass instead of two) and the fully fused
// multi-level nest chain of §4.2.1, where only the first nest physically
// reorders tuples and all higher-level nests are conceptual — a single
// sort followed by a single scan evaluates every linking predicate of a
// linear query.
//
// It also hosts the result-finishing step (projection, DISTINCT,
// ORDER BY) shared by all execution strategies.
package exec

import (
	"fmt"

	"nra/internal/algebra"
	"nra/internal/expr"
	"nra/internal/obsv"
	"nra/internal/relation"
	"nra/internal/value"
)

// LinkSpec describes one linking predicate for the fused operators, with
// every column given as an index into the flat input schema (linked/
// presence columns) or the group-prefix columns (the linking attribute).
type LinkSpec struct {
	Pred algebra.LinkPred // semantic description (Attr/Const/Op/Quant/Empty)

	AttrIdx   int // flat index of the linking attribute; -1 when Const
	LinkedIdx int // flat index of the linked attribute B
	PresIdx   int // flat index of the member block's presence (PK) column
}

// quantState is the incremental 3VL (or aggregate) accumulator for one
// group.
type quantState struct {
	res     value.Tri
	members int
	agg     *algebra.AggState // non-nil for scalar-aggregate links
}

func (s *quantState) reset(spec *LinkSpec) {
	s.members = 0
	s.agg = nil
	switch {
	case spec.Pred.Agg != algebra.AggNone:
		s.agg = algebra.NewAggState(spec.Pred.Agg)
	case spec.Pred.Empty != algebra.NoEmptyTest:
		s.res = value.False // interpreted via members count
	case spec.Pred.Quant == algebra.All:
		s.res = value.True
	default:
		s.res = value.False
	}
}

// addMember folds one real member into the accumulator (a quantified
// comparison, an aggregate fold, or an existence count).
func (s *quantState) addMember(spec *LinkSpec, a, b value.Value) error {
	s.members++
	if s.agg != nil {
		if spec.Pred.Agg == algebra.AggCountStar {
			s.agg.AddRow()
			return nil
		}
		return s.agg.Add(b)
	}
	if spec.Pred.Empty != algebra.NoEmptyTest {
		return nil
	}
	tri, err := specCmp(spec, a, b)
	if err != nil {
		return err
	}
	if spec.Pred.Quant == algebra.All {
		s.res = s.res.And(tri)
	} else {
		s.res = s.res.Or(tri)
	}
	return nil
}

// specCmp applies the spec's θ, collapsing Unknown to False under a 2VL
// predicate (mirrors algebra.Bound).
func specCmp(spec *LinkSpec, a, b value.Value) (value.Tri, error) {
	tri, err := spec.Pred.Op.Apply(a, b)
	if err != nil {
		return value.Unknown, err
	}
	if spec.Pred.TwoValued && tri == value.Unknown {
		tri = value.False
	}
	return tri, nil
}

// verdict returns the link predicate's result for the closed group —
// 3VL, or 2VL with classical negation when the spec says so. attr is the
// group's linking-attribute value (needed for aggregate links, whose
// comparison happens once per group).
func (s *quantState) verdict(spec *LinkSpec, attr value.Value) (value.Tri, error) {
	tri, err := s.rawVerdict(spec, attr)
	if err != nil {
		return value.Unknown, err
	}
	if spec.Pred.Negate {
		tri = tri.Not()
	}
	return tri, nil
}

func (s *quantState) rawVerdict(spec *LinkSpec, attr value.Value) (value.Tri, error) {
	if s.agg != nil {
		res := s.agg.Result()
		tri, err := spec.Pred.Op.Apply(attr, res)
		if err != nil {
			return value.Unknown, err
		}
		// 2VL collapses a NULL comparison to False — except when the NULL
		// is the aggregate itself (SUM/AVG/MIN/MAX over an empty group),
		// a value the base data never held. Keeping 3VL's Unknown there
		// makes 2VL ≡ 3VL on NULL-free data (mirrors algebra.Bound and
		// the reference evaluator).
		if spec.Pred.TwoValued && tri == value.Unknown && !res.IsNull() {
			tri = value.False
		}
		return tri, nil
	}
	switch spec.Pred.Empty {
	case algebra.IsEmpty:
		return value.TriOf(s.members == 0), nil
	case algebra.NotEmpty:
		return value.TriOf(s.members > 0), nil
	}
	return s.res, nil
}

// NestLink is the fused single-level nest + linking selection (§4.2.2):
// semantically identical to
//
//	DropSub(LinkSelect[Pad](Nest(rel, by, keep, sub), pred), sub)
//
// but executed as one sort plus one scan, never materialising the nested
// groups. keyCols are the columns whose values identify a group (the
// primary keys of the outer levels — cheaper than comparing all by-cols,
// and equivalent because keys determine their tuples). by lists the output
// columns; pad ("" = strict mode) lists columns NULLed on failure.
//
// The pre-nest sort is the operator's working state: under a memory
// budget that the sorted copy exceeds, it degrades to the external merge
// sort (spillSortBy), preserving the exact stable order.
func NestLink(ec *ExecContext, rel *relation.Relation, keyCols, by []string, spec *LinkSpec, pad []string) (res *relation.Relation, err error) {
	defer Guard("nestlink", &err)
	if ec.Tracing() {
		sp := ec.StartSpan("nestlink", obsv.KindNestLink)
		sp.AddRowsIn(int64(rel.Len()))
		defer func() {
			if res != nil {
				sp.AddRowsOut(int64(res.Len()))
			}
			sp.End()
		}()
	}
	plan, err := prepareNestLink(rel.Schema, keyCols, by, spec, pad)
	if err != nil {
		return nil, err
	}
	sorted, _, err := spillSortBy(ec, "nestlink/sort", rel.Tuples, plan.keyIdx, rel.Schema, 1)
	if err != nil {
		return nil, err
	}
	return plan.scan(ec, sorted)
}

// nestLinkPlan is the resolved column machinery of one fused nest +
// linking selection, shared by the serial and the partitioned-parallel
// executions (the scan over one group-aligned tuple range is identical in
// both).
type nestLinkPlan struct {
	keyIdx, byIdx []int
	padIdx        []int // positions in the OUTPUT row to pad; nil = strict
	outSchema     *relation.Schema
	spec          *LinkSpec
}

func prepareNestLink(schema *relation.Schema, keyCols, by []string, spec *LinkSpec, pad []string) (*nestLinkPlan, error) {
	keyIdx, err := colIdxs(schema, keyCols)
	if err != nil {
		return nil, fmt.Errorf("nestlink: %w", err)
	}
	byIdx, err := colIdxs(schema, by)
	if err != nil {
		return nil, fmt.Errorf("nestlink: %w", err)
	}
	outSchema := &relation.Schema{Name: schema.Name}
	for _, j := range byIdx {
		outSchema.Cols = append(outSchema.Cols, schema.Cols[j])
	}
	var padIdx []int
	if pad != nil {
		padIdx = make([]int, 0, len(pad))
		for _, c := range pad {
			found := -1
			for oi, col := range outSchema.Cols {
				if col.Name == c {
					found = oi
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("nestlink: pad column %q not among output columns", c)
			}
			padIdx = append(padIdx, found)
		}
	}
	return &nestLinkPlan{keyIdx: keyIdx, byIdx: byIdx, padIdx: padIdx, outSchema: outSchema, spec: spec}, nil
}

// scan runs the fused single-pass nest + linking selection over tuples,
// which must be sorted by the group key and must contain only whole
// groups (a group never spans two scans). Cancellation of ec is observed
// every few hundred tuples.
func (pl *nestLinkPlan) scan(ec *ExecContext, tuples []relation.Tuple) (*relation.Relation, error) {
	spec := pl.spec
	out := relation.New(pl.outSchema)
	var (
		state   quantState
		started bool
		lastKey string
		rep     relation.Tuple // representative flat row of current group
	)
	emit := func() error {
		v, err := state.verdict(spec, linkAttr(spec, rep))
		if err != nil {
			return err
		}
		row := relation.Tuple{Atoms: make([]value.Value, len(pl.byIdx))}
		for i, j := range pl.byIdx {
			row.Atoms[i] = rep.Atoms[j]
		}
		if v.IsTrue() {
			out.Append(row)
			return nil
		}
		if pl.padIdx == nil {
			return nil // strict: discard
		}
		for _, oi := range pl.padIdx {
			row.Atoms[oi] = value.Null
		}
		out.Append(row)
		return nil
	}

	for n, t := range tuples {
		if n&255 == 0 {
			if err := ec.Check("nestlink/scan"); err != nil {
				return nil, err
			}
		}
		k := t.KeyOn(pl.keyIdx)
		if !started || k != lastKey {
			if started {
				if err := emit(); err != nil {
					return nil, err
				}
			}
			started = true
			lastKey = k
			rep = t
			state.reset(spec)
		}
		if t.Atoms[spec.PresIdx].IsNull() {
			continue // padding, not a set member
		}
		if err := state.addMember(spec, linkAttr(spec, t), linkedVal(spec, t)); err != nil {
			return nil, err
		}
	}
	if started {
		if err := emit(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// linkedVal fetches the member's linked-attribute value; emptiness tests
// have no linked attribute.
func linkedVal(spec *LinkSpec, t relation.Tuple) value.Value {
	if spec.LinkedIdx < 0 {
		return value.Null
	}
	return t.Atoms[spec.LinkedIdx]
}

func linkAttr(spec *LinkSpec, t relation.Tuple) value.Value {
	if spec.Pred.Const != nil {
		return *spec.Pred.Const
	}
	if spec.AttrIdx < 0 {
		return value.Null
	}
	return t.Atoms[spec.AttrIdx]
}

func colIdxs(s *relation.Schema, cols []string) ([]int, error) {
	out := make([]int, len(cols))
	for i, c := range cols {
		j := s.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("no column %q in %s", c, s)
		}
		out[i] = j
	}
	return out, nil
}

// ChainLevel describes one level of a fully fused nest chain (§4.2.1) for
// a linear query. Level i groups by the key columns of blocks 0..i and
// evaluates the linking predicate between block i and block i+1 over the
// members contributed from below.
type ChainLevel struct {
	KeyCols []string  // this level's own group-key columns (block i's PKs)
	Spec    *LinkSpec // the link L_{i+1} between block i and block i+1

	keyIdx []int
}

// NestLinkChain evaluates a whole linear nested query in one sort plus
// one scan. levels[0] is the outermost block; levels[i].Spec is the
// linking predicate L_{i+1} between block i and block i+1 — one entry per
// link, so len(levels) = blocks − 1. outBy lists the output columns (the
// root block's needed columns). The flat input is the left-deep outer
// join of all blocks with selections pushed down.
//
// Only the sort physically reorders tuples; all higher-level nests are
// conceptual (a higher level groups by a prefix of the lower level's
// sort key), exactly the observation of §4.2.1. As in NestLink, the sort
// degrades to an external merge under memory pressure.
func NestLinkChain(ec *ExecContext, rel *relation.Relation, levels []ChainLevel, outBy []string) (res *relation.Relation, err error) {
	defer Guard("nestlinkchain", &err)
	if ec.Tracing() {
		sp := ec.StartSpan(fmt.Sprintf("nestlinkchain (%d levels)", len(levels)), obsv.KindChain)
		sp.AddRowsIn(int64(rel.Len()))
		defer func() {
			if res != nil {
				sp.AddRowsOut(int64(res.Len()))
			}
			sp.End()
		}()
	}
	plan, err := prepareChain(rel.Schema, levels, outBy)
	if err != nil {
		return nil, err
	}
	sorted, _, err := spillSortBy(ec, "nestlink/sort", rel.Tuples, plan.sortIdx, rel.Schema, 1)
	if err != nil {
		return nil, err
	}
	return plan.scan(ec, sorted)
}

// chainPlan is the resolved column machinery of a fully fused nest chain,
// shared by the serial and the partitioned-parallel executions.
type chainPlan struct {
	levels    []ChainLevel
	outIdx    []int
	sortCols  []string
	sortIdx   []int
	outSchema *relation.Schema
}

func prepareChain(schema *relation.Schema, levels []ChainLevel, outBy []string) (*chainPlan, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("nestlinkchain: no levels")
	}
	for i := range levels {
		idx, err := colIdxs(schema, levels[i].KeyCols)
		if err != nil {
			return nil, fmt.Errorf("nestlinkchain: %w", err)
		}
		levels[i].keyIdx = idx
	}
	outIdx, err := colIdxs(schema, outBy)
	if err != nil {
		return nil, fmt.Errorf("nestlinkchain: %w", err)
	}

	// Sort by the concatenation of all level keys: the single physical
	// reordering of §4.2.1.
	var sortCols []string
	var sortIdx []int
	for i := range levels {
		sortCols = append(sortCols, levels[i].KeyCols...)
		sortIdx = append(sortIdx, levels[i].keyIdx...)
	}
	outSchema := &relation.Schema{Name: "result"}
	for _, j := range outIdx {
		outSchema.Cols = append(outSchema.Cols, schema.Cols[j])
	}
	return &chainPlan{levels: levels, outIdx: outIdx, sortCols: sortCols, sortIdx: sortIdx, outSchema: outSchema}, nil
}

// scan evaluates the whole chain over tuples, which must be sorted by the
// concatenated level keys and must contain only whole outermost-level
// groups (a level-0 group never spans two scans). Cancellation of ec is
// observed every few hundred tuples.
func (cp *chainPlan) scan(ec *ExecContext, tuples []relation.Tuple) (*relation.Relation, error) {
	levels, outIdx := cp.levels, cp.outIdx
	out := relation.New(cp.outSchema)

	n := len(levels)
	states := make([]quantState, n)   // states[i] accumulates link L_{i+1} of levels[i]
	reps := make([]relation.Tuple, n) // representative row per open group
	keys := make([]string, n)
	started := false

	// closeLevel finalises the group at level i (innermost = n-1): its
	// verdict decides whether level i's block tuple is a member of the set
	// feeding level i-1, or — at level 0 — whether the root tuple is
	// emitted.
	closeLevel := func(i int) error {
		v, err := states[i].verdict(levels[i].Spec, linkAttr(levels[i].Spec, reps[i]))
		if err != nil {
			return err
		}
		if i == 0 {
			if v.IsTrue() {
				row := relation.Tuple{Atoms: make([]value.Value, len(outIdx))}
				for oi, j := range outIdx {
					row.Atoms[oi] = reps[0].Atoms[j]
				}
				out.Append(row)
			}
			return nil
		}
		// Level i's block tuple is a real member for level i-1 iff it is
		// not outer-join padding and its own link predicate held.
		up := levels[i-1].Spec
		if !v.IsTrue() {
			return nil
		}
		if reps[i].Atoms[up.PresIdx].IsNull() {
			return nil
		}
		return states[i-1].addMember(up, linkAttr(up, reps[i]), linkedVal(up, reps[i]))
	}

	for pos, t := range tuples {
		if pos&255 == 0 {
			if err := ec.Check("nestlinkchain/scan"); err != nil {
				return nil, err
			}
		}
		// Find the outermost level whose key changed.
		changed := n
		if !started {
			changed = 0
		} else {
			for i := 0; i < n; i++ {
				if t.KeyOn(levels[i].keyIdx) != keys[i] {
					changed = i
					break
				}
			}
		}
		if changed < n {
			if started {
				for i := n - 1; i >= changed; i-- {
					if err := closeLevel(i); err != nil {
						return nil, err
					}
				}
			}
			for i := changed; i < n; i++ {
				states[i].reset(levels[i].Spec)
				reps[i] = t
				keys[i] = t.KeyOn(levels[i].keyIdx)
			}
			started = true
		}
		// The flat row contributes a member of the deepest set.
		deep := levels[n-1].Spec
		if !t.Atoms[deep.PresIdx].IsNull() {
			if err := states[n-1].addMember(deep, linkAttr(deep, t), linkedVal(deep, t)); err != nil {
				return nil, err
			}
		}
	}
	if started {
		for i := n - 1; i >= 0; i-- {
			if err := closeLevel(i); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// SelectItem is one output column of the final projection: a name and an
// expression over the root block's columns.
type SelectItem struct {
	Name string
	Expr expr.Expr
}

// Finish evaluates items over rel, applies distinct, and sorts by the
// given output-column indexes (negative index = descending on ^idx).
func Finish(rel *relation.Relation, items []SelectItem, distinct bool, orderBy []OrderKey) (*relation.Relation, error) {
	outSchema := &relation.Schema{Name: "result"}
	compiled := make([]*expr.Compiled, len(items))
	for i, it := range items {
		outSchema.Cols = append(outSchema.Cols, relation.Column{Name: it.Name, Type: relation.TAny})
		c, err := expr.Compile(it.Expr, rel.Schema)
		if err != nil {
			return nil, fmt.Errorf("finish: %w", err)
		}
		compiled[i] = c
	}
	out := relation.New(outSchema)
	for _, t := range rel.Tuples {
		row := relation.Tuple{Atoms: make([]value.Value, len(items))}
		for i, c := range compiled {
			v, err := c.Eval(t)
			if err != nil {
				return nil, fmt.Errorf("finish: %w", err)
			}
			row.Atoms[i] = v
		}
		out.Append(row)
	}
	if distinct {
		out = algebra.Distinct(out)
	}
	if len(orderBy) > 0 {
		sortRows(out, orderBy)
	}
	return out, nil
}

// OrderKey is one ORDER BY key over the output columns.
type OrderKey struct {
	Col  int
	Desc bool
}

func sortRows(r *relation.Relation, keys []OrderKey) {
	ts := r.Tuples
	// Simple stable insertion-free approach: use sort.SliceStable inline.
	sortSliceStable(ts, func(a, b relation.Tuple) bool {
		for _, k := range keys {
			va, vb := a.Atoms[k.Col], b.Atoms[k.Col]
			if value.Identical(va, vb) {
				continue
			}
			less := value.Less(va, vb)
			if k.Desc {
				return !less
			}
			return less
		}
		return false
	})
}
