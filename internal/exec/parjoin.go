package exec

import (
	"fmt"

	"nra/internal/algebra"
	"nra/internal/expr"
	"nra/internal/obsv"
	"nra/internal/relation"
	"nra/internal/value"
)

// ParallelJoin is the partitioned-parallel θ-join l ⋈_on r (outer=false)
// or left outer join l ⟕_on r (outer=true), semantically identical to
// algebra.Join / algebra.LeftOuterJoin — including the output order, so
// serial and parallel plans stay byte-identical:
//
//   - build: the right side is hash-partitioned on the equi-key into par
//     partitions and per-partition hash tables are built concurrently.
//     Tuples with a NULL key component match nothing under SQL equality
//     and are left out, exactly as in the serial build.
//   - probe: the left side is split into contiguous chunks probed
//     concurrently; each left tuple probes only the partition its key
//     hashes to. Outer-join NULL padding is decided per left tuple inside
//     its chunk, so the per-partition evaluation preserves the serial
//     padding semantics. Chunk outputs are concatenated in chunk order,
//     which reproduces the serial left-to-right output order (within one
//     left tuple, match order follows the right side's input order, which
//     partitioning preserves per key).
//
// A condition with no equality conjunct falls back to a chunked
// nested-loop join; par ≤ 1 under an ungoverned context delegates to the
// serial operators. Under a governed context the partitioned machinery
// always runs (it is byte-identical at any degree, including 1), because
// it is the path that observes cancellation between tuples and degrades
// to the chunked spill join (joinSpill) when the build side's tracked
// footprint exceeds the memory budget.
func ParallelJoin(ec *ExecContext, l, r *relation.Relation, on expr.Expr, outer bool, par int) (res *relation.Relation, err error) {
	defer Guard("join", &err)
	// The span opens before the serial-delegation check so every physical
	// variant of this join is covered by exactly one span.
	if ec.Tracing() {
		op := "join"
		if outer {
			op = "outer join"
		}
		sp := ec.StartSpan(op, obsv.KindJoin)
		sp.AddRowsIn(int64(l.Len() + r.Len()))
		defer func() {
			if res != nil {
				sp.AddRowsOut(int64(res.Len()))
			}
			sp.End()
		}()
	}
	if par > l.Len() {
		par = l.Len()
	}
	if par <= 1 && !ec.Governed() {
		if outer {
			return algebra.LeftOuterJoin(l, r, on)
		}
		return algebra.Join(l, r, on)
	}
	if par < 1 {
		par = 1
	}
	schema, err := parJoinSchema(l.Schema, r.Schema)
	if err != nil {
		return nil, err
	}
	lk, rk, residual := extractEquiKeys(on, l.Schema, r.Schema)
	var check *expr.Compiled // compiled once; evaluation is read-only
	if residual != nil {
		check, err = expr.Compile(residual, schema)
		if err != nil {
			return nil, fmt.Errorf("parallel join: %w", err)
		}
	}

	// Budget the build side; degrade to the chunked spill join when it
	// does not fit (or a fault hook forces the slow path). The spill join
	// is serial: its working state is one build chunk, which is the point.
	if ec.Governed() {
		bytes := tuplesBytes(r.Tuples)
		spill := ec.ForceSpill("join")
		if !spill {
			ok, err := ec.TryReserve("join", bytes)
			if err != nil {
				return nil, err
			}
			if ok {
				defer ec.Release(bytes)
			} else {
				spill = true
			}
		}
		if spill {
			return joinSpill(ec, "join", l, r, lk, rk, check, schema, outer)
		}
	}
	pad := nullNested(r.Schema)

	// Per-chunk probe state; chunk outputs are concatenated in order.
	bounds := chunkBounds(l.Len(), par)
	outs := make([]*relation.Relation, len(bounds)-1)
	probeChunk := func(w int, probe func(lt relation.Tuple, emit func(rt relation.Tuple) (bool, error)) error) error {
		out := relation.New(schema)
		outs[w] = out
		for n, lt := range l.Tuples[bounds[w]:bounds[w+1]] {
			if n&255 == 0 {
				if err := ec.Check("join/probe"); err != nil {
					return err
				}
			}
			matched := false
			emit := func(rt relation.Tuple) (bool, error) {
				joined := concatNested(lt, rt)
				if check != nil {
					tri, err := check.Truth(joined)
					if err != nil {
						return false, err
					}
					if !tri.IsTrue() {
						return false, nil
					}
				}
				out.Append(joined)
				return true, nil
			}
			if err := probe(lt, func(rt relation.Tuple) (bool, error) {
				ok, err := emit(rt)
				matched = matched || ok
				return ok, err
			}); err != nil {
				return err
			}
			if outer && !matched {
				out.Append(concatNested(lt, pad))
			}
		}
		return nil
	}

	if len(lk) == 0 {
		// Nested-loop fallback (non-equi or cross join): chunk the left side.
		err = Run(ec, par, len(outs), func(w int) error {
			return probeChunk(w, func(lt relation.Tuple, emit func(relation.Tuple) (bool, error)) error {
				for _, rt := range r.Tuples {
					if _, err := emit(rt); err != nil {
						return err
					}
				}
				return nil
			})
		})
		if err != nil {
			return nil, err
		}
		return concatRelations(schema, outs), nil
	}

	// Build phase: par partition tables over the right side, concurrently.
	parts := algebra.HashPartition(r, rk, par)
	tables := make([]map[string][]int, par)
	err = Run(ec, par, par, func(w int) error {
		table := make(map[string][]int, len(parts[w]))
	rows:
		for _, ri := range parts[w] {
			t := r.Tuples[ri]
			for _, k := range rk {
				if t.Atoms[k].IsNull() {
					continue rows
				}
			}
			key := t.KeyOn(rk)
			table[key] = append(table[key], ri)
		}
		tables[w] = table
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Probe phase: contiguous left chunks, each probing the partition its
	// key belongs to.
	err = Run(ec, par, len(outs), func(w int) error {
		return probeChunk(w, func(lt relation.Tuple, emit func(relation.Tuple) (bool, error)) error {
			for _, k := range lk {
				if lt.Atoms[k].IsNull() {
					return nil // NULL key: no match possible
				}
			}
			p := algebra.PartitionKey(lt, lk, par)
			for _, ri := range tables[p][lt.KeyOn(lk)] {
				if _, err := emit(r.Tuples[ri]); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return concatRelations(schema, outs), nil
}

// chunkBounds splits n items into at most p contiguous ranges;
// bounds[i]:bounds[i+1] is range i.
func chunkBounds(n, p int) []int {
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	if p == 0 {
		return []int{0, 0}
	}
	bounds := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bounds[i] = i * n / p
	}
	return bounds
}

func parJoinSchema(l, r *relation.Schema) (*relation.Schema, error) {
	out := &relation.Schema{Name: l.Name}
	out.Cols = append(append([]relation.Column{}, l.Cols...), r.Cols...)
	out.Subs = append(append([]relation.Sub{}, l.Subs...), r.Subs...)
	seen := make(map[string]bool, len(out.Cols))
	for _, c := range out.Cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("parallel join: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return out, nil
}

// concatNested concatenates two tuples, atoms and nested groups alike.
func concatNested(l, r relation.Tuple) relation.Tuple {
	t := relation.Tuple{Atoms: make([]value.Value, 0, len(l.Atoms)+len(r.Atoms))}
	t.Atoms = append(append(t.Atoms, l.Atoms...), r.Atoms...)
	if len(l.Groups)+len(r.Groups) > 0 {
		t.Groups = make([]*relation.Relation, 0, len(l.Groups)+len(r.Groups))
		t.Groups = append(append(t.Groups, l.Groups...), r.Groups...)
	}
	return t
}

// nullNested is the all-NULL (empty-group) padding tuple for a schema.
func nullNested(s *relation.Schema) relation.Tuple {
	t := relation.Tuple{Atoms: make([]value.Value, len(s.Cols))}
	if len(s.Subs) > 0 {
		t.Groups = make([]*relation.Relation, len(s.Subs))
	}
	return t
}

// concatRelations concatenates per-chunk outputs in chunk order.
func concatRelations(schema *relation.Schema, parts []*relation.Relation) *relation.Relation {
	out := relation.New(schema)
	n := 0
	for _, p := range parts {
		n += p.Len()
	}
	out.Tuples = make([]relation.Tuple, 0, n)
	for _, p := range parts {
		out.Tuples = append(out.Tuples, p.Tuples...)
	}
	return out
}
