package exec

import (
	"nra/internal/expr"
	"nra/internal/obsv"
	"nra/internal/relation"
	"nra/internal/vec"
)

// EquiKeys reports the equi-join key columns extractable from an
// AND-tree join condition and the residual (non-equi) conjuncts, if
// any. It is the shape gate of the vectorized hash join, exported so
// the planner's EXPLAIN can annotate join operators without running
// them.
func EquiKeys(on expr.Expr, ls, rs *relation.Schema) (lk, rk []int, residual expr.Expr) {
	return extractEquiKeys(on, ls, rs)
}

// VecHashJoin is the batched-probe hash equi-join: the build side is
// hashed once with the vectorized key hasher, then the probe side is
// processed in BatchSize windows, verifying bucket candidates with the
// canonical key equality. Matches are collected as (left, right) row
// index arrays and the output columns are typed gathers over them — no
// row is boxed. Output order is identical to the row engine's serial
// hash join — probe order, matches in build-row order, unmatched probes
// padded with NULLs when outer.
//
// lb/rb optionally supply already-converted batches of l and r (the
// planner's batch cache); nil converts on the spot. The output batch ob
// is returned alongside the materialized relation so downstream batch
// operators can skip re-conversion.
//
// A non-empty reason means the join shape has no batch kernel (nested
// input, no equi-keys, a residual condition, or duplicate output
// columns) and the caller must run the row path; out is then nil and
// err is nil.
func VecHashJoin(ec *ExecContext, l, r *relation.Relation, lb, rb *vec.Batch, on expr.Expr, outer bool) (out *relation.Relation, ob *vec.Batch, reason string, err error) {
	defer Guard("vecjoin", &err)
	lk, rk, residual := extractEquiKeys(on, l.Schema, r.Schema)
	if len(lk) == 0 {
		return nil, nil, "no equi-join keys", nil
	}
	if residual != nil {
		return nil, nil, "non-equi residual condition", nil
	}
	var ok bool
	if lb == nil {
		if lb, ok = vec.FromRelation(l); !ok {
			return nil, nil, "nested input", nil
		}
	}
	if rb == nil {
		if rb, ok = vec.FromRelation(r); !ok {
			return nil, nil, "nested input", nil
		}
	}

	schema := &relation.Schema{Name: l.Schema.Name}
	schema.Cols = append(append([]relation.Column{}, l.Schema.Cols...), r.Schema.Cols...)
	seen := make(map[string]bool, len(schema.Cols))
	for _, c := range schema.Cols {
		if seen[c.Name] {
			// The row path raises the real error; fall back to it.
			return nil, nil, "duplicate output column", nil
		}
		seen[c.Name] = true
	}

	var sp *obsv.Span
	if ec.Tracing() {
		op := "join"
		if outer {
			op = "outer join"
		}
		sp = ec.StartSpan(op, obsv.KindJoin)
		sp.AddRowsIn(int64(l.Len() + r.Len()))
		defer func() {
			if out != nil {
				sp.AddRowsOut(int64(out.Len()))
			}
			sp.End()
		}()
	}

	// Build: hash the right side, skipping NULL-key rows (a NULL key
	// component never matches under SQL equality).
	nr := r.Len()
	buildHash := make([]uint64, nr)
	vec.HashRows(rb.Cols, rk, 0, nr, buildHash)
	buckets := make(map[uint64][]int32, nr)
build:
	for i := 0; i < nr; i++ {
		for _, k := range rk {
			if rb.Cols[k].IsNull(i) {
				continue build
			}
		}
		buckets[buildHash[i]] = append(buckets[buildHash[i]], int32(i))
	}

	// Probe in batch windows, collecting match index pairs; ri -1 is the
	// outer-join padding row.
	nl := l.Len()
	li := make([]int32, 0, nl)
	ri := make([]int32, 0, nl)
	probeHash := make([]uint64, BatchSize)
	for start := 0; start < nl; start += BatchSize {
		end := start + BatchSize
		if end > nl {
			end = nl
		}
		if err := ec.Check("join/probe"); err != nil {
			return nil, nil, "", err
		}
		sp.AddBatches(1)
		vec.HashRows(lb.Cols, lk, start, end, probeHash)
	probe:
		for i := start; i < end; i++ {
			for _, k := range lk {
				if lb.Cols[k].IsNull(i) {
					if outer {
						li = append(li, int32(i))
						ri = append(ri, -1)
					}
					continue probe
				}
			}
			matched := false
			for _, bi := range buckets[probeHash[i-start]] {
				ok := true
				for ki := range lk {
					if !vec.KeyEqualAt(lb.Cols[lk[ki]], i, rb.Cols[rk[ki]], int(bi)) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				matched = true
				li = append(li, int32(i))
				ri = append(ri, bi)
			}
			if outer && !matched {
				li = append(li, int32(i))
				ri = append(ri, -1)
			}
		}
	}

	cols := make([]*vec.Vector, 0, len(schema.Cols))
	for _, v := range lb.Cols {
		cols = append(cols, vec.Gather(v, li))
	}
	for _, v := range rb.Cols {
		cols = append(cols, vec.Gather(v, ri))
	}
	ob = &vec.Batch{Schema: schema, Cols: cols, Start: 0, End: len(li)}
	return ob.ToRelation(), ob, "", nil
}
