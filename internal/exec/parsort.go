package exec

import (
	"sort"

	"nra/internal/relation"
	"nra/internal/value"
)

// parallelSortBy returns rel's tuples sorted by the given column indexes,
// in exactly the order Relation.SortBy produces (value.Less with NULLs
// first, stable). The input slice is not modified.
//
// The sort runs as p concurrent chunk sorts followed by log₂(p) rounds of
// pairwise merges. Stability is obtained by tie-breaking on the original
// tuple position, which defines the same total order a stable sort does —
// so the result is deterministic and byte-identical to the serial sort
// regardless of chunk boundaries or scheduling. Cancellation of ec is
// observed between rounds (individual chunk sorts run to completion).
func parallelSortBy(ec *ExecContext, tuples []relation.Tuple, idx []int, p int) ([]relation.Tuple, error) {
	n := len(tuples)
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	less := func(a, b int) bool {
		ta, tb := tuples[a], tuples[b]
		for _, i := range idx {
			va, vb := ta.Atoms[i], tb.Atoms[i]
			if !value.Identical(va, vb) {
				return value.Less(va, vb)
			}
		}
		return a < b // stability: original position breaks ties
	}

	if p > n/minChunk {
		p = n / minChunk
	}
	if p <= 1 {
		sort.Slice(ord, func(i, j int) bool { return less(ord[i], ord[j]) })
	} else {
		// Chunk bounds: runs[i] sorts ord[bounds[i]:bounds[i+1]].
		bounds := make([]int, p+1)
		for i := 0; i <= p; i++ {
			bounds[i] = i * n / p
		}
		if err := Run(ec, p, p, func(w int) error {
			chunk := ord[bounds[w]:bounds[w+1]]
			sort.Slice(chunk, func(i, j int) bool { return less(chunk[i], chunk[j]) })
			return nil
		}); err != nil {
			return nil, err
		}
		// Pairwise merge rounds until one run remains.
		buf := make([]int, n)
		for len(bounds) > 2 {
			src, dst := ord, buf
			pairs := (len(bounds) - 1) / 2
			nb := make([]int, 0, pairs+2)
			nb = append(nb, 0)
			for k := 0; k < pairs; k++ {
				nb = append(nb, bounds[2*k+2])
			}
			if (len(bounds)-1)%2 == 1 { // odd run out: copied through
				nb = append(nb, bounds[len(bounds)-1])
			}
			if err := Run(ec, pairs, pairs, func(k int) error {
				lo, mid, hi := bounds[2*k], bounds[2*k+1], bounds[2*k+2]
				mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi], less)
				return nil
			}); err != nil {
				return nil, err
			}
			if (len(bounds)-1)%2 == 1 {
				lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
				copy(dst[lo:hi], src[lo:hi])
			}
			ord, buf = dst, src
			bounds = nb
		}
	}

	out := make([]relation.Tuple, n)
	for i, j := range ord {
		out[i] = tuples[j]
	}
	return out, nil
}

// minChunk keeps tiny inputs serial: below this many tuples per worker the
// goroutine handoff costs more than the sort.
const minChunk = 256

func mergeRuns(dst, a, b []int, less func(x, y int) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}
