package exec

import (
	"fmt"

	"nra/internal/expr"
	"nra/internal/obsv"
	"nra/internal/relation"
	"nra/internal/value"
	"nra/internal/vec"
)

// BatchSize is the number of rows per batch window. It is a multiple of
// 64 so NULL-bitmap windows slice on word boundaries.
const BatchSize = 1024

// BatchIterator is the batch-at-a-time companion of Iterator: NextBatch
// returns the next window of rows (nil at end of stream). The same
// Open/Close discipline applies; batches share the underlying column
// vectors, so a batch is only valid until the relation it views is
// mutated (relations are immutable during query execution).
type BatchIterator interface {
	// Open prepares the iterator under the given execution context.
	Open(ec *ExecContext) error
	// NextBatch returns the next batch, or nil at end of stream.
	NextBatch() (*vec.Batch, error)
	// Close releases resources; it must be called exactly once after a
	// successful Open.
	Close() error
	// Schema describes the produced columns.
	Schema() *relation.Schema
}

// SegPrune tells a scan which segment row groups its predicate has
// already disproved via zone maps (colstore.PruneGroups): group g
// covers rows [g*GroupRows, (g+1)*GroupRows) and is skipped when
// Skip[g] is true. The scan only ever *narrows* with it — skipped rows
// are rows the caller proved can never pass the filter that runs
// downstream — so a nil SegPrune is always safe. GroupRows must be a
// multiple of 64 (the segment writer enforces this) so group
// boundaries preserve the bitmap word alignment batch kernels need.
type SegPrune struct {
	GroupRows int
	Skip      []bool
}

// skips reports whether the group holding absolute row r is pruned.
func (p *SegPrune) skips(r int) bool {
	if p == nil {
		return false
	}
	g := r / p.GroupRows
	return g < len(p.Skip) && p.Skip[g]
}

// VecScan produces batch windows over a flat materialized relation —
// the vectorized counterpart of Scan. Construct with NewVecScan.
type VecScan struct {
	rel   *relation.Relation
	batch *vec.Batch
	pos   int
	prune *SegPrune
	read  int // rows actually windowed (excludes pruned groups)
	ec    *ExecContext
	sp    *obsv.Span
}

// NewVecScan converts rel into column vectors and returns the scan.
// ok is false when the relation has nested attributes, which the batch
// representation does not model.
func NewVecScan(rel *relation.Relation) (s *VecScan, ok bool) {
	return NewVecScanCols(rel, nil)
}

// NewVecScanCols is NewVecScan restricted to the columns marked in
// needed (nil = all): pruned columns stay nil in every batch, so the
// downstream pipeline must never touch them.
func NewVecScanCols(rel *relation.Relation, needed []bool) (s *VecScan, ok bool) {
	b, ok := vec.FromRelationCols(rel, needed)
	if !ok {
		return nil, false
	}
	return &VecScan{rel: rel, batch: b}, true
}

// NewVecScanSrc is NewVecScanCols with an external column source:
// colsrc, when non-nil, supplies each needed column's vector — the
// catalog's memoized per-version column store — so repeated scans of
// the same table version skip the row-to-column conversion entirely.
func NewVecScanSrc(rel *relation.Relation, needed []bool, colsrc func(int) *vec.Vector) (s *VecScan, ok bool) {
	if colsrc == nil {
		return NewVecScanCols(rel, needed)
	}
	if len(rel.Schema.Subs) > 0 {
		return nil, false
	}
	cols := make([]*vec.Vector, len(rel.Schema.Cols))
	for c := range cols {
		if needed == nil || needed[c] {
			cols[c] = colsrc(c)
		}
	}
	b := &vec.Batch{Schema: rel.Schema, Cols: cols, Start: 0, End: rel.Len()}
	return &VecScan{rel: rel, batch: b}, true
}

// SetPrune installs a zone-map skip set (see SegPrune). Must be called
// before Open; ignored when p is nil, p.GroupRows is not a positive
// multiple of 64, or p.Skip is empty.
func (s *VecScan) SetPrune(p *SegPrune) {
	if p == nil || p.GroupRows <= 0 || p.GroupRows%64 != 0 || len(p.Skip) == 0 {
		return
	}
	s.prune = p
}

// Open implements BatchIterator.
func (s *VecScan) Open(ec *ExecContext) error {
	s.ec = ec
	s.pos = 0
	s.read = 0
	if ec.Tracing() {
		s.sp = ec.StartSpan("scan "+s.rel.Schema.Name, obsv.KindScan)
	}
	return nil
}

// NextBatch implements BatchIterator, yielding BatchSize-row windows.
// With a SegPrune installed, windows additionally clamp to row-group
// boundaries and pruned groups are jumped without touching their
// vectors — the payoff of zone maps: column bytes for skipped groups
// are never decoded, because the catalog's lazy column store only
// materializes what a scan window reads.
func (s *VecScan) NextBatch() (*vec.Batch, error) {
	n := s.rel.Len()
	for s.prune != nil && s.pos < n && s.prune.skips(s.pos) {
		s.pos = (s.pos/s.prune.GroupRows + 1) * s.prune.GroupRows
	}
	if s.pos >= n {
		return nil, nil
	}
	if err := s.ec.Check("scan"); err != nil {
		return nil, err
	}
	end := s.pos + BatchSize
	if s.prune != nil {
		if gEnd := (s.pos/s.prune.GroupRows + 1) * s.prune.GroupRows; end > gEnd {
			end = gEnd
		}
	}
	if end > n {
		end = n
	}
	w := &vec.Batch{Schema: s.batch.Schema, Cols: s.batch.Cols, Start: s.pos, End: end}
	s.read += end - s.pos
	s.pos = end
	s.sp.AddBatches(1)
	return w, nil
}

// Close implements BatchIterator.
func (s *VecScan) Close() error {
	if s.sp != nil {
		s.sp.AddRowsIn(int64(s.rel.Len()))
		s.sp.AddRowsOut(int64(s.read))
		s.sp.End()
		s.sp = nil
	}
	return nil
}

// Schema implements BatchIterator.
func (s *VecScan) Schema() *relation.Schema { return s.rel.Schema }

// VecFilter narrows each batch's selection vector to the rows where the
// compiled predicate kernel is True — the vectorized counterpart of
// Filter. A nil Pred passes batches through unchanged.
type VecFilter struct {
	// In is the input batch stream.
	In BatchIterator
	// Pred is the compiled predicate kernel; nil = no filtering.
	Pred *vec.Pred
}

// Open implements BatchIterator.
func (f *VecFilter) Open(ec *ExecContext) error { return f.In.Open(ec) }

// NextBatch implements BatchIterator.
func (f *VecFilter) NextBatch() (*vec.Batch, error) {
	b, err := f.In.NextBatch()
	if err != nil || b == nil || f.Pred == nil {
		return b, err
	}
	tv, err := f.Pred.Eval(b.Cols, b.Start, b.End)
	if err != nil {
		return nil, fmt.Errorf("filter: %w", err)
	}
	sel := make([]int32, 0, b.Rows())
	if b.Sel == nil {
		for i := b.Start; i < b.End; i++ {
			if tv.True.Get(i - b.Start) {
				sel = append(sel, int32(i))
			}
		}
	} else {
		for _, s := range b.Sel {
			if tv.True.Get(int(s) - b.Start) {
				sel = append(sel, s)
			}
		}
	}
	b.Sel = sel
	return b, nil
}

// Close implements BatchIterator.
func (f *VecFilter) Close() error { return f.In.Close() }

// Schema implements BatchIterator.
func (f *VecFilter) Schema() *relation.Schema { return f.In.Schema() }

// VecProject narrows each batch to the named columns, sharing the
// underlying vectors — the vectorized counterpart of Project.
type VecProject struct {
	// In is the input batch stream.
	In BatchIterator
	// Cols names the output columns, resolved against In's schema.
	Cols []string

	idx    []int
	schema *relation.Schema
}

// Open implements BatchIterator, resolving the projection columns.
func (p *VecProject) Open(ec *ExecContext) error {
	if err := p.In.Open(ec); err != nil {
		return err
	}
	in := p.In.Schema()
	p.idx = make([]int, len(p.Cols))
	p.schema = &relation.Schema{Name: in.Name}
	for i, c := range p.Cols {
		j := in.ColIndex(c)
		if j < 0 {
			return fmt.Errorf("project: no column %q in %s", c, in)
		}
		p.idx[i] = j
		p.schema.Cols = append(p.schema.Cols, in.Cols[j])
	}
	return nil
}

// NextBatch implements BatchIterator.
func (p *VecProject) NextBatch() (*vec.Batch, error) {
	b, err := p.In.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	cols := make([]*vec.Vector, len(p.idx))
	for i, j := range p.idx {
		cols[i] = b.Cols[j]
	}
	return &vec.Batch{Schema: p.schema, Cols: cols, Start: b.Start, End: b.End, Sel: b.Sel}, nil
}

// Close implements BatchIterator.
func (p *VecProject) Close() error { return p.In.Close() }

// Schema implements BatchIterator.
func (p *VecProject) Schema() *relation.Schema { return p.schema }

// DrainBatches runs a batch pipeline to completion and materializes the
// selected rows, preserving order — the batch counterpart of Drain.
func DrainBatches(ec *ExecContext, it BatchIterator) (*relation.Relation, error) {
	if err := it.Open(ec); err != nil {
		return nil, err
	}
	defer it.Close()
	out := relation.New(it.Schema())
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		b.ForEachRow(func(i int) { b.AppendTuple(out, i) })
	}
}

// BatchesFromRows adapts a row iterator into a batch stream by pulling
// up to BatchSize tuples at a time and converting them to columns — the
// row→batch side of the per-operator adapter pair.
type BatchesFromRows struct {
	// In is the row stream to adapt.
	In Iterator

	ec  *ExecContext
	eos bool
}

// Open implements BatchIterator.
func (a *BatchesFromRows) Open(ec *ExecContext) error {
	a.ec = ec
	a.eos = false
	return a.In.Open(ec)
}

// NextBatch implements BatchIterator, converting up to BatchSize rows.
func (a *BatchesFromRows) NextBatch() (*vec.Batch, error) {
	if a.eos {
		return nil, nil
	}
	buf := relation.New(a.In.Schema())
	for buf.Len() < BatchSize {
		t, ok, err := a.In.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			a.eos = true
			break
		}
		buf.Append(t)
	}
	if buf.Len() == 0 {
		return nil, nil
	}
	b, ok := vec.FromRelation(buf)
	if !ok {
		return nil, fmt.Errorf("vec: nested input cannot batch")
	}
	return b, nil
}

// Close implements BatchIterator.
func (a *BatchesFromRows) Close() error { return a.In.Close() }

// Schema implements BatchIterator.
func (a *BatchesFromRows) Schema() *relation.Schema { return a.In.Schema() }

// RowsFromBatches adapts a batch stream back into a row iterator — the
// batch→row side of the per-operator adapter pair, letting a row
// operator consume a vectorized subtree.
type RowsFromBatches struct {
	// In is the batch stream to adapt.
	In BatchIterator

	cur  *vec.Batch
	rows []int32
	pos  int
}

// Open implements Iterator.
func (a *RowsFromBatches) Open(ec *ExecContext) error { return a.In.Open(ec) }

// Next implements Iterator, boxing one selected row per call.
func (a *RowsFromBatches) Next() (relation.Tuple, bool, error) {
	for a.cur == nil || a.pos >= len(a.rows) {
		b, err := a.In.NextBatch()
		if err != nil {
			return relation.Tuple{}, false, err
		}
		if b == nil {
			return relation.Tuple{}, false, nil
		}
		a.cur = b
		a.rows = a.rows[:0]
		b.ForEachRow(func(i int) { a.rows = append(a.rows, int32(i)) })
		a.pos = 0
	}
	i := int(a.rows[a.pos])
	a.pos++
	atoms := make([]value.Value, len(a.cur.Cols))
	for c, v := range a.cur.Cols {
		atoms[c] = v.Value(i)
	}
	return relation.Tuple{Atoms: atoms}, true, nil
}

// Close implements Iterator.
func (a *RowsFromBatches) Close() error { return a.In.Close() }

// Schema implements Iterator.
func (a *RowsFromBatches) Schema() *relation.Schema { return a.In.Schema() }

// VecReduce is the vectorized single-table block reduction — the batch
// counterpart of the row engine's scan→filter→project Drain. The
// surviving rows are gathered into dense typed columns, so no row is
// boxed until the final materialization; the output batch ob is
// returned alongside the relation so downstream batch operators can
// skip re-conversion. A non-empty reason means the batch engine does
// not apply (nested input, or a predicate with no batch kernel) and the
// caller must run the row path; out is then nil and err is nil.
//
// prune, when non-nil, is the zone-map verdict on pred over the
// table's backing segment (colstore.PruneGroups): row groups proved
// free of matches. It is applied only when the compiled-predicate
// batch path actually runs — the row fallback scans everything, so a
// predicate the batch engine cannot compile costs correctness nothing.
func VecReduce(ec *ExecContext, base *relation.Relation, pred expr.Expr, cols []string, colsrc func(int) *vec.Vector, prune *SegPrune) (out *relation.Relation, ob *vec.Batch, reason string, err error) {
	defer Guard("reduce", &err)
	// Convert only the columns the predicate reads or the projection
	// keeps: base tables are wide, the reduction touches a handful.
	needed := make([]bool, len(base.Schema.Cols))
	var vp *vec.Pred
	if pred != nil {
		p, ok := vec.CompilePred(pred, base.Schema)
		if !ok {
			return nil, nil, "predicate has no batch kernel", nil
		}
		vp = p
		if !vec.MarkCols(pred, base.Schema, needed) {
			needed = nil // compiled but unmarkable: convert everything
		}
	}
	for _, c := range cols {
		j := base.Schema.ColIndex(c)
		if j < 0 || needed == nil {
			needed = nil
			break
		}
		needed[j] = true
	}
	scan, ok := NewVecScanSrc(base, needed, colsrc)
	if !ok {
		return nil, nil, "nested input", nil
	}
	if vp != nil {
		// Sound only because the filter below would reject every row of
		// a pruned group anyway; without a compiled predicate no groups
		// were proved prunable (PruneGroups needs the same predicate).
		scan.SetPrune(prune)
	}
	it := &VecProject{In: &VecFilter{In: scan, Pred: vp}, Cols: cols}
	if err := it.Open(ec); err != nil {
		return nil, nil, "", err
	}
	defer it.Close()
	// The projected vectors are the same full-height columns in every
	// window; accumulate the selected absolute rows across windows.
	var full []*vec.Vector
	sel := make([]int32, 0, base.Len())
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, nil, "", err
		}
		if b == nil {
			break
		}
		full = b.Cols
		if b.Sel != nil {
			sel = append(sel, b.Sel...)
		} else {
			for i := b.Start; i < b.End; i++ {
				sel = append(sel, int32(i))
			}
		}
	}
	if full == nil {
		// Empty input: no window was produced; empty boxed columns keep
		// the batch well-formed for downstream operators.
		full = make([]*vec.Vector, len(it.Schema().Cols))
		for i := range full {
			full[i] = vec.FromValues(nil)
		}
	}
	if len(sel) == base.Len() && base.Len() > 0 {
		// Nothing filtered: the projected full-height vectors are the
		// output as-is.
		ob = &vec.Batch{Schema: it.Schema(), Cols: full, Start: 0, End: base.Len()}
	} else {
		gathered := make([]*vec.Vector, len(full))
		for i, v := range full {
			gathered[i] = vec.Gather(v, sel)
		}
		ob = &vec.Batch{Schema: it.Schema(), Cols: gathered, Start: 0, End: len(sel)}
	}
	return ob.ToRelation(), ob, "", nil
}
