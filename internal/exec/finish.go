package exec

import (
	"fmt"

	"nra/internal/algebra"
	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/sql"
	"nra/internal/value"
)

// FinishQuery applies the root block's select list, DISTINCT and ORDER BY
// to a relation holding (at least) the root block's columns. It is the
// final step shared by the nested relational planner and the native
// baseline, and produces exactly the schema the reference evaluator uses.
func FinishQuery(rel *relation.Relation, q *sql.Query) (*relation.Relation, error) {
	root := q.Root
	if len(root.AggItems) > 0 {
		out, err := finishAggregate(rel, root)
		if err != nil {
			return nil, err
		}
		return applyLimit(out, root.Sel.Limit, root.Sel.Offset), nil
	}
	var items []SelectItem
	if root.Sel.Star {
		for _, c := range root.Schema.Cols {
			items = append(items, SelectItem{Name: c.Name, Expr: expr.Col(c.Name)})
		}
	} else {
		for _, it := range root.Sel.Items {
			le, err := q.Lower(it.Expr)
			if err != nil {
				return nil, err
			}
			name := it.Alias
			if name == "" {
				name = it.Expr.String()
			}
			items = append(items, SelectItem{Name: name, Expr: le})
		}
	}
	var order []OrderKey
	for _, o := range root.Sel.OrderBy {
		idx := -1
		if c, ok := o.Expr.(*sql.ColRef); ok {
			for i, it := range items {
				if it.Name == c.String() || it.Name == c.Column {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("exec: ORDER BY key %s is not a select item", o.Expr)
		}
		order = append(order, OrderKey{Col: idx, Desc: o.Desc})
	}
	out, err := Finish(rel, items, root.Sel.Distinct, order)
	if err != nil {
		return nil, err
	}
	return applyLimit(out, root.Sel.Limit, root.Sel.Offset), nil
}

// applyLimit slices the result per LIMIT/OFFSET (after DISTINCT and
// ORDER BY, as in SQL). limit < 0 means no limit.
func applyLimit(r *relation.Relation, limit, offset int) *relation.Relation {
	if limit < 0 && offset <= 0 {
		return r
	}
	start := offset
	if start > r.Len() {
		start = r.Len()
	}
	end := r.Len()
	if limit >= 0 && start+limit < end {
		end = start + limit
	}
	out := relation.New(r.Schema)
	out.Append(r.Tuples[start:end]...)
	return out
}

// finishAggregate folds an aggregate-only root select list over the
// qualifying tuples: one output row, no GROUP BY.
func finishAggregate(rel *relation.Relation, root *sql.Block) (*relation.Relation, error) {
	outSchema := &relation.Schema{Name: "result"}
	states := make([]*algebra.AggState, len(root.AggItems))
	colIdx := make([]int, len(root.AggItems))
	for i, info := range root.AggItems {
		name := root.Sel.Items[i].Alias
		if name == "" {
			name = root.Sel.Items[i].Expr.String()
		}
		outSchema.Cols = append(outSchema.Cols, relation.Column{Name: name, Type: relation.TAny})
		states[i] = algebra.NewAggState(info.Func)
		colIdx[i] = -1
		if info.Col != "" {
			colIdx[i] = rel.Schema.ColIndex(info.Col)
			if colIdx[i] < 0 {
				return nil, fmt.Errorf("exec: aggregate column %s missing from %s", info.Col, rel.Schema)
			}
		}
	}
	for _, t := range rel.Tuples {
		for i, st := range states {
			if colIdx[i] < 0 {
				st.AddRow()
				continue
			}
			if err := st.Add(t.Atoms[colIdx[i]]); err != nil {
				return nil, err
			}
		}
	}
	out := relation.New(outSchema)
	row := relation.Tuple{Atoms: make([]value.Value, len(states))}
	for i, st := range states {
		row.Atoms[i] = st.Result()
	}
	out.Append(row)
	return out, nil
}
