package exec

import (
	"math/rand"
	"testing"

	"nra/internal/algebra"
	"nra/internal/expr"
	"nra/internal/relation"
)

func randFlat(rng *rand.Rand, prefix string, cols, maxRows int) *relation.Relation {
	names := []string{prefix + ".k"}
	for i := 0; i < cols; i++ {
		names = append(names, prefix+"."+string(rune('a'+i)))
	}
	var rows [][]any
	for r := 0; r < rng.Intn(maxRows+1); r++ {
		row := []any{r}
		for i := 0; i < cols; i++ {
			if rng.Intn(6) == 0 {
				row = append(row, nil)
			} else {
				row = append(row, rng.Intn(4))
			}
		}
		rows = append(rows, row)
	}
	return relation.MustFromRows(prefix, names, rows...)
}

func TestScanFilterProjectPipeline(t *testing.T) {
	rel := relation.MustFromRows("t", []string{"t.a", "t.b"},
		[]any{1, 10}, []any{2, nil}, []any{3, 30}, []any{4, 5})
	pred := expr.Compare(expr.Gt, expr.Col("t.b"), expr.Val(7))
	out, err := Drain(Background(), NewProject(NewFilter(NewScan(rel), pred), []string{"t.a"}))
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.Select(rel, pred)
	if err != nil {
		t.Fatal(err)
	}
	want, err = algebra.Project(want, "t.a")
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualSet(want) {
		t.Fatalf("pipeline != algebra:\n%s\nvs\n%s", out, want)
	}
}

func TestIteratorErrors(t *testing.T) {
	rel := relation.MustFromRows("t", []string{"t.a"}, []any{1})
	if _, err := Drain(Background(), NewFilter(NewScan(rel), expr.Col("nope"))); err == nil {
		t.Fatal("unknown filter column must error at Open")
	}
	if _, err := Drain(Background(), NewProject(NewScan(rel), []string{"nope"})); err == nil {
		t.Fatal("unknown projection column must error at Open")
	}
	// Runtime type error surfaces from Next.
	rel2 := relation.MustFromRows("t", []string{"t.a", "t.s"}, []any{1, "x"})
	if _, err := Drain(Background(), NewFilter(NewScan(rel2), expr.Compare(expr.Eq, expr.Col("t.a"), expr.Col("t.s")))); err == nil {
		t.Fatal("type mismatch must error")
	}
}

func TestLimitIterator(t *testing.T) {
	rel := relation.MustFromRows("t", []string{"t.a"},
		[]any{1}, []any{2}, []any{3}, []any{4}, []any{5})
	out, err := Drain(Background(), NewLimit(NewScan(rel), 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.Tuples[0].Atoms[0].Int64() != 2 || out.Tuples[1].Atoms[0].Int64() != 3 {
		t.Fatalf("limit window:\n%s", out)
	}
	all, _ := Drain(Background(), NewLimit(NewScan(rel), -1, 0))
	if all.Len() != 5 {
		t.Fatal("unlimited must pass everything")
	}
	none, _ := Drain(Background(), NewLimit(NewScan(rel), 0, 0))
	if none.Len() != 0 {
		t.Fatal("limit 0")
	}
	past, _ := Drain(Background(), NewLimit(NewScan(rel), 3, 99))
	if past.Len() != 0 {
		t.Fatal("offset past end")
	}
}

// TestHashJoinIteratorMatchesAlgebra fuzzes the streaming join (inner and
// left outer, equi and theta) against the materialised algebra join.
func TestHashJoinIteratorMatchesAlgebra(t *testing.T) {
	conds := func() []expr.Expr {
		return []expr.Expr{
			expr.Compare(expr.Eq, expr.Col("l.a"), expr.Col("r.a")),
			expr.And(
				expr.Compare(expr.Eq, expr.Col("l.a"), expr.Col("r.a")),
				expr.Compare(expr.Lt, expr.Col("l.b"), expr.Col("r.b"))),
			expr.Compare(expr.Ne, expr.Col("l.a"), expr.Col("r.a")), // nested-loop path
			nil, // cross join
		}
	}
	for seed := 0; seed < 200; seed++ {
		rng := rand.New(rand.NewSource(int64(7000 + seed)))
		l := randFlat(rng, "l", 2, 8)
		r := randFlat(rng, "r", 2, 8)
		cond := conds()[rng.Intn(4)]
		outer := rng.Intn(2) == 0

		it := NewHashJoin(NewScan(l), NewScan(r), cond, outer)
		got, err := Drain(Background(), it)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var want *relation.Relation
		if outer {
			want, err = algebra.LeftOuterJoin(l, r, cond)
		} else {
			want, err = algebra.Join(l, r, cond)
		}
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !got.EqualSet(want) {
			t.Fatalf("seed %d (outer=%v): iterator join != algebra join\ngot:\n%s\nwant:\n%s",
				seed, outer, got, want)
		}
	}
}

func TestHashJoinReopen(t *testing.T) {
	l := relation.MustFromRows("l", []string{"l.a"}, []any{1}, []any{2})
	r := relation.MustFromRows("r", []string{"r.a"}, []any{1}, []any{2}, []any{2})
	it := NewHashJoin(NewScan(l), NewScan(r), expr.Compare(expr.Eq, expr.Col("l.a"), expr.Col("r.a")), false)
	first, err := Drain(Background(), it)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Drain(Background(), it) // Drain re-Opens
	if err != nil {
		t.Fatal(err)
	}
	if !first.EqualSet(second) || first.Len() != 3 {
		t.Fatalf("reopen changed results: %d vs %d", first.Len(), second.Len())
	}
}
