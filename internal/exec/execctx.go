package exec

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"nra/internal/obsv"
	"nra/internal/relation"
	"nra/internal/value"
)

// This file is the resource-governance substrate of the executor. Every
// physical operator runs under a per-query ExecContext carrying
//
//   - cancellation: a context.Context (plus an optional deadline) whose
//     cancellation is observed at operator boundaries — between morsels in
//     the worker pool, between tuples in probe/scan loops — so an abort
//     takes effect promptly, drains in-flight workers, and leaks nothing;
//   - a memory budget: a byte-accounted bound on operator *working state*
//     (hash-join build tables, sort copies, external-merge run buffers).
//     When an operator's working state would exceed the budget it degrades
//     gracefully — grace-hash chunking for joins, external merge for sorts
//     — spilling to temp files and producing byte-identical output. Inputs
//     and outputs themselves are not charged: the engine's contract is
//     materialised *relation.Relation values, so the budget governs the
//     *extra* state an operator holds, mirroring a work_mem-style knob;
//   - fault hooks: optional test-only interception points (FaultHooks)
//     that deterministically inject allocation failures, forced spills,
//     spill-I/O errors and mid-operator cancellations;
//   - panic containment: Guard converts an operator or worker panic into a
//     *QueryError carrying the operator path, so one poisoned tuple cannot
//     take down the process.

// QueryError is the error type every contained failure surfaces as: a
// recovered panic, a cancellation observed inside an operator, an injected
// fault, or a hard budget violation. Op is the operator path (for example
// "join/probe" or "nestlink/sort/run"). It unwraps, so errors.Is sees
// context.Canceled, context.DeadlineExceeded and injected sentinels.
type QueryError struct {
	Op  string
	Err error
}

// Error formats the failure with its operator context.
func (e *QueryError) Error() string { return fmt.Sprintf("exec: %s: %v", e.Op, e.Err) }

// Unwrap returns the underlying cause (errors.Is/As support).
func (e *QueryError) Unwrap() error { return e.Err }

// ErrBudget reports that an operator needed memory above the budget in a
// place that cannot spill (fixed per-operator state). It surfaces only in
// pathological configurations; spillable state never returns it.
var ErrBudget = errors.New("memory budget exceeded")

// FaultHooks are the interception points the fault-injection harness
// (internal/faultinject) installs. All fields are optional; a nil hook
// costs one pointer check. Hooks may be called concurrently from pool
// workers and must be safe for concurrent use.
type FaultHooks struct {
	// BeforeAlloc runs before each working-state reservation; returning an
	// error simulates an allocation failure (surfaced as a *QueryError).
	BeforeAlloc func(op string, bytes int64) error
	// OnCheck runs at every operator checkpoint (Check); returning an
	// error injects a failure at that point. It may also cancel the
	// query's context to exercise mid-Next cancellation.
	OnCheck func(op string) error
	// ForceSpill forces the named operator to take its spill path even
	// when the budget would fit (or is unbounded).
	ForceSpill func(op string) bool
	// SpillIO runs before each spill-file operation (create/write/read);
	// returning an error injects a disk fault.
	SpillIO func(op string) error
}

// Limits configures an ExecContext.
type Limits struct {
	// MemoryBudget bounds operator working state, in bytes; 0 = unbounded.
	MemoryBudget int64
	// Timeout aborts the query this long after NewExecContext; 0 = none.
	Timeout time.Duration
	// TempDir hosts spill files ("" = os.TempDir()). Each query creates
	// one "nra-spill-*" directory under it, removed by Close.
	TempDir string
	// Hooks installs fault-injection interception points (tests only).
	Hooks *FaultHooks
	// Tracer, when non-nil, records a per-operator span tree for the
	// query. Nil disables tracing at zero per-tuple cost.
	Tracer *obsv.Tracer
	// MemPool, when non-nil, additionally charges every working-state
	// reservation against a budget shared with other concurrent queries
	// (the serving layer's admission pool). A reservation the pool
	// refuses degrades the operator to its spill path, exactly like a
	// per-query budget refusal. Close returns any outstanding charge.
	MemPool *MemPool
}

// Stats is a snapshot of an ExecContext's resource accounting.
type Stats struct {
	PeakBytes  int64 // high-water mark of reserved working state
	Spills     int64 // spill events (chunked joins, external sort runs)
	SpillBytes int64 // bytes written to spill files
}

// govState is the accounting shared by an ExecContext and every
// cancellable view derived from it (WithCancel): one budget, one spill
// ledger, one temp directory per query.
type govState struct {
	limits Limits

	used, peak, spills, spillBytes atomic.Int64

	// poolCharged tracks how many bytes this query currently holds from
	// the shared MemPool, so the root Close can return anything an error
	// path failed to Release — the pool must never leak across queries.
	poolCharged atomic.Int64

	// planned holds operator names the cost-based planner decided will
	// exceed the budget: those operators take their spill path from the
	// start instead of attempting an in-memory build first. Written once
	// during planning (before operators run), read by workers.
	planned map[string]bool

	tmpMu  sync.Mutex
	tmpDir string
}

// ExecContext is the per-query execution context threaded through the
// iterator contract and every physical operator. The zero value is not
// usable; construct with NewExecContext or use Background.
type ExecContext struct {
	gov *govState

	ctx     context.Context
	cancel  context.CancelFunc
	done    <-chan struct{}       // ctx.Done(), cached at construction
	aborted atomic.Pointer[error] // cached ctx error, set by the first observer
	once    sync.Once             // Close idempotence
	root    bool                  // owns the temp dir (views do not)
}

// background is the shared ungoverned context: no budget, no deadline, no
// hooks. Operators invoked through the compatibility wrappers run under it
// with near-zero overhead (nil checks only).
var background = &ExecContext{gov: &govState{}, ctx: context.Background()}

// Background returns the shared ungoverned ExecContext. It must not be
// Closed (Close on it is a no-op).
func Background() *ExecContext { return background }

// NewExecContext returns a context governed by the given limits. ctx may
// be nil (context.Background()). Close must be called when the query
// finishes — it cancels the context, stops internal goroutines and
// removes the spill directory.
func NewExecContext(ctx context.Context, limits Limits) *ExecContext {
	if ctx == nil {
		ctx = context.Background()
	}
	ec := &ExecContext{gov: &govState{limits: limits}, ctx: ctx, root: true}
	if limits.Timeout > 0 {
		ec.ctx, ec.cancel = context.WithTimeout(ec.ctx, limits.Timeout)
	}
	ec.done = ec.ctx.Done()
	return ec
}

// WithCancel returns a cancellable view of ec sharing its budget, spill
// ledger, hooks and temp directory. Cancelling the view aborts only work
// running under it — the mechanism operator-scoped teardown (for example
// ParallelJoinIter.Close) uses to stop its workers without aborting the
// whole query. Close the view to release its context; the shared state
// stays with the parent.
func (ec *ExecContext) WithCancel() (*ExecContext, context.CancelFunc) {
	child := &ExecContext{gov: ec.gov}
	child.ctx, child.cancel = context.WithCancel(ec.ctx)
	child.done = child.ctx.Done()
	return child, child.cancel
}

// Close releases the context: it cancels outstanding work and (on the
// root context) removes the query's spill directory — even after an
// error or a cancellation, so no temp files outlive the query. Close is
// idempotent.
func (ec *ExecContext) Close() error {
	if ec == background {
		return nil
	}
	var err error
	ec.once.Do(func() {
		if ec.cancel != nil {
			ec.cancel()
		}
		if ec.root {
			if p := ec.gov.limits.MemPool; p != nil {
				if rem := ec.gov.poolCharged.Swap(0); rem > 0 {
					p.Release(rem)
				}
			}
			ec.gov.tmpMu.Lock()
			dir := ec.gov.tmpDir
			ec.gov.tmpDir = ""
			ec.gov.tmpMu.Unlock()
			if dir != "" {
				err = os.RemoveAll(dir)
			}
		}
	})
	return err
}

// Context returns the underlying context.Context.
func (ec *ExecContext) Context() context.Context { return ec.ctx }

// Governed reports whether the context imposes any governance — a budget
// (per-query or pooled), possible cancellation, or fault hooks.
// Ungoverned contexts keep every operator on its zero-overhead in-memory
// fast path.
func (ec *ExecContext) Governed() bool {
	return ec.gov.limits.MemoryBudget > 0 || ec.gov.limits.MemPool != nil ||
		ec.gov.limits.Hooks != nil || ec.ctx.Done() != nil
}

// Budget returns the memory budget in bytes (0 = unbounded).
func (ec *ExecContext) Budget() int64 { return ec.gov.limits.MemoryBudget }

// Tracing reports whether the context carries a tracer. Operators use it
// to skip label formatting; span methods themselves are nil-safe and
// need no guard.
func (ec *ExecContext) Tracing() bool { return ec.gov.limits.Tracer != nil }

// StartSpan opens a child span of the innermost open span and makes it
// current. With tracing disabled it returns nil, on which every Span
// method is a no-op. Tracing never changes which physical path an
// operator takes — Governed deliberately ignores the tracer.
func (ec *ExecContext) StartSpan(op, kind string) *obsv.Span {
	return ec.gov.limits.Tracer.Start(op, kind)
}

// CurrentSpan returns the innermost open span (nil with tracing
// disabled). Pool workers use it to credit morsel claims to whatever
// operator is running.
func (ec *ExecContext) CurrentSpan() *obsv.Span {
	return ec.gov.limits.Tracer.Current()
}

// Err returns the cancellation error, if any, without wrapping. After
// cancellation the error is cached in an atomic, so the steady state is
// one load; before it, a non-blocking poll of the done channel makes
// cancellation deterministic — a cancel that happened-before Err is
// always observed, never deferred to a background goroutine.
func (ec *ExecContext) Err() error {
	if p := ec.aborted.Load(); p != nil {
		return *p
	}
	if ec.done != nil {
		select {
		case <-ec.done:
			err := ec.ctx.Err()
			ec.aborted.Store(&err)
			return err
		default:
		}
	}
	return nil
}

// Check is the operator checkpoint: it runs the OnCheck fault hook and
// observes cancellation. Operators call it at loop boundaries; a non-nil
// return must abort the operator. The error is a *QueryError wrapping the
// cause, so the operator path survives to the caller.
func (ec *ExecContext) Check(op string) error {
	if h := ec.gov.limits.Hooks; h != nil && h.OnCheck != nil {
		if err := h.OnCheck(op); err != nil {
			return &QueryError{Op: op, Err: err}
		}
	}
	if err := ec.Err(); err != nil {
		return &QueryError{Op: op, Err: err}
	}
	return nil
}

// TryReserve reserves n bytes of working state for op. It returns
// (false, nil) when the reservation would exceed the budget — the caller
// should degrade to its spill path — and a non-nil error only for an
// injected allocation failure. The caller must Release what it reserved.
func (ec *ExecContext) TryReserve(op string, n int64) (bool, error) {
	if h := ec.gov.limits.Hooks; h != nil && h.BeforeAlloc != nil {
		if err := h.BeforeAlloc(op, n); err != nil {
			return false, &QueryError{Op: op, Err: err}
		}
	}
	g := ec.gov
	if b := g.limits.MemoryBudget; b > 0 {
		for {
			cur := g.used.Load()
			if cur+n > b {
				return false, nil
			}
			if g.used.CompareAndSwap(cur, cur+n) {
				break
			}
		}
	} else {
		g.used.Add(n)
	}
	if p := g.limits.MemPool; p != nil {
		if !p.TryReserve(n) {
			g.used.Add(-n)
			return false, nil
		}
		g.poolCharged.Add(n)
	}
	for {
		p, u := g.peak.Load(), g.used.Load()
		if u <= p || g.peak.CompareAndSwap(p, u) {
			break
		}
	}
	if g.limits.Tracer != nil {
		g.limits.Tracer.Current().AddBytes(n)
	}
	return true, nil
}

// Reserve charges n bytes of fixed (non-spillable) per-operator state —
// bitmaps, merge cursors. It runs the allocation hook and the accounting
// but never fails on the budget itself, because this state has no disk
// fallback; it only surfaces ErrBudget when n alone exceeds ten times the
// whole budget (a configuration error, not memory pressure).
func (ec *ExecContext) Reserve(op string, n int64) error {
	if b := ec.gov.limits.MemoryBudget; b > 0 && n > 10*b {
		return &QueryError{Op: op, Err: ErrBudget}
	}
	if h := ec.gov.limits.Hooks; h != nil && h.BeforeAlloc != nil {
		if err := h.BeforeAlloc(op, n); err != nil {
			return &QueryError{Op: op, Err: err}
		}
	}
	g := ec.gov
	g.used.Add(n)
	if p := g.limits.MemPool; p != nil {
		p.Reserve(n)
		g.poolCharged.Add(n)
	}
	for {
		p, u := g.peak.Load(), g.used.Load()
		if u <= p || g.peak.CompareAndSwap(p, u) {
			break
		}
	}
	if g.limits.Tracer != nil {
		g.limits.Tracer.Current().AddBytes(n)
	}
	return nil
}

// Release returns n reserved bytes (to the shared pool too, when wired).
func (ec *ExecContext) Release(n int64) {
	ec.gov.used.Add(-n)
	if p := ec.gov.limits.MemPool; p != nil {
		p.Release(n)
		ec.gov.poolCharged.Add(-n)
	}
}

// PlanSpill records the planner's decision that the named operators'
// working state will not fit the memory budget; they go straight to
// their spill path (grace join, external sort) rather than building in
// memory first and degrading mid-flight. Call before execution starts —
// the set is not synchronised against running operators. Spilled and
// in-memory paths produce byte-identical results, so a wrong estimate
// costs only performance.
func (ec *ExecContext) PlanSpill(ops ...string) {
	g := ec.gov
	if g.planned == nil {
		g.planned = make(map[string]bool, len(ops))
	}
	for _, op := range ops {
		g.planned[op] = true
	}
}

// ForceSpill reports whether op must take its spill path: either the
// cost-based planner decided so (PlanSpill) or the fault hooks force it.
func (ec *ExecContext) ForceSpill(op string) bool {
	if ec.gov.planned[op] {
		return true
	}
	h := ec.gov.limits.Hooks
	return h != nil && h.ForceSpill != nil && h.ForceSpill(op)
}

// NoteSpill records one spill event of the given size.
func (ec *ExecContext) NoteSpill(bytes int64) {
	ec.gov.spills.Add(1)
	ec.gov.spillBytes.Add(bytes)
	if tr := ec.gov.limits.Tracer; tr != nil {
		tr.Current().NoteSpill(bytes)
	}
}

// Stats snapshots the resource accounting.
func (ec *ExecContext) Stats() Stats {
	return Stats{
		PeakBytes:  ec.gov.peak.Load(),
		Spills:     ec.gov.spills.Load(),
		SpillBytes: ec.gov.spillBytes.Load(),
	}
}

// spillChunkBytes is the working-state bound per spill chunk (one join
// build chunk, one external-sort run): half the budget, so the chunk and
// its bookkeeping fit together, or a fixed default under forced spills
// with no budget.
func (ec *ExecContext) spillChunkBytes() int64 {
	if b := ec.gov.limits.MemoryBudget; b > 0 {
		if half := b / 2; half > 0 {
			return half
		}
		return 1
	}
	return 1 << 20
}

// tempFile creates a spill file for op under the query's spill directory,
// creating the directory on first use. The SpillIO hook runs first.
func (ec *ExecContext) tempFile(op string) (*os.File, error) {
	if h := ec.gov.limits.Hooks; h != nil && h.SpillIO != nil {
		if err := h.SpillIO(op); err != nil {
			return nil, &QueryError{Op: op, Err: err}
		}
	}
	g := ec.gov
	g.tmpMu.Lock()
	defer g.tmpMu.Unlock()
	if g.tmpDir == "" {
		dir, err := os.MkdirTemp(g.limits.TempDir, "nra-spill-")
		if err != nil {
			return nil, &QueryError{Op: op, Err: err}
		}
		g.tmpDir = dir
	}
	f, err := os.CreateTemp(g.tmpDir, "chunk-*")
	if err != nil {
		return nil, &QueryError{Op: op, Err: err}
	}
	return f, nil
}

// spillIO runs the spill-I/O fault hook for op (no-op without hooks).
func (ec *ExecContext) spillIO(op string) error {
	if h := ec.gov.limits.Hooks; h != nil && h.SpillIO != nil {
		if err := h.SpillIO(op); err != nil {
			return &QueryError{Op: op, Err: err}
		}
	}
	return nil
}

// Guard converts a panic in the enclosing function into a *QueryError
// carrying the operator path. Use as
//
//	defer exec.Guard("join/probe", &err)
//
// in every operator entry point and pool worker.
func Guard(op string, err *error) {
	if r := recover(); r != nil {
		*err = &QueryError{Op: op, Err: fmt.Errorf("panic: %v\n%s", r, debug.Stack())}
	}
}

// valueBytes is the accounted footprint of one atomic value: the Value
// struct (kind + int64 + float64 + string header) plus string payload.
func valueBytes(v value.Value) int64 {
	n := int64(40)
	if v.Kind() == value.KindString {
		n += int64(len(v.Text()))
	}
	return n
}

// TupleBytes is the accounted deep footprint of a tuple: two slice
// headers, each atom, and nested groups recursively. It deliberately
// over-counts shared backing arrays — the model charges an operator for
// every tuple its working state *covers*, which keeps accounting simple,
// deterministic and conservative.
func TupleBytes(t relation.Tuple) int64 {
	n := int64(48)
	for _, v := range t.Atoms {
		n += valueBytes(v)
	}
	for _, g := range t.Groups {
		n += 8
		if g != nil {
			n += 56 // Relation + schema pointer
			for _, gt := range g.Tuples {
				n += TupleBytes(gt)
			}
		}
	}
	return n
}

// tuplesBytes sums TupleBytes over a slice.
func tuplesBytes(ts []relation.Tuple) int64 {
	var n int64
	for _, t := range ts {
		n += TupleBytes(t)
	}
	return n
}
