package exec

import (
	"math/rand"
	"testing"

	"nra/internal/algebra"
	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/value"
)

// flatJoin builds a synthetic "outer ⟕ inner" flat relation like the ones
// the planner feeds NestLink: outer key ok, outer attr a, inner pk pk,
// inner linked attr b (pk NULL = padding row).
func flatJoin(rows ...[]any) *relation.Relation {
	return relation.MustFromRows("j", []string{"ok", "a", "pk", "b"}, rows...)
}

func allPred() algebra.LinkPred {
	return algebra.AllPred("a", expr.Gt, "g", "b", "pk")
}

func spec(rel *relation.Relation, p algebra.LinkPred) *LinkSpec {
	s := &LinkSpec{Pred: p, AttrIdx: -1, LinkedIdx: -1, PresIdx: rel.Schema.MustColIndex("pk")}
	if p.Empty == algebra.NoEmptyTest {
		s.LinkedIdx = rel.Schema.MustColIndex("b")
		if p.Const == nil {
			s.AttrIdx = rel.Schema.MustColIndex("a")
		}
	}
	return s
}

// materialized runs the original two-pass pipeline NestLink must match.
func materialized(rel *relation.Relation, p algebra.LinkPred, pad []string) (*relation.Relation, error) {
	nested, err := algebra.Nest(rel, []string{"ok", "a"}, []string{"pk", "b"}, "g")
	if err != nil {
		return nil, err
	}
	var sel *relation.Relation
	if pad == nil {
		sel, err = algebra.LinkSelect(nested, p)
	} else {
		sel, err = algebra.LinkSelectPad(nested, p, pad)
	}
	if err != nil {
		return nil, err
	}
	return algebra.DropSub(sel, "g")
}

func TestNestLinkMatchesMaterializedStrict(t *testing.T) {
	rel := flatJoin(
		[]any{1, 10, 1, 5}, []any{1, 10, 2, 9},
		[]any{2, 10, 3, 9}, // fails: 10 > 9 but then 2nd member...
		[]any{2, 10, 4, 11},
		[]any{3, 7, nil, nil}, // empty set → ALL true
		[]any{4, nil, 5, 1},   // NULL attr → unknown
	)
	got, err := NestLink(Background(), rel, []string{"ok"}, []string{"ok", "a"}, spec(rel, allPred()), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := materialized(rel, allPred(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualSet(want) {
		t.Fatalf("fused != materialized\nfused:\n%s\nmaterialized:\n%s", got, want)
	}
	// Spot-check: ok=1 passes (10>5,10>9), ok=2 fails (10>11 false),
	// ok=3 passes (empty), ok=4 unknown → dropped.
	if got.Len() != 2 {
		t.Fatalf("strict rows = %d\n%s", got.Len(), got)
	}
}

func TestNestLinkMatchesMaterializedPad(t *testing.T) {
	rel := flatJoin(
		[]any{1, 10, 1, 15}, // fails
		[]any{2, 10, 2, 5},  // passes
	)
	got, err := NestLink(Background(), rel, []string{"ok"}, []string{"ok", "a"}, spec(rel, allPred()), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := materialized(rel, allPred(), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualSet(want) {
		t.Fatalf("fused pad != materialized pad\n%s\nvs\n%s", got, want)
	}
	if got.Len() != 2 {
		t.Fatal("pad mode keeps all groups")
	}
	if _, err := NestLink(Background(), rel, []string{"ok"}, []string{"ok", "a"}, spec(rel, allPred()), []string{"nope"}); err == nil {
		t.Fatal("pad column must be an output column")
	}
}

func TestNestLinkExistsForms(t *testing.T) {
	rel := flatJoin(
		[]any{1, 0, 1, 0},
		[]any{2, 0, nil, nil},
	)
	ex := algebra.ExistsPred("g", "pk")
	got, err := NestLink(Background(), rel, []string{"ok"}, []string{"ok"}, spec(rel, ex), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuples[0].Atoms[0].Int64() != 1 {
		t.Fatalf("EXISTS rows:\n%s", got)
	}
	nex := algebra.NotExistsPred("g", "pk")
	got, err = NestLink(Background(), rel, []string{"ok"}, []string{"ok"}, spec(rel, nex), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuples[0].Atoms[0].Int64() != 2 {
		t.Fatalf("NOT EXISTS rows:\n%s", got)
	}
}

func TestNestLinkConstAttr(t *testing.T) {
	five := value.Int(5)
	p := algebra.LinkPred{Const: &five, Op: expr.Gt, Quant: algebra.All, Sub: "g", Linked: "b", Presence: "pk"}
	rel := flatJoin([]any{1, 0, 1, 3}, []any{2, 0, 2, 9})
	got, err := NestLink(Background(), rel, []string{"ok"}, []string{"ok"}, spec(rel, p), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuples[0].Atoms[0].Int64() != 1 {
		t.Fatalf("const-attr rows:\n%s", got)
	}
}

func TestNestLinkErrors(t *testing.T) {
	rel := flatJoin([]any{1, 0, 1, 3})
	if _, err := NestLink(Background(), rel, []string{"nope"}, []string{"ok"}, spec(rel, allPred()), nil); err == nil {
		t.Fatal("unknown key column must error")
	}
	if _, err := NestLink(Background(), rel, []string{"ok"}, []string{"nope"}, spec(rel, allPred()), nil); err == nil {
		t.Fatal("unknown by column must error")
	}
	// Type error inside the comparison surfaces.
	bad := relation.MustFromRows("j", []string{"ok", "a", "pk", "b"}, []any{1, "str", 1, 3})
	if _, err := NestLink(Background(), bad, []string{"ok"}, []string{"ok"}, spec(bad, allPred()), nil); err == nil {
		t.Fatal("type mismatch must error")
	}
}

// TestNestLinkQuickEquivalence fuzzes random inputs against the
// materialised pipeline, in both strict and pad mode and across
// quantifiers.
func TestNestLinkQuickEquivalence(t *testing.T) {
	quants := []algebra.LinkPred{
		algebra.AllPred("a", expr.Gt, "g", "b", "pk"),
		algebra.AllPred("a", expr.Ne, "g", "b", "pk"), // NOT IN
		algebra.SomePred("a", expr.Eq, "g", "b", "pk"),
		algebra.SomePred("a", expr.Le, "g", "b", "pk"),
		algebra.ExistsPred("g", "pk"),
		algebra.NotExistsPred("g", "pk"),
	}
	for seed := 0; seed < 150; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		var rows [][]any
		groups := 1 + rng.Intn(6)
		pkc := 0
		for g := 0; g < groups; g++ {
			attr := any(rng.Intn(5))
			if rng.Intn(6) == 0 {
				attr = nil
			}
			members := rng.Intn(4)
			if members == 0 {
				rows = append(rows, []any{g, attr, nil, nil}) // padding only
				continue
			}
			for m := 0; m < members; m++ {
				pkc++
				b := any(rng.Intn(5))
				if rng.Intn(6) == 0 {
					b = nil
				}
				rows = append(rows, []any{g, attr, pkc, b})
			}
		}
		rel := flatJoin(rows...)
		p := quants[rng.Intn(len(quants))]
		var pad []string
		if rng.Intn(2) == 0 {
			pad = []string{"a"}
		}
		got, err := NestLink(Background(), rel, []string{"ok"}, []string{"ok", "a"}, spec(rel, p), pad)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := materialized(rel, p, pad)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !got.EqualSet(want) {
			t.Fatalf("seed %d (%s, pad=%v): fused != materialized\ninput:\n%s\nfused:\n%s\nmaterialized:\n%s",
				seed, p, pad, rel, got, want)
		}
	}
}

func TestFinish(t *testing.T) {
	rel := relation.MustFromRows("r", []string{"x", "y"},
		[]any{2, "b"}, []any{1, "a"}, []any{2, "b"})
	items := []SelectItem{
		{Name: "x", Expr: expr.Col("x")},
		{Name: "twice", Expr: expr.Arith{Op: expr.Mul, L: expr.Col("x"), R: expr.Val(2)}},
	}
	out, err := Finish(rel, items, false, []OrderKey{{Col: 0, Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 || out.Tuples[0].Atoms[0].Int64() != 2 || out.Tuples[2].Atoms[1].Int64() != 2 {
		t.Fatalf("finish:\n%s", out)
	}
	dedup, err := Finish(rel, items, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dedup.Len() != 2 {
		t.Fatalf("distinct: %d", dedup.Len())
	}
	if _, err := Finish(rel, []SelectItem{{Name: "bad", Expr: expr.Col("nope")}}, false, nil); err == nil {
		t.Fatal("unknown column must error")
	}
}

// TestNestLinkChainMatchesPerLevel checks the fully fused chain against
// per-level fused evaluation on a synthetic three-block join.
func TestNestLinkChainMatchesPerLevel(t *testing.T) {
	// Blocks: A(ak,aa) ⟕ B(bk,bb) ⟕ C(ck,cb); link1 = aa >ALL {bb},
	// link2 = bb <SOME {cb}.
	cols := []string{"ak", "aa", "bk", "bb", "ck", "cb"}
	for seed := 0; seed < 120; seed++ {
		rng := rand.New(rand.NewSource(int64(9000 + seed)))
		var rows [][]any
		bkc, ckc := 0, 0
		for a := 0; a < 1+rng.Intn(4); a++ {
			aa := any(rng.Intn(4))
			if rng.Intn(7) == 0 {
				aa = nil
			}
			bs := rng.Intn(3)
			if bs == 0 {
				rows = append(rows, []any{a, aa, nil, nil, nil, nil})
				continue
			}
			for b := 0; b < bs; b++ {
				bkc++
				bb := any(rng.Intn(4))
				if rng.Intn(7) == 0 {
					bb = nil
				}
				cs := rng.Intn(3)
				if cs == 0 {
					rows = append(rows, []any{a, aa, bkc, bb, nil, nil})
					continue
				}
				for c := 0; c < cs; c++ {
					ckc++
					cb := any(rng.Intn(4))
					if rng.Intn(7) == 0 {
						cb = nil
					}
					rows = append(rows, []any{a, aa, bkc, bb, ckc, cb})
				}
			}
		}
		rel := relation.MustFromRows("j", cols, rows...)

		link1 := algebra.AllPred("aa", expr.Gt, "g", "bb", "bk")
		link2 := algebra.SomePred("bb", expr.Lt, "g", "cb", "ck")
		mkSpec := func(p algebra.LinkPred, attr, linked, pres string) *LinkSpec {
			s := &LinkSpec{Pred: p, AttrIdx: -1, LinkedIdx: -1, PresIdx: rel.Schema.MustColIndex(pres)}
			if attr != "" {
				s.AttrIdx = rel.Schema.MustColIndex(attr)
			}
			if linked != "" {
				s.LinkedIdx = rel.Schema.MustColIndex(linked)
			}
			return s
		}

		// Fused chain: one sort, one scan.
		chain, err := NestLinkChain(Background(), rel,
			[]ChainLevel{
				{KeyCols: []string{"ak"}, Spec: mkSpec(link1, "aa", "bb", "bk")},
				{KeyCols: []string{"bk"}, Spec: mkSpec(link2, "bb", "cb", "ck")},
			}, []string{"ak", "aa"})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Per-level: inner link first (padding failing B rows), then outer.
		lvl2, err := NestLink(Background(), rel, []string{"ak", "bk"},
			[]string{"ak", "aa", "bk", "bb"}, mkSpec(link2, "bb", "cb", "ck"),
			[]string{"bk", "bb"})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		spec1 := &LinkSpec{Pred: link1,
			AttrIdx:   lvl2.Schema.MustColIndex("aa"),
			LinkedIdx: lvl2.Schema.MustColIndex("bb"),
			PresIdx:   lvl2.Schema.MustColIndex("bk")}
		want, err := NestLink(Background(), lvl2, []string{"ak"}, []string{"ak", "aa"}, spec1, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		if !chain.EqualSet(want) {
			t.Fatalf("seed %d: chain != per-level\ninput:\n%s\nchain:\n%s\nper-level:\n%s",
				seed, rel, chain, want)
		}
	}
}

func TestNestLinkChainErrors(t *testing.T) {
	rel := flatJoin([]any{1, 0, 1, 3})
	if _, err := NestLinkChain(Background(), rel, nil, []string{"ok"}); err == nil {
		t.Fatal("empty chain must error")
	}
	if _, err := NestLinkChain(Background(), rel,
		[]ChainLevel{{KeyCols: []string{"nope"}, Spec: spec(rel, allPred())}},
		[]string{"ok"}); err == nil {
		t.Fatal("unknown key column must error")
	}
	if _, err := NestLinkChain(Background(), rel,
		[]ChainLevel{{KeyCols: []string{"ok"}, Spec: spec(rel, allPred())}},
		[]string{"nope"}); err == nil {
		t.Fatal("unknown output column must error")
	}
}
