package exec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"nra/internal/relation"
	"nra/internal/value"
)

// Spill-file format. Spilled tuples are encoded exactly — unlike
// value.AppendKey, which canonicalises integral floats to ints for hash
// keys, this codec round-trips every value bit-for-bit so a spilled
// execution is byte-identical to an in-memory one. A file is a sequence
// of records:
//
//	record  = uvarint(tag) payload
//	tuple   = uvarint(#atoms) atom* uvarint(#groups) group*
//	atom    = kind:1 payload (int/float: 8 bytes BE; string: uvarint len
//	          + bytes; bool: 1 byte; null: nothing)
//	group   = present:1 [uvarint(#tuples) tuple*]
//
// The tag is record-type-specific: the external sort writes tag 0, the
// grace join writes the probe-row index the joined tuple belongs to.
// Schemas are not serialised — the reader decodes against the schema the
// operator already holds (nested groups against its Subs).

type spillWriter struct {
	ec   *ExecContext
	op   string
	f    *os.File
	w    *bufio.Writer
	n    int64 // bytes written
	err  error
	buf  []byte
	done bool
}

// newSpillWriter creates one spill file for op under the query temp dir.
func newSpillWriter(ec *ExecContext, op string) (*spillWriter, error) {
	f, err := ec.tempFile(op)
	if err != nil {
		return nil, err
	}
	return &spillWriter{ec: ec, op: op, f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (s *spillWriter) writeByte(b byte) {
	if s.err == nil {
		s.err = s.w.WriteByte(b)
		s.n++
	}
}

func (s *spillWriter) write(p []byte) {
	if s.err == nil {
		_, s.err = s.w.Write(p)
		s.n += int64(len(p))
	}
}

func (s *spillWriter) writeUvarint(u uint64) {
	s.buf = binary.AppendUvarint(s.buf[:0], u)
	s.write(s.buf)
}

func (s *spillWriter) writeValue(v value.Value) {
	s.writeByte(byte(v.Kind()))
	switch v.Kind() {
	case value.KindNull:
	case value.KindInt:
		s.buf = binary.BigEndian.AppendUint64(s.buf[:0], uint64(v.Int64()))
		s.write(s.buf)
	case value.KindFloat:
		s.buf = binary.BigEndian.AppendUint64(s.buf[:0], math.Float64bits(v.Float64()))
		s.write(s.buf)
	case value.KindString:
		t := v.Text()
		s.writeUvarint(uint64(len(t)))
		s.write([]byte(t))
	case value.KindBool:
		if v.Truth() == value.True {
			s.writeByte(1)
		} else {
			s.writeByte(0)
		}
	}
}

func (s *spillWriter) writeTuple(t relation.Tuple) {
	s.writeUvarint(uint64(len(t.Atoms)))
	for _, v := range t.Atoms {
		s.writeValue(v)
	}
	s.writeUvarint(uint64(len(t.Groups)))
	for _, g := range t.Groups {
		if g == nil {
			s.writeByte(0)
			continue
		}
		s.writeByte(1)
		s.writeUvarint(uint64(len(g.Tuples)))
		for _, gt := range g.Tuples {
			s.writeTuple(gt)
		}
	}
}

// writeRecord appends one tagged tuple record. The per-record SpillIO
// fault hook runs here so injection can hit any individual write.
func (s *spillWriter) writeRecord(tag uint64, t relation.Tuple) error {
	if s.err == nil {
		if err := s.ec.spillIO(s.op); err != nil {
			s.err = err
		}
	}
	s.writeUvarint(tag)
	s.writeTuple(t)
	return s.err
}

// finish flushes and rewinds the file for reading, returning the byte
// count written.
func (s *spillWriter) finish() (int64, error) {
	if s.err == nil {
		s.err = s.w.Flush()
	}
	if s.err == nil {
		_, s.err = s.f.Seek(0, io.SeekStart)
	}
	if s.err != nil {
		return s.n, &QueryError{Op: s.op, Err: s.err}
	}
	return s.n, nil
}

// close releases the file handle (the query temp dir owns deletion).
func (s *spillWriter) close() {
	if !s.done {
		s.done = true
		s.f.Close()
	}
}

type spillReader struct {
	ec     *ExecContext
	op     string
	f      *os.File
	r      *bufio.Reader
	schema *relation.Schema
	done   bool
}

// newSpillReader reads back a file finished by spillWriter, decoding
// tuples against the given schema (needed to recurse into group schemas).
func newSpillReader(ec *ExecContext, op string, f *os.File, schema *relation.Schema) *spillReader {
	return &spillReader{ec: ec, op: op, f: f, r: bufio.NewReaderSize(f, 1<<16), schema: schema}
}

func (s *spillReader) readValue() (value.Value, error) {
	k, err := s.r.ReadByte()
	if err != nil {
		return value.Null, err
	}
	switch value.Kind(k) {
	case value.KindNull:
		return value.Null, nil
	case value.KindInt:
		var b [8]byte
		if _, err := io.ReadFull(s.r, b[:]); err != nil {
			return value.Null, err
		}
		return value.Int(int64(binary.BigEndian.Uint64(b[:]))), nil
	case value.KindFloat:
		var b [8]byte
		if _, err := io.ReadFull(s.r, b[:]); err != nil {
			return value.Null, err
		}
		return value.Float(math.Float64frombits(binary.BigEndian.Uint64(b[:]))), nil
	case value.KindString:
		n, err := binary.ReadUvarint(s.r)
		if err != nil {
			return value.Null, err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(s.r, b); err != nil {
			return value.Null, err
		}
		return value.Str(string(b)), nil
	case value.KindBool:
		b, err := s.r.ReadByte()
		if err != nil {
			return value.Null, err
		}
		return value.Bool(b != 0), nil
	}
	return value.Null, fmt.Errorf("spill: corrupt value kind %d", k)
}

func (s *spillReader) readTuple(schema *relation.Schema) (relation.Tuple, error) {
	var t relation.Tuple
	na, err := binary.ReadUvarint(s.r)
	if err != nil {
		return t, err
	}
	t.Atoms = make([]value.Value, na)
	for i := range t.Atoms {
		if t.Atoms[i], err = s.readValue(); err != nil {
			return t, err
		}
	}
	ng, err := binary.ReadUvarint(s.r)
	if err != nil {
		return t, err
	}
	if ng == 0 {
		return t, nil
	}
	t.Groups = make([]*relation.Relation, ng)
	for i := range t.Groups {
		present, err := s.r.ReadByte()
		if err != nil {
			return t, err
		}
		if present == 0 {
			continue
		}
		var sub *relation.Schema
		if schema != nil && i < len(schema.Subs) {
			sub = schema.Subs[i].Schema
		}
		nt, err := binary.ReadUvarint(s.r)
		if err != nil {
			return t, err
		}
		g := relation.New(sub)
		g.Tuples = make([]relation.Tuple, nt)
		for j := range g.Tuples {
			if g.Tuples[j], err = s.readTuple(sub); err != nil {
				return t, err
			}
		}
		t.Groups[i] = g
	}
	return t, nil
}

// readRecord returns the next tagged record, or io.EOF at end of file.
func (s *spillReader) readRecord() (uint64, relation.Tuple, error) {
	if err := s.ec.spillIO(s.op); err != nil {
		return 0, relation.Tuple{}, err
	}
	tag, err := binary.ReadUvarint(s.r)
	if err != nil {
		if err == io.EOF {
			return 0, relation.Tuple{}, io.EOF
		}
		return 0, relation.Tuple{}, &QueryError{Op: s.op, Err: err}
	}
	t, err := s.readTuple(s.schema)
	if err != nil {
		return 0, relation.Tuple{}, &QueryError{Op: s.op, Err: fmt.Errorf("truncated spill record: %w", err)}
	}
	return tag, t, nil
}

func (s *spillReader) close() {
	if !s.done {
		s.done = true
		s.f.Close()
	}
}
