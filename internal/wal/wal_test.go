package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nra/internal/catalog"
	"nra/internal/relation"
	"nra/internal/value"
	"nra/internal/vfs"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.jsonl")
}

func TestCellRoundTrip(t *testing.T) {
	cases := []value.Value{
		value.Null,
		value.Int(0), value.Int(-9223372036854775808), value.Int(9223372036854775807),
		value.Float(0.1), value.Float(-2.5e-308), value.Float(1e308), value.Float(3),
		value.Bool(true), value.Bool(false),
		value.Str(""), value.Str(`\N`), value.Str("line\nbreak,comma\tand \"quotes\" ünïcode"),
	}
	for _, v := range cases {
		got, err := DecodeCell(EncodeCell(v))
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if v.IsNull() != got.IsNull() {
			t.Fatalf("round trip %s -> %s", v, got)
		}
		if !v.IsNull() {
			cmp, known, err := value.Compare(v, got)
			if v.Kind() != got.Kind() || err != nil || !known || cmp != 0 {
				t.Fatalf("round trip %s (%s) -> %s (%s): cmp=%d known=%v err=%v", v, v.Kind(), got, got.Kind(), cmp, known, err)
			}
		}
	}
	if _, err := DecodeCell(Cell{K: "?", V: "x"}); err == nil {
		t.Fatal("unknown kind must error")
	}
	if _, err := DecodeCell(Cell{K: "I", V: "ten"}); err == nil {
		t.Fatal("bad integer must error")
	}
}

func TestAppendReplayApply(t *testing.T) {
	path := walPath(t)
	l, err := Open(vfs.OS, path, 3, SyncOnCommit)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Op: OpInsert, Table: "emp", Rows: [][]Cell{
			EncodeRow([]value.Value{value.Int(4), value.Int(30), value.Null}),
			EncodeRow([]value.Value{value.Int(5), value.Int(10), value.Int(12)}),
		}},
		{Op: OpUpdate, Table: "emp",
			Keys: EncodeRow([]value.Value{value.Int(4)}),
			Cols: []string{"salary"},
			Vals: [][]Cell{EncodeRow([]value.Value{value.Int(70)})}},
		{Op: OpDelete, Table: "emp", Keys: EncodeRow([]value.Value{value.Int(1)})},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Only checkpoint-3 records replay.
	got, err := Replay(vfs.OS, path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	if none, err := Replay(vfs.OS, path, 4); err != nil || len(none) != 0 {
		t.Fatalf("checkpoint fence leaked %d stale records (err %v)", len(none), err)
	}

	// Applying to the base state reproduces the journaled effects.
	cat := catalog.New()
	rel := relation.MustFromRows("emp", []string{"id", "dept", "salary"},
		[]any{1, 10, 100}, []any{2, 10, nil}, []any{3, 20, 80})
	if _, err := cat.Create("emp", rel, "id"); err != nil {
		t.Fatal(err)
	}
	if err := Apply(cat, got); err != nil {
		t.Fatal(err)
	}
	tbl, _ := cat.Table("emp")
	if tbl.Rel.Len() != 4 { // 3 - 1 deleted + 2 inserted
		t.Fatalf("rows after replay = %d, want 4", tbl.Rel.Len())
	}
	if rows := tbl.Index("id").Lookup(value.Int(1)); rows != nil {
		t.Fatal("deleted row resurrected")
	}
	r4 := tbl.Index("id").Lookup(value.Int(4))
	if len(r4) != 1 || tbl.Rel.Tuples[r4[0]].Atoms[2].Int64() != 70 {
		t.Fatal("update lost on replay")
	}
}

func TestReplayMissingFile(t *testing.T) {
	recs, err := Replay(vfs.OS, walPath(t), 1)
	if err != nil || recs != nil {
		t.Fatalf("missing journal should be empty, got %d recs, err %v", len(recs), err)
	}
}

func TestTornTailTolerated(t *testing.T) {
	path := walPath(t)
	l, err := Open(vfs.OS, path, 1, SyncOnCommit)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Op: OpDelete, Table: "t", Keys: EncodeRow([]value.Value{value.Int(int64(i))})}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-line, as a crash during append would.
	torn := data[:len(data)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Replay(vfs.OS, path, 1)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want the 2 intact ones", len(recs))
	}
}

func TestMidFileCorruptionRejected(t *testing.T) {
	path := walPath(t)
	l, err := Open(vfs.OS, path, 1, SyncOnCommit)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Op: OpDelete, Table: "t", Keys: EncodeRow([]value.Value{value.Int(int64(i))})}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a byte inside the second record's payload: its CRC now fails,
	// but an intact record follows.
	mut := []byte(lines[1])
	mut[len(mut)/2] ^= 0x20
	if err := os.WriteFile(path, []byte(lines[0]+string(mut)+lines[2]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(vfs.OS, path, 1); err == nil {
		t.Fatal("mid-file corruption must be an error, not a silent skip")
	}
}

func TestCheckpointTruncates(t *testing.T) {
	path := walPath(t)
	l, err := Open(vfs.OS, path, 1, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Op: OpDelete, Table: "t", Keys: EncodeRow([]value.Value{value.Int(1)})}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(path); len(data) != 0 {
		t.Fatalf("journal not truncated: %d bytes", len(data))
	}
	// Appends after a checkpoint carry the new stamp.
	if err := l.Append(Record{Op: OpDelete, Table: "t", Keys: EncodeRow([]value.Value{value.Int(2)})}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, err := Replay(vfs.OS, path, 2)
	if err != nil || len(recs) != 1 {
		t.Fatalf("post-checkpoint replay = %d recs, err %v", len(recs), err)
	}
}
