// Package wal is the append-only DML journal that makes committed
// INSERT / DELETE / UPDATE statements survive a crash between saves.
//
// Format: one JSON object per line, `{"c":<crc32>,"r":<record>}`, where
// c is the IEEE CRC32 of the record's exact JSON bytes. Values are
// encoded as tagged cells (kind + strconv-round-trip text) so replay
// reconstructs them bit-exactly, floats included.
//
// Durability contract. A record is appended — and, under the default
// fsync-on-commit policy, fsynced — before its transaction's commit is
// acknowledged. Recovery (Replay) reads the journal back:
//
//   - a torn final line (the crash hit mid-append) is tolerated and
//     dropped: that transaction never acknowledged, so losing it keeps
//     the database on the pre-state of the last committed batch;
//   - a corrupt record with valid records after it means the file was
//     damaged at rest, not torn — that is an error, never a silent skip.
//
// Checkpoint fencing. Every record is stamped with the checkpoint
// number of the manifest generation it was logged against. Replay only
// applies records whose stamp matches the loaded manifest's checkpoint:
// after a full Save committed (manifest renamed, checkpoint bumped) but
// crashed before truncating the journal, the stale records are ignored
// instead of being re-applied to data that already contains them.
package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strconv"

	"nra/internal/catalog"
	"nra/internal/value"
	"nra/internal/vfs"
)

// Op is a journaled DML verb.
type Op string

const (
	OpInsert Op = "insert"
	OpDelete Op = "delete"
	OpUpdate Op = "update"
)

// Record is one committed DML batch in replayable, fully resolved form:
// the rows an INSERT added, the primary keys a DELETE removed, or the
// keys, columns and per-row values an UPDATE wrote. Logging resolved
// effects rather than SQL text makes replay deterministic — it cannot
// re-evaluate expressions against the wrong state.
type Record struct {
	Ckpt  uint64   `json:"ckpt"`
	Op    Op       `json:"op"`
	Table string   `json:"table"`
	Rows  [][]Cell `json:"rows,omitempty"` // insert: full rows in schema order
	Keys  []Cell   `json:"keys,omitempty"` // delete, update: primary keys
	Cols  []string `json:"cols,omitempty"` // update: columns written
	Vals  [][]Cell `json:"vals,omitempty"` // update: vals[i] rewrites Keys[i]'s row
}

// Cell is one value in kind-tagged text form: K is "I" (integer),
// "F" (float), "S" (string), "B" (boolean) or "N" (NULL, no V).
type Cell struct {
	K string `json:"k"`
	V string `json:"v,omitempty"`
}

// EncodeCell converts a value to its journal form.
func EncodeCell(v value.Value) Cell {
	switch v.Kind() {
	case value.KindNull:
		return Cell{K: "N"}
	case value.KindInt:
		return Cell{K: "I", V: strconv.FormatInt(v.Int64(), 10)}
	case value.KindFloat:
		return Cell{K: "F", V: strconv.FormatFloat(v.Float64(), 'g', -1, 64)}
	case value.KindBool:
		return Cell{K: "B", V: strconv.FormatBool(v.Truth() == value.True)}
	default:
		return Cell{K: "S", V: v.Text()}
	}
}

// DecodeCell converts a journal cell back to a value.
func DecodeCell(c Cell) (value.Value, error) {
	switch c.K {
	case "N":
		return value.Null, nil
	case "I":
		i, err := strconv.ParseInt(c.V, 10, 64)
		if err != nil {
			return value.Null, fmt.Errorf("wal: bad integer cell %q: %w", c.V, err)
		}
		return value.Int(i), nil
	case "F":
		f, err := strconv.ParseFloat(c.V, 64)
		if err != nil {
			return value.Null, fmt.Errorf("wal: bad float cell %q: %w", c.V, err)
		}
		return value.Float(f), nil
	case "B":
		b, err := strconv.ParseBool(c.V)
		if err != nil {
			return value.Null, fmt.Errorf("wal: bad boolean cell %q: %w", c.V, err)
		}
		return value.Bool(b), nil
	case "S":
		return value.Str(c.V), nil
	}
	return value.Null, fmt.Errorf("wal: unknown cell kind %q", c.K)
}

// EncodeRow converts a row of values.
func EncodeRow(row []value.Value) []Cell {
	out := make([]Cell, len(row))
	for i, v := range row {
		out[i] = EncodeCell(v)
	}
	return out
}

// DecodeRow converts a journal row back to values.
func DecodeRow(cells []Cell) ([]value.Value, error) {
	out := make([]value.Value, len(cells))
	for i, c := range cells {
		v, err := DecodeCell(c)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// envelope is one journal line: the record's JSON bytes plus their CRC.
type envelope struct {
	C uint32          `json:"c"`
	R json.RawMessage `json:"r"`
}

// SyncPolicy controls when the journal fsyncs.
type SyncPolicy int

const (
	// SyncOnCommit fsyncs after every appended record: a commit is
	// acknowledged only once it is durable. The default.
	SyncOnCommit SyncPolicy = iota
	// SyncNever leaves syncing to the OS; committed-but-unsynced records
	// can be lost by a crash. For bulk loads and tests.
	SyncNever
)

// Log is an open journal. Append is not safe for concurrent use; the
// engine serialises appends under its single-writer commit lock.
type Log struct {
	fs     vfs.FS
	path   string
	f      vfs.File
	ckpt   uint64
	policy SyncPolicy
}

// Open opens (creating if missing) the journal at path, stamping future
// records with checkpoint ckpt.
func Open(fs vfs.FS, path string, ckpt uint64, policy SyncPolicy) (*Log, error) {
	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Log{fs: fs, path: path, f: f, ckpt: ckpt, policy: policy}, nil
}

// Append journals one record (stamped with the current checkpoint) and,
// under SyncOnCommit, makes it durable before returning.
func (l *Log) Append(rec Record) error {
	if l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	rec.Ckpt = l.ckpt
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	line, err := json.Marshal(envelope{C: crc32.ChecksumIEEE(raw), R: raw})
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	line = append(line, '\n')
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if l.policy == SyncOnCommit {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Sync forces buffered records to durable storage regardless of policy.
func (l *Log) Sync() error {
	if l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	return l.f.Sync()
}

// Checkpoint truncates the journal after a full Save committed the
// manifest for generation ckpt: the journaled mutations are now in the
// CSVs, so the journal restarts empty, stamping future records with the
// new checkpoint. Crash-safe — if the truncate never happens, replay's
// checkpoint fence ignores the stale records.
func (l *Log) Checkpoint(ckpt uint64) error {
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: checkpoint: %w", err)
		}
		l.f = nil
	}
	f, err := l.fs.Create(l.path) // Create truncates
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	nf, err := l.fs.OpenAppend(l.path)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	l.f = nf
	l.ckpt = ckpt
	return nil
}

// Close closes the journal file; safe after a failed Checkpoint.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Replay reads the journal at path and returns the records stamped with
// checkpoint ckpt, in append order. A missing file is an empty journal.
// A torn final line is dropped (see the package comment); corruption
// followed by further valid data is an error.
func Replay(fs vfs.FS, path string, ckpt uint64) ([]Record, error) {
	if !fs.Exists(path) {
		return nil, nil
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	var recs []Record
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		rec, perr := parseLine(line)
		if perr != nil {
			// Only a torn tail is forgivable: every later line must be
			// empty, otherwise the damage is mid-file corruption.
			for _, later := range lines[i+1:] {
				if len(bytes.TrimSpace(later)) != 0 {
					return nil, fmt.Errorf("wal: %s line %d: %w (valid records follow — file corrupted, not torn)", path, i+1, perr)
				}
			}
			break
		}
		if rec.Ckpt == ckpt {
			recs = append(recs, rec)
		}
	}
	return recs, nil
}

func parseLine(line []byte) (Record, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Record{}, fmt.Errorf("bad envelope: %w", err)
	}
	if got := crc32.ChecksumIEEE(env.R); got != env.C {
		return Record{}, fmt.Errorf("crc mismatch: %08x != %08x", got, env.C)
	}
	var rec Record
	if err := json.Unmarshal(env.R, &rec); err != nil {
		return Record{}, fmt.Errorf("bad record: %w", err)
	}
	return rec, nil
}

// Apply re-executes replayed records against a freshly loaded catalog.
// Replay is idempotent from the checkpoint's base state but not from
// any other — the checkpoint fence in Replay guarantees the base is
// right.
func Apply(cat *catalog.Catalog, recs []Record) error {
	for _, rec := range recs {
		switch rec.Op {
		case OpInsert:
			rows := make([][]value.Value, len(rec.Rows))
			for i, r := range rec.Rows {
				row, err := DecodeRow(r)
				if err != nil {
					return err
				}
				rows[i] = row
			}
			if _, err := cat.Insert(rec.Table, rows); err != nil {
				return fmt.Errorf("wal: replay insert into %s: %w", rec.Table, err)
			}
		case OpDelete:
			keys, err := DecodeRow(rec.Keys)
			if err != nil {
				return err
			}
			if _, err := cat.Delete(rec.Table, keys); err != nil {
				return fmt.Errorf("wal: replay delete from %s: %w", rec.Table, err)
			}
		case OpUpdate:
			keys, err := DecodeRow(rec.Keys)
			if err != nil {
				return err
			}
			vals := make([][]value.Value, len(rec.Vals))
			for i, r := range rec.Vals {
				row, err := DecodeRow(r)
				if err != nil {
					return err
				}
				vals[i] = row
			}
			if _, err := cat.Update(rec.Table, keys, rec.Cols, vals); err != nil {
				return fmt.Errorf("wal: replay update %s: %w", rec.Table, err)
			}
		default:
			return fmt.Errorf("wal: unknown op %q", rec.Op)
		}
	}
	return nil
}
