// Package vfs is the filesystem seam behind the persistence layer
// (internal/csvio, internal/wal): a minimal interface over the handful
// of operations durability depends on — create/append/write, fsync,
// atomic rename, remove — with the real OS implementation in OS.
//
// The seam exists so the crash-consistency harness
// (internal/faultinject.FaultFS) can enumerate every write/sync/rename
// a save or WAL commit performs and simulate a crash at each one,
// including torn writes and the loss of un-fsynced data. Production
// code always uses OS.
package vfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is a writable file handle. Write buffers in the OS page cache;
// only a successful Sync makes previously written bytes durable.
type File interface {
	io.Writer
	// Sync forces written bytes to stable storage (fsync).
	Sync() error
	// Close releases the handle. Close does NOT imply durability.
	Close() error
}

// FS is the set of filesystem operations the persistence layer uses.
// Implementations must tolerate forward-slash-joined paths (the layer
// joins with path/filepath, so the OS implementation sees native paths).
type FS interface {
	// MkdirAll creates dir and its parents; existing directories are fine.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it when missing.
	OpenAppend(name string) (File, error)
	// ReadFile returns name's full content.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname (POSIX rename).
	Rename(oldname, newname string) error
	// Remove deletes name; removing a missing file is an error
	// (callers gate on Exists).
	Remove(name string) error
	// Exists reports whether name exists as a file.
	Exists(name string) bool
	// ReadDirNames lists the file names (not paths) in dir, sorted.
	// A missing directory yields an empty list, not an error.
	ReadDirNames(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making completed renames and
	// removals durable on filesystems that need it.
	SyncDir(dir string) error
}

// OS is the production implementation backed by the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Exists(name string) bool {
	st, err := os.Stat(name)
	return err == nil && !st.IsDir()
}

func (osFS) ReadDirNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
