// Package index implements the two access structures the native baseline
// ("System A") uses: an equality hash index and a sorted index supporting
// range scans — the functional equivalent of the B+-trees the paper's
// experiments rely on. The nested relational approach itself needs no
// indexes (§1), so only internal/native consumes this package.
package index

import (
	"fmt"
	"sort"

	"nra/internal/relation"
	"nra/internal/value"
)

// Index maps key values of one or more columns to the row ids of a base
// relation. Both point lookups (hash) and ordered range scans (sorted row
// list) are supported.
type Index struct {
	cols    []string
	colIdx  []int
	hash    map[string][]int
	ordered []int // row ids sorted by key, for range scans on 1-col indexes
	rel     *relation.Relation
}

// Build constructs an index over the given columns of rel. Rows with a
// NULL in any key column are excluded from the hash (SQL equality never
// matches NULL) but present in the ordered list (sorted first).
func Build(rel *relation.Relation, cols []string) (*Index, error) {
	idx := &Index{cols: append([]string(nil), cols...), rel: rel}
	for _, c := range cols {
		j := rel.Schema.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("index: no column %q in %s", c, rel.Schema)
		}
		idx.colIdx = append(idx.colIdx, j)
	}
	idx.hash = make(map[string][]int, rel.Len())
rows:
	for i, t := range rel.Tuples {
		for _, j := range idx.colIdx {
			if t.Atoms[j].IsNull() {
				continue rows
			}
		}
		k := t.KeyOn(idx.colIdx)
		idx.hash[k] = append(idx.hash[k], i)
	}
	idx.ordered = make([]int, rel.Len())
	for i := range idx.ordered {
		idx.ordered[i] = i
	}
	sort.SliceStable(idx.ordered, func(a, b int) bool {
		ta, tb := rel.Tuples[idx.ordered[a]], rel.Tuples[idx.ordered[b]]
		for _, j := range idx.colIdx {
			va, vb := ta.Atoms[j], tb.Atoms[j]
			if !value.Identical(va, vb) {
				return value.Less(va, vb)
			}
		}
		return false
	})
	return idx, nil
}

// Columns returns the indexed column names.
func (x *Index) Columns() []string { return append([]string(nil), x.cols...) }

// Lookup returns the row ids whose key equals the given values. A NULL
// probe never matches.
func (x *Index) Lookup(keys ...value.Value) []int {
	if len(keys) != len(x.colIdx) {
		return nil
	}
	var buf []byte
	for _, k := range keys {
		if k.IsNull() {
			return nil
		}
		buf = k.AppendKey(buf)
	}
	return x.hash[string(buf)]
}

// Entries returns the number of distinct keys in the index; a rough size
// measure the native planner uses to prefer smaller index structures
// (the paper's Query 3a(b) observation).
func (x *Index) Entries() int { return len(x.hash) }

// Range scans a single-column index and returns the row ids whose key v
// satisfies lo ≤ v ≤ hi (a nil bound is open). NULL keys never qualify.
func (x *Index) Range(lo, hi *value.Value) []int {
	if len(x.colIdx) != 1 {
		return nil
	}
	j := x.colIdx[0]
	keyAt := func(i int) value.Value { return x.rel.Tuples[x.ordered[i]].Atoms[j] }
	// Binary-search the start position: NULLs sort first in the ordered
	// list, and value.Less is consistent with value.Compare on same-kind
	// keys, so the ordered list is usable as a B+-tree leaf chain.
	start := 0
	if lo != nil {
		start = sort.Search(len(x.ordered), func(i int) bool {
			v := keyAt(i)
			if v.IsNull() {
				return false
			}
			cmp, known, err := value.Compare(v, *lo)
			return err == nil && known && cmp >= 0
		})
	} else {
		start = sort.Search(len(x.ordered), func(i int) bool { return !keyAt(i).IsNull() })
	}
	var out []int
	for i := start; i < len(x.ordered); i++ {
		v := keyAt(i)
		if v.IsNull() {
			continue
		}
		if hi != nil {
			cmp, known, err := value.Compare(v, *hi)
			if err != nil || !known {
				continue
			}
			if cmp > 0 {
				break
			}
		}
		out = append(out, x.ordered[i])
	}
	return out
}
