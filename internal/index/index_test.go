package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nra/internal/relation"
	"nra/internal/value"
)

func sample() *relation.Relation {
	return relation.MustFromRows("t", []string{"a", "b"},
		[]any{5, "x"},
		[]any{3, "y"},
		[]any{5, "z"},
		[]any{nil, "w"},
		[]any{8, "y"},
	)
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(sample(), []string{"nope"}); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestLookup(t *testing.T) {
	idx, err := Build(sample(), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if rows := idx.Lookup(value.Int(5)); len(rows) != 2 {
		t.Fatalf("a=5 rows = %v", rows)
	}
	if rows := idx.Lookup(value.Int(4)); rows != nil {
		t.Fatalf("a=4 rows = %v", rows)
	}
	if rows := idx.Lookup(value.Null); rows != nil {
		t.Fatal("NULL probe must match nothing (SQL equality)")
	}
	if rows := idx.Lookup(value.Int(1), value.Int(2)); rows != nil {
		t.Fatal("wrong arity must match nothing")
	}
	if idx.Entries() != 3 { // 3, 5, 8 (NULL row excluded)
		t.Fatalf("entries = %d", idx.Entries())
	}
}

func TestCompositeLookup(t *testing.T) {
	idx, err := Build(sample(), []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if rows := idx.Lookup(value.Int(5), value.Str("z")); len(rows) != 1 || rows[0] != 2 {
		t.Fatalf("composite lookup = %v", rows)
	}
	if cols := idx.Columns(); len(cols) != 2 || cols[0] != "a" {
		t.Fatalf("columns = %v", cols)
	}
}

func TestRange(t *testing.T) {
	idx, err := Build(sample(), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := value.Int(4), value.Int(8)
	rows := idx.Range(&lo, &hi)
	if len(rows) != 3 { // 5, 5, 8
		t.Fatalf("range [4,8] rows = %v", rows)
	}
	// Open bounds.
	if rows := idx.Range(nil, nil); len(rows) != 4 { // NULL excluded
		t.Fatalf("full range rows = %v", rows)
	}
	onlyHi := value.Int(3)
	if rows := idx.Range(nil, &onlyHi); len(rows) != 1 {
		t.Fatalf("range (-inf,3] rows = %v", rows)
	}
	onlyLo := value.Int(6)
	if rows := idx.Range(&onlyLo, nil); len(rows) != 1 {
		t.Fatalf("range [6,inf) rows = %v", rows)
	}
	// Range on a composite index is unsupported.
	comp, _ := Build(sample(), []string{"a", "b"})
	if comp.Range(&lo, &hi) != nil {
		t.Fatal("composite range should be nil")
	}
}

// TestRangeMatchesScanQuick: the binary-searched range scan must agree
// with a naive filter for random data and bounds.
func TestRangeMatchesScanQuick(t *testing.T) {
	err := quick.Check(func(seed int64, loRaw, hiRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		var rows [][]any
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			if rng.Intn(5) == 0 {
				rows = append(rows, []any{nil})
			} else {
				rows = append(rows, []any{rng.Intn(20)})
			}
		}
		rel := relation.MustFromRows("t", []string{"k"}, rows...)
		idx, err := Build(rel, []string{"k"})
		if err != nil {
			return false
		}
		lo, hi := value.Int(int64(loRaw%20)), value.Int(int64(hiRaw%20))
		got := idx.Range(&lo, &hi)
		want := map[int]bool{}
		for i, tup := range rel.Tuples {
			v := tup.Atoms[0]
			if v.IsNull() {
				continue
			}
			c1, k1, _ := value.Compare(v, lo)
			c2, k2, _ := value.Compare(v, hi)
			if k1 && k2 && c1 >= 0 && c2 <= 0 {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, r := range got {
			if !want[r] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLookupMatchesScanQuick: hash lookups must agree with a naive filter.
func TestLookupMatchesScanQuick(t *testing.T) {
	err := quick.Check(func(seed int64, probe uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var rows [][]any
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			rows = append(rows, []any{rng.Intn(10), rng.Intn(3)})
		}
		rel := relation.MustFromRows("t", []string{"k", "v"}, rows...)
		idx, err := Build(rel, []string{"k"})
		if err != nil {
			return false
		}
		p := value.Int(int64(probe % 10))
		got := idx.Lookup(p)
		count := 0
		for _, tup := range rel.Tuples {
			if value.Identical(tup.Atoms[0], p) {
				count++
			}
		}
		return len(got) == count
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
