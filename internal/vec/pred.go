package vec

import (
	"nra/internal/expr"
	"nra/internal/relation"
	"nra/internal/value"
)

// Pred is a predicate compiled to batch kernels, evaluating whole row
// windows to a TriVec instead of one tuple to a Tri.
//
// The kernels are eager: both sides of a conjunction/disjunction are
// evaluated even where the row engine's short-circuit would skip one.
// On well-typed inputs this is unobservable; a query whose predicate
// raises a type error only on short-circuited rows can surface that
// error here where the row engine would not. Grammar- and
// catalog-typed queries never hit this case.
type Pred struct {
	root predNode
}

// predNode evaluates rows [start, end) of cols to a window-relative
// TriVec (bit i ↔ row start+i). start is 64-aligned by the callers so
// NULL bitmaps slice on word boundaries.
type predNode interface {
	eval(cols []*Vector, start, end int) (TriVec, error)
}

// CompilePred compiles e against a flat schema. ok is false when some
// node of e has no batch kernel (correlated subexpressions, arithmetic,
// unresolvable columns) — the caller then falls back to the row engine,
// which also surfaces any compile error the row path would raise.
func CompilePred(e expr.Expr, s *relation.Schema) (*Pred, bool) {
	n, ok := compileNode(e, s)
	if !ok {
		return nil, false
	}
	return &Pred{root: n}, true
}

// Eval evaluates rows [start, end) of cols; start must be 64-aligned
// (or the window must end at the column height) so bitmap windows stay
// word-aligned.
func (p *Pred) Eval(cols []*Vector, start, end int) (TriVec, error) {
	return p.root.eval(cols, start, end)
}

// MarkCols marks in needed the index of every column e reads, resolved
// against s. It reports false when e contains a node CompilePred would
// reject, in which case the marks are meaningless and the caller should
// convert every column.
func MarkCols(e expr.Expr, s *relation.Schema, needed []bool) bool {
	switch n := e.(type) {
	case expr.Cmp:
		return MarkCols(n.L, s, needed) && MarkCols(n.R, s, needed)
	case expr.Logic:
		return MarkCols(n.L, s, needed) && MarkCols(n.R, s, needed)
	case expr.Not:
		return MarkCols(n.E, s, needed)
	case expr.IsNull:
		return MarkCols(n.E, s, needed)
	case expr.Column:
		ci := s.ColIndex(n.Name)
		if ci < 0 {
			return false
		}
		needed[ci] = true
		return true
	case expr.Lit:
		return true
	}
	return false
}

// compileNode lowers one expression node; ok=false means "no kernel".
func compileNode(e expr.Expr, s *relation.Schema) (predNode, bool) {
	switch n := e.(type) {
	case expr.Cmp:
		return compileCmp(n, s)
	case expr.Logic:
		l, ok := compileNode(n.L, s)
		if !ok {
			return nil, false
		}
		r, ok := compileNode(n.R, s)
		if !ok {
			return nil, false
		}
		return &logicNode{and: n.Op == expr.OpAnd, l: l, r: r}, true
	case expr.Not:
		k, ok := compileNode(n.E, s)
		if !ok {
			return nil, false
		}
		return &notNode{kid: k}, true
	case expr.IsNull:
		switch operand := n.E.(type) {
		case expr.Column:
			ci := s.ColIndex(operand.Name)
			if ci < 0 {
				return nil, false
			}
			return &isNullNode{ci: ci, negate: n.Negate}, true
		case expr.Lit:
			return &constNode{tri: value.TriOf(operand.V.IsNull() != n.Negate)}, true
		}
		return nil, false
	}
	return nil, false
}

// compileCmp lowers a comparison whose operands are columns or
// literals, flipping literal-first comparisons into column-first form.
func compileCmp(c expr.Cmp, s *relation.Schema) (predNode, bool) {
	switch l := c.L.(type) {
	case expr.Column:
		li := s.ColIndex(l.Name)
		if li < 0 {
			return nil, false
		}
		switch r := c.R.(type) {
		case expr.Column:
			ri := s.ColIndex(r.Name)
			if ri < 0 {
				return nil, false
			}
			return &cmpColsNode{op: c.Op, li: li, ri: ri}, true
		case expr.Lit:
			return &cmpConstNode{op: c.Op, ci: li, c: r.V}, true
		}
	case expr.Lit:
		switch r := c.R.(type) {
		case expr.Column:
			ri := s.ColIndex(r.Name)
			if ri < 0 {
				return nil, false
			}
			// lit op col  ≡  col op.Flip() lit
			return &cmpConstNode{op: c.Op.Flip(), ci: ri, c: l.V}, true
		case expr.Lit:
			return &cmpLitsNode{op: c.Op, l: l.V, r: r.V}, true
		}
	}
	return nil, false
}

// verbOf maps expr's comparison operators onto value's kernel verbs
// (the two enums share order; this keeps the mapping explicit).
func verbOf(op expr.CmpOp) value.CmpVerb {
	switch op {
	case expr.Eq:
		return value.VerbEq
	case expr.Ne:
		return value.VerbNe
	case expr.Lt:
		return value.VerbLt
	case expr.Le:
		return value.VerbLe
	case expr.Gt:
		return value.VerbGt
	case expr.Ge:
		return value.VerbGe
	}
	panic("vec: invalid comparison operator")
}

// nullWindow slices the word-aligned window of a NULL bitmap.
func nullWindow(b Bitmap, start, end int) []uint64 {
	return b[start>>6 : (end+63)>>6]
}

// orInto unions src into dst word-wise.
func orInto(dst Bitmap, src []uint64) {
	for w, x := range src {
		dst[w] |= x
	}
}

// andNotInto clears dst bits set in src.
func andNotInto(dst Bitmap, src []uint64) {
	for w, x := range src {
		dst[w] &^= x
	}
}

// cmpConstNode is column θ literal.
type cmpConstNode struct {
	op expr.CmpOp
	ci int
	c  value.Value
}

func (n *cmpConstNode) eval(cols []*Vector, start, end int) (TriVec, error) {
	rows := end - start
	tv := NewTriVec(rows)
	if n.c.IsNull() {
		// NULL θ anything is Unknown for every non-error row; the row
		// engine also never errors here because Compare returns early
		// on NULL operands.
		for w := range tv.Unknown {
			tv.Unknown[w] = ^uint64(0)
		}
		tv.Unknown.Mask(rows)
		return tv, nil
	}
	v := cols[n.ci]
	verb := verbOf(n.op)
	fast := true
	switch v.Kind {
	case value.KindInt:
		switch n.c.Kind() {
		case value.KindInt:
			value.CmpInt64Const(verb, v.Ints[start:end], n.c.Int64(), tv.True)
		case value.KindFloat:
			value.CmpInt64AsFloat64Const(verb, v.Ints[start:end], n.c.Float64(), tv.True)
		default:
			fast = false
		}
	case value.KindFloat:
		switch n.c.Kind() {
		case value.KindInt, value.KindFloat:
			value.CmpFloat64Const(verb, v.Floats[start:end], n.c.Float64(), tv.True)
		default:
			fast = false
		}
	case value.KindString:
		if n.c.Kind() == value.KindString {
			// Decide each dictionary entry once, then fan out by code.
			cs := n.c.Text()
			verdict := make([]bool, len(v.Dict))
			for code, s := range v.Dict {
				verdict[code] = holdsString(verb, s, cs)
			}
			for i := start; i < end; i++ {
				if verdict[v.Codes[i]] {
					tv.True.Set(i - start)
				}
			}
		} else {
			fast = false
		}
	default:
		fast = false
	}
	if !fast {
		// Generic path: boxed compare per row, reproducing the row
		// engine's type errors (first failing row in scan order).
		for i := start; i < end; i++ {
			av := v.Value(i)
			cmp, known, err := value.Compare(av, n.c)
			if err != nil {
				return TriVec{}, err
			}
			if !known {
				tv.Unknown.Set(i - start)
				continue
			}
			if verb.Holds(cmp) {
				tv.True.Set(i - start)
			}
		}
		return tv, nil
	}
	nw := nullWindow(v.Nulls, start, end)
	andNotInto(tv.True, nw)
	orInto(tv.Unknown, nw)
	return tv, nil
}

// holdsString applies a verb to one ordered string pair.
func holdsString(verb value.CmpVerb, a, b string) bool {
	switch {
	case a == b:
		return verb.Holds(0)
	case a < b:
		return verb.Holds(-1)
	default:
		return verb.Holds(1)
	}
}

// cmpColsNode is column θ column.
type cmpColsNode struct {
	op     expr.CmpOp
	li, ri int
}

func (n *cmpColsNode) eval(cols []*Vector, start, end int) (TriVec, error) {
	rows := end - start
	tv := NewTriVec(rows)
	l, r := cols[n.li], cols[n.ri]
	verb := verbOf(n.op)
	fast := true
	switch {
	case l.Kind == value.KindInt && r.Kind == value.KindInt:
		value.CmpInt64s(verb, l.Ints[start:end], r.Ints[start:end], tv.True)
	case l.Kind == value.KindFloat && r.Kind == value.KindFloat:
		value.CmpFloat64s(verb, l.Floats[start:end], r.Floats[start:end], tv.True)
	case l.Kind == value.KindInt && r.Kind == value.KindFloat:
		for i := start; i < end; i++ {
			if verb.Holds(cmpFloat(float64(l.Ints[i]), r.Floats[i])) {
				tv.True.Set(i - start)
			}
		}
	case l.Kind == value.KindFloat && r.Kind == value.KindInt:
		for i := start; i < end; i++ {
			if verb.Holds(cmpFloat(l.Floats[i], float64(r.Ints[i]))) {
				tv.True.Set(i - start)
			}
		}
	case l.Kind == value.KindString && r.Kind == value.KindString:
		for i := start; i < end; i++ {
			if holdsString(verb, l.Dict[l.Codes[i]], r.Dict[r.Codes[i]]) {
				tv.True.Set(i - start)
			}
		}
	default:
		fast = false
	}
	if !fast {
		for i := start; i < end; i++ {
			cmp, known, err := value.Compare(l.Value(i), r.Value(i))
			if err != nil {
				return TriVec{}, err
			}
			if !known {
				tv.Unknown.Set(i - start)
				continue
			}
			if verb.Holds(cmp) {
				tv.True.Set(i - start)
			}
		}
		return tv, nil
	}
	lw, rw := nullWindow(l.Nulls, start, end), nullWindow(r.Nulls, start, end)
	andNotInto(tv.True, lw)
	andNotInto(tv.True, rw)
	orInto(tv.Unknown, lw)
	orInto(tv.Unknown, rw)
	return tv, nil
}

// cmpFloat orders two non-NULL floats the way value.Compare does: NaN
// is neither less nor greater, so it lands in the equal branch.
func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// cmpLitsNode is literal θ literal, broadcast over the window; kept
// lazy so an incompatible-kind error only surfaces when rows exist,
// exactly as the row engine's per-tuple evaluation does.
type cmpLitsNode struct {
	op   expr.CmpOp
	l, r value.Value
}

func (n *cmpLitsNode) eval(_ []*Vector, start, end int) (TriVec, error) {
	rows := end - start
	tv := NewTriVec(rows)
	if rows == 0 {
		return tv, nil
	}
	t, err := n.op.Apply(n.l, n.r)
	if err != nil {
		return TriVec{}, err
	}
	switch t {
	case value.True:
		for w := range tv.True {
			tv.True[w] = ^uint64(0)
		}
		tv.True.Mask(rows)
	case value.Unknown:
		for w := range tv.Unknown {
			tv.Unknown[w] = ^uint64(0)
		}
		tv.Unknown.Mask(rows)
	}
	return tv, nil
}

// constNode broadcasts a compile-time truth value.
type constNode struct{ tri value.Tri }

func (n *constNode) eval(_ []*Vector, start, end int) (TriVec, error) {
	rows := end - start
	tv := NewTriVec(rows)
	var target Bitmap
	switch n.tri {
	case value.True:
		target = tv.True
	case value.Unknown:
		target = tv.Unknown
	default:
		return tv, nil
	}
	for w := range target {
		target[w] = ^uint64(0)
	}
	target.Mask(rows)
	return tv, nil
}

// isNullNode is column IS [NOT] NULL.
type isNullNode struct {
	ci     int
	negate bool
}

func (n *isNullNode) eval(cols []*Vector, start, end int) (TriVec, error) {
	rows := end - start
	tv := NewTriVec(rows)
	copy(tv.True, nullWindow(cols[n.ci].Nulls, start, end))
	if n.negate {
		neg := tv.True.Not(rows)
		tv.True = neg
	}
	return tv, nil
}

// logicNode is Kleene AND/OR over two kernels.
type logicNode struct {
	and  bool
	l, r predNode
}

func (n *logicNode) eval(cols []*Vector, start, end int) (TriVec, error) {
	lv, err := n.l.eval(cols, start, end)
	if err != nil {
		return TriVec{}, err
	}
	rv, err := n.r.eval(cols, start, end)
	if err != nil {
		return TriVec{}, err
	}
	rows := end - start
	if n.and {
		return lv.And(rv, rows), nil
	}
	return lv.Or(rv, rows), nil
}

// notNode is Kleene negation.
type notNode struct{ kid predNode }

func (n *notNode) eval(cols []*Vector, start, end int) (TriVec, error) {
	kv, err := n.kid.eval(cols, start, end)
	if err != nil {
		return TriVec{}, err
	}
	return kv.Not(end - start), nil
}
