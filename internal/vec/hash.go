package vec

import (
	"math"

	"nra/internal/value"
)

// FNV-1a constants, used word-at-a-time over the canonical key classes.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// mix64 folds one 64-bit lane into the running hash.
func mix64(h, x uint64) uint64 {
	h ^= x
	h *= fnvPrime
	return h
}

// hashString hashes a string payload FNV-1a byte-wise.
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return mix64(h, uint64(len(s)))
}

// HashRows writes one 64-bit hash per row of rows [start, end) over the
// key columns into out[0 .. end-start). The hash is canonical with
// value.AppendKey: two rows whose key tuples have equal encodings (the
// row engine's hash-table equality) always hash equal, so KeyEqualAt
// can verify candidates within a bucket.
func HashRows(cols []*Vector, keyIdx []int, start, end int, out []uint64) {
	for i := range out[:end-start] {
		out[i] = fnvOffset
	}
	for _, k := range keyIdx {
		v := cols[k]
		switch v.Kind {
		case value.KindInt:
			for i := start; i < end; i++ {
				if v.Nulls.Get(i) {
					out[i-start] = mix64(mix64(out[i-start], 0), 0)
					continue
				}
				h := mix64(out[i-start], 1)
				out[i-start] = mix64(h, uint64(v.Ints[i]))
			}
		case value.KindBool:
			for i := start; i < end; i++ {
				if v.Nulls.Get(i) {
					out[i-start] = mix64(mix64(out[i-start], 0), 0)
					continue
				}
				h := mix64(out[i-start], 4)
				out[i-start] = mix64(h, uint64(v.Ints[i]))
			}
		case value.KindFloat:
			for i := start; i < end; i++ {
				if v.Nulls.Get(i) {
					out[i-start] = mix64(mix64(out[i-start], 0), 0)
					continue
				}
				h := out[i-start]
				if f := v.Floats[i]; f == math.Trunc(f) && f >= math.MinInt64 && f < math.MaxInt64 {
					h = mix64(mix64(h, 1), uint64(int64(f)))
				} else {
					h = mix64(mix64(h, 2), math.Float64bits(f))
				}
				out[i-start] = h
			}
		case value.KindString:
			// Hash each dictionary entry once, then fan out by code.
			dictHash := make([]uint64, len(v.Dict))
			for c, s := range v.Dict {
				dictHash[c] = hashString(3, s)
			}
			for i := start; i < end; i++ {
				if v.Nulls.Get(i) {
					out[i-start] = mix64(mix64(out[i-start], 0), 0)
					continue
				}
				out[i-start] = mix64(out[i-start], dictHash[v.Codes[i]])
			}
		default:
			for i := start; i < end; i++ {
				out[i-start] = hashValue(out[i-start], v.Vals[i])
			}
		}
	}
}

// hashValue folds one boxed value into h using its canonical key class.
func hashValue(h uint64, x value.Value) uint64 {
	tag, payload := keyClass(x)
	if tag == 3 {
		return mix64(h, hashString(3, x.Text()))
	}
	return mix64(mix64(h, uint64(tag)), payload)
}
